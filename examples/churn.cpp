// Churn scenario: searching a P-Grid where most peers are offline.
//
// The paper's reliability story (Secs. 4-5): with refmax-fold reference redundancy,
// searches keep succeeding even when only a fraction of peers is reachable. This
// example sweeps the online probability and shows measured success rates next to
// the eq. (3) analytical worst-case bound, then demonstrates recovery from a
// correlated outage (failure injection via OnlineModel::Pin).
//
// Run: ./churn

#include <cstdio>

#include "core/analysis.h"
#include "core/exchange.h"
#include "core/grid.h"
#include "core/grid_builder.h"
#include "core/search.h"
#include "sim/meeting_scheduler.h"
#include "sim/online_model.h"

using namespace pgrid;

namespace {

struct SweepPoint {
  double online;
  double measured;
  double bound;
  double avg_messages;
};

SweepPoint MeasureSuccess(Grid* grid, size_t maxl, size_t refmax, double online_prob,
                          Rng* rng) {
  OnlineModel online(OnlineMode::kSnapshot, grid->size(), online_prob, rng);
  SearchEngine search(grid, &online, rng);
  const size_t trials = 2000;
  size_t ok = 0;
  uint64_t msgs = 0;
  for (size_t t = 0; t < trials; ++t) {
    if (t % 50 == 0) online.Resample(rng);
    auto start = search.RandomOnlinePeer();
    if (!start.has_value()) continue;
    QueryResult r = search.Query(*start, KeyPath::Random(rng, maxl));
    msgs += r.messages;
    if (r.found) ++ok;
  }
  return SweepPoint{online_prob, static_cast<double>(ok) / trials,
                    SearchSuccessProbability(online_prob, refmax, maxl),
                    static_cast<double>(msgs) / trials};
}

}  // namespace

int main() {
  const size_t num_peers = 2000;
  const size_t maxl = 7;
  const size_t refmax = 6;
  Rng rng(11);

  Grid grid(num_peers);
  ExchangeConfig config;
  config.maxl = maxl;
  config.refmax = refmax;
  config.recmax = 2;
  config.recursion_fanout = 2;
  ExchangeEngine exchange(&grid, config, &rng);
  MeetingScheduler scheduler(num_peers);
  GridBuilder builder(&grid, &exchange, &scheduler, &rng);
  BuildReport report = builder.BuildToFractionOfMaxDepth(0.99, 20'000'000);
  std::printf("P-Grid: %zu peers, maxl=%zu, refmax=%zu, avg depth %.2f\n\n",
              num_peers, maxl, refmax, report.avg_path_length);

  std::printf("search success vs peer availability (%zu peers, 2000 queries/point)\n",
              num_peers);
  std::printf("%8s | %9s | %12s | %9s\n", "online", "measured", "eq.(3) bound",
              "msgs/qry");
  std::printf("---------+-----------+--------------+----------\n");
  for (double p : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    SweepPoint sp = MeasureSuccess(&grid, maxl, refmax, p, &rng);
    std::printf("%7.0f%% | %8.1f%% | %11.1f%% | %9.2f\n", 100 * sp.online,
                100 * sp.measured, 100 * sp.bound, sp.avg_messages);
  }

  // Failure injection: knock out a contiguous 40% of peer ids (a correlated
  // outage, e.g. one ISP going dark), keep the rest fully online.
  std::printf("\ncorrelated outage: peers [0, %zu) pinned offline, rest online\n",
              num_peers * 2 / 5);
  OnlineModel online = OnlineModel::AlwaysOn(num_peers);
  for (PeerId p = 0; p < num_peers * 2 / 5; ++p) online.Pin(p, false);
  SearchEngine search(&grid, &online, &rng);
  size_t ok = 0;
  const size_t trials = 2000;
  for (size_t t = 0; t < trials; ++t) {
    auto start = search.RandomOnlinePeer();
    if (!start.has_value()) continue;
    if (search.Query(*start, KeyPath::Random(&rng, maxl)).found) ++ok;
  }
  std::printf("success under outage: %.1f%% (replica + reference redundancy keeps "
              "the structure navigable)\n",
              100.0 * static_cast<double>(ok) / trials);
  return 0;
}
