// Update propagation walkthrough: keeping replicas consistent (Sec. 5.2).
//
// A publisher updates an item that is replicated across co-responsible peers. This
// example shows, end to end:
//   - how many replicas each propagation strategy reaches for its message budget,
//   - what a single (cheap) query returns afterwards -- sometimes stale,
//   - how repeated queries with a majority decision restore read reliability
//     without paying for exhaustive update propagation.
//
// Run: ./update_strategies

#include <cstdio>

#include "core/exchange.h"
#include "core/grid.h"
#include "core/grid_builder.h"
#include "core/search.h"
#include "core/stats.h"
#include "core/update.h"
#include "sim/meeting_scheduler.h"
#include "workload/corpus.h"
#include "workload/key_generator.h"

using namespace pgrid;

int main() {
  const size_t num_peers = 2000;
  const size_t maxl = 7;
  Rng rng(23);

  Grid grid(num_peers);
  ExchangeConfig config;
  config.maxl = maxl;
  config.refmax = 6;
  config.recmax = 2;
  config.recursion_fanout = 2;
  ExchangeEngine exchange(&grid, config, &rng);
  MeetingScheduler scheduler(num_peers);
  GridBuilder builder(&grid, &exchange, &scheduler, &rng);
  builder.BuildToFractionOfMaxDepth(0.99, 20'000'000);

  // Publish one item, perfectly consistent at version 1.
  KeyGenerator keygen(KeyGenerator::Mode::kUniform, 12);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(1, num_peers, keygen, &rng, &holders);
  SeedGridPerfectly(&grid, corpus, holders);
  const DataItem& item = corpus[0];
  const auto replicas = GridStats::ReplicasOf(grid, item.key);
  std::printf("item %llu (key %s) is indexed by %zu replicas\n",
              static_cast<unsigned long long>(item.id), item.key.ToString().c_str(),
              replicas.size());

  // 30% availability, as in the paper's experiments.
  OnlineModel online(OnlineMode::kSnapshot, num_peers, 0.3, &rng);
  UpdateEngine update(&grid, &online, &rng);
  SearchEngine search(&grid, &online, &rng);

  std::printf("\npropagating version 2 with each strategy (fresh grid state per "
              "strategy):\n");
  std::printf("%-14s %10s %10s %10s\n", "strategy", "messages", "reached",
              "of total");
  for (UpdateStrategy strategy : {UpdateStrategy::kRepeatedDfs,
                                  UpdateStrategy::kRepeatedDfsBuddies,
                                  UpdateStrategy::kBreadthFirst}) {
    // Reset all entries to version 1 so strategies are comparable.
    for (PeerState& p : grid) p.index().ApplyVersion(item.id, 1);
    for (PeerId r : replicas) {
      IndexEntry e{holders[0], item.id, item.key, 1};
      grid.peer(r).index().InsertOrRefresh(e);
    }
    online.Resample(&rng);
    UpdateConfig ucfg;
    ucfg.recbreadth = strategy == UpdateStrategy::kBreadthFirst ? 2 : 1;
    ucfg.repetition = 4;
    UpdateOutcome o = update.Propagate(item.key, item.id, 2, strategy, ucfg);
    std::printf("%-14s %10llu %10zu %9.1f%%\n", UpdateStrategyName(strategy),
                static_cast<unsigned long long>(o.messages), o.reached.size(),
                100.0 * static_cast<double>(o.reached.size()) /
                    static_cast<double>(replicas.size()));
  }

  // Read-side reliability: single queries vs repeated queries with majority.
  std::printf("\nread reliability after the (partial) BFS update:\n");
  online.PartialResample(&rng, 0.25);  // a little churn between update and reads
  size_t single_ok = 0, majority_ok = 0;
  uint64_t single_msgs = 0, majority_msgs = 0;
  const size_t reads = 400;
  ReliableReadConfig rcfg;
  rcfg.quorum = 3;
  for (size_t i = 0; i < reads; ++i) {
    auto start = search.RandomOnlinePeer();
    if (!start.has_value()) continue;
    QueryResult q = search.Query(*start, item.key);
    single_msgs += q.messages;
    if (q.found && grid.peer(q.responder).index().LatestVersionOf(item.id) == 2) {
      ++single_ok;
    }
    ReliableReadResult rr = search.ReadVersion(item.key, item.id, rcfg);
    majority_msgs += rr.messages;
    if (rr.version == 2) ++majority_ok;
  }
  std::printf("%-28s %6.1f%% fresh at %5.1f msgs/read\n", "single query:",
              100.0 * static_cast<double>(single_ok) / reads,
              static_cast<double>(single_msgs) / reads);
  std::printf("%-28s %6.1f%% fresh at %5.1f msgs/read\n",
              "repeated query (quorum 3):",
              100.0 * static_cast<double>(majority_ok) / reads,
              static_cast<double>(majority_msgs) / reads);
  std::printf("\ntrade-off: a few extra query messages buy read reliability that "
              "would otherwise require ~10x more update messages.\n");
  return 0;
}
