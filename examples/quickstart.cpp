// Quickstart: build a P-Grid, publish data, and search it.
//
// This walks the full public API surface in ~100 lines:
//   1. create a community of peers (Grid),
//   2. let them self-organize through random meetings (ExchangeEngine/GridBuilder),
//   3. publish data items and their index entries,
//   4. route queries through the grid (SearchEngine),
//   5. inspect structure statistics (GridStats).
//
// Run: ./quickstart [--peers=256] [--maxl=5] [--seed=1]

#include <cstdio>

#include "core/exchange.h"
#include "core/grid.h"
#include "core/grid_builder.h"
#include "core/search.h"
#include "core/stats.h"
#include "sim/meeting_scheduler.h"
#include "workload/corpus.h"
#include "workload/key_generator.h"

using namespace pgrid;

int main() {
  const size_t num_peers = 256;
  const uint64_t seed = 1;

  // 1. A community of peers, all initially responsible for the whole key space.
  Grid grid(num_peers);
  Rng rng(seed);

  // 2. Self-organization: peers meet randomly and run the exchange algorithm until
  //    the average path length reaches 99% of maxl.
  ExchangeConfig config;
  config.maxl = 5;        // maximal path length
  config.refmax = 4;      // references kept per level
  config.recmax = 2;      // recursion bound (the paper's sweet spot)
  config.recursion_fanout = 2;
  ExchangeEngine exchange(&grid, config, &rng);
  MeetingScheduler scheduler(num_peers);
  GridBuilder builder(&grid, &exchange, &scheduler, &rng);
  BuildReport report = builder.BuildToFractionOfMaxDepth(0.99, 10'000'000);
  std::printf("built P-Grid: %zu peers, avg depth %.2f, %llu exchanges (%.1f per "
              "peer), %.0f ms\n",
              num_peers, report.avg_path_length,
              static_cast<unsigned long long>(report.exchanges),
              static_cast<double>(report.exchanges) / num_peers,
              report.seconds * 1e3);

  // 3. Publish a corpus: items live at their holders; index entries are installed
  //    at the peers responsible for each key.
  KeyGenerator keygen(KeyGenerator::Mode::kUniform, /*length=*/10);
  std::vector<PeerId> holders;
  std::vector<DataItem> corpus = MakeCorpus(500, num_peers, keygen, &rng, &holders);
  size_t entries = SeedGridPerfectly(&grid, corpus, holders);
  std::printf("published %zu items (%zu index entries across replicas)\n",
              corpus.size(), entries);

  // 4. Search: a query can start at ANY peer and routes in O(log N) messages.
  SearchEngine search(&grid, /*online=*/nullptr, &rng);
  size_t found = 0;
  uint64_t messages = 0;
  for (const DataItem& item : corpus) {
    PeerId start = static_cast<PeerId>(rng.UniformIndex(num_peers));
    QueryResult r = search.Query(start, item.key);
    if (!r.found) continue;
    // The responder's leaf index tells us which peers hold matching items.
    auto matches = grid.peer(r.responder).index().Matching(item.key);
    if (!matches.empty()) ++found;
    messages += r.messages;
  }
  std::printf("searched %zu items from random entry points: %zu resolved, %.2f "
              "messages per search\n",
              corpus.size(), found,
              static_cast<double>(messages) / static_cast<double>(corpus.size()));

  // 5. Structure statistics.
  std::printf("avg replication factor: %.1f, avg routing refs per peer: %.1f\n",
              GridStats::AverageReplicationFactor(grid),
              GridStats::AverageTotalRefs(grid));
  Status invariants = GridStats::CheckInvariants(grid, config);
  std::printf("structural invariants: %s\n", invariants.ToString().c_str());
  return invariants.ok() && found == corpus.size() ? 0 : 1;
}
