// File-sharing scenario: the workload that motivates the paper (Sec. 1/4).
//
// A Gnutella-like community shares files. Filenames are hashed to binary keys; each
// peer publishes its own files into the P-Grid. We then compare the cost of finding
// a file via (a) P-Grid routing and (b) Gnutella-style flooding over an unstructured
// overlay -- the paper's central motivation: "search requests are broadcasted over
// the network... extremely costly".
//
// Run: ./filesharing

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/flooding.h"
#include "core/exchange.h"
#include "core/grid.h"
#include "core/grid_builder.h"
#include "core/search.h"
#include "sim/meeting_scheduler.h"

using namespace pgrid;

namespace {

/// Hashes a filename to a binary key of `bits` bits (FNV-1a based). In a real
/// deployment this is the index-term mapping of Sec. 2: any total order works; a
/// hash gives the uniform distribution the paper assumes.
KeyPath FileKey(const std::string& name, size_t bits) {
  uint64_t h = 1469598103934665603ull;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return KeyPath::FromUint64(h >> (64 - bits), bits);
}

}  // namespace

int main() {
  const size_t num_peers = 1000;
  const size_t files_per_peer = 5;
  const size_t key_bits = 16;
  Rng rng(7);

  // The shared library: every peer contributes a few "MP3s".
  std::vector<std::pair<PeerId, std::string>> library;
  for (PeerId p = 0; p < num_peers; ++p) {
    for (size_t f = 0; f < files_per_peer; ++f) {
      library.emplace_back(p, "track-" + std::to_string(p) + "-" + std::to_string(f) +
                                  ".mp3");
    }
  }
  std::printf("community: %zu peers sharing %zu files\n", num_peers, library.size());

  // --- P-Grid: build the access structure, publish the files. ---
  Grid grid(num_peers);
  ExchangeConfig config;
  config.maxl = 6;
  config.refmax = 5;
  config.recmax = 2;
  config.recursion_fanout = 2;
  ExchangeEngine exchange(&grid, config, &rng);
  MeetingScheduler scheduler(num_peers);
  GridBuilder builder(&grid, &exchange, &scheduler, &rng);
  BuildReport report = builder.BuildToFractionOfMaxDepth(0.99, 10'000'000);
  std::printf("P-Grid built: avg depth %.2f, %.1f exchanges/peer\n",
              report.avg_path_length,
              static_cast<double>(report.exchanges) / num_peers);

  ItemId next_id = 1;
  for (const auto& [holder, name] : library) {
    DataItem item;
    item.id = next_id++;
    item.key = FileKey(name, key_bits);
    item.payload = name;
    item.version = 1;
    grid.peer(holder).store().Upsert(item);
    IndexEntry entry{holder, item.id, item.key, item.version};
    for (PeerState& peer : grid) {
      if (PathsOverlap(peer.path(), entry.key)) peer.index().InsertOrRefresh(entry);
    }
  }

  // --- Gnutella baseline: same files on an unstructured overlay. ---
  FloodingConfig fcfg;
  fcfg.mean_degree = 4;
  fcfg.ttl = 7;  // classic Gnutella TTL
  FloodingNetwork gnutella(num_peers, fcfg, &rng);
  {
    ItemId id = 1;
    for (const auto& [holder, name] : library) {
      DataItem item;
      item.id = id++;
      item.key = FileKey(name, key_bits);
      item.payload = name;
      gnutella.PlaceItem(holder, item);
    }
  }

  // --- Head-to-head: look up 200 random files. ---
  SearchEngine search(&grid, nullptr, &rng);
  size_t pgrid_found = 0, flood_found = 0;
  uint64_t pgrid_msgs = 0, flood_msgs = 0;
  const size_t lookups = 200;
  for (size_t i = 0; i < lookups; ++i) {
    const auto& [holder, name] = library[rng.UniformIndex(library.size())];
    const KeyPath key = FileKey(name, key_bits);
    const PeerId start = static_cast<PeerId>(rng.UniformIndex(num_peers));

    QueryResult q = search.Query(start, key);
    pgrid_msgs += q.messages;
    if (q.found && !grid.peer(q.responder).index().Matching(key).empty()) {
      ++pgrid_found;
    }

    FloodResult fr = gnutella.Search(start, key, nullptr, &rng);
    flood_msgs += fr.messages;
    if (fr.found) ++flood_found;
  }

  std::printf("\n%-10s | %10s | %14s\n", "system", "hit rate", "msgs per query");
  std::printf("-----------+------------+---------------\n");
  std::printf("%-10s | %9.1f%% | %14.1f\n", "P-Grid",
              100.0 * static_cast<double>(pgrid_found) / lookups,
              static_cast<double>(pgrid_msgs) / lookups);
  std::printf("%-10s | %9.1f%% | %14.1f\n", "Gnutella",
              100.0 * static_cast<double>(flood_found) / lookups,
              static_cast<double>(flood_msgs) / lookups);
  std::printf("\nP-Grid answers with ~log2(N) messages; flooding pays the broadcast "
              "(and still misses files beyond its TTL horizon).\n");
  return pgrid_found == lookups ? 0 : 1;
}
