// Trie-structured text search (the Sec. 6 extension, end to end).
//
// Filenames are encoded with the order- and prefix-preserving text key codec; a
// prefix query then addresses an interval of the binary trie and PrefixSearch
// gathers matching entries from every co-responsible peer. This turns the P-Grid
// into a distributed prefix index -- "directly support trie search structures".
//
// Run: ./text_search [prefix ...]   (defaults to a few demo prefixes)

#include <cstdio>
#include <string>
#include <vector>

#include "core/exchange.h"
#include "core/grid.h"
#include "core/grid_builder.h"
#include "core/search.h"
#include "key/text_key.h"
#include "sim/meeting_scheduler.h"

using namespace pgrid;

namespace {

const char* kLibrary[] = {
    "beatles-abbey_road",   "beatles-help",        "beatles-let_it_be",
    "beach_boys-pet_sounds", "beastie_boys-ill",   "bob_dylan-desire",
    "bob_marley-exodus",    "bowie-heroes",        "byrds-younger",
    "cash-at_folsom",       "clash-london",        "cream-disraeli",
    "deep_purple-in_rock",  "doors-la_woman",      "dylan-blonde",
    "eagles-hotel",         "hendrix-axis",        "kinks-village",
    "led_zeppelin-iv",      "pink_floyd-animals",  "pink_floyd-wall",
    "queen-night",          "ramones-ramones",     "stones-exile",
    "the_who-next",         "velvet-loaded",       "zappa-hot_rats",
};

}  // namespace

int main(int argc, char** argv) {
  const size_t num_peers = 1024;
  Rng rng(31);

  Grid grid(num_peers);
  ExchangeConfig config;
  config.maxl = 8;
  config.refmax = 4;
  config.recmax = 2;
  config.recursion_fanout = 2;
  ExchangeEngine exchange(&grid, config, &rng);
  MeetingScheduler scheduler(num_peers);
  GridBuilder builder(&grid, &exchange, &scheduler, &rng);
  BuildReport report = builder.BuildToFractionOfMaxDepth(0.99, 50'000'000);
  std::printf("grid: %zu peers, avg depth %.2f\n", num_peers,
              report.avg_path_length);

  // Publish the library: each title becomes an index entry under its text key,
  // installed at every co-responsible peer.
  ItemId id = 1;
  size_t installed = 0;
  for (const char* title : kLibrary) {
    auto key = EncodeText(title);
    if (!key.ok()) {
      std::fprintf(stderr, "skipping %s: %s\n", title,
                   key.status().ToString().c_str());
      continue;
    }
    IndexEntry entry;
    entry.holder = static_cast<PeerId>(rng.UniformIndex(num_peers));
    entry.item_id = id++;
    entry.key = *key;
    entry.version = 1;
    for (PeerState& peer : grid) {
      if (PathsOverlap(peer.path(), entry.key)) {
        peer.index().InsertOrRefresh(entry);
        ++installed;
      }
    }
  }
  std::printf("published %zu titles (%zu replicated index entries)\n\n",
              std::size(kLibrary), installed);

  std::vector<std::string> prefixes;
  for (int i = 1; i < argc; ++i) prefixes.emplace_back(argv[i]);
  if (prefixes.empty()) prefixes = {"beat", "bob", "pink_floyd", "d", "zz"};

  SearchEngine search(&grid, nullptr, &rng);
  for (const std::string& prefix : prefixes) {
    auto key = EncodeText(prefix);
    if (!key.ok()) {
      std::printf("'%s': %s\n", prefix.c_str(), key.status().ToString().c_str());
      continue;
    }
    PrefixSearchResult r = search.PrefixSearch(
        static_cast<PeerId>(rng.UniformIndex(num_peers)), *key, /*fanout=*/8);
    std::printf("'%s*' -> %zu titles from %zu responders in %llu messages\n",
                prefix.c_str(), r.entries.size(), r.responders.size(),
                static_cast<unsigned long long>(r.messages));
    for (const IndexEntry& e : r.entries) {
      auto title = DecodeText(e.key);
      std::printf("    %s (held by peer %u)\n",
                  title.ok() ? title->c_str() : "<undecodable>", e.holder);
    }
  }
  return 0;
}
