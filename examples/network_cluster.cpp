// Networked cluster: P-Grid nodes talking over real TCP sockets.
//
// Everything else in this repository evaluates the algorithms on the in-memory
// simulator; this example shows the deployment path: PGridNode instances bound to
// localhost ports, self-organizing through exchanges, publishing and searching over
// the wire. The same binary works across machines by changing the bind addresses.
//
// Run: ./network_cluster

#include <cstdio>
#include <memory>
#include <vector>

#include "net/node.h"
#include "net/tcp_transport.h"
#include "util/rng.h"

using namespace pgrid;
using namespace pgrid::net;

int main() {
  TcpTransport transport;
  transport.set_timeout_ms(2000);

  NodeConfig config;
  config.maxl = 4;
  config.refmax = 3;
  config.recmax = 2;

  // Boot 12 nodes on ephemeral localhost ports.
  std::vector<std::unique_ptr<PGridNode>> nodes;
  std::vector<std::string> addresses;
  for (int i = 0; i < 12; ++i) {
    auto probe = transport.ServeAnyPort(
        "127.0.0.1", [](const std::string&, const std::string&) { return ""; });
    if (!probe.ok()) {
      std::fprintf(stderr, "failed to bind: %s\n", probe.status().ToString().c_str());
      return 1;
    }
    transport.StopServing(*probe);
    auto node = std::make_unique<PGridNode>(*probe, &transport, config, 4000 + i);
    if (Status s = node->Start(); !s.ok()) {
      std::fprintf(stderr, "failed to start node: %s\n", s.ToString().c_str());
      return 1;
    }
    addresses.push_back(*probe);
    nodes.push_back(std::move(node));
  }
  std::printf("booted %zu nodes on localhost ports %s .. %s\n", nodes.size(),
              addresses.front().c_str(), addresses.back().c_str());

  // Self-organization: random gossip meetings over TCP.
  Rng rng(42);
  size_t meetings = 0;
  for (int round = 0; round < 1200; ++round) {
    size_t a = rng.UniformIndex(nodes.size());
    size_t b = rng.UniformIndex(nodes.size());
    if (a == b) continue;
    if (nodes[a]->MeetWith(addresses[b]).ok()) ++meetings;
  }
  double avg_depth = 0;
  for (const auto& n : nodes) avg_depth += static_cast<double>(n->path().length());
  avg_depth /= static_cast<double>(nodes.size());
  std::printf("after %zu TCP meetings: average path depth %.2f\n", meetings,
              avg_depth);
  for (const auto& n : nodes) {
    std::printf("  %-16s path=%-5s buddies=%zu entries=%zu\n", n->address().c_str(),
                n->path().ToString().c_str(), n->buddies().size(),
                n->entries().size());
  }

  // Publish from one node, search from all others -- every hop is a socket call.
  DataItem item;
  item.id = 1;
  item.key = KeyPath::FromString("10110100").value();
  item.payload = "distributed-systems.pdf";
  item.version = 1;
  if (Status s = nodes[3]->Publish(item); !s.ok()) {
    std::fprintf(stderr, "publish failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nnode %s published item %llu (key %s)\n", addresses[3].c_str(),
              static_cast<unsigned long long>(item.id),
              item.key.ToString().c_str());

  size_t found = 0;
  for (const auto& n : nodes) {
    auto r = n->Search(item.key);
    if (r.ok()) {
      for (const WireEntry& e : *r) {
        if (e.item_id == item.id) {
          ++found;
          break;
        }
      }
    }
  }
  std::printf("search over TCP: %zu/%zu nodes resolved the item to holder %s\n",
              found, nodes.size(), addresses[3].c_str());

  for (auto& n : nodes) n->Stop();
  return found == nodes.size() ? 0 : 1;
}
