# Empty compiler generated dependencies file for pgrid_node.
# This may be replaced when dependencies are built.
