file(REMOVE_RECURSE
  "CMakeFiles/pgrid_node.dir/pgrid_node_main.cc.o"
  "CMakeFiles/pgrid_node.dir/pgrid_node_main.cc.o.d"
  "pgrid_node"
  "pgrid_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgrid_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
