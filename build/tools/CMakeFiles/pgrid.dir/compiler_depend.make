# Empty compiler generated dependencies file for pgrid.
# This may be replaced when dependencies are built.
