file(REMOVE_RECURSE
  "CMakeFiles/pgrid.dir/pgrid_main.cc.o"
  "CMakeFiles/pgrid.dir/pgrid_main.cc.o.d"
  "pgrid"
  "pgrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
