# Empty compiler generated dependencies file for network_cluster.
# This may be replaced when dependencies are built.
