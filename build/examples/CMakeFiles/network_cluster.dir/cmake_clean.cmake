file(REMOVE_RECURSE
  "CMakeFiles/network_cluster.dir/network_cluster.cpp.o"
  "CMakeFiles/network_cluster.dir/network_cluster.cpp.o.d"
  "network_cluster"
  "network_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
