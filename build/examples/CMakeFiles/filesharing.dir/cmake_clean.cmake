file(REMOVE_RECURSE
  "CMakeFiles/filesharing.dir/filesharing.cpp.o"
  "CMakeFiles/filesharing.dir/filesharing.cpp.o.d"
  "filesharing"
  "filesharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
