# Empty compiler generated dependencies file for filesharing.
# This may be replaced when dependencies are built.
