# Empty dependencies file for node_robustness_test.
# This may be replaced when dependencies are built.
