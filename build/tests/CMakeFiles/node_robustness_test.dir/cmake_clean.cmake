file(REMOVE_RECURSE
  "CMakeFiles/node_robustness_test.dir/node_robustness_test.cc.o"
  "CMakeFiles/node_robustness_test.dir/node_robustness_test.cc.o.d"
  "node_robustness_test"
  "node_robustness_test.pdb"
  "node_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
