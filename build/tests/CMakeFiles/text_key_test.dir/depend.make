# Empty dependencies file for text_key_test.
# This may be replaced when dependencies are built.
