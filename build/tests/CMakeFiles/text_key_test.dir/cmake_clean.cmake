file(REMOVE_RECURSE
  "CMakeFiles/text_key_test.dir/text_key_test.cc.o"
  "CMakeFiles/text_key_test.dir/text_key_test.cc.o.d"
  "text_key_test"
  "text_key_test.pdb"
  "text_key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
