file(REMOVE_RECURSE
  "CMakeFiles/message_stats_test.dir/message_stats_test.cc.o"
  "CMakeFiles/message_stats_test.dir/message_stats_test.cc.o.d"
  "message_stats_test"
  "message_stats_test.pdb"
  "message_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
