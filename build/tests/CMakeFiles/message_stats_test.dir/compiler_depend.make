# Empty compiler generated dependencies file for message_stats_test.
# This may be replaced when dependencies are built.
