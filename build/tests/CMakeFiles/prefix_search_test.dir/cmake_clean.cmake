file(REMOVE_RECURSE
  "CMakeFiles/prefix_search_test.dir/prefix_search_test.cc.o"
  "CMakeFiles/prefix_search_test.dir/prefix_search_test.cc.o.d"
  "prefix_search_test"
  "prefix_search_test.pdb"
  "prefix_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefix_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
