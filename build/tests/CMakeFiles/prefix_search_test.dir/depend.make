# Empty dependencies file for prefix_search_test.
# This may be replaced when dependencies are built.
