# Empty compiler generated dependencies file for key_path_test.
# This may be replaced when dependencies are built.
