file(REMOVE_RECURSE
  "CMakeFiles/key_path_test.dir/key_path_test.cc.o"
  "CMakeFiles/key_path_test.dir/key_path_test.cc.o.d"
  "key_path_test"
  "key_path_test.pdb"
  "key_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
