# Empty compiler generated dependencies file for split_policy_test.
# This may be replaced when dependencies are built.
