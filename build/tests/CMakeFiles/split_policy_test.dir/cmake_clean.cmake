file(REMOVE_RECURSE
  "CMakeFiles/split_policy_test.dir/split_policy_test.cc.o"
  "CMakeFiles/split_policy_test.dir/split_policy_test.cc.o.d"
  "split_policy_test"
  "split_policy_test.pdb"
  "split_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
