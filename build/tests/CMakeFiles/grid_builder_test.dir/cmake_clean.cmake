file(REMOVE_RECURSE
  "CMakeFiles/grid_builder_test.dir/grid_builder_test.cc.o"
  "CMakeFiles/grid_builder_test.dir/grid_builder_test.cc.o.d"
  "grid_builder_test"
  "grid_builder_test.pdb"
  "grid_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
