# Empty dependencies file for peer_state_test.
# This may be replaced when dependencies are built.
