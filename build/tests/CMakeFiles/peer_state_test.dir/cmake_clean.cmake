file(REMOVE_RECURSE
  "CMakeFiles/peer_state_test.dir/peer_state_test.cc.o"
  "CMakeFiles/peer_state_test.dir/peer_state_test.cc.o.d"
  "peer_state_test"
  "peer_state_test.pdb"
  "peer_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
