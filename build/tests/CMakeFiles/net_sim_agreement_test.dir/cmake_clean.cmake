file(REMOVE_RECURSE
  "CMakeFiles/net_sim_agreement_test.dir/net_sim_agreement_test.cc.o"
  "CMakeFiles/net_sim_agreement_test.dir/net_sim_agreement_test.cc.o.d"
  "net_sim_agreement_test"
  "net_sim_agreement_test.pdb"
  "net_sim_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_sim_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
