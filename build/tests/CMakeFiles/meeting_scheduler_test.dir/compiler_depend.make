# Empty compiler generated dependencies file for meeting_scheduler_test.
# This may be replaced when dependencies are built.
