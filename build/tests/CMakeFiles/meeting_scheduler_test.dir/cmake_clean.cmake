file(REMOVE_RECURSE
  "CMakeFiles/meeting_scheduler_test.dir/meeting_scheduler_test.cc.o"
  "CMakeFiles/meeting_scheduler_test.dir/meeting_scheduler_test.cc.o.d"
  "meeting_scheduler_test"
  "meeting_scheduler_test.pdb"
  "meeting_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meeting_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
