# Empty dependencies file for leaf_index_test.
# This may be replaced when dependencies are built.
