file(REMOVE_RECURSE
  "CMakeFiles/leaf_index_test.dir/leaf_index_test.cc.o"
  "CMakeFiles/leaf_index_test.dir/leaf_index_test.cc.o.d"
  "leaf_index_test"
  "leaf_index_test.pdb"
  "leaf_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leaf_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
