file(REMOVE_RECURSE
  "CMakeFiles/online_model_test.dir/online_model_test.cc.o"
  "CMakeFiles/online_model_test.dir/online_model_test.cc.o.d"
  "online_model_test"
  "online_model_test.pdb"
  "online_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
