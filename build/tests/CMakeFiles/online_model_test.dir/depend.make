# Empty dependencies file for online_model_test.
# This may be replaced when dependencies are built.
