add_test([=[NetSimAgreementTest.StructuresDevelopTheSameShape]=]  /root/repo/build/tests/net_sim_agreement_test [==[--gtest_filter=NetSimAgreementTest.StructuresDevelopTheSameShape]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[NetSimAgreementTest.StructuresDevelopTheSameShape]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  net_sim_agreement_test_TESTS NetSimAgreementTest.StructuresDevelopTheSameShape)
