# Empty dependencies file for bench_t6_update_query_tradeoff.
# This may be replaced when dependencies are built.
