file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_update_query_tradeoff.dir/bench/bench_t6_update_query_tradeoff.cc.o"
  "CMakeFiles/bench_t6_update_query_tradeoff.dir/bench/bench_t6_update_query_tradeoff.cc.o.d"
  "bench/bench_t6_update_query_tradeoff"
  "bench/bench_t6_update_query_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_update_query_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
