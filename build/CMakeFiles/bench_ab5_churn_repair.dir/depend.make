# Empty dependencies file for bench_ab5_churn_repair.
# This may be replaced when dependencies are built.
