file(REMOVE_RECURSE
  "CMakeFiles/bench_ab5_churn_repair.dir/bench/bench_ab5_churn_repair.cc.o"
  "CMakeFiles/bench_ab5_churn_repair.dir/bench/bench_ab5_churn_repair.cc.o.d"
  "bench/bench_ab5_churn_repair"
  "bench/bench_ab5_churn_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab5_churn_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
