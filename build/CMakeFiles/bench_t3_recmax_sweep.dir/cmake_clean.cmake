file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_recmax_sweep.dir/bench/bench_t3_recmax_sweep.cc.o"
  "CMakeFiles/bench_t3_recmax_sweep.dir/bench/bench_t3_recmax_sweep.cc.o.d"
  "bench/bench_t3_recmax_sweep"
  "bench/bench_t3_recmax_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_recmax_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
