# Empty dependencies file for bench_t3_recmax_sweep.
# This may be replaced when dependencies are built.
