file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_update_strategies.dir/bench/bench_f5_update_strategies.cc.o"
  "CMakeFiles/bench_f5_update_strategies.dir/bench/bench_f5_update_strategies.cc.o.d"
  "bench/bench_f5_update_strategies"
  "bench/bench_f5_update_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_update_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
