# Empty compiler generated dependencies file for bench_f5_update_strategies.
# This may be replaced when dependencies are built.
