file(REMOVE_RECURSE
  "CMakeFiles/bench_ab6_load_fairness.dir/bench/bench_ab6_load_fairness.cc.o"
  "CMakeFiles/bench_ab6_load_fairness.dir/bench/bench_ab6_load_fairness.cc.o.d"
  "bench/bench_ab6_load_fairness"
  "bench/bench_ab6_load_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab6_load_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
