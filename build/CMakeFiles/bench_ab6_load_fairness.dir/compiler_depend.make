# Empty compiler generated dependencies file for bench_ab6_load_fairness.
# This may be replaced when dependencies are built.
