# Empty dependencies file for bench_ab4_skew_adaptive.
# This may be replaced when dependencies are built.
