file(REMOVE_RECURSE
  "CMakeFiles/bench_ab4_skew_adaptive.dir/bench/bench_ab4_skew_adaptive.cc.o"
  "CMakeFiles/bench_ab4_skew_adaptive.dir/bench/bench_ab4_skew_adaptive.cc.o.d"
  "bench/bench_ab4_skew_adaptive"
  "bench/bench_ab4_skew_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab4_skew_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
