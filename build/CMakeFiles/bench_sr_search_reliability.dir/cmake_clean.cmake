file(REMOVE_RECURSE
  "CMakeFiles/bench_sr_search_reliability.dir/bench/bench_sr_search_reliability.cc.o"
  "CMakeFiles/bench_sr_search_reliability.dir/bench/bench_sr_search_reliability.cc.o.d"
  "bench/bench_sr_search_reliability"
  "bench/bench_sr_search_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sr_search_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
