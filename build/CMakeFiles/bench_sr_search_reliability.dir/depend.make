# Empty dependencies file for bench_sr_search_reliability.
# This may be replaced when dependencies are built.
