file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_refmax_unbounded.dir/bench/bench_t4_refmax_unbounded.cc.o"
  "CMakeFiles/bench_t4_refmax_unbounded.dir/bench/bench_t4_refmax_unbounded.cc.o.d"
  "bench/bench_t4_refmax_unbounded"
  "bench/bench_t4_refmax_unbounded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_refmax_unbounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
