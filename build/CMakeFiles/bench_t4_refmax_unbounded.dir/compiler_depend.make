# Empty compiler generated dependencies file for bench_t4_refmax_unbounded.
# This may be replaced when dependencies are built.
