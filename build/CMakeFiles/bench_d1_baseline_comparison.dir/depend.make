# Empty dependencies file for bench_d1_baseline_comparison.
# This may be replaced when dependencies are built.
