file(REMOVE_RECURSE
  "CMakeFiles/bench_d1_baseline_comparison.dir/bench/bench_d1_baseline_comparison.cc.o"
  "CMakeFiles/bench_d1_baseline_comparison.dir/bench/bench_d1_baseline_comparison.cc.o.d"
  "bench/bench_d1_baseline_comparison"
  "bench/bench_d1_baseline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_d1_baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
