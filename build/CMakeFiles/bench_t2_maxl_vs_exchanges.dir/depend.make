# Empty dependencies file for bench_t2_maxl_vs_exchanges.
# This may be replaced when dependencies are built.
