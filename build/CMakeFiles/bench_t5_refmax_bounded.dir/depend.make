# Empty dependencies file for bench_t5_refmax_bounded.
# This may be replaced when dependencies are built.
