file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_refmax_bounded.dir/bench/bench_t5_refmax_bounded.cc.o"
  "CMakeFiles/bench_t5_refmax_bounded.dir/bench/bench_t5_refmax_bounded.cc.o.d"
  "bench/bench_t5_refmax_bounded"
  "bench/bench_t5_refmax_bounded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_refmax_bounded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
