file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_analysis_example.dir/bench/bench_a1_analysis_example.cc.o"
  "CMakeFiles/bench_a1_analysis_example.dir/bench/bench_a1_analysis_example.cc.o.d"
  "bench/bench_a1_analysis_example"
  "bench/bench_a1_analysis_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_analysis_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
