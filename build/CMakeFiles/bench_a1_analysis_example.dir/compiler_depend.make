# Empty compiler generated dependencies file for bench_a1_analysis_example.
# This may be replaced when dependencies are built.
