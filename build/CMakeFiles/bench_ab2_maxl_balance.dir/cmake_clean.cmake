file(REMOVE_RECURSE
  "CMakeFiles/bench_ab2_maxl_balance.dir/bench/bench_ab2_maxl_balance.cc.o"
  "CMakeFiles/bench_ab2_maxl_balance.dir/bench/bench_ab2_maxl_balance.cc.o.d"
  "bench/bench_ab2_maxl_balance"
  "bench/bench_ab2_maxl_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab2_maxl_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
