# Empty compiler generated dependencies file for bench_ab2_maxl_balance.
# This may be replaced when dependencies are built.
