# Empty dependencies file for bench_t1_peers_vs_exchanges.
# This may be replaced when dependencies are built.
