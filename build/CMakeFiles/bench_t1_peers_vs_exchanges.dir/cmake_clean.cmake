file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_peers_vs_exchanges.dir/bench/bench_t1_peers_vs_exchanges.cc.o"
  "CMakeFiles/bench_t1_peers_vs_exchanges.dir/bench/bench_t1_peers_vs_exchanges.cc.o.d"
  "bench/bench_t1_peers_vs_exchanges"
  "bench/bench_t1_peers_vs_exchanges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_peers_vs_exchanges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
