# Empty dependencies file for bench_f4_replica_distribution.
# This may be replaced when dependencies are built.
