file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_replica_distribution.dir/bench/bench_f4_replica_distribution.cc.o"
  "CMakeFiles/bench_f4_replica_distribution.dir/bench/bench_f4_replica_distribution.cc.o.d"
  "bench/bench_f4_replica_distribution"
  "bench/bench_f4_replica_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_replica_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
