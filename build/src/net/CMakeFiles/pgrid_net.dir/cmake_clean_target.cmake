file(REMOVE_RECURSE
  "libpgrid_net.a"
)
