# Empty compiler generated dependencies file for pgrid_net.
# This may be replaced when dependencies are built.
