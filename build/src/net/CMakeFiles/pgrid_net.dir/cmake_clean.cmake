file(REMOVE_RECURSE
  "CMakeFiles/pgrid_net.dir/inproc_transport.cc.o"
  "CMakeFiles/pgrid_net.dir/inproc_transport.cc.o.d"
  "CMakeFiles/pgrid_net.dir/node.cc.o"
  "CMakeFiles/pgrid_net.dir/node.cc.o.d"
  "CMakeFiles/pgrid_net.dir/protocol.cc.o"
  "CMakeFiles/pgrid_net.dir/protocol.cc.o.d"
  "CMakeFiles/pgrid_net.dir/tcp_transport.cc.o"
  "CMakeFiles/pgrid_net.dir/tcp_transport.cc.o.d"
  "CMakeFiles/pgrid_net.dir/wire.cc.o"
  "CMakeFiles/pgrid_net.dir/wire.cc.o.d"
  "libpgrid_net.a"
  "libpgrid_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgrid_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
