
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/meeting_scheduler.cc" "src/sim/CMakeFiles/pgrid_sim.dir/meeting_scheduler.cc.o" "gcc" "src/sim/CMakeFiles/pgrid_sim.dir/meeting_scheduler.cc.o.d"
  "/root/repo/src/sim/message_stats.cc" "src/sim/CMakeFiles/pgrid_sim.dir/message_stats.cc.o" "gcc" "src/sim/CMakeFiles/pgrid_sim.dir/message_stats.cc.o.d"
  "/root/repo/src/sim/online_model.cc" "src/sim/CMakeFiles/pgrid_sim.dir/online_model.cc.o" "gcc" "src/sim/CMakeFiles/pgrid_sim.dir/online_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pgrid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
