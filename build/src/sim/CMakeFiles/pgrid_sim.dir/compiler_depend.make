# Empty compiler generated dependencies file for pgrid_sim.
# This may be replaced when dependencies are built.
