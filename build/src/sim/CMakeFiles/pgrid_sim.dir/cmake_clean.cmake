file(REMOVE_RECURSE
  "CMakeFiles/pgrid_sim.dir/meeting_scheduler.cc.o"
  "CMakeFiles/pgrid_sim.dir/meeting_scheduler.cc.o.d"
  "CMakeFiles/pgrid_sim.dir/message_stats.cc.o"
  "CMakeFiles/pgrid_sim.dir/message_stats.cc.o.d"
  "CMakeFiles/pgrid_sim.dir/online_model.cc.o"
  "CMakeFiles/pgrid_sim.dir/online_model.cc.o.d"
  "libpgrid_sim.a"
  "libpgrid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgrid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
