file(REMOVE_RECURSE
  "libpgrid_sim.a"
)
