file(REMOVE_RECURSE
  "CMakeFiles/pgrid_snapshot.dir/snapshot.cc.o"
  "CMakeFiles/pgrid_snapshot.dir/snapshot.cc.o.d"
  "libpgrid_snapshot.a"
  "libpgrid_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgrid_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
