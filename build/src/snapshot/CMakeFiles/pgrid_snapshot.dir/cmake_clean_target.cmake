file(REMOVE_RECURSE
  "libpgrid_snapshot.a"
)
