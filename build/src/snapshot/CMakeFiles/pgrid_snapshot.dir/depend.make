# Empty dependencies file for pgrid_snapshot.
# This may be replaced when dependencies are built.
