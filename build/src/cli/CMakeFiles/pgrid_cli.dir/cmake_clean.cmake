file(REMOVE_RECURSE
  "CMakeFiles/pgrid_cli.dir/cli.cc.o"
  "CMakeFiles/pgrid_cli.dir/cli.cc.o.d"
  "libpgrid_cli.a"
  "libpgrid_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgrid_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
