file(REMOVE_RECURSE
  "libpgrid_cli.a"
)
