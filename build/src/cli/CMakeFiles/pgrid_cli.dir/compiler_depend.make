# Empty compiler generated dependencies file for pgrid_cli.
# This may be replaced when dependencies are built.
