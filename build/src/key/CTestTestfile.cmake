# CMake generated Testfile for 
# Source directory: /root/repo/src/key
# Build directory: /root/repo/build/src/key
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
