file(REMOVE_RECURSE
  "libpgrid_key.a"
)
