# Empty dependencies file for pgrid_key.
# This may be replaced when dependencies are built.
