
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/key/key_path.cc" "src/key/CMakeFiles/pgrid_key.dir/key_path.cc.o" "gcc" "src/key/CMakeFiles/pgrid_key.dir/key_path.cc.o.d"
  "/root/repo/src/key/range.cc" "src/key/CMakeFiles/pgrid_key.dir/range.cc.o" "gcc" "src/key/CMakeFiles/pgrid_key.dir/range.cc.o.d"
  "/root/repo/src/key/text_key.cc" "src/key/CMakeFiles/pgrid_key.dir/text_key.cc.o" "gcc" "src/key/CMakeFiles/pgrid_key.dir/text_key.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pgrid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
