file(REMOVE_RECURSE
  "CMakeFiles/pgrid_key.dir/key_path.cc.o"
  "CMakeFiles/pgrid_key.dir/key_path.cc.o.d"
  "CMakeFiles/pgrid_key.dir/range.cc.o"
  "CMakeFiles/pgrid_key.dir/range.cc.o.d"
  "CMakeFiles/pgrid_key.dir/text_key.cc.o"
  "CMakeFiles/pgrid_key.dir/text_key.cc.o.d"
  "libpgrid_key.a"
  "libpgrid_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgrid_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
