# Empty compiler generated dependencies file for pgrid_core.
# This may be replaced when dependencies are built.
