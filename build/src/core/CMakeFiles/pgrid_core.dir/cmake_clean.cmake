file(REMOVE_RECURSE
  "CMakeFiles/pgrid_core.dir/analysis.cc.o"
  "CMakeFiles/pgrid_core.dir/analysis.cc.o.d"
  "CMakeFiles/pgrid_core.dir/churn.cc.o"
  "CMakeFiles/pgrid_core.dir/churn.cc.o.d"
  "CMakeFiles/pgrid_core.dir/exchange.cc.o"
  "CMakeFiles/pgrid_core.dir/exchange.cc.o.d"
  "CMakeFiles/pgrid_core.dir/grid_builder.cc.o"
  "CMakeFiles/pgrid_core.dir/grid_builder.cc.o.d"
  "CMakeFiles/pgrid_core.dir/insert.cc.o"
  "CMakeFiles/pgrid_core.dir/insert.cc.o.d"
  "CMakeFiles/pgrid_core.dir/peer_state.cc.o"
  "CMakeFiles/pgrid_core.dir/peer_state.cc.o.d"
  "CMakeFiles/pgrid_core.dir/search.cc.o"
  "CMakeFiles/pgrid_core.dir/search.cc.o.d"
  "CMakeFiles/pgrid_core.dir/stats.cc.o"
  "CMakeFiles/pgrid_core.dir/stats.cc.o.d"
  "CMakeFiles/pgrid_core.dir/update.cc.o"
  "CMakeFiles/pgrid_core.dir/update.cc.o.d"
  "libpgrid_core.a"
  "libpgrid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgrid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
