
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/pgrid_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/pgrid_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/churn.cc" "src/core/CMakeFiles/pgrid_core.dir/churn.cc.o" "gcc" "src/core/CMakeFiles/pgrid_core.dir/churn.cc.o.d"
  "/root/repo/src/core/exchange.cc" "src/core/CMakeFiles/pgrid_core.dir/exchange.cc.o" "gcc" "src/core/CMakeFiles/pgrid_core.dir/exchange.cc.o.d"
  "/root/repo/src/core/grid_builder.cc" "src/core/CMakeFiles/pgrid_core.dir/grid_builder.cc.o" "gcc" "src/core/CMakeFiles/pgrid_core.dir/grid_builder.cc.o.d"
  "/root/repo/src/core/insert.cc" "src/core/CMakeFiles/pgrid_core.dir/insert.cc.o" "gcc" "src/core/CMakeFiles/pgrid_core.dir/insert.cc.o.d"
  "/root/repo/src/core/peer_state.cc" "src/core/CMakeFiles/pgrid_core.dir/peer_state.cc.o" "gcc" "src/core/CMakeFiles/pgrid_core.dir/peer_state.cc.o.d"
  "/root/repo/src/core/search.cc" "src/core/CMakeFiles/pgrid_core.dir/search.cc.o" "gcc" "src/core/CMakeFiles/pgrid_core.dir/search.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/pgrid_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/pgrid_core.dir/stats.cc.o.d"
  "/root/repo/src/core/update.cc" "src/core/CMakeFiles/pgrid_core.dir/update.cc.o" "gcc" "src/core/CMakeFiles/pgrid_core.dir/update.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/key/CMakeFiles/pgrid_key.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pgrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pgrid_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pgrid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
