file(REMOVE_RECURSE
  "libpgrid_core.a"
)
