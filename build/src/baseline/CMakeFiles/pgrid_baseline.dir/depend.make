# Empty dependencies file for pgrid_baseline.
# This may be replaced when dependencies are built.
