file(REMOVE_RECURSE
  "libpgrid_baseline.a"
)
