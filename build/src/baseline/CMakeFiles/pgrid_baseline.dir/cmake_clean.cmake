file(REMOVE_RECURSE
  "CMakeFiles/pgrid_baseline.dir/central_server.cc.o"
  "CMakeFiles/pgrid_baseline.dir/central_server.cc.o.d"
  "CMakeFiles/pgrid_baseline.dir/flooding.cc.o"
  "CMakeFiles/pgrid_baseline.dir/flooding.cc.o.d"
  "CMakeFiles/pgrid_baseline.dir/random_graph.cc.o"
  "CMakeFiles/pgrid_baseline.dir/random_graph.cc.o.d"
  "libpgrid_baseline.a"
  "libpgrid_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgrid_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
