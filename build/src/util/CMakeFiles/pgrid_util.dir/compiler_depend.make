# Empty compiler generated dependencies file for pgrid_util.
# This may be replaced when dependencies are built.
