file(REMOVE_RECURSE
  "CMakeFiles/pgrid_util.dir/logging.cc.o"
  "CMakeFiles/pgrid_util.dir/logging.cc.o.d"
  "CMakeFiles/pgrid_util.dir/status.cc.o"
  "CMakeFiles/pgrid_util.dir/status.cc.o.d"
  "libpgrid_util.a"
  "libpgrid_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgrid_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
