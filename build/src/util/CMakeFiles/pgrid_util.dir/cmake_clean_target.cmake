file(REMOVE_RECURSE
  "libpgrid_util.a"
)
