file(REMOVE_RECURSE
  "libpgrid_workload.a"
)
