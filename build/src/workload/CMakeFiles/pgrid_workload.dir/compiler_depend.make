# Empty compiler generated dependencies file for pgrid_workload.
# This may be replaced when dependencies are built.
