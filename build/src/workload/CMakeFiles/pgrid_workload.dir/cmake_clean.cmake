file(REMOVE_RECURSE
  "CMakeFiles/pgrid_workload.dir/corpus.cc.o"
  "CMakeFiles/pgrid_workload.dir/corpus.cc.o.d"
  "CMakeFiles/pgrid_workload.dir/key_generator.cc.o"
  "CMakeFiles/pgrid_workload.dir/key_generator.cc.o.d"
  "CMakeFiles/pgrid_workload.dir/zipf.cc.o"
  "CMakeFiles/pgrid_workload.dir/zipf.cc.o.d"
  "libpgrid_workload.a"
  "libpgrid_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgrid_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
