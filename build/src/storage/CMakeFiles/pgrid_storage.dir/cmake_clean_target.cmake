file(REMOVE_RECURSE
  "libpgrid_storage.a"
)
