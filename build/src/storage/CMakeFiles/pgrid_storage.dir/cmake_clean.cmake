file(REMOVE_RECURSE
  "CMakeFiles/pgrid_storage.dir/data_store.cc.o"
  "CMakeFiles/pgrid_storage.dir/data_store.cc.o.d"
  "CMakeFiles/pgrid_storage.dir/leaf_index.cc.o"
  "CMakeFiles/pgrid_storage.dir/leaf_index.cc.o.d"
  "libpgrid_storage.a"
  "libpgrid_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgrid_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
