# Empty dependencies file for pgrid_storage.
# This may be replaced when dependencies are built.
