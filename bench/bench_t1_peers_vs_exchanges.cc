// T1 (Sec. 5.1, first table): construction cost vs community size.
//
// N in {200..1000}, maxl = 6, threshold 99% of maxl, refmax = 1, recmax in {0, 2}.
// Paper reference values: e/N ~ 70-80 for recmax = 0, ~23-26 for recmax = 2, flat in
// N (linear total cost).

#include <cstdio>

#include "bench/bench_util.h"

namespace pgrid {
namespace {

void Run(const bench::Args& args) {
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t maxl = static_cast<size_t>(args.GetInt("maxl", 6));
  const int trials = static_cast<int>(args.GetInt("trials", 5));
  // Paper reference e/N per (N, recmax) for orientation in the output.
  const double paper_rec0[] = {79.71, 69.08, 72.39, 74.01, 74.61};
  const double paper_rec2[] = {24.68, 25.95, 25.38, 23.22, 25.16};

  bench::Banner("T1: peers vs exchanges",
                "Sec. 5.1 table 1 (N=200..1000, maxl=6, refmax=1, recmax 0 and 2)",
                "e grows linearly in N; e/N roughly constant; recmax=2 ~3x cheaper");
  std::printf("(measured values averaged over %d trials; the paper reports single "
              "runs)\n\n", trials);

  auto average = [&](size_t n, size_t recmax, uint64_t salt) {
    uint64_t sum = 0;
    for (int t = 0; t < trials; ++t) {
      auto s = bench::BuildGrid(n, maxl, /*refmax=*/1, recmax,
                                /*fanout=*/0, seed + salt + 977 * t);
      sum += s.report.exchanges;
    }
    return static_cast<double>(sum) / trials;
  };

  std::printf("%6s | %10s %8s %12s | %10s %8s %12s\n", "N", "e(rec0)", "e/N",
              "paper e/N", "e(rec2)", "e/N", "paper e/N");
  std::printf("-------+----------------------------------+--------------------------"
              "--------\n");
  int row = 0;
  for (size_t n : {200u, 400u, 600u, 800u, 1000u}) {
    const double e0 = average(n, 0, n);
    const double e2 = average(n, 2, n + 1);
    std::printf("%6zu | %10.0f %8.2f %12.2f | %10.0f %8.2f %12.2f\n", n, e0,
                e0 / static_cast<double>(n), paper_rec0[row], e2,
                e2 / static_cast<double>(n), paper_rec2[row]);
    ++row;
  }
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
