// T1 (Sec. 5.1, first table): construction cost vs community size.
//
// N in {200..1000}, maxl = 6, threshold 99% of maxl, refmax = 1, recmax in {0, 2}.
// Paper reference values: e/N ~ 70-80 for recmax = 0, ~23-26 for recmax = 2, flat in
// N (linear total cost).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/parallel_workload.h"
#include "sim/digest.h"

namespace pgrid {
namespace {

/// Parses a comma-separated --name=1,2,4 list of sizes (thread or peer counts).
std::vector<size_t> SizeList(const bench::Args& args, const std::string& name,
                             const std::string& fallback) {
  std::vector<size_t> out;
  std::string csv = args.GetString(name, fallback);
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const long v = std::strtol(csv.substr(pos, comma - pos).c_str(), nullptr, 10);
    if (v > 0) out.push_back(static_cast<size_t>(v));
    pos = comma + 1;
  }
  if (out.empty()) out.push_back(1);
  return out;
}

/// Parallel-construction scaling: for each community size, one large build per
/// thread count with the same seed, so rows are directly comparable (the
/// deterministic builder produces the same grid in every row; only the wall
/// clock changes -- enforced below by an FNV digest cross-check). Each grid
/// then serves a read-only parallel query workload at the same thread count.
/// Default sizes sweep 2k (the original regression scale) and 20k (paper
/// scale); pass --big=1 for the 100k arm, which takes minutes.
void RunParallelScaling(const bench::Args& args) {
  const uint64_t seed = args.GetInt("seed", 42);
  std::vector<size_t> peer_sizes = SizeList(args, "par-peers", "2000,20000");
  const size_t big_peers = static_cast<size_t>(args.GetInt("big-peers", 1000000));
  if (args.GetInt("big", 0) != 0) peer_sizes.push_back(big_peers);
  const size_t maxl = static_cast<size_t>(args.GetInt("par-maxl", 8));
  const uint64_t queries = static_cast<uint64_t>(args.GetInt("par-queries", 20000));
  const std::vector<size_t> threads = SizeList(args, "par-threads", "1,2,4,8");
  // The big arm sweeps fewer thread counts: each row is a full build of the
  // million-peer grid, so the default keeps it to a serial + one-scaled pair.
  const std::vector<size_t> big_threads = SizeList(args, "big-threads", "1,2");
  // Buddy lists dominate per-peer memory once replicas saturate (every peer at
  // the same leaf learns every other via transitive closure), so the scaling
  // bench bounds them. 0 restores the unbounded historical behavior.
  const size_t buddymax = static_cast<size_t>(args.GetInt("buddymax", 32));

  bench::JsonReport report("parallel_build");
  for (size_t peers : peer_sizes) {
    std::printf("\n-- parallel construction + query scaling (N=%zu, maxl=%zu, "
                "buddymax=%zu) --\n",
                peers, maxl, buddymax);
    std::printf("%7s | %10s %12s %9s | %12s %9s | %9s\n", "threads", "meetings",
                "meetings/s", "build s", "queries/s", "query s", "B/peer");
    uint64_t baseline_digest = 0;
    const std::vector<size_t>& thread_list = peers >= big_peers ? big_threads : threads;
    for (size_t t : thread_list) {
      // Always the parallel builder, even at t=1, so every row constructs the
      // identical grid and the rows compare pure scheduling overhead + scaling.
      ExchangeConfig config;
      config.maxl = maxl;
      config.refmax = 4;
      config.recmax = 2;
      config.recursion_fanout = 2;
      config.buddymax = buddymax;
      Grid grid(peers);
      Rng rng(seed);
      ExchangeEngine exchange(&grid, config, &rng);
      MeetingScheduler scheduler(peers);
      ParallelBuildOptions opts;
      opts.threads = t;
      ParallelGridBuilder builder(&grid, &exchange, &scheduler, &rng, opts);
      BuildReport br = builder.BuildToFractionOfMaxDepth(0.99, 200'000'000);

      // Thread-count determinism is the builder's contract; a bench row built
      // on a different grid would be comparing incomparable work, so fail loud.
      const uint64_t digest = sim::GridStateDigest(grid);
      if (t == thread_list.front()) {
        baseline_digest = digest;
      } else if (digest != baseline_digest) {
        std::fprintf(stderr,
                     "FATAL: t=%zu built a different grid than t=%zu at N=%zu "
                     "(digest %016llx vs %016llx)\n",
                     t, thread_list.front(), peers,
                     static_cast<unsigned long long>(digest),
                     static_cast<unsigned long long>(baseline_digest));
        std::exit(1);
      }

      // Per-peer storage cost (Sec. 6 measured in bytes): protocol state only,
      // identical across rows since the grids are identical.
      const size_t grid_bytes = grid.ApproxMemoryBytes();
      const double bytes_per_peer =
          static_cast<double>(grid_bytes) / static_cast<double>(peers);

      ParallelQueryOptions q;
      q.threads = t;
      q.num_queries = queries;
      q.key_length = maxl;
      q.seed = seed + 1;
      ParallelQueryReport qr = RunParallelQueries(&grid, nullptr, q);
      const double mps =
          br.seconds > 0.0 ? static_cast<double>(br.meetings) / br.seconds : 0.0;
      std::printf("%7zu | %10llu %12.0f %9.3f | %12.0f %9.3f | %9.0f\n", t,
                  static_cast<unsigned long long>(br.meetings), mps, br.seconds,
                  qr.queries_per_second, qr.seconds, bytes_per_peer);
      report.AddRow()
          .Int("peers", peers)
          .Int("threads", t)
          .Int("buddymax", buddymax)
          .Int("meetings", br.meetings)
          .Num("meetings_per_sec", mps)
          .Num("build_seconds", br.seconds)
          .Int("queries", qr.queries)
          .Num("queries_per_sec", qr.queries_per_second)
          .Num("query_seconds", qr.seconds)
          .Num("avg_path_length", br.avg_path_length)
          .Int("grid_bytes", grid_bytes)
          .Num("bytes_per_peer", bytes_per_peer)
          .Str("digest", [digest] {
            char buf[20];
            std::snprintf(buf, sizeof(buf), "%016llx",
                          static_cast<unsigned long long>(digest));
            return std::string(buf);
          }());
    }
  }
  report.WriteTo(args.GetString("json", "BENCH_parallel_build.json"));
}

void Run(const bench::Args& args) {
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t maxl = static_cast<size_t>(args.GetInt("maxl", 6));
  const int trials = static_cast<int>(args.GetInt("trials", 5));
  const size_t threads = static_cast<size_t>(args.GetInt("threads", 1));
  // Paper reference e/N per (N, recmax) for orientation in the output.
  const double paper_rec0[] = {79.71, 69.08, 72.39, 74.01, 74.61};
  const double paper_rec2[] = {24.68, 25.95, 25.38, 23.22, 25.16};

  bench::Banner("T1: peers vs exchanges",
                "Sec. 5.1 table 1 (N=200..1000, maxl=6, refmax=1, recmax 0 and 2)",
                "e grows linearly in N; e/N roughly constant; recmax=2 ~3x cheaper");
  std::printf("(measured values averaged over %d trials; the paper reports single "
              "runs)\n\n", trials);

  auto average = [&](size_t n, size_t recmax, uint64_t salt) {
    uint64_t sum = 0;
    for (int t = 0; t < trials; ++t) {
      auto s = bench::BuildGrid(n, maxl, /*refmax=*/1, recmax,
                                /*fanout=*/0, seed + salt + 977 * t,
                                /*target_avg_depth=*/-1.0,
                                /*max_meetings=*/200'000'000,
                                /*manage_data=*/true, threads);
      sum += s.report.exchanges;
    }
    return static_cast<double>(sum) / trials;
  };

  std::printf("%6s | %10s %8s %12s | %10s %8s %12s\n", "N", "e(rec0)", "e/N",
              "paper e/N", "e(rec2)", "e/N", "paper e/N");
  std::printf("-------+----------------------------------+--------------------------"
              "--------\n");
  bench::JsonReport table("t1_peers_vs_exchanges");
  int row = 0;
  for (size_t n : {200u, 400u, 600u, 800u, 1000u}) {
    const double e0 = average(n, 0, n);
    const double e2 = average(n, 2, n + 1);
    std::printf("%6zu | %10.0f %8.2f %12.2f | %10.0f %8.2f %12.2f\n", n, e0,
                e0 / static_cast<double>(n), paper_rec0[row], e2,
                e2 / static_cast<double>(n), paper_rec2[row]);
    table.AddRow()
        .Int("peers", n)
        .Num("exchanges_rec0", e0)
        .Num("exchanges_per_peer_rec0", e0 / static_cast<double>(n))
        .Num("paper_rec0", paper_rec0[row])
        .Num("exchanges_rec2", e2)
        .Num("exchanges_per_peer_rec2", e2 / static_cast<double>(n))
        .Num("paper_rec2", paper_rec2[row]);
    ++row;
  }
  table.WriteTo(args.GetString("table-json", "BENCH_t1_peers_vs_exchanges.json"));

  RunParallelScaling(args);
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
