// T3 (Sec. 5.1, third table): the recursion depth bound has an optimum.
//
// N = 500, maxl = 6, refmax = 1, recmax in {0..6}. Paper: cost falls steeply from
// recmax 0 to 2 (70.9 -> 25.5 e/N), then slowly rises again (overspecialization).

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace pgrid {
namespace {

void Run(const bench::Args& args) {
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t n = static_cast<size_t>(args.GetInt("peers", 500));
  const size_t maxl = static_cast<size_t>(args.GetInt("maxl", 6));
  const int trials = static_cast<int>(args.GetInt("trials", 3));
  const double paper[] = {70.87, 30.75, 25.47, 33.19, 37.91, 44.85, 50.26};

  bench::Banner("T3: recmax sweep",
                "Sec. 5.1 table 3 (N=500, maxl=6, refmax=1, recmax=0..6)",
                "steep drop to a small optimum (paper: recmax=2), mild rise after");

  std::printf("%7s | %10s %8s | %12s\n", "recmax", "e(avg)", "e/N", "paper e/N");
  std::printf("--------+---------------------+-------------\n");
  bench::JsonReport report("t3_recmax_sweep");
  double best_ratio = 1e18;
  size_t best_recmax = 0;
  for (size_t recmax = 0; recmax <= 6; ++recmax) {
    uint64_t sum = 0;
    for (int t = 0; t < trials; ++t) {
      auto s = bench::BuildGrid(n, maxl, 1, recmax, 0, seed + recmax * 101 + t);
      sum += s.report.exchanges;
    }
    const double e = static_cast<double>(sum) / trials;
    const double ratio = e / static_cast<double>(n);
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best_recmax = recmax;
    }
    std::printf("%7zu | %10.0f %8.2f | %12.2f\n", recmax, e, ratio, paper[recmax]);
    report.AddRow()
        .Int("recmax", recmax)
        .Num("exchanges", e)
        .Num("exchanges_per_peer", ratio)
        .Num("paper", paper[recmax]);
  }
  std::printf("\nmeasured optimum: recmax=%zu (paper: recmax=2)\n", best_recmax);
  report.WriteTo(args.GetString("json", "BENCH_t3_recmax_sweep.json"));
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
