// Shared infrastructure for the experiment-reproduction binaries.
//
// Every bench binary regenerates one table or figure from the paper's evaluation. It
// prints the measured rows next to the paper's reference values so the shape
// comparison (who wins, by what factor, where crossovers fall) is visible in the raw
// output. All binaries take --seed=<n> and, where meaningful, scale flags; defaults
// reproduce the paper's configuration.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/exchange.h"
#include "core/grid.h"
#include "core/grid_builder.h"
#include "core/parallel_builder.h"
#include "obs/export.h"
#include "sim/meeting_scheduler.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace pgrid {
namespace bench {

/// Minimal --flag=value command line parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// Returns the integer value of --name=<v>, or `fallback`.
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    return std::strtoll(value.c_str(), nullptr, 10);
  }

  /// Returns the double value of --name=<v>, or `fallback`.
  double GetDouble(const std::string& name, double fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    return std::strtod(value.c_str(), nullptr);
  }

  /// Returns the string value of --name=<v>, or `fallback`.
  std::string GetString(const std::string& name, const std::string& fallback) const {
    std::string value;
    if (!Lookup(name, &value)) return fallback;
    return value;
  }

  /// True iff --name was passed (with or without a value).
  bool Has(const std::string& name) const {
    std::string value;
    return Lookup(name, &value);
  }

 private:
  bool Lookup(const std::string& name, std::string* value) const {
    const std::string prefix = "--" + name;
    for (const std::string& a : args_) {
      if (a == prefix) {
        value->clear();
        return true;
      }
      if (a.rfind(prefix + "=", 0) == 0) {
        *value = a.substr(prefix.size() + 1);
        return true;
      }
    }
    return false;
  }

  std::vector<std::string> args_;
};

/// A grid plus everything needed to keep operating on it.
struct GridSetup {
  ExchangeConfig config;
  std::unique_ptr<Grid> grid;
  std::unique_ptr<Rng> rng;
  BuildReport report;
};

/// Builds a grid to `target_avg_depth` (or 0.99 * maxl when < 0) with fully online
/// construction, the paper's setting. `threads <= 1` runs the sequential
/// GridBuilder (the bit-exact legacy path); larger values run the deterministic
/// ParallelGridBuilder (core/parallel_builder.h), whose result is the same for
/// every thread count but differs from the sequential interleaving.
inline GridSetup BuildGrid(size_t num_peers, size_t maxl, size_t refmax, size_t recmax,
                           size_t recursion_fanout, uint64_t seed,
                           double target_avg_depth = -1.0,
                           uint64_t max_meetings = 200'000'000,
                           bool manage_data = true, size_t threads = 1,
                           size_t buddymax = 0) {
  GridSetup s;
  s.config.maxl = maxl;
  s.config.refmax = refmax;
  s.config.recmax = recmax;
  s.config.recursion_fanout = recursion_fanout;
  s.config.manage_data = manage_data;
  s.config.buddymax = buddymax;
  s.grid = std::make_unique<Grid>(num_peers);
  s.rng = std::make_unique<Rng>(seed);
  ExchangeEngine exchange(s.grid.get(), s.config, s.rng.get());
  MeetingScheduler scheduler(num_peers);
  const double target =
      target_avg_depth < 0 ? 0.99 * static_cast<double>(maxl) : target_avg_depth;
  if (threads <= 1) {
    GridBuilder builder(s.grid.get(), &exchange, &scheduler, s.rng.get());
    s.report = builder.BuildToAverageDepth(target, max_meetings);
  } else {
    ParallelBuildOptions opts;
    opts.threads = threads;
    ParallelGridBuilder builder(s.grid.get(), &exchange, &scheduler, s.rng.get(),
                                opts);
    s.report = builder.BuildToAverageDepth(target, max_meetings);
  }
  return s;
}

/// Prints the standard experiment banner.
inline void Banner(const char* experiment, const char* paper_ref,
                   const char* expectation) {
  std::printf("== %s ==\n", experiment);
  std::printf("paper: %s\n", paper_ref);
  std::printf("expected shape: %s\n\n", expectation);
}

/// Writes `content` to `file`, printing the standard "<what> written to" note.
/// The shared sink behind every observability dump flag (--metrics-json,
/// --trace-json, --profile-json, --timeline-json) so all bench binaries spell
/// them identically. Returns false (with a warning) on I/O failure.
inline bool DumpToFile(const std::string& file, const char* what,
                       const std::string& content) {
  FILE* f = std::fopen(file.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", file.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("%s written to %s\n", what, file.c_str());
  return true;
}

/// Honors --<flag>=FILE: writes `content` there. No-op when the flag is absent.
inline void MaybeDumpFile(const Args& args, const std::string& flag,
                          const char* what, const std::string& content) {
  if (!args.Has(flag)) return;
  const std::string file = args.GetString(flag, "");
  if (file.empty()) {
    std::fprintf(stderr, "warning: --%s needs a file path\n", flag.c_str());
    return;
  }
  DumpToFile(file, what, content);
}

/// Honors --metrics-json=FILE: writes the grid's metrics registry as JSON so a
/// run's counters (exchange.count, search.messages, update.fanout, ...) can be
/// consumed by scripts alongside the printed table. Call once at the end of a
/// bench binary; a no-op when the flag is absent.
inline void MaybeDumpMetrics(const Args& args, const Grid& grid) {
  MaybeDumpFile(args, "metrics-json", "metrics",
                obs::ToJson(grid.metrics().Snapshot()));
}

}  // namespace bench
}  // namespace pgrid
