// D1 (Sec. 6 table): P-Grid vs centralized server vs Gnutella flooding.
//
// Storage: P-Grid peers hold O(log D) routing references (plus their leaf share);
// a central server holds O(D). Query: P-Grid routes in O(log N) messages; the
// server's aggregate load grows O(N) with one query per peer per time unit;
// flooding broadcasts O(N) messages per query. The sweep makes the scaling visible.
//
// Flags: --seed, --queries_per_peer.

#include <cstdio>

#include "baseline/central_server.h"
#include "baseline/flooding.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/search.h"
#include "core/stats.h"
#include "workload/corpus.h"
#include "workload/key_generator.h"

namespace pgrid {
namespace {

void Run(const bench::Args& args) {
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t threads = static_cast<size_t>(args.GetInt("threads", 1));

  bench::Banner("D1: P-Grid vs central server vs flooding",
                "Sec. 6 comparison table",
                "P-Grid: per-peer storage O(log D), query O(log N) msgs; server: "
                "storage O(D), aggregate load O(N); flooding: O(N) msgs per query");

  std::printf("%6s %7s | %13s %12s | %13s %12s | %13s\n", "N", "D", "pgrid "
              "refs/peer", "pgrid msg/q", "server stored", "server load", "flood "
              "msg/q");
  std::printf("---------------+----------------------------+---------------------------"
              "-+--------------\n");

  bench::JsonReport report("d1_baseline_comparison");
  for (size_t n : {128u, 256u, 512u, 1024u, 2048u}) {
    const size_t d = 4 * n;
    const size_t maxl = 1;  // placeholder, recomputed below
    (void)maxl;
    // Depth scales with log2(N / target-replication): keep ~16 replicas per leaf.
    size_t depth = 1;
    while ((n >> (depth + 4)) >= 1) ++depth;
    auto s = bench::BuildGrid(n, depth, /*refmax=*/4, /*recmax=*/2, /*fanout=*/2,
                              seed + n, /*target_avg_depth=*/-1.0,
                              /*max_meetings=*/200'000'000, /*manage_data=*/true,
                              threads);

    Rng rng(seed + n + 1);
    KeyGenerator gen(KeyGenerator::Mode::kUniform, depth + 6);
    std::vector<PeerId> holders;
    auto corpus = MakeCorpus(d, n, gen, &rng, &holders);
    SeedGridPerfectly(s.grid.get(), corpus, holders);

    // P-Grid query cost: one query per peer (each peer issues one, as in the
    // paper's cost model).
    SearchEngine search(s.grid.get(), nullptr, &rng);
    uint64_t pgrid_msgs = 0;
    for (PeerId p = 0; p < n; ++p) {
      const DataItem& item = corpus[rng.UniformIndex(corpus.size())];
      pgrid_msgs += search.Query(p, item.key).messages;
    }

    // Central server: same workload.
    CentralServer server;
    for (size_t i = 0; i < corpus.size(); ++i) {
      IndexEntry e;
      e.holder = holders[i];
      e.item_id = corpus[i].id;
      e.key = corpus[i].key;
      e.version = 1;
      server.Publish(e);
    }
    for (PeerId p = 0; p < n; ++p) {
      server.Lookup(corpus[rng.UniformIndex(corpus.size())].key, &rng);
    }

    // Flooding: same items over an unstructured overlay; TTL large enough to cover
    // the network (worst case; real Gnutella truncates and misses).
    FloodingConfig fcfg;
    fcfg.mean_degree = 4;
    fcfg.ttl = 32;
    FloodingNetwork flood(n, fcfg, &rng);
    for (size_t i = 0; i < corpus.size(); ++i) flood.PlaceItem(holders[i], corpus[i]);
    uint64_t flood_msgs = 0;
    const size_t flood_queries = 32;  // sampled: flooding is expensive
    for (size_t q = 0; q < flood_queries; ++q) {
      const DataItem& item = corpus[rng.UniformIndex(corpus.size())];
      flood_msgs += flood
                        .Search(static_cast<PeerId>(rng.UniformIndex(n)), item.key,
                                nullptr, &rng)
                        .messages;
    }

    std::printf("%6zu %7zu | %13.1f %12.2f | %13zu %12llu | %13.1f\n", n, d,
                GridStats::AverageTotalRefs(*s.grid),
                static_cast<double>(pgrid_msgs) / static_cast<double>(n),
                server.StoragePerReplica(),
                static_cast<unsigned long long>(server.TotalLoad()),
                static_cast<double>(flood_msgs) / static_cast<double>(flood_queries));
    report.AddRow()
        .Int("peers", n)
        .Int("items", d)
        .Num("pgrid_refs_per_peer", GridStats::AverageTotalRefs(*s.grid))
        .Num("pgrid_msgs_per_query",
             static_cast<double>(pgrid_msgs) / static_cast<double>(n))
        .Int("server_stored", server.StoragePerReplica())
        .Int("server_load", server.TotalLoad())
        .Num("flood_msgs_per_query",
             static_cast<double>(flood_msgs) / static_cast<double>(flood_queries));
  }
  std::printf("\nreading the table: doubling N adds ~1 to pgrid msg/q (log N) while "
              "server load and flood msg/q double (linear).\n");
  report.WriteTo(args.GetString("json", "BENCH_d1_baseline_comparison.json"));
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
