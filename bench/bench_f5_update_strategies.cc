// F5 (Sec. 5.2, Figure 5): fraction of replicas found vs messages, per strategy.
//
// On the Gnutella-scale grid, repeatedly search for random keys of length 9 and
// measure what fraction of the actual replica set each update strategy identifies as
// a function of the messages it spends. Strategies: (1) repeated DFS, (2) repeated
// DFS + buddies, (3) repeated BFS. Paper: BFS is "by far superior"; the DFS variants
// are comparable to each other and saturate well below 100% for the same budget.
//
// Flags: --peers, --maxl, --refmax, --target, --keys, --online, --seed.

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/stats.h"
#include "core/update.h"
#include "sim/online_model.h"

namespace pgrid {
namespace {

struct SeriesPoint {
  double messages = 0;
  double fraction = 0;
};

void Run(const bench::Args& args) {
  const size_t n = static_cast<size_t>(args.GetInt("peers", 20000));
  const size_t maxl = static_cast<size_t>(args.GetInt("maxl", 10));
  const size_t refmax = static_cast<size_t>(args.GetInt("refmax", 20));
  const double target = args.GetDouble("target", 9.43);
  const size_t num_keys = static_cast<size_t>(args.GetInt("keys", 50));
  const double online_prob = args.GetDouble("online", 0.3);
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t threads = static_cast<size_t>(args.GetInt("threads", 1));
  const size_t key_len = static_cast<size_t>(args.GetInt("keylen", 9));

  bench::Banner("F5: finding all replicas (update strategies)",
                "Sec. 5.2 Fig. 5 (messages vs %% replicas identified)",
                "BFS >> DFS+buddies ~ DFS; hundreds of messages for high coverage");

  auto s = bench::BuildGrid(n, maxl, refmax, /*recmax=*/2, /*fanout=*/2, seed, target,
                            /*max_meetings=*/200'000'000, /*manage_data=*/true,
                            threads);
  std::printf("built: avg depth %.3f, %llu exchanges, %.2fs\n\n",
              s.report.avg_path_length,
              static_cast<unsigned long long>(s.report.exchanges), s.report.seconds);

  Rng rng(seed + 1);
  OnlineModel online(OnlineMode::kSnapshot, n, online_prob, &rng);
  UpdateEngine update(s.grid.get(), &online, &rng);

  // Each search pass runs under a fresh availability snapshot: repeated passes are
  // spread over time while peers cycle on and off, which is what lets the coverage
  // exceed the instantaneous online fraction (the paper's "finding all replicas"
  // experiment spends hundreds of messages per updated replica).
  const std::vector<size_t> repetition_sweep = {1, 2, 4, 8, 16, 32, 64};
  const UpdateStrategy strategies[] = {UpdateStrategy::kRepeatedDfs,
                                       UpdateStrategy::kRepeatedDfsBuddies,
                                       UpdateStrategy::kBreadthFirst};

  std::printf("%-12s", "strategy");
  for (size_t reps : repetition_sweep) std::printf(" | rep=%-3zu msgs  %%found", reps);
  std::printf("\n");

  bench::JsonReport report("f5_update_strategies");
  for (UpdateStrategy strategy : strategies) {
    std::vector<SeriesPoint> series(repetition_sweep.size());
    for (size_t k = 0; k < num_keys; ++k) {
      KeyPath key = KeyPath::Random(&rng, key_len);
      auto replicas = GridStats::ReplicasOf(*s.grid, key);
      if (replicas.empty()) continue;
      std::unordered_set<PeerId> reached;
      uint64_t messages = 0;
      size_t pass = 0;
      UpdateConfig cfg;
      cfg.recbreadth = strategy == UpdateStrategy::kBreadthFirst ? 2 : 1;
      cfg.repetition = 1;
      for (size_t i = 0; i < repetition_sweep.size(); ++i) {
        for (; pass < repetition_sweep[i]; ++pass) {
          online.Resample(&rng);
          UpdateOutcome o = update.Probe(key, strategy, cfg);
          messages += o.messages;
          reached.insert(o.reached.begin(), o.reached.end());
        }
        series[i].messages += static_cast<double>(messages);
        series[i].fraction += static_cast<double>(reached.size()) /
                              static_cast<double>(replicas.size());
      }
    }
    std::printf("%-12s", UpdateStrategyName(strategy));
    for (size_t i = 0; i < series.size(); ++i) {
      const SeriesPoint& p = series[i];
      std::printf(" | %11.1f %6.1f",
                  p.messages / static_cast<double>(num_keys),
                  100.0 * p.fraction / static_cast<double>(num_keys));
      report.AddRow()
          .Str("strategy", UpdateStrategyName(strategy))
          .Int("repetitions", repetition_sweep[i])
          .Num("avg_messages", p.messages / static_cast<double>(num_keys))
          .Num("pct_replicas_found",
               100.0 * p.fraction / static_cast<double>(num_keys));
    }
    std::printf("\n");
  }
  report.WriteTo(args.GetString("json", "BENCH_f5_update_strategies.json"));
  std::printf("\n(BFS uses recbreadth=2 per level; DFS variants route single-path "
              "per pass; one fresh availability snapshot per pass.)\n");
  bench::MaybeDumpMetrics(args, *s.grid);
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
