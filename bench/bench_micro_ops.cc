// Micro-benchmarks (google-benchmark) for the core operations: key algebra,
// exchange execution, query routing, and update propagation on a prebuilt grid.
// These measure implementation throughput, complementing the experiment binaries
// that reproduce the paper's tables.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/search.h"
#include "core/update.h"
#include "key/key_path.h"

namespace pgrid {
namespace {

void BM_KeyPathCommonPrefix(benchmark::State& state) {
  Rng rng(1);
  const size_t len = static_cast<size_t>(state.range(0));
  KeyPath a = KeyPath::Random(&rng, len);
  KeyPath b = a;
  if (len > 0) {
    b.PopBack();
    b.PushBack(ComplementBit(a.bit(len - 1)));  // differ at the last bit
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.CommonPrefixLength(b));
  }
}
BENCHMARK(BM_KeyPathCommonPrefix)->Arg(8)->Arg(64)->Arg(256);

void BM_KeyPathRandom(benchmark::State& state) {
  Rng rng(2);
  const size_t len = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(KeyPath::Random(&rng, len));
  }
}
BENCHMARK(BM_KeyPathRandom)->Arg(10)->Arg(64);

void BM_ExchangeMeeting(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Grid grid(n);
  Rng rng(3);
  ExchangeConfig cfg;
  cfg.maxl = 10;
  cfg.refmax = 4;
  cfg.recmax = 2;
  cfg.recursion_fanout = 2;
  ExchangeEngine exchange(&grid, cfg, &rng);
  MeetingScheduler scheduler(n);
  for (auto _ : state) {
    Meeting m = scheduler.Next(&rng);
    exchange.Exchange(m.a, m.b);
  }
  state.counters["exchanges"] = static_cast<double>(exchange.num_exchanges());
}
BENCHMARK(BM_ExchangeMeeting)->Arg(1000)->Arg(10000);

void BM_Query(benchmark::State& state) {
  static bench::GridSetup setup =
      bench::BuildGrid(static_cast<size_t>(state.range(0)), 8, 4, 2, 2, /*seed=*/4);
  Rng rng(5);
  SearchEngine search(setup.grid.get(), nullptr, &rng);
  uint64_t found = 0;
  for (auto _ : state) {
    KeyPath q = KeyPath::Random(&rng, 8);
    PeerId start = static_cast<PeerId>(rng.UniformIndex(setup.grid->size()));
    found += search.Query(start, q).found ? 1 : 0;
  }
  benchmark::DoNotOptimize(found);
}
BENCHMARK(BM_Query)->Arg(4096);

void BM_BfsUpdate(benchmark::State& state) {
  static bench::GridSetup setup = bench::BuildGrid(4096, 8, 4, 2, 2, /*seed=*/6);
  Rng rng(7);
  UpdateEngine update(setup.grid.get(), nullptr, &rng);
  UpdateConfig cfg;
  cfg.recbreadth = 2;
  cfg.repetition = 1;
  for (auto _ : state) {
    KeyPath q = KeyPath::Random(&rng, 8);
    benchmark::DoNotOptimize(
        update.Probe(q, UpdateStrategy::kBreadthFirst, cfg).reached.size());
  }
}
BENCHMARK(BM_BfsUpdate);

}  // namespace
}  // namespace pgrid

BENCHMARK_MAIN();
