// Micro-benchmarks (google-benchmark) for the core operations: key algebra,
// exchange execution, query routing, and update propagation on a prebuilt grid.
// These measure implementation throughput, complementing the experiment binaries
// that reproduce the paper's tables.
//
// Besides the google-benchmark section, two manual JSON reports are written:
// BENCH_micro_ops.json (--json=FILE; key algebra + parallel build/query rows)
// and BENCH_obs_overhead.json (--obs-json=FILE; the measured cost of the
// disabled tracing hooks -- see WriteObsOverheadReport and tools/check_obs.sh).
// --trace-json=FILE additionally dumps the tracing-on pass in chrome://tracing
// format. --obs-peers / --obs-queries scale the overhead section.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/parallel_workload.h"
#include "core/search.h"
#include "core/update.h"
#include "key/key_path.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

// Global allocation counter behind the replaceable operator new. The
// allocation-count section below reads it around tight loops of key-algebra
// operations to prove the inline-word KeyPath representation performs zero
// heap allocations per op (tools/check_memory.sh gates on the reported rate).
// Counting is one relaxed atomic increment per allocation: negligible next to
// malloc itself, and inert for every other section of this binary.
static std::atomic<uint64_t> g_alloc_count{0};

// GCC pairs the inlined replacement delete with the allocation it inlined at
// each call site and flags the malloc/free implementation as mismatched; the
// pairing is exactly the contract of a replaced global operator, so the
// warning is a false positive here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (n + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return ::operator new(n, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p, std::align_val_t{1});
}
void operator delete(void* p, std::size_t, std::align_val_t a) noexcept {
  ::operator delete(p, a);
}
void operator delete[](void* p, std::size_t, std::align_val_t a) noexcept {
  ::operator delete(p, a);
}

#pragma GCC diagnostic pop

namespace pgrid {
namespace {

void BM_KeyPathCommonPrefix(benchmark::State& state) {
  Rng rng(1);
  const size_t len = static_cast<size_t>(state.range(0));
  KeyPath a = KeyPath::Random(&rng, len);
  KeyPath b = a;
  if (len > 0) {
    b.PopBack();
    b.PushBack(ComplementBit(a.bit(len - 1)));  // differ at the last bit
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.CommonPrefixLength(b));
  }
}
BENCHMARK(BM_KeyPathCommonPrefix)->Arg(8)->Arg(64)->Arg(256);

void BM_KeyPathSuffixFrom(benchmark::State& state) {
  Rng rng(8);
  const size_t len = static_cast<size_t>(state.range(0));
  KeyPath a = KeyPath::Random(&rng, len);
  // Unaligned cut in the middle: the word-packed extraction's general case, and
  // what every QueryImpl routing hop executes.
  const size_t pos = len / 2 + 1 < len ? len / 2 + 1 : 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.SuffixFrom(pos));
  }
}
BENCHMARK(BM_KeyPathSuffixFrom)->Arg(8)->Arg(64)->Arg(256);

void BM_KeyPathConcat(benchmark::State& state) {
  Rng rng(9);
  const size_t len = static_cast<size_t>(state.range(0));
  KeyPath a = KeyPath::Random(&rng, len / 2 + 3);  // unaligned join point
  KeyPath b = KeyPath::Random(&rng, len);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Concat(b));
  }
}
BENCHMARK(BM_KeyPathConcat)->Arg(8)->Arg(64)->Arg(256);

void BM_KeyPathRandom(benchmark::State& state) {
  Rng rng(2);
  const size_t len = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(KeyPath::Random(&rng, len));
  }
}
BENCHMARK(BM_KeyPathRandom)->Arg(10)->Arg(64);

void BM_ExchangeMeeting(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Grid grid(n);
  Rng rng(3);
  ExchangeConfig cfg;
  cfg.maxl = 10;
  cfg.refmax = 4;
  cfg.recmax = 2;
  cfg.recursion_fanout = 2;
  ExchangeEngine exchange(&grid, cfg, &rng);
  MeetingScheduler scheduler(n);
  for (auto _ : state) {
    Meeting m = scheduler.Next(&rng);
    exchange.Exchange(m.a, m.b);
  }
  state.counters["exchanges"] = static_cast<double>(exchange.num_exchanges());
}
BENCHMARK(BM_ExchangeMeeting)->Arg(1000)->Arg(10000);

void BM_Query(benchmark::State& state) {
  static bench::GridSetup setup =
      bench::BuildGrid(static_cast<size_t>(state.range(0)), 8, 4, 2, 2, /*seed=*/4);
  Rng rng(5);
  SearchEngine search(setup.grid.get(), nullptr, &rng);
  uint64_t found = 0;
  for (auto _ : state) {
    KeyPath q = KeyPath::Random(&rng, 8);
    PeerId start = static_cast<PeerId>(rng.UniformIndex(setup.grid->size()));
    found += search.Query(start, q).found ? 1 : 0;
  }
  benchmark::DoNotOptimize(found);
}
BENCHMARK(BM_Query)->Arg(4096);

void BM_BfsUpdate(benchmark::State& state) {
  static bench::GridSetup setup = bench::BuildGrid(4096, 8, 4, 2, 2, /*seed=*/6);
  Rng rng(7);
  UpdateEngine update(setup.grid.get(), nullptr, &rng);
  UpdateConfig cfg;
  cfg.recbreadth = 2;
  cfg.repetition = 1;
  for (auto _ : state) {
    KeyPath q = KeyPath::Random(&rng, 8);
    benchmark::DoNotOptimize(
        update.Probe(q, UpdateStrategy::kBreadthFirst, cfg).reached.size());
  }
}
BENCHMARK(BM_BfsUpdate);

/// Manual-timing section: measures the operations whose scaling the JSON report
/// tracks across commits -- key algebra ns/op, sequential exchange throughput, and
/// parallel build/query throughput per thread count -- without google-benchmark's
/// per-run variance in the output format.
void WriteJsonReport(const bench::Args& args) {
  bench::JsonReport report("micro_ops");
  Rng rng(10);

  // Key algebra: ops/sec over a fixed iteration budget.
  {
    const size_t len = 256;
    const KeyPath a = KeyPath::Random(&rng, len);
    KeyPath b = a;
    b.PopBack();
    b.PushBack(ComplementBit(a.bit(len - 1)));
    constexpr uint64_t kIters = 2'000'000;
    Stopwatch watch;
    size_t sink = 0;
    for (uint64_t i = 0; i < kIters; ++i) sink += a.CommonPrefixLength(b);
    double secs = watch.ElapsedSeconds();
    benchmark::DoNotOptimize(sink);
    report.AddRow()
        .Str("op", "key_common_prefix_256")
        .Int("iters", kIters)
        .Num("seconds", secs)
        .Num("ops_per_sec", secs > 0 ? kIters / secs : 0);

    Stopwatch watch2;
    for (uint64_t i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(a.SuffixFrom(129));
    }
    secs = watch2.ElapsedSeconds();
    report.AddRow()
        .Str("op", "key_suffix_from_256")
        .Int("iters", kIters)
        .Num("seconds", secs)
        .Num("ops_per_sec", secs > 0 ? kIters / secs : 0);
  }

  // Parallel build + query throughput per thread count (deterministic: every
  // thread count produces the identical grid; see core/parallel_builder.h).
  // The parallel builder runs even at threads=1 -- bench::BuildGrid would fall
  // back to the sequential legacy builder there, which converges on a different
  // (equally valid) grid and would break the rows' like-for-like comparison.
  const size_t peers = static_cast<size_t>(args.GetInt("par-peers", 4096));
  const uint64_t queries = static_cast<uint64_t>(args.GetInt("par-queries", 8192));
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    bench::GridSetup s;
    s.config.maxl = 8;
    s.config.refmax = 4;
    s.config.recmax = 2;
    s.config.recursion_fanout = 2;
    s.grid = std::make_unique<Grid>(peers);
    s.rng = std::make_unique<Rng>(11);
    ExchangeEngine exchange(s.grid.get(), s.config, s.rng.get());
    MeetingScheduler scheduler(peers);
    ParallelBuildOptions opts;
    opts.threads = threads;
    ParallelGridBuilder builder(s.grid.get(), &exchange, &scheduler, s.rng.get(),
                                opts);
    s.report = builder.BuildToFractionOfMaxDepth(0.99, 200'000'000);
    ParallelQueryOptions q;
    q.threads = threads;
    q.num_queries = queries;
    q.key_length = 8;
    q.seed = 12;
    ParallelQueryReport qr = RunParallelQueries(s.grid.get(), nullptr, q);
    report.AddRow()
        .Str("op", "parallel_build_query")
        .Int("peers", peers)
        .Int("threads", threads)
        .Int("meetings", s.report.meetings)
        .Num("meetings_per_sec",
             s.report.seconds > 0
                 ? static_cast<double>(s.report.meetings) / s.report.seconds
                 : 0)
        .Num("build_seconds", s.report.seconds)
        .Num("queries_per_sec", qr.queries_per_second)
        .Num("query_seconds", qr.seconds);
  }

  report.WriteTo(args.GetString("json", "BENCH_micro_ops.json"));
}

/// Allocation-count section: heap allocations per key-algebra operation,
/// measured with the counting operator new above. Paths of <= 64 bits live in
/// the KeyPath's inline word, so the routing hot path (common-prefix, suffix,
/// append, push/pop cycles at protocol depths) must run allocation-free; the
/// 256-bit arm is the contrast case where the heap spill is expected.
/// tools/check_memory.sh fails the build if the inline rates regress.
void WriteAllocReport(const bench::Args& args) {
  bench::JsonReport report("alloc_counts");
  Rng rng(33);
  constexpr uint64_t kIters = 200'000;

  const auto measure = [&](const char* op, auto&& body) {
    const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (uint64_t i = 0; i < kIters; ++i) body();
    const uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - before;
    const double per_op = static_cast<double>(allocs) / kIters;
    std::printf("alloc/op %-28s %8.4f\n", op, per_op);
    report.AddRow().Str("op", op).Int("iters", kIters).Int("allocs", allocs).Num(
        "allocs_per_op", per_op);
  };

  const KeyPath a64 = KeyPath::Random(&rng, 64);
  KeyPath b64 = a64;
  b64.PopBack();
  b64.PushBack(ComplementBit(a64.bit(63)));
  const KeyPath a8 = KeyPath::Random(&rng, 8);
  const KeyPath a256 = KeyPath::Random(&rng, 256);

  measure("inline_common_prefix_64", [&] {
    benchmark::DoNotOptimize(a64.CommonPrefixLength(b64));
  });
  measure("inline_suffix_from_64", [&] {
    benchmark::DoNotOptimize(a64.SuffixFrom(29));
  });
  measure("inline_concat_8_plus_8", [&] {
    benchmark::DoNotOptimize(a8.Concat(a8));
  });
  measure("inline_copy_64", [&] {
    KeyPath copy = a64;
    benchmark::DoNotOptimize(&copy);
  });
  KeyPath walker = KeyPath::Random(&rng, 10);
  measure("inline_push_pop_10", [&] {
    walker.PushBack(1);
    walker.PopBack();
    benchmark::DoNotOptimize(&walker);
  });
  measure("heap_suffix_from_256", [&] {
    benchmark::DoNotOptimize(a256.SuffixFrom(3));
  });

  report.WriteTo(args.GetString("alloc-json", "BENCH_alloc_counts.json"));
}

/// Observability-overhead section: what do the disabled trace hooks cost on the
/// query hot path? Every instrumented site is one null-check branch when no
/// recorder is attached (obs/trace.h), so the estimate is
///
///   est_off_overhead_pct = null_site_ns * sites_per_query / query_ns_off
///
/// with every factor measured here: null_site_ns from a tight loop over a
/// volatile-null TraceSpan, sites_per_query from the recorded event count of a
/// tracing-on pass, query_ns_off from the faster of two tracing-off passes
/// (two passes so the run-to-run noise floor is visible next to the estimate).
/// tools/check_obs.sh asserts est_off_overhead_pct < 2 on this file's output.
void WriteObsOverheadReport(const bench::Args& args) {
  const size_t peers = static_cast<size_t>(args.GetInt("obs-peers", 4096));
  const uint64_t queries =
      static_cast<uint64_t>(args.GetInt("obs-queries", 30'000));
  bench::GridSetup setup = bench::BuildGrid(peers, 8, 4, 2, 2, /*seed=*/21);
  Rng rng(22);
  SearchEngine search(setup.grid.get(), nullptr, &rng);

  // One pass of the identical seeded query stream; returns wall seconds.
  const auto run_pass = [&](uint64_t pass_seed) {
    Rng qrng(pass_seed);
    uint64_t found = 0;
    Stopwatch watch;
    for (uint64_t q = 0; q < queries; ++q) {
      KeyPath key = KeyPath::Random(&qrng, 8);
      PeerId start = static_cast<PeerId>(qrng.UniformIndex(setup.grid->size()));
      found += search.Query(start, key).found ? 1 : 0;
    }
    const double secs = watch.ElapsedSeconds();
    benchmark::DoNotOptimize(found);
    return secs;
  };

  const double off_a = run_pass(23);
  const double off_b = run_pass(23);
  obs::TraceRecorder recorder(1 << 20);
  setup.grid->SetTraceRecorder(&recorder);
  const double on = run_pass(23);
  setup.grid->SetTraceRecorder(nullptr);
  const double sites_per_query =
      static_cast<double>(recorder.size() + recorder.dropped()) /
      static_cast<double>(queries);

  // The disabled-site cost itself: a TraceSpan against a null recorder. The
  // volatile load stops the compiler from hoisting the null check out of the
  // loop, which is exactly the per-site work a real call site performs.
  obs::TraceRecorder* volatile null_recorder = nullptr;
  constexpr uint64_t kSpanIters = 20'000'000;
  Stopwatch span_watch;
  for (uint64_t i = 0; i < kSpanIters; ++i) {
    obs::TraceSpan span(null_recorder, "off");
    benchmark::DoNotOptimize(&span);
  }
  const double null_site_ns =
      span_watch.ElapsedSeconds() * 1e9 / static_cast<double>(kSpanIters);

  const double off_secs = off_a < off_b ? off_a : off_b;
  const double query_ns_off = off_secs * 1e9 / static_cast<double>(queries);
  const double est_off_overhead_pct =
      query_ns_off > 0 ? 100.0 * null_site_ns * sites_per_query / query_ns_off
                       : 0.0;
  const double noise_pct =
      off_secs > 0 ? 100.0 * (off_a > off_b ? off_a - off_b : off_b - off_a) /
                         off_secs
                   : 0.0;

  std::printf("\nobs overhead: %.3f ns/site (null recorder), %.1f sites/query, "
              "%.0f ns/query off => est %.4f%% (noise floor %.2f%%, tracing-on "
              "pass %+.1f%%)\n",
              null_site_ns, sites_per_query, query_ns_off, est_off_overhead_pct,
              noise_pct, off_secs > 0 ? 100.0 * (on - off_secs) / off_secs : 0.0);

  bench::JsonReport report("obs_overhead");
  const auto add_pass = [&](const char* op, double secs) {
    report.AddRow()
        .Str("op", op)
        .Int("peers", peers)
        .Int("queries", queries)
        .Num("seconds", secs)
        .Num("queries_per_sec", secs > 0 ? queries / secs : 0)
        .Num("ns_per_query", queries > 0 ? secs * 1e9 / queries : 0);
  };
  add_pass("query_trace_off_a", off_a);
  add_pass("query_trace_off_b", off_b);
  add_pass("query_trace_on", on);
  report.AddRow()
      .Str("op", "null_span")
      .Int("iters", kSpanIters)
      .Num("ns_per_op", null_site_ns);
  report.AddRow()
      .Str("op", "estimate")
      .Num("null_site_ns", null_site_ns)
      .Num("sites_per_query", sites_per_query)
      .Num("query_ns_off", query_ns_off)
      .Num("est_off_overhead_pct", est_off_overhead_pct)
      .Num("noise_floor_pct", noise_pct)
      .Int("trace_events", recorder.size())
      .Int("trace_dropped", recorder.dropped());
  report.WriteTo(args.GetString("obs-json", "BENCH_obs_overhead.json"));
  bench::MaybeDumpFile(args, "trace-json", "trace",
                       obs::TraceToChromeJson(recorder.events()));
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // consumes --benchmark_* flags only
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pgrid::bench::Args args(argc, argv);
  pgrid::WriteJsonReport(args);
  pgrid::WriteAllocReport(args);
  pgrid::WriteObsOverheadReport(args);
  return 0;
}
