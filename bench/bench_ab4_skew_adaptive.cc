// AB4 (ablation, Sec. 6 extension): data-aware splitting under skewed keys.
//
// The paper's base algorithm assumes uniform keys; under skew, uniform splitting
// leaves the peers of dense regions with far bigger leaf indexes than those of
// sparse regions. DataThresholdPolicy splits a region only while it holds enough
// data, growing the trie deeper exactly where the keys are. We compare per-peer
// leaf-index load (max, p99, imbalance = max/mean) for plain maxl splitting vs the
// adaptive policy, on uniform and on heavily biased key populations.
//
// Flags: --peers, --items, --seed, --bias (P(bit=1) for the skewed corpus).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/split_policy.h"
#include "core/stats.h"
#include "workload/corpus.h"
#include "workload/key_generator.h"

namespace pgrid {
namespace {

struct LoadProfile {
  double mean = 0;
  size_t max = 0;
  size_t p99 = 0;
  double imbalance = 0;  // max / mean
  double avg_depth = 0;
  size_t empty_peers = 0;
};

LoadProfile Run(size_t num_peers, size_t num_items, double bias, bool adaptive,
                uint64_t seed) {
  Grid grid(num_peers);
  Rng rng(seed);
  ExchangeConfig config;
  config.maxl = adaptive ? 12 : 6;  // adaptive: generous hard cap, policy decides
  config.refmax = 3;
  config.recmax = 2;
  config.recursion_fanout = 2;
  DataThresholdPolicy policy(/*min_items=*/2 * num_items / num_peers + 4,
                             /*hard_cap=*/12, /*bootstrap_depth=*/1,
                             /*clone_imbalance=*/3.0);
  ExchangeEngine exchange(&grid, config, &rng, nullptr,
                          adaptive ? &policy : nullptr);

  KeyGenerator gen(bias == 0.5 ? KeyGenerator::Mode::kUniform
                               : KeyGenerator::Mode::kBiasedBits,
                   16, bias);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(num_items, num_peers, gen, &rng, &holders);
  SeedGridAtHolders(&grid, corpus, holders);

  MeetingScheduler scheduler(num_peers);
  for (size_t m = 0; m < num_peers * 400; ++m) {
    Meeting meeting = scheduler.Next(&rng);
    exchange.Exchange(meeting.a, meeting.b);
  }

  LoadProfile out;
  std::vector<size_t> loads;
  for (const PeerState& p : grid) {
    loads.push_back(p.index().size());
    out.avg_depth += static_cast<double>(p.depth());
    if (p.index().empty()) ++out.empty_peers;
  }
  out.avg_depth /= static_cast<double>(num_peers);
  std::sort(loads.begin(), loads.end());
  size_t total = 0;
  for (size_t l : loads) total += l;
  out.mean = static_cast<double>(total) / static_cast<double>(num_peers);
  out.max = loads.back();
  out.p99 = loads[loads.size() * 99 / 100];
  out.imbalance = out.mean > 0 ? static_cast<double>(out.max) / out.mean : 0;
  return out;
}

void Print(const char* label, const LoadProfile& p) {
  std::printf("%-22s | %8.1f %6zu %6zu %9.1f | %9.2f %11zu\n", label, p.mean, p.p99,
              p.max, p.imbalance, p.avg_depth, p.empty_peers);
}

void RunAll(const bench::Args& args) {
  const size_t peers = static_cast<size_t>(args.GetInt("peers", 512));
  const size_t items = static_cast<size_t>(args.GetInt("items", 8192));
  // Default 0.3: heavy but physically coverable skew (the depth needed to dilute
  // the hottest region stays within the policy's hard cap). Pathological values
  // like 0.1 concentrate more mass in one corner than any bounded-depth trie can
  // spread; the policy still helps there but cannot fully equalize.
  const double bias = args.GetDouble("bias", 0.3);
  const uint64_t seed = args.GetInt("seed", 42);

  bench::Banner("AB4: skew-adaptive splitting",
                "Sec. 6 extension (data-aware construction)",
                "under skewed keys, the adaptive policy cuts the leaf-load "
                "imbalance (max/mean) versus plain maxl splitting");

  std::printf("%zu peers, %zu items, bias %.2f\n\n", peers, items, bias);
  std::printf("%-22s | %8s %6s %6s %9s | %9s %11s\n", "configuration",
              "mean", "p99", "max", "max/mean", "avg depth", "empty peers");
  std::printf("-----------------------+----------------------------------+----------"
              "-------------\n");
  bench::JsonReport report("ab4_skew_adaptive");
  const auto measure = [&](const char* label, double b, bool adaptive,
                           uint64_t salt) {
    LoadProfile p = Run(peers, items, b, adaptive, seed + salt);
    Print(label, p);
    report.AddRow()
        .Str("configuration", label)
        .Num("bias", b)
        .Num("mean_load", p.mean)
        .Int("p99_load", p.p99)
        .Int("max_load", p.max)
        .Num("imbalance", p.imbalance)
        .Num("avg_depth", p.avg_depth)
        .Int("empty_peers", p.empty_peers);
  };
  measure("uniform keys, plain", 0.5, false, 0);
  measure("uniform keys, adaptive", 0.5, true, 1);
  measure("skewed keys, plain", bias, false, 2);
  measure("skewed keys, adaptive", bias, true, 3);
  report.WriteTo(args.GetString("json", "BENCH_ab4_skew_adaptive.json"));
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::RunAll(args);
  return 0;
}
