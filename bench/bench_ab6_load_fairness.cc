// AB6 (paper claim check): communication load is spread "equally for all peers".
//
// The paper's scalability claim (Sec. 1) is not just O(log N) total cost but that
// storage and communication scale "equally for all nodes". We route a large query
// workload through a converged grid and report the per-peer served-message
// distribution (mean, median, p99, max, idle peers), sweeping refmax: more
// references per level spread the routing choices wider and should flatten the
// distribution. A replicated central server is shown for contrast.
//
// Flags: --peers, --queries, --seed.

#include <cstdio>

#include "baseline/central_server.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/search.h"
#include "core/stats.h"

namespace pgrid {
namespace {

void Run(const bench::Args& args) {
  const size_t peers = static_cast<size_t>(args.GetInt("peers", 1024));
  const size_t queries = static_cast<size_t>(args.GetInt("queries", 50000));
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t threads = static_cast<size_t>(args.GetInt("threads", 1));
  const size_t maxl = 6;

  bench::Banner("AB6: per-peer communication load",
                "Sec. 1 claim: cost scales 'equally for all peers'",
                "served-message distribution flattens as refmax grows; no peer is a "
                "bottleneck (contrast: a central server serves everything)");

  std::printf("%zu peers, %zu queries, maxl=%zu\n\n", peers, queries, maxl);
  std::printf("%10s | %8s %6s %6s %6s %10s %6s\n", "refmax", "mean", "p50", "p99",
              "max", "max/mean", "idle");
  std::printf("-----------+---------------------------------------------------\n");
  bench::JsonReport report("ab6_load_fairness");
  for (size_t refmax : {1u, 2u, 4u, 8u}) {
    auto s = bench::BuildGrid(peers, maxl, refmax, 2, 2, seed + refmax,
                              /*target_avg_depth=*/-1.0,
                              /*max_meetings=*/200'000'000, /*manage_data=*/true,
                              threads);
    Rng rng(seed + 100 + refmax);
    SearchEngine search(s.grid.get(), nullptr, &rng);
    s.grid->ResetQueryLoad();
    for (size_t q = 0; q < queries; ++q) {
      PeerId start = static_cast<PeerId>(rng.UniformIndex(peers));
      (void)search.Query(start, KeyPath::Random(&rng, maxl));
    }
    GridStats::LoadProfile p = GridStats::QueryLoadProfile(*s.grid);
    std::printf("%10zu | %8.1f %6llu %6llu %6llu %10.2f %6zu\n", refmax, p.mean,
                static_cast<unsigned long long>(p.p50),
                static_cast<unsigned long long>(p.p99),
                static_cast<unsigned long long>(p.max), p.imbalance, p.idle_peers);
    report.AddRow()
        .Int("refmax", refmax)
        .Num("mean", p.mean)
        .Int("p50", p.p50)
        .Int("p99", p.p99)
        .Int("max", p.max)
        .Num("imbalance", p.imbalance)
        .Int("idle_peers", p.idle_peers);
  }
  report.WriteTo(args.GetString("json", "BENCH_ab6_load_fairness.json"));

  // Central-server contrast: every query is served by one of a handful of replicas.
  CentralServer server(4);
  Rng rng(seed);
  IndexEntry e;
  e.holder = 0;
  e.item_id = 1;
  e.key = KeyPath::FromString("0").value();
  server.Publish(e);
  for (size_t q = 0; q < queries; ++q) server.Lookup(e.key, &rng);
  std::printf("\ncentral server (4 replicas): %llu lookups served per replica -- "
              "every client message lands on the same %d machines.\n",
              static_cast<unsigned long long>(server.TotalLoad() / 4), 4);
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
