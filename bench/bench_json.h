// Minimal machine-readable result reporter for the bench binaries.
//
// A bench run appends flat rows (string/number fields, insertion-ordered) and
// writes them as one JSON document:
//
//   {
//     "benchmark": "parallel_build",
//     "rows": [
//       {"peers": 20000, "threads": 4, "meetings_per_sec": 181234.5, ...},
//       ...
//     ]
//   }
//
// so scaling tables (BENCH_parallel_build.json, BENCH_micro_ops.json) can be
// consumed by scripts without scraping the human-readable stdout tables. No
// external JSON dependency. Doubles are rounded to 6 decimal places (trailing
// zeros trimmed) rather than round-tripped exactly: bench values are
// measurements, and fixed precision keeps reruns diffable instead of spraying
// artifacts like 0.48681599999999997 across the report.

#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace pgrid {
namespace bench {

/// One flat JSON object; fields keep insertion order.
class JsonRow {
 public:
  JsonRow& Int(const std::string& name, uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    fields_.emplace_back(name, buf);
    return *this;
  }

  JsonRow& Num(const std::string& name, double v) {
    char buf[64];
    const double r = v < 0 ? -v : v;
    if (v == static_cast<double>(static_cast<long long>(v)) && r < 1e15) {
      // Integral value: emit without a decimal point or exponent.
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
      // Fixed 6-decimal precision, trailing zeros trimmed (keep >= 1 decimal
      // so the field stays visibly a float).
      std::snprintf(buf, sizeof(buf), "%.6f", v);
      char* dot = std::strchr(buf, '.');
      if (dot != nullptr) {
        char* end = buf + std::strlen(buf) - 1;
        while (end > dot + 1 && *end == '0') *end-- = '\0';
      }
    }
    fields_.emplace_back(name, buf);
    return *this;
  }

  JsonRow& Str(const std::string& name, const std::string& v) {
    std::string quoted = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') quoted.push_back('\\');
      quoted.push_back(c);
    }
    quoted.push_back('"');
    fields_.emplace_back(name, std::move(quoted));
    return *this;
  }

  void AppendTo(std::string* out) const {
    out->push_back('{');
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out->append(", ");
      out->push_back('"');
      out->append(fields_[i].first);
      out->append("\": ");
      out->append(fields_[i].second);
    }
    out->push_back('}');
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // name -> rendered value
};

/// Accumulates rows for one benchmark and writes them as a JSON file.
class JsonReport {
 public:
  explicit JsonReport(std::string benchmark) : benchmark_(std::move(benchmark)) {}

  JsonRow& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  std::string ToJson() const {
    std::string out = "{\n  \"benchmark\": \"" + benchmark_ + "\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out.append("    ");
      rows_[i].AppendTo(&out);
      if (i + 1 < rows_.size()) out.push_back(',');
      out.push_back('\n');
    }
    out.append("  ]\n}\n");
    return out;
  }

  /// Writes the document; prints a note on success, a warning on failure.
  bool WriteTo(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("results written to %s\n", path.c_str());
    return true;
  }

 private:
  std::string benchmark_;
  std::vector<JsonRow> rows_;
};

}  // namespace bench
}  // namespace pgrid
