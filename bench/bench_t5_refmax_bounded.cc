// T5 (Sec. 5.1, fifth table): bounding the recursion fan-out to 2 stabilizes the
// construction cost across refmax -- the paper's "simple way to fix" T4's blow-up.
//
// N = 1000, maxl = 6, recmax = 2, refmax in {1..4}, recursive calls to at most 2
// randomly selected referenced peers. Paper: e/N = 23.8, 37.7, 41.0, 43.9.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace pgrid {
namespace {

void Run(const bench::Args& args) {
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t n = static_cast<size_t>(args.GetInt("peers", 1000));
  const double paper[] = {23.826, 37.689, 40.961, 43.914};

  bench::Banner("T5: refmax sweep, fan-out bounded to 2",
                "Sec. 5.1 table 5 (N=1000, maxl=6, recmax=2, fan-out=2)",
                "e/N saturates (~flat beyond refmax=2) instead of exploding");

  std::printf("%7s | %10s %8s | %12s\n", "refmax", "e", "e/N", "paper e/N");
  std::printf("--------+---------------------+-------------\n");
  bench::JsonReport report("t5_refmax_bounded");
  for (size_t refmax = 1; refmax <= 4; ++refmax) {
    auto s = bench::BuildGrid(n, /*maxl=*/6, refmax, /*recmax=*/2,
                              /*fanout=*/2, seed + refmax);
    std::printf("%7zu | %10llu %8.2f | %12.2f\n", refmax,
                static_cast<unsigned long long>(s.report.exchanges),
                static_cast<double>(s.report.exchanges) / static_cast<double>(n),
                paper[refmax - 1]);
    report.AddRow()
        .Int("refmax", refmax)
        .Int("exchanges", s.report.exchanges)
        .Num("exchanges_per_peer",
             static_cast<double>(s.report.exchanges) / static_cast<double>(n))
        .Num("paper", paper[refmax - 1]);
  }
  report.WriteTo(args.GetString("json", "BENCH_t5_refmax_bounded.json"));
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
