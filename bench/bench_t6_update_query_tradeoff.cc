// T6 (Sec. 5.2, final table): the update/query cost trade-off.
//
// 100 updates; each updated item queried 10 times (1000 queries/configuration).
// Updates propagate by BFS with fan-out `recbreadth` in {2, 3}, restarted
// `repetition` in {1, 2, 3} times. Reads are either single queries
// (non-repetitive: cheap, successrate < 1) or repeated queries with a majority
// decision (repetitive: successrate ~ 1, cost falls as insertion effort grows).
//
// Paper shape: non-repetitive successrate climbs 0.65 -> 0.994 with insertion
// effort at ~5.5 messages per query; repetitive search reaches successrate 1 with
// query cost falling from ~10^2 to ~10^1 messages. Combining cheap updates with
// repeated queries dominates aggressive updates with single queries.
//
// Flags: --peers, --maxl, --refmax, --target, --updates, --queries_per_update,
//        --online, --quorum, --seed.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/search.h"
#include "core/stats.h"
#include "core/update.h"
#include "sim/online_model.h"

namespace pgrid {
namespace {

struct Row {
  size_t recbreadth;
  size_t repetition;
  double successrate;
  double query_cost;
  double insertion_cost;
};

void Run(const bench::Args& args) {
  const size_t n = static_cast<size_t>(args.GetInt("peers", 20000));
  const size_t maxl = static_cast<size_t>(args.GetInt("maxl", 10));
  const size_t refmax = static_cast<size_t>(args.GetInt("refmax", 20));
  const double target = args.GetDouble("target", 9.43);
  const size_t updates = static_cast<size_t>(args.GetInt("updates", 100));
  const size_t queries_per_update =
      static_cast<size_t>(args.GetInt("queries_per_update", 10));
  const double online_prob = args.GetDouble("online", 0.3);
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t threads = static_cast<size_t>(args.GetInt("threads", 1));
  const size_t key_len = static_cast<size_t>(args.GetInt("keylen", 9));
  // Fraction of peers whose availability cycles between propagation passes and
  // between the update and its queries (see PartialResample). 0 pins the whole
  // experiment to one snapshot; 1 decorrelates it completely.
  const double churn = args.GetDouble("churn", 0.25);

  bench::Banner("T6: update/query cost trade-off",
                "Sec. 5.2 final table (100 updates x 10 queries each)",
                "repetitive search: successrate ~1, cost falls with insertion effort;"
                " non-repetitive: ~5.5 msg, successrate 0.65..0.99");

  auto s = bench::BuildGrid(n, maxl, refmax, /*recmax=*/2, /*fanout=*/2, seed, target,
                            /*max_meetings=*/200'000'000, /*manage_data=*/true,
                            threads);
  std::printf("built: avg depth %.3f, %llu exchanges, %.2fs\n\n",
              s.report.avg_path_length,
              static_cast<unsigned long long>(s.report.exchanges), s.report.seconds);

  Rng rng(seed + 1);
  OnlineModel online(OnlineMode::kSnapshot, n, online_prob, &rng);
  SearchEngine search(s.grid.get(), &online, &rng);
  UpdateEngine update(s.grid.get(), &online, &rng);
  ReliableReadConfig read_cfg;
  read_cfg.quorum = static_cast<size_t>(args.GetInt("quorum", 3));
  read_cfg.max_attempts = 64;

  auto run_config = [&](size_t recbreadth, size_t repetition, bool repetitive) {
    Row row{recbreadth, repetition, 0, 0, 0};
    size_t successes = 0, total_queries = 0;
    uint64_t query_msgs = 0, insert_msgs = 0;
    for (size_t u = 0; u < updates; ++u) {
      online.Resample(&rng);  // one availability snapshot per update + its queries
      KeyPath key = KeyPath::Random(&rng, key_len);
      // Synthetic item: perfectly consistent at version 1 before the update.
      const ItemId item = u + 1;
      auto replicas = GridStats::ReplicasOf(*s.grid, key);
      if (replicas.empty()) continue;
      IndexEntry entry;
      entry.holder = replicas.front();
      entry.item_id = item;
      entry.key = key;
      entry.version = 1;
      for (PeerId r : replicas) s.grid->peer(r).index().InsertOrRefresh(entry);

      // Each propagation restart runs after some churn (the repetitions are spread
      // over a short time window, like F5).
      UpdateConfig ucfg;
      ucfg.recbreadth = recbreadth;
      ucfg.repetition = 1;
      for (size_t rep = 0; rep < repetition; ++rep) {
        online.PartialResample(&rng, churn);
        UpdateOutcome o = update.Propagate(key, item, /*version=*/2,
                                           UpdateStrategy::kBreadthFirst, ucfg);
        insert_msgs += o.messages;
      }
      // Queries happen a little later; only a fraction of the population has cycled
      // on/off since the update. The residual correlation -- replicas that were
      // findable during the update are likely still findable -- is exactly the
      // effect the paper points out ("replicas that are found during updates are
      // also more likely to be found during queries").
      online.PartialResample(&rng, churn);

      for (size_t q = 0; q < queries_per_update; ++q) {
        ++total_queries;
        if (repetitive) {
          ReliableReadResult r = search.ReadVersion(key, item, read_cfg);
          query_msgs += r.messages;
          if (r.version == 2) ++successes;
        } else {
          auto start = search.RandomOnlinePeer();
          if (!start.has_value()) continue;
          QueryResult r = search.Query(*start, key);
          query_msgs += r.messages;
          if (r.found &&
              s.grid->peer(r.responder).index().LatestVersionOf(item) == 2) {
            ++successes;
          }
        }
      }
    }
    row.successrate =
        static_cast<double>(successes) / static_cast<double>(total_queries);
    row.query_cost =
        static_cast<double>(query_msgs) / static_cast<double>(total_queries);
    row.insertion_cost = static_cast<double>(insert_msgs) / static_cast<double>(updates);
    return row;
  };

  const char* header = "%11s %11s %12s %11s %15s\n";
  bench::JsonReport report("t6_update_query_tradeoff");
  for (bool repetitive : {true, false}) {
    std::printf("%s search (quorum=%zu):\n",
                repetitive ? "repetitive" : "non-repetitive",
                repetitive ? read_cfg.quorum : 1);
    std::printf(header, "recbreadth", "repetition", "successrate", "query cost",
                "insertion cost");
    for (size_t recbreadth : {2u, 3u}) {
      for (size_t repetition : {1u, 2u, 3u}) {
        Row r = run_config(recbreadth, repetition, repetitive);
        std::printf("%11zu %11zu %12.3f %11.1f %15.1f\n", r.recbreadth, r.repetition,
                    r.successrate, r.query_cost, r.insertion_cost);
        report.AddRow()
            .Str("search", repetitive ? "repetitive" : "non-repetitive")
            .Int("recbreadth", r.recbreadth)
            .Int("repetition", r.repetition)
            .Num("successrate", r.successrate)
            .Num("query_cost", r.query_cost)
            .Num("insertion_cost", r.insertion_cost);
      }
    }
    std::printf("\n");
  }
  report.WriteTo(args.GetString("json", "BENCH_t6_update_query_tradeoff.json"));
  std::printf("paper reference (repetitive):     successrate 1.0, query cost "
              "137->13, insertion cost 78->2086\n");
  std::printf("paper reference (non-repetitive): successrate 0.65->0.994, query "
              "cost ~5.5, insertion cost 72->2080\n");
  bench::MaybeDumpMetrics(args, *s.grid);
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
