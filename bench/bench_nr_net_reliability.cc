// NR: networked search reliability under scripted message loss.
//
// The SR experiment (Sec. 5.2) replayed over the real node + transport stack:
// a community of networked peers self-organizes over an in-process bus wrapped
// in the seeded fault-injection layer, then random-key searches run while the
// layer drops a configurable fraction of all messages. Printed side by side:
// the single-shot baseline and the same scenario with the retry policy armed,
// plus the retry layer's own counters -- the cost of the recovered reliability.
//
// Everything is seeded; a given flag set reproduces the identical scenario.
//
// Flags: --peers, --maxl, --refmax, --meetings, --queries, --drop,
//        --attempts, --backoff_ms, --multiplier, --max_backoff_ms,
//        --deadline_ms, --seed, --metrics-json=FILE (dump the retry run's
//        shared registry), --timeline-json=FILE (override the per-round
//        crash-wave timeline path, default BENCH_nr_timeline.json).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "net/fault_transport.h"
#include "net/inproc_transport.h"
#include "net/node.h"
#include "obs/timeline.h"
#include "sim/scenario.h"
#include "util/macros.h"

namespace pgrid {
namespace {

struct RunResult {
  size_t ok = 0;
  uint64_t retries = 0;
  uint64_t exhausted = 0;
  uint64_t dropped = 0;
  std::string metrics_json;
};

RunResult RunScenario(size_t n, size_t maxl, size_t refmax, size_t meetings,
                      size_t queries, double drop, uint64_t seed,
                      const net::RetryConfig& retry) {
  obs::MetricsRegistry registry;
  net::InProcTransport inner;
  net::FaultInjectingTransport faults(&inner, seed, &registry);
  net::NodeConfig config;
  config.maxl = maxl;
  config.refmax = refmax;
  config.retry = retry;
  std::vector<std::unique_ptr<net::PGridNode>> nodes;
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<net::PGridNode>(
        "node:" + std::to_string(i), &faults, config, seed * 1000 + i,
        &registry));
    PGRID_CHECK(nodes.back()->Start().ok());
  }
  Rng rng(seed);
  for (size_t m = 0; m < meetings; ++m) {
    const size_t a = rng.UniformIndex(n);
    const size_t b = rng.UniformIndex(n);
    if (a != b) (void)nodes[a]->MeetWith(nodes[b]->address());
  }

  if (drop > 0) faults.DropWithProbability("*", drop);
  Rng qrng(seed + 1);
  RunResult r;
  for (size_t q = 0; q < queries; ++q) {
    const size_t start = qrng.UniformIndex(n);
    if (nodes[start]->RouteToResponsible(KeyPath::Random(&qrng, maxl)).ok()) {
      ++r.ok;
    }
  }
  r.retries = registry.GetCounter("rpc.retries")->value();
  r.exhausted = registry.GetCounter("rpc.retry_exhausted")->value();
  r.dropped = faults.dropped_calls();
  r.metrics_json = obs::ToJson(registry.Snapshot());
  return r;
}

struct CrashWaveResult {
  size_t before_ok = 0;   ///< successful routes right after the wave
  size_t after_ok = 0;    ///< successful routes after the maintenance rounds
  uint64_t evicted = 0;   ///< references drained by the failure detector
  uint64_t recruited = 0; ///< references refilled by targeted recruitment
};

// The self-healing arm: a crash wave takes out a fraction of the community at
// once, survivors run MaintainReferences rounds (probe -> evict -> recruit),
// and search reliability is measured before and after the heal window.
CrashWaveResult RunCrashWave(size_t n, size_t maxl, size_t refmax,
                             size_t meetings, size_t queries, double crash,
                             uint64_t seed, const net::RetryConfig& retry,
                             size_t repair_rounds,
                             obs::TimelineRecorder* timeline) {
  obs::MetricsRegistry registry;
  net::InProcTransport inner;
  net::FaultInjectingTransport faults(&inner, seed, &registry);
  net::NodeConfig config;
  config.maxl = maxl;
  config.refmax = refmax;
  config.retry = retry;
  std::vector<std::unique_ptr<net::PGridNode>> nodes;
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<net::PGridNode>(
        "node:" + std::to_string(i), &faults, config, seed * 1000 + i,
        &registry));
    PGRID_CHECK(nodes.back()->Start().ok());
  }
  Rng rng(seed);
  for (size_t m = 0; m < meetings; ++m) {
    const size_t a = rng.UniformIndex(n);
    const size_t b = rng.UniformIndex(n);
    if (a != b) (void)nodes[a]->MeetWith(nodes[b]->address());
  }

  // The wave: the tail of the community goes dark in one instant.
  const size_t survivors = n - static_cast<size_t>(static_cast<double>(n) * crash);
  for (size_t i = survivors; i < n; ++i) {
    nodes[i]->Stop();
    faults.InjectOutage(nodes[i]->address());
  }

  CrashWaveResult r;
  Rng qrng(seed + 1);
  for (size_t q = 0; q < queries; ++q) {
    const size_t start = qrng.UniformIndex(survivors);
    if (nodes[start]->RouteToResponsible(KeyPath::Random(&qrng, maxl)).ok()) {
      ++r.before_ok;
    }
  }
  // Round 0 = right after the wave, before any maintenance ran. Sampling only
  // reads the shared registry, so the healed result is unaffected.
  if (timeline != nullptr) timeline->SampleRegistry(0, registry);
  for (size_t round = 0; round < repair_rounds; ++round) {
    for (size_t i = 0; i < survivors; ++i) (void)nodes[i]->MaintainReferences();
    if (timeline != nullptr) timeline->SampleRegistry(round + 1, registry);
  }
  for (size_t q = 0; q < queries; ++q) {
    const size_t start = qrng.UniformIndex(survivors);
    if (nodes[start]->RouteToResponsible(KeyPath::Random(&qrng, maxl)).ok()) {
      ++r.after_ok;
    }
  }
  r.evicted = registry.GetCounter("node.refs_evicted")->value();
  r.recruited = registry.GetCounter("node.refs_recruited")->value();
  return r;
}

/// Mean of an availability series over macro ticks [lo, hi). 0 if empty.
double AvgOver(const std::map<std::string, std::vector<obs::TimelineRecorder::Point>>& series,
               const std::string& name, uint64_t lo, uint64_t hi) {
  auto it = series.find(name);
  if (it == series.end()) return 0;
  double sum = 0;
  size_t count = 0;
  for (const obs::TimelineRecorder::Point& p : it->second) {
    if (p.t >= lo && p.t < hi) {
      sum += p.value;
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0;
}

// Macro-fault availability arm (docs/robustness.md): one deterministic
// scenario drags the simulated community through a flash crowd and then a
// two-group partition + heal, sampling per-tick availability (query success
// rate, shed rate) through the runner's timeline. The phase boundaries are
// static properties of the step list, so the per-phase averages below read the
// avail.* series by known macro-tick ranges.
void RunMacroAvailability(size_t peers, size_t maxl, uint64_t seed,
                          bench::JsonReport* report,
                          const std::string& timeline_path) {
  sim::Scenario scenario;
  scenario.config.seed = seed;
  scenario.config.fault_seed = seed + 1;
  scenario.config.num_peers = peers;
  scenario.config.maxl = maxl;
  scenario.config.refmax = 2;
  scenario.config.online_prob = 1.0;

  auto& steps = scenario.steps;
  // Warm-up: build the grid, seed it with data, prove it healthy.
  steps.push_back({sim::StepKind::kExchange, 8 * peers, 0, 0, 0});
  for (uint64_t i = 0; i < 24; ++i) {
    steps.push_back({sim::StepKind::kInsert, 7 * i + 1, 5 * i + 3,
                     i % maxl, i % 16});
  }
  steps.push_back({sim::StepKind::kBarrier, 8, 0, 0, 0});
  // Baseline: a heal with no active partition is a no-op that still runs its
  // availability ticks -- macro ticks 0..3.
  steps.push_back({sim::StepKind::kPartition, 0, 4, 0, 0});
  // Flash crowd: 6 ticks (4..9) at 6x load on a 2-bit-hot prefix with
  // shedding armed, then one unshedded after-tick (10).
  steps.push_back({sim::StepKind::kFlashCrowd, 1, 1, 4, 5});
  // Partition: 2 groups for 4 ticks (11..14).
  steps.push_back({sim::StepKind::kPartition, 3, 4, 1, 0});
  // Heal: anti-entropy to convergence, then 4 post-heal ticks (15..18).
  steps.push_back({sim::StepKind::kPartition, 0, 4, 0, 0});

  obs::TimelineRecorder timeline;
  sim::ScenarioRunner runner(scenario);
  runner.SetTimeline(&timeline);
  const sim::ScenarioResult result = runner.Run();
  PGRID_CHECK(!result.failed);

  const auto series = timeline.series();
  struct Phase {
    const char* name;
    uint64_t lo, hi;
  };
  const Phase phases[] = {
      {"baseline", 0, 4},        {"flash-crowd", 4, 10},
      {"flash-crowd-after", 10, 11}, {"partition", 11, 15},
      {"post-heal", 15, 19},
  };
  std::printf("\nmacro availability: flash crowd (6x load, shedding) then "
              "2-group partition + heal (%zu sim peers)\n", peers);
  std::printf("%-22s %10s %10s\n", "phase", "success", "shed rate");
  for (const Phase& ph : phases) {
    const double success = AvgOver(series, "avail.success_rate", ph.lo, ph.hi);
    const double shed = AvgOver(series, "avail.shed_rate", ph.lo, ph.hi);
    std::printf("%-22s %9.2f%% %9.2f%%\n", ph.name, 100.0 * success,
                100.0 * shed);
    report->AddRow()
        .Str("variant", std::string("macro-") + ph.name)
        .Int("peers", peers)
        .Int("tick_lo", ph.lo)
        .Int("tick_hi", ph.hi)
        .Num("success_rate", 100.0 * success)
        .Num("shed_rate", 100.0 * shed);
  }
  // The raw per-tick series (avail.success_rate / avail.p99_hops /
  // avail.shed_rate / avail.live_peers at t = macro tick) for plotting.
  bench::DumpToFile(timeline_path, "timeline", timeline.ToJson());
}

void Run(const bench::Args& args) {
  const size_t n = static_cast<size_t>(args.GetInt("peers", 64));
  const size_t maxl = static_cast<size_t>(args.GetInt("maxl", 4));
  const size_t refmax = static_cast<size_t>(args.GetInt("refmax", 4));
  const size_t meetings = static_cast<size_t>(args.GetInt("meetings", 8000));
  const size_t queries = static_cast<size_t>(args.GetInt("queries", 500));
  const double drop = args.GetDouble("drop", 0.3);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  net::RetryConfig retry;
  retry.max_attempts = static_cast<size_t>(args.GetInt("attempts", 4));
  retry.initial_backoff_ms = static_cast<uint64_t>(args.GetInt("backoff_ms", 1));
  retry.backoff_multiplier = args.GetDouble("multiplier", 2.0);
  retry.max_backoff_ms =
      static_cast<uint64_t>(args.GetInt("max_backoff_ms", 8));
  retry.deadline_ms = static_cast<uint64_t>(args.GetInt("deadline_ms", 0));
  retry.sleep_between_attempts = false;  // virtual backoff: pure arithmetic
  PGRID_CHECK(retry.Validate().ok());

  bench::Banner(
      "NR: networked search reliability under message loss",
      "Sec. 5.2 SR experiment over the node/transport stack + fault layer",
      "retries recover most of the reliability lost to message drops");

  std::printf("community: %zu peers, maxl %zu, refmax %zu, %zu meetings\n",
              n, maxl, refmax, meetings);
  std::printf("scenario:  drop %.0f%% of all messages (seed %llu), %zu queries\n\n",
              100.0 * drop, static_cast<unsigned long long>(seed), queries);

  net::RetryConfig single;
  single.max_attempts = 1;
  const RunResult base =
      RunScenario(n, maxl, refmax, meetings, queries, drop, seed, single);
  const RunResult with_retry =
      RunScenario(n, maxl, refmax, meetings, queries, drop, seed, retry);

  const auto pct = [queries](size_t ok) {
    return 100.0 * static_cast<double>(ok) / static_cast<double>(queries);
  };
  std::printf("%-22s %10s %10s %10s %10s\n", "", "success", "rate", "retries",
              "exhausted");
  std::printf("%-22s %10zu %9.2f%% %10llu %10llu\n", "single-shot baseline",
              base.ok, pct(base.ok),
              static_cast<unsigned long long>(base.retries),
              static_cast<unsigned long long>(base.exhausted));
  std::printf("%-22s %10zu %9.2f%% %10llu %10llu\n",
              ("retry x" + std::to_string(retry.max_attempts)).c_str(),
              with_retry.ok, pct(with_retry.ok),
              static_cast<unsigned long long>(with_retry.retries),
              static_cast<unsigned long long>(with_retry.exhausted));
  std::printf("\ndropped calls: %llu (baseline) vs %llu (retry)\n",
              static_cast<unsigned long long>(base.dropped),
              static_cast<unsigned long long>(with_retry.dropped));

  bench::JsonReport report("nr_net_reliability");
  const auto add_row = [&](const char* variant, size_t attempts,
                           const RunResult& r) {
    report.AddRow()
        .Str("variant", variant)
        .Int("max_attempts", attempts)
        .Int("peers", n)
        .Int("queries", queries)
        .Num("drop", drop)
        .Int("ok", r.ok)
        .Num("success_rate", pct(r.ok))
        .Int("retries", r.retries)
        .Int("retry_exhausted", r.exhausted)
        .Int("dropped_calls", r.dropped);
  };
  add_row("single-shot", 1, base);
  add_row("retry", retry.max_attempts, with_retry);

  // Crash-wave arm: message loss is replaced by sudden permanent node loss,
  // and the retry layer by the self-healing maintenance loop.
  const double crash = args.GetDouble("crash", 0.3);
  const size_t repair_rounds =
      static_cast<size_t>(args.GetInt("repair_rounds", 6));
  obs::TimelineRecorder timeline;
  const CrashWaveResult wave =
      RunCrashWave(n, maxl, refmax, meetings, queries, crash, seed, retry,
                   repair_rounds, &timeline);
  std::printf("\ncrash wave: %.0f%% of nodes fail at once; %zu maintenance "
              "rounds heal the survivors\n",
              100.0 * crash, repair_rounds);
  std::printf("%-22s %10zu %9.2f%%\n", "before repair", wave.before_ok,
              pct(wave.before_ok));
  std::printf("%-22s %10zu %9.2f%%   (%llu refs evicted, %llu recruited)\n",
              "after repair", wave.after_ok, pct(wave.after_ok),
              static_cast<unsigned long long>(wave.evicted),
              static_cast<unsigned long long>(wave.recruited));
  const auto add_wave_row = [&](const char* variant, size_t ok) {
    report.AddRow()
        .Str("variant", variant)
        .Int("peers", n)
        .Int("queries", queries)
        .Num("crash", crash)
        .Int("repair_rounds", repair_rounds)
        .Int("ok", ok)
        .Num("success_rate", pct(ok))
        .Int("refs_evicted", wave.evicted)
        .Int("refs_recruited", wave.recruited);
  };
  add_wave_row("crash-wave-before-repair", wave.before_ok);
  add_wave_row("crash-wave-after-repair", wave.after_ok);

  // Macro-fault availability arm: graceful degradation through a flash crowd
  // and a partition + heal, on the deterministic scenario machinery.
  RunMacroAvailability(
      static_cast<size_t>(args.GetInt("macro_peers", 48)), maxl, seed, &report,
      args.GetString("availability-json", "BENCH_nr_availability.json"));

  report.WriteTo(args.GetString("json", "BENCH_nr_net_reliability.json"));
  // Per-round registry snapshots of the heal window (t = maintenance round,
  // t=0 = right after the wave): node.refs_evicted / node.refs_recruited /
  // node.probes_sent as series instead of only their final values.
  bench::DumpToFile(args.GetString("timeline-json", "BENCH_nr_timeline.json"),
                    "timeline", timeline.ToJson());
  bench::MaybeDumpFile(args, "metrics-json", "metrics", with_retry.metrics_json);
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
