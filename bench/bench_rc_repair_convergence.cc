// RC: repair convergence after crash waves (robustness extension, Sec. 6).
//
// A converged, data-bearing grid loses a fraction of its peers in one instant.
// Two arms then run the same number of maintenance rounds:
//  - passive: RepairEngine with every mechanism disabled (no failure detection,
//             no recruitment, no anti-entropy) -- the paper's baseline where
//             only chance meetings could ever repair anything, and none run,
//  - active:  the full self-healing stack of repair/repair.h.
// After every round the repair-convergence invariants (check/invariants.h) are
// evaluated over the survivors with repair_min_live_refs = refmax: the round in
// which dead references + underfull levels disappear and the round in which all
// live replica pairs agree are recorded per arm. The claim under test: the
// active arm converges within a bounded number of rounds at every crash
// fraction, and the passive arm never does.
//
// Besides the per-arm summary rows, every (arm, crash fraction) pair emits a
// per-round timeline of the three violation counts (dead references, underfull
// levels, stale replica pairs) into BENCH_rc_timeline.json, so the *shape* of
// convergence -- not just the round it completed in -- is machine-readable.
//
// Flags: --peers, --maxl, --refmax, --rounds, --items, --seed, --json,
//        --timeline-json (override the timeline output path).

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "check/invariants.h"
#include "core/churn.h"
#include "core/insert.h"
#include "core/search.h"
#include "core/update.h"
#include "obs/timeline.h"
#include "repair/repair.h"
#include "sim/scenario.h"

namespace pgrid {
namespace {

/// Mean of a timeline series over macro ticks [lo, hi). 0 if empty.
double AvgOver(const std::map<std::string, std::vector<obs::TimelineRecorder::Point>>& series,
               const std::string& name, uint64_t lo, uint64_t hi) {
  auto it = series.find(name);
  if (it == series.end()) return 0;
  double sum = 0;
  size_t count = 0;
  for (const obs::TimelineRecorder::Point& p : it->second) {
    if (p.t >= lo && p.t < hi) {
      sum += p.value;
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0;
}

// Partition-heal arm: a two-group partition diverges the replicas (updates
// keep flowing inside each island), then the heal step drives anti-entropy
// until replica agreement is restored. Reports the reconciliation work
// (rounds, sync sessions, entries moved) and the availability through the
// event -- before, during, and after the partition -- from the runner's
// avail.* timeline series.
void RunPartitionHeal(size_t peers, size_t maxl, uint64_t seed,
                      bench::JsonReport* report) {
  sim::Scenario scenario;
  scenario.config.seed = seed;
  scenario.config.fault_seed = seed + 1;
  scenario.config.num_peers = peers;
  scenario.config.maxl = maxl;
  scenario.config.refmax = 2;
  scenario.config.online_prob = 1.0;

  auto& steps = scenario.steps;
  steps.push_back({sim::StepKind::kExchange, 8 * peers, 0, 0, 0});
  for (uint64_t i = 0; i < 32; ++i) {
    steps.push_back({sim::StepKind::kInsert, 5 * i + 2, 3 * i + 1,
                     i % maxl, i % 16});
  }
  steps.push_back({sim::StepKind::kBarrier, 8, 0, 0, 0});
  // Baseline availability: macro ticks 0..2.
  steps.push_back({sim::StepKind::kPartition, 0, 3, 0, 0});
  // Split into 2 groups; 3 availability ticks (3..5) under the partition.
  steps.push_back({sim::StepKind::kPartition, 3, 3, 1, 0});
  // Divergence: updates keep flowing inside the islands.
  for (uint64_t i = 0; i < 16; ++i) {
    steps.push_back({sim::StepKind::kUpdate, 11 * i + 5, i % 3, 0, 0});
  }
  // Heal: anti-entropy to convergence, then post-heal ticks 6..8.
  steps.push_back({sim::StepKind::kPartition, 0, 3, 0, 0});

  obs::TimelineRecorder timeline;
  sim::ScenarioRunner runner(scenario);
  runner.SetTimeline(&timeline);
  const sim::ScenarioResult result = runner.Run();

  obs::MetricsRegistry& metrics = runner.grid().metrics();
  const uint64_t rounds = metrics.GetCounter("repair.reconcile_rounds")->value();
  const uint64_t sessions = metrics.GetCounter("repair.sync_sessions")->value();
  const uint64_t entries =
      metrics.GetCounter("repair.entries_reconciled")->value();

  const auto series = timeline.series();
  struct Phase {
    const char* name;
    uint64_t lo, hi;
  };
  const Phase phases[] = {
      {"before", 0, 3}, {"during", 3, 6}, {"after-heal", 6, 9}};
  std::printf("\npartition heal: 2 islands diverge under updates, then "
              "anti-entropy reconciles (%zu peers)\n", peers);
  std::printf("converged: %s  reconcile rounds: %llu  sync sessions: %llu  "
              "entries reconciled: %llu\n",
              result.failed ? "NO" : "yes",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(sessions),
              static_cast<unsigned long long>(entries));
  std::printf("%-12s %10s\n", "phase", "success");
  for (const Phase& ph : phases) {
    const double success = AvgOver(series, "avail.success_rate", ph.lo, ph.hi);
    std::printf("%-12s %9.2f%%\n", ph.name, 100.0 * success);
    report->AddRow()
        .Str("arm", std::string("partition-heal-") + ph.name)
        .Int("peers", peers)
        .Num("success_rate", 100.0 * success)
        .Int("reconcile_rounds", rounds)
        .Int("sync_sessions", sessions)
        .Int("entries_reconciled", entries)
        .Int("converged", result.failed ? 0 : 1);
  }
}

struct Arm {
  const char* name;
  repair::RepairConfig config;
};

void Run(const bench::Args& args) {
  const size_t peers = static_cast<size_t>(args.GetInt("peers", 256));
  const size_t maxl = static_cast<size_t>(args.GetInt("maxl", 4));
  const size_t refmax = static_cast<size_t>(args.GetInt("refmax", 3));
  const size_t rounds = static_cast<size_t>(args.GetInt("rounds", 12));
  const size_t items = static_cast<size_t>(args.GetInt("items", 200));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  bench::Banner("RC: repair convergence after crash waves",
                "robustness extension (self-healing, docs/robustness.md)",
                "active repair converges within a bounded round count; the "
                "passive arm never does");

  repair::RepairConfig passive;
  passive.suspicion_threshold = 0;
  passive.recruit = false;
  passive.anti_entropy = false;
  const Arm arms[] = {{"passive", passive}, {"active", repair::RepairConfig{}}};
  const double crash_fractions[] = {0.1, 0.2, 0.3, 0.4};

  std::printf("%zu peers, maxl %zu, refmax %zu, %zu items, %zu-round heal "
              "window\n\n",
              peers, maxl, refmax, items, rounds);
  std::printf("%-8s %-6s | %-14s %-16s %s\n", "arm", "crash", "refs healed",
              "replicas agree", "converged");

  bench::JsonReport report("rc_repair_convergence");
  obs::TimelineRecorder timeline;
  for (const Arm& arm : arms) {
    for (const double crash : crash_fractions) {
      Grid grid(peers);
      Rng rng(seed);
      OnlineModel online = OnlineModel::AlwaysOn(peers);
      ExchangeConfig config;
      config.maxl = maxl;
      config.refmax = refmax;
      config.recmax = 2;
      config.recursion_fanout = 2;
      ExchangeEngine exchange(&grid, config, &rng, &online);
      MeetingScheduler scheduler(peers);
      GridBuilder builder(&grid, &exchange, &scheduler, &rng);
      builder.BuildToFractionOfMaxDepth(0.99, 100'000'000);

      // Populate the leaf indexes, then leave some replicas one version behind
      // (single-shot DFS updates reach exactly one replica each) so the
      // anti-entropy target is real, not vacuous.
      InsertEngine inserter(&grid, &online, &rng);
      UpdateEngine updater(&grid, &online, &rng);
      UpdateConfig update_config;
      update_config.recbreadth = 2;
      update_config.repetition = 2;
      for (size_t i = 0; i < items; ++i) {
        DataItem item;
        item.id = i + 1;
        item.key = KeyPath::Random(&rng, maxl);
        item.version = 1;
        (void)inserter.Insert(item, static_cast<PeerId>(rng.UniformIndex(peers)),
                              update_config);
        if (i % 4 == 0) {
          UpdateConfig narrow;
          narrow.recbreadth = 1;
          narrow.repetition = 1;
          updater.Propagate(item.key, item.id, 2, UpdateStrategy::kRepeatedDfs,
                            narrow);
        }
      }

      ChurnDriver driver(&grid, &exchange, &scheduler, &online, &rng);
      ChurnConfig wave;
      wave.crash_fraction = crash;
      wave.join_fraction = 0.0;
      wave.meetings_per_round = 0;
      driver.Round(wave);

      SearchEngine search(&grid, &online, &rng);
      repair::RepairEngine repairer(&grid, config, arm.config, &search, &online,
                                    &rng);
      repairer.set_liveness([&driver](PeerId p) { return !driver.IsDead(p); });
      repairer.set_probe_fn(
          [&driver](PeerId, PeerId to) { return !driver.IsDead(to); });

      const auto convergence = [&]() {
        check::InvariantOptions opt;
        opt.check_structure = false;
        opt.check_coverage = false;
        opt.check_placement = false;
        opt.check_replica_agreement = false;
        opt.check_ledger = false;
        opt.check_repair_convergence = true;
        opt.dead = &driver.dead_mask();
        opt.repair_min_live_refs = refmax;
        opt.max_violations = 100000;
        return check::GridInvariants::Check(grid, config, opt);
      };

      int64_t refs_round = -1;      // first round with no dead/underfull refs
      int64_t replicas_round = -1;  // first round with no stale replica pair
      // Series prefix: one timeline namespace per (arm, crash) cell.
      const std::string prefix =
          std::string(arm.name) + "/crash" +
          std::to_string(static_cast<int>(100 * crash)) + "/";
      // Every round of the heal window runs (no early exit): the timeline is
      // the full convergence curve, and the summary rounds are still the first
      // clean round of each invariant family.
      for (size_t r = 1; r <= rounds; ++r) {
        repairer.Tick();
        const check::InvariantReport rep = convergence();
        const uint64_t dead = rep.CountOf(check::Category::kDeadReference);
        const uint64_t underfull = rep.CountOf(check::Category::kRefUnderfull);
        const uint64_t stale = rep.CountOf(check::Category::kReplicaStale);
        timeline.AddPoint(prefix + "refs_dead", r, static_cast<double>(dead));
        timeline.AddPoint(prefix + "refs_underfull", r,
                          static_cast<double>(underfull));
        timeline.AddPoint(prefix + "replicas_stale", r,
                          static_cast<double>(stale));
        const bool refs_clean = dead == 0 && underfull == 0;
        const bool replicas_clean = stale == 0;
        if (refs_clean && refs_round < 0) refs_round = static_cast<int64_t>(r);
        if (replicas_clean && replicas_round < 0) {
          replicas_round = static_cast<int64_t>(r);
        }
      }
      const bool converged = refs_round >= 0 && replicas_round >= 0;

      const auto round_str = [](int64_t r) {
        return r < 0 ? std::string("never") : "round " + std::to_string(r);
      };
      std::printf("%-8s %5.0f%% | %-14s %-16s %s\n", arm.name, 100 * crash,
                  round_str(refs_round).c_str(),
                  round_str(replicas_round).c_str(), converged ? "yes" : "NO");
      report.AddRow()
          .Str("arm", arm.name)
          .Num("crash_fraction", crash)
          .Int("rounds_window", rounds)
          .Int("rounds_to_full_refs", refs_round)
          .Int("rounds_to_replica_agreement", replicas_round)
          .Int("converged", converged ? 1 : 0)
          .Int("live_peers", driver.live_count());
    }
  }
  // Partition-heal arm (docs/robustness.md): divergence under a live
  // partition, then reconciliation work and availability through the event.
  RunPartitionHeal(static_cast<size_t>(args.GetInt("heal_peers", 48)), maxl,
                   seed, &report);

  report.WriteTo(args.GetString("json", "BENCH_repair_convergence.json"));
  bench::DumpToFile(args.GetString("timeline-json", "BENCH_rc_timeline.json"),
                    "timeline", timeline.ToJson());
  std::printf("\n(convergence = no live peer references a dead one, every "
              "level holds min(refmax, live supply) live refs, and all live "
              "buddy pairs agree on entries and versions)\n");
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
