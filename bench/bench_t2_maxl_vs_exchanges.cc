// T2 (Sec. 5.1, second table): construction cost vs maximal path length.
//
// N = 500, maxl in {2..7}, refmax = 1, recmax in {0, 2}. Paper: cost roughly doubles
// per extra level without recursion (ratio ~2); recmax = 2 flattens the growth
// (ratios ~1.1-1.6).

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace pgrid {
namespace {

void Run(const bench::Args& args) {
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t n = static_cast<size_t>(args.GetInt("peers", 500));
  const double paper_rec0[] = {9.78, 19.56, 36.14, 71.05, 145.31, 343.54};
  const double paper_rec2[] = {11.18, 14.57, 16.43, 26.59, 35.59, 55.99};

  bench::Banner("T2: maxl vs exchanges",
                "Sec. 5.1 table 2 (N=500, maxl=2..7, refmax=1, recmax 0 and 2)",
                "exponential growth (~2x per level) without recursion; recmax=2 tames it");

  std::printf("%5s | %10s %8s %12s %7s | %10s %8s %12s %7s\n", "maxl", "e(rec0)",
              "e/N", "paper e/N", "ratio", "e(rec2)", "e/N", "paper e/N", "ratio");
  std::printf("------+------------------------------------------+------------------"
              "------------------------\n");
  const int trials = static_cast<int>(args.GetInt("trials", 5));
  auto average = [&](size_t maxl, size_t recmax, uint64_t salt) {
    uint64_t sum = 0;
    for (int t = 0; t < trials; ++t) {
      auto s = bench::BuildGrid(n, maxl, 1, recmax, 0, seed + salt + 977 * t);
      sum += s.report.exchanges;
    }
    return sum / static_cast<uint64_t>(trials);
  };
  bench::JsonReport report("t2_maxl_vs_exchanges");
  uint64_t prev0 = 0, prev2 = 0;
  int row = 0;
  for (size_t maxl = 2; maxl <= 7; ++maxl) {
    const uint64_t e0 = average(maxl, 0, maxl * 2);
    const uint64_t e2 = average(maxl, 2, maxl * 2 + 1);
    report.AddRow()
        .Int("maxl", maxl)
        .Int("exchanges_rec0", e0)
        .Num("exchanges_per_peer_rec0",
             static_cast<double>(e0) / static_cast<double>(n))
        .Num("paper_rec0", paper_rec0[row])
        .Int("exchanges_rec2", e2)
        .Num("exchanges_per_peer_rec2",
             static_cast<double>(e2) / static_cast<double>(n))
        .Num("paper_rec2", paper_rec2[row]);
    std::printf("%5zu | %10llu %8.2f %12.2f %7s | %10llu %8.2f %12.2f %7s\n", maxl,
                static_cast<unsigned long long>(e0),
                static_cast<double>(e0) / static_cast<double>(n), paper_rec0[row],
                prev0 ? std::to_string(static_cast<double>(e0) / prev0)
                            .substr(0, 5)
                            .c_str()
                      : "-",
                static_cast<unsigned long long>(e2),
                static_cast<double>(e2) / static_cast<double>(n), paper_rec2[row],
                prev2 ? std::to_string(static_cast<double>(e2) / prev2)
                            .substr(0, 5)
                            .c_str()
                      : "-");
    prev0 = e0;
    prev2 = e2;
    ++row;
  }
  report.WriteTo(args.GetString("json", "BENCH_t2_maxl_vs_exchanges.json"));
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
