// SR (Sec. 5.2, in-text experiment): search reliability on the Gnutella-scale grid.
//
// On the F4 grid (20,000 peers, maxl = 10, refmax = 20), 10,000 searches for random
// keys of length 9 with only 30% of the peers online. Paper: 99.97% success, 5.5576
// messages per search on average. Also checks the eq. (3) analytical bound.
//
// Flags: --peers, --maxl, --refmax, --target, --queries, --online, --seed,
//        --per_contact (use per-contact churn instead of per-trial snapshots).

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/analysis.h"
#include "core/search.h"
#include "sim/online_model.h"

namespace pgrid {
namespace {

void Run(const bench::Args& args) {
  const size_t n = static_cast<size_t>(args.GetInt("peers", 20000));
  const size_t maxl = static_cast<size_t>(args.GetInt("maxl", 10));
  const size_t refmax = static_cast<size_t>(args.GetInt("refmax", 20));
  const double target = args.GetDouble("target", 9.43);
  const size_t queries = static_cast<size_t>(args.GetInt("queries", 10000));
  const double online_prob = args.GetDouble("online", 0.3);
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t threads = static_cast<size_t>(args.GetInt("threads", 1));
  const size_t key_len = static_cast<size_t>(args.GetInt("keylen", 9));

  bench::Banner("SR: search reliability under churn",
                "Sec. 5.2 in-text (10000 searches, key length 9, 30% online)",
                "paper: 99.97% success, 5.5576 messages/search");

  auto s = bench::BuildGrid(n, maxl, refmax, /*recmax=*/2, /*fanout=*/2, seed, target,
                            /*max_meetings=*/200'000'000, /*manage_data=*/true,
                            threads);
  std::printf("built: avg depth %.3f, %llu exchanges, %.2fs\n\n",
              s.report.avg_path_length,
              static_cast<unsigned long long>(s.report.exchanges), s.report.seconds);

  const OnlineMode mode =
      args.Has("per_contact") ? OnlineMode::kPerContact : OnlineMode::kSnapshot;
  Rng rng(seed + 1);
  OnlineModel online(mode, n, online_prob, &rng);
  SearchEngine search(s.grid.get(), &online, &rng);

  size_t ok = 0;
  uint64_t messages = 0;
  uint64_t max_messages = 0;
  for (size_t q = 0; q < queries; ++q) {
    if (mode == OnlineMode::kSnapshot && q % 100 == 0) online.Resample(&rng);
    auto start = search.RandomOnlinePeer();
    if (!start.has_value()) continue;
    QueryResult r = search.Query(*start, KeyPath::Random(&rng, key_len));
    messages += r.messages;
    max_messages = std::max(max_messages, r.messages);
    if (r.found) ++ok;
  }

  const double success = 100.0 * static_cast<double>(ok) / static_cast<double>(queries);
  std::printf("queries: %zu   mode: %s\n", queries,
              mode == OnlineMode::kSnapshot ? "snapshot (resampled every 100)"
                                            : "per-contact");
  std::printf("success rate:      %.2f%%   (paper: 99.97%%)\n", success);
  std::printf("avg messages:      %.4f   (paper: 5.5576)\n",
              static_cast<double>(messages) / static_cast<double>(queries));
  std::printf("max messages:      %llu\n",
              static_cast<unsigned long long>(max_messages));
  std::printf("eq. (3) bound:     %.4f   ((1-(1-p)^refmax)^k, worst case)\n",
              SearchSuccessProbability(online_prob, refmax, key_len));
  bench::JsonReport report("sr_search_reliability");
  report.AddRow()
      .Int("peers", n)
      .Int("queries", queries)
      .Num("online_prob", online_prob)
      .Str("mode", mode == OnlineMode::kSnapshot ? "snapshot" : "per-contact")
      .Num("success_rate", success)
      .Num("avg_messages",
           static_cast<double>(messages) / static_cast<double>(queries))
      .Int("max_messages", max_messages)
      .Num("eq3_bound", SearchSuccessProbability(online_prob, refmax, key_len));
  report.WriteTo(args.GetString("json", "BENCH_sr_search_reliability.json"));
  bench::MaybeDumpMetrics(args, *s.grid);
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
