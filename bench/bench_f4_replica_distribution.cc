// F4 (Sec. 5.2, Figure 4): replica distribution of the Gnutella-scale grid.
//
// 20,000 peers, maxl = 10, refmax = 20, built to average depth 9.43 (where the paper
// stopped after 1,250,743 exchanges / ~62 per peer / 10 hours of Mathematica).
// Expected: a roughly bell-shaped histogram of replication factors centred near
// N / 2^maxl ~ 19.5; paper reports an average of 19.46 replicas per peer.
//
// Flags: --peers, --maxl, --refmax, --target (avg depth), --seed.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/stats.h"

namespace pgrid {
namespace {

void Run(const bench::Args& args) {
  const size_t n = static_cast<size_t>(args.GetInt("peers", 20000));
  const size_t maxl = static_cast<size_t>(args.GetInt("maxl", 10));
  const size_t refmax = static_cast<size_t>(args.GetInt("refmax", 20));
  const double target = args.GetDouble("target", 9.43);
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t threads = static_cast<size_t>(args.GetInt("threads", 1));

  bench::Banner("F4: replica distribution",
                "Sec. 5.2 Fig. 4 (N=20000, maxl=10, refmax=20, avg depth 9.43)",
                "balanced bell-shaped histogram; paper avg replication factor 19.46");

  auto s = bench::BuildGrid(n, maxl, refmax, /*recmax=*/2, /*fanout=*/2, seed, target,
                            /*max_meetings=*/200'000'000, /*manage_data=*/true,
                            threads);
  std::printf("built: avg depth %.3f after %llu exchanges (%.1f per peer), %.2fs "
              "(paper: 1250743 exchanges, 62/peer, ~10 hours)\n\n",
              s.report.avg_path_length,
              static_cast<unsigned long long>(s.report.exchanges),
              static_cast<double>(s.report.exchanges) / static_cast<double>(n),
              s.report.seconds);

  auto hist = GridStats::ReplicaHistogram(*s.grid);
  const double avg = GridStats::AverageReplicationFactor(*s.grid);
  size_t max_count = 1;
  for (const auto& [factor, count] : hist) max_count = std::max(max_count, count);

  std::printf("%7s | %6s | histogram\n", "factor", "peers");
  std::printf("--------+--------+------------------------------------------\n");
  bench::JsonReport report("f4_replica_distribution");
  for (const auto& [factor, count] : hist) {
    const int bar = static_cast<int>(40.0 * static_cast<double>(count) /
                                     static_cast<double>(max_count));
    std::printf("%7zu | %6zu | %.*s\n", factor, count, bar,
                "########################################");
    report.AddRow().Int("replication_factor", factor).Int("peers", count);
  }
  std::printf("\naverage exact-path replication factor: %.2f\n", avg);

  // The paper's headline number (19.46 ~ N / 2^maxl) counts replication at the
  // granularity of complete keys: all peers co-responsible for a random key of
  // length maxl. Report that metric too.
  double key_level = 0;
  const int samples = 256;
  Rng key_rng(seed + 999);
  for (int i = 0; i < samples; ++i) {
    KeyPath key = KeyPath::Random(&key_rng, maxl);
    key_level += static_cast<double>(GridStats::ReplicasOf(*s.grid, key).size());
  }
  std::printf("average key-level replication factor: %.2f (paper: 19.46; N/2^maxl = "
              "%.2f)\n",
              key_level / samples,
              static_cast<double>(n) / static_cast<double>(size_t{1} << maxl));
  std::printf("distinct responsibility paths (all lengths): %zu\n",
              GridStats::ReplicaCounts(*s.grid).size());
  // Summary row after the histogram rows; consumers can tell them apart by keys.
  report.AddRow()
      .Num("avg_path_replication", avg)
      .Num("avg_key_replication", key_level / samples)
      .Num("avg_depth", s.report.avg_path_length)
      .Int("exchanges", s.report.exchanges);
  report.WriteTo(args.GetString("json", "BENCH_f4_replica_distribution.json"));
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
