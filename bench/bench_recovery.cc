// Recovery: restarting crashed peers from durable storage vs healing around
// the loss (storage extension, docs/storage.md).
//
// A converged, data-bearing grid loses a handful of peers at one instant. Two
// arms then bring the community back to the repair-convergence target state
// (check/invariants.h):
//  - restart: every victim persisted its state through the storage backend
//             (storage/persist.h) before dying; recovery replays snapshot +
//             WAL tail from disk, revives the peer, and runs one targeted
//             RejoinSync anti-entropy pass per victim so it pulls whatever it
//             missed while down,
//  - recruit: the victims are gone for good; the survivors' RepairEngine must
//             detect the dead references, evict them, and recruit live
//             replacements tick by tick until the convergence invariants hold.
// Both arms run over byte-identical grids (same seeds) and report network
// messages and wall time. The claim under test: restart is strictly cheaper
// than recruitment in both, and the gap widens with index size -- disk replay
// is O(own state) while recruitment is O(probe + search traffic across the
// survivors).
//
// Flags: --peers, --maxl, --refmax, --victims, --rounds, --seed, --json,
//        --big (append a 100k-item sweep point toward the 1M-key regime).

#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "check/invariants.h"
#include "core/churn.h"
#include "core/search.h"
#include "repair/repair.h"
#include "sim/digest.h"
#include "storage/persist.h"
#include "util/stopwatch.h"
#include "workload/corpus.h"
#include "workload/key_generator.h"

namespace pgrid {
namespace {

struct Community {
  ExchangeConfig config;
  Grid grid;
  Rng rng;
  OnlineModel online;
  MeetingScheduler scheduler;
  std::unique_ptr<ExchangeEngine> exchange;
  std::unique_ptr<ChurnDriver> churn;
  std::unique_ptr<SearchEngine> search;
  std::unique_ptr<repair::RepairEngine> repair;

  Community(size_t peers, size_t maxl, size_t refmax, size_t items,
            uint64_t seed)
      : grid(peers), rng(seed), online(OnlineModel::AlwaysOn(peers)),
        scheduler(peers) {
    config.maxl = maxl;
    config.refmax = refmax;
    config.recmax = 2;
    config.recursion_fanout = 2;
    exchange = std::make_unique<ExchangeEngine>(&grid, config, &rng, &online);
    churn = std::make_unique<ChurnDriver>(&grid, exchange.get(), &scheduler,
                                          &online, &rng);
    GridBuilder builder(&grid, exchange.get(), &scheduler, &rng);
    builder.BuildToFractionOfMaxDepth(0.99, 100'000'000);

    Rng corpus_rng(seed + 1);
    std::vector<PeerId> holders;
    KeyGenerator gen(KeyGenerator::Mode::kUniform, 2 * maxl);
    auto corpus = MakeCorpus(items, peers, gen, &corpus_rng, &holders);
    SeedGridPerfectly(&grid, corpus, holders);

    search = std::make_unique<SearchEngine>(&grid, &online, &rng);
    repair = std::make_unique<repair::RepairEngine>(
        &grid, config, repair::RepairConfig{}, search.get(), &online, &rng);
    repair->set_liveness([this](PeerId p) { return !churn->IsDead(p); });
    repair->set_probe_fn(
        [this](PeerId, PeerId to) { return !churn->IsDead(to); });
  }

  uint64_t TotalEntries() const {
    uint64_t sum = 0;
    for (const PeerState& p : grid) sum += p.index().size();
    return sum;
  }

  bool Converged(size_t min_live_refs) {
    check::InvariantOptions opt;
    opt.check_structure = false;
    opt.check_coverage = false;
    opt.check_placement = false;
    opt.check_replica_agreement = false;
    opt.check_ledger = false;
    opt.check_repair_convergence = true;
    opt.dead = &churn->dead_mask();
    opt.repair_min_live_refs = min_live_refs;
    return check::GridInvariants::Check(grid, config, opt).ok();
  }
};

struct ArmResult {
  uint64_t messages = 0;
  double wall_ms = 0;
  int64_t rounds = -1;  ///< recruit arm: ticks to convergence (-1 = never)
  bool converged = false;
};

void Run(const bench::Args& args) {
  const size_t peers = static_cast<size_t>(args.GetInt("peers", 256));
  const size_t maxl = static_cast<size_t>(args.GetInt("maxl", 4));
  const size_t refmax = static_cast<size_t>(args.GetInt("refmax", 3));
  const size_t victims_n = static_cast<size_t>(args.GetInt("victims", 8));
  const size_t rounds = static_cast<size_t>(args.GetInt("rounds", 16));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  bench::Banner("Recovery: restart from durable state vs recruitment",
                "storage extension (docs/storage.md)",
                "replaying snapshot + WAL and delta-syncing is strictly "
                "cheaper than healing around the loss");

  std::vector<size_t> item_sweep = {100, 1'000, 10'000};
  if (args.Has("big")) item_sweep.push_back(100'000);

  std::printf("%zu peers, maxl %zu, refmax %zu, %zu victims per wave\n\n",
              peers, maxl, refmax, victims_n);
  std::printf("%-8s %-9s %-9s | %-10s %-10s %s\n", "items", "entries",
              "arm", "messages", "wall ms", "converged");

  bench::JsonReport report("recovery");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pgrid-bench-recovery")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  for (const size_t items : item_sweep) {
    ArmResult restart, recruit;
    uint64_t entries = 0;

    {
      Community c(peers, maxl, refmax, items, seed);
      entries = c.TotalEntries();
      storage::StorageConfig storage_config;
      storage_config.dir = dir;
      storage_config.sync_mode = storage::SyncMode::kFlush;
      storage::PersistenceManager manager(storage_config, maxl);

      std::vector<PeerId> victims;
      for (size_t i = 0; i < victims_n; ++i) {
        victims.push_back(static_cast<PeerId>((i * 29 + 3) % peers));
      }
      // Per-victim identity yardstick: key path and index digest must come
      // back byte-identical (RejoinSync may pool references with buddies, so
      // whole-grid digest equality is deliberately not demanded).
      std::vector<std::pair<std::string, uint64_t>> before;
      for (PeerId v : victims) {
        before.emplace_back(c.grid.peer(v).path().ToString(),
                            sim::IndexDigest(c.grid.peer(v).index()));
      }
      for (PeerId v : victims) {
        if (!manager.Attach(c.grid.peer(v)).ok()) return;
        c.grid.peer(v) = PeerState(v);
        c.churn->Depart(v, /*graceful=*/false);
      }

      const uint64_t base = c.grid.stats().total();
      Stopwatch watch;
      for (PeerId v : victims) {
        Result<PeerState> recovered = manager.Recover(v);
        if (!recovered.ok()) {
          std::fprintf(stderr, "recover failed: %s\n",
                       recovered.status().ToString().c_str());
          return;
        }
        c.grid.peer(v) = std::move(*recovered);
        c.churn->Revive(v);
        c.repair->RejoinSync(v);
      }
      restart.wall_ms = watch.ElapsedMillis();
      restart.messages = c.grid.stats().total() - base;
      restart.converged = true;
      for (size_t i = 0; i < victims.size(); ++i) {
        const PeerState& v = c.grid.peer(victims[i]);
        if (v.path().ToString() != before[i].first ||
            sim::IndexDigest(v.index()) != before[i].second) {
          restart.converged = false;
        }
      }
    }

    {
      Community c(peers, maxl, refmax, items, seed);
      for (size_t i = 0; i < victims_n; ++i) {
        const PeerId v = static_cast<PeerId>((i * 29 + 3) % peers);
        c.grid.peer(v) = PeerState(v);
        c.churn->Depart(v, /*graceful=*/false);
      }
      const uint64_t base = c.grid.stats().total();
      Stopwatch watch;
      for (size_t r = 1; r <= rounds; ++r) {
        c.repair->Tick();
        if (c.Converged(refmax)) {
          recruit.rounds = static_cast<int64_t>(r);
          break;
        }
      }
      recruit.wall_ms = watch.ElapsedMillis();
      recruit.messages = c.grid.stats().total() - base;
      recruit.converged = recruit.rounds > 0;
    }

    std::printf("%-8zu %-9llu %-9s | %-10llu %-10.2f %s\n", items,
                static_cast<unsigned long long>(entries), "restart",
                static_cast<unsigned long long>(restart.messages),
                restart.wall_ms, restart.converged ? "yes" : "NO");
    std::printf("%-8s %-9s %-9s | %-10llu %-10.2f %s (%lld ticks)\n", "", "",
                "recruit", static_cast<unsigned long long>(recruit.messages),
                recruit.wall_ms, recruit.converged ? "yes" : "NO",
                static_cast<long long>(recruit.rounds));

    report.AddRow()
        .Str("arm", "restart")
        .Int("items", items)
        .Int("entries", entries)
        .Int("victims", victims_n)
        .Int("messages", restart.messages)
        .Num("wall_ms", restart.wall_ms)
        .Int("converged", restart.converged ? 1 : 0);
    report.AddRow()
        .Str("arm", "recruit")
        .Int("items", items)
        .Int("entries", entries)
        .Int("victims", victims_n)
        .Int("messages", recruit.messages)
        .Num("wall_ms", recruit.wall_ms)
        .Int("rounds", recruit.rounds)
        .Int("converged", recruit.converged ? 1 : 0);
  }
  std::filesystem::remove_all(dir);
  report.WriteTo(args.GetString("json", "BENCH_recovery.json"));
  std::printf("\n(restart = snapshot + WAL replay, revive, one RejoinSync "
              "pass per victim, converged = every victim's key path and index "
              "digest byte-identical to pre-crash; recruit = full repair "
              "ticks until the convergence "
              "invariants hold over the survivors)\n");
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
