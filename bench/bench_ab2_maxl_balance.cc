// AB2 (ablation, Sec. 3 discussion): the maxl bound prevents overspecialization.
//
// "Simulations show that this results in a more uniform distribution of path lengths
// among peers and better convergence of the P-Grid." We compare the path-length
// distribution after the same number of meetings with maxl = 6 vs effectively
// unbounded (maxl = 32): without the bound some peers specialize far beyond the
// useful depth while others lag, widening the distribution.
//
// Flags: --peers, --meetings, --seed.

#include <cmath>
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/stats.h"

namespace pgrid {
namespace {

struct Outcome {
  double mean = 0;
  double stddev = 0;
  size_t min_depth = 0;
  size_t max_depth = 0;
  std::map<size_t, size_t> hist;
};

Outcome RunConfig(size_t n, size_t maxl, uint64_t meetings, uint64_t seed) {
  Grid grid(n);
  Rng rng(seed);
  ExchangeConfig cfg;
  cfg.maxl = maxl;
  cfg.refmax = 2;
  cfg.recmax = 2;
  cfg.recursion_fanout = 2;
  ExchangeEngine exchange(&grid, cfg, &rng);
  MeetingScheduler scheduler(n);
  for (uint64_t m = 0; m < meetings; ++m) {
    Meeting mt = scheduler.Next(&rng);
    exchange.Exchange(mt.a, mt.b);
  }
  Outcome out;
  out.hist = GridStats::PathLengthHistogram(grid);
  out.min_depth = out.hist.begin()->first;
  out.max_depth = out.hist.rbegin()->first;
  double sum = 0, sq = 0;
  for (const PeerState& p : grid) {
    sum += static_cast<double>(p.depth());
    sq += static_cast<double>(p.depth()) * static_cast<double>(p.depth());
  }
  out.mean = sum / static_cast<double>(n);
  out.stddev = std::sqrt(std::max(0.0, sq / static_cast<double>(n) - out.mean * out.mean));
  return out;
}

void Print(const char* label, const Outcome& o) {
  std::printf("%s: mean depth %.2f, stddev %.2f, range [%zu, %zu]\n", label, o.mean,
              o.stddev, o.min_depth, o.max_depth);
  for (const auto& [len, count] : o.hist) {
    std::printf("  depth %2zu: %5zu %.*s\n", len, count,
                static_cast<int>(std::min<size_t>(50, count / 10)),
                "##################################################");
  }
}

void Run(const bench::Args& args) {
  const size_t n = static_cast<size_t>(args.GetInt("peers", 500));
  const uint64_t meetings = args.GetInt("meetings", 20000);
  const uint64_t seed = args.GetInt("seed", 42);

  bench::Banner("AB2: maxl bound vs unbounded specialization",
                "Sec. 3 design discussion (path-length balance)",
                "bounded maxl concentrates depths; unbounded widens the spread "
                "(overspecialization)");

  Outcome bounded = RunConfig(n, 6, meetings, seed);
  Outcome unbounded = RunConfig(n, 32, meetings, seed);
  Print("maxl=6 (bounded)", bounded);
  std::printf("\n");
  Print("maxl=32 (effectively unbounded)", unbounded);
  std::printf("\npath-length spread: stddev %.2f bounded vs %.2f unbounded; depth "
              "range %zu..%zu vs %zu..%zu\n",
              bounded.stddev, unbounded.stddev, bounded.min_depth, bounded.max_depth,
              unbounded.min_depth, unbounded.max_depth);

  bench::JsonReport report("ab2_maxl_balance");
  const auto add_row = [&](const char* variant, size_t maxl, const Outcome& o) {
    report.AddRow()
        .Str("variant", variant)
        .Int("maxl", maxl)
        .Num("mean_depth", o.mean)
        .Num("stddev", o.stddev)
        .Int("min_depth", o.min_depth)
        .Int("max_depth", o.max_depth);
  };
  add_row("bounded", 6, bounded);
  add_row("unbounded", 32, unbounded);
  report.WriteTo(args.GetString("json", "BENCH_ab2_maxl_balance.json"));
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
