// T4 (Sec. 5.1, fourth table): with unbounded recursion fan-out the construction
// cost explodes in refmax -- "a weakness in the algorithm we proposed".
//
// N = 1000, maxl = 6, recmax = 2, refmax in {1..4}, recursive calls to ALL
// referenced peers. Paper: e/N = 25.3, 39.2, 72.1, 125.7 -- superlinear growth.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace pgrid {
namespace {

void Run(const bench::Args& args) {
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t n = static_cast<size_t>(args.GetInt("peers", 1000));
  const double paper[] = {25.28, 39.20, 72.13, 125.72};

  bench::Banner(
      "T4: refmax sweep, UNBOUNDED recursion fan-out",
      "Sec. 5.1 table 4 (N=1000, maxl=6, recmax=2, fan-out unbounded)",
      "e/N grows superlinearly (roughly doubling per refmax step): the flaw the "
      "paper identifies");

  std::printf("%7s | %10s %8s | %12s\n", "refmax", "e", "e/N", "paper e/N");
  std::printf("--------+---------------------+-------------\n");
  bench::JsonReport report("t4_refmax_unbounded");
  for (size_t refmax = 1; refmax <= 4; ++refmax) {
    auto s = bench::BuildGrid(n, /*maxl=*/6, refmax, /*recmax=*/2,
                              /*fanout=*/0, seed + refmax);
    std::printf("%7zu | %10llu %8.2f | %12.2f\n", refmax,
                static_cast<unsigned long long>(s.report.exchanges),
                static_cast<double>(s.report.exchanges) / static_cast<double>(n),
                paper[refmax - 1]);
    report.AddRow()
        .Int("refmax", refmax)
        .Int("exchanges", s.report.exchanges)
        .Num("exchanges_per_peer",
             static_cast<double>(s.report.exchanges) / static_cast<double>(n))
        .Num("paper", paper[refmax - 1]);
  }
  report.WriteTo(args.GetString("json", "BENCH_t4_refmax_unbounded.json"));
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
