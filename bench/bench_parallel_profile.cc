// PP: where does the parallel build spend its time -- and where does t=4 lose?
//
// Builds the same grid (same seed, same batch size, byte-identical result) at
// t in {1, 2, 4, 8} with the per-wave profiler on, then prints the Amdahl
// accounting per thread count: serial fraction (schedule + wave partition +
// barrier merge), parallel-region utilization, barrier-wait percentiles, and
// the claim-conflict rate -- identically 0 since the edge-colored wave
// schedule (core/wave_schedule.h) precomputes conflict-free waves; the column
// stays so a scheduler regression is visible here immediately. Because the
// wave structure is schedule-determined, the waves/width/conflicts columns are
// identical across rows -- only the time columns move, which is exactly what
// makes any scaling loss attributable.
//
// Also runs the read-only parallel query workload at the same thread counts
// with per-lane busy accounting (chunk-granular), the second half of the
// "why is t=4 slower" picture.
//
// Emits BENCH_parallel_profile.json plus a collapsed-stack flamegraph sidecar
// per thread count (BENCH_parallel_profile_t<N>.folded), and honors
// --profile-json=FILE to dump the full per-wave BuildProfile of the largest
// thread count.
//
// Flags: --peers, --maxl, --refmax, --batch, --meetings, --queries, --seed,
//        --threads (comma list, default 1,2,4,8), --json, --profile-json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/build_profile.h"
#include "core/parallel_builder.h"
#include "core/parallel_workload.h"
#include "obs/profiler.h"
#include "sim/meeting_scheduler.h"

namespace pgrid {
namespace {

std::vector<size_t> ParseThreads(const std::string& spec) {
  std::vector<size_t> out;
  size_t value = 0;
  bool have = false;
  for (char c : spec) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<size_t>(c - '0');
      have = true;
    } else {
      if (have && value > 0) out.push_back(value);
      value = 0;
      have = false;
    }
  }
  if (have && value > 0) out.push_back(value);
  return out;
}

uint64_t Pct(std::vector<uint64_t> sorted, double pct) {
  if (sorted.empty()) return 0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  size_t idx = static_cast<size_t>(rank + 0.5);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

void Run(const bench::Args& args) {
  const size_t peers = static_cast<size_t>(args.GetInt("peers", 20000));
  const size_t maxl = static_cast<size_t>(args.GetInt("maxl", 8));
  const size_t refmax = static_cast<size_t>(args.GetInt("refmax", 4));
  const size_t batch = static_cast<size_t>(args.GetInt("batch", 256));
  const uint64_t meetings =
      static_cast<uint64_t>(args.GetInt("meetings", 2'000'000));
  const uint64_t queries = static_cast<uint64_t>(args.GetInt("queries", 20000));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::vector<size_t> thread_counts =
      ParseThreads(args.GetString("threads", "1,2,4,8"));

  bench::Banner("PP: parallel build/query utilization profile",
                "engineering extension (docs/observability.md)",
                "the serial fraction and barrier waits explain any negative "
                "scaling; wave structure is identical across thread counts");

  std::printf("%zu peers, maxl %zu, batch %zu, up to %llu meetings, seed %llu\n\n",
              peers, maxl, batch, static_cast<unsigned long long>(meetings),
              static_cast<unsigned long long>(seed));
  std::printf("%7s %7s %9s %8s %8s %10s %26s %12s\n", "threads", "waves",
              "meet/s", "serial", "util", "conflicts", "barrier wait p50/p95/p99",
              "queries/s");

  bench::JsonReport report("parallel_profile");
  std::string structure;    // wave structure of the first run, for the x-check
  std::string last_profile; // full profile JSON of the largest thread count
  for (const size_t threads : thread_counts) {
    bench::GridSetup s;
    s.config.maxl = maxl;
    s.config.refmax = refmax;
    s.config.recmax = 2;
    s.config.recursion_fanout = 2;
    s.grid = std::make_unique<Grid>(peers);
    s.rng = std::make_unique<Rng>(seed);
    ExchangeEngine exchange(s.grid.get(), s.config, s.rng.get());
    MeetingScheduler scheduler(peers);
    ParallelBuildOptions opts;
    opts.threads = threads;
    opts.batch_size = batch;
    opts.profile = true;
    ParallelGridBuilder builder(s.grid.get(), &exchange, &scheduler, s.rng.get(),
                                opts);
    const BuildReport build =
        builder.BuildToFractionOfMaxDepth(0.99, meetings);
    const BuildProfile& profile = *builder.profile();

    // The schedule-determined wave structure must not depend on the thread
    // count; a mismatch here means determinism is broken, so fail loud.
    if (structure.empty()) {
      structure = profile.StructureJson();
    } else if (structure != profile.StructureJson()) {
      std::fprintf(stderr,
                   "FATAL: wave structure differs between thread counts\n");
      std::exit(1);
    }

    std::vector<uint64_t> waits = profile.BarrierWaitSamplesNs();
    std::sort(waits.begin(), waits.end());
    const uint64_t p50 = Pct(waits, 50.0);
    const uint64_t p95 = Pct(waits, 95.0);
    const uint64_t p99 = Pct(waits, 99.0);

    obs::PhaseProfiler qprof(threads);
    ParallelQueryOptions qopts;
    qopts.threads = threads;
    qopts.num_queries = queries;
    qopts.key_length = maxl;
    qopts.seed = seed + 1;
    qopts.profiler = &qprof;
    const ParallelQueryReport query =
        RunParallelQueries(s.grid.get(), nullptr, qopts);

    const double meet_rate =
        build.seconds > 0 ? static_cast<double>(build.meetings) / build.seconds
                          : 0.0;
    char waitbuf[64];
    std::snprintf(waitbuf, sizeof(waitbuf), "%llu/%llu/%llu us",
                  static_cast<unsigned long long>(p50 / 1000),
                  static_cast<unsigned long long>(p95 / 1000),
                  static_cast<unsigned long long>(p99 / 1000));
    std::printf("%7zu %7zu %9.0f %7.1f%% %7.1f%% %9.2f%% %26s %12.0f\n",
                threads, profile.waves.size(), meet_rate,
                100.0 * profile.SerialFraction(), 100.0 * profile.Utilization(),
                100.0 * profile.ClaimConflictRate(), waitbuf,
                query.queries_per_second);

    report.AddRow()
        .Int("threads", threads)
        .Int("peers", peers)
        .Int("batch_size", batch)
        .Int("meetings", build.meetings)
        .Int("waves", profile.waves.size())
        .Num("build_seconds", build.seconds)
        .Num("meetings_per_sec", meet_rate)
        .Num("serial_fraction", profile.SerialFraction())
        .Num("utilization", profile.Utilization())
        .Num("claim_conflict_rate", profile.ClaimConflictRate())
        .Int("barrier_wait_p50_ns", p50)
        .Int("barrier_wait_p95_ns", p95)
        .Int("barrier_wait_p99_ns", p99)
        .Int("profiler_dropped", profile.profiler_dropped)
        .Num("queries_per_sec", query.queries_per_second)
        .Num("query_utilization", query.utilization);

    bench::DumpToFile("BENCH_parallel_profile_t" + std::to_string(threads) +
                          ".folded",
                      "collapsed stacks", profile.ToCollapsedStacks());
    last_profile = profile.ToJson();
  }
  report.WriteTo(args.GetString("json", "BENCH_parallel_profile.json"));
  bench::MaybeDumpFile(args, "profile-json", "build profile", last_profile);
  std::printf("\n(serial = schedule + wave partition + barrier merge; "
              "utilization = lane busy time / (threads x parallel wall); "
              "wave structure is byte-identical across the rows above)\n");
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
