// AB5 (ablation, Sec. 6 extension): self-healing under sustained churn.
//
// A converged grid is subjected to rounds of crashes and joins. Four variants:
//  - frozen:     no further exchanges (the structure decays as references die),
//  - gossip:     exchanges continue, but dead references are never pruned,
//  - gossip+prune: exchanges continue with gossip-time failure detection
//                  (ExchangeConfig::prune_unreachable_refs),
//  - active:     gossip+prune plus RepairEngine maintenance rounds (probe/evict,
//                targeted recruitment, buddy anti-entropy) after every churn
//                round -- the full self-healing stack of repair/repair.h.
// After each round we measure search success over live peers. The self-organizing
// claim of the paper predicts that continued exchanges keep the structure
// navigable; pruning additionally flushes dead references, and active repair
// refills the holes instead of waiting for chance meetings.
//
// Flags: --peers, --rounds, --crash (fraction/round), --join, --seed.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/churn.h"
#include "core/search.h"
#include "repair/repair.h"

namespace pgrid {
namespace {

struct Variant {
  const char* name;
  bool gossip;
  bool prune;
  bool repair;
};

void Run(const bench::Args& args) {
  const size_t peers = static_cast<size_t>(args.GetInt("peers", 512));
  const size_t rounds = static_cast<size_t>(args.GetInt("rounds", 8));
  const double crash = args.GetDouble("crash", 0.15);
  const double join = args.GetDouble("join", 0.15);
  const uint64_t seed = args.GetInt("seed", 42);
  const size_t maxl = 6;

  bench::Banner("AB5: self-healing under churn",
                "Sec. 6 extension (continuously adapting structures)",
                "search success decays when the structure is frozen; continued "
                "exchanges (+pruning) keep it high");

  const Variant variants[] = {{"frozen", false, false, false},
                              {"gossip", true, false, false},
                              {"gossip+prune", true, true, false},
                              {"active", true, true, true}};

  std::printf("%zu peers, %.0f%% crash + %.0f%% join per round, %zu rounds\n\n",
              peers, 100 * crash, 100 * join, rounds);
  std::printf("%-14s", "variant");
  for (size_t r = 1; r <= rounds; ++r) std::printf(" | r%-2zu %%ok", r);
  std::printf("\n");

  bench::JsonReport report("ab5_churn_repair");
  for (const Variant& variant : variants) {
    Grid grid(peers);
    Rng rng(seed);
    OnlineModel online = OnlineModel::AlwaysOn(peers);
    ExchangeConfig config;
    config.maxl = maxl;
    config.refmax = 4;
    config.recmax = 2;
    config.recursion_fanout = 2;
    config.prune_unreachable_refs = variant.prune;
    ExchangeEngine exchange(&grid, config, &rng, &online);
    MeetingScheduler scheduler(peers);
    GridBuilder builder(&grid, &exchange, &scheduler, &rng);
    builder.BuildToFractionOfMaxDepth(0.99, 100'000'000);
    ChurnDriver driver(&grid, &exchange, &scheduler, &online, &rng);
    SearchEngine repair_search(&grid, &online, &rng);
    repair::RepairEngine repairer(&grid, config, repair::RepairConfig{},
                                  &repair_search, &online, &rng);
    repairer.set_liveness([&driver](PeerId p) { return !driver.IsDead(p); });
    repairer.set_probe_fn(
        [&driver](PeerId, PeerId to) { return !driver.IsDead(to); });

    std::printf("%-14s", variant.name);
    for (size_t r = 0; r < rounds; ++r) {
      ChurnConfig churn;
      churn.crash_fraction = crash;
      churn.join_fraction = join;
      churn.meetings_per_round = variant.gossip ? peers * 25 : 0;
      driver.Round(churn);
      if (variant.repair) {
        repairer.Tick();
        repairer.Tick();
      }

      SearchEngine search(&grid, &online, &rng);
      size_t ok = 0;
      const size_t trials = 500;
      for (size_t t = 0; t < trials; ++t) {
        PeerId start = driver.RandomLivePeer();
        if (search.Query(start, KeyPath::Random(&rng, maxl)).found) ++ok;
      }
      std::printf(" | %7.1f", 100.0 * static_cast<double>(ok) / trials);
      report.AddRow()
          .Str("variant", variant.name)
          .Int("round", r + 1)
          .Num("success_rate", 100.0 * static_cast<double>(ok) / trials)
          .Int("live_peers", driver.live_count());
    }
    std::printf("\n");
  }
  report.WriteTo(args.GetString("json", "BENCH_ab5_churn_repair.json"));
  std::printf("\n(searches run from live peers only; crashed peers are pinned "
              "offline forever, joiners start with empty paths)\n");
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
