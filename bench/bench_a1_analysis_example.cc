// A1 (Sec. 4 worked example): sizing a P-Grid for Gnutella-scale file sharing.
//
// 10^7 files, 10-byte references, 10^5 bytes of index space per peer, peers online
// 30% of the time. The paper derives: key length k = 10, refmax = 20 gives > 99%
// search success, and >= 20409 peers support the replication. This binary evaluates
// the closed forms and prints a small sensitivity sweep around the design point.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "core/analysis.h"

namespace pgrid {
namespace {

void Run(const bench::Args& args) {
  bench::Banner("A1: Sec. 4 sizing example",
                "Sec. 4 (d_global=10^7, r=10B, s_peer=10^5B, i_leaf=10^4-200, "
                "refmax=20, p=0.3)",
                "k=10, success > 99%, min community ~20409 peers");

  auto result = EvaluateSizing(GnutellaExampleInput());
  const SizingResult& r = result.value();
  std::printf("i_peer (refs storable/peer):  %.0f\n", r.i_peer);
  std::printf("key length k (eq. 1):         %zu     (paper: 10)\n", r.key_length);
  std::printf("index entries used:           %.0f  (budget %.0f -> feasible: %s)\n",
              r.index_entries, r.i_peer, r.storage_feasible ? "yes" : "no");
  std::printf("min peers (eq. 2):            %.0f  (paper: > 20409)\n", r.min_peers);
  std::printf("search success (eq. 3):       %.6f (paper: > 0.99)\n\n",
              r.search_success);

  bench::JsonReport report("a1_analysis_example");
  report.AddRow()
      .Str("row", "sizing")
      .Num("i_peer", r.i_peer)
      .Int("key_length", r.key_length)
      .Num("index_entries", r.index_entries)
      .Num("min_peers", r.min_peers)
      .Num("search_success", r.search_success);

  std::printf("sensitivity: success probability vs refmax at p=0.3, k=10\n");
  std::printf("%7s | %10s\n", "refmax", "success");
  std::printf("--------+-----------\n");
  for (size_t refmax : {1u, 2u, 5u, 10u, 15u, 20u, 25u}) {
    const double success = SearchSuccessProbability(0.3, refmax, 10);
    std::printf("%7zu | %10.6f\n", refmax, success);
    report.AddRow()
        .Str("row", "refmax_sweep")
        .Int("refmax", refmax)
        .Num("success", success);
  }

  std::printf("\nsensitivity: success probability vs online probability at "
              "refmax=20, k=10\n");
  std::printf("%7s | %10s\n", "p", "success");
  std::printf("--------+-----------\n");
  for (double p : {0.05, 0.1, 0.2, 0.3, 0.5, 0.8}) {
    const double success = SearchSuccessProbability(p, 20, 10);
    std::printf("%7.2f | %10.6f\n", p, success);
    report.AddRow()
        .Str("row", "online_sweep")
        .Num("online_prob", p)
        .Num("success", success);
  }
  report.WriteTo(args.GetString("json", "BENCH_a1_analysis_example.json"));
}

}  // namespace
}  // namespace pgrid

int main(int argc, char** argv) {
  pgrid::bench::Args args(argc, argv);
  pgrid::Run(args);
  return 0;
}
