// Crash-recovery property tests for the durable storage backend
// (storage/persist.h, net/node_persist.h) and the kill/restart scenario steps
// (sim/scenario.h).
//
// The central property: for any reachable grid state, persist -> recover is
// the identity -- the recovered PeerState digests byte-identically to the live
// one, whichever route the bytes took (snapshot at attach, or the whole state
// streamed through WAL delta records). The 50-seed sweep below checks it over
// fuzzer-generated states rather than hand-picked ones. The remaining tests
// pin the operational story: torn tails are truncated during recovery,
// compaction folds the WAL into the snapshot, a killed-and-restarted peer
// rejoins byte-identically and converges via RejoinSync at a fraction of the
// recruitment cost, and the simulated-network node recovers through the same
// machinery.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/churn.h"
#include "core/search.h"
#include "net/inproc_transport.h"
#include "net/node.h"
#include "repair/repair.h"
#include "sim/digest.h"
#include "sim/fuzzer.h"
#include "sim/scenario.h"
#include "storage/persist.h"
#include "storage/wal.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/key_generator.h"

namespace pgrid {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Order-independent digest of one peer's full state: path, per-level
// references, buddies, leaf index, parked foreign entries, data store. Two
// PeerStates hold the same logical state iff their digests match; this is the
// "byte-identical rejoin" yardstick of the recovery acceptance criteria.
uint64_t PeerDigest(const PeerState& peer) {
  sim::Digest d;
  d.U64(peer.id());
  d.Str(peer.path().ToString());
  for (size_t level = 1; level <= peer.depth(); ++level) {
    const auto refs = peer.RefsAt(level);
    d.U64(refs.size());
    for (PeerId r : refs) d.U64(r);
  }
  d.U64(peer.buddies().size());
  for (PeerId b : peer.buddies()) d.U64(b);
  d.U64(peer.index().size());
  d.U64(sim::IndexDigest(peer.index()));
  d.U64(peer.foreign_entries().size());
  for (const IndexEntry& e : peer.foreign_entries()) {
    d.U64(e.holder);
    d.U64(e.item_id);
    d.Str(e.key.ToString());
    d.U64(e.version);
  }
  // DataStore iteration order is unspecified: fold a commutative sum.
  uint64_t store_sum = peer.store().size() * 0x9e3779b97f4a7c15ull;
  for (const auto& [id, item] : peer.store()) {
    sim::Digest di;
    di.U64(id);
    di.Str(item.key.ToString());
    di.Str(item.payload);
    di.U64(item.version);
    store_sum += Mix64(di.value());
  }
  d.U64(store_sum);
  return d.value();
}

// ---- the persist -> recover identity, over fuzzer-generated states ----

TEST(RecoveryTest, FiftyFuzzSeedsRoundTripEveryPeerByteIdentically) {
  sim::FuzzOptions bounds;
  bounds.min_steps = 6;
  bounds.max_steps = 14;
  bounds.min_peers = 8;
  bounds.max_peers = 20;
  const std::string dir = FreshDir("recovery_fifty_seeds");
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    sim::Scenario scenario = sim::ScenarioFuzzer::Generate(seed, bounds);
    sim::ScenarioRunner runner(scenario);
    sim::ScenarioResult result = runner.Run();
    ASSERT_FALSE(result.failed) << result.report.ToString();

    storage::StorageConfig config;
    config.dir = dir;
    config.sync_mode = storage::SyncMode::kNone;
    storage::PersistenceManager manager(config, scenario.config.maxl);
    Grid& grid = runner.grid();
    for (PeerId id = 0; id < grid.size(); ++id) {
      const PeerState& live = grid.peer(id);
      // Alternate the persistence flavor per peer: even ids snapshot the
      // state at attach, odd ids attach empty and stream everything through
      // WAL delta records.
      if ((seed + id) % 2 == 0) {
        ASSERT_TRUE(manager.Attach(live).ok());
      } else {
        ASSERT_TRUE(manager.Attach(PeerState(id)).ok());
        ASSERT_TRUE(manager.Commit(live).ok());
      }
      Result<PeerState> recovered = manager.Recover(id);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_EQ(PeerDigest(*recovered), PeerDigest(live)) << "peer " << id;
      manager.Detach(id);
    }
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
}

// ---- canonical snapshots: save -> recover -> save is byte-identical ----

TEST(RecoveryTest, SaveRecoverSaveYieldsByteIdenticalSnapshots) {
  auto built = testing_util::Build(64, 4, 3, 2, 7);
  Rng rng(21);
  std::vector<PeerId> holders;
  KeyGenerator gen(KeyGenerator::Mode::kUniform, 8);
  auto corpus = MakeCorpus(40, 64, gen, &rng, &holders);
  SeedGridPerfectly(built.grid.get(), corpus, holders);

  storage::StorageConfig config;
  config.dir = FreshDir("recovery_canonical_a");
  storage::PersistenceManager first(config, built.config.maxl);
  storage::StorageConfig config2 = config;
  config2.dir = FreshDir("recovery_canonical_b");
  storage::PersistenceManager second(config2, built.config.maxl);

  for (PeerId id = 0; id < built.grid->size(); ++id) {
    ASSERT_TRUE(first.Attach(built.grid->peer(id)).ok());
    Result<PeerState> recovered = first.Recover(id);
    ASSERT_TRUE(recovered.ok());
    ASSERT_TRUE(second.Attach(*recovered).ok());
    // The snapshot codec writes entries in canonical sorted order, so saving
    // the recovered state reproduces the original file exactly -- no drift
    // across save/recover generations.
    EXPECT_EQ(ReadFileBytes(first.SnapshotPath(id)),
              ReadFileBytes(second.SnapshotPath(id)))
        << "peer " << id;
  }
}

// ---- operational properties of the snapshot + WAL pair ----

TEST(RecoveryTest, RecoverTruncatesATornWalTail) {
  auto built = testing_util::Build(64, 4, 3, 2, 3);
  storage::StorageConfig config;
  config.dir = FreshDir("recovery_torn_tail");
  config.sync_mode = storage::SyncMode::kFlush;
  storage::PersistenceManager manager(config, built.config.maxl);

  const PeerId victim = 5;
  const PeerState& live = built.grid->peer(victim);
  ASSERT_TRUE(manager.Attach(PeerState(victim)).ok());
  ASSERT_TRUE(manager.Commit(live).ok());
  manager.Detach(victim);  // close the WAL handle before damaging the file

  const std::string wal_path = manager.WalPath(victim);
  const uint64_t clean_size = fs::file_size(wal_path);
  {
    std::ofstream out(wal_path, std::ios::binary | std::ios::app);
    out << "half-written record torn off by a crash";
  }
  ASSERT_GT(fs::file_size(wal_path), clean_size);

  Result<PeerState> recovered = manager.Recover(victim);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(PeerDigest(*recovered), PeerDigest(live));
  // Recovery truncated the torn tail: the file is back to the clean prefix
  // and a re-read reports no damage.
  EXPECT_EQ(fs::file_size(wal_path), clean_size);
  Result<storage::WalContents> reread = storage::ReadWal(wal_path);
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE(reread->torn_tail);
}

TEST(RecoveryTest, AutomaticCompactionFoldsTheWalIntoTheSnapshot) {
  auto built = testing_util::Build(64, 4, 3, 2, 4);
  storage::StorageConfig config;
  config.dir = FreshDir("recovery_compaction");
  config.compact_every = 2;
  storage::PersistenceManager manager(config, built.config.maxl);

  const PeerId id = 3;
  PeerState peer = built.grid->peer(id);
  ASSERT_TRUE(manager.Attach(peer).ok());

  peer.index().InsertOrRefresh(
      {id, 9001, testing_util::Key(peer.path().ToString().c_str()), 1});
  Result<storage::CommitInfo> c1 = manager.Commit(peer);
  ASSERT_TRUE(c1.ok());
  EXPECT_GT(c1->records, 0u);
  EXPECT_FALSE(c1->compacted);
  ASSERT_GT(fs::file_size(manager.WalPath(id)), storage::kWalHeaderBytes);

  peer.index().InsertOrRefresh(
      {id, 9002, testing_util::Key(peer.path().ToString().c_str()), 1});
  Result<storage::CommitInfo> c2 = manager.Commit(peer);
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE(c2->compacted);
  // Compaction rewrote the snapshot and truncated the WAL back to its header.
  EXPECT_EQ(fs::file_size(manager.WalPath(id)), storage::kWalHeaderBytes);

  Result<PeerState> recovered = manager.Recover(id);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(PeerDigest(*recovered), PeerDigest(peer));
}

TEST(RecoveryTest, CorruptSnapshotIsAHardError) {
  auto built = testing_util::Build(32, 3, 2, 2, 5);
  storage::StorageConfig config;
  config.dir = FreshDir("recovery_corrupt_snap");
  storage::PersistenceManager manager(config, built.config.maxl);
  ASSERT_TRUE(manager.Attach(built.grid->peer(1)).ok());
  manager.Detach(1);

  std::string bytes = ReadFileBytes(manager.SnapshotPath(1));
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream out(manager.SnapshotPath(1),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Result<PeerState> recovered = manager.Recover(1);
  EXPECT_FALSE(recovered.ok());
}

// ---- kill/restart scenario steps ----

TEST(RecoveryTest, KillRestartScenarioConvergesAndReplaysDeterministically) {
  sim::Scenario scenario;
  scenario.config.seed = 11;
  scenario.config.num_peers = 24;
  scenario.config.maxl = 4;
  scenario.config.refmax = 2;
  scenario.config.recmax = 2;
  using sim::StepKind;
  scenario.steps = {
      {StepKind::kExchange, 600, 0, 0, 0},
      {StepKind::kInsert, 2, 0b1010, 3, 4},
      {StepKind::kInsert, 7, 0b0110, 2, 4},
      {StepKind::kKill, 3, 0, 0, 0},   // snapshot-at-attach flavor
      {StepKind::kKill, 9, 0, 1, 0},   // WAL-delta flavor
      {StepKind::kExchange, 64, 0, 0, 0},
      {StepKind::kRestart, 0, 1, 0, 8},  // restart all killed peers
      {StepKind::kRepair, 4, 1, 0, 0},
      {StepKind::kBarrier, 4, 1, 0, 0},  // strict: demand repair convergence
  };
  sim::ScenarioResult first = sim::RunScenario(scenario);
  EXPECT_FALSE(first.failed) << first.report.ToString();
  EXPECT_EQ(first.steps_executed, scenario.steps.size());

  // Replaying the same scenario value reproduces the same final digest: the
  // kill/restart steps are as deterministic as every other step kind.
  sim::ScenarioResult second = sim::RunScenario(scenario);
  EXPECT_FALSE(second.failed);
  EXPECT_EQ(first.digest, second.digest);
}

TEST(RecoveryTest, KillRestartStepsRoundTripThroughTheTextFormat) {
  sim::Scenario scenario;
  scenario.config.num_peers = 12;
  scenario.steps = {
      {sim::StepKind::kKill, 4, 0, 1, 0},
      {sim::StepKind::kRestart, 2, 0, 0, 17},
      {sim::StepKind::kRestart, 0, 1, 0, 0},
  };
  Result<sim::Scenario> parsed =
      sim::ParseScenario(sim::SerializeScenario(scenario));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, scenario);
}

TEST(RecoveryTest, CrashSweepFuzzRunsClean) {
  sim::FuzzOptions options;
  options.base_seed = 1;
  options.num_seeds = 10;
  options.min_steps = 8;
  options.max_steps = 20;
  options.crash_sweep = true;
  sim::FuzzOutcome outcome = sim::ScenarioFuzzer::Fuzz(options);
  EXPECT_EQ(outcome.seeds_run, 10u);
  EXPECT_EQ(outcome.failures, 0u)
      << "seed " << outcome.failing_seed << ": "
      << outcome.failure.report.ToString();
}

// ---- restart vs recruitment ----

// Everything needed to crash and heal one simulated grid (mirrors the repair
// test fixture, sized down).
struct HealFixture {
  ExchangeConfig config;
  Grid grid{64};
  Rng rng{17};
  OnlineModel online;
  MeetingScheduler scheduler{64};
  std::unique_ptr<ExchangeEngine> exchange;
  std::unique_ptr<ChurnDriver> churn;
  std::unique_ptr<SearchEngine> search;
  std::unique_ptr<repair::RepairEngine> repair;

  HealFixture() : online(OnlineModel::AlwaysOn(64)) {
    config.maxl = 4;
    config.refmax = 3;
    config.recmax = 2;
    config.recursion_fanout = 2;
    exchange = std::make_unique<ExchangeEngine>(&grid, config, &rng, &online);
    churn = std::make_unique<ChurnDriver>(&grid, exchange.get(), &scheduler,
                                          &online, &rng);
    GridBuilder builder(&grid, exchange.get(), &scheduler, &rng);
    builder.BuildToFractionOfMaxDepth(0.99, 1'000'000);

    Rng corpus_rng(23);
    std::vector<PeerId> holders;
    KeyGenerator gen(KeyGenerator::Mode::kUniform, 8);
    auto corpus = MakeCorpus(60, 64, gen, &corpus_rng, &holders);
    SeedGridPerfectly(&grid, corpus, holders);

    search = std::make_unique<SearchEngine>(&grid, &online, &rng);
    repair = std::make_unique<repair::RepairEngine>(
        &grid, config, repair::RepairConfig{}, search.get(), &online, &rng);
    repair->set_liveness([this](PeerId p) { return !churn->IsDead(p); });
    repair->set_probe_fn(
        [this](PeerId, PeerId to) { return !churn->IsDead(to); });
  }
};

TEST(RecoveryTest, RestartedPeerRejoinsByteIdenticalAndCheaperThanHealing) {
  // Two identical fixtures (same seeds -> same grid): one restarts the
  // crashed peer from disk, the other heals around a permanent loss.
  HealFixture restart_arm;
  HealFixture recruit_arm;
  ASSERT_EQ(sim::GridStateDigest(restart_arm.grid),
            sim::GridStateDigest(recruit_arm.grid));

  const PeerId victim = 13;
  const std::string path_before =
      restart_arm.grid.peer(victim).path().ToString();
  const uint64_t index_before =
      sim::IndexDigest(restart_arm.grid.peer(victim).index());
  const uint64_t digest_before = PeerDigest(restart_arm.grid.peer(victim));
  ASSERT_FALSE(path_before.empty());

  // Restart arm: persist, crash (state wiped, as a real process death leaves
  // nothing in memory), recover from disk, revive, one RejoinSync pass.
  storage::StorageConfig config;
  config.dir = FreshDir("recovery_restart_arm");
  storage::PersistenceManager manager(config, restart_arm.config.maxl);
  ASSERT_TRUE(manager.Attach(restart_arm.grid.peer(victim)).ok());
  restart_arm.grid.peer(victim) = PeerState(victim);
  restart_arm.churn->Depart(victim, /*graceful=*/false);

  const uint64_t restart_base = restart_arm.grid.stats().total();
  Result<PeerState> recovered = manager.Recover(victim);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  restart_arm.grid.peer(victim) = std::move(*recovered);
  restart_arm.churn->Revive(victim);
  restart_arm.repair->RejoinSync(victim);
  const uint64_t restart_cost = restart_arm.grid.stats().total() - restart_base;

  // Byte-identical rejoin: key path and index digest exactly as before the
  // kill (RejoinSync may only have *added* missed updates; none exist here).
  EXPECT_EQ(restart_arm.grid.peer(victim).path().ToString(), path_before);
  EXPECT_EQ(sim::IndexDigest(restart_arm.grid.peer(victim).index()),
            index_before);
  EXPECT_EQ(PeerDigest(restart_arm.grid.peer(victim)), digest_before);

  // Recruit arm: the same peer dies with no durable state; the survivors must
  // detect the loss and recruit replacement references tick by tick.
  recruit_arm.grid.peer(victim) = PeerState(victim);
  recruit_arm.churn->Depart(victim, /*graceful=*/false);
  const uint64_t recruit_base = recruit_arm.grid.stats().total();
  check::InvariantOptions opt;
  opt.check_repair_convergence = true;
  opt.dead = &recruit_arm.churn->dead_mask();
  uint64_t ticks = 0;
  while (ticks < 12) {
    recruit_arm.repair->Tick();
    ++ticks;
    if (check::GridInvariants::Check(recruit_arm.grid, recruit_arm.config, opt)
            .ok()) {
      break;
    }
  }
  const uint64_t recruit_cost = recruit_arm.grid.stats().total() - recruit_base;

  EXPECT_LT(restart_cost, recruit_cost)
      << "restart " << restart_cost << " msgs vs recruit " << recruit_cost
      << " msgs (" << ticks << " ticks)";
}

// ---- simulated-network node recovery (net/node_persist.h) ----

TEST(RecoveryTest, NodeRestartsFromDurableStorage) {
  net::InProcTransport transport(0.0, /*seed=*/99);
  net::NodeConfig config;
  config.maxl = 3;
  config.refmax = 2;
  config.storage.dir = FreshDir("recovery_node_restart");
  config.storage.sync_mode = storage::SyncMode::kFlush;

  std::vector<std::unique_ptr<net::PGridNode>> nodes;
  for (size_t i = 0; i < 8; ++i) {
    nodes.push_back(std::make_unique<net::PGridNode>(
        "node:" + std::to_string(i), &transport, config, 1000 + i));
    ASSERT_TRUE(nodes.back()->Start().ok());
    EXPECT_FALSE(nodes.back()->recovered_from_disk());
  }
  Rng rng(5);
  for (size_t m = 0; m < 600; ++m) {
    size_t a = rng.UniformIndex(nodes.size());
    size_t b = rng.UniformIndex(nodes.size());
    if (a != b) (void)nodes[a]->MeetWith(nodes[b]->address());
  }
  DataItem item;
  item.id = 42;
  item.key = testing_util::Key("101");
  item.payload = "durable payload";
  item.version = 1;
  ASSERT_TRUE(nodes[0]->Publish(item).ok());

  const KeyPath path_before = nodes[2]->path();
  auto refs_before = nodes[2]->RefsAt(1);
  auto entries_before = nodes[2]->entries();
  ASSERT_FALSE(path_before.empty());

  // Kill node 2 (destroying the object loses all in-memory state) and bring
  // it back on the same address over the same storage directory.
  nodes[2]->Stop();
  nodes[2].reset();
  nodes[2] = std::make_unique<net::PGridNode>("node:2", &transport, config,
                                              7777);
  ASSERT_TRUE(nodes[2]->Start().ok());
  EXPECT_TRUE(nodes[2]->recovered_from_disk());
  EXPECT_EQ(nodes[2]->path().ToString(), path_before.ToString());
  EXPECT_EQ(nodes[2]->RefsAt(1), refs_before);
  EXPECT_EQ(nodes[2]->entries(), entries_before);

  // The restarted node keeps participating: it can still route and serve.
  Result<std::vector<net::WireEntry>> found =
      nodes[2]->Search(testing_util::Key("101"));
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_FALSE(found->empty());
}

}  // namespace
}  // namespace pgrid
