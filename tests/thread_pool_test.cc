#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace pgrid {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ZeroThreadsBehavesAsOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPoolTest, SingleThreadExecutesInlineInOrder) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.ParallelFor(100, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ResultsInPerItemSlotsAreVisibleAfterJoin) {
  ThreadPool pool(8);
  constexpr size_t kN = 4096;
  std::vector<uint64_t> out(kN, 0);  // plain (non-atomic) slots
  pool.ParallelFor(kN, [&](size_t i) { out[i] = i * i; });
  uint64_t sum = 0;
  for (size_t i = 0; i < kN; ++i) sum += out[i];
  uint64_t expected = 0;
  for (size_t i = 0; i < kN; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(97, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 97u * 98u / 2);
  }
}

TEST(ThreadPoolTest, ManyMoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<uint64_t> count{0};
  pool.ParallelFor(100000, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100000u);
}

}  // namespace
}  // namespace pgrid
