#include "util/flags.h"

#include <gtest/gtest.h>

namespace pgrid {
namespace {

TEST(FlagSetTest, ParsesFlagsAndPositionals) {
  FlagSet flags({"--a=1", "pos1", "--b", "--c=hello", "pos2"});
  EXPECT_TRUE(flags.Has("a"));
  EXPECT_TRUE(flags.Has("b"));
  EXPECT_TRUE(flags.Has("c"));
  EXPECT_FALSE(flags.Has("d"));
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(FlagSetTest, GetString) {
  FlagSet flags({"--name=value", "--empty="});
  EXPECT_EQ(flags.GetString("name", "x"), "value");
  EXPECT_EQ(flags.GetString("empty", "x"), "");
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
}

TEST(FlagSetTest, GetIntParsesAndValidates) {
  FlagSet flags({"--n=42", "--neg=-7", "--bad=4x2", "--empty"});
  EXPECT_EQ(flags.GetInt("n", 0).value(), 42);
  EXPECT_EQ(flags.GetInt("neg", 0).value(), -7);
  EXPECT_EQ(flags.GetInt("missing", 99).value(), 99);
  EXPECT_FALSE(flags.GetInt("bad", 0).ok());
  EXPECT_FALSE(flags.GetInt("empty", 0).ok());
}

TEST(FlagSetTest, GetDoubleParsesAndValidates) {
  FlagSet flags({"--p=0.33", "--sci=1e3", "--bad=zero"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("p", 0).value(), 0.33);
  EXPECT_DOUBLE_EQ(flags.GetDouble("sci", 0).value(), 1000.0);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 0.5).value(), 0.5);
  EXPECT_FALSE(flags.GetDouble("bad", 0).ok());
}

TEST(FlagSetTest, FirstOccurrenceWins) {
  FlagSet flags({"--x=1", "--x=2"});
  EXPECT_EQ(flags.GetInt("x", 0).value(), 1);
}

TEST(FlagSetTest, FlagNames) {
  FlagSet flags({"--a=1", "--b"});
  EXPECT_EQ(flags.FlagNames(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace pgrid
