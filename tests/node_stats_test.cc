// Satellite tests of the registry-backed node counters: concurrent handler
// traffic must be counted exactly, and the kStats protocol request must expose
// the same registry to remote scrapers.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/inproc_transport.h"
#include "net/node.h"
#include "net/protocol.h"
#include "obs/metrics.h"

namespace pgrid {
namespace net {
namespace {

KeyPath P(const char* bits) { return KeyPath::FromString(bits).value(); }

TEST(NodeStatsTest, ConcurrentQueriesAreCountedExactly) {
  InProcTransport transport;
  NodeConfig config;
  PGridNode node("node:0", &transport, config, /*seed=*/7);
  ASSERT_TRUE(node.Start().ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&transport]() {
      QueryRequest req;
      req.key = P("01");
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(
            transport.Call("node:0", "client", EncodeQueryRequest(req)).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  NodeStats stats = node.stats();
  EXPECT_EQ(stats.queries_served,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(node.metrics().GetCounter("node.queries_served")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(NodeStatsTest, ConcurrentMixedTrafficSumsExactly) {
  InProcTransport transport;
  NodeConfig config;
  PGridNode node("node:0", &transport, config, /*seed=*/7);
  ASSERT_TRUE(node.Start().ok());

  constexpr int kThreads = 6;
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&transport, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0) {
          QueryRequest req;
          req.key = P("1");
          ASSERT_TRUE(
              transport.Call("node:0", "client", EncodeQueryRequest(req)).ok());
        } else {
          PublishRequest req;
          req.entry.holder = "client";
          req.entry.item_id = static_cast<uint64_t>(t * kPerThread + i);
          req.entry.key = P("0");
          ASSERT_TRUE(
              transport.Call("node:0", "client", EncodePublishRequest(req)).ok());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  NodeStats stats = node.stats();
  EXPECT_EQ(stats.queries_served, static_cast<uint64_t>(kThreads / 2) * kPerThread);
  EXPECT_EQ(stats.publishes_served,
            static_cast<uint64_t>(kThreads / 2) * kPerThread);
  // Every publish key overlaps the empty path, so each distinct entry was
  // adopted exactly once.
  EXPECT_EQ(stats.entries_adopted,
            static_cast<uint64_t>(kThreads / 2) * kPerThread);
}

TEST(NodeStatsTest, StatsRequestReturnsRegistryJson) {
  InProcTransport transport;
  NodeConfig config;
  PGridNode a("node:a", &transport, config, /*seed=*/1);
  PGridNode b("node:b", &transport, config, /*seed=*/2);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.MeetWith("node:b").ok());

  // Scrape b from a over the ordinary transport.
  Result<std::string> json = a.FetchPeerStats("node:b");
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  // The scrape is b's own registry: it served one exchange and initiated none.
  EXPECT_NE(json->find("\"node.exchanges_served\": 1"), std::string::npos)
      << *json;
  EXPECT_NE(json->find("\"node.exchanges_initiated\": 0"), std::string::npos)
      << *json;
  EXPECT_NE(json->find("\"counters\""), std::string::npos);
  EXPECT_NE(json->find("\"histograms\""), std::string::npos);
}

TEST(NodeStatsTest, SharedRegistryIsScrapedWholesale) {
  // A node given an external registry exposes everything in it through kStats,
  // not just its own counters -- the pgrid_node deployment shares one registry
  // between the transport and the node.
  InProcTransport transport;
  obs::MetricsRegistry registry;
  registry.GetCounter("custom.counter")->Increment(99);
  NodeConfig config;
  PGridNode node("node:0", &transport, config, /*seed=*/3, &registry);
  ASSERT_TRUE(node.Start().ok());

  PGridNode client("node:c", &transport, config, /*seed=*/4);
  ASSERT_TRUE(client.Start().ok());
  Result<std::string> json = client.FetchPeerStats("node:0");
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"custom.counter\": 99"), std::string::npos) << *json;
  // And the node's own counters live in the same (shared) registry object.
  EXPECT_EQ(&node.metrics(), &registry);
}

TEST(NodeStatsTest, MalformedStatsResponseIsRejected) {
  InProcTransport transport;
  ASSERT_TRUE(transport
                  .Serve("evil",
                         [](const std::string&, const std::string&) {
                           return std::string("not a stats response");
                         })
                  .ok());
  NodeConfig config;
  PGridNode node("node:0", &transport, config, /*seed=*/5);
  ASSERT_TRUE(node.Start().ok());
  Result<std::string> json = node.FetchPeerStats("evil");
  EXPECT_FALSE(json.ok());
}

}  // namespace
}  // namespace net
}  // namespace pgrid
