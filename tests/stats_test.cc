#include "core/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/search.h"
#include "tests/test_util.h"

namespace pgrid {
namespace {

using testing_util::Key;

TEST(StatsTest, HistogramsCoverAllPeers) {
  auto built = testing_util::Build(200, 5, 2, 2, 1);
  auto path_hist = GridStats::PathLengthHistogram(*built.grid);
  size_t total = 0;
  for (const auto& [len, count] : path_hist) {
    EXPECT_LE(len, 5u);
    total += count;
  }
  EXPECT_EQ(total, 200u);

  auto replica_hist = GridStats::ReplicaHistogram(*built.grid);
  total = 0;
  for (const auto& [factor, count] : replica_hist) {
    EXPECT_GE(factor, 1u);
    total += count;
  }
  EXPECT_EQ(total, 200u);
}

TEST(StatsTest, ReplicaCountsSumToCommunitySize) {
  auto built = testing_util::Build(128, 4, 2, 2, 2);
  auto counts = GridStats::ReplicaCounts(*built.grid);
  size_t total = 0;
  for (const auto& [path, count] : counts) total += count;
  EXPECT_EQ(total, 128u);
}

TEST(StatsTest, AverageReplicationFactorNearExpectation) {
  // 256 peers over 2^4 = 16 leaves: about 16 replicas per path on average.
  auto built = testing_util::Build(256, 4, 4, 2, 3);
  double avg = GridStats::AverageReplicationFactor(*built.grid);
  EXPECT_GT(avg, 8.0);
  EXPECT_LT(avg, 32.0);
}

TEST(StatsTest, ReplicasOfMatchesManualScan) {
  auto built = testing_util::Build(128, 4, 2, 2, 4);
  Rng rng(5);
  for (int t = 0; t < 20; ++t) {
    KeyPath key = KeyPath::Random(&rng, 4);
    auto replicas = GridStats::ReplicasOf(*built.grid, key);
    size_t manual = 0;
    for (const PeerState& p : *built.grid) {
      if (PathsOverlap(p.path(), key)) ++manual;
    }
    EXPECT_EQ(replicas.size(), manual);
    for (PeerId r : replicas) {
      EXPECT_TRUE(PathsOverlap(built.grid->peer(r).path(), key));
    }
  }
}

TEST(StatsTest, EveryCompleteKeyHasAReplicaAfterConvergence) {
  auto built = testing_util::Build(256, 4, 2, 2, 6);
  ASSERT_TRUE(built.report.converged);
  for (uint64_t k = 0; k < 16; ++k) {
    EXPECT_FALSE(
        GridStats::ReplicasOf(*built.grid, KeyPath::FromUint64(k, 4)).empty())
        << "key " << KeyPath::FromUint64(k, 4) << " unserved";
  }
}

TEST(StatsTest, StorageMetricsAreLogarithmicInGridDepth) {
  auto built = testing_util::Build(256, 5, 2, 2, 7);
  // Each peer holds at most maxl * refmax routing references.
  EXPECT_LE(GridStats::MaxTotalRefs(*built.grid), 5u * 2u);
  EXPECT_GT(GridStats::AverageTotalRefs(*built.grid), 1.0);
}

TEST(StatsTest, QueryLoadProfileOnIdleGridIsZero) {
  Grid grid(10);
  GridStats::LoadProfile p = GridStats::QueryLoadProfile(grid);
  EXPECT_EQ(p.mean, 0.0);
  EXPECT_EQ(p.max, 0u);
  EXPECT_EQ(p.idle_peers, 10u);
}

TEST(StatsTest, QueryLoadProfileSummarizesServedCounts) {
  Grid grid(4);
  for (int i = 0; i < 10; ++i) grid.NoteServed(0);
  for (int i = 0; i < 2; ++i) grid.NoteServed(1);
  grid.NoteServed(2);
  GridStats::LoadProfile p = GridStats::QueryLoadProfile(grid);
  EXPECT_DOUBLE_EQ(p.mean, 13.0 / 4.0);
  EXPECT_EQ(p.max, 10u);
  EXPECT_EQ(p.idle_peers, 1u);
  EXPECT_NEAR(p.imbalance, 10.0 / (13.0 / 4.0), 1e-9);
  grid.ResetQueryLoad();
  EXPECT_EQ(GridStats::QueryLoadProfile(grid).max, 0u);
}

TEST(StatsTest, SearchLoadIsSpreadAcrossPeers) {
  // Route a workload and confirm no peer serves a disproportionate share.
  auto built = testing_util::Build(256, 4, 4, 2, 8);
  Rng rng(9);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  built.grid->ResetQueryLoad();
  for (int q = 0; q < 5000; ++q) {
    (void)search.Query(static_cast<PeerId>(rng.UniformIndex(256)),
                       KeyPath::Random(&rng, 4));
  }
  GridStats::LoadProfile p = GridStats::QueryLoadProfile(*built.grid);
  EXPECT_GT(p.mean, 0.0);
  EXPECT_LT(p.imbalance, 8.0);  // no hot spot orders of magnitude above the mean
  EXPECT_LT(p.idle_peers, 256u / 4);
}

TEST(StatsTest, CheckInvariantsAcceptsFreshGrid) {
  Grid grid(10);
  ExchangeConfig cfg;
  EXPECT_TRUE(GridStats::CheckInvariants(grid, cfg).ok());
}

TEST(StatsTest, CheckInvariantsDetectsSelfReference) {
  Grid grid(2);
  grid.peer(0).AppendPathBit(0);
  grid.peer(0).AddRefAt(1, 0);  // self-reference
  ExchangeConfig cfg;
  Status s = GridStats::CheckInvariants(grid, cfg);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("references itself"), std::string::npos);
}

TEST(StatsTest, CheckInvariantsDetectsWrongComplementBit) {
  Grid grid(2);
  grid.peer(0).AppendPathBit(0);
  grid.peer(1).AppendPathBit(0);  // same bit: not a valid level-1 reference
  grid.peer(0).AddRefAt(1, 1);
  ExchangeConfig cfg;
  Status s = GridStats::CheckInvariants(grid, cfg);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("reference property"), std::string::npos);
}

TEST(StatsTest, CheckInvariantsDetectsTooShortReferencePath) {
  Grid grid(2);
  grid.peer(0).AppendPathBit(0);
  grid.peer(0).AppendPathBit(0);
  grid.peer(1).AppendPathBit(1);
  grid.peer(0).AddRefAt(2, 1);  // target has depth 1 < level 2
  ExchangeConfig cfg;
  Status s = GridStats::CheckInvariants(grid, cfg);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("too-short"), std::string::npos);
}

TEST(StatsTest, CheckInvariantsDetectsRefmaxViolation) {
  Grid grid(4);
  grid.peer(0).AppendPathBit(0);
  for (PeerId p = 1; p < 4; ++p) {
    grid.peer(p).AppendPathBit(1);
    grid.peer(0).AddRefAt(1, p);
  }
  ExchangeConfig cfg;
  cfg.refmax = 2;
  Status s = GridStats::CheckInvariants(grid, cfg);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("refmax"), std::string::npos);
}

TEST(StatsTest, CheckInvariantsDetectsMaxlViolation) {
  Grid grid(1);
  grid.peer(0).AppendPathBit(0);
  grid.peer(0).AppendPathBit(1);
  ExchangeConfig cfg;
  cfg.maxl = 1;
  EXPECT_FALSE(GridStats::CheckInvariants(grid, cfg).ok());
}

TEST(StatsTest, CheckInvariantsDetectsBadBuddy) {
  Grid grid(2);
  grid.peer(0).AppendPathBit(0);
  grid.peer(1).AppendPathBit(1);
  grid.peer(0).AddBuddy(1);  // different path: invalid buddy
  ExchangeConfig cfg;
  Status s = GridStats::CheckInvariants(grid, cfg);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("buddy property"), std::string::npos);
}

}  // namespace
}  // namespace pgrid
