#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "check/invariants.h"
#include "obs/timeline.h"
#include "sim/fuzzer.h"

namespace pgrid {
namespace sim {
namespace {

Scenario SmallScenario() {
  Scenario s;
  s.config.seed = 42;
  s.config.num_peers = 16;
  s.config.maxl = 3;
  s.config.refmax = 2;
  s.steps = {
      {StepKind::kExchange, 120, 0, 0, 0},
      {StepKind::kInsert, 3, 5, 2, 4},
      {StepKind::kInsert, 7, 2, 1, 0},
      {StepKind::kBarrier, 2, 0, 0, 0},
      {StepKind::kUpdate, 0, 2, 0, 0},
      {StepKind::kChurn, 1, 1, 2, 40},
      {StepKind::kFault, 2, 300, 0, 0},
      {StepKind::kExchange, 60, 0, 0, 0},
  };
  return s;
}

// --- serialization ---------------------------------------------------------

TEST(ScenarioFormatTest, SerializeParseRoundTrips) {
  Scenario s = SmallScenario();
  s.config.online_prob = 0.7314159265358979;  // needs %.17g to round-trip
  Result<Scenario> parsed = ParseScenario(SerializeScenario(s));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value(), s);
  // Byte-identical on a second serialization of the parsed value.
  EXPECT_EQ(SerializeScenario(parsed.value()), SerializeScenario(s));
}

TEST(ScenarioFormatTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseScenario("").ok());
  EXPECT_FALSE(ParseScenario("not a scenario\nend\n").ok());
  // Missing "end".
  EXPECT_FALSE(ParseScenario("pgrid-scenario v1\nnum_peers 8\n").ok());
  // Unknown key.
  EXPECT_FALSE(
      ParseScenario("pgrid-scenario v1\nbogus 1\nend\n").ok());
  // Unknown step kind.
  EXPECT_FALSE(
      ParseScenario("pgrid-scenario v1\nstep explode 1 2 3 4\nend\n").ok());
  // Too few peers.
  EXPECT_FALSE(ParseScenario("pgrid-scenario v1\nnum_peers 1\nend\n").ok());
}

TEST(ScenarioFormatTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/scenario_roundtrip.pgs";
  Scenario s = SmallScenario();
  ASSERT_TRUE(SaveScenario(s, path).ok());
  Result<Scenario> loaded = LoadScenario(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value(), s);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadScenario(path).ok());
}

// --- execution determinism -------------------------------------------------

TEST(ScenarioRunnerTest, CleanScenarioPassesAllBarriers) {
  ScenarioResult result = RunScenario(SmallScenario());
  EXPECT_FALSE(result.failed) << result.report.ToString();
  EXPECT_EQ(result.steps_executed, SmallScenario().steps.size());
  EXPECT_FALSE(result.digest.empty());
}

TEST(ScenarioRunnerTest, SameScenarioSameDigest) {
  ScenarioResult a = RunScenario(SmallScenario());
  ScenarioResult b = RunScenario(SmallScenario());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.probes_found, b.probes_found);
}

TEST(ScenarioRunnerTest, DifferentSeedDifferentDigest) {
  Scenario other = SmallScenario();
  other.config.seed = 43;
  EXPECT_NE(RunScenario(SmallScenario()).digest, RunScenario(other).digest);
}

TEST(ScenarioRunnerTest, TimelineDoesNotChangeTheDigest) {
  // Attaching a metric timeline only reads; the run -- digest, probes, step
  // count -- must be byte-identical with and without one (sim/scenario.h).
  const ScenarioResult plain = RunScenario(SmallScenario());

  Scenario s = SmallScenario();
  ScenarioRunner runner(s);
  obs::TimelineRecorder timeline;
  runner.SetTimeline(&timeline);
  const ScenarioResult timed = runner.Run();

  EXPECT_EQ(timed.digest, plain.digest);
  EXPECT_EQ(timed.probes, plain.probes);
  EXPECT_EQ(timed.steps_executed, plain.steps_executed);

  // And the timeline actually recorded: one point per executed step (plus the
  // appended final barrier) for the virtual clock and live-peer series, plus
  // the sampled registry counters.
  const auto series = timeline.series();
  ASSERT_EQ(series.count("sim.virtual_now"), 1u);
  EXPECT_EQ(series.at("sim.virtual_now").size(), timed.steps_executed + 1);
  ASSERT_EQ(series.count("sim.live_peers"), 1u);
  EXPECT_GE(series.size(), 3u);  // registry counters joined the two built-ins
  EXPECT_EQ(timeline.dropped(), 0u);
}

TEST(ScenarioRunnerTest, RunnerExposesFinalGrid) {
  Scenario s = SmallScenario();
  ScenarioRunner runner(s);
  ScenarioResult result = runner.Run();
  ASSERT_FALSE(result.failed);
  EXPECT_GE(runner.grid().size(), s.config.num_peers);  // churn may have joined
  EXPECT_GT(runner.grid().AveragePathLength(), 0.0);
  EXPECT_EQ(runner.exchange_config().maxl, s.config.maxl);
}

// --- corruption steps fail at the right barrier ----------------------------

TEST(ScenarioRunnerTest, CorruptionFailsAtNextBarrier) {
  Scenario s = SmallScenario();
  s.steps.push_back({StepKind::kCorrupt, 0, 1, 0, 0});  // self-reference
  s.steps.push_back({StepKind::kBarrier, 0, 0, 0, 0});
  ScenarioResult result = RunScenario(s);
  ASSERT_TRUE(result.failed);
  // The explicit barrier right after the corruption catches it, not the
  // implicit final one.
  EXPECT_EQ(result.failed_step, s.steps.size() - 1);
  EXPECT_FALSE(result.report.ok());
}

TEST(ScenarioRunnerTest, EachCorruptionKindViolatesTheExpectedCategory) {
  struct Case {
    uint64_t kind;
    check::Category expected;
  };
  const Case cases[] = {
      {0, check::Category::kSelfReference},
      {1, check::Category::kPlacement},
      {2, check::Category::kReplicaDesync},
  };
  for (const Case& c : cases) {
    Scenario s = SmallScenario();
    s.steps.push_back({StepKind::kCorrupt, c.kind, 2, 1, 0});
    ScenarioResult result = RunScenario(s);
    ASSERT_TRUE(result.failed) << "corrupt kind " << c.kind;
    EXPECT_GE(result.report.CountOf(c.expected), 1u)
        << "corrupt kind " << c.kind << ":\n"
        << result.report.ToString();
  }
}

// --- repair steps and strict barriers --------------------------------------

TEST(ScenarioFormatTest, RepairStepRoundTrips) {
  Scenario s = SmallScenario();
  s.steps.push_back({StepKind::kRepair, 2, 1, 0, 0});
  s.steps.push_back({StepKind::kBarrier, 2, 1, 0, 0});  // strict barrier
  const std::string text = SerializeScenario(s);
  EXPECT_NE(text.find("step repair 2 1 0 0"), std::string::npos) << text;
  Result<Scenario> parsed = ParseScenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value(), s);
}

TEST(ScenarioRunnerTest, StrictBarrierFailsOnUnrepairedCrashDamage) {
  Scenario s = SmallScenario();
  s.steps = {
      {StepKind::kExchange, 150, 0, 0, 0},
      {StepKind::kChurn, 4, 0, 0, 0},     // 4 crashes, no mixing afterwards
      {StepKind::kBarrier, 2, 1, 0, 0},   // strict: demand convergence
  };
  ScenarioResult result = RunScenario(s);
  ASSERT_TRUE(result.failed);
  EXPECT_EQ(result.failed_step, 2u);
  EXPECT_GT(result.report.CountOf(check::Category::kDeadReference), 0u)
      << result.report.ToString();
}

TEST(ScenarioRunnerTest, RepairStepsSatisfyTheStrictBarrier) {
  Scenario s = SmallScenario();
  s.steps = {
      {StepKind::kExchange, 150, 0, 0, 0},
      {StepKind::kChurn, 4, 0, 0, 0},
      {StepKind::kRepair, 8, 0, 0, 0},
      {StepKind::kBarrier, 2, 1, 0, 0},
  };
  ScenarioResult result = RunScenario(s);
  EXPECT_FALSE(result.failed) << result.report.ToString();
  // Deterministic like every other step kind.
  EXPECT_EQ(result.digest, RunScenario(s).digest);
}

TEST(ScenarioRunnerTest, ReadRepairStepsRunAgainstInsertedItems) {
  Scenario s = SmallScenario();
  s.steps = {
      {StepKind::kExchange, 150, 0, 0, 0},
      {StepKind::kInsert, 3, 5, 2, 4},
      {StepKind::kInsert, 7, 2, 1, 0},
      {StepKind::kRepair, 2, 3, 0, 0},  // 3 majority reads, then 2 ticks
      {StepKind::kBarrier, 2, 0, 0, 0},
  };
  ScenarioResult result = RunScenario(s);
  EXPECT_FALSE(result.failed) << result.report.ToString();
  EXPECT_EQ(result.digest, RunScenario(s).digest);
}

// --- parallel exchange steps (config.builder_threads) ----------------------

TEST(ScenarioFormatTest, BuilderThreadsRoundTripsAndStaysOffTheWireWhenUnset) {
  // Default (0, the legacy serial path) is not serialized, so pre-existing
  // repro files keep their exact bytes.
  Scenario s = SmallScenario();
  EXPECT_EQ(SerializeScenario(s).find("builder_threads"), std::string::npos);

  s.config.builder_threads = 4;
  const std::string text = SerializeScenario(s);
  EXPECT_NE(text.find("builder_threads 4"), std::string::npos) << text;
  Result<Scenario> parsed = ParseScenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value(), s);
}

TEST(ScenarioRunnerTest, BuilderThreadsDigestIsThreadCountInvariant) {
  // Routing exchange steps through the wave-scheduled builder must leave the
  // digest a pure function of the scenario value: any builder_threads >= 1
  // produces byte-identical results, however many worker threads actually ran.
  Scenario one = SmallScenario();
  one.config.builder_threads = 1;
  const ScenarioResult base = RunScenario(one);
  EXPECT_FALSE(base.failed) << base.report.ToString();
  EXPECT_FALSE(base.digest.empty());

  for (size_t threads : {2u, 4u, 8u}) {
    Scenario s = SmallScenario();
    s.config.builder_threads = threads;
    const ScenarioResult r = RunScenario(s);
    EXPECT_FALSE(r.failed) << r.report.ToString();
    EXPECT_EQ(r.digest, base.digest) << "builder_threads " << threads;
    EXPECT_EQ(r.probes, base.probes) << "builder_threads " << threads;
  }

  // The serial inline path draws per-meeting randomness from the engine stream
  // instead of the builder's slot streams, so 0 legitimately digests
  // differently -- which is exactly why 0 stays the default.
  EXPECT_NE(RunScenario(SmallScenario()).digest, base.digest);
}

// --- faults and churn shape execution but never break invariants -----------

TEST(ScenarioRunnerTest, OutageAndPartitionScenarioStaysClean) {
  Scenario s = SmallScenario();
  s.steps = {
      {StepKind::kExchange, 100, 0, 0, 0},
      {StepKind::kFault, 0, 3, 0, 0},     // outage on a peer
      {StepKind::kExchange, 50, 0, 0, 0},
      {StepKind::kFault, 4, 8, 200, 0},   // partition for 200 time units
      {StepKind::kExchange, 50, 0, 0, 0},
      {StepKind::kBarrier, 4, 0, 0, 0},
      {StepKind::kFault, 1, 3, 0, 0},     // restore the peer
      {StepKind::kFault, 3, 0, 0, 0},     // clear rules
      {StepKind::kExchange, 50, 0, 0, 0},
  };
  ScenarioResult result = RunScenario(s);
  EXPECT_FALSE(result.failed) << result.report.ToString();
}

TEST(ScenarioRunnerTest, HeavyChurnScenarioStaysClean) {
  Scenario s = SmallScenario();
  s.steps = {
      {StepKind::kExchange, 150, 0, 0, 0},
      {StepKind::kInsert, 1, 3, 2, 1},
      {StepKind::kChurn, 3, 2, 4, 60},
      {StepKind::kBarrier, 2, 0, 0, 0},
      {StepKind::kChurn, 2, 2, 0, 60},
      {StepKind::kChurn, 0, 0, 5, 60},
  };
  ScenarioResult result = RunScenario(s);
  EXPECT_FALSE(result.failed) << result.report.ToString();
}

}  // namespace
}  // namespace sim
}  // namespace pgrid
