#include "key/text_key.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/rng.h"

namespace pgrid {
namespace {

TEST(TextKeyTest, RoundTrip) {
  for (const char* s : {"", "a", "abc", "hello world", "file-01.mp3",
                        "the_quick.brown-fox 99"}) {
    auto key = EncodeText(s);
    ASSERT_TRUE(key.ok()) << s;
    EXPECT_EQ(key->length(), std::string(s).size() * kTextKeyBitsPerChar);
    auto back = DecodeText(*key);
    ASSERT_TRUE(back.ok()) << s;
    EXPECT_EQ(*back, s);
  }
}

TEST(TextKeyTest, UppercaseFoldsToLowercase) {
  auto a = EncodeText("Beatles");
  auto b = EncodeText("beatles");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(TextKeyTest, RejectsUnsupportedCharacters) {
  EXPECT_FALSE(EncodeText("caf\xc3\xa9").ok());
  EXPECT_FALSE(EncodeText("semi;colon").ok());
  EXPECT_FALSE(EncodeText("tab\there").ok());
}

TEST(TextKeyTest, AlphabetIsSortedAndDeduplicated) {
  std::string_view alpha = TextKeyAlphabet();
  ASSERT_FALSE(alpha.empty());
  ASSERT_LE(alpha.size(), size_t{1} << kTextKeyBitsPerChar);
  for (size_t i = 1; i < alpha.size(); ++i) EXPECT_LT(alpha[i - 1], alpha[i]);
}

TEST(TextKeyTest, PrefixPreservation) {
  // s prefix of t  <=>  enc(s) path-prefix of enc(t).
  auto ab = EncodeText("ab").value();
  auto abc = EncodeText("abc").value();
  auto abd = EncodeText("abd").value();
  EXPECT_TRUE(ab.IsPrefixOf(abc));
  EXPECT_TRUE(ab.IsPrefixOf(abd));
  EXPECT_FALSE(abc.IsPrefixOf(abd));
  EXPECT_FALSE(EncodeText("ac").value().IsPrefixOf(abc));
}

TEST(TextKeyTest, OrderPreservation) {
  std::vector<std::string> words = {"apple", "apples",  "banana", "band",
                                    "bandit", "can-01", "can.02", "zebra",
                                    "0day",  "a",       " space"};
  std::vector<std::string> by_text = words;
  std::sort(by_text.begin(), by_text.end());
  std::vector<std::string> by_key = words;
  std::sort(by_key.begin(), by_key.end(),
            [](const std::string& a, const std::string& b) {
              return EncodeText(a).value() < EncodeText(b).value();
            });
  EXPECT_EQ(by_text, by_key);
}

TEST(TextKeyTest, DecodeRejectsMisalignedLengths) {
  KeyPath k = EncodeText("ab").value();
  k.PushBack(1);  // 13 bits: not a multiple of 6
  EXPECT_FALSE(DecodeText(k).ok());
}

TEST(TextKeyTest, DecodeRejectsCodesOutsideAlphabet) {
  // 0b111111 = 63 is beyond the 40-character alphabet.
  KeyPath k;
  for (int i = 0; i < 6; ++i) k.PushBack(1);
  EXPECT_FALSE(DecodeText(k).ok());
}

// Property sweep: random words round-trip and preserve order pairwise.
class TextKeyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TextKeyPropertyTest, RandomWordsRoundTripAndOrder) {
  Rng rng(GetParam());
  std::string_view alpha = TextKeyAlphabet();
  auto random_word = [&]() {
    std::string s;
    const size_t len = rng.UniformInt(0, 12);
    for (size_t i = 0; i < len; ++i) s.push_back(alpha[rng.UniformIndex(alpha.size())]);
    return s;
  };
  for (int t = 0; t < 200; ++t) {
    std::string a = random_word(), b = random_word();
    KeyPath ka = EncodeText(a).value(), kb = EncodeText(b).value();
    EXPECT_EQ(DecodeText(ka).value(), a);
    // Lexicographic comparison must agree.
    EXPECT_EQ(a < b, ka < kb) << "'" << a << "' vs '" << b << "'";
    EXPECT_EQ(a.substr(0, std::min(a.size(), b.size())) ==
                  b.substr(0, std::min(a.size(), b.size())) &&
                  a.size() <= b.size(),
              ka.IsPrefixOf(kb));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextKeyPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace pgrid
