#include "net/wire.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pgrid {
namespace net {
namespace {

TEST(WireTest, PrimitiveRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteString("hello");
  ByteReader r(w.data());
  EXPECT_EQ(r.ReadU8().value(), 0xAB);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, EmptyStringAndZeroValues) {
  ByteWriter w;
  w.WriteU32(0);
  w.WriteString("");
  ByteReader r(w.data());
  EXPECT_EQ(r.ReadU32().value(), 0u);
  EXPECT_EQ(r.ReadString().value(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, StringWithEmbeddedNulBytes) {
  std::string s("a\0b\0c", 5);
  ByteWriter w;
  w.WriteString(s);
  ByteReader r(w.data());
  EXPECT_EQ(r.ReadString().value(), s);
}

TEST(WireTest, TruncatedReadsFail) {
  ByteWriter w;
  w.WriteU32(42);
  {
    ByteReader r(std::string_view(w.data()).substr(0, 2));
    EXPECT_FALSE(r.ReadU32().ok());
  }
  {
    ByteReader r("");
    EXPECT_FALSE(r.ReadU8().ok());
    EXPECT_FALSE(r.ReadU64().ok());
    EXPECT_FALSE(r.ReadString().ok());
    EXPECT_FALSE(r.ReadKeyPath().ok());
  }
}

TEST(WireTest, StringLengthPrefixBeyondDataFails) {
  ByteWriter w;
  w.WriteU32(1000);  // claims 1000 bytes, provides none
  ByteReader r(w.data());
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(WireTest, HostileLengthPrefixIsRejectedBeforeAllocation) {
  ByteWriter w;
  w.WriteU32(0xFFFFFFFF);
  ByteReader r(w.data());
  Status s = r.ReadString().status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("cap"), std::string::npos);
}

TEST(WireTest, KeyPathRoundTripVariousLengths) {
  Rng rng(1);
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 63u, 64u, 65u, 200u}) {
    KeyPath k = KeyPath::Random(&rng, len);
    ByteWriter w;
    w.WriteKeyPath(k);
    ByteReader r(w.data());
    Result<KeyPath> back = r.ReadKeyPath();
    ASSERT_TRUE(back.ok()) << "len " << len;
    EXPECT_EQ(*back, k) << "len " << len;
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(WireTest, KeyPathEncodingIsCompact) {
  ByteWriter w;
  w.WriteKeyPath(KeyPath::FromUint64(0b10110101, 8));
  // 4 bytes length + 1 byte payload.
  EXPECT_EQ(w.data().size(), 5u);
}

TEST(WireTest, KeyPathTruncatedPayloadFails) {
  ByteWriter w;
  w.WriteKeyPath(KeyPath::FromUint64(0xFF, 8));
  ByteReader r(std::string_view(w.data()).substr(0, 4));  // length but no bits
  EXPECT_FALSE(r.ReadKeyPath().ok());
}

TEST(WireTest, StringListRoundTrip) {
  ByteWriter w;
  w.WriteStringList({"a", "", "long-address:1234", "x"});
  ByteReader r(w.data());
  auto back = r.ReadStringList();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, (std::vector<std::string>{"a", "", "long-address:1234", "x"}));
}

TEST(WireTest, SequentialMixedDecode) {
  Rng rng(2);
  KeyPath k = KeyPath::Random(&rng, 33);
  ByteWriter w;
  w.WriteString("node-a");
  w.WriteKeyPath(k);
  w.WriteU64(77);
  w.WriteStringList({"p", "q"});
  ByteReader r(w.data());
  EXPECT_EQ(r.ReadString().value(), "node-a");
  EXPECT_EQ(r.ReadKeyPath().value(), k);
  EXPECT_EQ(r.ReadU64().value(), 77u);
  EXPECT_EQ(r.ReadStringList().value().size(), 2u);
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace net
}  // namespace pgrid
