#include "core/search.h"

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/stats.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/key_generator.h"

namespace pgrid {
namespace {

using testing_util::Key;

TEST(SearchTest, EmptyQueryAnswersAtStartPeer) {
  auto built = testing_util::Build(64, 3, 1, 2, 1);
  Rng rng(2);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  QueryResult r = search.Query(5, KeyPath());
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.responder, 5u);
  EXPECT_EQ(r.messages, 0u);
}

TEST(SearchTest, ResponderAlwaysCoversQuery) {
  auto built = testing_util::Build(128, 4, 2, 2, 3);
  Rng rng(4);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  for (int t = 0; t < 500; ++t) {
    KeyPath q = KeyPath::Random(&rng, 4);
    PeerId start = static_cast<PeerId>(rng.UniformIndex(built.grid->size()));
    QueryResult r = search.Query(start, q);
    ASSERT_TRUE(r.found);
    EXPECT_TRUE(PathsOverlap(built.grid->peer(r.responder).path(), q))
        << "path " << built.grid->peer(r.responder).path() << " query " << q;
  }
}

TEST(SearchTest, ExhaustiveAllKeysAllStartsFullyOnline) {
  // In a converged, fully online grid every key must be reachable from every peer.
  auto built = testing_util::Build(96, 4, 1, 2, 5);
  ASSERT_TRUE(built.report.converged);
  Rng rng(6);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  for (uint64_t key = 0; key < 16; ++key) {
    KeyPath q = KeyPath::FromUint64(key, 4);
    for (PeerId start = 0; start < built.grid->size(); ++start) {
      QueryResult r = search.Query(start, q);
      EXPECT_TRUE(r.found) << "key " << q << " from " << start;
    }
  }
}

TEST(SearchTest, MessagesBoundedByKeyLengthFullyOnline) {
  // With everyone online the DFS never backtracks: at most one message per level.
  auto built = testing_util::Build(128, 5, 2, 2, 7);
  Rng rng(8);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  for (int t = 0; t < 300; ++t) {
    KeyPath q = KeyPath::Random(&rng, 5);
    QueryResult r = search.Query(static_cast<PeerId>(rng.UniformIndex(128)), q);
    ASSERT_TRUE(r.found);
    EXPECT_LE(r.messages, 5u);
    EXPECT_LE(r.hops, 5u);
  }
}

TEST(SearchTest, QueryLongerThanPathsStillResolves) {
  auto built = testing_util::Build(64, 3, 1, 2, 9);
  Rng rng(10);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  KeyPath q = KeyPath::Random(&rng, 12);  // much longer than maxl = 3
  QueryResult r = search.Query(0, q);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(built.grid->peer(r.responder).path().IsPrefixOf(q));
}

TEST(SearchTest, FailsGracefullyWhenAllRefsOffline) {
  auto built = testing_util::Build(64, 3, 1, 2, 11);
  Rng rng(12);
  // Everyone offline: any query that needs routing fails; queries answered locally
  // still succeed.
  OnlineModel offline(OnlineMode::kSnapshot, 64, 0.0, &rng);
  SearchEngine search(built.grid.get(), &offline, &rng);
  size_t found = 0, total = 0;
  for (PeerId start = 0; start < 64; ++start) {
    for (uint64_t k = 0; k < 8; ++k) {
      KeyPath q = KeyPath::FromUint64(k, 3);
      QueryResult r = search.Query(start, q);
      ++total;
      if (r.found) {
        ++found;
        EXPECT_EQ(r.responder, start);  // only local answers possible
        EXPECT_EQ(r.messages, 0u);
      }
    }
  }
  EXPECT_LT(found, total);  // routing-dependent queries failed
  EXPECT_GT(found, 0u);     // locally-covered queries succeeded
}

TEST(SearchTest, HigherRefmaxImprovesSuccessUnderChurn) {
  // The core redundancy claim (eq. 3): more references per level -> higher search
  // success probability at fixed online rate.
  auto run = [](size_t refmax, uint64_t seed) {
    auto built = testing_util::Build(256, 4, refmax, 2, seed);
    Rng rng(seed + 1);
    OnlineModel online(OnlineMode::kSnapshot, 256, 0.3, &rng);
    SearchEngine search(built.grid.get(), &online, &rng);
    size_t ok = 0;
    const int trials = 600;
    for (int t = 0; t < trials; ++t) {
      if (t % 50 == 0) online.Resample(&rng);
      auto start = search.RandomOnlinePeer();
      if (!start.has_value()) continue;
      KeyPath q = KeyPath::Random(&rng, 4);
      if (search.Query(*start, q).found) ++ok;
    }
    return static_cast<double>(ok) / trials;
  };
  double weak = run(1, 100);
  double strong = run(6, 100);
  EXPECT_GT(strong, weak);
  // The eq. (3) worst case for refmax = 6, p = 0.3, k = 4 is ~0.61; the measured
  // rate is well above it because most queries don't need a fresh hop per level.
  EXPECT_GT(strong, 0.8);
}

TEST(SearchTest, SuccessRateTracksAnalyticalPrediction) {
  // Empirical success under snapshot churn should be at least the eq. (3) bound
  // (the bound assumes a fresh peer needed at every level -- the worst case).
  const size_t refmax = 4, maxl = 4;
  auto built = testing_util::Build(256, maxl, refmax, 2, 13);
  Rng rng(14);
  OnlineModel online(OnlineMode::kSnapshot, 256, 0.3, &rng);
  SearchEngine search(built.grid.get(), &online, &rng);
  size_t ok = 0, trials = 0;
  for (int t = 0; t < 1500; ++t) {
    if (t % 30 == 0) online.Resample(&rng);
    auto start = search.RandomOnlinePeer();
    if (!start.has_value()) continue;
    ++trials;
    if (search.Query(*start, KeyPath::Random(&rng, maxl)).found) ++ok;
  }
  const double predicted = SearchSuccessProbability(0.3, refmax, maxl);
  const double measured = static_cast<double>(ok) / static_cast<double>(trials);
  EXPECT_GE(measured, predicted - 0.05);
}

TEST(SearchTest, RandomOnlinePeerRespectsModel) {
  auto built = testing_util::Build(64, 3, 1, 2, 15);
  Rng rng(16);
  OnlineModel online(OnlineMode::kSnapshot, 64, 0.2, &rng);
  SearchEngine search(built.grid.get(), &online, &rng);
  for (int t = 0; t < 100; ++t) {
    auto p = search.RandomOnlinePeer();
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(online.IsOnline(*p, &rng));
  }
  OnlineModel dead(OnlineMode::kSnapshot, 64, 0.0, &rng);
  SearchEngine dead_search(built.grid.get(), &dead, &rng);
  EXPECT_FALSE(dead_search.RandomOnlinePeer(32).has_value());
}

TEST(SearchTest, ReadVersionReachesQuorumOnConsistentData) {
  auto built = testing_util::Build(128, 4, 2, 2, 17);
  Rng rng(18);
  KeyGenerator gen(KeyGenerator::Mode::kUniform, 8);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(20, 128, gen, &rng, &holders);
  SeedGridPerfectly(built.grid.get(), corpus, holders);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  ReliableReadConfig cfg;
  cfg.quorum = 3;
  for (const DataItem& item : corpus) {
    ReliableReadResult r = search.ReadVersion(item.key, item.id, cfg);
    EXPECT_TRUE(r.decided);
    EXPECT_EQ(r.version, 1u);
    EXPECT_GE(r.attempts, cfg.quorum);
  }
}

TEST(SearchTest, ReadVersionSeesNewVersionAfterFullPropagation) {
  auto built = testing_util::Build(128, 4, 2, 2, 19);
  Rng rng(20);
  KeyGenerator gen(KeyGenerator::Mode::kUniform, 8);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(5, 128, gen, &rng, &holders);
  SeedGridPerfectly(built.grid.get(), corpus, holders);
  // Manually bump every replica: full propagation.
  const DataItem& item = corpus[0];
  for (PeerState& p : *built.grid) p.index().ApplyVersion(item.id, 2);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  ReliableReadConfig cfg;
  ReliableReadResult r = search.ReadVersion(item.key, item.id, cfg);
  EXPECT_TRUE(r.decided);
  EXPECT_EQ(r.version, 2u);
}

TEST(SearchTest, MetricsLedgerAgreesWithMessageStats) {
  // The acceptance contract of the observability layer: the registry counter
  // "search.messages" and the paper's MessageStats ledger count the same
  // messages, so either can be used to reproduce the paper's numbers.
  auto built = testing_util::Build(96, 4, 2, 2, 21);
  Rng rng(22);
  OnlineModel online(OnlineMode::kSnapshot, built.grid->size(), 0.5, &rng);
  SearchEngine search(built.grid.get(), &online, &rng);
  const uint64_t queries_before = built.grid->stats().count(MessageType::kQuery);
  ASSERT_EQ(queries_before, 0u);

  size_t found = 0;
  for (int t = 0; t < 200; ++t) {
    if (t % 50 == 0) online.Resample(&rng);
    auto start = search.RandomOnlinePeer();
    if (!start.has_value()) continue;
    QueryResult r = search.Query(*start, KeyPath::Random(&rng, 4));
    if (r.found) ++found;
  }
  ASSERT_GT(found, 0u);

  const obs::RegistrySnapshot snap = built.grid->metrics().Snapshot();
  uint64_t messages = 0, queries = 0, failures = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "search.messages") messages = value;
    if (name == "search.queries") queries = value;
    if (name == "search.failures") failures = value;
  }
  EXPECT_EQ(messages, built.grid->stats().count(MessageType::kQuery));
  EXPECT_GT(messages, 0u);
  EXPECT_EQ(queries, 200u);
  EXPECT_EQ(found, queries - failures);

  // The hop histogram saw exactly the successful queries.
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    if (h.name == "search.hops") {
      EXPECT_EQ(h.count, found);
    }
  }
}

TEST(SearchTest, TraceRecorderCapturesQuerySpans) {
  auto built = testing_util::Build(64, 4, 2, 2, 23);
  Rng rng(24);
  obs::TraceRecorder trace;
  built.grid->SetTraceRecorder(&trace);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  QueryResult r = search.Query(0, KeyPath::Random(&rng, 4));
  ASSERT_TRUE(r.found);

  std::vector<obs::TraceEvent> events = trace.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].name, "search.query");
  EXPECT_GT(events[0].dur_ns, 0u);
  // Every hop event belongs to the query's span.
  size_t hops = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "search.hop") {
      EXPECT_EQ(e.trace_id, events[0].trace_id);
      ++hops;
    }
  }
  EXPECT_EQ(hops, r.hops);
}

}  // namespace
}  // namespace pgrid
