// The wave schedule's whole contract (core/wave_schedule.h): a batch of
// meetings is partitioned into waves such that
//   (1) validity      -- no two meetings in a wave share an endpoint,
//   (2) completeness  -- every meeting is scheduled exactly once,
//   (3) determinism   -- the waves are a pure function of the batch,
//   (4) the bound     -- for simple batches, waves <= max_degree + 1 (Vizing).
// Parallel edges (the same pair drawn twice in one batch) can legitimately
// exceed the Vizing bound -- the multigraph bound is max_degree +
// max_multiplicity -- which is pinned here too so the fallback path stays
// covered.

#include "core/wave_schedule.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace pgrid {
namespace {

/// Renders the schedule as "w0: 1 4 7 | w1: 0 2 ..." for equality comparison.
std::string Render(const WaveSchedule& s) {
  std::ostringstream out;
  for (size_t w = 0; w < s.num_waves(); ++w) {
    out << "w" << w << ":";
    for (uint32_t e : s.wave(w)) out << " " << e;
    out << " | ";
  }
  return out.str();
}

/// Asserts validity + completeness for `edges`, returning the wave count.
size_t CheckProper(const WaveSchedule& s, const std::vector<WaveEdge>& edges) {
  EXPECT_EQ(s.num_edges(), edges.size());
  std::vector<int> seen(edges.size(), 0);
  size_t total = 0;
  for (size_t w = 0; w < s.num_waves(); ++w) {
    std::set<PeerId> endpoints;
    EXPECT_FALSE(s.wave(w).empty()) << "empty wave " << w;
    for (uint32_t e : s.wave(w)) {
      EXPECT_LT(e, edges.size());
      if (e >= edges.size()) continue;
      ++seen[e];
      ++total;
      // Validity: both endpoints unused so far within this wave.
      EXPECT_TRUE(endpoints.insert(edges[e].a).second)
          << "wave " << w << " reuses peer " << edges[e].a;
      EXPECT_TRUE(endpoints.insert(edges[e].b).second)
          << "wave " << w << " reuses peer " << edges[e].b;
    }
    // Items inside a wave keep input order (part of the slot contract).
    EXPECT_TRUE(std::is_sorted(s.wave(w).begin(), s.wave(w).end()));
  }
  EXPECT_EQ(total, edges.size());
  for (size_t e = 0; e < edges.size(); ++e) {
    EXPECT_EQ(seen[e], 1) << "edge " << e << " scheduled " << seen[e] << " times";
  }
  return s.num_waves();
}

size_t MaxDegree(const std::vector<WaveEdge>& edges) {
  std::vector<size_t> deg;
  for (const WaveEdge& e : edges) {
    const size_t need = std::max(e.a, e.b) + 1;
    if (deg.size() < need) deg.resize(need, 0);
    ++deg[e.a];
    ++deg[e.b];
  }
  return deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());
}

/// A random batch the way the builder produces one: distinct pairs, possibly
/// repeated across draws (multigraph). `simple` dedups the pairs.
std::vector<WaveEdge> RandomBatch(Rng* rng, size_t num_peers, size_t count,
                                  bool simple) {
  std::vector<WaveEdge> edges;
  std::set<std::pair<PeerId, PeerId>> used;
  while (edges.size() < count) {
    const PeerId a = static_cast<PeerId>(rng->UniformIndex(num_peers));
    PeerId b = static_cast<PeerId>(rng->UniformIndex(num_peers));
    if (a == b) continue;
    if (simple) {
      const auto key = std::minmax(a, b);
      if (!used.insert(key).second) continue;
    }
    edges.push_back({a, b});
  }
  return edges;
}

TEST(WaveScheduleTest, EmptyBatchHasNoWaves) {
  WaveSchedule s;
  s.Color({});
  EXPECT_EQ(s.num_waves(), 0u);
  EXPECT_EQ(s.num_edges(), 0u);
  EXPECT_EQ(s.max_degree(), 0u);
}

TEST(WaveScheduleTest, DisjointMeetingsShareOneWave) {
  WaveSchedule s;
  s.Color({{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  EXPECT_EQ(s.num_waves(), 1u);
  EXPECT_EQ(s.wave(0).size(), 4u);
  EXPECT_EQ(s.max_degree(), 1u);
}

TEST(WaveScheduleTest, StarNeedsOneWavePerMeeting) {
  // Every meeting shares peer 0; the waves cannot do better than width 1.
  WaveSchedule s;
  s.Color({{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  std::vector<WaveEdge> edges = {{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  EXPECT_EQ(CheckProper(s, edges), 4u);
  EXPECT_EQ(s.max_degree(), 4u);
}

TEST(WaveScheduleTest, OddCycleNeedsMaxDegreePlusOne) {
  // A triangle has max degree 2 but chromatic index 3: the bound is tight.
  const std::vector<WaveEdge> edges = {{0, 1}, {1, 2}, {2, 0}};
  WaveSchedule s;
  s.Color(edges);
  EXPECT_EQ(CheckProper(s, edges), 3u);
  EXPECT_EQ(s.max_degree(), 2u);
  EXPECT_EQ(s.fallback_colors(), 0u);
}

TEST(WaveScheduleTest, SimpleBatchesRespectTheVizingBound) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t peers = 4 + rng.UniformIndex(60);
    const size_t max_edges = peers * (peers - 1) / 2;
    const size_t count = 1 + rng.UniformIndex(std::min<size_t>(max_edges, 160));
    const std::vector<WaveEdge> edges =
        RandomBatch(&rng, peers, count, /*simple=*/true);
    WaveSchedule s;
    s.Color(edges);
    const size_t waves = CheckProper(s, edges);
    EXPECT_EQ(s.max_degree(), MaxDegree(edges));
    EXPECT_LE(waves, s.max_degree() + 1)
        << "trial " << trial << ": " << waves << " waves for max degree "
        << s.max_degree();
    EXPECT_EQ(s.fallback_colors(), 0u) << "trial " << trial;
  }
}

TEST(WaveScheduleTest, BuilderShapedBatchesRespectTheVizingBound) {
  // The shape the builder actually colors: batch_size meetings over a much
  // larger community, where repeats are rare but possible. When the draw
  // happens to be simple, the Vizing bound must hold.
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<WaveEdge> edges =
        RandomBatch(&rng, 2000, 256, /*simple=*/true);
    WaveSchedule s;
    s.Color(edges);
    CheckProper(s, edges);
    EXPECT_LE(s.num_waves(), s.max_degree() + 1);
    EXPECT_EQ(s.fallback_colors(), 0u);
  }
}

TEST(WaveScheduleTest, ParallelEdgesStayValidWithinTheMultigraphBound) {
  // A doubled triangle: max degree 4, but 6 waves are required (each copy of
  // each triangle edge needs its own color) -- Vizing's multigraph bound
  // max_degree + max_multiplicity, not max_degree + 1.
  const std::vector<WaveEdge> edges = {{0, 1}, {1, 2}, {2, 0},
                                       {0, 1}, {1, 2}, {2, 0}};
  WaveSchedule s;
  s.Color(edges);
  EXPECT_EQ(CheckProper(s, edges), 6u);
  EXPECT_EQ(s.max_degree(), 4u);
  EXPECT_LE(s.num_waves(), s.max_degree() + 2u);  // degree + multiplicity
}

TEST(WaveScheduleTest, RandomMultigraphBatchesAreProper) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t peers = 3 + rng.UniformIndex(12);  // small: force repeats
    const std::vector<WaveEdge> edges =
        RandomBatch(&rng, peers, 64, /*simple=*/false);
    WaveSchedule s;
    s.Color(edges);
    CheckProper(s, edges);
    // Vizing for multigraphs; multiplicity <= max_degree, so 2 * degree is a
    // safe ceiling that still catches a runaway palette.
    EXPECT_LE(s.num_waves(), 2 * s.max_degree());
  }
}

TEST(WaveScheduleTest, ScheduleIsAPureFunctionOfTheBatch) {
  Rng rng(5);
  const std::vector<WaveEdge> edges = RandomBatch(&rng, 500, 256, false);

  WaveSchedule a;
  a.Color(edges);
  const std::string first = Render(a);
  ASSERT_FALSE(first.empty());

  // Same input on the same (reused) instance and on a fresh instance.
  for (int i = 0; i < 3; ++i) {
    a.Color(edges);
    EXPECT_EQ(Render(a), first) << "reused instance, round " << i;
  }
  WaveSchedule b;
  b.Color(edges);
  EXPECT_EQ(Render(b), first) << "fresh instance";

  // Interleaving unrelated batches must not leak state into the result.
  WaveSchedule c;
  c.Color(RandomBatch(&rng, 50, 64, false));
  c.Color(edges);
  EXPECT_EQ(Render(c), first) << "after an unrelated batch";
}

TEST(WaveScheduleTest, InputOrderIsPartOfTheFunction) {
  // The schedule is a function of the *list*, order included -- reversing the
  // batch may give different waves, and that is fine as long as each run is
  // individually proper. (The builder always presents items in schedule order.)
  Rng rng(13);
  const std::vector<WaveEdge> edges = RandomBatch(&rng, 40, 80, false);
  std::vector<WaveEdge> reversed(edges.rbegin(), edges.rend());
  WaveSchedule s;
  s.Color(edges);
  CheckProper(s, edges);
  s.Color(reversed);
  CheckProper(s, reversed);
}

TEST(WaveScheduleTest, ReusedInstanceHandlesGrowingPeerIds) {
  // Dense-id scratch is stamped, not cleared; feeding batches over disjoint,
  // ascending PeerId ranges must not confuse it.
  WaveSchedule s;
  for (uint32_t base : {0u, 100000u, 5u, 70000u}) {
    std::vector<WaveEdge> edges;
    for (uint32_t i = 0; i < 16; ++i) {
      edges.push_back({base + i, base + 16 + i});
      edges.push_back({base + i, base + 32 + i});
    }
    s.Color(edges);
    CheckProper(s, edges);
    EXPECT_LE(s.num_waves(), s.max_degree() + 1);
  }
}

}  // namespace
}  // namespace pgrid
