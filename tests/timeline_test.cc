// TimelineRecorder: per-tick metric series. Under test: hand-fed points,
// registry sampling (counters, gauges, histogram percentiles), the bounded
// buffer, and the JSON shape benches and the scenario runner emit.

#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pgrid {
namespace obs {
namespace {

TEST(TimelineRecorderTest, AddPointBuildsOrderedSeries) {
  TimelineRecorder tl;
  tl.AddPoint("queries.ok", 0, 10);
  tl.AddPoint("queries.ok", 1, 12);
  tl.AddPoint("refs.dead", 1, 3);
  EXPECT_EQ(tl.num_points(), 3u);

  std::map<std::string, std::vector<TimelineRecorder::Point>> s = tl.series();
  ASSERT_EQ(s.size(), 2u);
  ASSERT_EQ(s["queries.ok"].size(), 2u);
  EXPECT_EQ(s["queries.ok"][0].t, 0u);
  EXPECT_EQ(s["queries.ok"][0].value, 10.0);
  EXPECT_EQ(s["queries.ok"][1].t, 1u);
  EXPECT_EQ(s["queries.ok"][1].value, 12.0);
  ASSERT_EQ(s["refs.dead"].size(), 1u);
}

TEST(TimelineRecorderTest, SampleRegistryCoversEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("exchange.count")->Increment(4);
  registry.GetGauge("peers.live")->Set(31);
  Histogram* h = registry.GetHistogram("route.attempts", {1, 2, 4, 8});
  h->Record(1);
  h->Record(3);

  TimelineRecorder tl;
  tl.SampleRegistry(/*t=*/5, registry);
  std::map<std::string, std::vector<TimelineRecorder::Point>> s = tl.series();
  ASSERT_EQ(s.count("exchange.count"), 1u);
  EXPECT_EQ(s["exchange.count"][0].t, 5u);
  EXPECT_EQ(s["exchange.count"][0].value, 4.0);
  ASSERT_EQ(s.count("peers.live"), 1u);
  EXPECT_EQ(s["peers.live"][0].value, 31.0);
  // Histograms expand to .count/.p50/.p95/.p99 series.
  ASSERT_EQ(s.count("route.attempts.count"), 1u);
  EXPECT_EQ(s["route.attempts.count"][0].value, 2.0);
  EXPECT_EQ(s.count("route.attempts.p50"), 1u);
  EXPECT_EQ(s.count("route.attempts.p95"), 1u);
  EXPECT_EQ(s.count("route.attempts.p99"), 1u);

  // A second sample extends every series by one point at the new tick.
  registry.GetCounter("exchange.count")->Increment();
  tl.SampleRegistry(6, registry);
  s = tl.series();
  ASSERT_EQ(s["exchange.count"].size(), 2u);
  EXPECT_EQ(s["exchange.count"][1].t, 6u);
  EXPECT_EQ(s["exchange.count"][1].value, 5.0);
}

TEST(TimelineRecorderTest, BoundedBufferCountsDropped) {
  TimelineRecorder tl(/*max_points=*/3);
  for (uint64_t t = 0; t < 10; ++t) tl.AddPoint("s", t, 1.0);
  EXPECT_EQ(tl.num_points(), 3u);
  EXPECT_EQ(tl.dropped(), 7u);
  tl.Clear();
  EXPECT_EQ(tl.num_points(), 0u);
  tl.AddPoint("s", 0, 1.0);
  EXPECT_EQ(tl.num_points(), 1u);
}

TEST(TimelineRecorderTest, JsonIsDeterministicAndIntegerClean) {
  TimelineRecorder tl;
  tl.AddPoint("b.series", 1, 2.5);
  tl.AddPoint("a.series", 0, 3);  // whole numbers must print as integers
  const std::string json = tl.ToJson();
  // Series sorted by name, [t, value] pairs, whole doubles printed as ints.
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"a.series\": [[0, 3]]"), std::string::npos);
  EXPECT_NE(json.find("\"b.series\": [[1, 2.5]]"), std::string::npos);
  EXPECT_LT(json.find("a.series"), json.find("b.series"));
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);

  // Identical inputs, identical bytes.
  TimelineRecorder again;
  again.AddPoint("b.series", 1, 2.5);
  again.AddPoint("a.series", 0, 3);
  EXPECT_EQ(json, again.ToJson());
}

}  // namespace
}  // namespace obs
}  // namespace pgrid
