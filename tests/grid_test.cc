#include "core/grid.h"

#include <gtest/gtest.h>

namespace pgrid {
namespace {

TEST(GridTest, AddPeersAssignsSequentialIds) {
  Grid grid(3);
  EXPECT_EQ(grid.size(), 3u);
  const PeerId first = grid.AddPeers(4);
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(grid.size(), 7u);
  for (PeerId id = 0; id < 7; ++id) {
    EXPECT_EQ(grid.peer(id).id(), id);
  }
  // New peers start responsible for the whole key space.
  EXPECT_TRUE(grid.peer(first).path().empty());
  EXPECT_EQ(grid.peer(first).TotalRefs(), 0u);
}

TEST(GridTest, AddPeerIsAddPeersOfOne) {
  Grid grid(2);
  EXPECT_EQ(grid.AddPeer(), 2u);
  EXPECT_EQ(grid.AddPeer(), 3u);
  EXPECT_EQ(grid.size(), 4u);
}

TEST(GridTest, AddPeersPreservesQueryLoadCounters) {
  Grid grid(2);
  grid.NoteServed(0);
  grid.NoteServed(0);
  grid.NoteServed(1);
  grid.AddPeers(3);
  std::vector<uint64_t> load = grid.query_load();
  ASSERT_EQ(load.size(), 5u);
  EXPECT_EQ(load[0], 2u);
  EXPECT_EQ(load[1], 1u);
  EXPECT_EQ(load[2], 0u);
  EXPECT_EQ(load[3], 0u);
  EXPECT_EQ(load[4], 0u);
  // The grown counter vector accepts load for the new peers immediately.
  grid.NoteServed(4);
  EXPECT_EQ(grid.query_load()[4], 1u);
}

TEST(GridTest, AddPeersMatchesRepeatedAddPeer) {
  Grid batched(5);
  Grid repeated(5);
  const PeerId first = batched.AddPeers(7);
  PeerId expected_first = kInvalidPeer;
  for (int i = 0; i < 7; ++i) {
    const PeerId id = repeated.AddPeer();
    if (expected_first == kInvalidPeer) expected_first = id;
  }
  EXPECT_EQ(first, expected_first);
  EXPECT_EQ(batched.size(), repeated.size());
  EXPECT_EQ(batched.query_load().size(), repeated.query_load().size());
}

TEST(GridDeathTest, AddPeersRejectsZero) {
  Grid grid(1);
  EXPECT_DEATH({ grid.AddPeers(0); }, "PGRID_CHECK failed");
}

}  // namespace
}  // namespace pgrid
