// Scaling regression guard for the parallel builder (ctest labels: parallel,
// heavy). PR 6's profiler attributed the old negative scaling to a ~68%
// claim-conflict rate in the greedy wave partitioner; the edge-colored schedule
// (core/wave_schedule.h) removed the claim loop entirely. This test pins both
// halves of the fix at paper-adjacent scale (4k peers):
//
//   - the claim-conflict rate is < 5% (in fact identically 0), and
//   - t=4 does not lose to t=1. On hardware with >= 4 cores the guard is the
//     issue's full criterion (t=4 meetings/s >= 1.5x t=1); on smaller hosts --
//     the CI container exposes a single core, where real speedup is physically
//     impossible -- it degrades to a no-collapse bound (t=4 >= 0.5x t=1),
//     which the old claim-loop design failed and the wave schedule passes.
//     Under ThreadSanitizer timing is synthetic, so only the structural half
//     (conflict rate, determinism) is asserted.
//
// The two builds share a seed, so the guard doubles as one more determinism
// check at a scale the unit tests do not reach.

#include <cstdio>
#include <memory>
#include <thread>

#include "core/exchange.h"
#include "core/grid.h"
#include "core/parallel_builder.h"
#include "gtest/gtest.h"
#include "sim/digest.h"
#include "sim/meeting_scheduler.h"
#include "util/rng.h"

#if defined(__SANITIZE_THREAD__)
#define PGRID_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PGRID_UNDER_TSAN 1
#endif
#endif
#ifndef PGRID_UNDER_TSAN
#define PGRID_UNDER_TSAN 0
#endif

namespace pgrid {
namespace {

struct ScalingRun {
  std::unique_ptr<Grid> grid;
  BuildReport report;
  double conflict_rate = 0.0;
  uint64_t digest = 0;
  double MeetingsPerSecond() const {
    return report.seconds > 0
               ? static_cast<double>(report.meetings) / report.seconds
               : 0.0;
  }
};

ScalingRun Build4k(size_t threads) {
  constexpr size_t kPeers = 4000;
  ScalingRun out;
  ExchangeConfig config;
  config.maxl = 6;
  config.refmax = 4;
  config.recmax = 2;
  config.recursion_fanout = 2;
  config.manage_data = false;  // pure construction cost, as in T1-T5
  out.grid = std::make_unique<Grid>(kPeers);
  Rng master(4242);
  ExchangeEngine exchange(out.grid.get(), config, &master);
  MeetingScheduler scheduler(kPeers);
  ParallelBuildOptions options;
  options.threads = threads;
  options.batch_size = 256;
  options.profile = true;
  ParallelGridBuilder builder(out.grid.get(), &exchange, &scheduler, &master,
                              options);
  out.report = builder.BuildToFractionOfMaxDepth(0.99, 4'000'000);
  out.conflict_rate = builder.profile()->ClaimConflictRate();
  out.digest = sim::GridStateDigest(*out.grid);
  return out;
}

TEST(ParallelScalingTest, FourThreadsDoNotLoseToOneAndConflictsStayNearZero) {
  const ScalingRun t1 = Build4k(1);
  const ScalingRun t4 = Build4k(4);

  ASSERT_TRUE(t1.report.converged);
  ASSERT_TRUE(t4.report.converged);
  EXPECT_EQ(t1.digest, t4.digest);
  EXPECT_EQ(t1.report.meetings, t4.report.meetings);

  // The structural half of the fix: the precomputed schedule has no claim
  // retries, at any thread count. The issue's guard is < 5%; the design gives 0.
  EXPECT_LT(t1.conflict_rate, 0.05);
  EXPECT_LT(t4.conflict_rate, 0.05);
  EXPECT_DOUBLE_EQ(t4.conflict_rate, 0.0);

  const double r1 = t1.MeetingsPerSecond();
  const double r4 = t4.MeetingsPerSecond();
  ASSERT_GT(r1, 0.0);
  ASSERT_GT(r4, 0.0);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("cores=%u  t1=%.0f meet/s  t4=%.0f meet/s  ratio=%.2f  "
              "conflicts t4=%.4f%%\n",
              cores, r1, r4, r4 / r1, 100.0 * t4.conflict_rate);
#if PGRID_UNDER_TSAN
  GTEST_SKIP() << "timing assertions skipped under ThreadSanitizer";
#else
  if (cores >= 4) {
    // The issue's criterion, enforceable only where 4 lanes can actually run.
    EXPECT_GE(r4, 1.5 * r1) << "t=4 should scale on a " << cores << "-core host";
  } else {
    // Single/dual-core host: demand no collapse. The greedy claim loop managed
    // only ~0.72x here; the wave schedule must stay within 2x of serial.
    EXPECT_GE(r4, 0.5 * r1) << "t=4 collapsed on a " << cores << "-core host";
  }
#endif
}

}  // namespace
}  // namespace pgrid
