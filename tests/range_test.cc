#include "key/range.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace pgrid {
namespace {

KeyPath P(const char* bits) { return KeyPath::FromString(bits).value(); }

uint64_t Value(const KeyPath& k) {
  uint64_t v = 0;
  for (size_t i = 0; i < k.length(); ++i) v = (v << 1) | static_cast<uint64_t>(k.bit(i));
  return v;
}

/// All full-length keys covered by a set of prefixes.
std::set<uint64_t> Covered(const std::vector<KeyPath>& prefixes, size_t length) {
  std::set<uint64_t> out;
  for (const KeyPath& p : prefixes) {
    const size_t free_bits = length - p.length();
    const uint64_t base = Value(p) << free_bits;
    for (uint64_t i = 0; i < (uint64_t{1} << free_bits); ++i) {
      EXPECT_TRUE(out.insert(base + i).second) << "prefixes overlap";
    }
  }
  return out;
}

TEST(RangeTest, SingleKeyRange) {
  auto r = DecomposeRange(P("0110"), P("0110"));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], P("0110"));
}

TEST(RangeTest, FullSpaceCollapsesToOnePrefix) {
  auto r = DecomposeRange(P("0000"), P("1111"));
  ASSERT_TRUE(r.ok());
  // The whole 4-bit space is one aligned block: the 0-length prefix is not
  // representable at length >= 1, so the decomposition yields "0" and "1".
  EXPECT_LE(r->size(), 2u);
  EXPECT_EQ(Covered(*r, 4).size(), 16u);
}

TEST(RangeTest, ClassicDecomposition) {
  // [0011, 1011] over 4 bits: 3..11 inclusive = 9 keys.
  auto r = DecomposeRange(P("0011"), P("1011"));
  ASSERT_TRUE(r.ok());
  std::set<uint64_t> covered = Covered(*r, 4);
  std::set<uint64_t> expected;
  for (uint64_t v = 3; v <= 11; ++v) expected.insert(v);
  EXPECT_EQ(covered, expected);
  // Minimality sanity: classic decomposition of [3, 11] is 0011, 01*, 10*, hence 3.
  EXPECT_LE(r->size(), 4u);
}

TEST(RangeTest, RejectsMalformedBounds) {
  EXPECT_FALSE(DecomposeRange(P("01"), P("011")).ok());   // unequal lengths
  EXPECT_FALSE(DecomposeRange(P("11"), P("00")).ok());    // lo > hi
  EXPECT_FALSE(DecomposeRange(KeyPath(), KeyPath()).ok());  // zero length
}

TEST(RangeTest, BoundaryRanges) {
  // Entire lower half.
  auto r = DecomposeRange(P("000"), P("011"));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0], P("0"));
  // A range ending at the maximum key.
  auto top = DecomposeRange(P("101"), P("111"));
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(Covered(*top, 3), (std::set<uint64_t>{5, 6, 7}));
}

// Property: for random ranges, the decomposition tiles exactly the range with
// disjoint prefixes, ordered low to high.
class RangePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RangePropertyTest, TilesExactly) {
  const size_t length = GetParam();
  Rng rng(length * 7 + 1);
  for (int t = 0; t < 50; ++t) {
    uint64_t a = rng.UniformInt(0, (uint64_t{1} << length) - 1);
    uint64_t b = rng.UniformInt(0, (uint64_t{1} << length) - 1);
    if (a > b) std::swap(a, b);
    auto r = DecomposeRange(KeyPath::FromUint64(a, length),
                            KeyPath::FromUint64(b, length));
    ASSERT_TRUE(r.ok());
    std::set<uint64_t> covered = Covered(*r, length);
    EXPECT_EQ(covered.size(), b - a + 1);
    EXPECT_EQ(*covered.begin(), a);
    EXPECT_EQ(*covered.rbegin(), b);
    // Number of prefixes is O(2 * length).
    EXPECT_LE(r->size(), 2 * length);
    // Ordered low to high.
    for (size_t i = 1; i < r->size(); ++i) {
      EXPECT_LT(Value((*r)[i - 1]) << (length - (*r)[i - 1].length()),
                Value((*r)[i]) << (length - (*r)[i].length()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, RangePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 16));

}  // namespace
}  // namespace pgrid
