#include "core/update.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/search.h"
#include "core/stats.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/key_generator.h"

namespace pgrid {
namespace {

using testing_util::Key;

UpdateConfig Params(size_t recbreadth, size_t repetition) {
  UpdateConfig cfg;
  cfg.recbreadth = recbreadth;
  cfg.repetition = repetition;
  return cfg;
}

bool Reached(const UpdateOutcome& o, PeerId p) {
  return std::find(o.reached.begin(), o.reached.end(), p) != o.reached.end();
}

TEST(UpdateTest, EveryReachedPeerIsAReplica) {
  auto built = testing_util::Build(256, 5, 3, 2, 1);
  Rng rng(2);
  UpdateEngine update(built.grid.get(), nullptr, &rng);
  for (auto strategy : {UpdateStrategy::kRepeatedDfs, UpdateStrategy::kRepeatedDfsBuddies,
                        UpdateStrategy::kBreadthFirst}) {
    for (int t = 0; t < 30; ++t) {
      KeyPath key = KeyPath::Random(&rng, 4);
      UpdateOutcome o = update.Probe(key, strategy, Params(2, 3));
      auto replicas = GridStats::ReplicasOf(*built.grid, key);
      for (PeerId p : o.reached) {
        EXPECT_NE(std::find(replicas.begin(), replicas.end(), p), replicas.end())
            << UpdateStrategyName(strategy) << " reached non-replica " << p;
      }
    }
  }
}

TEST(UpdateTest, DfsReachesAtMostOneReplicaPerRepetition) {
  auto built = testing_util::Build(256, 5, 2, 2, 3);
  Rng rng(4);
  UpdateEngine update(built.grid.get(), nullptr, &rng);
  for (size_t reps : {1u, 2u, 5u}) {
    UpdateOutcome o =
        update.Probe(KeyPath::Random(&rng, 5), UpdateStrategy::kRepeatedDfs,
                     Params(1, reps));
    EXPECT_LE(o.reached.size(), reps);
  }
}

TEST(UpdateTest, BuddiesExtendDfsCoverage) {
  // With data management on, replicas at maxl know their buddies; the buddy variant
  // must reach at least as many replicas as plain DFS for the same repetition count.
  auto built = testing_util::Build(512, 4, 3, 2, 5);
  Rng rng(6);
  size_t dfs_total = 0, buddy_total = 0;
  UpdateEngine update(built.grid.get(), nullptr, &rng);
  for (int t = 0; t < 40; ++t) {
    KeyPath key = KeyPath::Random(&rng, 4);
    dfs_total +=
        update.Probe(key, UpdateStrategy::kRepeatedDfs, Params(1, 3)).reached.size();
    buddy_total +=
        update.Probe(key, UpdateStrategy::kRepeatedDfsBuddies, Params(1, 3))
            .reached.size();
  }
  EXPECT_GE(buddy_total, dfs_total);
}

TEST(UpdateTest, BfsReachesMoreReplicasThanDfs) {
  // The paper's Fig. 5 headline: breadth-first search is by far superior.
  auto built = testing_util::Build(512, 4, 4, 2, 7);
  Rng rng(8);
  UpdateEngine update(built.grid.get(), nullptr, &rng);
  size_t dfs_total = 0, bfs_total = 0;
  for (int t = 0; t < 40; ++t) {
    KeyPath key = KeyPath::Random(&rng, 4);
    dfs_total +=
        update.Probe(key, UpdateStrategy::kRepeatedDfs, Params(1, 3)).reached.size();
    bfs_total +=
        update.Probe(key, UpdateStrategy::kBreadthFirst, Params(3, 3)).reached.size();
  }
  EXPECT_GT(bfs_total, dfs_total);
}

TEST(UpdateTest, BfsWithFullFanoutFindsLargeReplicaFraction) {
  auto built = testing_util::Build(512, 4, 4, 2, 9);
  Rng rng(10);
  UpdateEngine update(built.grid.get(), nullptr, &rng);
  double fraction_sum = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    KeyPath key = KeyPath::Random(&rng, 4);
    auto replicas = GridStats::ReplicasOf(*built.grid, key);
    ASSERT_FALSE(replicas.empty());
    UpdateOutcome o =
        update.Probe(key, UpdateStrategy::kBreadthFirst, Params(8, 4));
    fraction_sum +=
        static_cast<double>(o.reached.size()) / static_cast<double>(replicas.size());
  }
  EXPECT_GT(fraction_sum / trials, 0.5);
}

TEST(UpdateTest, PropagateBumpsVersionsAtReachedReplicas) {
  auto built = testing_util::Build(256, 4, 3, 2, 11);
  Rng rng(12);
  KeyGenerator gen(KeyGenerator::Mode::kUniform, 8);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(1, 256, gen, &rng, &holders);
  SeedGridPerfectly(built.grid.get(), corpus, holders);
  const DataItem& item = corpus[0];
  UpdateEngine update(built.grid.get(), nullptr, &rng);
  UpdateOutcome o = update.Propagate(item.key, item.id, /*version=*/2,
                                     UpdateStrategy::kBreadthFirst, Params(4, 2));
  ASSERT_FALSE(o.reached.empty());
  for (PeerId p : o.reached) {
    EXPECT_EQ(built.grid->peer(p).index().LatestVersionOf(item.id), 2u)
        << "replica " << p << " not bumped";
  }
}

TEST(UpdateTest, UnreachedReplicasStayStale) {
  auto built = testing_util::Build(256, 4, 3, 2, 13);
  Rng rng(14);
  KeyGenerator gen(KeyGenerator::Mode::kUniform, 8);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(1, 256, gen, &rng, &holders);
  SeedGridPerfectly(built.grid.get(), corpus, holders);
  const DataItem& item = corpus[0];
  UpdateEngine update(built.grid.get(), nullptr, &rng);
  // Minimal effort: one DFS pass reaches exactly one replica.
  UpdateOutcome o = update.Propagate(item.key, item.id, 2,
                                     UpdateStrategy::kRepeatedDfs, Params(1, 1));
  auto replicas = GridStats::ReplicasOf(*built.grid, item.key);
  ASSERT_GT(replicas.size(), 1u);
  size_t stale = 0;
  for (PeerId p : replicas) {
    if (!Reached(o, p) &&
        built.grid->peer(p).index().LatestVersionOf(item.id) == 1u) {
      ++stale;
    }
  }
  EXPECT_GT(stale, 0u);
}

TEST(UpdateTest, MoreRepetitionsNeverReachFewerReplicas) {
  auto built = testing_util::Build(256, 4, 3, 2, 15);
  // Use the same seed per repetition level for a paired comparison in expectation;
  // strictly we only require a monotone *average*.
  double avg[3] = {0, 0, 0};
  const size_t reps[3] = {1, 3, 6};
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    for (int i = 0; i < 3; ++i) {
      Rng rng(1000 + t * 17 + i);
      UpdateEngine eng(built.grid.get(), nullptr, &rng);
      Rng keyrng(500 + t);
      KeyPath key = KeyPath::Random(&keyrng, 4);
      avg[i] += static_cast<double>(
          eng.Probe(key, UpdateStrategy::kBreadthFirst, Params(2, reps[i]))
              .reached.size());
    }
  }
  EXPECT_LE(avg[0], avg[1]);
  EXPECT_LE(avg[1], avg[2]);
}

TEST(UpdateTest, MessagesScaleWithRecbreadth) {
  auto built = testing_util::Build(512, 5, 4, 2, 17);
  Rng rng(18);
  UpdateEngine update(built.grid.get(), nullptr, &rng);
  uint64_t low = 0, high = 0;
  for (int t = 0; t < 20; ++t) {
    KeyPath key = KeyPath::Random(&rng, 5);
    low += update.Probe(key, UpdateStrategy::kBreadthFirst, Params(1, 1)).messages;
    high += update.Probe(key, UpdateStrategy::kBreadthFirst, Params(4, 1)).messages;
  }
  EXPECT_GT(high, low);
}

TEST(UpdateTest, OfflineReplicasAreMissed) {
  auto built = testing_util::Build(256, 4, 3, 2, 19);
  Rng rng(20);
  OnlineModel online(OnlineMode::kSnapshot, 256, 0.3, &rng);
  UpdateEngine update(built.grid.get(), &online, &rng);
  for (int t = 0; t < 20; ++t) {
    KeyPath key = KeyPath::Random(&rng, 4);
    UpdateOutcome o = update.Probe(key, UpdateStrategy::kBreadthFirst, Params(4, 2));
    for (PeerId p : o.reached) {
      EXPECT_TRUE(online.IsOnline(p, &rng)) << "offline replica " << p << " reached";
    }
  }
}

TEST(UpdateTest, StrategyNamesAreStable) {
  EXPECT_STREQ(UpdateStrategyName(UpdateStrategy::kRepeatedDfs), "dfs");
  EXPECT_STREQ(UpdateStrategyName(UpdateStrategy::kRepeatedDfsBuddies), "dfs+buddies");
  EXPECT_STREQ(UpdateStrategyName(UpdateStrategy::kBreadthFirst), "bfs");
}

}  // namespace
}  // namespace pgrid
