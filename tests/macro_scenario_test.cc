// Macro-fault scenario steps (docs/robustness.md): partitions, crash waves,
// flash crowds, gray failures, mass joins -- serialization, determinism,
// degradation semantics, and shrinkability.

#include <gtest/gtest.h>

#include <string>

#include "check/invariants.h"
#include "obs/timeline.h"
#include "sim/fuzzer.h"
#include "sim/scenario.h"

namespace pgrid {
namespace sim {
namespace {

/// A scenario exercising every macro step kind at least once.
Scenario MacroScenario() {
  Scenario s;
  s.config.seed = 77;
  s.config.num_peers = 24;
  s.config.maxl = 4;
  s.config.refmax = 2;
  s.steps = {
      {StepKind::kExchange, 200, 0, 0, 0},
      {StepKind::kInsert, 3, 5, 2, 4},
      {StepKind::kInsert, 7, 12, 3, 1},
      {StepKind::kInsert, 11, 9, 1, 0},
      {StepKind::kSlowNode, 64, 20, 0, 0},
      {StepKind::kPartition, 3, 2, 1, 0},   // 2 groups, 2 avail ticks
      {StepKind::kUpdate, 5, 1, 0, 0},
      {StepKind::kCrashWave, 64, 0, 0, 0},  // 1/4 of everyone
      {StepKind::kPartition, 0, 2, 0, 0},   // heal + reconcile
      {StepKind::kFlashCrowd, 1, 1, 3, 2},
      {StepKind::kMassJoin, 4, 60, 0, 0},
      {StepKind::kSlowNode, 0, 0, 0, 0},    // clear gray marks
      {StepKind::kExchange, 150, 0, 0, 0},
      {StepKind::kRestart, 0, 1, 0, 0},
      {StepKind::kRepair, 3, 1, 0, 0},
  };
  return s;
}

// --- serialization ---------------------------------------------------------

TEST(MacroScenarioFormatTest, AllMacroKindsRoundTrip) {
  const Scenario s = MacroScenario();
  const std::string text = SerializeScenario(s);
  // Every macro step name appears in the text form.
  for (const char* name :
       {"partition", "crashwave", "flashcrowd", "slownode", "massjoin"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  Result<Scenario> parsed = ParseScenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value(), s);
  EXPECT_EQ(SerializeScenario(parsed.value()), text);
}

// --- determinism -----------------------------------------------------------

TEST(MacroScenarioTest, ReplayIsByteIdentical) {
  const Scenario s = MacroScenario();
  const ScenarioResult a = RunScenario(s);
  const ScenarioResult b = RunScenario(s);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.steps_executed, b.steps_executed);
}

TEST(MacroScenarioTest, TimelineSamplingDoesNotChangeTheDigest) {
  const Scenario s = MacroScenario();
  const ScenarioResult plain = RunScenario(s);
  obs::TimelineRecorder timeline;
  ScenarioRunner runner(s);
  runner.SetTimeline(&timeline);
  const ScenarioResult sampled = runner.Run();
  EXPECT_EQ(plain.digest, sampled.digest);
  // The availability series exist and carry one point per macro tick.
  const auto series = timeline.series();
  EXPECT_TRUE(series.count("avail.success_rate"));
  EXPECT_TRUE(series.count("avail.shed_rate"));
  EXPECT_TRUE(series.count("avail.live_peers"));
}

// --- partition + heal ------------------------------------------------------

TEST(MacroScenarioTest, PartitionDivergesHealsAndConverges) {
  Scenario s;
  s.config.seed = 9;
  s.config.num_peers = 24;
  s.config.maxl = 3;
  s.config.refmax = 2;
  s.steps = {
      {StepKind::kExchange, 220, 0, 0, 0},
      {StepKind::kInsert, 3, 5, 2, 4},
      {StepKind::kInsert, 7, 2, 1, 0},
      {StepKind::kInsert, 13, 6, 2, 2},
      {StepKind::kBarrier, 4, 0, 0, 0},
      {StepKind::kPartition, 3, 2, 1, 0},  // split into 2 groups
      {StepKind::kUpdate, 5, 0, 0, 0},     // diverge inside the islands
      {StepKind::kUpdate, 9, 1, 0, 0},
      {StepKind::kPartition, 0, 2, 0, 0},  // heal + anti-entropy
      {StepKind::kBarrier, 4, 1, 0, 0},    // strict: replica agreement
  };
  obs::TimelineRecorder timeline;
  ScenarioRunner runner(s);
  runner.SetTimeline(&timeline);
  const ScenarioResult result = runner.Run();
  EXPECT_FALSE(result.failed)
      << "failed at step " << result.failed_step << ": "
      << result.report.ToString();
  // The heal actually drove reconciliation rounds.
  EXPECT_GE(
      runner.grid().metrics().GetCounter("repair.reconcile_rounds")->value(),
      1u);
}

TEST(MacroScenarioTest, CrashWaveRestartsAndConverges) {
  Scenario s;
  s.config.seed = 21;
  s.config.num_peers = 20;
  s.config.maxl = 3;
  s.config.refmax = 2;
  s.steps = {
      {StepKind::kExchange, 200, 0, 0, 0},
      {StepKind::kInsert, 3, 5, 2, 4},
      {StepKind::kInsert, 9, 1, 1, 3},
      {StepKind::kCrashWave, 128, 0, 0, 0},  // half of everyone, durably
      {StepKind::kRestart, 0, 1, 0, 0},      // restart-all + RejoinSync
      {StepKind::kExchange, 100, 0, 0, 0},
      {StepKind::kRepair, 4, 2, 0, 0},
      {StepKind::kBarrier, 4, 1, 0, 0},      // strict
  };
  ScenarioRunner runner(s);
  const ScenarioResult result = runner.Run();
  EXPECT_FALSE(result.failed)
      << "failed at step " << result.failed_step << ": "
      << result.report.ToString();
  // The wave actually crashed peers (durable kills show up as rejoin syncs
  // when they restart).
  EXPECT_GE(runner.grid().metrics().GetCounter("repair.rejoin_syncs")->value(),
            1u);
}

TEST(MacroScenarioTest, CrashWavePrefixTargetsOnlyMatchingPeers) {
  // A 1-bit prefix wave must leave the complementary half untouched: with
  // fraction 256/256 of the "0..." side crashed, at least the "1..." side
  // survives, so the live count stays well above the floor.
  Scenario s;
  s.config.seed = 33;
  s.config.num_peers = 24;
  s.config.maxl = 3;
  s.config.refmax = 2;
  s.steps = {
      {StepKind::kExchange, 240, 0, 0, 0},
      {StepKind::kCrashWave, 255, 0, 1, 0},  // ~all of prefix "0"
  };
  ScenarioRunner runner(s);
  const ScenarioResult result = runner.Run();
  EXPECT_FALSE(result.failed) << result.report.ToString();
}

// --- flash crowd -----------------------------------------------------------

TEST(MacroScenarioTest, FlashCrowdShedsUnderOverload) {
  Scenario s;
  s.config.seed = 5;
  s.config.num_peers = 24;
  s.config.maxl = 4;
  s.config.refmax = 2;
  s.steps = {
      {StepKind::kExchange, 300, 0, 0, 0},
      {StepKind::kInsert, 3, 5, 3, 4},
      {StepKind::kInsert, 7, 4, 3, 1},
      // 8 ticks at 8x load on a 1-bit prefix: far beyond the per-peer serve
      // budget, so shedding must kick in.
      {StepKind::kFlashCrowd, 1, 0, 6, 7},
  };
  ScenarioRunner runner(s);
  const ScenarioResult result = runner.Run();
  EXPECT_FALSE(result.failed) << result.report.ToString();
  EXPECT_GT(runner.grid().metrics().GetCounter("search.sheds")->value(), 0u);
}

// --- mass join -------------------------------------------------------------

TEST(MacroScenarioTest, MassJoinGrowsTheGridAndIntegrates) {
  Scenario s;
  s.config.seed = 13;
  s.config.num_peers = 16;
  s.config.maxl = 3;
  s.config.refmax = 2;
  s.steps = {
      {StepKind::kExchange, 160, 0, 0, 0},
      {StepKind::kMassJoin, 7, 120, 0, 0},  // 8 joiners, 120 meetings
  };
  ScenarioRunner runner(s);
  const ScenarioResult result = runner.Run();
  EXPECT_FALSE(result.failed) << result.report.ToString();
  EXPECT_EQ(runner.grid().size(), 16u + 8u);
}

// --- shrinking -------------------------------------------------------------

TEST(MacroScenarioTest, ShrinkReducesMacroFailingScenario) {
  // A deliberate corruption buried between macro steps: ddmin must strip the
  // macro noise and keep a minimal failing core.
  Scenario s;
  s.config.seed = 3;
  s.config.num_peers = 16;
  s.config.maxl = 3;
  s.config.refmax = 2;
  s.steps = {
      {StepKind::kExchange, 160, 0, 0, 0},
      {StepKind::kInsert, 3, 5, 2, 4},
      {StepKind::kSlowNode, 64, 10, 0, 0},
      {StepKind::kMassJoin, 2, 30, 0, 0},
      {StepKind::kCorrupt, 0, 3, 0, 0},  // self-reference at peer 3
      {StepKind::kFlashCrowd, 1, 0, 2, 1},
      {StepKind::kSlowNode, 0, 0, 0, 0},
  };
  ASSERT_TRUE(RunScenario(s).failed);
  const Scenario minimal = ScenarioFuzzer::Shrink(s);
  EXPECT_TRUE(RunScenario(minimal).failed);
  EXPECT_LT(minimal.steps.size(), s.steps.size());
  EXPECT_LE(minimal.steps.size(), 2u);
}

// --- fuzzer integration ----------------------------------------------------

TEST(MacroScenarioTest, MacroSweepGeneratesMacroStepsAndHealTail) {
  FuzzOptions options;
  options.macro_sweep = true;
  options.min_steps = 30;
  options.max_steps = 60;
  bool saw_macro = false;
  for (uint64_t seed = 1; seed <= 8 && !saw_macro; ++seed) {
    const Scenario s = ScenarioFuzzer::Generate(seed, options);
    for (const ScenarioStep& step : s.steps) {
      if (step.kind == StepKind::kPartition ||
          step.kind == StepKind::kCrashWave ||
          step.kind == StepKind::kFlashCrowd ||
          step.kind == StepKind::kSlowNode ||
          step.kind == StepKind::kMassJoin) {
        saw_macro = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_macro);

  // The macro heal tail: heal-partition, clear-slow, transport heal,
  // restart-all, mixing, repair, strict barrier.
  const Scenario s = ScenarioFuzzer::Generate(1, options);
  ASSERT_GE(s.steps.size(), 7u);
  const size_t n = s.steps.size();
  EXPECT_EQ(s.steps[n - 7], (ScenarioStep{StepKind::kPartition, 0, 0, 0, 0}));
  EXPECT_EQ(s.steps[n - 6], (ScenarioStep{StepKind::kSlowNode, 0, 0, 0, 0}));
  EXPECT_EQ(s.steps[n - 5], (ScenarioStep{StepKind::kFault, 6, 0, 0, 0}));
  EXPECT_EQ(s.steps[n - 4], (ScenarioStep{StepKind::kRestart, 0, 1, 0, 0}));
  EXPECT_EQ(s.steps[n - 1].kind, StepKind::kBarrier);
  EXPECT_NE(s.steps[n - 1].b, 0u);
  EXPECT_EQ(s.config.online_prob, 1.0);
}

TEST(MacroScenarioTest, MacroSweepSeedsRunClean) {
  FuzzOptions options;
  options.macro_sweep = true;
  options.num_seeds = 5;
  options.min_steps = 8;
  options.max_steps = 16;
  options.max_peers = 24;
  const FuzzOutcome outcome = ScenarioFuzzer::Fuzz(options);
  EXPECT_EQ(outcome.seeds_run, 5u);
  EXPECT_EQ(outcome.failures, 0u)
      << "seed " << outcome.failing_seed << ": "
      << outcome.failure.report.ToString();
}

// --- partition-leak invariant (unit) ---------------------------------------

TEST(MacroScenarioTest, PartitionLeakInvariantFlagsCrossGroupEntries) {
  // Build a grid with data, then craft a PartitionView claiming every peer is
  // in group 1 while every quarantined item originated in group 0: each held
  // quarantined entry is then a cross-group leak by construction.
  Scenario s;
  s.config.seed = 41;
  s.config.num_peers = 16;
  s.config.maxl = 3;
  s.config.refmax = 2;
  s.steps = {
      {StepKind::kExchange, 160, 0, 0, 0},
      {StepKind::kInsert, 3, 5, 2, 4},
      {StepKind::kInsert, 7, 2, 1, 0},
  };
  ScenarioRunner runner(s);
  ASSERT_FALSE(runner.Run().failed);

  check::PartitionView pv;
  pv.active = true;
  pv.group.assign(16, 1);
  // Mark every inserted item as quarantined with origin group 0. Holders are
  // unknown here; the leak check scans all live holders of the item id, so the
  // recorded holder only needs to be a valid peer.
  pv.items.push_back({1, 0, 0});
  pv.items.push_back({2, 0, 0});

  check::InvariantOptions opt;
  opt.partition = &pv;
  opt.check_ledger = false;
  const check::InvariantReport report = check::GridInvariants::Check(
      runner.grid(), runner.exchange_config(), opt);
  EXPECT_GT(report.CountOf(check::Category::kPartitionLeak), 0u);
}

}  // namespace
}  // namespace sim
}  // namespace pgrid
