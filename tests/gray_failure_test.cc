// Gray failures (docs/robustness.md): peers that answer, but slowly. The
// latency-aware suspicion layer must *demote* them from routing preference
// (SuspicionTable::NoteSlow, RepairEngine latency hook, scenario `slownode`
// step) without ever evicting them as dead -- a slow replica still holds its
// data.

#include <gtest/gtest.h>

#include <memory>

#include "check/invariants.h"
#include "core/churn.h"
#include "core/grid_builder.h"
#include "core/search.h"
#include "repair/health.h"
#include "repair/repair.h"
#include "sim/fuzzer.h"
#include "sim/scenario.h"

namespace pgrid {
namespace {

// ---- SuspicionTable slow-path and hysteresis (repair/health.h) ----

TEST(SuspicionTableSlowTest, DemotesOnlyAtTheSlowThreshold) {
  repair::SuspicionTable table(3, /*slow_threshold=*/2);
  EXPECT_FALSE(table.NoteSlow(7));
  EXPECT_EQ(table.slowness(7), 1u);
  EXPECT_TRUE(table.NoteSlow(7));  // the demotion edge
  EXPECT_TRUE(table.IsDemoted(7));
  // Already demoted: further slow probes report no new edge.
  EXPECT_FALSE(table.NoteSlow(7));
  // Slowness is orthogonal to failure suspicion: no eviction happened.
  EXPECT_EQ(table.suspicion(7), 0u);
}

TEST(SuspicionTableSlowTest, FastProbeRehabilitates) {
  repair::SuspicionTable table(3, 2);
  table.NoteSlow(4);
  EXPECT_TRUE(table.NoteSlow(4));
  ASSERT_TRUE(table.IsDemoted(4));
  table.NoteFast(4);
  EXPECT_FALSE(table.IsDemoted(4));
  EXPECT_EQ(table.slowness(4), 0u);
  // The streak restarts from scratch.
  EXPECT_FALSE(table.NoteSlow(4));
}

TEST(SuspicionTableSlowTest, ZeroSlowThresholdDisablesDemotion) {
  repair::SuspicionTable table(3, 0);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(table.NoteSlow(9));
  EXPECT_FALSE(table.IsDemoted(9));
}

TEST(SuspicionTableSlowTest, EvictionCooldownSuppressesCrossings) {
  repair::SuspicionTable table(2, 0, /*eviction_cooldown=*/1);
  // First crossing evicts and arms the cooldown.
  EXPECT_FALSE(table.NoteFailure(1));
  EXPECT_TRUE(table.NoteFailure(1));
  // Second crossing (any target) is suppressed: the count resets, the peer
  // stays referenced.
  EXPECT_FALSE(table.NoteFailure(2));
  EXPECT_FALSE(table.NoteFailure(2));
  EXPECT_EQ(table.suspicion(2), 0u);
  // Cooldown spent: the next crossing evicts again.
  EXPECT_FALSE(table.NoteFailure(2));
  EXPECT_TRUE(table.NoteFailure(2));
}

// ---- RepairEngine latency hook over a simulated grid ----

struct GrayFixture {
  ExchangeConfig config;
  Grid grid{64};
  Rng rng{17};
  OnlineModel online;
  std::unique_ptr<ExchangeEngine> exchange;
  MeetingScheduler scheduler{64};
  std::unique_ptr<ChurnDriver> driver;
  std::unique_ptr<SearchEngine> search;
  std::unique_ptr<repair::RepairEngine> repair;

  explicit GrayFixture(repair::RepairConfig rc = {})
      : online(OnlineModel::AlwaysOn(64)) {
    config.maxl = 4;
    config.refmax = 3;
    config.recmax = 2;
    config.recursion_fanout = 2;
    exchange = std::make_unique<ExchangeEngine>(&grid, config, &rng, &online);
    driver = std::make_unique<ChurnDriver>(&grid, exchange.get(), &scheduler,
                                           &online, &rng);
    GridBuilder builder(&grid, exchange.get(), &scheduler, &rng);
    builder.BuildToFractionOfMaxDepth(0.99, 1'000'000);
    search = std::make_unique<SearchEngine>(&grid, &online, &rng);
    repair = std::make_unique<repair::RepairEngine>(&grid, config, rc,
                                                    search.get(), &online, &rng);
    repair->set_liveness([this](PeerId p) { return !driver->IsDead(p); });
    repair->set_probe_fn(
        [this](PeerId, PeerId to) { return !driver->IsDead(to); });
  }
};

TEST(GrayFailureTest, SlowPeersAreDemotedNotEvicted) {
  GrayFixture f;
  // Every probe observes latency 10 > the default probe_timeout of 4: the
  // whole grid is gray, yet nobody is dead.
  f.repair->set_latency_fn([](PeerId, PeerId) -> uint64_t { return 10; });

  uint64_t slow_probes = 0, demotions = 0, evictions = 0, failures = 0;
  for (int round = 0; round < 3; ++round) {
    const repair::RepairTick tick = f.repair->Tick();
    slow_probes += tick.slow_probes;
    demotions += tick.demotions;
    evictions += tick.evictions;
    failures += tick.probe_failures;
  }
  EXPECT_GT(slow_probes, 0u);
  EXPECT_GT(demotions, 0u) << "chronically slow peers must be demoted";
  EXPECT_EQ(evictions, 0u) << "slow is not dead: no reference may be evicted";
  EXPECT_EQ(failures, 0u);
  EXPECT_GT(f.grid.metrics().GetCounter("repair.slow_demotions")->value(), 0u);
  EXPECT_EQ(f.grid.metrics().GetCounter("repair.evictions")->value(), 0u);

  // The demotions are observable through the routing-preference hook.
  bool any_demoted = false;
  for (PeerId observer = 0; observer < f.grid.size() && !any_demoted;
       ++observer) {
    for (PeerId target = 0; target < f.grid.size(); ++target) {
      if (f.repair->IsDemoted(observer, target)) {
        any_demoted = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_demoted);
}

TEST(GrayFailureTest, FastProbesClearDemotions) {
  GrayFixture f;
  bool slow_phase = true;
  f.repair->set_latency_fn(
      [&slow_phase](PeerId, PeerId) -> uint64_t { return slow_phase ? 10 : 0; });
  (void)f.repair->Tick();
  (void)f.repair->Tick();
  // The network recovers: the next rounds must rehabilitate everyone.
  slow_phase = false;
  (void)f.repair->Tick();
  for (PeerId observer = 0; observer < f.grid.size(); ++observer) {
    for (PeerId target = 0; target < f.grid.size(); ++target) {
      EXPECT_FALSE(f.repair->IsDemoted(observer, target))
          << observer << " still demotes " << target;
    }
  }
}

TEST(GrayFailureTest, ConfigurableThresholdsChangeTheEdge) {
  repair::RepairConfig rc;
  rc.slow_threshold = 50;  // effectively never within 3 rounds
  GrayFixture f(rc);
  f.repair->set_latency_fn([](PeerId, PeerId) -> uint64_t { return 10; });
  uint64_t demotions = 0;
  for (int round = 0; round < 3; ++round) demotions += f.repair->Tick().demotions;
  EXPECT_EQ(demotions, 0u) << "a higher slow_threshold must delay demotion";

  repair::RepairConfig loose;
  loose.probe_timeout = 20;  // latency 10 is now within budget
  GrayFixture g(loose);
  g.repair->set_latency_fn([](PeerId, PeerId) -> uint64_t { return 10; });
  uint64_t slow = 0;
  for (int round = 0; round < 3; ++round) slow += g.repair->Tick().slow_probes;
  EXPECT_EQ(slow, 0u) << "latency within the timeout is not slow";
}

// ---- scenario layer: the slownode macro step ----

TEST(GrayFailureTest, SlowNodeScenarioDemotesWithoutFalseEviction) {
  sim::Scenario s;
  s.config.seed = 19;
  s.config.num_peers = 24;
  s.config.maxl = 3;
  s.config.refmax = 2;
  s.steps = {
      {sim::StepKind::kExchange, 240, 0, 0, 0},
      {sim::StepKind::kInsert, 3, 5, 2, 4},
      {sim::StepKind::kInsert, 7, 2, 1, 0},
      // Half the community turns gray with latency 5 + 35 = 40.
      {sim::StepKind::kSlowNode, 128, 35, 0, 0},
      {sim::StepKind::kRepair, 3, 0, 0, 0},
      // Strict barrier: the slow-but-alive peers must still be routable
      // references and replica-consistent -- demoted, not evicted.
      {sim::StepKind::kBarrier, 4, 1, 0, 0},
  };
  sim::ScenarioRunner runner(s);
  const sim::ScenarioResult result = runner.Run();
  EXPECT_FALSE(result.failed)
      << "failed at step " << result.failed_step << ": "
      << result.report.ToString();
  auto& metrics = runner.grid().metrics();
  EXPECT_GT(metrics.GetCounter("repair.slow_demotions")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("repair.evictions")->value(), 0u)
      << "slow peers were evicted as dead";
}

TEST(GrayFailureTest, SlowNodeClearRestoresFullSpeed) {
  sim::Scenario s;
  s.config.seed = 19;
  s.config.num_peers = 24;
  s.config.maxl = 3;
  s.config.refmax = 2;
  s.steps = {
      {sim::StepKind::kExchange, 240, 0, 0, 0},
      {sim::StepKind::kSlowNode, 128, 35, 0, 0},
      {sim::StepKind::kRepair, 3, 0, 0, 0},
      {sim::StepKind::kSlowNode, 0, 0, 0, 0},  // the marks are lifted
      {sim::StepKind::kRepair, 2, 0, 0, 0},    // fast probes rehabilitate
      {sim::StepKind::kBarrier, 4, 1, 0, 0},
  };
  const sim::ScenarioResult result = sim::RunScenario(s);
  EXPECT_FALSE(result.failed) << result.report.ToString();
}

}  // namespace
}  // namespace pgrid
