#include "core/analysis.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pgrid {
namespace {

TEST(AnalysisTest, MinKeyLengthMatchesLog2) {
  EXPECT_EQ(MinKeyLength(1024, 1), 10u);
  EXPECT_EQ(MinKeyLength(1025, 1), 11u);
  EXPECT_EQ(MinKeyLength(1000, 1000), 0u);
  EXPECT_EQ(MinKeyLength(10, 1000), 0u);  // fewer items than leaf capacity
}

TEST(AnalysisTest, MinPeersFormula) {
  EXPECT_DOUBLE_EQ(MinPeers(1e6, 1e3, 10), 1e4);
  EXPECT_DOUBLE_EQ(MinPeers(100, 10, 1), 10.0);
}

TEST(AnalysisTest, SearchSuccessProbabilityEdgeCases) {
  EXPECT_DOUBLE_EQ(SearchSuccessProbability(1.0, 1, 10), 1.0);
  EXPECT_DOUBLE_EQ(SearchSuccessProbability(0.0, 5, 3), 0.0);
  EXPECT_DOUBLE_EQ(SearchSuccessProbability(0.5, 1, 1), 0.5);
  // k = 0: nothing to route, always succeeds.
  EXPECT_DOUBLE_EQ(SearchSuccessProbability(0.1, 1, 0), 1.0);
}

TEST(AnalysisTest, SuccessProbabilityMonotoneInRefmax) {
  double prev = 0.0;
  for (size_t refmax = 1; refmax <= 30; ++refmax) {
    double p = SearchSuccessProbability(0.3, refmax, 10);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_GT(prev, 0.99);
}

TEST(AnalysisTest, SuccessProbabilityMonotoneDecreasingInDepth) {
  double prev = 1.0;
  for (size_t k = 1; k <= 20; ++k) {
    double p = SearchSuccessProbability(0.3, 5, k);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(AnalysisTest, GnutellaExampleReproducesPaperNumbers) {
  // Paper Sec. 4: k = 10, success > 99%, min community > 20409 peers, storage
  // exactly s_peer.
  auto result = EvaluateSizing(GnutellaExampleInput());
  ASSERT_TRUE(result.ok()) << result.status();
  const SizingResult& r = *result;
  EXPECT_EQ(r.key_length, 10u);
  EXPECT_GT(r.search_success, 0.99);
  EXPECT_NEAR(r.min_peers, 20408.16, 1.0);
  EXPECT_TRUE(r.storage_feasible);
  EXPECT_DOUBLE_EQ(r.i_peer, 1e4);
  // i_leaf + k * refmax == i_peer exactly ("due to our good initial guess").
  EXPECT_DOUBLE_EQ(r.index_entries, 1e4);
}

TEST(AnalysisTest, EvaluateSizingValidatesInput) {
  SizingInput bad = GnutellaExampleInput();
  bad.d_global = 0;
  EXPECT_FALSE(EvaluateSizing(bad).ok());
  bad = GnutellaExampleInput();
  bad.i_leaf = -1;
  EXPECT_FALSE(EvaluateSizing(bad).ok());
  bad = GnutellaExampleInput();
  bad.refmax = 0;
  EXPECT_FALSE(EvaluateSizing(bad).ok());
  bad = GnutellaExampleInput();
  bad.online_prob = 1.5;
  EXPECT_FALSE(EvaluateSizing(bad).ok());
  bad = GnutellaExampleInput();
  bad.s_peer = 0;
  EXPECT_FALSE(EvaluateSizing(bad).ok());
  bad = GnutellaExampleInput();
  bad.ref_bytes = 0;
  EXPECT_FALSE(EvaluateSizing(bad).ok());
}

TEST(AnalysisTest, InfeasibleStorageIsFlagged) {
  SizingInput in = GnutellaExampleInput();
  in.s_peer = 1000;  // can store only 100 references
  auto result = EvaluateSizing(in);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->storage_feasible);
}

// Property sweep: the closed form equals direct per-level multiplication.
class AnalysisPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, size_t, size_t>> {};

TEST_P(AnalysisPropertyTest, ClosedFormMatchesPerLevelProduct) {
  auto [p, refmax, k] = GetParam();
  double direct = 1.0;
  for (size_t level = 0; level < k; ++level) {
    double reach_next = 1.0 - std::pow(1.0 - p, static_cast<double>(refmax));
    direct *= reach_next;
  }
  EXPECT_NEAR(SearchSuccessProbability(p, refmax, k), direct, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnalysisPropertyTest,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.9),
                       ::testing::Values<size_t>(1, 2, 5, 20),
                       ::testing::Values<size_t>(1, 5, 10, 16)));

}  // namespace
}  // namespace pgrid
