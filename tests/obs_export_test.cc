#include "obs/export.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pgrid {
namespace obs {
namespace {

TEST(PrometheusNameTest, MapsDotsAndKeepsLegalChars) {
  EXPECT_EQ(PrometheusName("search.messages"), "pgrid_search_messages");
  EXPECT_EQ(PrometheusName("rpc.call_latency_us"), "pgrid_rpc_call_latency_us");
  EXPECT_EQ(PrometheusName("weird-name:x"), "pgrid_weird_name_x");
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

/// A small fixed registry both golden tests share.
RegistrySnapshot GoldenSnapshot() {
  MetricsRegistry reg;
  reg.GetCounter("search.messages")->Increment(42);
  reg.GetCounter("exchange.count")->Increment(7);
  reg.GetGauge("queue.depth")->Set(-3);
  Histogram* h = reg.GetHistogram("search.hops", {1, 2, 4});
  h->Record(1);
  h->Record(2);
  h->Record(2);
  h->Record(9);  // overflow
  return reg.Snapshot();
}

TEST(PrometheusExportTest, GoldenOutput) {
  const std::string expected =
      "# TYPE pgrid_exchange_count counter\n"
      "pgrid_exchange_count 7\n"
      "# TYPE pgrid_search_messages counter\n"
      "pgrid_search_messages 42\n"
      "# TYPE pgrid_queue_depth gauge\n"
      "pgrid_queue_depth -3\n"
      "# TYPE pgrid_search_hops histogram\n"
      "pgrid_search_hops_bucket{le=\"1\"} 1\n"
      "pgrid_search_hops_bucket{le=\"2\"} 3\n"
      "pgrid_search_hops_bucket{le=\"4\"} 3\n"
      "pgrid_search_hops_bucket{le=\"+Inf\"} 4\n"
      "pgrid_search_hops_sum 14\n"
      "pgrid_search_hops_count 4\n";
  EXPECT_EQ(ToPrometheusText(GoldenSnapshot()), expected);
}

/// Structural sanity of the Prometheus text format: every non-comment line is
/// "name[{labels}] value", every histogram's +Inf bucket equals its _count, and
/// cumulative bucket counts never decrease.
TEST(PrometheusExportTest, OutputParses) {
  const std::string text = ToPrometheusText(GoldenSnapshot());
  std::istringstream in(text);
  std::string line;
  uint64_t prev_bucket = 0;
  bool in_histogram = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      in_histogram = line.find(" histogram") != std::string::npos;
      prev_bucket = 0;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(name.empty()) << line;
    ASSERT_FALSE(value.empty()) << line;
    // The value must be an integer (possibly negative for gauges).
    size_t pos = 0;
    (void)std::stoll(value, &pos);
    EXPECT_EQ(pos, value.size()) << line;
    if (in_histogram && name.find("_bucket{") != std::string::npos) {
      const uint64_t v = std::stoull(value);
      EXPECT_GE(v, prev_bucket) << "cumulative buckets must not decrease: " << line;
      prev_bucket = v;
    }
  }
}

TEST(JsonExportTest, GoldenOutput) {
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"exchange.count\": 7,\n"
      "    \"search.messages\": 42\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"queue.depth\": -3\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"search.hops\": {\n"
      "      \"count\": 4,\n"
      "      \"sum\": 14,\n"
      "      \"min\": 1,\n"
      "      \"max\": 9,\n"
      "      \"p50\": 2,\n"
      "      \"p95\": 9,\n"
      "      \"p99\": 9,\n"
      "      \"bounds\": [1, 2, 4],\n"
      "      \"buckets\": [1, 2, 0, 1]\n"
      "    }\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(ToJson(GoldenSnapshot()), expected);
}

TEST(JsonExportTest, EmptyRegistry) {
  MetricsRegistry reg;
  EXPECT_EQ(ToJson(reg.Snapshot()),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n");
}

TEST(TraceJsonTest, EmptyAndNonEmpty) {
  EXPECT_EQ(TraceToJson({}), "[]\n");
  TraceEvent e;
  e.trace_id = 3;
  e.name = "search.hop";
  e.detail = "peer=1";
  e.ts_ns = 100;
  e.dur_ns = 0;
  e.depth = 2;
  const std::string json = TraceToJson({e});
  EXPECT_EQ(json,
            "[\n  {\"trace_id\": 3, \"span_id\": 0, \"parent_span\": 0, "
            "\"name\": \"search.hop\", \"detail\": "
            "\"peer=1\", \"ts_ns\": 100, \"dur_ns\": 0, \"depth\": 2}\n]\n");
}

TEST(TraceJsonTest, ChromeExportShapes) {
  EXPECT_EQ(TraceToChromeJson({}), "{\"traceEvents\": []}\n");
  TraceEvent span;
  span.trace_id = 7;
  span.span_id = 7;
  span.name = "node.route";
  span.ts_ns = 2000;
  span.dur_ns = 5000;
  span.is_span = true;
  TraceEvent point;
  point.trace_id = 7;
  point.parent_span = 7;
  point.name = "node.route.hop";
  point.ts_ns = 3000;
  const std::string json = TraceToChromeJson({span, point});
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 7"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace pgrid
