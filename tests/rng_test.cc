#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace pgrid {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int agree = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.UniformInt(0, 1'000'000'000) == b.UniformInt(0, 1'000'000'000)) ++agree;
  }
  EXPECT_LT(agree, 2);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(rng.UniformInt(5, 5), 5u);
}

TEST(RngTest, UniformIndexCoversDomain) {
  Rng rng(11);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformIndex(4));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 3u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(5);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BitProducesBothValues) {
  Rng rng(13);
  int ones = 0;
  for (int i = 0; i < 1000; ++i) ones += rng.Bit();
  EXPECT_GT(ones, 400);
  EXPECT_LT(ones, 600);
}

TEST(RngTest, TakeRandomRemovesElement) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::set<int> taken;
  while (!v.empty()) taken.insert(rng.TakeRandom(&v));
  EXPECT_EQ(taken, (std::set<int>{1, 2, 3, 4, 5}));
}

TEST(RngTest, SampleWithoutReplacementSizeAndDistinctness) {
  Rng rng(19);
  std::vector<int> pool{1, 2, 3, 4, 5, 6, 7, 8};
  auto sample = rng.SampleWithoutReplacement(pool, 3);
  EXPECT_EQ(sample.size(), 3u);
  std::set<int> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 3u);
  for (int x : sample) {
    EXPECT_NE(std::find(pool.begin(), pool.end(), x), pool.end());
  }
}

TEST(RngTest, SampleWithoutReplacementReturnsAllWhenKTooLarge) {
  Rng rng(23);
  std::vector<int> pool{1, 2, 3};
  auto sample = rng.SampleWithoutReplacement(pool, 10);
  std::set<int> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct, (std::set<int>{1, 2, 3}));
}

TEST(RngTest, SampleWithoutReplacementIsUnbiased) {
  // Each element of a 4-element pool should appear in a 2-sample ~half the time.
  Rng rng(29);
  std::vector<int> counts(4, 0);
  const int trials = 8000;
  for (int t = 0; t < trials; ++t) {
    auto sample = rng.SampleWithoutReplacement(std::vector<int>{0, 1, 2, 3}, 2);
    for (int x : sample) ++counts[x];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.5, 0.05);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.Fork();
  // The child stream should not mirror the parent stream.
  int agree = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.UniformInt(0, 1'000'000'000) == child.UniformInt(0, 1'000'000'000)) {
      ++agree;
    }
  }
  EXPECT_LT(agree, 2);
}

TEST(RngDeathTest, TakeRandomFromEmptyAborts) {
  Rng rng(41);
  std::vector<int> empty;
  EXPECT_DEATH({ rng.TakeRandom(&empty); }, "PGRID_CHECK failed");
}

}  // namespace
}  // namespace pgrid
