// Networked search reliability under scripted faults.
//
// Two pins on the paper's reliability story (Sec. 5.2), replayed over the real
// node + transport stack instead of the simulator:
//   1. A scripted 30%-drop scenario is a *value*: running it twice yields a
//      byte-identical metrics snapshot, and retries lift search success at
//      least to the no-retry baseline (the ISSUE's acceptance criterion).
//   2. A miniature reliability-vs-offline-fraction curve over the fault layer
//      tracks the simulator's curve within a loose statistical band, so the
//      two code paths cannot drift apart on the headline result.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/exchange.h"
#include "core/grid_builder.h"
#include "core/search.h"
#include "net/fault_transport.h"
#include "net/inproc_transport.h"
#include "net/node.h"
#include "obs/export.h"
#include "sim/meeting_scheduler.h"
#include "sim/online_model.h"

namespace pgrid {
namespace {

/// A networked community whose every message crosses one shared fault layer,
/// with nodes and transport reporting into one shared metrics registry (so a
/// single snapshot captures the whole scenario).
struct NetCommunity {
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<net::InProcTransport> inner;
  std::unique_ptr<net::FaultInjectingTransport> faults;
  std::vector<std::unique_ptr<net::PGridNode>> nodes;
};

NetCommunity BuildNetCommunity(size_t n, size_t maxl, size_t refmax,
                               size_t meetings, uint64_t seed,
                               const net::RetryConfig& retry) {
  NetCommunity c;
  c.registry = std::make_unique<obs::MetricsRegistry>();
  c.inner = std::make_unique<net::InProcTransport>();
  c.faults = std::make_unique<net::FaultInjectingTransport>(c.inner.get(), seed,
                                                            c.registry.get());
  net::NodeConfig config;
  config.maxl = maxl;
  config.refmax = refmax;
  config.recmax = 2;
  config.recursion_fanout = 2;
  config.retry = retry;
  for (size_t i = 0; i < n; ++i) {
    c.nodes.push_back(std::make_unique<net::PGridNode>(
        "node:" + std::to_string(i), c.faults.get(), config, seed * 1000 + i,
        c.registry.get()));
    EXPECT_TRUE(c.nodes.back()->Start().ok());
  }
  Rng rng(seed);
  for (size_t m = 0; m < meetings; ++m) {
    const size_t a = rng.UniformIndex(n);
    const size_t b = rng.UniformIndex(n);
    if (a != b) (void)c.nodes[a]->MeetWith(c.nodes[b]->address());
  }
  return c;
}

TEST(NetReliabilityTest, ThirtyPercentDropScenarioIsDeterministicAndRetriesHelp) {
  const size_t n = 24, maxl = 3, refmax = 3, meetings = 2500, queries = 60;

  struct Outcome {
    size_t ok = 0;
    uint64_t retries = 0;
    std::string metrics_json;
  };
  auto run = [&](size_t attempts) {
    net::RetryConfig retry;
    retry.max_attempts = attempts;
    retry.initial_backoff_ms = 1;
    retry.max_backoff_ms = 4;
    retry.sleep_between_attempts = false;  // virtual backoff only
    NetCommunity c = BuildNetCommunity(n, maxl, refmax, meetings, 42, retry);
    c.faults->DropWithProbability("*", 0.3);
    Rng rng(99);
    Outcome out;
    for (size_t q = 0; q < queries; ++q) {
      const size_t start = rng.UniformIndex(n);
      if (c.nodes[start]->RouteToResponsible(KeyPath::Random(&rng, maxl)).ok()) {
        ++out.ok;
      }
    }
    out.retries = c.registry->GetCounter("rpc.retries")->value();
    out.metrics_json = obs::ToJson(c.registry->Snapshot());
    return out;
  };

  // The scenario is fully deterministic: same seed, same community, same drop
  // pattern, byte-identical metrics snapshot.
  const Outcome first = run(/*attempts=*/4);
  const Outcome second = run(/*attempts=*/4);
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.metrics_json, second.metrics_json);

  // Retries strictly absorb drops: success with retries must be at least the
  // single-shot baseline (the acceptance criterion), and with 4 attempts vs a
  // 30% drop the per-hop failure probability is 0.3^4 < 1%, so nearly every
  // query should get through.
  const Outcome baseline = run(/*attempts=*/1);
  EXPECT_GE(first.ok, baseline.ok);
  EXPECT_GE(first.ok, queries * 9 / 10) << "retries should absorb a 30% drop";
  EXPECT_GT(first.retries, 0u);
  EXPECT_EQ(baseline.retries, 0u);
}

TEST(NetReliabilityTest, ReliabilityCurveTracksSimulator) {
  const size_t n = 48, maxl = 4, refmax = 3, meetings = 6000, queries = 120;
  const std::vector<double> fractions = {1.0, 0.7, 0.4};

  // --- the simulator's curve (miniature of bench_sr_search_reliability) ---
  std::vector<double> sim_rate;
  {
    Grid grid(n);
    Rng rng(7);
    ExchangeConfig config;
    config.maxl = maxl;
    config.refmax = refmax;
    config.recmax = 2;
    config.recursion_fanout = 2;
    ExchangeEngine exchange(&grid, config, &rng);
    MeetingScheduler scheduler(n);
    for (size_t m = 0; m < meetings; ++m) {
      Meeting meeting = scheduler.Next(&rng);
      exchange.Exchange(meeting.a, meeting.b);
    }
    for (double f : fractions) {
      Rng srng(1000 + static_cast<uint64_t>(f * 10));
      OnlineModel online(OnlineMode::kSnapshot, n, f, &srng);
      SearchEngine search(&grid, &online, &srng);
      size_t ok = 0;
      for (size_t q = 0; q < queries; ++q) {
        if (q % 30 == 0) online.Resample(&srng);
        auto start = search.RandomOnlinePeer();
        if (!start.has_value()) continue;  // nobody online counts as a failure
        if (search.Query(*start, KeyPath::Random(&srng, maxl)).found) ++ok;
      }
      sim_rate.push_back(static_cast<double>(ok) / static_cast<double>(queries));
    }
  }

  // --- the networked curve over the fault layer (outage = offline peer) ---
  std::vector<double> net_rate;
  {
    NetCommunity c = BuildNetCommunity(n, maxl, refmax, meetings, 7,
                                       net::RetryConfig{});
    for (double f : fractions) {
      Rng nrng(2000 + static_cast<uint64_t>(f * 10));
      std::vector<bool> online(n, true);
      auto resample = [&]() {
        for (size_t i = 0; i < n; ++i) {
          if (!online[i]) c.faults->ClearOutage(c.nodes[i]->address());
          online[i] = nrng.Bernoulli(f);
          if (!online[i]) c.faults->InjectOutage(c.nodes[i]->address());
        }
      };
      size_t ok = 0;
      for (size_t q = 0; q < queries; ++q) {
        if (q % 30 == 0) resample();
        // Mirror SearchEngine::RandomOnlinePeer: queries start at online peers.
        size_t start = nrng.UniformIndex(n);
        bool have_start = online[start];
        for (size_t t = 0; !have_start && t < 8 * n; ++t) {
          start = nrng.UniformIndex(n);
          have_start = online[start];
        }
        if (!have_start) continue;
        if (c.nodes[start]->RouteToResponsible(KeyPath::Random(&nrng, maxl)).ok()) {
          ++ok;
        }
      }
      for (size_t i = 0; i < n; ++i) {
        if (!online[i]) c.faults->ClearOutage(c.nodes[i]->address());
      }
      net_rate.push_back(static_cast<double>(ok) / static_cast<double>(queries));
    }
  }

  // With everyone online both stacks route essentially always; under churn the
  // networked curve must track the simulator within a loose statistical band
  // (different RNG streams, same algorithm).
  EXPECT_GE(sim_rate[0], 0.95);
  EXPECT_GE(net_rate[0], 0.95);
  for (size_t i = 0; i < fractions.size(); ++i) {
    EXPECT_NEAR(net_rate[i], sim_rate[i], 0.15)
        << "offline fraction " << (1.0 - fractions[i]) << ": sim " << sim_rate[i]
        << " vs net " << net_rate[i];
  }
  // Reliability does not improve as more peers go offline (small slack for the
  // refmax redundancy keeping both ends near the ceiling).
  EXPECT_GE(net_rate[0] + 0.05, net_rate[2]);
}

}  // namespace
}  // namespace pgrid
