#include "net/node.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "net/inproc_transport.h"
#include "net/tcp_transport.h"

namespace pgrid {
namespace net {
namespace {

KeyPath P(const char* bits) { return KeyPath::FromString(bits).value(); }

/// A small in-process cluster of nodes.
struct Cluster {
  InProcTransport transport;
  std::vector<std::unique_ptr<PGridNode>> nodes;
  Rng rng{12345};

  explicit Cluster(size_t n, NodeConfig config = {}, double loss = 0.0)
      : transport(loss, /*seed=*/99) {
    for (size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<PGridNode>("node:" + std::to_string(i),
                                                  &transport, config, 1000 + i));
      EXPECT_TRUE(nodes.back()->Start().ok());
    }
  }

  /// Random pairwise meetings, like the simulator's builder.
  void Mingle(size_t meetings) {
    for (size_t m = 0; m < meetings; ++m) {
      size_t a = rng.UniformIndex(nodes.size());
      size_t b = rng.UniformIndex(nodes.size());
      if (a == b) continue;
      (void)nodes[a]->MeetWith(nodes[b]->address());
    }
  }

  double AverageDepth() const {
    double sum = 0;
    for (const auto& n : nodes) sum += static_cast<double>(n->path().length());
    return sum / static_cast<double>(nodes.size());
  }
};

TEST(NodeTest, TwoNodesSplitTheKeySpace) {
  Cluster c(2);
  ASSERT_TRUE(c.nodes[0]->MeetWith("node:1").ok());
  KeyPath p0 = c.nodes[0]->path();
  KeyPath p1 = c.nodes[1]->path();
  ASSERT_EQ(p0.length(), 1u);
  ASSERT_EQ(p1.length(), 1u);
  EXPECT_NE(p0.bit(0), p1.bit(0));
  // Mutual references at level 1.
  EXPECT_EQ(c.nodes[0]->RefsAt(1), std::vector<std::string>{"node:1"});
  EXPECT_EQ(c.nodes[1]->RefsAt(1), std::vector<std::string>{"node:0"});
}

TEST(NodeTest, MeetWithSelfIsNoop) {
  Cluster c(1);
  EXPECT_TRUE(c.nodes[0]->MeetWith("node:0").ok());
  EXPECT_TRUE(c.nodes[0]->path().empty());
}

TEST(NodeTest, MeetWithUnreachablePeerFails) {
  Cluster c(1);
  Status s = c.nodes[0]->MeetWith("node:404");
  EXPECT_TRUE(s.IsUnavailable());
}

TEST(NodeTest, ClusterConvergesThroughRandomMeetings) {
  NodeConfig config;
  config.maxl = 4;
  config.refmax = 3;
  Cluster c(32, config);
  c.Mingle(4000);
  EXPECT_GE(c.AverageDepth(), 0.95 * 4);
  // Reference prefix property: every referenced node diverges at exactly the
  // reference level.
  for (const auto& node : c.nodes) {
    KeyPath path = node->path();
    for (size_t level = 1; level <= path.length(); ++level) {
      for (const std::string& addr : node->RefsAt(level)) {
        // Find the referenced node.
        const PGridNode* target = nullptr;
        for (const auto& other : c.nodes) {
          if (other->address() == addr) target = other.get();
        }
        ASSERT_NE(target, nullptr);
        KeyPath tpath = target->path();
        ASSERT_GE(tpath.length(), level);
        EXPECT_GE(path.CommonPrefixLength(tpath), level - 1);
        EXPECT_NE(tpath.bit(level - 1), path.bit(level - 1));
      }
    }
  }
}

TEST(NodeTest, SearchFindsPublishedItemFromEveryNode) {
  NodeConfig config;
  config.maxl = 4;
  config.refmax = 4;
  Cluster c(32, config);
  c.Mingle(4000);

  DataItem item;
  item.id = 7;
  item.key = P("01100110");
  item.payload = "the-file";
  item.version = 1;
  ASSERT_TRUE(c.nodes[5]->Publish(item).ok());

  size_t found = 0;
  for (const auto& node : c.nodes) {
    auto r = node->Search(item.key);
    if (!r.ok()) continue;
    for (const WireEntry& e : *r) {
      if (e.item_id == 7 && e.holder == "node:5") {
        ++found;
        break;
      }
    }
  }
  EXPECT_EQ(found, c.nodes.size());
}

TEST(NodeTest, PublishInstallsAtResponsiblePeerOnly) {
  NodeConfig config;
  config.maxl = 3;
  Cluster c(16, config);
  c.Mingle(2000);
  DataItem item;
  item.id = 9;
  item.key = P("111111");
  item.version = 1;
  ASSERT_TRUE(c.nodes[0]->Publish(item).ok());
  // Whoever indexes the entry must be responsible for its key.
  size_t holders = 0;
  for (const auto& node : c.nodes) {
    for (const WireEntry& e : node->entries()) {
      if (e.item_id == 9) {
        ++holders;
        EXPECT_TRUE(PathsOverlap(node->path(), item.key))
            << node->address() << " path " << node->path();
      }
    }
  }
  EXPECT_GE(holders, 1u);
}

TEST(NodeTest, RepeatedMeetingsCreateBuddiesAndSyncEntries) {
  NodeConfig config;
  config.maxl = 1;  // tiny space: replicas guaranteed
  Cluster c(4, config);
  c.Mingle(200);
  // With maxl = 1 and 4 nodes there must exist same-path pairs, and meetings
  // between them record buddies.
  size_t with_buddies = 0;
  for (const auto& node : c.nodes) {
    for (const std::string& buddy : node->buddies()) {
      ++with_buddies;
      for (const auto& other : c.nodes) {
        if (other->address() == buddy) {
          EXPECT_EQ(other->path(), node->path());
        }
      }
    }
  }
  EXPECT_GT(with_buddies, 0u);
}

TEST(NodeTest, BuddyPublishFanout) {
  NodeConfig config;
  config.maxl = 1;
  Cluster c(6, config);
  c.Mingle(400);
  DataItem item;
  item.id = 11;
  item.key = P("0110");
  item.version = 1;
  ASSERT_TRUE(c.nodes[0]->Publish(item).ok());
  // Every replica that is a buddy of the installing peer should have the entry.
  size_t holders = 0;
  for (const auto& node : c.nodes) {
    for (const WireEntry& e : node->entries()) {
      if (e.item_id == 11) ++holders;
    }
  }
  EXPECT_GE(holders, 2u);  // responsible peer + at least one buddy
}

TEST(NodeTest, EntriesMigrateOnSplitAndNothingIsLost) {
  NodeConfig config;
  config.maxl = 3;
  Cluster c(8, config);
  // Publish before any meetings: entries sit at node 0 (responsible for
  // everything while its path is empty).
  for (uint64_t i = 1; i <= 8; ++i) {
    DataItem item;
    item.id = i;
    item.key = KeyPath::FromUint64(i - 1, 3).Concat(P("101"));
    item.version = 1;
    ASSERT_TRUE(c.nodes[0]->Publish(item).ok());
  }
  c.Mingle(1500);
  // Every entry must still exist somewhere (index or foreign buffer).
  std::set<uint64_t> alive;
  for (const auto& node : c.nodes) {
    for (const WireEntry& e : node->entries()) alive.insert(e.item_id);
    for (const WireEntry& e : node->foreign_entries()) alive.insert(e.item_id);
  }
  EXPECT_EQ(alive.size(), 8u);
  // And every indexed copy must respect responsibility.
  for (const auto& node : c.nodes) {
    for (const WireEntry& e : node->entries()) {
      EXPECT_TRUE(PathsOverlap(node->path(), e.key));
    }
  }
}

TEST(NodeTest, SearchSurvivesMessageLoss) {
  // The whole lifecycle runs over a transport that drops 20% of all calls:
  // construction is slower but still converges, and searches succeed thanks to
  // reference redundancy and depth-first backtracking.
  NodeConfig config;
  config.maxl = 3;
  config.refmax = 4;
  Cluster c(24, config, /*loss=*/0.2);
  c.Mingle(6000);
  EXPECT_GE(c.AverageDepth(), 2.0);
  DataItem item;
  item.id = 21;
  item.key = P("010101");
  item.version = 1;
  Status published = Status::Unavailable("not yet");
  for (int attempt = 0; attempt < 20 && !published.ok(); ++attempt) {
    published = c.nodes[1]->Publish(item);
  }
  ASSERT_TRUE(published.ok()) << published;
  size_t ok = 0;
  const size_t trials = 50;
  for (size_t t = 0; t < trials; ++t) {
    auto r = c.nodes[t % c.nodes.size()]->Search(item.key);
    if (r.ok()) ++ok;
  }
  EXPECT_GT(ok, trials / 2);
}

TEST(NodeTest, OutageOfResponsibleRegionFailsSearchGracefully) {
  NodeConfig config;
  config.maxl = 2;
  config.refmax = 2;
  Cluster c(8, config);
  c.Mingle(800);
  DataItem item;
  item.id = 31;
  item.key = P("1111");
  item.version = 1;
  ASSERT_TRUE(c.nodes[0]->Publish(item).ok());
  // Take down every node responsible for the key's region.
  std::string searcher;
  for (const auto& node : c.nodes) {
    if (PathsOverlap(node->path(), item.key)) {
      c.transport.InjectOutage(node->address());
    } else if (searcher.empty()) {
      searcher = node->address();
    }
  }
  ASSERT_FALSE(searcher.empty());
  for (const auto& node : c.nodes) {
    if (node->address() == searcher) {
      auto r = node->Search(item.key);
      EXPECT_FALSE(r.ok());  // graceful NotFound, not a hang or crash
    }
  }
}

TEST(NodeTest, StatsCountActivity) {
  Cluster c(4);
  c.Mingle(100);
  uint64_t initiated = 0, served = 0;
  for (const auto& node : c.nodes) {
    NodeStats s = node->stats();
    initiated += s.exchanges_initiated;
    served += s.exchanges_served;
  }
  EXPECT_GT(initiated, 0u);
  EXPECT_GT(served, 0u);
}

TEST(NodeTcpTest, ClusterOverRealSockets) {
  TcpTransport transport;
  transport.set_timeout_ms(2000);
  NodeConfig config;
  config.maxl = 3;
  config.refmax = 3;

  // Create nodes on ephemeral ports: serve an echo first to learn the port is not
  // possible (the node must serve its own handler), so bind via ServeAnyPort with
  // the node handler through a two-phase construction: pick addresses first.
  std::vector<std::unique_ptr<PGridNode>> nodes;
  std::vector<std::string> addresses;
  for (int i = 0; i < 8; ++i) {
    // Reserve a concrete port by asking the OS, then hand it to the node.
    auto probe = transport.ServeAnyPort(
        "127.0.0.1", [](const std::string&, const std::string&) { return ""; });
    ASSERT_TRUE(probe.ok());
    transport.StopServing(*probe);
    auto node = std::make_unique<PGridNode>(*probe, &transport, config, 7000 + i);
    ASSERT_TRUE(node->Start().ok());
    addresses.push_back(*probe);
    nodes.push_back(std::move(node));
  }

  Rng rng(555);
  for (int m = 0; m < 600; ++m) {
    size_t a = rng.UniformIndex(nodes.size());
    size_t b = rng.UniformIndex(nodes.size());
    if (a == b) continue;
    (void)nodes[a]->MeetWith(addresses[b]);
  }
  double avg = 0;
  for (const auto& n : nodes) avg += static_cast<double>(n->path().length());
  avg /= static_cast<double>(nodes.size());
  EXPECT_GE(avg, 2.0);

  DataItem item;
  item.id = 99;
  item.key = P("101010");
  item.version = 1;
  ASSERT_TRUE(nodes[0]->Publish(item).ok());
  size_t found = 0;
  for (const auto& n : nodes) {
    auto r = n->Search(item.key);
    if (r.ok()) {
      for (const WireEntry& e : *r) {
        if (e.item_id == 99) ++found;
      }
    }
  }
  EXPECT_GE(found, nodes.size() / 2);
  for (auto& n : nodes) n->Stop();
}

}  // namespace
}  // namespace net
}  // namespace pgrid
