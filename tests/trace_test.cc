#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pgrid {
namespace obs {
namespace {

TEST(TraceRecorderTest, SpanLifecycle) {
  TraceRecorder rec;
  uint64_t id = rec.BeginTrace("search.query");
  ASSERT_NE(id, 0u);
  rec.Event(id, "search.hop", "peer=3", /*depth=*/1);
  rec.EndTrace(id);

  std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, id);
  EXPECT_EQ(events[0].name, "search.query");
  EXPECT_GT(events[0].dur_ns, 0u);  // filled by EndTrace
  EXPECT_EQ(events[1].name, "search.hop");
  EXPECT_EQ(events[1].detail, "peer=3");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[1].dur_ns, 0u);  // point event
  EXPECT_GE(events[1].ts_ns, events[0].ts_ns);
}

TEST(TraceRecorderTest, DistinctTraceIds) {
  TraceRecorder rec;
  uint64_t a = rec.BeginTrace("a");
  uint64_t b = rec.BeginTrace("b");
  EXPECT_NE(a, b);
  rec.EndTrace(a);
  rec.EndTrace(b);
}

TEST(TraceRecorderTest, CapacityBoundsBufferAndCountsDropped) {
  TraceRecorder rec(/*capacity=*/4);
  uint64_t id = rec.BeginTrace("op");
  for (int i = 0; i < 10; ++i) rec.Event(id, "e");
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 7u);  // 1 begin + 10 events - 4 kept
  rec.EndTrace(id);              // ignored gracefully even at capacity
}

TEST(TraceRecorderTest, EndOfUnknownTraceIsIgnored) {
  TraceRecorder rec;
  rec.EndTrace(12345);
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceRecorderTest, ClearResetsBuffer) {
  TraceRecorder rec;
  uint64_t id = rec.BeginTrace("op");
  rec.EndTrace(id);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorderTest, ToJsonContainsEventFields) {
  TraceRecorder rec;
  uint64_t id = rec.BeginTrace("update.propagate");
  rec.Event(id, "update.reached", "replicas=5");
  rec.EndTrace(id);
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"update.propagate\""), std::string::npos);
  EXPECT_NE(json.find("\"replicas=5\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
  EXPECT_NE(json.find("\"dur_ns\""), std::string::npos);
}

TEST(TraceSpanTest, RecordsBeginAndEnd) {
  TraceRecorder rec;
  {
    TraceSpan span(&rec, "exchange");
    span.Event("exchange.recurse", "a=1 b=2", /*depth=*/1);
  }
  std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "exchange");
  EXPECT_GT(events[0].dur_ns, 0u);
  EXPECT_EQ(events[1].trace_id, events[0].trace_id);
}

TEST(TraceSpanTest, NullRecorderIsNoop) {
  TraceSpan span(nullptr, "anything");
  span.Event("e", "detail");
  EXPECT_EQ(span.id(), 0u);
  // Destruction must not crash either.
}

}  // namespace
}  // namespace obs
}  // namespace pgrid
