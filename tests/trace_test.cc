#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace pgrid {
namespace obs {
namespace {

TEST(TraceRecorderTest, SpanLifecycle) {
  TraceRecorder rec;
  uint64_t id = rec.BeginTrace("search.query");
  ASSERT_NE(id, 0u);
  rec.Event(id, "search.hop", "peer=3", /*depth=*/1);
  rec.EndTrace(id);

  std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, id);
  EXPECT_EQ(events[0].name, "search.query");
  EXPECT_GT(events[0].dur_ns, 0u);  // filled by EndTrace
  EXPECT_EQ(events[1].name, "search.hop");
  EXPECT_EQ(events[1].detail, "peer=3");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[1].dur_ns, 0u);  // point event
  EXPECT_GE(events[1].ts_ns, events[0].ts_ns);
}

TEST(TraceRecorderTest, DistinctTraceIds) {
  TraceRecorder rec;
  uint64_t a = rec.BeginTrace("a");
  uint64_t b = rec.BeginTrace("b");
  EXPECT_NE(a, b);
  rec.EndTrace(a);
  rec.EndTrace(b);
}

TEST(TraceRecorderTest, CapacityBoundsBufferAndCountsDropped) {
  TraceRecorder rec(/*capacity=*/4);
  uint64_t id = rec.BeginTrace("op");
  for (int i = 0; i < 10; ++i) rec.Event(id, "e");
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 7u);  // 1 begin + 10 events - 4 kept
  rec.EndTrace(id);              // ignored gracefully even at capacity
}

TEST(TraceRecorderTest, EndOfUnknownTraceIsIgnored) {
  TraceRecorder rec;
  rec.EndTrace(12345);
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceRecorderTest, ClearResetsBuffer) {
  TraceRecorder rec;
  uint64_t id = rec.BeginTrace("op");
  rec.EndTrace(id);
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorderTest, ToJsonContainsEventFields) {
  TraceRecorder rec;
  uint64_t id = rec.BeginTrace("update.propagate");
  rec.Event(id, "update.reached", "replicas=5");
  rec.EndTrace(id);
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"update.propagate\""), std::string::npos);
  EXPECT_NE(json.find("\"replicas=5\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
  EXPECT_NE(json.find("\"dur_ns\""), std::string::npos);
}

TEST(TraceSpanTest, RecordsBeginAndEnd) {
  TraceRecorder rec;
  {
    TraceSpan span(&rec, "exchange");
    span.Event("exchange.recurse", "a=1 b=2", /*depth=*/1);
  }
  std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "exchange");
  EXPECT_GT(events[0].dur_ns, 0u);
  EXPECT_EQ(events[1].trace_id, events[0].trace_id);
}

TEST(TraceSpanTest, NullRecorderIsNoop) {
  TraceSpan span(nullptr, "anything");
  span.Event("e", "detail");
  EXPECT_EQ(span.id(), 0u);
  // Destruction must not crash either.
}

TEST(TraceRecorderTest, ChildSpansCarryTraceIdParentAndDepth) {
  TraceRecorder rec;
  const uint64_t root = rec.BeginTrace("node.route");
  const TraceContext ctx{root, root, 0};
  const uint64_t hop = rec.BeginSpan(ctx, "node.rpc.query", "to=node:3");
  const TraceContext hop_ctx{root, hop, 1};
  const uint64_t serve = rec.BeginSpan(hop_ctx, "node.serve.query");
  rec.EndSpan(serve);
  rec.EndSpan(hop);
  rec.EndTrace(root);

  std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].span_id, root);
  EXPECT_EQ(events[0].trace_id, root);  // root span id doubles as trace id
  EXPECT_EQ(events[0].parent_span, 0u);
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].span_id, hop);
  EXPECT_EQ(events[1].trace_id, root);
  EXPECT_EQ(events[1].parent_span, root);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[1].detail, "to=node:3");
  EXPECT_EQ(events[2].trace_id, root);
  EXPECT_EQ(events[2].parent_span, hop);
  EXPECT_EQ(events[2].depth, 2u);
  for (const TraceEvent& e : events) EXPECT_GT(e.dur_ns, 0u);
}

TEST(TraceRecorderTest, SaltSeparatesIdSpacesOfTwoRecorders) {
  // One recorder per process; salted ids must not collide when two processes'
  // dumps are merged into one distributed trace.
  TraceRecorder a;
  TraceRecorder b;
  a.set_id_salt(0x1111);
  b.set_id_salt(0x2222);
  std::set<uint64_t> ids;
  for (int i = 0; i < 64; ++i) {
    ids.insert(a.BeginTrace("a"));
    ids.insert(b.BeginTrace("b"));
  }
  EXPECT_EQ(ids.size(), 128u);  // fully disjoint
  // Unsalted recorders hand out small sequential ids (golden tests rely on it).
  TraceRecorder plain;
  EXPECT_EQ(plain.BeginTrace("x"), 1u);
  EXPECT_EQ(plain.BeginTrace("y"), 2u);
}

TEST(TraceRecorderTest, ConcurrentRecordingAccountsEveryEventExactly) {
  // N threads hammer one recorder past its capacity. Whatever interleaving
  // happens, nothing may be double-counted or lost: kept + dropped must equal
  // the number of submitted events exactly, and the buffer must respect the
  // cap. (EndSpan edits the begin event in place, so only BeginTrace and Event
  // submissions count.)
  constexpr size_t kThreads = 8;
  constexpr size_t kSpansPerThread = 400;   // 2 submissions per span
  constexpr size_t kCapacity = 1500;        // < 8 * 400 * 2 = 6400
  TraceRecorder rec(kCapacity);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, t]() {
      for (size_t i = 0; i < kSpansPerThread; ++i) {
        const uint64_t id = rec.BeginTrace("op");
        rec.Event(id, "point", "thread=" + std::to_string(t));
        rec.EndSpan(id);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const uint64_t submitted = kThreads * kSpansPerThread * 2;
  EXPECT_EQ(rec.size(), kCapacity);
  EXPECT_EQ(rec.dropped(), submitted - kCapacity);
  // Span ids stayed unique across threads.
  std::set<uint64_t> span_ids;
  size_t spans = 0;
  for (const TraceEvent& e : rec.events()) {
    if (!e.is_span) continue;
    ++spans;
    span_ids.insert(e.span_id);
  }
  EXPECT_EQ(span_ids.size(), spans);
}

TEST(TraceRecorderTest, EndSpanStaysFastWithManyOpenSpans) {
  // Regression guard for the open-span index: EndSpan used to scan the whole
  // buffer backwards for the begin event, turning a close into O(open spans)
  // and this workload -- open 2^17 spans, then close them oldest-first, the
  // scan's worst case -- into minutes. With the index it is two hash-map
  // operations per close; the bound below is ~100x slack for slow CI and
  // sanitizer builds while still catching any return to linear scanning.
  constexpr size_t kSpans = 1 << 17;
  TraceRecorder rec(/*capacity=*/kSpans + 16);
  std::vector<uint64_t> ids;
  ids.reserve(kSpans);
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kSpans; ++i) ids.push_back(rec.BeginTrace("op"));
  for (size_t i = 0; i < kSpans; ++i) rec.EndSpan(ids[i]);  // FIFO: worst case
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(secs, 5.0) << "EndSpan appears to be linear in open spans again";
  EXPECT_EQ(rec.size(), kSpans);
  for (const TraceEvent& e : rec.events()) EXPECT_GT(e.dur_ns, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace pgrid
