// Determinism and ledger-exactness of the parallel query workload runner.
//
// Searches are read-only, so the interesting property is the accounting
// (core/parallel_workload.h): found/message totals must be a pure function of
// (grid state, seed) -- never of the thread count -- and every counter the serial
// path keeps exact must stay exact: the grid ledger's kQuery count, the mirrored
// "search.messages" metrics counter, and the per-peer query_load sums.

#include "core/parallel_workload.h"

#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "sim/online_model.h"
#include "test_util.h"

namespace pgrid {
namespace {

using testing_util::Build;
using testing_util::BuiltGrid;

ParallelQueryOptions Options(size_t threads, uint64_t num_queries,
                             uint64_t seed = 31) {
  ParallelQueryOptions options;
  options.threads = threads;
  options.num_queries = num_queries;
  options.key_length = 8;
  options.seed = seed;
  return options;
}

TEST(ParallelWorkloadTest, RunsAllQueriesAndFindsMost) {
  BuiltGrid built = Build(400, /*maxl=*/5, /*refmax=*/4, /*recmax=*/2, /*seed=*/3);
  ParallelQueryReport report =
      RunParallelQueries(built.grid.get(), nullptr, Options(2, 2000));
  EXPECT_EQ(report.queries, 2000u);
  EXPECT_GT(report.found, 0u);
  EXPECT_GT(report.messages, 0u);
  // Fully online, converged grid: the overwhelming majority of lookups succeed.
  EXPECT_GT(report.found, report.queries * 9 / 10);
}

TEST(ParallelWorkloadTest, ThreadCountDoesNotChangeTheOutcome) {
  // Three identically built grids, queried at 1, 2, and 8 threads with the same
  // seed: found/message totals must agree exactly.
  ParallelQueryReport reports[3];
  const size_t threads[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    BuiltGrid built = Build(400, 5, 4, 2, /*seed=*/17);
    reports[i] =
        RunParallelQueries(built.grid.get(), nullptr, Options(threads[i], 3000));
  }
  EXPECT_EQ(reports[0].queries, reports[1].queries);
  EXPECT_EQ(reports[0].found, reports[1].found);
  EXPECT_EQ(reports[0].found, reports[2].found);
  EXPECT_EQ(reports[0].messages, reports[1].messages);
  EXPECT_EQ(reports[0].messages, reports[2].messages);
}

TEST(ParallelWorkloadTest, GridLedgerAndMetricsStayExact) {
  BuiltGrid built = Build(400, 5, 4, 2, /*seed=*/23);
  const uint64_t queries_before =
      built.grid->stats().count(MessageType::kQuery);
  const std::vector<uint64_t> load_before = built.grid->query_load();
  const uint64_t load_sum_before =
      std::accumulate(load_before.begin(), load_before.end(), uint64_t{0});

  ParallelQueryReport report =
      RunParallelQueries(built.grid.get(), nullptr, Options(4, 2500));

  // Chunk shards merged into the grid ledger...
  EXPECT_EQ(built.grid->stats().count(MessageType::kQuery) - queries_before,
            report.messages);
  // ...the mirrored metrics counter agrees with the ledger (PR 1 invariant)...
  EXPECT_EQ(built.grid->metrics().GetCounter("search.messages")->value(),
            built.grid->stats().count(MessageType::kQuery));
  // ...and every served message incremented exactly one per-peer load counter.
  const std::vector<uint64_t> load_after = built.grid->query_load();
  const uint64_t load_sum_after =
      std::accumulate(load_after.begin(), load_after.end(), uint64_t{0});
  EXPECT_EQ(load_sum_after - load_sum_before, report.messages);
}

TEST(ParallelWorkloadTest, SeedChangesTheWorkload) {
  BuiltGrid built = Build(300, 5, 4, 2, /*seed=*/29);
  ParallelQueryReport a =
      RunParallelQueries(built.grid.get(), nullptr, Options(2, 2000, /*seed=*/1));
  ParallelQueryReport b =
      RunParallelQueries(built.grid.get(), nullptr, Options(2, 2000, /*seed=*/2));
  // Different seeds draw different keys and entry points; message totals over
  // thousands of routed queries collide with negligible probability.
  EXPECT_NE(a.messages, b.messages);
}

TEST(ParallelWorkloadTest, ThreadCountInvariantUnderAnOnlineModel) {
  // kSnapshot freezes per-peer availability at construction, so IsOnline is a
  // read-only table lookup -- safe and deterministic from any thread.
  ParallelQueryReport reports[2];
  const size_t threads[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    BuiltGrid built = Build(400, 5, 4, 2, /*seed=*/41);
    Rng model_rng(99);
    OnlineModel online(OnlineMode::kSnapshot, built.grid->size(), /*p=*/0.7,
                       &model_rng);
    reports[i] =
        RunParallelQueries(built.grid.get(), &online, Options(threads[i], 2000));
  }
  EXPECT_EQ(reports[0].found, reports[1].found);
  EXPECT_EQ(reports[0].messages, reports[1].messages);
  // With 30% of peers offline some lookups fail, but not all.
  EXPECT_GT(reports[0].found, 0u);
  EXPECT_LT(reports[0].found, reports[0].queries);
}

TEST(ParallelWorkloadTest, ZeroQueriesIsANoOp) {
  BuiltGrid built = Build(200, 4, 4, 2, /*seed=*/2);
  const uint64_t before = built.grid->stats().count(MessageType::kQuery);
  ParallelQueryReport report =
      RunParallelQueries(built.grid.get(), nullptr, Options(4, 0));
  EXPECT_EQ(report.queries, 0u);
  EXPECT_EQ(report.found, 0u);
  EXPECT_EQ(report.messages, 0u);
  EXPECT_EQ(built.grid->stats().count(MessageType::kQuery), before);
}

}  // namespace
}  // namespace pgrid
