#include "core/churn.h"

#include <gtest/gtest.h>

#include "core/search.h"
#include "core/stats.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/key_generator.h"

namespace pgrid {
namespace {

struct ChurnFixture {
  Grid grid{128};
  Rng rng{5};
  ExchangeConfig config;
  OnlineModel online{OnlineMode::kAlwaysOn, 128, 1.0, nullptr};
  std::unique_ptr<ExchangeEngine> exchange;
  MeetingScheduler scheduler{128};
  std::unique_ptr<ChurnDriver> driver;

  explicit ChurnFixture(bool prune = false) : online(OnlineModel::AlwaysOn(128)) {
    config.maxl = 4;
    config.refmax = 3;
    config.recmax = 2;
    config.recursion_fanout = 2;
    config.prune_unreachable_refs = prune;
    exchange = std::make_unique<ExchangeEngine>(&grid, config, &rng, &online);
    driver = std::make_unique<ChurnDriver>(&grid, exchange.get(), &scheduler,
                                           &online, &rng);
    // Converge before churning.
    GridBuilder builder(&grid, exchange.get(), &scheduler, &rng);
    builder.BuildToFractionOfMaxDepth(0.99, 1'000'000);
  }
};

TEST(ChurnTest, CrashesReduceLivePopulation) {
  ChurnFixture f;
  ChurnConfig cfg;
  cfg.crash_fraction = 0.1;
  cfg.join_fraction = 0.0;
  cfg.meetings_per_round = 0;
  ChurnRound round = f.driver->Round(cfg);
  EXPECT_EQ(round.crashed, 12u);
  EXPECT_EQ(round.live, 128u - 12u);
  EXPECT_EQ(f.driver->live_count(), 116u);
  // Crashed peers are unreachable.
  size_t dead_online = 0;
  for (PeerId p = 0; p < f.grid.size(); ++p) {
    if (f.driver->IsDead(p) && f.online.IsOnline(p, &f.rng)) ++dead_online;
  }
  EXPECT_EQ(dead_online, 0u);
}

TEST(ChurnTest, JoinsGrowGridAndIntegrate) {
  ChurnFixture f;
  ChurnConfig cfg;
  cfg.crash_fraction = 0.0;
  cfg.join_fraction = 0.25;
  cfg.meetings_per_round = 8000;
  ChurnRound round = f.driver->Round(cfg);
  EXPECT_EQ(round.joined, 32u);
  EXPECT_EQ(f.grid.size(), 160u);
  // Joiners acquired non-trivial paths through the round's meetings.
  double joiner_depth = 0;
  for (PeerId p = 128; p < 160; ++p) {
    joiner_depth += static_cast<double>(f.grid.peer(p).depth());
  }
  EXPECT_GT(joiner_depth / 32.0, 2.0);
  Status s = GridStats::CheckInvariants(f.grid, f.config);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(ChurnTest, GracefulLeaveHandsOverEntries) {
  ChurnFixture f;
  // Seed every peer's region with data.
  KeyGenerator gen(KeyGenerator::Mode::kUniform, 8);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(300, f.grid.size(), gen, &f.rng, &holders);
  SeedGridPerfectly(&f.grid, corpus, holders);

  ChurnConfig cfg;
  cfg.crash_fraction = 0.0;
  cfg.leave_fraction = 0.2;
  cfg.join_fraction = 0.0;
  cfg.meetings_per_round = 0;
  ChurnRound round = f.driver->Round(cfg);
  EXPECT_GT(round.left_gracefully, 0u);
  EXPECT_GT(round.handover_entries, 0u);
  // Every item is still indexed by at least one live peer (perfect seeding plus
  // handover means graceful departures lose nothing).
  for (const DataItem& item : corpus) {
    bool alive = false;
    for (PeerId p = 0; p < f.grid.size() && !alive; ++p) {
      if (f.driver->IsDead(p)) continue;
      if (f.grid.peer(p).index().LatestVersionOf(item.id) > 0) alive = true;
      for (const IndexEntry& e : f.grid.peer(p).foreign_entries()) {
        if (e.item_id == item.id) alive = true;
      }
    }
    EXPECT_TRUE(alive) << "item " << item.id << " lost";
  }
}

TEST(ChurnTest, LivePeerHelpersAreConsistent) {
  ChurnFixture f;
  ChurnConfig cfg;
  cfg.crash_fraction = 0.3;
  cfg.meetings_per_round = 0;
  cfg.join_fraction = 0.0;
  f.driver->Round(cfg);
  auto live = f.driver->LivePeers();
  EXPECT_EQ(live.size(), f.driver->live_count());
  for (PeerId p : live) EXPECT_FALSE(f.driver->IsDead(p));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(f.driver->IsDead(f.driver->RandomLivePeer()));
  }
}

TEST(ChurnTest, SearchReliabilityRecoversWithRepair) {
  // After heavy crashes + joins, continued exchanges with reference pruning must
  // restore search success above the no-repair variant.
  auto run = [](bool prune) {
    ChurnFixture f(prune);
    ChurnConfig heavy;
    heavy.crash_fraction = 0.30;
    heavy.join_fraction = 0.30;
    heavy.meetings_per_round = prune ? 6000 : 6000;
    for (int round = 0; round < 4; ++round) f.driver->Round(heavy);

    SearchEngine search(&f.grid, &f.online, &f.rng);
    size_t ok = 0;
    const size_t trials = 400;
    for (size_t t = 0; t < trials; ++t) {
      PeerId start = f.driver->RandomLivePeer();
      if (search.Query(start, KeyPath::Random(&f.rng, 4)).found) ++ok;
    }
    return static_cast<double>(ok) / static_cast<double>(trials);
  };
  const double with_repair = run(true);
  EXPECT_GT(with_repair, 0.9);
  // The no-repair variant may coincidentally do well on tiny grids; only assert
  // that repair achieves high reliability and does not hurt.
  EXPECT_GE(with_repair + 0.05, run(false));
}

TEST(ChurnConfigTest, ValidateBoundsAllFractions) {
  ChurnConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.join_fraction = 1.0;  // doubling per round is the allowed extreme
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.join_fraction = 1.01;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.join_fraction = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = ChurnConfig{};
  cfg.crash_fraction = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = ChurnConfig{};
  cfg.leave_fraction = -1e-9;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ChurnTest, GracefulDepartHandsEntriesToLiveBuddyFirst) {
  ChurnFixture f;
  // Find a leaver with at least one buddy.
  PeerId leaver = kInvalidPeer;
  for (PeerId p = 0; p < f.grid.size(); ++p) {
    if (!f.grid.peer(p).buddies().empty()) {
      leaver = p;
      break;
    }
  }
  ASSERT_NE(leaver, kInvalidPeer) << "converged grid should have replicas";
  const PeerId buddy = f.grid.peer(leaver).buddies().front();

  // Plant a fresh entry only the leaver knows about.
  IndexEntry planted;
  planted.holder = leaver;
  planted.item_id = 987654;
  planted.key = f.grid.peer(leaver).path();
  planted.version = 3;
  ASSERT_TRUE(f.grid.peer(leaver).index().InsertOrRefresh(planted));

  const uint64_t handed = f.driver->Depart(leaver, /*graceful=*/true);
  EXPECT_GT(handed, 0u);
  EXPECT_TRUE(f.driver->IsDead(leaver));
  // The first live buddy inherited the entry at full version.
  const IndexEntry* got = f.grid.peer(buddy).index().Find(leaver, 987654);
  ASSERT_NE(got, nullptr) << "buddy must be preferred as heir";
  EXPECT_EQ(got->version, 3u);
}

TEST(ChurnTest, GracefulDepartFallsBackToCoResponsiblePeer) {
  ChurnFixture f;
  // Pick a leaver whose path has a replica that is NOT in its buddy list, then
  // kill every buddy so the fallback path must run.
  PeerId leaver = kInvalidPeer;
  PeerId outsider = kInvalidPeer;
  for (PeerId p = 0; p < f.grid.size() && leaver == kInvalidPeer; ++p) {
    const PeerState& ps = f.grid.peer(p);
    for (PeerId r : GridStats::ReplicasOf(f.grid, ps.path())) {
      if (r == p) continue;
      bool is_buddy = false;
      for (PeerId b : ps.buddies()) is_buddy |= (b == r);
      if (!is_buddy) {
        leaver = p;
        outsider = r;
        break;
      }
    }
  }
  if (leaver == kInvalidPeer) GTEST_SKIP() << "all replica groups are cliques";

  for (PeerId b : f.grid.peer(leaver).buddies()) {
    if (!f.driver->IsDead(b)) f.driver->Depart(b, /*graceful=*/false);
  }
  if (f.driver->IsDead(outsider)) GTEST_SKIP() << "outsider was a buddy's buddy";

  IndexEntry planted;
  planted.holder = leaver;
  planted.item_id = 424242;
  planted.key = f.grid.peer(leaver).path();
  planted.version = 1;
  ASSERT_TRUE(f.grid.peer(leaver).index().InsertOrRefresh(planted));

  const uint64_t handed = f.driver->Depart(leaver, /*graceful=*/true);
  EXPECT_GT(handed, 0u);
  // Some live same-path peer (not necessarily `outsider`: ReplicasOf order
  // decides) inherited the planted entry.
  bool inherited = false;
  for (PeerId r : GridStats::ReplicasOf(f.grid, f.grid.peer(leaver).path())) {
    if (r == leaver || f.driver->IsDead(r)) continue;
    if (f.grid.peer(r).index().Find(leaver, 424242) != nullptr) inherited = true;
  }
  EXPECT_TRUE(inherited) << "entry lost on graceful departure";
}

TEST(ChurnTest, CrashDepartHandsOverNothing) {
  ChurnFixture f;
  PeerId victim = 0;
  IndexEntry planted;
  planted.holder = victim;
  planted.item_id = 5555;
  planted.key = f.grid.peer(victim).path();
  planted.version = 9;
  f.grid.peer(victim).index().InsertOrRefresh(planted);
  EXPECT_EQ(f.driver->Depart(victim, /*graceful=*/false), 0u);
  EXPECT_TRUE(f.driver->IsDead(victim));
  // No live peer inherited the crashed peer's private entry.
  for (PeerId p = 0; p < f.grid.size(); ++p) {
    if (p == victim || f.driver->IsDead(p)) continue;
    EXPECT_EQ(f.grid.peer(p).index().Find(victim, 5555), nullptr);
  }
}

}  // namespace
}  // namespace pgrid
