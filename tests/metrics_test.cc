#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pgrid {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram h({1, 10, 100});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Quantile(0.99), 0u);
}

TEST(HistogramTest, SingleSampleQuantilesAreExact) {
  Histogram h({1, 10, 100});
  h.Record(7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 7u);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 7u);
  // The bucket bound is 10, but clamping to [min, max] makes one sample exact.
  EXPECT_EQ(h.Quantile(0.0), 7u);
  EXPECT_EQ(h.Quantile(0.5), 7u);
  EXPECT_EQ(h.Quantile(1.0), 7u);
}

TEST(HistogramTest, AllSamplesInOverflowBucket) {
  Histogram h({1, 10});
  h.Record(500);
  h.Record(900);
  // Both beyond the last bound: the overflow bucket holds them, and quantiles
  // clamp to the observed max instead of reporting a meaningless bound.
  std::vector<uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(h.Quantile(0.5), 900u);
  EXPECT_EQ(h.Quantile(0.99), 900u);
  EXPECT_EQ(h.min(), 500u);
  EXPECT_EQ(h.max(), 900u);
}

TEST(HistogramTest, BucketAssignmentIsInclusiveUpperBound) {
  Histogram h({1, 2, 4});
  h.Record(0);  // -> bucket 0 (le 1)
  h.Record(1);  // -> bucket 0 (le 1)
  h.Record(2);  // -> bucket 1 (le 2)
  h.Record(3);  // -> bucket 2 (le 4)
  h.Record(4);  // -> bucket 2 (le 4)
  h.Record(5);  // -> overflow
  std::vector<uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(HistogramTest, MedianOfUniformSamples) {
  Histogram h({10, 20, 30, 40});
  for (uint64_t v = 1; v <= 40; ++v) h.Record(v);
  // Sample 20 of 40 sits in the (10, 20] bucket.
  EXPECT_EQ(h.Quantile(0.5), 20u);
  EXPECT_EQ(h.Quantile(1.0), 40u);
}

TEST(HistogramTest, MergeFromAddsBucketsCountSumAndExtremes) {
  Histogram a({10, 100, 1000});
  Histogram b({10, 100, 1000});
  a.Record(5);
  a.Record(50);
  b.Record(500);
  b.Record(5000);  // overflow bucket
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 5555u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 5000u);
  const std::vector<uint64_t> buckets = a.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  // `b` is a read-only source.
  EXPECT_EQ(b.count(), 2u);
}

TEST(HistogramTest, MergeFromEmptyLeavesExtremesAlone) {
  Histogram a({10});
  Histogram empty({10});
  a.Record(7);
  a.MergeFrom(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7u);
  EXPECT_EQ(a.max(), 7u);
}

TEST(MetricsRegistryTest, MergeFromFoldsShardIntoTotal) {
  MetricsRegistry total;
  MetricsRegistry shard;
  total.GetCounter("exchange.count")->Increment(10);
  shard.GetCounter("exchange.count")->Increment(5);
  shard.GetCounter("search.messages")->Increment(3);  // absent in total so far
  shard.GetGauge("peers.online")->Set(40);
  shard.GetHistogram("depth", CountBounds())->Record(2);
  total.MergeFrom(shard);
  EXPECT_EQ(total.GetCounter("exchange.count")->value(), 15u);
  EXPECT_EQ(total.GetCounter("search.messages")->value(), 3u);
  EXPECT_EQ(total.GetGauge("peers.online")->value(), 40);
  EXPECT_EQ(total.GetHistogram("depth", CountBounds())->count(), 1u);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  Histogram* h1 = reg.GetHistogram("h", {1, 2});
  Histogram* h2 = reg.GetHistogram("h", {5, 6, 7});  // bounds ignored after creation
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds(), (std::vector<uint64_t>{1, 2}));
}

TEST(MetricsRegistryTest, KindCollisionReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("name"), nullptr);
  EXPECT_EQ(reg.GetGauge("name"), nullptr);
  EXPECT_EQ(reg.GetHistogram("name", {1}), nullptr);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.GetCounter("zulu")->Increment();
  reg.GetCounter("alpha")->Increment(2);
  reg.GetGauge("mid")->Set(-1);
  reg.GetHistogram("hist", {1, 2})->Record(1);
  RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[0].second, 2u);
  EXPECT_EQ(snap.counters[1].first, "zulu");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -1);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "hist");
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].p50, 1u);
}

TEST(MetricsRegistryTest, ConcurrentRecordingSumsExactly) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("hammered");
  Histogram* h = reg.GetHistogram("latency", CountBounds());
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Record(static_cast<uint64_t>(t));  // each thread records its own id
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(c->value(), kThreads * kPerThread);
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  // Sum of thread ids 0..7, each kPerThread times.
  EXPECT_EQ(h->sum(), kPerThread * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
  EXPECT_EQ(h->min(), 0u);
  EXPECT_EQ(h->max(), 7u);
  // Every thread's bucket holds exactly its own samples.
  uint64_t total = 0;
  for (uint64_t b : h->bucket_counts()) total += b;
  EXPECT_EQ(total, kThreads * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentGetOfTheSameNameIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Counter* c = reg.GetCounter("shared");
      c->Increment();
      seen[t] = c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), static_cast<uint64_t>(kThreads));
}

TEST(DefaultBoundsTest, AreNonEmptyAndStrictlyIncreasing) {
  for (const std::vector<uint64_t>& bounds :
       {LatencyBoundsUs(), CountBounds(), SizeBoundsBytes()}) {
    ASSERT_FALSE(bounds.empty());
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

}  // namespace
}  // namespace obs
}  // namespace pgrid
