#include "core/split_policy.h"

#include <gtest/gtest.h>

#include "core/stats.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/key_generator.h"

namespace pgrid {
namespace {

IndexEntry Entry(ItemId id, const KeyPath& key) {
  IndexEntry e;
  e.holder = 0;
  e.item_id = id;
  e.key = key;
  e.version = 1;
  return e;
}

TEST(SplitPolicyTest, DepthBoundMatchesMaxlRule) {
  DepthBoundPolicy policy(4);
  PeerState a(0), b(1);
  EXPECT_TRUE(policy.MaySplit(a, b, 0));
  EXPECT_TRUE(policy.MaySplit(a, b, 3));
  EXPECT_FALSE(policy.MaySplit(a, b, 4));
  EXPECT_FALSE(policy.MaySplit(a, b, 9));
}

TEST(SplitPolicyTest, DataThresholdRequiresJointVolume) {
  DataThresholdPolicy policy(/*min_items=*/4, /*hard_cap=*/8, /*bootstrap_depth=*/0);
  PeerState a(0), b(1);
  EXPECT_FALSE(policy.MaySplit(a, b, 1));  // no data at all
  Rng rng(1);
  for (ItemId i = 1; i <= 2; ++i) a.index().InsertOrRefresh(Entry(i, KeyPath::Random(&rng, 8)));
  for (ItemId i = 3; i <= 4; ++i) b.index().InsertOrRefresh(Entry(i, KeyPath::Random(&rng, 8)));
  EXPECT_TRUE(policy.MaySplit(a, b, 1));   // 4 joint items
  EXPECT_FALSE(policy.MaySplit(a, b, 8));  // hard cap
}

TEST(SplitPolicyTest, BootstrapDepthAlwaysSplits) {
  DataThresholdPolicy policy(100, 8, /*bootstrap_depth=*/2);
  PeerState a(0), b(1);
  EXPECT_TRUE(policy.MaySplit(a, b, 0));
  EXPECT_TRUE(policy.MaySplit(a, b, 1));
  EXPECT_FALSE(policy.MaySplit(a, b, 2));  // past bootstrap, not enough data
}

// End-to-end: under skewed keys the adaptive policy grows deeper paths in dense
// regions than in sparse ones, while the plain policy splits uniformly.
TEST(SplitPolicyTest, AdaptiveGridFollowsDataDensity) {
  const size_t num_peers = 256;
  Grid grid(num_peers);
  Rng rng(7);
  ExchangeConfig config;
  config.maxl = 10;  // generous hard bound; the policy is the binding constraint
  config.refmax = 3;
  config.recmax = 2;
  config.recursion_fanout = 2;
  DataThresholdPolicy policy(/*min_items=*/8, /*hard_cap=*/10, /*bootstrap_depth=*/1);
  ExchangeEngine exchange(&grid, config, &rng, nullptr, &policy);

  // Heavily skewed corpus: 90% of keys start with "00".
  KeyGenerator gen(KeyGenerator::Mode::kBiasedBits, 12, /*bit_bias=*/0.1);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(2000, num_peers, gen, &rng, &holders);
  SeedGridAtHolders(&grid, corpus, holders);

  MeetingScheduler scheduler(num_peers);
  for (int m = 0; m < 60000; ++m) {
    Meeting meeting = scheduler.Next(&rng);
    exchange.Exchange(meeting.a, meeting.b);
  }

  // Average depth of peers on the dense side ("0...") vs the sparse side ("1...").
  double dense_depth = 0, sparse_depth = 0;
  size_t dense_n = 0, sparse_n = 0;
  for (const PeerState& p : grid) {
    if (p.depth() == 0) continue;
    if (p.PathBit(1) == 0) {
      dense_depth += static_cast<double>(p.depth());
      ++dense_n;
    } else {
      sparse_depth += static_cast<double>(p.depth());
      ++sparse_n;
    }
  }
  ASSERT_GT(dense_n, 0u);
  ASSERT_GT(sparse_n, 0u);
  dense_depth /= static_cast<double>(dense_n);
  sparse_depth /= static_cast<double>(sparse_n);
  EXPECT_GT(dense_depth, sparse_depth + 0.5)
      << "dense " << dense_depth << " sparse " << sparse_depth;
  // Structure stays sound under the policy.
  Status s = GridStats::CheckInvariants(grid, config);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(SplitPolicyTest, PreferCloneTracksObservedImbalance) {
  DataThresholdPolicy policy(1, 12, 0, /*clone_imbalance=*/3.0);
  PeerState shorter(0), longer(1);
  longer.AppendPathBit(1);  // partner sits on the "1" side of level 1
  // 10 entries on the partner's side, 1 on the complement: 10 > 3 * 1 -> clone.
  Rng rng(3);
  for (ItemId i = 1; i <= 10; ++i) {
    shorter.index().InsertOrRefresh(
        Entry(i, KeyPath::FromString("1").value().Concat(KeyPath::Random(&rng, 6))));
  }
  shorter.index().InsertOrRefresh(Entry(11, KeyPath::FromString("0110").value()));
  EXPECT_TRUE(policy.PreferClone(shorter, longer, 0));
  // Balanced data: no cloning.
  for (ItemId i = 12; i <= 20; ++i) {
    shorter.index().InsertOrRefresh(
        Entry(i, KeyPath::FromString("0").value().Concat(KeyPath::Random(&rng, 6))));
  }
  EXPECT_FALSE(policy.PreferClone(shorter, longer, 0));
  // Disabled cloning never fires.
  DataThresholdPolicy no_clone(1, 12, 0, 0.0);
  EXPECT_FALSE(no_clone.PreferClone(shorter, longer, 0));
}

TEST(SplitPolicyTest, CloningKeepsStructuralInvariants) {
  const size_t num_peers = 128;
  Grid grid(num_peers);
  Rng rng(17);
  ExchangeConfig config;
  config.maxl = 8;
  config.refmax = 3;
  config.recmax = 2;
  config.recursion_fanout = 2;
  DataThresholdPolicy policy(8, 8, 1, /*clone_imbalance=*/2.0);
  ExchangeEngine exchange(&grid, config, &rng, nullptr, &policy);
  KeyGenerator gen(KeyGenerator::Mode::kBiasedBits, 12, 0.2);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(1000, num_peers, gen, &rng, &holders);
  SeedGridAtHolders(&grid, corpus, holders);
  MeetingScheduler scheduler(num_peers);
  for (int m = 0; m < 30000; ++m) {
    Meeting meeting = scheduler.Next(&rng);
    exchange.Exchange(meeting.a, meeting.b);
  }
  Status s = GridStats::CheckInvariants(grid, config);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(SplitPolicyTest, NullPolicyReproducesPaperBehaviour) {
  // Engine with DepthBoundPolicy(maxl) must behave identically to no policy.
  auto run = [](bool use_policy) {
    Grid grid(64);
    Rng rng(11);
    ExchangeConfig config;
    config.maxl = 4;
    config.refmax = 2;
    config.recmax = 2;
    config.recursion_fanout = 2;
    DepthBoundPolicy policy(4);
    ExchangeEngine exchange(&grid, config, &rng, nullptr,
                            use_policy ? &policy : nullptr);
    MeetingScheduler scheduler(64);
    for (int m = 0; m < 3000; ++m) {
      Meeting meeting = scheduler.Next(&rng);
      exchange.Exchange(meeting.a, meeting.b);
    }
    std::vector<std::string> paths;
    for (const PeerState& p : grid) paths.push_back(p.path().ToString());
    return paths;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace pgrid
