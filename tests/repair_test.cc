#include "repair/repair.h"

#include <gtest/gtest.h>

#include <memory>

#include "check/invariants.h"
#include "core/churn.h"
#include "core/search.h"
#include "repair/health.h"
#include "sim/digest.h"
#include "tests/test_util.h"

namespace pgrid {
namespace {

// ---- SuspicionTable (repair/health.h) ----

TEST(SuspicionTableTest, EvictsOnlyAtThreshold) {
  repair::SuspicionTable table(3);
  EXPECT_FALSE(table.NoteFailure(7));
  EXPECT_FALSE(table.NoteFailure(7));
  EXPECT_EQ(table.suspicion(7), 2u);
  EXPECT_TRUE(table.NoteFailure(7));
  // Crossing the threshold resets the counter: the next failure streak starts
  // from scratch.
  EXPECT_EQ(table.suspicion(7), 0u);
  EXPECT_FALSE(table.NoteFailure(7));
}

TEST(SuspicionTableTest, SuccessResetsTheStreak) {
  repair::SuspicionTable table(2);
  EXPECT_FALSE(table.NoteFailure(3));
  table.NoteSuccess(3);
  EXPECT_EQ(table.suspicion(3), 0u);
  // One dropped packet after a success never evicts.
  EXPECT_FALSE(table.NoteFailure(3));
  EXPECT_TRUE(table.NoteFailure(3));
}

TEST(SuspicionTableTest, ZeroThresholdDisablesDetection) {
  repair::SuspicionTable table(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(table.NoteFailure(1));
}

// ---- RepairEngine over a simulated grid ----

struct RepairFixture {
  ExchangeConfig config;
  Grid grid{128};
  Rng rng{11};
  OnlineModel online;
  std::unique_ptr<ExchangeEngine> exchange;
  MeetingScheduler scheduler{128};
  std::unique_ptr<ChurnDriver> driver;
  std::unique_ptr<SearchEngine> search;
  std::unique_ptr<repair::RepairEngine> repair;

  explicit RepairFixture(repair::RepairConfig rc = {}, uint64_t seed = 11)
      : rng(seed), online(OnlineModel::AlwaysOn(128)) {
    config.maxl = 4;
    config.refmax = 3;
    config.recmax = 2;
    config.recursion_fanout = 2;
    exchange = std::make_unique<ExchangeEngine>(&grid, config, &rng, &online);
    driver = std::make_unique<ChurnDriver>(&grid, exchange.get(), &scheduler,
                                           &online, &rng);
    GridBuilder builder(&grid, exchange.get(), &scheduler, &rng);
    builder.BuildToFractionOfMaxDepth(0.99, 1'000'000);
    search = std::make_unique<SearchEngine>(&grid, &online, &rng);
    repair = std::make_unique<repair::RepairEngine>(&grid, config, rc,
                                                    search.get(), &online, &rng);
    repair->set_liveness([this](PeerId p) { return !driver->IsDead(p); });
    repair->set_probe_fn(
        [this](PeerId, PeerId to) { return !driver->IsDead(to); });
  }

  void Crash(double fraction) {
    ChurnConfig cfg;
    cfg.crash_fraction = fraction;
    cfg.join_fraction = 0.0;
    cfg.meetings_per_round = 0;
    driver->Round(cfg);
  }

  check::InvariantReport ConvergenceReport(size_t min_live_refs) {
    check::InvariantOptions opt;
    opt.check_repair_convergence = true;
    opt.dead = &driver->dead_mask();
    opt.repair_min_live_refs = min_live_refs;
    opt.max_violations = 100000;
    return check::GridInvariants::Check(grid, config, opt);
  }

  uint64_t Counter(const char* name) {
    return grid.metrics().GetCounter(name)->value();
  }
};

TEST(RepairEngineTest, TicksHealAThirdCrashedGridToFullRefs) {
  RepairFixture f;
  f.Crash(0.30);

  // The crash wave leaves dangling references behind: the convergence check
  // must fail before repair runs.
  check::InvariantReport before = f.ConvergenceReport(f.config.refmax);
  EXPECT_GT(before.CountOf(check::Category::kDeadReference), 0u);

  repair::RepairTick total;
  for (int round = 0; round < 12; ++round) {
    repair::RepairTick t = f.repair->Tick();
    total.probes += t.probes;
    total.evictions += t.evictions;
    total.recruited += t.recruited;
  }
  EXPECT_GT(total.probes, 0u);
  EXPECT_GT(total.evictions, 0u);
  EXPECT_GT(total.recruited, 0u);

  // Fully healed: no live peer references a dead one, and every level is back
  // at refmax (or at the number of live candidates, whichever is smaller).
  check::InvariantReport after = f.ConvergenceReport(f.config.refmax);
  EXPECT_TRUE(after.ok()) << after.ToString();

  // The counters mirror the tick report.
  EXPECT_EQ(f.Counter("repair.evictions"), total.evictions);
  EXPECT_EQ(f.Counter("repair.recruitments"), total.recruited);
}

TEST(RepairEngineTest, PassiveArmDoesNotHeal) {
  repair::RepairConfig passive;
  passive.suspicion_threshold = 0;  // detection off
  passive.recruit = false;
  passive.anti_entropy = false;
  RepairFixture f(passive);
  f.Crash(0.30);
  for (int round = 0; round < 12; ++round) f.repair->Tick();
  check::InvariantReport after = f.ConvergenceReport(f.config.refmax);
  EXPECT_GT(after.CountOf(check::Category::kDeadReference), 0u);
}

TEST(RepairEngineTest, AntiEntropyReconcilesDivergedBuddies) {
  RepairFixture f;
  // Find a live buddy pair and desynchronize it by hand: one replica gets the
  // entry at version 5, the other never hears of it.
  PeerId a = kInvalidPeer, b = kInvalidPeer;
  for (PeerId p = 0; p < f.grid.size() && a == kInvalidPeer; ++p) {
    if (!f.grid.peer(p).buddies().empty()) {
      a = p;
      b = f.grid.peer(p).buddies().front();
    }
  }
  ASSERT_NE(a, kInvalidPeer) << "no buddy pair in the built grid";
  KeyPath key = f.grid.peer(a).path();  // overlaps both replicas by definition
  IndexEntry entry{/*holder=*/a, /*item_id=*/42, key, /*version=*/5};
  f.grid.peer(a).index().InsertOrRefresh(entry);
  ASSERT_NE(sim::IndexDigest(f.grid.peer(a).index()),
            sim::IndexDigest(f.grid.peer(b).index()));

  repair::RepairTick t = f.repair->Tick();
  EXPECT_GT(t.sync_sessions, 0u);
  EXPECT_GT(t.syncs_diverged, 0u);
  EXPECT_GT(t.entries_reconciled, 0u);
  EXPECT_EQ(f.grid.peer(b).index().LatestVersionOf(42), 5u);
  EXPECT_EQ(sim::IndexDigest(f.grid.peer(a).index()),
            sim::IndexDigest(f.grid.peer(b).index()));

  // A second round finds nothing left to reconcile for this pair.
  repair::RepairTick again = f.repair->Tick();
  EXPECT_EQ(again.entries_reconciled, 0u);
}

// Regression: with raw (unfinalized) per-entry FNV sums, this exact pair of
// entry sets -- same four identities, versions {1,1} on one side and {2,2} on
// the other -- produced EQUAL digests: FNV folds the trailing version word as
// (h ^ v) * p^8, and the two per-entry deltas cancelled across the commutative
// sum. Anti-entropy then judged the replicas "in sync" forever. The Mix64
// finalizer in sim::IndexDigest makes version skew visible again.
TEST(RepairEngineTest, IndexDigestSeesCancellingVersionSkew) {
  const KeyPath key = testing_util::Key("1101");
  LeafIndex stale, fresh;
  for (uint64_t version : {uint64_t{1}, uint64_t{2}}) {
    LeafIndex& index = version == 1 ? stale : fresh;
    index.InsertOrRefresh(IndexEntry{/*holder=*/212, /*item_id=*/33, key, version});
    index.InsertOrRefresh(IndexEntry{/*holder=*/235, /*item_id=*/97, key, version});
  }
  EXPECT_NE(sim::IndexDigest(stale), sim::IndexDigest(fresh));
}

TEST(RepairEngineTest, ReadRepairPatchesStaleMinority) {
  RepairFixture f;
  // Give every replica of one leaf the entry at version 7, except one straggler
  // stuck at version 1.
  PeerId holder = kInvalidPeer;
  std::vector<PeerId> replicas;
  for (PeerId p = 0; p < f.grid.size(); ++p) {
    replicas.clear();
    for (PeerId q = 0; q < f.grid.size(); ++q) {
      if (f.grid.peer(q).path() == f.grid.peer(p).path()) replicas.push_back(q);
    }
    if (replicas.size() >= 3) {
      holder = p;
      break;
    }
  }
  ASSERT_NE(holder, kInvalidPeer) << "no 3-fold replicated leaf in the grid";
  const KeyPath key = f.grid.peer(holder).path();
  const ItemId item = 99;
  for (size_t i = 0; i < replicas.size(); ++i) {
    const uint64_t version = (i == 0) ? 1 : 7;
    f.grid.peer(replicas[i]).index().InsertOrRefresh(
        IndexEntry{holder, item, key, version});
  }

  ReliableReadConfig read;
  read.quorum = 3;
  read.max_attempts = 64;
  repair::ReadRepairOutcome out = f.repair->ReadRepair(key, item, read);
  EXPECT_TRUE(out.decided);
  EXPECT_EQ(out.version, 7u);
  // Whether the straggler was patched depends on whether it answered a query;
  // what must never happen is a patch *away* from the majority.
  for (PeerId r : replicas) {
    const uint64_t v = f.grid.peer(r).index().LatestVersionOf(item);
    EXPECT_TRUE(v == 1u || v == 7u);
  }
  if (out.stale_replicas > 0) {
    EXPECT_GT(out.repaired_entries, 0u);
    EXPECT_EQ(f.grid.peer(replicas[0]).index().LatestVersionOf(item), 7u);
  }
}

TEST(RepairEngineTest, LedgerStaysExactThroughRepair) {
  RepairFixture f;
  f.Crash(0.25);
  for (int round = 0; round < 6; ++round) f.repair->Tick();
  ReliableReadConfig read;
  read.quorum = 2;
  read.max_attempts = 16;
  f.repair->ReadRepair(KeyPath::Random(&f.rng, 4), 7, read);

  check::InvariantOptions ledger_only;
  ledger_only.check_structure = false;
  ledger_only.check_coverage = false;
  ledger_only.check_placement = false;
  ledger_only.check_replica_agreement = false;
  check::InvariantReport report =
      check::GridInvariants::Check(f.grid, f.config, ledger_only);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(RepairEngineTest, RepairScheduleIsDeterministic) {
  auto run = [] {
    RepairFixture f(repair::RepairConfig{}, 23);
    f.Crash(0.30);
    for (int round = 0; round < 8; ++round) f.repair->Tick();
    return sim::GridStateDigest(f.grid);
  };
  EXPECT_EQ(run(), run());
}

TEST(RepairEngineTest, SearchReliabilityRecoversAfterRepair) {
  RepairFixture f;
  f.Crash(0.30);

  auto success_rate = [&] {
    size_t ok = 0;
    const size_t trials = 300;
    for (size_t t = 0; t < trials; ++t) {
      PeerId start = f.driver->RandomLivePeer();
      if (f.search->Query(start, KeyPath::Random(&f.rng, 4)).found) ++ok;
    }
    return static_cast<double>(ok) / 300.0;
  };

  for (int round = 0; round < 12; ++round) f.repair->Tick();
  const double healed = success_rate();
  EXPECT_GT(healed, 0.95) << "healed grid must route reliably";
}

}  // namespace
}  // namespace pgrid
