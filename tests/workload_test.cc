#include <gtest/gtest.h>

#include <map>

#include "core/stats.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/key_generator.h"
#include "workload/zipf.h"

namespace pgrid {
namespace {

TEST(KeyGeneratorTest, UniformKeysHaveRequestedLength) {
  Rng rng(1);
  KeyGenerator gen(KeyGenerator::Mode::kUniform, 12);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(gen.Next(&rng).length(), 12u);
}

TEST(KeyGeneratorTest, UniformBitsAreBalanced) {
  Rng rng(2);
  KeyGenerator gen(KeyGenerator::Mode::kUniform, 16);
  size_t ones = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    KeyPath k = gen.Next(&rng);
    for (size_t b = 0; b < k.length(); ++b) ones += static_cast<size_t>(k.bit(b));
  }
  EXPECT_NEAR(static_cast<double>(ones) / (trials * 16), 0.5, 0.02);
}

TEST(KeyGeneratorTest, BiasedBitsFollowBias) {
  Rng rng(3);
  KeyGenerator gen(KeyGenerator::Mode::kBiasedBits, 16, 0.8);
  size_t ones = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    KeyPath k = gen.Next(&rng);
    for (size_t b = 0; b < k.length(); ++b) ones += static_cast<size_t>(k.bit(b));
  }
  EXPECT_NEAR(static_cast<double>(ones) / (trials * 16), 0.8, 0.02);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Rng rng(4);
  ZipfGenerator zipf(10, 0.0);
  std::map<size_t, size_t> counts;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.Next(&rng)];
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.1, 0.02);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(5);
  ZipfGenerator zipf(1000, 1.0);
  std::map<size_t, size_t> counts;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.Next(&rng)];
  // Rank 0 must dominate rank 99 by roughly the theoretical 100x.
  EXPECT_GT(counts[0], counts[99] * 20);
  // All ranks stay in range.
  EXPECT_LT(counts.rbegin()->first, 1000u);
}

TEST(ZipfTest, ThetaIncreasesConcentration) {
  Rng rng(6);
  auto top10_share = [&rng](double theta) {
    ZipfGenerator zipf(500, theta);
    size_t top = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
      if (zipf.Next(&rng) < 10) ++top;
    }
    return static_cast<double>(top) / trials;
  };
  EXPECT_LT(top10_share(0.2), top10_share(1.2));
}

TEST(CorpusTest, MakeCorpusAssignsIdsKeysHolders) {
  Rng rng(7);
  KeyGenerator gen(KeyGenerator::Mode::kUniform, 10);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(50, 16, gen, &rng, &holders);
  ASSERT_EQ(corpus.size(), 50u);
  ASSERT_EQ(holders.size(), 50u);
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(corpus[i].id, i + 1);
    EXPECT_EQ(corpus[i].key.length(), 10u);
    EXPECT_EQ(corpus[i].version, 1u);
    EXPECT_LT(holders[i], 16u);
    EXPECT_FALSE(corpus[i].payload.empty());
  }
}

TEST(CorpusTest, SeedGridPerfectlyCoversEveryReplica) {
  auto built = testing_util::Build(128, 4, 2, 2, 8);
  Rng rng(9);
  KeyGenerator gen(KeyGenerator::Mode::kUniform, 8);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(10, 128, gen, &rng, &holders);
  SeedGridPerfectly(built.grid.get(), corpus, holders);
  for (size_t i = 0; i < corpus.size(); ++i) {
    // The holder physically stores the item.
    EXPECT_NE(built.grid->peer(holders[i]).store().Get(corpus[i].id), nullptr);
    // Every co-responsible peer has the index entry.
    for (PeerId r : GridStats::ReplicasOf(*built.grid, corpus[i].key)) {
      EXPECT_NE(built.grid->peer(r).index().Find(holders[i], corpus[i].id), nullptr)
          << "replica " << r << " missing entry for item " << corpus[i].id;
    }
  }
}

TEST(CorpusTest, SeedGridAtHoldersInstallsExactlyOneEntryPerItem) {
  auto built = testing_util::Build(64, 3, 1, 2, 10);
  Rng rng(11);
  KeyGenerator gen(KeyGenerator::Mode::kUniform, 6);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(20, 64, gen, &rng, &holders);
  size_t installed = SeedGridAtHolders(built.grid.get(), corpus, holders);
  EXPECT_EQ(installed, 20u);
  size_t total_entries = 0;
  for (const PeerState& p : *built.grid) total_entries += p.index().size();
  EXPECT_EQ(total_entries, 20u);
}

}  // namespace
}  // namespace pgrid
