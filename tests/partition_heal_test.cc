// Partition-heal reconciliation (docs/robustness.md): replicas diverge while a
// partition is up, and after the merge RejoinSync / anti-entropy must restore
// replica agreement -- with the reconciliation work observable in the ledger
// (one kControl per sync session, kDataTransfer per reconciled entry).

#include <gtest/gtest.h>

#include <memory>

#include "check/invariants.h"
#include "core/churn.h"
#include "core/grid_builder.h"
#include "core/insert.h"
#include "core/search.h"
#include "core/update.h"
#include "repair/repair.h"
#include "sim/scenario.h"

namespace pgrid {
namespace {

struct HealFixture {
  ExchangeConfig config;
  Grid grid{64};
  Rng rng{29};
  OnlineModel online;
  std::unique_ptr<ExchangeEngine> exchange;
  MeetingScheduler scheduler{64};
  std::unique_ptr<ChurnDriver> driver;
  std::unique_ptr<SearchEngine> search;
  std::unique_ptr<repair::RepairEngine> repair;
  std::vector<DataItem> items;

  HealFixture() : online(OnlineModel::AlwaysOn(64)) {
    config.maxl = 4;
    config.refmax = 3;
    config.recmax = 2;
    config.recursion_fanout = 2;
    exchange = std::make_unique<ExchangeEngine>(&grid, config, &rng, &online);
    driver = std::make_unique<ChurnDriver>(&grid, exchange.get(), &scheduler,
                                           &online, &rng);
    GridBuilder builder(&grid, exchange.get(), &scheduler, &rng);
    builder.BuildToFractionOfMaxDepth(0.99, 1'000'000);
    search = std::make_unique<SearchEngine>(&grid, &online, &rng);
    repair = std::make_unique<repair::RepairEngine>(
        &grid, config, repair::RepairConfig{}, search.get(), &online, &rng);
    repair->set_liveness([this](PeerId p) { return !driver->IsDead(p); });
    repair->set_probe_fn(
        [this](PeerId, PeerId to) { return !driver->IsDead(to); });

    InsertEngine inserter(&grid, &online, &rng);
    UpdateConfig update_config;
    update_config.recbreadth = 2;
    update_config.repetition = 2;
    for (size_t i = 0; i < 40; ++i) {
      DataItem item;
      item.id = i + 1;
      item.key = KeyPath::Random(&rng, config.maxl);
      item.version = 1;
      (void)inserter.Insert(item, static_cast<PeerId>(rng.UniformIndex(64)),
                            update_config);
      items.push_back(item);
    }
  }
};

// The RejoinSync form of divergence: a replica is away while every item is
// updated, then pulls the whole missed delta through one targeted buddy
// anti-entropy pass.
TEST(PartitionHealTest, RejoinSyncPullsLongDivergence) {
  HealFixture f;
  // A victim that is a replica with buddies and a non-empty index, so the
  // rejoin pass has peers to sync against and entries to reconcile.
  PeerId victim = kInvalidPeer;
  for (PeerId p = 0; p < f.grid.size(); ++p) {
    if (!f.grid.peer(p).buddies().empty() && !f.grid.peer(p).index().empty()) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidPeer);

  // The victim goes dark; every item advances a version in the meantime --
  // a *long* divergence, not a single missed write.
  (void)f.driver->Depart(victim, /*graceful=*/false);
  UpdateEngine updater(&f.grid, &f.online, &f.rng);
  UpdateConfig update_config;
  update_config.recbreadth = 2;
  update_config.repetition = 2;
  for (const DataItem& item : f.items) {
    updater.Propagate(item.key, item.id, 2, UpdateStrategy::kRepeatedDfs,
                      update_config);
  }

  f.driver->Revive(victim);
  const uint64_t control_before = f.grid.stats().count(MessageType::kControl);
  const repair::RepairTick tick = f.repair->RejoinSync(victim);
  EXPECT_GT(tick.sync_sessions, 0u);
  EXPECT_GT(tick.entries_reconciled, 0u)
      << "the rejoined replica pulled no missed updates";
  // Reconciliation messages are on the ledger: one kControl per session.
  EXPECT_GE(f.grid.stats().count(MessageType::kControl),
            control_before + tick.sync_sessions);

  // Anti-entropy finishes the job grid-wide and reports convergence.
  const repair::RepairEngine::ReconcileOutcome outcome =
      f.repair->ReconcileUntilConverged(8);
  EXPECT_TRUE(outcome.converged);
  EXPECT_GE(outcome.rounds, 1u);
}

TEST(PartitionHealTest, ReconcileUntilConvergedReportsItsWork) {
  HealFixture f;
  // First pass absorbs whatever divergence the build left behind.
  const repair::RepairEngine::ReconcileOutcome first =
      f.repair->ReconcileUntilConverged(4);
  ASSERT_TRUE(first.converged);
  const uint64_t rounds_after_first =
      f.grid.metrics().GetCounter("repair.reconcile_rounds")->value();
  EXPECT_EQ(rounds_after_first, first.rounds);
  // Now the grid is converged: a second pass is one clean round.
  const repair::RepairEngine::ReconcileOutcome outcome =
      f.repair->ReconcileUntilConverged(4);
  EXPECT_TRUE(outcome.converged);
  EXPECT_EQ(outcome.rounds, 1u);
  EXPECT_GT(outcome.sync_sessions, 0u);
  EXPECT_EQ(f.grid.metrics().GetCounter("repair.reconcile_rounds")->value(),
            rounds_after_first + 1);
}

// The scenario form: two groups diverge for a window of gated ticks, the heal
// step drives anti-entropy to convergence, and the strict barrier checks
// replica agreement among everything the partition touched.
TEST(PartitionHealTest, ScenarioDivergenceHealsToReplicaAgreement) {
  sim::Scenario s;
  s.config.seed = 47;
  s.config.num_peers = 32;
  s.config.maxl = 3;
  s.config.refmax = 2;
  s.steps = {
      {sim::StepKind::kExchange, 320, 0, 0, 0},
      {sim::StepKind::kInsert, 3, 5, 2, 4},
      {sim::StepKind::kInsert, 7, 2, 1, 0},
      {sim::StepKind::kInsert, 11, 6, 2, 2},
      {sim::StepKind::kInsert, 13, 3, 2, 1},
      {sim::StepKind::kBarrier, 4, 0, 0, 0},
      // Two islands for a long window: every tick runs gated meetings and
      // availability probes, and the updates between them keep writing on
      // both sides of the split.
      {sim::StepKind::kPartition, 3, 4, 1, 0},
      {sim::StepKind::kUpdate, 5, 0, 0, 0},
      {sim::StepKind::kUpdate, 9, 1, 0, 0},
      {sim::StepKind::kUpdate, 17, 2, 0, 0},
      {sim::StepKind::kUpdate, 23, 0, 0, 0},
      // Heal: the step itself fails if anti-entropy cannot restore agreement.
      {sim::StepKind::kPartition, 0, 2, 0, 0},
      {sim::StepKind::kBarrier, 4, 1, 0, 0},
  };
  sim::ScenarioRunner runner(s);
  const sim::ScenarioResult result = runner.Run();
  EXPECT_FALSE(result.failed)
      << "failed at step " << result.failed_step << ": "
      << result.report.ToString();
  auto& metrics = runner.grid().metrics();
  EXPECT_GE(metrics.GetCounter("repair.reconcile_rounds")->value(), 1u);
  EXPECT_GT(metrics.GetCounter("repair.sync_sessions")->value(), 0u);
}

// A crash wave *inside* the partition: durable kills on one island, heal,
// restart-all -- the recovered peers pull their missed delta via RejoinSync
// and the strict barrier still demands agreement.
TEST(PartitionHealTest, CrashWaveInsidePartitionRecoversAfterHeal) {
  sim::Scenario s;
  s.config.seed = 53;
  s.config.num_peers = 24;
  s.config.maxl = 3;
  s.config.refmax = 2;
  s.steps = {
      {sim::StepKind::kExchange, 240, 0, 0, 0},
      {sim::StepKind::kInsert, 3, 5, 2, 4},
      {sim::StepKind::kInsert, 7, 2, 1, 0},
      {sim::StepKind::kPartition, 3, 2, 1, 0},
      {sim::StepKind::kUpdate, 5, 0, 0, 0},
      {sim::StepKind::kCrashWave, 96, 0, 0, 0},
      {sim::StepKind::kPartition, 0, 2, 0, 0},  // heal + reconcile
      {sim::StepKind::kRestart, 0, 1, 0, 0},    // recover the wave's victims
      {sim::StepKind::kExchange, 120, 0, 0, 0},
      {sim::StepKind::kRepair, 4, 2, 0, 0},
      {sim::StepKind::kBarrier, 4, 1, 0, 0},
  };
  sim::ScenarioRunner runner(s);
  const sim::ScenarioResult result = runner.Run();
  EXPECT_FALSE(result.failed)
      << "failed at step " << result.failed_step << ": "
      << result.report.ToString();
  EXPECT_GE(runner.grid().metrics().GetCounter("repair.rejoin_syncs")->value(),
            1u);
}

}  // namespace
}  // namespace pgrid
