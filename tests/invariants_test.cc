#include "check/invariants.h"

#include <gtest/gtest.h>

#include "core/grid.h"
#include "sim/message_stats.h"
#include "tests/test_util.h"

namespace pgrid {
namespace {

using check::Category;
using check::GridInvariants;
using check::InvariantOptions;
using check::InvariantReport;

// A freshly constructed community (everyone responsible for everything) breaks
// nothing: no refs, no data, root-terminal coverage, zeroed ledger.
TEST(GridInvariantsTest, FreshGridIsClean) {
  Grid grid(8);
  ExchangeConfig config;
  InvariantReport report = GridInvariants::Check(grid, config);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.peers_checked, 8u);
}

TEST(GridInvariantsTest, BuiltGridSatisfiesAllInvariants) {
  testing_util::BuiltGrid built = testing_util::Build(32, 3, 2, 2, /*seed=*/7);
  ASSERT_TRUE(built.report.converged);
  InvariantReport report = GridInvariants::Check(*built.grid, built.config);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- one deliberate corruption per category -------------------------------

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    built_ = testing_util::Build(32, 3, 2, 2, /*seed=*/11);
    ASSERT_TRUE(built_.report.converged);
    ASSERT_TRUE(GridInvariants::Check(*built_.grid, built_.config).ok());
  }

  Grid& grid() { return *built_.grid; }

  /// Some peer with depth >= 1 (a converged grid has plenty).
  PeerState& AnyDeepPeer() {
    for (PeerState& p : grid()) {
      if (p.depth() >= 1) return p;
    }
    ADD_FAILURE() << "no peer with a non-empty path";
    return grid().peer(0);
  }

  /// A peer other than `not_this` whose first path bit equals `bit`.
  PeerId PeerOnSide(int bit, PeerId not_this) {
    for (const PeerState& p : grid()) {
      if (p.id() != not_this && p.depth() >= 1 && p.PathBit(1) == bit) {
        return p.id();
      }
    }
    ADD_FAILURE() << "no peer on side " << bit;
    return 0;
  }

  InvariantReport Check() {
    return GridInvariants::Check(grid(), built_.config);
  }

  testing_util::BuiltGrid built_;
};

TEST_F(CorruptionTest, FlippedReferenceBitIsCaught) {
  // A level-1 reference must sit on the complement side of the first bit;
  // pointing it at a same-side peer is exactly a "flipped bit" corruption.
  PeerState& victim = AnyDeepPeer();
  victim.SetRefsAt(1, {PeerOnSide(victim.PathBit(1), victim.id())});
  InvariantReport report = Check();
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountOf(Category::kReference), 1u) << report.ToString();
  EXPECT_EQ(report.violations[0].peer, victim.id());
  EXPECT_EQ(report.violations[0].level, 1u);
}

TEST_F(CorruptionTest, SelfReferenceIsCaught) {
  PeerState& victim = AnyDeepPeer();
  victim.SetRefsAt(1, {victim.id()});
  InvariantReport report = Check();
  EXPECT_GE(report.CountOf(Category::kSelfReference), 1u) << report.ToString();
}

TEST_F(CorruptionTest, RefmaxOverflowIsCaught) {
  PeerState& victim = AnyDeepPeer();
  // Stuff more complement-side peers into R1 than refmax allows; every target
  // is individually valid so only the count is wrong.
  const int other_side = ComplementBit(victim.PathBit(1));
  std::vector<PeerId> refs;
  for (const PeerState& p : grid()) {
    if (p.id() != victim.id() && p.depth() >= 1 && p.PathBit(1) == other_side) {
      refs.push_back(p.id());
      if (refs.size() > built_.config.refmax) break;
    }
  }
  ASSERT_GT(refs.size(), built_.config.refmax);
  victim.SetRefsAt(1, refs);
  InvariantReport report = Check();
  EXPECT_GE(report.CountOf(Category::kRefmax), 1u) << report.ToString();
  EXPECT_EQ(report.CountOf(Category::kReference), 0u) << report.ToString();
}

TEST_F(CorruptionTest, PathBeyondMaxlIsCaught) {
  // Checking against a tighter maxl than the grid was built with flags every
  // deeper path -- the same report a runtime maxl violation would produce.
  ExchangeConfig tighter = built_.config;
  tighter.maxl = 1;
  InvariantReport report = GridInvariants::Check(grid(), tighter);
  EXPECT_GE(report.CountOf(Category::kMaxl), 1u) << report.ToString();
}

TEST_F(CorruptionTest, ForeignBuddyIsCaught) {
  PeerState& victim = AnyDeepPeer();
  const PeerId stranger = PeerOnSide(ComplementBit(victim.PathBit(1)), victim.id());
  ASSERT_TRUE(victim.AddBuddy(stranger));
  InvariantReport report = Check();
  EXPECT_GE(report.CountOf(Category::kBuddy), 1u) << report.ToString();
}

TEST_F(CorruptionTest, MisplacedDataItemIsCaught) {
  PeerState& victim = AnyDeepPeer();
  IndexEntry entry;
  entry.holder = victim.id();
  entry.item_id = 424242;
  // Key on the complement side of the victim's first bit: intervals disjoint.
  entry.key = KeyPath::FromUint64(ComplementBit(victim.PathBit(1)), 1);
  entry.version = 1;
  ASSERT_TRUE(victim.index().InsertOrRefresh(entry));
  InvariantReport report = Check();
  EXPECT_GE(report.CountOf(Category::kPlacement), 1u) << report.ToString();
  EXPECT_EQ(report.violations[0].peer, victim.id());
}

TEST_F(CorruptionTest, DesyncedReplicaKeyIsCaught) {
  // Same (holder, item) indexed under different keys at two peers. Each entry
  // individually respects placement, so only the cross-peer check can see it.
  PeerState* zero_side = nullptr;
  PeerState* one_side = nullptr;
  for (PeerState& p : grid()) {
    if (p.depth() < 1) continue;
    if (p.PathBit(1) == 0 && zero_side == nullptr) zero_side = &p;
    if (p.PathBit(1) == 1 && one_side == nullptr) one_side = &p;
  }
  ASSERT_NE(zero_side, nullptr);
  ASSERT_NE(one_side, nullptr);
  IndexEntry entry;
  entry.holder = zero_side->id();
  entry.item_id = 777;
  entry.version = 1;
  entry.key = zero_side->path();
  ASSERT_TRUE(zero_side->index().InsertOrRefresh(entry));
  entry.key = one_side->path();
  ASSERT_TRUE(one_side->index().InsertOrRefresh(entry));
  InvariantReport report = Check();
  EXPECT_GE(report.CountOf(Category::kReplicaDesync), 1u) << report.ToString();
  EXPECT_EQ(report.CountOf(Category::kPlacement), 0u) << report.ToString();
}

TEST_F(CorruptionTest, LedgerMismatchIsCaught) {
  // Recording into the MessageStats ledger without the mirroring metrics
  // counter breaks the agreement the engines maintain.
  grid().stats().Record(MessageType::kQuery, 5);
  InvariantReport report = Check();
  EXPECT_GE(report.CountOf(Category::kLedger), 1u) << report.ToString();
  EXPECT_EQ(report.violations[0].peer, kInvalidPeer);
  EXPECT_NE(report.violations[0].detail.find("query"), std::string::npos)
      << report.ToString();
}

TEST(GridInvariantsCoverageTest, UncoveredSubtreeIsReported) {
  // Two peers both at "0": nobody is responsible for keys starting with 1.
  Grid grid(2);
  grid.peer(0).AppendPathBit(0);
  grid.peer(1).AppendPathBit(0);
  ExchangeConfig config;
  InvariantReport report = GridInvariants::Check(grid, config);
  ASSERT_GE(report.CountOf(Category::kCoverage), 1u) << report.ToString();
  bool mentions_one = false;
  for (const check::Violation& v : report.violations) {
    if (v.category == Category::kCoverage &&
        v.detail.find("prefix 1") != std::string::npos) {
      mentions_one = true;
    }
  }
  EXPECT_TRUE(mentions_one) << report.ToString();
}

TEST(GridInvariantsCoverageTest, HoleIsReportedOnceNotPerLeaf) {
  // Peers at 00, 01 and 11: the single hole is the prefix 10, not its leaves.
  Grid grid(3);
  grid.peer(0).AppendPathBit(0);
  grid.peer(0).AppendPathBit(0);
  grid.peer(1).AppendPathBit(0);
  grid.peer(1).AppendPathBit(1);
  grid.peer(2).AppendPathBit(1);
  grid.peer(2).AppendPathBit(1);
  ExchangeConfig config;
  InvariantReport report = GridInvariants::Check(grid, config);
  EXPECT_EQ(report.CountOf(Category::kCoverage), 1u) << report.ToString();
  EXPECT_NE(report.violations[0].detail.find("prefix 10"), std::string::npos);
}

TEST(GridInvariantsOptionsTest, DisabledChecksAreSkipped) {
  Grid grid(2);
  grid.peer(0).AppendPathBit(0);
  grid.peer(1).AppendPathBit(0);
  grid.stats().Record(MessageType::kExchange, 3);
  ExchangeConfig config;
  InvariantOptions options;
  options.check_coverage = false;
  options.check_ledger = false;
  EXPECT_TRUE(GridInvariants::Check(grid, config, options).ok());
  options.check_coverage = true;
  InvariantReport report = GridInvariants::Check(grid, config, options);
  EXPECT_EQ(report.CountOf(Category::kCoverage), 1u);
  EXPECT_EQ(report.CountOf(Category::kLedger), 0u);
}

TEST(GridInvariantsOptionsTest, MaxViolationsTruncates) {
  Grid grid(16);
  // Every peer references itself at level 1: 16 violations available.
  for (PeerState& p : grid) {
    p.AppendPathBit(0);
    p.SetRefsAt(1, {p.id()});
  }
  ExchangeConfig config;
  InvariantOptions options;
  options.check_coverage = false;
  options.max_violations = 5;
  InvariantReport report = GridInvariants::Check(grid, config, options);
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.violations.size(), 5u);
  EXPECT_NE(report.ToString().find("truncated"), std::string::npos);
}

// --- repair-convergence categories (dead refs, underfull levels, stale
// replicas) are scoped to live peers and off by default ---------------------

TEST_F(CorruptionTest, DeadReferenceIsCaughtOnlyByConvergenceCheck) {
  PeerState& a = AnyDeepPeer();
  ASSERT_FALSE(a.RefsAt(1).empty());
  std::vector<uint8_t> dead(grid().size(), 0);
  dead[a.RefsAt(1).front()] = 1;

  // Construction-time invariants do not know liveness: still clean.
  EXPECT_TRUE(Check().ok());

  InvariantOptions options;
  options.check_repair_convergence = true;
  options.dead = &dead;
  options.max_violations = 100000;
  InvariantReport report =
      GridInvariants::Check(grid(), built_.config, options);
  EXPECT_GE(report.CountOf(Category::kDeadReference), 1u) << report.ToString();
}

TEST_F(CorruptionTest, RefUnderfullDemandIsCappedByLiveSupply) {
  PeerState& a = AnyDeepPeer();
  ASSERT_FALSE(a.RefsAt(1).empty());
  std::vector<uint8_t> dead(grid().size(), 0);
  for (PeerId t : a.RefsAt(1)) dead[t] = 1;

  InvariantOptions options;
  options.check_repair_convergence = true;
  options.dead = &dead;
  options.repair_min_live_refs = 1;
  options.max_violations = 100000;
  InvariantReport report =
      GridInvariants::Check(grid(), built_.config, options);
  bool underfull_at_a = false;
  for (const check::Violation& v : report.violations) {
    underfull_at_a |= v.category == Category::kRefUnderfull &&
                      v.peer == a.id() && v.level == 1;
  }
  EXPECT_TRUE(underfull_at_a) << report.ToString();

  // Kill every remaining candidate on the complement side of bit 1: the demand
  // is capped by supply, drops to zero, and the underfull report disappears.
  for (const PeerState& t : grid()) {
    if (t.id() != a.id() && t.depth() >= 1 &&
        t.PathBit(1) != a.PathBit(1)) {
      dead[t.id()] = 1;
    }
  }
  report = GridInvariants::Check(grid(), built_.config, options);
  for (const check::Violation& v : report.violations) {
    EXPECT_FALSE(v.category == Category::kRefUnderfull && v.peer == a.id() &&
                 v.level == 1)
        << v.detail;
  }
}

TEST_F(CorruptionTest, ReplicaStaleFlagsMissingAndOutdatedEntriesAtLiveBuddies) {
  PeerId a_id = kInvalidPeer, b_id = kInvalidPeer;
  for (const PeerState& p : grid()) {
    if (!p.buddies().empty()) {
      a_id = p.id();
      b_id = p.buddies().front();
      break;
    }
  }
  ASSERT_NE(a_id, kInvalidPeer) << "converged grid should have replicas";

  // Plant two entries at every peer of the replica group except `b`: one that
  // `b` holds at an older version, one it lacks entirely.
  IndexEntry skewed;
  skewed.holder = a_id;
  skewed.item_id = 777;
  skewed.key = grid().peer(a_id).path();
  skewed.version = 5;
  IndexEntry missing = skewed;
  missing.item_id = 778;
  for (PeerState& t : grid()) {
    if (t.id() == b_id || t.path() != grid().peer(a_id).path()) continue;
    ASSERT_TRUE(t.index().InsertOrRefresh(skewed));
    ASSERT_TRUE(t.index().InsertOrRefresh(missing));
  }
  IndexEntry old = skewed;
  old.version = 2;
  ASSERT_TRUE(grid().peer(b_id).index().InsertOrRefresh(old));

  InvariantOptions options;
  options.check_repair_convergence = true;
  options.max_violations = 100000;
  InvariantReport report =
      GridInvariants::Check(grid(), built_.config, options);
  // Both failure modes land on the lagging side `b`.
  size_t at_b = 0;
  for (const check::Violation& v : report.violations) {
    if (v.category == Category::kReplicaStale && v.peer == b_id) ++at_b;
  }
  EXPECT_GE(at_b, 2u) << report.ToString();

  // A crashed buddy is exempt: there is nothing to reconcile with it.
  std::vector<uint8_t> dead(grid().size(), 0);
  dead[b_id] = 1;
  options.dead = &dead;
  report = GridInvariants::Check(grid(), built_.config, options);
  EXPECT_EQ(report.CountOf(Category::kReplicaStale), 0u) << report.ToString();
}

TEST(GridInvariantsReportTest, ToStringNamesCategoryPeerAndLevel) {
  Grid grid(4);
  grid.peer(0).AppendPathBit(0);
  grid.peer(0).SetRefsAt(1, {0});
  ExchangeConfig config;
  InvariantOptions options;
  options.check_coverage = false;
  InvariantReport report = GridInvariants::Check(grid, config, options);
  ASSERT_FALSE(report.ok());
  const std::string text = report.ToString();
  EXPECT_NE(text.find("self-reference"), std::string::npos) << text;
  EXPECT_NE(text.find("peer=0"), std::string::npos) << text;
  EXPECT_NE(text.find("level=1"), std::string::npos) << text;
}

}  // namespace
}  // namespace pgrid
