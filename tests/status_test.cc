#include "util/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pgrid {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::NotFound("missing peer").message(), "missing peer");
}

TEST(StatusTest, OkCodeDropsMessage) {
  Status s(StatusCode::kOk, "should vanish");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_FALSE(Status::NotFound("x").IsUnavailable());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::Unavailable("peer 7 offline");
  EXPECT_EQ(s.ToString(), "Unavailable: peer 7 offline");
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "Unavailable: peer 7 offline");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailsThenPropagates(bool fail) {
  PGRID_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::NotFound("outer");
}

TEST(StatusTest, ReturnIfErrorMacroPropagatesError) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kNotFound);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

}  // namespace
}  // namespace pgrid
