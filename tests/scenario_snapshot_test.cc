// Snapshot round-trips of fuzzer-generated grids: persistence must preserve
// every invariant the live grid satisfied, and re-snapshotting the restored
// grid must reproduce the file byte for byte.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "check/invariants.h"
#include "sim/fuzzer.h"
#include "sim/scenario.h"
#include "snapshot/snapshot.h"

namespace pgrid {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class ScenarioSnapshotTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScenarioSnapshotTest, RestoredFuzzedGridKeepsInvariants) {
  const uint64_t seed = GetParam();
  sim::Scenario scenario = sim::ScenarioFuzzer::Generate(seed);
  sim::ScenarioRunner runner(scenario);
  sim::ScenarioResult result = runner.Run();
  ASSERT_FALSE(result.failed) << result.report.ToString();

  const std::string path = ::testing::TempDir() + "/fuzzed_grid_" +
                           std::to_string(seed) + ".pgrid";
  ASSERT_TRUE(SaveGrid(runner.grid(), runner.exchange_config(), path).ok());

  Result<LoadedGrid> loaded = LoadGrid(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  // The restored grid satisfies everything the live one did. Its ledger is
  // fresh (snapshots persist state, not message history), which the ledger
  // check accepts because the metrics registry is equally fresh.
  check::InvariantOptions options;
  options.check_placement = scenario.config.manage_data;
  check::InvariantReport report = check::GridInvariants::Check(
      *loaded.value().grid, loaded.value().config, options);
  EXPECT_TRUE(report.ok()) << report.ToString();

  // Re-snapshotting the restored grid is byte-identical.
  const std::string path2 = path + ".resaved";
  ASSERT_TRUE(
      SaveGrid(*loaded.value().grid, loaded.value().config, path2).ok());
  EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(path2)) << "seed " << seed;

  std::remove(path.c_str());
  std::remove(path2.c_str());
}

INSTANTIATE_TEST_SUITE_P(FuzzedSeeds, ScenarioSnapshotTest,
                         ::testing::Values(1, 9, 17, 33));

}  // namespace
}  // namespace pgrid
