#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/inproc_transport.h"
#include "net/tcp_transport.h"

namespace pgrid {
namespace net {
namespace {

RpcTransport::Handler Echo() {
  return [](const std::string& from, const std::string& req) {
    return from + "|" + req;
  };
}

TEST(InProcTransportTest, CallReachesHandler) {
  InProcTransport t;
  ASSERT_TRUE(t.Serve("a", Echo()).ok());
  auto r = t.Call("a", "caller", "hello");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, "caller|hello");
  EXPECT_EQ(t.delivered_calls(), 1u);
}

TEST(InProcTransportTest, UnknownAddressIsUnavailable) {
  InProcTransport t;
  auto r = t.Call("ghost", "x", "y");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
}

TEST(InProcTransportTest, DuplicateServeRejected) {
  InProcTransport t;
  ASSERT_TRUE(t.Serve("a", Echo()).ok());
  EXPECT_EQ(t.Serve("a", Echo()).code(), StatusCode::kAlreadyExists);
}

TEST(InProcTransportTest, StopServingMakesAddressUnavailable) {
  InProcTransport t;
  ASSERT_TRUE(t.Serve("a", Echo()).ok());
  t.StopServing("a");
  EXPECT_TRUE(t.Call("a", "x", "y").status().IsUnavailable());
  // Address can be reused after stopping.
  EXPECT_TRUE(t.Serve("a", Echo()).ok());
}

TEST(InProcTransportTest, OutageInjection) {
  InProcTransport t;
  ASSERT_TRUE(t.Serve("a", Echo()).ok());
  t.InjectOutage("a");
  EXPECT_TRUE(t.Call("a", "x", "y").status().IsUnavailable());
  t.ClearOutage("a");
  EXPECT_TRUE(t.Call("a", "x", "y").ok());
}

TEST(InProcTransportTest, LossyTransportDropsSomeCalls) {
  InProcTransport t(/*loss_probability=*/0.5, /*seed=*/7);
  ASSERT_TRUE(t.Serve("a", Echo()).ok());
  int ok = 0;
  for (int i = 0; i < 400; ++i) {
    if (t.Call("a", "x", "y").ok()) ++ok;
  }
  EXPECT_GT(ok, 120);
  EXPECT_LT(ok, 280);
}

TEST(InProcTransportTest, HandlerMayCallOtherNodes) {
  InProcTransport t;
  ASSERT_TRUE(t.Serve("b", Echo()).ok());
  ASSERT_TRUE(t
                  .Serve("a",
                         [&t](const std::string& from, const std::string& req) {
                           auto inner = t.Call("b", "a", req);
                           return from + ">" + inner.value_or("fail");
                         })
                  .ok());
  auto r = t.Call("a", "caller", "m");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "caller>a|m");
}

TEST(TcpTransportTest, CallOverLocalhost) {
  TcpTransport t;
  auto addr = t.ServeAnyPort("127.0.0.1", Echo());
  ASSERT_TRUE(addr.ok()) << addr.status();
  auto r = t.Call(*addr, "client:0", "ping");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, "client:0|ping");
  t.StopServing(*addr);
}

TEST(TcpTransportTest, LargePayloadRoundTrip) {
  TcpTransport t;
  auto addr = t.ServeAnyPort("127.0.0.1", Echo());
  ASSERT_TRUE(addr.ok());
  std::string big(1 << 20, 'z');
  auto r = t.Call(*addr, "c", big);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), big.size() + 2);  // "c|" prefix
  t.StopServing(*addr);
}

TEST(TcpTransportTest, ConnectionRefusedIsUnavailable) {
  TcpTransport t;
  t.set_timeout_ms(500);
  auto r = t.Call("127.0.0.1:1", "c", "x");  // port 1: nothing listens
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
}

TEST(TcpTransportTest, BadAddressIsInvalidArgument) {
  TcpTransport t;
  EXPECT_EQ(t.Call("no-port-here", "c", "x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.Call("nonsense-host:80", "c", "x").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TcpTransportTest, StopServingClosesListener) {
  TcpTransport t;
  t.set_timeout_ms(500);
  auto addr = t.ServeAnyPort("127.0.0.1", Echo());
  ASSERT_TRUE(addr.ok());
  t.StopServing(*addr);
  EXPECT_FALSE(t.Call(*addr, "c", "x").ok());
}

TEST(TcpTransportTest, ConcurrentCalls) {
  TcpTransport t;
  std::atomic<int> served{0};
  auto addr = t.ServeAnyPort("127.0.0.1",
                             [&served](const std::string&, const std::string& req) {
                               served.fetch_add(1);
                               return "ok:" + req;
                             });
  ASSERT_TRUE(addr.ok());
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&t, &addr, &ok, i]() {
      for (int j = 0; j < 20; ++j) {
        auto r = t.Call(*addr, "c", std::to_string(i * 100 + j));
        if (r.ok() && r->rfind("ok:", 0) == 0) ok.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), 160);
  EXPECT_EQ(served.load(), 160);
  t.StopServing(*addr);
}

TEST(TcpTransportTest, TwoServersOnOneTransport) {
  TcpTransport t;
  auto a = t.ServeAnyPort("127.0.0.1", [](const std::string&, const std::string&) {
    return std::string("A");
  });
  auto b = t.ServeAnyPort("127.0.0.1", [](const std::string&, const std::string&) {
    return std::string("B");
  });
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(t.Call(*a, "c", "").value(), "A");
  EXPECT_EQ(t.Call(*b, "c", "").value(), "B");
  t.StopServing(*a);
  t.StopServing(*b);
}

}  // namespace
}  // namespace net
}  // namespace pgrid
