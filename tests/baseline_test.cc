#include <gtest/gtest.h>

#include <set>

#include "baseline/central_server.h"
#include "baseline/flooding.h"
#include "baseline/random_graph.h"
#include "key/key_path.h"
#include "util/rng.h"

namespace pgrid {
namespace {

KeyPath Key(const char* bits) { return KeyPath::FromString(bits).value(); }

DataItem Item(ItemId id, const char* key) {
  DataItem item;
  item.id = id;
  item.key = Key(key);
  item.payload = "x";
  item.version = 1;
  return item;
}

TEST(RandomGraphTest, IsConnectedViaBackbone) {
  Rng rng(1);
  RandomGraph g(50, 4, &rng);
  // BFS from node 0 must reach everyone.
  std::set<PeerId> seen{0};
  std::vector<PeerId> frontier{0};
  while (!frontier.empty()) {
    PeerId p = frontier.back();
    frontier.pop_back();
    for (PeerId n : g.Neighbors(p)) {
      if (seen.insert(n).second) frontier.push_back(n);
    }
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(RandomGraphTest, MeanDegreeNearTarget) {
  Rng rng(2);
  RandomGraph g(500, 6, &rng);
  EXPECT_NEAR(g.MeanDegree(), 6.0, 1.0);
}

TEST(RandomGraphTest, EdgesAreSymmetricAndSimple) {
  Rng rng(3);
  RandomGraph g(100, 5, &rng);
  for (PeerId p = 0; p < 100; ++p) {
    std::set<PeerId> distinct;
    for (PeerId n : g.Neighbors(p)) {
      EXPECT_NE(n, p);  // no self loops
      EXPECT_TRUE(distinct.insert(n).second);  // no parallel edges
      const auto& back = g.Neighbors(n);
      EXPECT_NE(std::find(back.begin(), back.end(), p), back.end());
    }
  }
}

TEST(FloodingTest, FindsItemWithinTtl) {
  Rng rng(4);
  FloodingConfig cfg;
  cfg.mean_degree = 4;
  cfg.ttl = 10;  // enough to cover a 64-node graph
  FloodingNetwork net(64, cfg, &rng);
  net.PlaceItem(17, Item(1, "0101"));
  FloodResult r = net.Search(3, Key("0101"), nullptr, &rng);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.holders_found, 1u);
  EXPECT_GT(r.messages, 0u);
}

TEST(FloodingTest, TtlZeroOnlyChecksStart) {
  Rng rng(5);
  FloodingConfig cfg;
  cfg.ttl = 0;
  FloodingNetwork net(16, cfg, &rng);
  net.PlaceItem(0, Item(1, "01"));
  EXPECT_TRUE(net.Search(0, Key("01"), nullptr, &rng).found);
  FloodResult r = net.Search(1, Key("01"), nullptr, &rng);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.peers_reached, 1u);
}

TEST(FloodingTest, MissingItemIsNotFoundButCostsMessages) {
  Rng rng(6);
  FloodingConfig cfg;
  cfg.ttl = 8;
  FloodingNetwork net(64, cfg, &rng);
  FloodResult r = net.Search(0, Key("1111"), nullptr, &rng);
  EXPECT_FALSE(r.found);
  // Flooding pays the full broadcast cost even for a miss.
  EXPECT_GT(r.messages, 50u);
}

TEST(FloodingTest, OfflineStartFails) {
  Rng rng(7);
  FloodingConfig cfg;
  FloodingNetwork net(16, cfg, &rng);
  OnlineModel offline(OnlineMode::kSnapshot, 16, 0.0, &rng);
  net.PlaceItem(3, Item(1, "0"));
  FloodResult r = net.Search(0, Key("0"), &offline, &rng);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.messages, 0u);
}

TEST(FloodingTest, CostGrowsWithCommunitySize) {
  // The broadcast cost scales with reachable peers; P-Grid's selling point.
  Rng rng(8);
  FloodingConfig cfg;
  cfg.ttl = 20;
  FloodingNetwork small(50, cfg, &rng);
  FloodingNetwork large(500, cfg, &rng);
  uint64_t small_cost = small.Search(0, Key("10101010"), nullptr, &rng).messages;
  uint64_t large_cost = large.Search(0, Key("10101010"), nullptr, &rng).messages;
  EXPECT_GT(large_cost, small_cost * 4);
}

TEST(CentralServerTest, PublishAndLookup) {
  CentralServer server;
  Rng rng(9);
  IndexEntry e;
  e.holder = 4;
  e.item_id = 7;
  e.key = Key("0101");
  e.version = 1;
  server.Publish(e);
  CentralLookupResult r = server.Lookup(Key("0101"), &rng);
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].holder, 4u);
  EXPECT_FALSE(server.Lookup(Key("1111"), &rng).found);
}

TEST(CentralServerTest, PrefixOverlapLookup) {
  CentralServer server;
  Rng rng(10);
  IndexEntry e;
  e.holder = 1;
  e.item_id = 1;
  e.key = Key("0101");
  server.Publish(e);
  // Shorter query overlapping the stored key still matches.
  EXPECT_TRUE(server.Lookup(Key("01"), &rng).found);
  EXPECT_FALSE(server.Lookup(Key("00"), &rng).found);
}

TEST(CentralServerTest, StorageGrowsLinearlyInItems) {
  CentralServer server(3);
  Rng rng(11);
  for (ItemId i = 0; i < 100; ++i) {
    IndexEntry e;
    e.holder = 0;
    e.item_id = i;
    e.key = KeyPath::Random(&rng, 8);
    server.Publish(e);
  }
  EXPECT_EQ(server.StoragePerReplica(), 100u);
  EXPECT_EQ(server.TotalStorage(), 300u);
}

TEST(CentralServerTest, LoadGrowsWithQueriesAndSpreadsOverReplicas) {
  CentralServer server(4);
  Rng rng(12);
  IndexEntry e;
  e.holder = 0;
  e.item_id = 1;
  e.key = Key("0");
  server.Publish(e);
  for (int i = 0; i < 4000; ++i) server.Lookup(Key("0"), &rng);
  EXPECT_EQ(server.TotalLoad(), 4000u);
  for (uint64_t load : server.LoadPerReplica()) {
    EXPECT_NEAR(static_cast<double>(load), 1000.0, 150.0);
  }
}

}  // namespace
}  // namespace pgrid
