// Shared helpers for core-module tests: building converged grids with one call.

#pragma once

#include <memory>

#include "core/exchange.h"
#include "core/grid.h"
#include "core/grid_builder.h"
#include "key/key_path.h"
#include "sim/meeting_scheduler.h"
#include "util/rng.h"

namespace pgrid {
namespace testing_util {

/// A grid built to convergence plus everything needed to keep operating on it.
struct BuiltGrid {
  ExchangeConfig config;
  std::unique_ptr<Grid> grid;
  std::unique_ptr<Rng> rng;
  BuildReport report;
};

/// Builds a grid of `num_peers` to 99% of maxl average depth (fully online).
inline BuiltGrid Build(size_t num_peers, size_t maxl, size_t refmax, size_t recmax,
                       uint64_t seed, bool manage_data = true,
                       uint64_t max_meetings = 20'000'000) {
  BuiltGrid out;
  out.config.maxl = maxl;
  out.config.refmax = refmax;
  out.config.recmax = recmax;
  out.config.recursion_fanout = 2;
  out.config.manage_data = manage_data;
  out.grid = std::make_unique<Grid>(num_peers);
  out.rng = std::make_unique<Rng>(seed);
  ExchangeEngine exchange(out.grid.get(), out.config, out.rng.get());
  MeetingScheduler scheduler(num_peers);
  GridBuilder builder(out.grid.get(), &exchange, &scheduler, out.rng.get());
  out.report = builder.BuildToFractionOfMaxDepth(0.99, max_meetings);
  return out;
}

/// Parses a key path literal; the input must be valid.
inline KeyPath Key(const char* bits) { return KeyPath::FromString(bits).value(); }

}  // namespace testing_util
}  // namespace pgrid
