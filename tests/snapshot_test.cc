#include "snapshot/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/search.h"
#include "core/stats.h"
#include "tests/test_util.h"
#include "workload/corpus.h"
#include "workload/key_generator.h"

namespace pgrid {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  auto built = testing_util::Build(128, 4, 3, 2, 1);
  Rng rng(2);
  KeyGenerator gen(KeyGenerator::Mode::kUniform, 8);
  std::vector<PeerId> holders;
  auto corpus = MakeCorpus(50, 128, gen, &rng, &holders);
  SeedGridPerfectly(built.grid.get(), corpus, holders);

  const std::string path = TempPath("roundtrip.pgrid");
  ASSERT_TRUE(SaveGrid(*built.grid, built.config, path).ok());
  auto loaded = LoadGrid(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  ASSERT_EQ(loaded->grid->size(), built.grid->size());
  EXPECT_EQ(loaded->config.maxl, built.config.maxl);
  EXPECT_EQ(loaded->config.refmax, built.config.refmax);
  EXPECT_EQ(loaded->config.recmax, built.config.recmax);
  EXPECT_DOUBLE_EQ(loaded->grid->AveragePathLength(),
                   built.grid->AveragePathLength());
  for (PeerId p = 0; p < built.grid->size(); ++p) {
    const PeerState& a = built.grid->peer(p);
    const PeerState& b = loaded->grid->peer(p);
    EXPECT_EQ(a.path(), b.path());
    for (size_t level = 1; level <= a.depth(); ++level) {
      EXPECT_EQ(a.RefsAt(level), b.RefsAt(level));
    }
    EXPECT_EQ(a.buddies(), b.buddies());
    EXPECT_EQ(a.index().size(), b.index().size());
    for (const IndexEntry& e : a.index().All()) {
      const IndexEntry* other = b.index().Find(e.holder, e.item_id);
      ASSERT_NE(other, nullptr);
      EXPECT_EQ(*other, e);
    }
    EXPECT_EQ(a.foreign_entries().size(), b.foreign_entries().size());
  }
  Status inv = GridStats::CheckInvariants(*loaded->grid, loaded->config);
  EXPECT_TRUE(inv.ok()) << inv;
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadedGridAnswersQueries) {
  auto built = testing_util::Build(128, 4, 2, 2, 3);
  const std::string path = TempPath("queryable.pgrid");
  ASSERT_TRUE(SaveGrid(*built.grid, built.config, path).ok());
  auto loaded = LoadGrid(path);
  ASSERT_TRUE(loaded.ok());
  Rng rng(4);
  SearchEngine search(loaded->grid.get(), nullptr, &rng);
  for (int t = 0; t < 100; ++t) {
    QueryResult r = search.Query(static_cast<PeerId>(rng.UniformIndex(128)),
                                 KeyPath::Random(&rng, 4));
    EXPECT_TRUE(r.found);
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadGrid("/nonexistent/dir/x.pgrid").status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotTest, GarbageFileIsRejected) {
  const std::string path = TempPath("garbage.pgrid");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a snapshot at all, definitely";
  }
  EXPECT_EQ(LoadGrid(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SnapshotTest, BitFlipFailsChecksum) {
  auto built = testing_util::Build(64, 3, 2, 2, 5);
  const std::string path = TempPath("corrupt.pgrid");
  ASSERT_TRUE(SaveGrid(*built.grid, built.config, path).ok());
  // Flip one byte in the middle.
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x40);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  Status s = LoadGrid(path).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncatedFileIsRejected) {
  auto built = testing_util::Build(64, 3, 2, 2, 7);
  const std::string path = TempPath("truncated.pgrid");
  ASSERT_TRUE(SaveGrid(*built.grid, built.config, path).ok());
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }
  EXPECT_FALSE(LoadGrid(path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, EmptyGridRoundTrips) {
  Grid grid(4);
  ExchangeConfig config;
  const std::string path = TempPath("empty.pgrid");
  ASSERT_TRUE(SaveGrid(grid, config, path).ok());
  auto loaded = LoadGrid(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->grid->size(), 4u);
  for (PeerId p = 0; p < 4; ++p) {
    EXPECT_TRUE(loaded->grid->peer(p).path().empty());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pgrid
