#include "storage/data_store.h"

#include <gtest/gtest.h>

namespace pgrid {
namespace {

DataItem Item(ItemId id, const std::string& key, uint64_t version = 1) {
  DataItem item;
  item.id = id;
  item.key = KeyPath::FromString(key).value();
  item.payload = "payload-" + std::to_string(id);
  item.version = version;
  return item;
}

TEST(DataStoreTest, PutAndGet) {
  DataStore store;
  ASSERT_TRUE(store.Put(Item(1, "0101")).ok());
  const DataItem* got = store.Get(1);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->key.ToString(), "0101");
  EXPECT_EQ(got->payload, "payload-1");
  EXPECT_EQ(store.Get(2), nullptr);
}

TEST(DataStoreTest, PutRejectsDuplicates) {
  DataStore store;
  ASSERT_TRUE(store.Put(Item(1, "00")).ok());
  Status s = store.Put(Item(1, "11"));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store.Get(1)->key.ToString(), "00");  // original untouched
}

TEST(DataStoreTest, UpsertReplaces) {
  DataStore store;
  store.Upsert(Item(1, "00", 1));
  store.Upsert(Item(1, "00", 5));
  EXPECT_EQ(store.Get(1)->version, 5u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(DataStoreTest, ApplyVersionOnlyMovesForward) {
  DataStore store;
  store.Upsert(Item(1, "01", 3));
  ASSERT_TRUE(store.ApplyVersion(1, 5).ok());
  EXPECT_EQ(store.Get(1)->version, 5u);
  ASSERT_TRUE(store.ApplyVersion(1, 2).ok());  // stale: ignored
  EXPECT_EQ(store.Get(1)->version, 5u);
  EXPECT_EQ(store.ApplyVersion(99, 1).code(), StatusCode::kNotFound);
}

TEST(DataStoreTest, Remove) {
  DataStore store;
  store.Upsert(Item(1, "0"));
  EXPECT_TRUE(store.Remove(1));
  EXPECT_FALSE(store.Remove(1));
  EXPECT_TRUE(store.empty());
}

TEST(DataStoreTest, FindByKeyPrefix) {
  DataStore store;
  store.Upsert(Item(1, "0000"));
  store.Upsert(Item(2, "0011"));
  store.Upsert(Item(3, "1100"));
  auto zero = store.FindByKeyPrefix(KeyPath::FromString("00").value());
  EXPECT_EQ(zero.size(), 2u);
  auto one = store.FindByKeyPrefix(KeyPath::FromString("1").value());
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0]->id, 3u);
  auto all = store.FindByKeyPrefix(KeyPath());
  EXPECT_EQ(all.size(), 3u);
}

TEST(DataStoreTest, IterationVisitsEverything) {
  DataStore store;
  store.Upsert(Item(1, "0"));
  store.Upsert(Item(2, "1"));
  size_t n = 0;
  for (const auto& [id, item] : store) {
    EXPECT_EQ(id, item.id);
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

}  // namespace
}  // namespace pgrid
