// PhaseProfiler: the per-lane fork/join event buffers behind the builder's
// wave accounting and the query driver's busy tracking. The contract under
// test: single-writer-per-lane recording with exact overflow accounting,
// epoch-scoped drains, and deterministic collapsed-stack output.

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace pgrid {
namespace obs {
namespace {

TEST(PhaseProfilerTest, RegistersPhasesAndRecordsPerLane) {
  PhaseProfiler prof(/*lanes=*/2);
  const int exchange = prof.RegisterPhase("exchange");
  const int merge = prof.RegisterPhase("merge");
  EXPECT_NE(exchange, merge);
  ASSERT_EQ(prof.phase_names().size(), 2u);
  EXPECT_EQ(prof.phase_names()[static_cast<size_t>(exchange)], "exchange");
  EXPECT_EQ(prof.phase_names()[static_cast<size_t>(merge)], "merge");

  prof.Record(0, exchange, /*start_ns=*/10, /*dur_ns=*/5, /*tag=*/1);
  prof.Record(1, exchange, 12, 7, 1);
  prof.Record(1, merge, 20, 3, 2);

  std::vector<PhaseProfiler::Event> lane0 = prof.DrainLane(0);
  ASSERT_EQ(lane0.size(), 1u);
  EXPECT_EQ(lane0[0].phase, exchange);
  EXPECT_EQ(lane0[0].start_ns, 10u);
  EXPECT_EQ(lane0[0].dur_ns, 5u);
  EXPECT_EQ(lane0[0].tag, 1u);
  std::vector<PhaseProfiler::Event> lane1 = prof.DrainLane(1);
  ASSERT_EQ(lane1.size(), 2u);
  EXPECT_EQ(lane1[1].phase, merge);
}

TEST(PhaseProfilerTest, DrainEndsTheEpoch) {
  PhaseProfiler prof(1);
  const int phase = prof.RegisterPhase("p");
  prof.Record(0, phase, 1, 1);
  EXPECT_EQ(prof.DrainLane(0).size(), 1u);
  EXPECT_TRUE(prof.DrainLane(0).empty());  // second drain: epoch already ended
  prof.Record(0, phase, 2, 2);             // next epoch records fresh
  EXPECT_EQ(prof.DrainLane(0).size(), 1u);
}

TEST(PhaseProfilerTest, OverflowIsCountedNotStored) {
  PhaseProfiler prof(/*lanes=*/2, /*capacity_per_lane=*/4);
  const int phase = prof.RegisterPhase("p");
  for (uint64_t i = 0; i < 10; ++i) prof.Record(0, phase, i, 1);
  prof.Record(1, phase, 0, 1);  // other lane unaffected by lane 0's overflow
  EXPECT_EQ(prof.dropped(), 6u);
  EXPECT_EQ(prof.DrainLane(0).size(), 4u);
  EXPECT_EQ(prof.DrainLane(1).size(), 1u);
  // Draining frees capacity for the next epoch, but dropped() is cumulative.
  prof.Record(0, phase, 0, 1);
  EXPECT_EQ(prof.DrainLane(0).size(), 1u);
  EXPECT_EQ(prof.dropped(), 6u);
}

TEST(PhaseProfilerTest, ConcurrentLanesRecordWithoutInterference) {
  // The fork/join shape: one writer thread per lane, drained after the join.
  constexpr size_t kLanes = 4;
  constexpr uint64_t kPerLane = 5000;
  PhaseProfiler prof(kLanes, /*capacity_per_lane=*/kPerLane);
  const int phase = prof.RegisterPhase("work");
  std::vector<std::thread> workers;
  for (size_t lane = 0; lane < kLanes; ++lane) {
    workers.emplace_back([&prof, phase, lane]() {
      for (uint64_t i = 0; i < kPerLane; ++i) {
        prof.Record(lane, phase, i, 1, /*tag=*/lane);
      }
    });
  }
  for (std::thread& w : workers) w.join();  // the barrier the contract needs
  std::vector<std::vector<PhaseProfiler::Event>> all = prof.DrainAll();
  ASSERT_EQ(all.size(), kLanes);
  for (size_t lane = 0; lane < kLanes; ++lane) {
    ASSERT_EQ(all[lane].size(), kPerLane) << "lane " << lane;
    for (const PhaseProfiler::Event& e : all[lane]) {
      EXPECT_EQ(e.tag, lane);  // no cross-lane bleed
    }
  }
  EXPECT_EQ(prof.dropped(), 0u);
}

TEST(CollapsedStacksTest, AccumulatesAndSortsDeterministically) {
  CollapsedStacks a;
  a.Add("build;wave_run;lane0;busy", 10);
  a.Add("build;serial;schedule", 5);
  a.Add("build;wave_run;lane0;busy", 7);  // accumulates into one line

  CollapsedStacks b;  // same content, different insertion order
  b.Add("build;serial;schedule", 5);
  b.Add("build;wave_run;lane0;busy", 17);

  const std::string text = a.ToString();
  EXPECT_EQ(text, b.ToString());
  EXPECT_NE(text.find("build;wave_run;lane0;busy 17"), std::string::npos);
  EXPECT_NE(text.find("build;serial;schedule 5"), std::string::npos);
  // Sorted by stack: "serial" line precedes "wave_run".
  EXPECT_LT(text.find("build;serial;schedule"),
            text.find("build;wave_run;lane0;busy"));
}

}  // namespace
}  // namespace obs
}  // namespace pgrid
