#include "util/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace pgrid {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ValueOrFallsBackOnError) {
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(err.value_or(7), 7);
  Result<int> ok(3);
  EXPECT_EQ(ok.value_or(7), 3);
}

TEST(ResultTest, MoveOnlyValueCanBeExtracted) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1, 2});
  r->push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  PGRID_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = DoublePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err = DoublePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultDeathTest, AccessingErrorValueAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH({ (void)r.value(); }, "PGRID_CHECK failed");
}

TEST(ResultDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH({ Result<int> r{Status::OK()}; (void)r; }, "PGRID_CHECK failed");
}

}  // namespace
}  // namespace pgrid
