#include "net/protocol.h"

#include <gtest/gtest.h>

namespace pgrid {
namespace net {
namespace {

KeyPath P(const char* bits) { return KeyPath::FromString(bits).value(); }

WireEntry Entry(const std::string& holder, uint64_t id, const char* key,
                uint64_t version = 1) {
  WireEntry e;
  e.holder = holder;
  e.item_id = id;
  e.key = P(key);
  e.version = version;
  return e;
}

TEST(ProtocolTest, PingPong) {
  EXPECT_EQ(PeekType(EncodePing()).value(), MsgType::kPing);
  EXPECT_EQ(PeekType(EncodePong()).value(), MsgType::kPong);
}

TEST(ProtocolTest, PeekTypeRejectsGarbage) {
  EXPECT_FALSE(PeekType("").ok());
  EXPECT_FALSE(PeekType(std::string(1, '\x63')).ok());
  EXPECT_FALSE(PeekType(std::string(1, '\x00')).ok());
}

TEST(ProtocolTest, ErrorRoundTrip) {
  std::string bytes = EncodeError("something broke");
  EXPECT_EQ(PeekType(bytes).value(), MsgType::kError);
  EXPECT_EQ(DecodeError(bytes).value(), "something broke");
}

TEST(ProtocolTest, QueryRequestRoundTrip) {
  QueryRequest m;
  m.key = P("10110");
  m.consumed = 3;
  auto back = DecodeQueryRequest(EncodeQueryRequest(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->key, m.key);
  EXPECT_EQ(back->consumed, 3u);
}

TEST(ProtocolTest, QueryResponsesRoundTrip) {
  QueryResponseFound found;
  found.responder = "host:1";
  found.entries = {Entry("host:2", 9, "0101", 4), Entry("host:3", 10, "01")};
  auto f = DecodeQueryResponseFound(EncodeQueryResponseFound(found));
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->responder, "host:1");
  EXPECT_EQ(f->entries, found.entries);

  QueryResponseForward fwd;
  fwd.consumed = 2;
  fwd.remaining = P("110");
  fwd.candidates = {"a:1", "b:2", "c:3"};
  auto g = DecodeQueryResponseForward(EncodeQueryResponseForward(fwd));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->consumed, 2u);
  EXPECT_EQ(g->remaining, fwd.remaining);
  EXPECT_EQ(g->candidates, fwd.candidates);

  EXPECT_EQ(PeekType(EncodeQueryResponseMiss()).value(), MsgType::kQueryRespMiss);
}

TEST(ProtocolTest, PublishRoundTrip) {
  PublishRequest m;
  m.entry = Entry("h:1", 5, "111", 2);
  m.forward_to_buddies = 1;
  auto back = DecodePublishRequest(EncodePublishRequest(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->entry, m.entry);
  EXPECT_EQ(back->forward_to_buddies, 1);

  PublishAck ack;
  ack.installed = 1;
  ack.buddies_notified = 7;
  auto a = DecodePublishAck(EncodePublishAck(ack));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->installed, 1);
  EXPECT_EQ(a->buddies_notified, 7u);
}

TEST(ProtocolTest, ExchangeRequestRoundTrip) {
  ExchangeRequest m;
  m.initiator = "me:9";
  m.epoch = 42;
  m.path = P("0110");
  m.refs = {WireRefLevel{1, {"a:1"}}, WireRefLevel{2, {"b:2", "c:3"}},
            WireRefLevel{3, {}}, WireRefLevel{4, {"d:4"}}};
  m.depth = 2;
  auto back = DecodeExchangeRequest(EncodeExchangeRequest(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->initiator, "me:9");
  EXPECT_EQ(back->epoch, 42u);
  EXPECT_EQ(back->path, m.path);
  EXPECT_EQ(back->refs, m.refs);
  EXPECT_EQ(back->depth, 2u);
}

TEST(ProtocolTest, ExchangeResponseRoundTrip) {
  ExchangeResponse m;
  m.epoch = 9;
  m.append_bits = P("1");
  m.ref_updates = {WireRefLevel{3, {"x:1", "y:2"}}};
  m.referrals = {"r:1", "r:2"};
  m.buddy = 1;
  m.entries = {Entry("h:5", 77, "0110011", 3)};
  auto back = DecodeExchangeResponse(EncodeExchangeResponse(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->epoch, 9u);
  EXPECT_EQ(back->append_bits, m.append_bits);
  EXPECT_EQ(back->ref_updates, m.ref_updates);
  EXPECT_EQ(back->referrals, m.referrals);
  EXPECT_EQ(back->buddy, 1);
  EXPECT_EQ(back->entries, m.entries);
}

TEST(ProtocolTest, EntryPushRoundTrip) {
  EntryPushRequest m;
  m.entries = {Entry("h:1", 1, "0"), Entry("h:2", 2, "1")};
  auto back = DecodeEntryPushRequest(EncodeEntryPushRequest(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->entries, m.entries);

  EntryPushResponse r;
  r.rejected = {Entry("h:1", 1, "0")};
  auto rb = DecodeEntryPushResponse(EncodeEntryPushResponse(r));
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb->rejected, r.rejected);
}

TEST(ProtocolTest, CommitRoundTrip) {
  CommitRequest m;
  m.level = 7;
  m.bit = 1;
  auto back = DecodeCommitRequest(EncodeCommitRequest(m));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->level, 7u);
  EXPECT_EQ(back->bit, 1);
  EXPECT_EQ(PeekType(EncodeCommitAck()).value(), MsgType::kCommitAck);
}

TEST(ProtocolTest, ProbeRoundTrip) {
  EXPECT_EQ(PeekType(EncodeProbeRequest()).value(), MsgType::kProbeReq);

  ProbeResponse m;
  m.path = P("0110");
  m.entry_count = 42;
  m.index_digest = 0xdeadbeefcafef00dull;
  const std::string wire = EncodeProbeResponse(m);
  EXPECT_EQ(PeekType(wire).value(), MsgType::kProbeResp);
  auto back = DecodeProbeResponse(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->path, m.path);
  EXPECT_EQ(back->entry_count, 42u);
  EXPECT_EQ(back->index_digest, 0xdeadbeefcafef00dull);
  // Empty path (a peer that has not specialized yet) round-trips too.
  auto fresh = DecodeProbeResponse(EncodeProbeResponse(ProbeResponse{}));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->path.length(), 0u);
  // Truncations never decode.
  for (size_t cut = 1; cut + 1 < wire.size(); ++cut) {
    EXPECT_FALSE(DecodeProbeResponse(wire.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(ProtocolTest, DecodingWrongTypeFails) {
  EXPECT_FALSE(DecodeQueryRequest(EncodePing()).ok());
  EXPECT_FALSE(DecodeExchangeRequest(EncodeQueryRequest(QueryRequest{})).ok());
  EXPECT_FALSE(DecodePublishAck(EncodeError("x")).ok());
  EXPECT_FALSE(DecodeProbeResponse(EncodeProbeRequest()).ok());
}

TEST(ProtocolTest, DecodingTruncatedMessagesFails) {
  std::string full = EncodeExchangeRequest(ExchangeRequest{
      "a:1", 1, P("01"), {WireRefLevel{1, {"b:2"}}}, 0});
  for (size_t cut = 1; cut + 1 < full.size(); cut += 3) {
    EXPECT_FALSE(DecodeExchangeRequest(full.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(ProtocolTest, TracedEnvelopeRoundTrip) {
  QueryRequest q;
  q.key = P("10110");
  q.consumed = 2;
  obs::TraceContext ctx{/*trace_id=*/0xDEAD, /*parent_span=*/0xBEEF,
                        /*depth=*/3};
  const std::string bytes = EncodeTraced(ctx, EncodeQueryRequest(q));
  EXPECT_EQ(PeekType(bytes).value(), MsgType::kTraced);

  Result<TracedEnvelope> env = DecodeTraced(bytes);
  ASSERT_TRUE(env.ok()) << env.status().message();
  EXPECT_EQ(env->ctx.trace_id, 0xDEADu);
  EXPECT_EQ(env->ctx.parent_span, 0xBEEFu);
  EXPECT_EQ(env->ctx.depth, 3u);
  // The inner message survives byte for byte and decodes as if it arrived bare.
  EXPECT_EQ(env->inner, EncodeQueryRequest(q));
  Result<QueryRequest> inner = DecodeQueryRequest(env->inner);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner->key, q.key);
  EXPECT_EQ(inner->consumed, 2u);
}

TEST(ProtocolTest, TracedEnvelopeWrapsEveryRequestShape) {
  // The envelope appends the inner message raw (no length prefix), so wrapping
  // must work for any request, including ones with nested collections.
  ExchangeRequest ex{"a:1", 1, P("01"), {WireRefLevel{1, {"b:2", "c:3"}}}, 0};
  obs::TraceContext ctx{7, 7, 0};
  for (const std::string& inner :
       {EncodePing(), EncodeProbeRequest(), EncodeStatsRequest(),
        EncodeExchangeRequest(ex)}) {
    Result<TracedEnvelope> env = DecodeTraced(EncodeTraced(ctx, inner));
    ASSERT_TRUE(env.ok()) << env.status().message();
    EXPECT_EQ(env->inner, inner);
  }
}

TEST(ProtocolTest, TracedEnvelopeRejectsMalformedInput) {
  const obs::TraceContext ctx{5, 5, 0};
  const std::string ping = EncodePing();

  // Zero trace id: a default (invalid) context must never reach the wire.
  EXPECT_FALSE(DecodeTraced(EncodeTraced(obs::TraceContext{}, ping)).ok());
  // Empty inner message.
  EXPECT_FALSE(DecodeTraced(EncodeTraced(ctx, "")).ok());
  // Nested envelope: one level only, recursion is refused.
  EXPECT_FALSE(DecodeTraced(EncodeTraced(ctx, EncodeTraced(ctx, ping))).ok());
  // Inner bytes with a garbage tag.
  EXPECT_FALSE(DecodeTraced(EncodeTraced(ctx, std::string(1, '\x63'))).ok());
  // Nonzero reserved word: flip the reserved u32 (the 4 bytes before the inner
  // message starts) in an otherwise valid envelope.
  std::string bytes = EncodeTraced(ctx, ping);
  const size_t inner_start = bytes.size() - ping.size();
  bytes[inner_start - 1] = '\x01';
  EXPECT_FALSE(DecodeTraced(bytes).ok());
  // Truncated at every prefix length.
  const std::string full = EncodeTraced(ctx, ping);
  for (size_t cut = 1; cut + 1 < full.size(); ++cut) {
    EXPECT_FALSE(DecodeTraced(full.substr(0, cut)).ok()) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace net
}  // namespace pgrid
