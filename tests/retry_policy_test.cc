// RetryPolicy: exact backoff arithmetic for a fixed seed, deadline enforcement
// over the virtual backoff clock, budget accounting across calls, and the
// retry loop against scripted transport faults.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/fault_transport.h"
#include "net/inproc_transport.h"
#include "net/retry.h"

namespace pgrid {
namespace net {
namespace {

RpcTransport::Handler Echo() {
  return [](const std::string& from, const std::string& req) {
    return from + "|" + req;
  };
}

/// A no-sleep config suitable for deterministic tests.
RetryConfig TestConfig(size_t attempts) {
  RetryConfig config;
  config.max_attempts = attempts;
  config.initial_backoff_ms = 10;
  config.backoff_multiplier = 2.0;
  config.max_backoff_ms = 80;
  config.sleep_between_attempts = false;
  return config;
}

TEST(RetryConfigTest, ValidateRejectsBadKnobs) {
  RetryConfig config;
  config.max_attempts = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = RetryConfig{};
  config.backoff_multiplier = 0.5;
  EXPECT_FALSE(config.Validate().ok());
  config = RetryConfig{};
  config.jitter = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(RetryConfig{}.Validate().ok());
}

TEST(RetryPolicyTest, BackoffSequenceIsExactWithoutJitter) {
  RetryPolicy policy(TestConfig(10), /*seed=*/1);
  std::vector<uint64_t> got;
  for (size_t k = 0; k < 6; ++k) got.push_back(policy.NextBackoffMs(k));
  EXPECT_EQ(got, (std::vector<uint64_t>{10, 20, 40, 80, 80, 80}));  // capped at 80
}

TEST(RetryPolicyTest, JitteredBackoffIsSeedDeterministic) {
  RetryConfig config = TestConfig(10);
  config.jitter = 0.5;
  auto sequence = [&config](uint64_t seed) {
    RetryPolicy policy(config, seed);
    std::vector<uint64_t> out;
    for (size_t k = 0; k < 8; ++k) out.push_back(policy.NextBackoffMs(k));
    return out;
  };
  EXPECT_EQ(sequence(9), sequence(9));    // same seed, same exact sequence
  EXPECT_NE(sequence(9), sequence(10));   // different seed, different draws
  // Jitter only ever shaves off: every value within [backoff/2, backoff].
  RetryPolicy policy(config, 9);
  for (size_t k = 0; k < 8; ++k) {
    const uint64_t full = std::min<uint64_t>(80, 10u << k);
    const uint64_t b = policy.NextBackoffMs(k);
    EXPECT_GE(b, full / 2);
    EXPECT_LE(b, full);
  }
}

TEST(RetryPolicyTest, RetriesThroughTransientDrops) {
  InProcTransport transport;
  ASSERT_TRUE(transport.Serve("a", Echo()).ok());
  transport.faults().DropFirst("a", 2);
  RetryPolicy policy(TestConfig(4), 1);
  auto r = policy.Call(&transport, "a", "me", "hello");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, "me|hello");
  EXPECT_EQ(policy.retries(), 2u);  // exactly the scripted drops
  EXPECT_EQ(policy.exhausted(), 0u);
}

TEST(RetryPolicyTest, ExhaustsBoundedAttempts) {
  InProcTransport transport;
  ASSERT_TRUE(transport.Serve("a", Echo()).ok());
  transport.faults().DropFirst("a", 100);
  RetryPolicy policy(TestConfig(3), 1);
  auto r = policy.Call(&transport, "a", "me", "hello");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());  // the last transport error, verbatim
  EXPECT_EQ(policy.retries(), 2u);          // 3 attempts = 2 retries
  EXPECT_EQ(policy.exhausted(), 1u);
}

TEST(RetryPolicyTest, NonRetryableErrorsAreNotRetried) {
  InProcTransport transport;
  ASSERT_TRUE(transport.Serve("a", Echo()).ok());
  FaultRule rule;
  rule.to = "a";
  rule.action = FaultAction::kError;
  rule.error_code = StatusCode::kResourceExhausted;
  transport.faults().AddRule(rule);
  RetryPolicy policy(TestConfig(5), 1);
  auto r = policy.Call(&transport, "a", "me", "hello");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(policy.retries(), 0u);  // the peer answered; retrying cannot help
}

TEST(RetryPolicyTest, DeadlineCapsTotalBackoffTime) {
  InProcTransport transport;
  ASSERT_TRUE(transport.Serve("a", Echo()).ok());
  transport.faults().DropFirst("a", 100);
  RetryConfig config = TestConfig(10);
  config.deadline_ms = 25;  // allows the 10 ms backoff, not 10 + 20
  RetryPolicy policy(config, 1);
  auto r = policy.Call(&transport, "a", "me", "hello");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(policy.retries(), 1u);
  EXPECT_EQ(policy.deadline_exceeded(), 1u);
}

TEST(RetryPolicyTest, BudgetIsSharedAcrossCalls) {
  InProcTransport transport;
  ASSERT_TRUE(transport.Serve("a", Echo()).ok());
  transport.faults().DropFirst("a", 100);
  RetryConfig config = TestConfig(3);
  config.retry_budget = 3;
  RetryPolicy policy(config, 1);
  // First call: 3 attempts, 2 retries spent from the budget.
  EXPECT_FALSE(policy.Call(&transport, "a", "me", "x").ok());
  EXPECT_EQ(policy.retries(), 2u);
  // Second call: only 1 budget unit left; the call stops after spending it.
  EXPECT_FALSE(policy.Call(&transport, "a", "me", "y").ok());
  EXPECT_EQ(policy.retries(), 3u);
  EXPECT_EQ(policy.metrics().GetCounter("rpc.retry_budget_exhausted")->value(), 1u);
  // Third call: no budget at all -- single shot.
  EXPECT_FALSE(policy.Call(&transport, "a", "me", "z").ok());
  EXPECT_EQ(policy.retries(), 3u);
}

TEST(RetryPolicyTest, SingleAttemptMatchesBareTransportCall) {
  InProcTransport transport;
  ASSERT_TRUE(transport.Serve("a", Echo()).ok());
  transport.faults().DropFirst("a", 1);
  RetryPolicy policy(TestConfig(1), 1);  // the library default: no retries
  EXPECT_TRUE(policy.Call(&transport, "a", "me", "x").status().IsUnavailable());
  EXPECT_EQ(policy.retries(), 0u);
  EXPECT_EQ(policy.exhausted(), 0u);  // nothing was retried, nothing exhausted
  EXPECT_TRUE(policy.Call(&transport, "a", "me", "x").ok());
}

TEST(RetryPolicyTest, BackoffHistogramRecordsEachWait) {
  InProcTransport transport;
  ASSERT_TRUE(transport.Serve("a", Echo()).ok());
  transport.faults().DropFirst("a", 3);
  RetryPolicy policy(TestConfig(4), 1);
  ASSERT_TRUE(policy.Call(&transport, "a", "me", "x").ok());
  obs::Histogram* h =
      policy.metrics().GetHistogram("rpc.retry_backoff_ms", obs::BackoffBoundsMs());
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 10u + 20u + 40u);
}

}  // namespace
}  // namespace net
}  // namespace pgrid
