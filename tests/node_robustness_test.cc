// Adversarial and concurrency tests for the networked node: malformed input must
// produce error responses (never crashes or hangs), and concurrent operations over
// real sockets must keep the node's state consistent.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "net/inproc_transport.h"
#include "net/node.h"
#include "net/tcp_transport.h"

namespace pgrid {
namespace net {
namespace {

TEST(NodeRobustnessTest, GarbageBytesGetErrorResponses) {
  InProcTransport transport;
  NodeConfig config;
  PGridNode node("node:0", &transport, config, 1);
  ASSERT_TRUE(node.Start().ok());

  Rng rng(7);
  for (int t = 0; t < 500; ++t) {
    std::string garbage;
    const size_t len = rng.UniformInt(0, 64);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    auto response = transport.Call("node:0", "fuzzer", garbage);
    ASSERT_TRUE(response.ok());  // the transport delivered; the node must answer
    // Whatever came back must itself be decodable as *some* message type (usually
    // kError) -- the node never responds with garbage of its own.
    if (!response->empty()) {
      EXPECT_TRUE(PeekType(*response).ok())
          << "undecodable response to fuzz input of length " << len;
    }
  }
  // The node is still alive and functional.
  EXPECT_EQ(transport.Call("node:0", "x", EncodePing()).value(), EncodePong());
}

TEST(NodeRobustnessTest, TruncatedProtocolMessagesAreRejected) {
  InProcTransport transport;
  NodeConfig config;
  PGridNode node("node:0", &transport, config, 2);
  ASSERT_TRUE(node.Start().ok());

  ExchangeRequest req;
  req.initiator = "node:1";
  req.path = KeyPath::FromString("0110").value();
  req.refs = {WireRefLevel{1, {"node:2"}}};
  const std::string full = EncodeExchangeRequest(req);
  for (size_t cut = 1; cut < full.size(); ++cut) {
    auto response = transport.Call("node:0", "node:1", full.substr(0, cut));
    ASSERT_TRUE(response.ok());
    auto type = PeekType(*response);
    // Either an explicit error or (at cut == 1, a bare valid tag) some decodable
    // reply; never a crash.
    if (type.ok() && *type != MsgType::kError) continue;
    ASSERT_TRUE(type.ok());
  }
  EXPECT_TRUE(node.path().empty());  // no partial state was applied
}

TEST(NodeRobustnessTest, SelfExchangeRequestIsRejected) {
  InProcTransport transport;
  NodeConfig config;
  PGridNode node("node:0", &transport, config, 3);
  ASSERT_TRUE(node.Start().ok());
  ExchangeRequest req;
  req.initiator = "node:0";  // claims to be the node itself
  auto response = transport.Call("node:0", "node:0", EncodeExchangeRequest(req));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(PeekType(*response).value(), MsgType::kError);
}

TEST(NodeRobustnessTest, OversizedAppendDirectiveIsIgnored) {
  // A malicious/buggy responder cannot push a node's path past maxl: craft the
  // situation by letting a node with depth maxl receive directives indirectly.
  // Direct unit check: apply an exchange against a peer that returns append bits
  // beyond maxl is covered by MeetWithDepth's bound; here we verify the handler
  // side never *produces* appends past maxl either.
  InProcTransport transport;
  NodeConfig config;
  config.maxl = 1;
  PGridNode a("node:a", &transport, config, 4);
  PGridNode b("node:b", &transport, config, 5);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(a.MeetWith("node:b").ok());
    ASSERT_TRUE(b.MeetWith("node:a").ok());
  }
  EXPECT_LE(a.path().length(), 1u);
  EXPECT_LE(b.path().length(), 1u);
}

TEST(NodeRobustnessTest, ConcurrentMeetingsOverTcpKeepStateConsistent) {
  TcpTransport transport;
  transport.set_timeout_ms(3000);
  NodeConfig config;
  config.maxl = 3;
  config.refmax = 3;

  std::vector<std::unique_ptr<PGridNode>> nodes;
  std::vector<std::string> addresses;
  for (int i = 0; i < 6; ++i) {
    auto probe = transport.ServeAnyPort(
        "127.0.0.1", [](const std::string&, const std::string&) { return ""; });
    ASSERT_TRUE(probe.ok());
    transport.StopServing(*probe);
    auto node = std::make_unique<PGridNode>(*probe, &transport, config, 9000 + i);
    ASSERT_TRUE(node->Start().ok());
    addresses.push_back(*probe);
    nodes.push_back(std::move(node));
  }

  // Several threads drive meetings concurrently; epochs make racing directives
  // safe to drop.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(100 + t);
      for (int m = 0; m < 60; ++m) {
        size_t a = rng.UniformIndex(nodes.size());
        size_t b = rng.UniformIndex(nodes.size());
        if (a == b) continue;
        Status s = nodes[a]->MeetWith(addresses[b]);
        if (!s.ok() && !s.IsUnavailable()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Paths stayed within bounds and reference targets diverge at the right level.
  for (const auto& node : nodes) {
    KeyPath path = node->path();
    EXPECT_LE(path.length(), 3u);
    for (size_t level = 1; level <= path.length(); ++level) {
      for (const std::string& addr : node->RefsAt(level)) {
        for (const auto& other : nodes) {
          if (other->address() != addr) continue;
          KeyPath tpath = other->path();
          if (tpath.length() >= level) {
            EXPECT_NE(tpath.bit(level - 1), path.bit(level - 1))
                << node->address() << " level " << level << " -> " << addr;
          }
        }
      }
    }
  }
  for (auto& n : nodes) n->Stop();
}

TEST(NodeRobustnessTest, NoReferenceWithoutCommit) {
  // The two-phase exchange: if the initiator never confirms its appended bit, the
  // responder must not reference it (the initiator may have discarded the
  // directive after an epoch race).
  InProcTransport transport;
  NodeConfig config;
  PGridNode node("node:0", &transport, config, 20);
  ASSERT_TRUE(node.Start().ok());
  ExchangeRequest req;
  req.initiator = "node:ghost";  // a client that will never commit
  auto raw = transport.Call("node:0", "node:ghost", EncodeExchangeRequest(req));
  ASSERT_TRUE(raw.ok());
  auto resp = DecodeExchangeResponse(*raw);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->append_bits.length(), 1u);  // case 1 directive was issued
  // The responder specialized itself but holds no reference to the ghost.
  EXPECT_EQ(node.path().length(), 1u);
  EXPECT_TRUE(node.RefsAt(1).empty());
}

TEST(NodeRobustnessTest, CommitInstallsValidatedReference) {
  InProcTransport transport;
  NodeConfig config;
  PGridNode node("node:0", &transport, config, 21);
  ASSERT_TRUE(node.Start().ok());
  ExchangeRequest req;
  req.initiator = "node:ghost";
  auto raw = transport.Call("node:0", "node:ghost", EncodeExchangeRequest(req));
  ASSERT_TRUE(raw.ok());
  auto resp = DecodeExchangeResponse(*raw);
  ASSERT_TRUE(resp.ok());
  const uint8_t promised_bit = static_cast<uint8_t>(resp->append_bits.bit(0));

  // Committing the WRONG bit is rejected.
  CommitRequest bad;
  bad.level = 1;
  bad.bit = static_cast<uint8_t>(ComplementBit(promised_bit));
  auto bad_resp = transport.Call("node:0", "node:ghost", EncodeCommitRequest(bad));
  ASSERT_TRUE(bad_resp.ok());
  EXPECT_EQ(PeekType(*bad_resp).value(), MsgType::kError);
  EXPECT_TRUE(node.RefsAt(1).empty());

  // Committing an out-of-range level is rejected.
  CommitRequest oob;
  oob.level = 9;
  oob.bit = promised_bit;
  auto oob_resp = transport.Call("node:0", "node:ghost", EncodeCommitRequest(oob));
  ASSERT_TRUE(oob_resp.ok());
  EXPECT_EQ(PeekType(*oob_resp).value(), MsgType::kError);

  // The honest commit installs the reference.
  CommitRequest good;
  good.level = 1;
  good.bit = promised_bit;
  auto good_resp = transport.Call("node:0", "node:ghost", EncodeCommitRequest(good));
  ASSERT_TRUE(good_resp.ok());
  EXPECT_EQ(PeekType(*good_resp).value(), MsgType::kCommitAck);
  EXPECT_EQ(node.RefsAt(1), std::vector<std::string>{"node:ghost"});
}

TEST(NodeRobustnessTest, NetworkPartitionDegradesGracefullyAndHeals) {
  // Split a converged cluster into two halves that cannot reach each other; each
  // half keeps answering what it can, fails cleanly on the rest, and full service
  // returns when the partition heals.
  InProcTransport transport;
  NodeConfig config;
  config.maxl = 3;
  config.refmax = 4;
  std::vector<std::unique_ptr<PGridNode>> nodes;
  const size_t n = 24;
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<PGridNode>("node:" + std::to_string(i),
                                                &transport, config, 3000 + i));
    ASSERT_TRUE(nodes.back()->Start().ok());
  }
  Rng rng(17);
  for (int m = 0; m < 4000; ++m) {
    size_t a = rng.UniformIndex(n), b = rng.UniformIndex(n);
    if (a != b) (void)nodes[a]->MeetWith(nodes[b]->address());
  }
  DataItem item;
  item.id = 5;
  item.key = KeyPath::FromString("010101").value();
  item.version = 1;
  ASSERT_TRUE(nodes[0]->Publish(item).ok());

  // Partition: the second half becomes unreachable.
  for (size_t i = n / 2; i < n; ++i) transport.InjectOutage(nodes[i]->address());

  size_t ok = 0, clean_failures = 0;
  for (size_t i = 0; i < n / 2; ++i) {
    auto r = nodes[i]->Search(item.key);
    if (r.ok()) {
      ++ok;
    } else if (r.status().IsNotFound()) {
      ++clean_failures;  // graceful: exhausted candidates, no hang or crash
    }
  }
  EXPECT_EQ(ok + clean_failures, n / 2);

  // Heal and verify full service returns.
  for (size_t i = n / 2; i < n; ++i) transport.ClearOutage(nodes[i]->address());
  size_t healed = 0;
  for (size_t i = 0; i < n; ++i) {
    if (nodes[i]->Search(item.key).ok()) ++healed;
  }
  EXPECT_EQ(healed, n);
}

TEST(NodeRobustnessTest, EvictionNeedsConsecutiveFailuresNotOne) {
  InProcTransport transport;
  NodeConfig config;
  config.maxl = 3;
  // Level 1 is full with the single partner, so a maintenance round sends
  // exactly one outbound call (the probe) and rounds count consecutive
  // failures one by one.
  config.refmax = 1;
  ASSERT_EQ(config.suspicion_threshold, 3u);
  PGridNode a("node:a", &transport, config, 71);
  PGridNode b("node:b", &transport, config, 72);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.MeetWith("node:b").ok());
  ASSERT_EQ(a.KnownPeers().size(), 1u);

  // A flaky round (one failure, then reachable again) must not evict.
  b.Stop();
  (void)a.MaintainReferences();
  EXPECT_EQ(a.KnownPeers().size(), 1u) << "one failure is suspicion, not proof";
  ASSERT_TRUE(b.Start().ok());
  (void)a.MaintainReferences();  // success resets the streak
  EXPECT_EQ(a.KnownPeers().size(), 1u);

  // A genuinely dead peer drains out after `suspicion_threshold` consecutive
  // failed rounds -- and not a round earlier.
  b.Stop();
  (void)a.MaintainReferences();
  (void)a.MaintainReferences();
  EXPECT_EQ(a.KnownPeers().size(), 1u);
  (void)a.MaintainReferences();
  EXPECT_TRUE(a.KnownPeers().empty());
}

TEST(NodeRobustnessTest, MaintenanceEvictsDeadPeerFromEveryNeighbor) {
  // A converged cluster loses one node: maintenance rounds at the survivors
  // must drain the dead address out of all reference levels and buddy lists.
  InProcTransport transport;
  NodeConfig config;
  config.maxl = 3;
  config.refmax = 3;
  const size_t n = 12;
  std::vector<std::unique_ptr<PGridNode>> nodes;
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<PGridNode>("node:" + std::to_string(i),
                                                &transport, config, 4200 + i));
    ASSERT_TRUE(nodes.back()->Start().ok());
  }
  Rng rng(23);
  for (int m = 0; m < 3000; ++m) {
    size_t a = rng.UniformIndex(n), b = rng.UniformIndex(n);
    if (a != b) (void)nodes[a]->MeetWith(nodes[b]->address());
  }
  const std::string victim = nodes[n - 1]->address();
  nodes[n - 1]->Stop();

  for (int round = 0; round < 6; ++round) {
    for (size_t i = 0; i + 1 < n; ++i) (void)nodes[i]->MaintainReferences();
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    const auto known = nodes[i]->KnownPeers();
    EXPECT_EQ(std::count(known.begin(), known.end(), victim), 0)
        << "node " << i << " still knows the dead peer";
  }
}

TEST(NodeRobustnessTest, MaintenanceRecruitsVerifiedRefsAfterEviction) {
  // Losing a node opens gaps in its neighbors' reference levels; the targeted
  // recruitment lookups must refill them from the survivors, adopting only
  // references that satisfy the reference property.
  InProcTransport transport;
  NodeConfig config;
  config.maxl = 3;
  config.refmax = 4;
  const size_t n = 24;
  std::vector<std::unique_ptr<PGridNode>> nodes;
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<PGridNode>("node:" + std::to_string(i),
                                                &transport, config, 4200 + i));
    ASSERT_TRUE(nodes.back()->Start().ok());
  }
  Rng rng(23);
  for (int m = 0; m < 600; ++m) {
    size_t a = rng.UniformIndex(n), b = rng.UniformIndex(n);
    if (a != b) (void)nodes[a]->MeetWith(nodes[b]->address());
  }
  nodes[n - 1]->Stop();

  size_t recruited = 0;
  for (int round = 0; round < 8; ++round) {
    for (size_t i = 0; i + 1 < n; ++i) {
      recruited += nodes[i]->MaintainReferences();
    }
  }
  EXPECT_GT(recruited, 0u) << "evicted levels should refill from survivors";
  // Every reference -- pre-existing or freshly recruited -- satisfies the
  // reference property against the target's actual path.
  for (const auto& node : nodes) {
    const KeyPath path = node->path();
    for (size_t level = 1; level <= path.length(); ++level) {
      for (const std::string& addr : node->RefsAt(level)) {
        for (const auto& other : nodes) {
          if (other->address() != addr) continue;
          const KeyPath tpath = other->path();
          ASSERT_GE(tpath.length(), level) << addr;
          EXPECT_GE(path.CommonPrefixLength(tpath), level - 1);
          EXPECT_NE(tpath.bit(level - 1), path.bit(level - 1))
              << node->address() << " level " << level << " -> " << addr;
        }
      }
    }
  }
}

TEST(NodeRobustnessTest, ZeroSuspicionThresholdDisablesEviction) {
  InProcTransport transport;
  NodeConfig config;
  config.maxl = 3;
  config.refmax = 1;
  config.suspicion_threshold = 0;
  PGridNode a("node:a", &transport, config, 81);
  PGridNode b("node:b", &transport, config, 82);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.MeetWith("node:b").ok());
  b.Stop();
  for (int round = 0; round < 10; ++round) (void)a.MaintainReferences();
  EXPECT_EQ(a.KnownPeers().size(), 1u)
      << "failure detection off: references must be left alone";
}

TEST(NodeRobustnessTest, RetryRecoversScriptedDropsWithExactArithmetic) {
  // Two peers, one meeting: both specialize to depth 1 and reference each
  // other. Script "drop the first 2 calls to node:b" and check the scenario's
  // arithmetic on both sides of the retry knob.
  struct Pair {
    std::unique_ptr<InProcTransport> transport;
    std::unique_ptr<PGridNode> a, b;
  };
  auto build = [](size_t attempts) {
    Pair p;
    p.transport = std::make_unique<InProcTransport>();
    NodeConfig config;
    config.maxl = 1;
    config.retry.max_attempts = attempts;
    config.retry.initial_backoff_ms = 1;
    config.retry.sleep_between_attempts = false;
    p.a = std::make_unique<PGridNode>("node:a", p.transport.get(), config, 31);
    p.b = std::make_unique<PGridNode>("node:b", p.transport.get(), config, 32);
    EXPECT_TRUE(p.a->Start().ok());
    EXPECT_TRUE(p.b->Start().ok());
    EXPECT_TRUE(p.a->MeetWith("node:b").ok());
    EXPECT_EQ(p.a->path().length(), 1u);
    EXPECT_EQ(p.b->path().length(), 1u);
    EXPECT_EQ(p.a->RefsAt(1), std::vector<std::string>{"node:b"});
    return p;
  };

  // With retries: the two scripted drops are absorbed, the search succeeds, and
  // the counters show exactly 2 retries and no offline skip.
  {
    Pair p = build(/*attempts=*/3);
    const KeyPath target = p.b->path();  // the key b is responsible for
    ASSERT_NE(p.a->path().bit(0), target.bit(0));
    p.transport->faults().DropFirst("node:b", 2);
    auto r = p.a->Search(target);
    EXPECT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(p.a->metrics().GetCounter("rpc.retries")->value(), 2u);
    EXPECT_EQ(p.a->metrics().GetCounter("node.route_offline_skips")->value(), 0u);
    EXPECT_EQ(p.a->metrics().GetCounter("rpc.retry_exhausted")->value(), 0u);
  }

  // The no-retry baseline fails the same scenario: the single shot is dropped,
  // the only candidate is skipped as offline, routing exhausts.
  {
    Pair p = build(/*attempts=*/1);
    const KeyPath target = p.b->path();
    p.transport->faults().DropFirst("node:b", 2);
    auto r = p.a->Search(target);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsNotFound());
    EXPECT_EQ(p.a->metrics().GetCounter("rpc.retries")->value(), 0u);
    EXPECT_EQ(p.a->metrics().GetCounter("node.route_offline_skips")->value(), 1u);
  }
}

TEST(NodeRobustnessTest, TimeWindowedPartitionHealsOnSchedule) {
  // Like NetworkPartitionDegradesGracefullyAndHeals, but the partition is a
  // scheduled rule on the fault layer: it heals when the virtual clock leaves
  // the window, with no Clear* intervention.
  InProcTransport transport;
  NodeConfig config;
  config.maxl = 3;
  config.refmax = 4;
  std::vector<std::unique_ptr<PGridNode>> nodes;
  const size_t n = 16;
  std::vector<std::string> half_a, half_b;
  for (size_t i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<PGridNode>("node:" + std::to_string(i),
                                                &transport, config, 7000 + i));
    ASSERT_TRUE(nodes.back()->Start().ok());
    (i < n / 2 ? half_a : half_b).push_back(nodes.back()->address());
  }
  Rng rng(23);
  for (int m = 0; m < 3000; ++m) {
    size_t a = rng.UniformIndex(n), b = rng.UniformIndex(n);
    if (a != b) (void)nodes[a]->MeetWith(nodes[b]->address());
  }
  DataItem item;
  item.id = 9;
  item.key = KeyPath::FromString("011").value();
  item.version = 1;
  ASSERT_TRUE(nodes[0]->Publish(item).ok());

  // Partition the halves for a window starting now.
  const uint64_t now = transport.faults().virtual_now();
  transport.faults().Partition(half_a, half_b, now, now + 1'000'000);

  size_t ok = 0, clean_failures = 0;
  for (size_t i = 0; i < n / 2; ++i) {
    auto r = nodes[i]->Search(item.key);
    if (r.ok()) {
      ++ok;
    } else if (r.status().IsNotFound()) {
      ++clean_failures;
    }
  }
  EXPECT_EQ(ok + clean_failures, n / 2);  // degraded but never hung or crashed

  // The schedule runs out; service is whole again without touching the rules.
  transport.faults().AdvanceTime(2'000'000);
  size_t healed = 0;
  for (size_t i = 0; i < n; ++i) {
    if (nodes[i]->Search(item.key).ok()) ++healed;
  }
  EXPECT_EQ(healed, n);
}

TEST(NodeRobustnessTest, ChronicallySlowPeerDrainsViaProbeTimeout) {
  // Gray failure at the node layer: node:b answers every call, but slower than
  // the configured probe timeout. Slow successes feed the failure detector
  // like failures, so after `suspicion_threshold` consecutive slow calls the
  // peer drains out of the reference levels -- and node.slow_calls records
  // that they were slow deliveries, not drops.
  InProcTransport transport;
  obs::MetricsRegistry registry;
  NodeConfig config;
  config.maxl = 3;
  config.refmax = 1;
  config.probe_timeout_ms = 5;
  ASSERT_EQ(config.suspicion_threshold, 3u);
  PGridNode a("node:a", &transport, config, 91, &registry);
  PGridNode b("node:b", &transport, config, 92);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.MeetWith("node:b").ok());
  ASSERT_EQ(a.KnownPeers().size(), 1u);

  FaultRule slow;
  slow.to = "node:b";
  slow.action = FaultAction::kDelay;
  slow.delay_sleep_ms = 20;  // well past the 5ms budget
  transport.faults().AddRule(slow);

  // Two slow probes: suspected, still referenced.
  EXPECT_TRUE(a.Probe("node:b").ok());
  EXPECT_TRUE(a.Probe("node:b").ok());
  EXPECT_EQ(a.KnownPeers().size(), 1u);
  // The third crosses the threshold: evicted despite never failing a call.
  EXPECT_TRUE(a.Probe("node:b").ok());
  EXPECT_TRUE(a.KnownPeers().empty());
  EXPECT_GE(registry.GetCounter("node.slow_calls")->value(), 3u);
}

TEST(NodeRobustnessTest, EvictionCooldownShedsReferencesOneAtATime) {
  // Two peers go over the suspicion threshold in the same detection window;
  // with eviction_cooldown = 1 the node sheds only one of them per window --
  // a slow network cannot mass-evict the whole reference set at once.
  InProcTransport transport;
  NodeConfig config;
  config.maxl = 3;
  config.refmax = 4;
  config.eviction_cooldown = 1;
  ASSERT_EQ(config.suspicion_threshold, 3u);
  PGridNode a("node:a", &transport, config, 95);
  PGridNode b("node:b", &transport, config, 96);
  PGridNode c("node:c", &transport, config, 97);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(c.Start().ok());
  ASSERT_TRUE(a.MeetWith("node:b").ok());
  ASSERT_TRUE(a.MeetWith("node:c").ok());
  ASSERT_EQ(a.KnownPeers().size(), 2u);

  b.Stop();
  c.Stop();
  // Both cross the threshold on the third round of probes: the first crossing
  // evicts, the second is suppressed by the cooldown.
  for (int round = 0; round < 3; ++round) {
    (void)a.Probe("node:b");
    (void)a.Probe("node:c");
  }
  EXPECT_EQ(a.KnownPeers().size(), 1u)
      << "cooldown must shed one reference per window, not both";
  // The survivor's streak restarted; three more failed probes evict it too.
  const std::string survivor = a.KnownPeers().front();
  for (int round = 0; round < 3; ++round) (void)a.Probe(survivor);
  EXPECT_TRUE(a.KnownPeers().empty());
}

TEST(NodeRobustnessTest, EntryPushWithHostileLengthsIsRejected) {
  InProcTransport transport;
  NodeConfig config;
  PGridNode node("node:0", &transport, config, 6);
  ASSERT_TRUE(node.Start().ok());
  // Hand-craft an EntryPush claiming 2^31 entries.
  ByteWriter w;
  w.WriteU8(static_cast<uint8_t>(MsgType::kEntryPushReq));
  w.WriteU32(1u << 31);
  auto response = transport.Call("node:0", "x", w.Take());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(PeekType(*response).value(), MsgType::kError);
  EXPECT_TRUE(node.entries().empty());
}

}  // namespace
}  // namespace net
}  // namespace pgrid
