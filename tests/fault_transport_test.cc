// The fault-injection decorator: rule matching, scripted schedules, virtual
// time, duplicate delivery, determinism (a scenario is a *value*: same seed and
// call sequence imply the identical fault sequence), and full transparency when
// no rules are armed.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/fault_transport.h"
#include "net/inproc_transport.h"
#include "obs/export.h"

namespace pgrid {
namespace net {
namespace {

RpcTransport::Handler Echo() {
  return [](const std::string& from, const std::string& req) {
    return from + "|" + req;
  };
}

TEST(FaultPatternTest, GlobMatching) {
  EXPECT_TRUE(FaultPatternMatches("*", "anything:at:all"));
  EXPECT_TRUE(FaultPatternMatches("*", ""));
  EXPECT_TRUE(FaultPatternMatches("node:3", "node:3"));
  EXPECT_FALSE(FaultPatternMatches("node:3", "node:33"));
  EXPECT_TRUE(FaultPatternMatches("node:*", "node:17"));
  EXPECT_FALSE(FaultPatternMatches("node:*", "peer:17"));
  EXPECT_TRUE(FaultPatternMatches("*:7000", "127.0.0.1:7000"));
  EXPECT_FALSE(FaultPatternMatches("*:7000", "127.0.0.1:7001"));
  EXPECT_TRUE(FaultPatternMatches("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(FaultPatternMatches("a*b*c", "a-x-c-y-b"));
  EXPECT_FALSE(FaultPatternMatches("", "x"));
  EXPECT_TRUE(FaultPatternMatches("", ""));
}

TEST(FaultTransportTest, TransparentWhenNoRulesArmed) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner, /*seed=*/1);
  ASSERT_TRUE(faults.Serve("a", Echo()).ok());
  for (int i = 0; i < 50; ++i) {
    auto r = faults.Call("a", "c", "m" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(*r, "c|m" + std::to_string(i));
  }
  EXPECT_EQ(faults.delivered_calls(), 50u);
  EXPECT_EQ(faults.dropped_calls(), 0u);
  EXPECT_EQ(inner.delivered_calls(), 50u);
  faults.StopServing("a");
  EXPECT_TRUE(faults.Call("a", "c", "x").status().IsUnavailable());
}

TEST(FaultTransportTest, DropFirstNIsAScriptedSchedule) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner, 1);
  ASSERT_TRUE(faults.Serve("a", Echo()).ok());
  ASSERT_TRUE(faults.Serve("b", Echo()).ok());
  faults.DropFirst("a", 2);
  EXPECT_TRUE(faults.Call("a", "c", "1").status().IsUnavailable());
  EXPECT_TRUE(faults.Call("b", "c", "x").ok());  // other addresses unaffected
  EXPECT_TRUE(faults.Call("a", "c", "2").status().IsUnavailable());
  EXPECT_TRUE(faults.Call("a", "c", "3").ok());  // budget of 2 spent
  EXPECT_TRUE(faults.Call("a", "c", "4").ok());
  EXPECT_EQ(faults.dropped_calls(), 2u);
}

TEST(FaultTransportTest, SkipWindowFailsCallsKThroughKPlusN) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner, 1);
  ASSERT_TRUE(faults.Serve("a", Echo()).ok());
  FaultRule rule;
  rule.to = "a";
  rule.skip_matches = 1;  // let the first call through
  rule.max_matches = 2;   // then fail the next two
  faults.AddRule(rule);
  EXPECT_TRUE(faults.Call("a", "c", "1").ok());
  EXPECT_FALSE(faults.Call("a", "c", "2").ok());
  EXPECT_FALSE(faults.Call("a", "c", "3").ok());
  EXPECT_TRUE(faults.Call("a", "c", "4").ok());
}

TEST(FaultTransportTest, FromPatternSelectsCaller) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner, 1);
  ASSERT_TRUE(faults.Serve("a", Echo()).ok());
  FaultRule rule;
  rule.to = "a";
  rule.from = "evil:*";
  faults.AddRule(rule);
  EXPECT_FALSE(faults.Call("a", "evil:1", "x").ok());
  EXPECT_TRUE(faults.Call("a", "good:1", "x").ok());
}

TEST(FaultTransportTest, PartitionIsBidirectionalAndTimeWindowed) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner, 1);
  for (const char* addr : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(faults.Serve(addr, Echo()).ok());
  }
  // Partition {a,b} from {c,d} while the virtual clock is within [100, 200].
  faults.Partition({"a", "b"}, {"c", "d"}, 100, 200);

  // Before the window everything flows.
  EXPECT_TRUE(faults.Call("c", "a", "x").ok());
  EXPECT_TRUE(faults.Call("a", "d", "x").ok());

  faults.AdvanceTime(100);  // into the window
  EXPECT_FALSE(faults.Call("c", "a", "x").ok());  // a -> c cut
  EXPECT_FALSE(faults.Call("b", "d", "x").ok());  // d -> b cut (other direction)
  EXPECT_TRUE(faults.Call("b", "a", "x").ok());   // within a side: fine
  EXPECT_TRUE(faults.Call("d", "c", "x").ok());

  faults.AdvanceTime(200);  // past the window: the partition heals by schedule
  EXPECT_TRUE(faults.Call("c", "a", "x").ok());
  EXPECT_TRUE(faults.Call("b", "d", "x").ok());
}

TEST(FaultTransportTest, DelayAdvancesVirtualTime) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner, 1);
  ASSERT_TRUE(faults.Serve("a", Echo()).ok());
  FaultRule rule;
  rule.to = "a";
  rule.action = FaultAction::kDelay;
  rule.delay_units = 5;
  rule.max_matches = 1;
  faults.AddRule(rule);
  EXPECT_EQ(faults.virtual_now(), 0u);
  EXPECT_TRUE(faults.Call("a", "c", "x").ok());  // delivered, but 1 + 5 units later
  EXPECT_EQ(faults.virtual_now(), 6u);
  EXPECT_EQ(faults.delayed_calls(), 1u);
  EXPECT_TRUE(faults.Call("a", "c", "y").ok());
  EXPECT_EQ(faults.virtual_now(), 7u);  // rule exhausted: only the call tick
}

TEST(FaultTransportTest, DuplicateDeliversTwiceAnswersOnce) {
  InProcTransport inner;
  int invocations = 0;
  ASSERT_TRUE(inner
                  .Serve("a",
                         [&invocations](const std::string&, const std::string&) {
                           ++invocations;
                           return std::string("r") + std::to_string(invocations);
                         })
                  .ok());
  FaultInjectingTransport faults(&inner, 1);
  FaultRule rule;
  rule.to = "a";
  rule.action = FaultAction::kDuplicate;
  rule.max_matches = 1;
  faults.AddRule(rule);
  auto r = faults.Call("a", "c", "x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "r1");          // caller sees the first response
  EXPECT_EQ(invocations, 2);    // the handler saw the message twice
  EXPECT_EQ(faults.duplicated_calls(), 1u);
  ASSERT_TRUE(faults.Call("a", "c", "y").ok());
  EXPECT_EQ(invocations, 3);    // back to exactly-once
}

TEST(FaultTransportTest, ErrorInjectionSurfacesConfiguredStatus) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner, 1);
  ASSERT_TRUE(faults.Serve("a", Echo()).ok());
  FaultRule rule;
  rule.to = "a";
  rule.action = FaultAction::kError;
  rule.error_code = StatusCode::kResourceExhausted;
  rule.error_message = "quota";
  rule.max_matches = 1;
  faults.AddRule(rule);
  auto r = faults.Call("a", "c", "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.status().message(), "quota");
  EXPECT_EQ(faults.injected_errors(), 1u);
  EXPECT_TRUE(faults.Call("a", "c", "y").ok());
}

TEST(FaultTransportTest, OutagesApplyBeforeRulesAndClear) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner, 1);
  ASSERT_TRUE(faults.Serve("a", Echo()).ok());
  faults.InjectOutage("a");
  EXPECT_TRUE(faults.Call("a", "c", "x").status().IsUnavailable());
  faults.ClearOutage("a");
  EXPECT_TRUE(faults.Call("a", "c", "x").ok());
}

TEST(FaultTransportTest, RemoveRuleDisarms) {
  InProcTransport inner;
  FaultInjectingTransport faults(&inner, 1);
  ASSERT_TRUE(faults.Serve("a", Echo()).ok());
  const uint64_t id = faults.DropFirst("a", 1000);
  EXPECT_FALSE(faults.Call("a", "c", "x").ok());
  EXPECT_TRUE(faults.RemoveRule(id));
  EXPECT_FALSE(faults.RemoveRule(id));  // already gone
  EXPECT_TRUE(faults.Call("a", "c", "x").ok());
}

// The heart of the subsystem: a probabilistic scenario is reproducible. Two
// independent transports with the same seed and the same call sequence produce
// the identical drop pattern -- and byte-identical metrics snapshots.
TEST(FaultTransportTest, SameSeedSameDropSequenceAndMetrics) {
  auto run = [](uint64_t seed) {
    InProcTransport inner;
    FaultInjectingTransport faults(&inner, seed);
    EXPECT_TRUE(faults.Serve("a", Echo()).ok());
    faults.DropWithProbability("a", 0.3);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(faults.Call("a", "c", "m").ok());
    }
    return std::make_pair(pattern, obs::ToJson(faults.metrics().Snapshot()));
  };
  auto [pattern1, json1] = run(42);
  auto [pattern2, json2] = run(42);
  EXPECT_EQ(pattern1, pattern2);
  EXPECT_EQ(json1, json2);  // byte-identical snapshot for a fixed seed

  auto [pattern3, json3] = run(43);
  EXPECT_NE(pattern1, pattern3);  // a different seed is a different scenario
}

TEST(FaultTransportTest, InProcExposesItsFaultLayer) {
  // The shim: InProcTransport's legacy knobs now ride on the same rule table,
  // and richer scenarios can be armed through faults().
  InProcTransport transport;
  ASSERT_TRUE(transport.Serve("a", Echo()).ok());
  transport.faults().DropFirst("a", 1);
  EXPECT_FALSE(transport.Call("a", "c", "x").ok());
  EXPECT_TRUE(transport.Call("a", "c", "x").ok());
  EXPECT_EQ(transport.delivered_calls(), 1u);
}

}  // namespace
}  // namespace net
}  // namespace pgrid
