#include "sim/fuzzer.h"

#include <gtest/gtest.h>

#include "check/invariants.h"

namespace pgrid {
namespace sim {
namespace {

TEST(ScenarioFuzzerTest, GenerationIsDeterministic) {
  Scenario a = ScenarioFuzzer::Generate(123);
  Scenario b = ScenarioFuzzer::Generate(123);
  EXPECT_EQ(a, b);
  // And the serialized trace is byte-identical -- the replay-file guarantee.
  EXPECT_EQ(SerializeScenario(a), SerializeScenario(b));
  EXPECT_NE(SerializeScenario(a), SerializeScenario(ScenarioFuzzer::Generate(124)));
}

TEST(ScenarioFuzzerTest, GeneratedScenariosRespectBounds) {
  FuzzOptions options;
  options.min_peers = 8;
  options.max_peers = 20;
  options.min_steps = 5;
  options.max_steps = 12;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Scenario s = ScenarioFuzzer::Generate(seed, options);
    EXPECT_GE(s.config.num_peers, options.min_peers);
    EXPECT_LE(s.config.num_peers, options.max_peers);
    // +1 for the warm-up exchange step.
    EXPECT_GE(s.steps.size(), options.min_steps + 1);
    EXPECT_LE(s.steps.size(), options.max_steps + 1);
    EXPECT_EQ(s.config.seed, seed);
    for (const ScenarioStep& step : s.steps) {
      EXPECT_NE(step.kind, StepKind::kCorrupt);  // never generated, test-only
    }
  }
}

TEST(ScenarioFuzzerTest, SameSeedSameExecutionDigest) {
  Scenario s = ScenarioFuzzer::Generate(7);
  ScenarioResult a = RunScenario(s);
  ScenarioResult b = RunScenario(s);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.failed, b.failed);
}

// The acceptance bar of the harness: a seed sweep over generated interleavings
// of exchanges, inserts, updates, churn, and transport faults completes with
// zero invariant violations.
TEST(ScenarioFuzzerTest, FiftySeedsRunClean) {
  FuzzOptions options;
  options.base_seed = 1;
  options.num_seeds = 50;
  options.stop_on_failure = false;
  FuzzOutcome outcome = ScenarioFuzzer::Fuzz(options);
  EXPECT_EQ(outcome.seeds_run, 50u);
  EXPECT_EQ(outcome.failures, 0u)
      << "seed " << outcome.failing_seed << " shrank to:\n"
      << SerializeScenario(outcome.minimal) << "\nfailing with:\n"
      << outcome.failure.report.ToString();
}

TEST(ScenarioFuzzerTest, HealTailAppendsRepairAndStrictBarrier) {
  FuzzOptions options;
  options.heal_tail = true;
  Scenario s = ScenarioFuzzer::Generate(9, options);
  ASSERT_GE(s.steps.size(), 4u);
  // The tail: transport heal, mixing window, repair ticks, strict barrier.
  const ScenarioStep& barrier = s.steps.back();
  EXPECT_EQ(barrier.kind, StepKind::kBarrier);
  EXPECT_NE(barrier.b, 0u) << "heal-tail barrier must be strict";
  EXPECT_EQ(s.steps[s.steps.size() - 2].kind, StepKind::kRepair);
  EXPECT_EQ(s.config.online_prob, 1.0);
  // Without the flag the generated scenario is unchanged from before.
  FuzzOptions plain = options;
  plain.heal_tail = false;
  Scenario base = ScenarioFuzzer::Generate(9, plain);
  ASSERT_LT(base.steps.size(), s.steps.size());
  for (size_t i = 0; i < base.steps.size(); ++i) {
    EXPECT_EQ(base.steps[i], s.steps[i]) << "step " << i;
  }
}

// The self-healing acceptance bar: whatever interleaving of churn, faults, and
// updates a seed produces, the appended repair window must restore convergence
// among the survivors (the strict barrier at the tail).
TEST(ScenarioFuzzerTest, HealTailSeedsConvergeClean) {
  FuzzOptions options;
  options.base_seed = 1;
  options.num_seeds = 25;
  options.heal_tail = true;
  options.stop_on_failure = false;
  FuzzOutcome outcome = ScenarioFuzzer::Fuzz(options);
  EXPECT_EQ(outcome.seeds_run, 25u);
  EXPECT_EQ(outcome.failures, 0u)
      << "seed " << outcome.failing_seed << " shrank to:\n"
      << SerializeScenario(outcome.minimal) << "\nfailing with:\n"
      << outcome.failure.report.ToString();
}

TEST(ScenarioFuzzerTest, ThreadSweepDrawsThreadsWithoutPerturbingTheSteps) {
  FuzzOptions sweep;
  sweep.vary_builder_threads = true;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Scenario with = ScenarioFuzzer::Generate(seed, sweep);
    Scenario without = ScenarioFuzzer::Generate(seed);
    // The thread count is drawn after everything else: same community, same
    // step list, only the execution engine differs.
    EXPECT_EQ(with.steps, without.steps) << "seed " << seed;
    EXPECT_TRUE(with.config.builder_threads == 1 ||
                with.config.builder_threads == 2 ||
                with.config.builder_threads == 4 ||
                with.config.builder_threads == 8)
        << "seed " << seed << " drew " << with.config.builder_threads;
    without.config.builder_threads = with.config.builder_threads;
    EXPECT_EQ(with, without) << "seed " << seed;
  }
}

// The thread-sweep acceptance bar: generated scenarios routed through the
// parallel builder run clean, and each multi-threaded run digests identically
// to its builder_threads = 1 re-execution (Fuzz performs that re-execution
// internally and counts mismatches as failures).
TEST(ScenarioFuzzerTest, ThreadSweepSeedsRunCleanAndMatchSerialDigests) {
  FuzzOptions options;
  options.base_seed = 1;
  options.num_seeds = 15;
  options.vary_builder_threads = true;
  options.stop_on_failure = false;
  FuzzOutcome outcome = ScenarioFuzzer::Fuzz(options);
  EXPECT_EQ(outcome.seeds_run, 15u);
  EXPECT_EQ(outcome.digest_mismatches, 0u)
      << "seed " << outcome.failing_seed
      << " digests differently at builder_threads "
      << outcome.minimal.config.builder_threads << " vs 1";
  EXPECT_EQ(outcome.failures, 0u)
      << "seed " << outcome.failing_seed << " shrank to:\n"
      << SerializeScenario(outcome.minimal) << "\nfailing with:\n"
      << outcome.failure.report.ToString();
}

// End-to-end shrink: plant a corruption in the middle of a generated scenario
// and check the shrinker reduces the failure to (essentially) just that step.
TEST(ScenarioShrinkTest, ShrinksInjectedCorruptionToMinimalRepro) {
  Scenario s = ScenarioFuzzer::Generate(21);
  // Replica-key desync: the one corruption that fails even on a flat grid, so
  // a perfect shrink needs no other step, not even the warm-up exchange. It
  // goes at the end: earlier placement would let later exchanges park the
  // desynced entries in foreign buffers, legitimately hiding them.
  ScenarioStep corrupt{StepKind::kCorrupt, 2, 4, 2, 0};
  s.steps.push_back(corrupt);
  ASSERT_TRUE(RunScenario(s).failed);

  Scenario minimal = ScenarioFuzzer::Shrink(s);
  ScenarioResult result = RunScenario(minimal);
  EXPECT_TRUE(result.failed);
  EXPECT_GE(result.report.CountOf(check::Category::kReplicaDesync), 1u)
      << result.report.ToString();
  // The corruption step alone suffices: everything else must be gone.
  ASSERT_EQ(minimal.steps.size(), 1u) << SerializeScenario(minimal);
  EXPECT_EQ(minimal.steps[0].kind, StepKind::kCorrupt);
  // The repro is a valid replay file.
  Result<Scenario> reparsed = ParseScenario(SerializeScenario(minimal));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value(), minimal);
}

TEST(ScenarioShrinkTest, ShrinkKeepsNonFailingScenarioIntact) {
  Scenario s = ScenarioFuzzer::Generate(3);
  ASSERT_FALSE(RunScenario(s).failed);
  EXPECT_EQ(ScenarioFuzzer::Shrink(s), s);
}

TEST(ScenarioFuzzerTest, FuzzReportsAndShrinksPlantedFailure) {
  // A corrupt scenario cannot come out of Generate, so synthesize the sweep:
  // run Fuzz on clean seeds, then verify the failure path via Shrink directly.
  Scenario bad = ScenarioFuzzer::Generate(5);
  bad.steps.push_back(ScenarioStep{StepKind::kCorrupt, 0, 0, 0, 0});
  Scenario minimal = ScenarioFuzzer::Shrink(bad);
  ScenarioResult result = RunScenario(minimal);
  EXPECT_TRUE(result.failed);
  EXPECT_LE(minimal.steps.size(), 2u) << SerializeScenario(minimal);
}

}  // namespace
}  // namespace sim
}  // namespace pgrid
