// Whole-system integration test: one grid lives through its entire lifecycle --
// construction, routed inserts, searches, updates with reliable reads, persistence,
// and sustained churn -- with structural invariants checked at every stage.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/churn.h"
#include "core/insert.h"
#include "core/search.h"
#include "core/stats.h"
#include "core/update.h"
#include "snapshot/snapshot.h"
#include "tests/test_util.h"

namespace pgrid {
namespace {

TEST(LifecycleTest, FullSystemJourney) {
  // --- Stage 1: self-organization ---------------------------------------------
  const size_t initial_peers = 300;
  Grid grid(initial_peers);
  Rng rng(2024);
  ExchangeConfig config;
  config.maxl = 5;
  config.refmax = 4;
  config.recmax = 2;
  config.recursion_fanout = 2;
  config.prune_unreachable_refs = true;
  OnlineModel online = OnlineModel::AlwaysOn(initial_peers);
  ExchangeEngine exchange(&grid, config, &rng, &online);
  MeetingScheduler scheduler(initial_peers);
  GridBuilder builder(&grid, &exchange, &scheduler, &rng);
  BuildReport report = builder.BuildToFractionOfMaxDepth(0.99, 50'000'000);
  ASSERT_TRUE(report.converged);
  ASSERT_TRUE(GridStats::CheckInvariants(grid, config).ok());

  // --- Stage 2: routed inserts --------------------------------------------------
  InsertEngine insert(&grid, &online, &rng);
  UpdateConfig propagation;
  propagation.recbreadth = 4;
  propagation.repetition = 2;
  std::vector<DataItem> catalog;
  for (ItemId id = 1; id <= 50; ++id) {
    DataItem item;
    item.id = id;
    item.key = KeyPath::Random(&rng, 10);
    item.payload = "doc-" + std::to_string(id);
    item.version = 1;
    PeerId holder = static_cast<PeerId>(rng.UniformIndex(grid.size()));
    ASSERT_TRUE(insert.Insert(item, holder, propagation).ok()) << "item " << id;
    catalog.push_back(item);
  }

  // --- Stage 3: everyone can find everything ------------------------------------
  SearchEngine search(&grid, &online, &rng);
  for (const DataItem& item : catalog) {
    QueryResult q = search.Query(static_cast<PeerId>(rng.UniformIndex(grid.size())),
                                 item.key);
    ASSERT_TRUE(q.found) << "item " << item.id;
  }

  // --- Stage 4: update + reliable read -------------------------------------------
  UpdateEngine update(&grid, &online, &rng);
  const DataItem& hot = catalog[7];
  UpdateConfig ucfg;
  ucfg.recbreadth = 4;
  ucfg.repetition = 3;
  UpdateOutcome uo = update.Propagate(hot.key, hot.id, /*version=*/2,
                                      UpdateStrategy::kBreadthFirst, ucfg);
  ASSERT_FALSE(uo.reached.empty());
  ReliableReadConfig rcfg;
  rcfg.quorum = 3;
  ReliableReadResult rr = search.ReadVersion(hot.key, hot.id, rcfg);
  EXPECT_TRUE(rr.decided);
  EXPECT_EQ(rr.version, 2u);

  // --- Stage 5: persistence round trip -------------------------------------------
  const std::string file = std::string(::testing::TempDir()) + "/lifecycle.pgrid";
  ASSERT_TRUE(SaveGrid(grid, config, file).ok());
  auto reloaded = LoadGrid(file);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_TRUE(GridStats::CheckInvariants(*reloaded->grid, reloaded->config).ok());
  {
    Rng rng2(99);
    SearchEngine search2(reloaded->grid.get(), nullptr, &rng2);
    QueryResult q = search2.Query(0, hot.key);
    ASSERT_TRUE(q.found);
    EXPECT_EQ(reloaded->grid->peer(q.responder).index().LatestVersionOf(hot.id), 2u);
  }
  std::remove(file.c_str());

  // --- Stage 6: sustained churn with repair ---------------------------------------
  ChurnDriver driver(&grid, &exchange, &scheduler, &online, &rng);
  ChurnConfig churn;
  churn.crash_fraction = 0.10;
  churn.leave_fraction = 0.05;
  churn.join_fraction = 0.15;
  churn.meetings_per_round = 8000;
  for (int round = 0; round < 4; ++round) {
    driver.Round(churn);
    ASSERT_TRUE(GridStats::CheckInvariants(grid, config).ok())
        << "after churn round " << round;
  }
  // The structure remains navigable for the survivors.
  size_t ok = 0;
  const size_t probes = 300;
  for (size_t t = 0; t < probes; ++t) {
    PeerId start = driver.RandomLivePeer();
    if (search.Query(start, KeyPath::Random(&rng, config.maxl)).found) ++ok;
  }
  EXPECT_GT(static_cast<double>(ok) / probes, 0.95);

  // Data inserted before the churn is still overwhelmingly reachable: graceful
  // leavers handed their entries over, and only crashed holders are lost.
  size_t items_found = 0;
  for (const DataItem& item : catalog) {
    QueryResult q = search.Query(driver.RandomLivePeer(), item.key);
    if (q.found &&
        grid.peer(q.responder).index().LatestVersionOf(item.id) > 0) {
      ++items_found;
    }
  }
  EXPECT_GT(items_found, catalog.size() / 2);
}

}  // namespace
}  // namespace pgrid
