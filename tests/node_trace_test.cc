// Causal tracing across the networked node stack (the acceptance criterion of
// the observability layer): a distributed search started on one node must
// reconstruct as a single span tree whose client-side hop spans parent the
// server-side spans recorded on *other* nodes, with the TraceContext carried in
// the kTraced wire envelope (net/protocol.h). Also pinned: tracing is never
// load-bearing -- untraced nodes unwrap and serve traced requests unchanged --
// and per-process recorders with distinct salts merge into one coherent tree.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/inproc_transport.h"
#include "net/node.h"
#include "obs/trace.h"
#include "obs/trace_view.h"

namespace pgrid {
namespace net {
namespace {

KeyPath P(const char* bits) { return KeyPath::FromString(bits).value(); }

/// In-process cluster (same idiom as node_test.cc).
struct Cluster {
  InProcTransport transport;
  std::vector<std::unique_ptr<PGridNode>> nodes;
  Rng rng{12345};

  explicit Cluster(size_t n, NodeConfig config = {}) {
    for (size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<PGridNode>("node:" + std::to_string(i),
                                                  &transport, config, 1000 + i));
      EXPECT_TRUE(nodes.back()->Start().ok());
    }
  }

  void Mingle(size_t meetings) {
    for (size_t m = 0; m < meetings; ++m) {
      size_t a = rng.UniformIndex(nodes.size());
      size_t b = rng.UniformIndex(nodes.size());
      if (a == b) continue;
      (void)nodes[a]->MeetWith(nodes[b]->address());
    }
  }
};

/// Bootstraps a converged cluster with one published item, untraced.
struct TracedFixture {
  NodeConfig config;
  std::unique_ptr<Cluster> cluster;
  DataItem item;

  TracedFixture() {
    config.maxl = 4;
    config.refmax = 4;
    cluster = std::make_unique<Cluster>(16, config);
    cluster->Mingle(2500);
    item.id = 7;
    item.key = P("01100110");
    item.payload = "the-file";
    item.version = 1;
    EXPECT_TRUE(cluster->nodes[5]->Publish(item).ok());
  }
};

/// Distinct "node=..." tokens across all event details: how many nodes
/// contributed spans to the buffer.
std::set<std::string> NodesInvolved(const std::vector<obs::TraceEvent>& events) {
  std::set<std::string> out;
  for (const obs::TraceEvent& e : events) {
    const size_t pos = e.detail.find("node=");
    if (pos == std::string::npos) continue;
    const size_t end = e.detail.find(' ', pos);
    out.insert(e.detail.substr(pos + 5, end == std::string::npos
                                            ? std::string::npos
                                            : end - pos - 5));
  }
  return out;
}

TEST(NodeTraceTest, DistributedSearchReconstructsAsOneSpanTree) {
  TracedFixture f;
  obs::TraceRecorder recorder;  // in-process cluster: one shared recorder
  for (auto& node : f.cluster->nodes) node->SetTraceRecorder(&recorder);

  // Find a starting node whose search actually leaves the node (a node that is
  // responsible for the key answers locally, which is a one-span trace).
  std::vector<obs::TraceEvent> events;
  bool found_remote = false;
  for (auto& node : f.cluster->nodes) {
    recorder.Clear();
    Result<std::vector<WireEntry>> r = node->Search(f.item.key);
    ASSERT_TRUE(r.ok()) << r.status().message();
    ASSERT_FALSE(r->empty());
    events = recorder.events();
    bool has_serve = false;
    for (const obs::TraceEvent& e : events) {
      if (e.name == "node.serve.query") has_serve = true;
    }
    if (has_serve) {
      found_remote = true;
      break;
    }
  }
  ASSERT_TRUE(found_remote) << "no search ever crossed a node boundary";
  EXPECT_EQ(recorder.dropped(), 0u);

  // Every event of the search belongs to ONE trace.
  const std::vector<uint64_t> traces = obs::TraceIds(events);
  ASSERT_EQ(traces.size(), 1u);
  for (const obs::TraceEvent& e : events) EXPECT_EQ(e.trace_id, traces[0]);

  // Spans were recorded on at least two distinct nodes.
  EXPECT_GE(NodesInvolved(events).size(), 2u);

  // Stitching: every server-side query span hangs under a client-side hop span
  // of the same trace -- the TraceContext crossed the wire intact.
  std::set<uint64_t> hop_ids;
  for (const obs::TraceEvent& e : events) {
    if (e.name == "node.rpc.query") hop_ids.insert(e.span_id);
  }
  size_t serves = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.name != "node.serve.query") continue;
    ++serves;
    EXPECT_EQ(hop_ids.count(e.parent_span), 1u)
        << "serve span " << e.span_id << " not under a client hop";
  }
  EXPECT_GE(serves, 1u);

  // The offline reconstruction agrees: one root (the client's route span),
  // with the hop and serve spans nested inside it.
  const std::vector<obs::SpanNode> roots =
      obs::BuildSpanTree(events, traces[0]);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].span.name, "node.route");
  const std::string tree = obs::RenderSpanTree(roots);
  EXPECT_NE(tree.find("node.rpc.query"), std::string::npos);
  EXPECT_NE(tree.find("node.serve.query"), std::string::npos);
  // And the critical path is a non-empty chain starting at the root.
  const std::vector<obs::TraceEvent> path = obs::CriticalPath(roots);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front().name, "node.route");
}

TEST(NodeTraceTest, UntracedNodesServeTracedRequestsUnchanged) {
  TracedFixture f;
  // Only the client records; everyone else unwraps the kTraced envelope and
  // serves the inner request without a recorder.
  obs::TraceRecorder recorder;
  f.cluster->nodes[0]->SetTraceRecorder(&recorder);

  Result<std::vector<WireEntry>> r = f.cluster->nodes[0]->Search(f.item.key);
  ASSERT_TRUE(r.ok()) << r.status().message();
  ASSERT_FALSE(r->empty());
  EXPECT_EQ((*r)[0].item_id, f.item.id);

  // The client-side half of the trace exists; no server spans (nobody else
  // recorded), and everything still belongs to one trace.
  const std::vector<obs::TraceEvent> events = recorder.events();
  ASSERT_FALSE(events.empty());
  const std::vector<uint64_t> traces = obs::TraceIds(events);
  EXPECT_EQ(traces.size(), 1u);
  for (const obs::TraceEvent& e : events) {
    EXPECT_NE(e.name, "node.serve.query");
  }
}

TEST(NodeTraceTest, SaltedPerNodeRecordersMergeIntoOneTree) {
  TracedFixture f;
  // One recorder per node, as in the multi-process deployment, each salted so
  // span ids cannot collide when the dumps are merged offline.
  std::vector<std::unique_ptr<obs::TraceRecorder>> recorders;
  for (size_t i = 0; i < f.cluster->nodes.size(); ++i) {
    recorders.push_back(std::make_unique<obs::TraceRecorder>());
    recorders.back()->set_id_salt(0x9E3779B97F4A7C15ull * (i + 1));
    f.cluster->nodes[i]->SetTraceRecorder(recorders[i].get());
  }

  Result<std::vector<WireEntry>> r = f.cluster->nodes[0]->Search(f.item.key);
  ASSERT_TRUE(r.ok()) << r.status().message();

  // Merge all per-node buffers, as an offline tool would.
  std::vector<obs::TraceEvent> merged;
  for (const auto& rec : recorders) {
    for (const obs::TraceEvent& e : rec->events()) merged.push_back(e);
  }
  const std::vector<uint64_t> traces = obs::TraceIds(merged);
  ASSERT_EQ(traces.size(), 1u);
  std::set<uint64_t> span_ids;
  size_t spans = 0;
  for (const obs::TraceEvent& e : merged) {
    if (!e.is_span) continue;
    ++spans;
    span_ids.insert(e.span_id);
  }
  EXPECT_EQ(span_ids.size(), spans) << "salted ids collided across recorders";
  // The merged buffer still reconstructs to a single root.
  const std::vector<obs::SpanNode> roots =
      obs::BuildSpanTree(merged, traces[0]);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].span.name, "node.route");
}

}  // namespace
}  // namespace net
}  // namespace pgrid
