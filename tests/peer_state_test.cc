#include "core/peer_state.h"

#include <gtest/gtest.h>

#include "key/key_path.h"

namespace pgrid {
namespace {

TEST(PeerStateTest, StartsWithEmptyPath) {
  PeerState p(7);
  EXPECT_EQ(p.id(), 7u);
  EXPECT_EQ(p.depth(), 0u);
  EXPECT_TRUE(p.path().empty());
  EXPECT_EQ(p.TotalRefs(), 0u);
}

TEST(PeerStateTest, AppendPathBitGrowsPathAndRefLevels) {
  PeerState p(1);
  p.AppendPathBit(0);
  p.AppendPathBit(1);
  EXPECT_EQ(p.path().ToString(), "01");
  EXPECT_EQ(p.PathBit(1), 0);
  EXPECT_EQ(p.PathBit(2), 1);
  EXPECT_TRUE(p.RefsAt(1).empty());
  EXPECT_TRUE(p.RefsAt(2).empty());
}

TEST(PeerStateTest, RefManagement) {
  PeerState p(1);
  p.AppendPathBit(0);
  EXPECT_TRUE(p.AddRefAt(1, 5));
  EXPECT_FALSE(p.AddRefAt(1, 5));  // dedup
  EXPECT_TRUE(p.AddRefAt(1, 6));
  EXPECT_EQ(p.RefsAt(1).size(), 2u);
  EXPECT_EQ(p.TotalRefs(), 2u);
  p.SetRefsAt(1, {9});
  ASSERT_EQ(p.RefsAt(1).size(), 1u);
  EXPECT_EQ(p.RefsAt(1)[0], 9u);
}

TEST(PeerStateTest, BuddiesDedupAndExcludeSelf) {
  PeerState p(3);
  EXPECT_TRUE(p.AddBuddy(4));
  EXPECT_FALSE(p.AddBuddy(4));
  EXPECT_FALSE(p.AddBuddy(3));  // self
  EXPECT_EQ(p.buddies().size(), 1u);
  p.ClearBuddies();
  EXPECT_TRUE(p.buddies().empty());
}

TEST(PeerStateTest, PathCoversKeySemantics) {
  KeyPath path = KeyPath::FromString("01").value();
  EXPECT_TRUE(PathCoversKey(path, KeyPath::FromString("0110").value()));
  EXPECT_TRUE(PathCoversKey(path, KeyPath::FromString("0").value()));
  EXPECT_FALSE(PathCoversKey(path, KeyPath::FromString("00").value()));
  EXPECT_TRUE(PathCoversKey(KeyPath(), KeyPath::FromString("101").value()));
}

TEST(PeerStateDeathTest, OutOfRangeLevelAborts) {
  PeerState p(1);
  p.AppendPathBit(1);
  EXPECT_DEATH({ (void)p.RefsAt(0); }, "PGRID_CHECK failed");
  EXPECT_DEATH({ (void)p.RefsAt(2); }, "PGRID_CHECK failed");
  EXPECT_DEATH({ (void)p.PathBit(2); }, "PGRID_CHECK failed");
}

TEST(PeerStateTest, PooledRefsKeepPerLevelOrderAcrossLevels) {
  // Levels share one pooled buffer; interleaved writes to different levels must
  // not bleed into each other, and within-level insertion order must hold (the
  // state digest and the RNG sampling stream both depend on it).
  PeerState p(1);
  for (int i = 0; i < 4; ++i) p.AppendPathBit(i % 2);
  p.SetRefsAt(2, {20, 21});
  p.SetRefsAt(1, {10, 11, 12});
  p.AddRefAt(2, 22);
  p.SetRefsAt(4, {40});
  p.AddRefAt(1, 13);
  p.SetRefsAt(3, {30, 31, 32, 33});
  EXPECT_EQ(p.RefsAt(1), (std::vector<PeerId>{10, 11, 12, 13}));
  EXPECT_EQ(p.RefsAt(2), (std::vector<PeerId>{20, 21, 22}));
  EXPECT_EQ(p.RefsAt(3), (std::vector<PeerId>{30, 31, 32, 33}));
  EXPECT_EQ(p.RefsAt(4), (std::vector<PeerId>{40}));
  EXPECT_EQ(p.TotalRefs(), 12u);
  // Shrinking a middle level shifts the tail levels without corrupting them.
  p.SetRefsAt(2, {99});
  EXPECT_EQ(p.RefsAt(1), (std::vector<PeerId>{10, 11, 12, 13}));
  EXPECT_EQ(p.RefsAt(2), (std::vector<PeerId>{99}));
  EXPECT_EQ(p.RefsAt(3), (std::vector<PeerId>{30, 31, 32, 33}));
  EXPECT_EQ(p.RefsAt(4), (std::vector<PeerId>{40}));
}

TEST(PeerStateTest, RemoveRefAtCompactsWithinLevel) {
  PeerState p(1);
  p.AppendPathBit(0);
  p.AppendPathBit(1);
  p.SetRefsAt(1, {5, 6, 7});
  p.SetRefsAt(2, {8, 9});
  EXPECT_EQ(p.RemoveRefAt(1, 6), 1u);
  EXPECT_EQ(p.RefsAt(1), (std::vector<PeerId>{5, 7}));
  EXPECT_EQ(p.RefsAt(2), (std::vector<PeerId>{8, 9}));
  EXPECT_EQ(p.RemoveRefAt(1, 404), 0u);
  EXPECT_EQ(p.TotalRefs(), 4u);
}

TEST(PeerStateTest, AddBuddyHonorsCap) {
  PeerState p(1);
  EXPECT_TRUE(p.AddBuddy(2, /*max_buddies=*/2));
  EXPECT_TRUE(p.AddBuddy(3, 2));
  EXPECT_FALSE(p.AddBuddy(4, 2));  // at cap
  EXPECT_FALSE(p.AddBuddy(2, 2));  // dup still reports false, not capped
  EXPECT_EQ(p.buddies(), (std::vector<PeerId>{2, 3}));
  EXPECT_TRUE(p.AddBuddy(4));  // cap 0 = unbounded
  EXPECT_EQ(p.buddies().size(), 3u);
}

TEST(PeerStateTest, CopySemanticsAcrossPooledStorage) {
  PeerState p(1);
  p.AppendPathBit(0);
  p.AppendPathBit(1);
  p.SetRefsAt(1, {5, 6});
  p.SetRefsAt(2, {7});
  p.AddBuddy(9);
  PeerState copy = p;
  copy.SetRefsAt(1, {42});
  copy.AddBuddy(10);
  EXPECT_EQ(p.RefsAt(1), (std::vector<PeerId>{5, 6}));
  EXPECT_EQ(p.buddies().size(), 1u);
  EXPECT_EQ(copy.RefsAt(1), (std::vector<PeerId>{42}));
  EXPECT_EQ(copy.RefsAt(2), (std::vector<PeerId>{7}));
  EXPECT_EQ(copy.buddies(), (std::vector<PeerId>{9, 10}));
}

TEST(PeerStateTest, ApproxMemoryBytesGrowsWithState) {
  PeerState p(1);
  const size_t empty_bytes = p.ApproxMemoryBytes();
  p.AppendPathBit(0);
  p.SetRefsAt(1, {1, 2, 3, 4});
  for (PeerId b = 10; b < 20; ++b) p.AddBuddy(b);
  EXPECT_GT(p.ApproxMemoryBytes(), empty_bytes);
}

}  // namespace
}  // namespace pgrid
