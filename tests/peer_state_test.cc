#include "core/peer_state.h"

#include <gtest/gtest.h>

#include "key/key_path.h"

namespace pgrid {
namespace {

TEST(PeerStateTest, StartsWithEmptyPath) {
  PeerState p(7);
  EXPECT_EQ(p.id(), 7u);
  EXPECT_EQ(p.depth(), 0u);
  EXPECT_TRUE(p.path().empty());
  EXPECT_EQ(p.TotalRefs(), 0u);
}

TEST(PeerStateTest, AppendPathBitGrowsPathAndRefLevels) {
  PeerState p(1);
  p.AppendPathBit(0);
  p.AppendPathBit(1);
  EXPECT_EQ(p.path().ToString(), "01");
  EXPECT_EQ(p.PathBit(1), 0);
  EXPECT_EQ(p.PathBit(2), 1);
  EXPECT_TRUE(p.RefsAt(1).empty());
  EXPECT_TRUE(p.RefsAt(2).empty());
}

TEST(PeerStateTest, RefManagement) {
  PeerState p(1);
  p.AppendPathBit(0);
  EXPECT_TRUE(p.AddRefAt(1, 5));
  EXPECT_FALSE(p.AddRefAt(1, 5));  // dedup
  EXPECT_TRUE(p.AddRefAt(1, 6));
  EXPECT_EQ(p.RefsAt(1).size(), 2u);
  EXPECT_EQ(p.TotalRefs(), 2u);
  p.SetRefsAt(1, {9});
  ASSERT_EQ(p.RefsAt(1).size(), 1u);
  EXPECT_EQ(p.RefsAt(1)[0], 9u);
}

TEST(PeerStateTest, BuddiesDedupAndExcludeSelf) {
  PeerState p(3);
  EXPECT_TRUE(p.AddBuddy(4));
  EXPECT_FALSE(p.AddBuddy(4));
  EXPECT_FALSE(p.AddBuddy(3));  // self
  EXPECT_EQ(p.buddies().size(), 1u);
  p.ClearBuddies();
  EXPECT_TRUE(p.buddies().empty());
}

TEST(PeerStateTest, PathCoversKeySemantics) {
  KeyPath path = KeyPath::FromString("01").value();
  EXPECT_TRUE(PathCoversKey(path, KeyPath::FromString("0110").value()));
  EXPECT_TRUE(PathCoversKey(path, KeyPath::FromString("0").value()));
  EXPECT_FALSE(PathCoversKey(path, KeyPath::FromString("00").value()));
  EXPECT_TRUE(PathCoversKey(KeyPath(), KeyPath::FromString("101").value()));
}

TEST(PeerStateDeathTest, OutOfRangeLevelAborts) {
  PeerState p(1);
  p.AppendPathBit(1);
  EXPECT_DEATH({ (void)p.RefsAt(0); }, "PGRID_CHECK failed");
  EXPECT_DEATH({ (void)p.RefsAt(2); }, "PGRID_CHECK failed");
  EXPECT_DEATH({ (void)p.PathBit(2); }, "PGRID_CHECK failed");
}

}  // namespace
}  // namespace pgrid
