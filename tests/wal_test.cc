// Crash-point battery for the WAL layer (storage/wal.h).
//
// The recovery contract is "longest valid prefix": wherever the file is cut or
// whatever byte is flipped, ReadWal must return exactly the records that were
// wholly and correctly written before the damage, report where the valid
// prefix ends, and flag the torn tail. The battery below generates crash
// points programmatically -- a truncation at every record boundary, inside
// every frame header, and inside every body, plus bit-flips in every length
// field, CRC field, and body -- and asserts that contract for each one, then
// proves TruncateWal + append yields a cleanly extendable log again.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "storage/crc32.h"

namespace pgrid {
namespace storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// Record bodies of deliberately varied sizes: empty, tiny, medium, large
// enough to span several cache lines, and one with embedded NULs and the
// WAL magic (the framing must not care what the body looks like).
std::vector<std::string> ReferenceBodies() {
  std::vector<std::string> bodies;
  bodies.push_back("");
  bodies.push_back("a");
  bodies.push_back("hello wal");
  bodies.push_back(std::string(257, 'x'));
  bodies.push_back(std::string("PGWL\0\1\2\3 embedded", 18));
  bodies.push_back(std::string(1024, '\xab'));
  return bodies;
}

// Writes the reference WAL and returns the byte offset one past each record:
// boundaries[i] is where record i ends (boundaries[0] == kWalHeaderBytes,
// i.e. "zero records end at the header").
std::vector<uint64_t> WriteReferenceWal(const std::string& path,
                                        const std::vector<std::string>& bodies) {
  WalWriter writer;
  EXPECT_TRUE(writer.Open(path, SyncMode::kFlush, /*truncate=*/true).ok());
  std::vector<uint64_t> boundaries;
  boundaries.push_back(kWalHeaderBytes);
  for (const std::string& body : bodies) {
    EXPECT_TRUE(writer.Append(body).ok());
    boundaries.push_back(boundaries.back() + 8 + body.size());
  }
  writer.Close();
  return boundaries;
}

// One entry of the crash battery: mutate a pristine copy of the WAL, then
// expect exactly the first `expect_records` bodies back.
struct CrashPoint {
  std::string name;
  size_t truncate_at = 0;   // cut the file to this many bytes (if truncating)
  size_t flip_byte = 0;     // XOR 0x01 into this byte (if !truncate)
  bool truncate = true;
  size_t expect_records = 0;
  bool expect_torn = false;
};

class WalCrashBattery : public ::testing::Test {
 protected:
  void SetUp() override {
    bodies_ = ReferenceBodies();
    ref_path_ = TempPath("wal_crash_reference.wal");
    boundaries_ = WriteReferenceWal(ref_path_, bodies_);
    pristine_ = ReadFileBytes(ref_path_);
    ASSERT_EQ(pristine_.size(), boundaries_.back());
  }

  // Builds the full programmatic crash-point table (> 20 points).
  std::vector<CrashPoint> BuildTable() const {
    std::vector<CrashPoint> table;
    const size_t n = bodies_.size();
    // Truncation at every exact record boundary: a clean prefix, no torn tail.
    for (size_t i = 0; i <= n; ++i) {
      table.push_back({"cut@boundary" + std::to_string(i), boundaries_[i], 0,
                       true, i, false});
    }
    // Truncation inside every frame header (mid-length and mid-CRC): the
    // half-written header is a torn tail, the prefix before it survives.
    for (size_t i = 0; i < n; ++i) {
      table.push_back({"cut@len" + std::to_string(i),
                       boundaries_[i] + 2, 0, true, i, true});
      table.push_back({"cut@crc" + std::to_string(i),
                       boundaries_[i] + 6, 0, true, i, true});
    }
    // Truncation mid-body for every non-empty body.
    for (size_t i = 0; i < n; ++i) {
      if (bodies_[i].empty()) continue;
      table.push_back({"cut@body" + std::to_string(i),
                       boundaries_[i] + 8 + bodies_[i].size() / 2, 0, true, i,
                       true});
    }
    // Bit-flips: in every length field, CRC field, and (non-empty) body. Each
    // invalidates its record; everything before it must still be returned and
    // everything after it discarded (a flipped length desyncs the framing, so
    // later intact records are unreachable by design).
    for (size_t i = 0; i < n; ++i) {
      table.push_back({"flip@len" + std::to_string(i), 0,
                       boundaries_[i] + 1, false, i, true});
      table.push_back({"flip@crc" + std::to_string(i), 0,
                       boundaries_[i] + 5, false, i, true});
      if (!bodies_[i].empty()) {
        table.push_back({"flip@body" + std::to_string(i), 0,
                         boundaries_[i] + 8 + bodies_[i].size() / 2, false, i,
                         true});
      }
    }
    return table;
  }

  // Applies one crash point to a fresh copy and returns the damaged bytes.
  std::string Damage(const CrashPoint& cp) const {
    std::string bytes = pristine_;
    if (cp.truncate) {
      bytes.resize(cp.truncate_at);
    } else {
      bytes[cp.flip_byte] = static_cast<char>(bytes[cp.flip_byte] ^ 0x01);
    }
    return bytes;
  }

  std::vector<std::string> bodies_;
  std::vector<uint64_t> boundaries_;
  std::string ref_path_;
  std::string pristine_;
};

TEST_F(WalCrashBattery, EveryCrashPointRecoversTheExactValidPrefix) {
  const std::vector<CrashPoint> table = BuildTable();
  ASSERT_GE(table.size(), 20u);
  const std::string path = TempPath("wal_crash_case.wal");
  for (const CrashPoint& cp : table) {
    SCOPED_TRACE(cp.name);
    WriteFileBytes(path, Damage(cp));
    Result<WalContents> read = ReadWal(path);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    ASSERT_EQ(read->records.size(), cp.expect_records);
    for (size_t i = 0; i < cp.expect_records; ++i) {
      EXPECT_EQ(read->records[i], bodies_[i]) << "record " << i;
    }
    EXPECT_EQ(read->valid_bytes, boundaries_[cp.expect_records]);
    EXPECT_EQ(read->torn_tail, cp.expect_torn);
  }
}

TEST_F(WalCrashBattery, TruncateThenAppendExtendsACleanPrefix) {
  const std::string path = TempPath("wal_truncate_case.wal");
  for (const CrashPoint& cp : BuildTable()) {
    if (!cp.expect_torn) continue;
    SCOPED_TRACE(cp.name);
    WriteFileBytes(path, Damage(cp));
    Result<WalContents> read = ReadWal(path);
    ASSERT_TRUE(read.ok());
    ASSERT_TRUE(TruncateWal(path, read->valid_bytes).ok());

    // After truncation the log is a clean prefix...
    Result<WalContents> clean = ReadWal(path);
    ASSERT_TRUE(clean.ok());
    EXPECT_FALSE(clean->torn_tail);
    EXPECT_EQ(clean->records.size(), cp.expect_records);

    // ...and append mode extends it without disturbing the old records.
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, SyncMode::kFlush, /*truncate=*/false).ok());
    ASSERT_TRUE(writer.Append("appended-after-recovery").ok());
    writer.Close();
    Result<WalContents> extended = ReadWal(path);
    ASSERT_TRUE(extended.ok());
    ASSERT_EQ(extended->records.size(), cp.expect_records + 1);
    EXPECT_EQ(extended->records.back(), "appended-after-recovery");
    EXPECT_FALSE(extended->torn_tail);
  }
}

// ---- header and framing edge cases ----

TEST(WalTest, MissingFileIsNotFound) {
  Result<WalContents> read = ReadWal(TempPath("wal_never_written.wal"));
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(WalTest, EmptyLogHasHeaderOnlyAndZeroRecords) {
  const std::string path = TempPath("wal_empty.wal");
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, SyncMode::kNone, /*truncate=*/true).ok());
  writer.Close();
  Result<WalContents> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_EQ(read->valid_bytes, kWalHeaderBytes);
  EXPECT_FALSE(read->torn_tail);
}

TEST(WalTest, ShortOrForeignHeaderIsInvalidArgument) {
  const std::string path = TempPath("wal_bad_header.wal");
  WriteFileBytes(path, "PGW");  // shorter than the 8-byte header
  Result<WalContents> short_read = ReadWal(path);
  EXPECT_FALSE(short_read.ok());
  EXPECT_EQ(short_read.status().code(), StatusCode::kInvalidArgument);

  WriteFileBytes(path, "NOTAWAL!record soup");
  Result<WalContents> foreign = ReadWal(path);
  EXPECT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), StatusCode::kInvalidArgument);
}

TEST(WalTest, AppendModeRefusesAForeignFile) {
  const std::string path = TempPath("wal_foreign_append.wal");
  WriteFileBytes(path, "this is not a wal at all");
  WalWriter writer;
  Status status = writer.Open(path, SyncMode::kNone, /*truncate=*/false);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(writer.is_open());
}

TEST(WalTest, ImplausibleLengthPrefixIsCorruptionNotAnAllocation) {
  // A frame whose length field exceeds kMaxWalRecordBytes must be treated as
  // the first invalid byte, not as a request to allocate 4 GiB.
  const std::string path = TempPath("wal_huge_len.wal");
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, SyncMode::kFlush, /*truncate=*/true).ok());
  ASSERT_TRUE(writer.Append("good record").ok());
  writer.Close();

  std::string bytes = ReadFileBytes(path);
  const uint32_t huge = kMaxWalRecordBytes + 1;
  std::string frame(reinterpret_cast<const char*>(&huge), 4);
  frame += std::string(4, '\0');  // arbitrary CRC; never reached
  frame += "tail";
  WriteFileBytes(path, bytes + frame);

  Result<WalContents> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0], "good record");
  EXPECT_TRUE(read->torn_tail);
  EXPECT_EQ(read->valid_bytes, bytes.size());
}

TEST(WalTest, ReopenAppendContinuesTheLog) {
  const std::string path = TempPath("wal_reopen.wal");
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, SyncMode::kFlush, /*truncate=*/true).ok());
    ASSERT_TRUE(writer.Append("first").ok());
    EXPECT_EQ(writer.appended(), 1u);
  }
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, SyncMode::kFsync, /*truncate=*/false).ok());
    ASSERT_TRUE(writer.Append("second").ok());
    ASSERT_TRUE(writer.Sync().ok());
  }
  Result<WalContents> read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0], "first");
  EXPECT_EQ(read->records[1], "second");
}

TEST(WalTest, AppendRequiresAnOpenWriter) {
  WalWriter writer;
  EXPECT_FALSE(writer.Append("nope").ok());
  EXPECT_FALSE(writer.is_open());
}

// ---- CRC-32 primitive ----

TEST(Crc32Test, MatchesTheIeeeCheckVector) {
  // The canonical CRC-32 (reflected, poly 0xEDB88320) check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data(64, 'q');
  const uint32_t base = Crc32(data);
  for (size_t byte = 0; byte < data.size(); byte += 7) {
    std::string flipped = data;
    flipped[byte] = static_cast<char>(flipped[byte] ^ 0x10);
    EXPECT_NE(Crc32(flipped), base) << "byte " << byte;
  }
}

}  // namespace
}  // namespace storage
}  // namespace pgrid
