#include "storage/leaf_index.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace pgrid {
namespace {

IndexEntry Entry(PeerId holder, ItemId item, const std::string& key,
                 uint64_t version = 1) {
  IndexEntry e;
  e.holder = holder;
  e.item_id = item;
  e.key = KeyPath::FromString(key).value();
  e.version = version;
  return e;
}

TEST(LeafIndexTest, InsertAndFind) {
  LeafIndex index;
  EXPECT_TRUE(index.InsertOrRefresh(Entry(1, 10, "0101")));
  const IndexEntry* e = index.Find(1, 10);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->key.ToString(), "0101");
  EXPECT_EQ(index.Find(1, 11), nullptr);
  EXPECT_EQ(index.Find(2, 10), nullptr);
}

TEST(LeafIndexTest, ReinsertSameVersionIsNoop) {
  LeafIndex index;
  EXPECT_TRUE(index.InsertOrRefresh(Entry(1, 10, "01", 2)));
  EXPECT_FALSE(index.InsertOrRefresh(Entry(1, 10, "01", 2)));
  EXPECT_FALSE(index.InsertOrRefresh(Entry(1, 10, "01", 1)));  // stale
  EXPECT_EQ(index.size(), 1u);
}

TEST(LeafIndexTest, RefreshBumpsVersion) {
  LeafIndex index;
  index.InsertOrRefresh(Entry(1, 10, "01", 1));
  EXPECT_TRUE(index.InsertOrRefresh(Entry(1, 10, "01", 3)));
  EXPECT_EQ(index.Find(1, 10)->version, 3u);
}

TEST(LeafIndexTest, SameItemDifferentHoldersAreDistinct) {
  LeafIndex index;
  index.InsertOrRefresh(Entry(1, 10, "01"));
  index.InsertOrRefresh(Entry(2, 10, "01"));
  EXPECT_EQ(index.size(), 2u);
}

TEST(LeafIndexTest, MatchingFiltersByPrefix) {
  LeafIndex index;
  index.InsertOrRefresh(Entry(1, 1, "0001"));
  index.InsertOrRefresh(Entry(1, 2, "0010"));
  index.InsertOrRefresh(Entry(1, 3, "1000"));
  EXPECT_EQ(index.Matching(KeyPath::FromString("00").value()).size(), 2u);
  EXPECT_EQ(index.Matching(KeyPath::FromString("1").value()).size(), 1u);
  EXPECT_EQ(index.Matching(KeyPath()).size(), 3u);
}

TEST(LeafIndexTest, LatestVersionOfScansHolders) {
  LeafIndex index;
  index.InsertOrRefresh(Entry(1, 10, "01", 2));
  index.InsertOrRefresh(Entry(2, 10, "01", 5));
  index.InsertOrRefresh(Entry(3, 11, "01", 9));
  EXPECT_EQ(index.LatestVersionOf(10), 5u);
  EXPECT_EQ(index.LatestVersionOf(11), 9u);
  EXPECT_EQ(index.LatestVersionOf(404), 0u);
}

TEST(LeafIndexTest, ApplyVersionBumpsAllEntriesOfItem) {
  LeafIndex index;
  index.InsertOrRefresh(Entry(1, 10, "01", 1));
  index.InsertOrRefresh(Entry(2, 10, "01", 1));
  index.InsertOrRefresh(Entry(3, 11, "01", 1));
  EXPECT_EQ(index.ApplyVersion(10, 4), 2u);
  EXPECT_EQ(index.Find(1, 10)->version, 4u);
  EXPECT_EQ(index.Find(2, 10)->version, 4u);
  EXPECT_EQ(index.Find(3, 11)->version, 1u);
  EXPECT_EQ(index.ApplyVersion(10, 3), 0u);  // stale version bumps nothing
}

TEST(LeafIndexTest, ExtractNotMatchingSplitsOnOverlap) {
  LeafIndex index;
  index.InsertOrRefresh(Entry(1, 1, "0001"));
  index.InsertOrRefresh(Entry(1, 2, "0110"));
  index.InsertOrRefresh(Entry(1, 3, "0"));  // key is a prefix of path "00": overlaps
  auto moved = index.ExtractNotMatching(KeyPath::FromString("00").value());
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0].item_id, 2u);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_NE(index.Find(1, 1), nullptr);
  EXPECT_NE(index.Find(1, 3), nullptr);
}

TEST(LeafIndexTest, MergeFromCombinesAndRefreshes) {
  LeafIndex a, b;
  a.InsertOrRefresh(Entry(1, 1, "00", 1));
  b.InsertOrRefresh(Entry(1, 1, "00", 3));
  b.InsertOrRefresh(Entry(2, 2, "01", 1));
  size_t changed = a.MergeFrom(b);
  EXPECT_EQ(changed, 2u);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.Find(1, 1)->version, 3u);
  // Merging again changes nothing.
  EXPECT_EQ(a.MergeFrom(b), 0u);
}

TEST(LeafIndexTest, AllReturnsEverything) {
  LeafIndex index;
  index.InsertOrRefresh(Entry(1, 1, "0"));
  index.InsertOrRefresh(Entry(2, 2, "1"));
  auto all = index.All();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(std::any_of(all.begin(), all.end(),
                          [](const IndexEntry& e) { return e.item_id == 1; }));
  EXPECT_TRUE(std::any_of(all.begin(), all.end(),
                          [](const IndexEntry& e) { return e.item_id == 2; }));
}

TEST(LeafIndexTest, ForEachVisitsEveryLiveEntry) {
  LeafIndex index;
  index.InsertOrRefresh(Entry(1, 1, "00"));
  index.InsertOrRefresh(Entry(2, 2, "01"));
  index.InsertOrRefresh(Entry(3, 3, "10"));
  size_t visited = 0;
  uint64_t item_sum = 0;
  index.ForEach([&](const IndexEntry& e) {
    ++visited;
    item_sum += e.item_id;
  });
  EXPECT_EQ(visited, 3u);
  EXPECT_EQ(item_sum, 6u);
}

TEST(LeafIndexTest, ForEachMatchingAgreesWithMatching) {
  LeafIndex index;
  index.InsertOrRefresh(Entry(1, 1, "0001"));
  index.InsertOrRefresh(Entry(1, 2, "0010"));
  index.InsertOrRefresh(Entry(1, 3, "1000"));
  const KeyPath prefix = KeyPath::FromString("00").value();
  std::vector<ItemId> visited;
  index.ForEachMatching(prefix, [&](const IndexEntry& e) {
    visited.push_back(e.item_id);
  });
  std::sort(visited.begin(), visited.end());
  EXPECT_EQ(visited, (std::vector<ItemId>{1, 2}));
  EXPECT_EQ(index.Matching(prefix).size(), visited.size());
}

TEST(LeafIndexTest, GrowthAndTombstoneChurnKeepsLookupsCorrect) {
  // Hammer the open-addressed table through many insert/extract cycles so slots
  // accumulate tombstones, forcing probe chains and rehashes to stay correct.
  LeafIndex index;
  const KeyPath zero = KeyPath::FromString("0").value();
  const KeyPath one = KeyPath::FromString("1").value();
  for (int round = 0; round < 20; ++round) {
    for (PeerId h = 0; h < 50; ++h) {
      ASSERT_TRUE(index.InsertOrRefresh(
          Entry(h, static_cast<ItemId>(round * 100 + h), h % 2 ? "10" : "01",
                round + 1)));
    }
    // Evict the "1*" half; the "0*" half stays and must remain findable.
    auto moved = index.ExtractNotMatching(zero);
    EXPECT_EQ(moved.size(), 25u);
    for (PeerId h = 0; h < 50; h += 2) {
      ASSERT_NE(index.Find(h, static_cast<ItemId>(round * 100 + h)), nullptr);
    }
  }
  EXPECT_EQ(index.size(), 20u * 25u);
  size_t matching_one = 0;
  index.ForEachMatching(one, [&](const IndexEntry&) { ++matching_one; });
  EXPECT_EQ(matching_one, 0u);
}

TEST(LeafIndexTest, MergeFromSelfIsNoop) {
  LeafIndex index;
  index.InsertOrRefresh(Entry(1, 1, "00", 5));
  EXPECT_EQ(index.MergeFrom(index), 0u);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.Find(1, 1)->version, 5u);
}

TEST(LeafIndexTest, ApproxMemoryBytesTracksTableAndSpilledKeys) {
  LeafIndex index;
  EXPECT_EQ(index.ApproxMemoryBytes(), 0u);
  index.InsertOrRefresh(Entry(1, 1, "01"));
  const size_t with_inline_key = index.ApproxMemoryBytes();
  EXPECT_GT(with_inline_key, 0u);
  // A 65+ bit key spills to the KeyPath heap and must be counted.
  IndexEntry big = Entry(2, 2, std::string(70, '0').c_str());
  index.InsertOrRefresh(big);
  EXPECT_GE(index.ApproxMemoryBytes(), with_inline_key + 16);
}

}  // namespace
}  // namespace pgrid
