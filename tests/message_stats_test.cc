#include "sim/message_stats.h"

#include <gtest/gtest.h>

namespace pgrid {
namespace {

TEST(MessageStatsTest, StartsAtZero) {
  MessageStats stats;
  EXPECT_EQ(stats.total(), 0u);
  EXPECT_EQ(stats.count(MessageType::kQuery), 0u);
}

TEST(MessageStatsTest, RecordAccumulatesPerType) {
  MessageStats stats;
  stats.Record(MessageType::kExchange);
  stats.Record(MessageType::kExchange, 4);
  stats.Record(MessageType::kQuery, 2);
  EXPECT_EQ(stats.count(MessageType::kExchange), 5u);
  EXPECT_EQ(stats.count(MessageType::kQuery), 2u);
  EXPECT_EQ(stats.count(MessageType::kUpdate), 0u);
  EXPECT_EQ(stats.total(), 7u);
}

TEST(MessageStatsTest, ResetZeroesEverything) {
  MessageStats stats;
  stats.Record(MessageType::kUpdate, 3);
  stats.Record(MessageType::kDataTransfer, 9);
  stats.Reset();
  EXPECT_EQ(stats.total(), 0u);
}

TEST(MessageStatsTest, DeltaMeasuresWindow) {
  MessageStats stats;
  stats.Record(MessageType::kQuery, 10);
  MessageDelta delta(stats, MessageType::kQuery);
  EXPECT_EQ(delta.Count(), 0u);
  stats.Record(MessageType::kQuery, 3);
  stats.Record(MessageType::kUpdate, 5);  // other types don't leak in
  EXPECT_EQ(delta.Count(), 3u);
}

TEST(MessageStatsTest, MergeFromAddsEveryType) {
  MessageStats total;
  total.Record(MessageType::kExchange, 5);
  MessageStats shard;
  shard.Record(MessageType::kExchange, 2);
  shard.Record(MessageType::kQuery, 7);
  shard.Record(MessageType::kDataTransfer, 11);
  total.MergeFrom(shard);
  EXPECT_EQ(total.count(MessageType::kExchange), 7u);
  EXPECT_EQ(total.count(MessageType::kQuery), 7u);
  EXPECT_EQ(total.count(MessageType::kDataTransfer), 11u);
  EXPECT_EQ(total.total(), 25u);
  // The shard is left untouched; the sharded-accounting drivers Reset() it
  // explicitly after each barrier merge.
  EXPECT_EQ(shard.total(), 20u);
}

TEST(MessageStatsTest, MergeOrderDoesNotMatterForTotals) {
  MessageStats a, b, ab, ba;
  a.Record(MessageType::kQuery, 3);
  b.Record(MessageType::kQuery, 4);
  b.Record(MessageType::kControl, 1);
  ab.MergeFrom(a);
  ab.MergeFrom(b);
  ba.MergeFrom(b);
  ba.MergeFrom(a);
  EXPECT_EQ(ab.count(MessageType::kQuery), ba.count(MessageType::kQuery));
  EXPECT_EQ(ab.total(), ba.total());
}

TEST(MessageStatsTest, TypeNamesAreStable) {
  EXPECT_EQ(MessageTypeName(MessageType::kExchange), "exchange");
  EXPECT_EQ(MessageTypeName(MessageType::kQuery), "query");
  EXPECT_EQ(MessageTypeName(MessageType::kUpdate), "update");
  EXPECT_EQ(MessageTypeName(MessageType::kDataTransfer), "data_transfer");
  EXPECT_EQ(MessageTypeName(MessageType::kControl), "control");
}

}  // namespace
}  // namespace pgrid
