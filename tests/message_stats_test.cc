#include "sim/message_stats.h"

#include <gtest/gtest.h>

namespace pgrid {
namespace {

TEST(MessageStatsTest, StartsAtZero) {
  MessageStats stats;
  EXPECT_EQ(stats.total(), 0u);
  EXPECT_EQ(stats.count(MessageType::kQuery), 0u);
}

TEST(MessageStatsTest, RecordAccumulatesPerType) {
  MessageStats stats;
  stats.Record(MessageType::kExchange);
  stats.Record(MessageType::kExchange, 4);
  stats.Record(MessageType::kQuery, 2);
  EXPECT_EQ(stats.count(MessageType::kExchange), 5u);
  EXPECT_EQ(stats.count(MessageType::kQuery), 2u);
  EXPECT_EQ(stats.count(MessageType::kUpdate), 0u);
  EXPECT_EQ(stats.total(), 7u);
}

TEST(MessageStatsTest, ResetZeroesEverything) {
  MessageStats stats;
  stats.Record(MessageType::kUpdate, 3);
  stats.Record(MessageType::kDataTransfer, 9);
  stats.Reset();
  EXPECT_EQ(stats.total(), 0u);
}

TEST(MessageStatsTest, DeltaMeasuresWindow) {
  MessageStats stats;
  stats.Record(MessageType::kQuery, 10);
  MessageDelta delta(stats, MessageType::kQuery);
  EXPECT_EQ(delta.Count(), 0u);
  stats.Record(MessageType::kQuery, 3);
  stats.Record(MessageType::kUpdate, 5);  // other types don't leak in
  EXPECT_EQ(delta.Count(), 3u);
}

TEST(MessageStatsTest, TypeNamesAreStable) {
  EXPECT_EQ(MessageTypeName(MessageType::kExchange), "exchange");
  EXPECT_EQ(MessageTypeName(MessageType::kQuery), "query");
  EXPECT_EQ(MessageTypeName(MessageType::kUpdate), "update");
  EXPECT_EQ(MessageTypeName(MessageType::kDataTransfer), "data_transfer");
  EXPECT_EQ(MessageTypeName(MessageType::kControl), "control");
}

}  // namespace
}  // namespace pgrid
