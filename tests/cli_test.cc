#include "cli/cli.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/fuzzer.h"
#include "sim/scenario.h"

namespace pgrid {
namespace cli {
namespace {

struct CliResult {
  int exit_code;
  std::string out;
  std::string err;
};

CliResult RunArgs(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return CliResult{code, out.str(), err.str()};
}

std::string TempSnapshot(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CliTest, NoArgsPrintsUsageAndFails) {
  CliResult r = RunArgs({});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("commands:"), std::string::npos);
}

TEST(CliTest, HelpSucceeds) {
  CliResult r = RunArgs({"help"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("bench-search"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  CliResult r = RunArgs({"frobnicate"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, BuildRequiresFlags) {
  CliResult r = RunArgs({"build"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("--peers"), std::string::npos);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliTest, BuildRejectsBadNumbers) {
  CliResult r = RunArgs({"build", "--peers=abc", "--out=/tmp/x"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("integer"), std::string::npos);
}

TEST(CliTest, FullWorkflowBuildInfoVerifySearchBench) {
  const std::string file = TempSnapshot("cli_workflow.pgrid");
  CliResult build = RunArgs({"build", "--peers=128", "--maxl=4", "--refmax=3",
                         "--out=" + file, "--seed=7"});
  ASSERT_EQ(build.exit_code, 0) << build.err;
  EXPECT_NE(build.out.find("snapshot written"), std::string::npos);

  CliResult info = RunArgs({"info", "--in=" + file});
  ASSERT_EQ(info.exit_code, 0) << info.err;
  EXPECT_NE(info.out.find("peers: 128"), std::string::npos);
  EXPECT_NE(info.out.find("maxl=4"), std::string::npos);
  EXPECT_NE(info.out.find("path length histogram"), std::string::npos);

  CliResult verify = RunArgs({"verify", "--in=" + file});
  ASSERT_EQ(verify.exit_code, 0) << verify.err;
  EXPECT_NE(verify.out.find("OK"), std::string::npos);

  CliResult search = RunArgs({"search", "--in=" + file, "--key=0110", "--seed=3"});
  ASSERT_EQ(search.exit_code, 0) << search.err;
  EXPECT_NE(search.out.find("found: peer"), std::string::npos);

  CliResult bench =
      RunArgs({"bench-search", "--in=" + file, "--queries=200", "--online=0.5"});
  ASSERT_EQ(bench.exit_code, 0) << bench.err;
  EXPECT_NE(bench.out.find("success rate"), std::string::npos);

  CliResult prefix = RunArgs({"prefix", "--in=" + file, "--key=01"});
  ASSERT_EQ(prefix.exit_code, 0) << prefix.err;
  EXPECT_NE(prefix.out.find("responders"), std::string::npos);

  std::remove(file.c_str());
}

TEST(CliTest, SearchOnMissingSnapshotFails) {
  CliResult r = RunArgs({"search", "--in=/nonexistent.pgrid", "--key=01"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("NotFound"), std::string::npos);
}

TEST(CliTest, SearchRejectsBadKey) {
  const std::string file = TempSnapshot("cli_badkey.pgrid");
  ASSERT_EQ(RunArgs({"build", "--peers=32", "--maxl=3", "--out=" + file}).exit_code, 0);
  CliResult r = RunArgs({"search", "--in=" + file, "--key=01x"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("invalid bit"), std::string::npos);
  std::remove(file.c_str());
}

TEST(CliTest, SearchRequiresKeyOrText) {
  const std::string file = TempSnapshot("cli_nokey.pgrid");
  ASSERT_EQ(RunArgs({"build", "--peers=32", "--maxl=3", "--out=" + file}).exit_code, 0);
  CliResult r = RunArgs({"search", "--in=" + file});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("--key"), std::string::npos);
  std::remove(file.c_str());
}

TEST(CliTest, PrefixAcceptsTextKeys) {
  const std::string file = TempSnapshot("cli_text.pgrid");
  ASSERT_EQ(
      RunArgs({"build", "--peers=64", "--maxl=4", "--out=" + file}).exit_code, 0);
  CliResult r = RunArgs({"prefix", "--in=" + file, "--text=ab"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  std::remove(file.c_str());
}

TEST(CliTest, RangeCommand) {
  const std::string file = TempSnapshot("cli_range.pgrid");
  ASSERT_EQ(RunArgs({"build", "--peers=64", "--maxl=4", "--out=" + file}).exit_code,
            0);
  CliResult ok = RunArgs({"range", "--in=" + file, "--lo=0010", "--hi=0110"});
  EXPECT_EQ(ok.exit_code, 0) << ok.err;
  EXPECT_NE(ok.out.find("responders"), std::string::npos);
  CliResult bad = RunArgs({"range", "--in=" + file, "--lo=11", "--hi=00"});
  EXPECT_EQ(bad.exit_code, 1);
  CliResult missing = RunArgs({"range", "--in=" + file, "--lo=11"});
  EXPECT_EQ(missing.exit_code, 1);
  EXPECT_NE(missing.err.find("--hi"), std::string::npos);
  std::remove(file.c_str());
}

TEST(CliTest, StartOutOfRangeFails) {
  const std::string file = TempSnapshot("cli_start.pgrid");
  ASSERT_EQ(RunArgs({"build", "--peers=32", "--maxl=3", "--out=" + file}).exit_code, 0);
  CliResult r = RunArgs({"search", "--in=" + file, "--key=01", "--start=999"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("out of range"), std::string::npos);
  std::remove(file.c_str());
}

TEST(CliTest, MetricsJsonFlagDumpsRegistry) {
  const std::string file = TempSnapshot("cli_metrics.pgrid");
  const std::string metrics = TempSnapshot("cli_metrics.json");
  ASSERT_EQ(RunArgs({"build", "--peers=64", "--maxl=4", "--out=" + file}).exit_code,
            0);

  CliResult r = RunArgs({"bench-search", "--in=" + file, "--queries=100",
                         "--online=0.5", "--metrics-json=" + metrics});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("metrics written to"), std::string::npos);

  std::ifstream in(metrics);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  // The run's counters are present and the document has the exporter's shape.
  EXPECT_EQ(json.rfind("{\n", 0), 0u);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"search.messages\""), std::string::npos);
  EXPECT_NE(json.find("\"search.queries\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"search.hops\""), std::string::npos);

  std::remove(file.c_str());
  std::remove(metrics.c_str());
}

TEST(CliTest, MetricsJsonToUnwritablePathFails) {
  const std::string file = TempSnapshot("cli_metrics_bad.pgrid");
  ASSERT_EQ(RunArgs({"build", "--peers=32", "--maxl=3", "--out=" + file}).exit_code,
            0);
  CliResult r = RunArgs({"search", "--in=" + file, "--key=01",
                         "--metrics-json=/nonexistent-dir/metrics.json"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
  std::remove(file.c_str());
}

TEST(CliTest, FuzzCleanSweepSucceeds) {
  CliResult r = RunArgs({"fuzz", "--seeds=3", "--base-seed=1", "--max-steps=15"});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("3 seed(s) run, 0 failure(s)"), std::string::npos);
}

TEST(CliTest, FuzzRejectsBadBounds) {
  CliResult r = RunArgs({"fuzz", "--min-steps=20", "--max-steps=5"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliTest, ReplayCleanScenarioSucceedsAndIsDeterministic) {
  const std::string file = TempSnapshot("cli_replay.pgs");
  sim::Scenario s = sim::ScenarioFuzzer::Generate(11);
  ASSERT_TRUE(sim::SaveScenario(s, file).ok());

  CliResult a = RunArgs({"replay", file});       // positional form
  ASSERT_EQ(a.exit_code, 0) << a.err;
  EXPECT_NE(a.out.find("OK: all barriers passed"), std::string::npos);
  CliResult b = RunArgs({"replay", "--in=" + file});  // flag form
  ASSERT_EQ(b.exit_code, 0) << b.err;
  EXPECT_EQ(a.out, b.out);  // same seed -> same digest line, byte for byte

  std::remove(file.c_str());
}

TEST(CliTest, ReplayReportsViolationsWithNonzeroExit) {
  const std::string file = TempSnapshot("cli_replay_bad.pgs");
  sim::Scenario s = sim::ScenarioFuzzer::Generate(11);
  s.steps.push_back({sim::StepKind::kCorrupt, 0, 0, 0, 0});  // self-reference
  ASSERT_TRUE(sim::SaveScenario(s, file).ok());

  CliResult r = RunArgs({"replay", file});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("FAILED at step"), std::string::npos);
  EXPECT_NE(r.out.find("self-reference"), std::string::npos);
  std::remove(file.c_str());
}

TEST(CliTest, ReplayWithoutFileFails) {
  CliResult r = RunArgs({"replay"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("scenario file"), std::string::npos);
}

TEST(CliTest, VerifyPrintsCategorizedReportOnCorruptSnapshot) {
  // Round-trip a fuzzed grid through a snapshot, then corrupt one peer's refs
  // in-memory is not possible via CLI -- instead verify the report shape on a
  // clean snapshot and rely on invariants_test for negative coverage.
  const std::string file = TempSnapshot("cli_verify2.pgrid");
  ASSERT_EQ(
      RunArgs({"build", "--peers=64", "--maxl=4", "--out=" + file}).exit_code, 0);
  CliResult r = RunArgs({"verify", "--in=" + file});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("all invariants hold"), std::string::npos);
  std::remove(file.c_str());
}

TEST(CliTest, TraceRendersSpanTreeAndCriticalPath) {
  const std::string file = TempSnapshot("cli_trace.json");
  CliResult r = RunArgs({"trace", "--peers=8", "--maxl=3", "--seed=7",
                         "--trace-json=" + file});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  // The command publishes then searches over a traced in-process cluster and
  // renders every trace as a span tree plus the search's critical path.
  EXPECT_NE(r.out.find("cluster: 8 peers"), std::string::npos);
  EXPECT_NE(r.out.find("trace "), std::string::npos);
  EXPECT_NE(r.out.find("node.publish"), std::string::npos);
  EXPECT_NE(r.out.find("node.route"), std::string::npos);
  EXPECT_NE(r.out.find("critical path:"), std::string::npos);
  // --trace-json dumps the same events in chrome://tracing format.
  std::ifstream in(file);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(buf.str().find("node.route"), std::string::npos);
  std::remove(file.c_str());
}

TEST(CliTest, TraceRejectsBadFlags) {
  EXPECT_EQ(RunArgs({"trace", "--peers=1"}).exit_code, 1);
  EXPECT_EQ(RunArgs({"trace", "--maxl=0"}).exit_code, 1);
}

}  // namespace
}  // namespace cli
}  // namespace pgrid
