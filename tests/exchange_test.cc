#include "core/exchange.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/stats.h"
#include "storage/leaf_index.h"
#include "tests/test_util.h"

namespace pgrid {
namespace {

using testing_util::Key;

ExchangeConfig Config(size_t maxl, size_t refmax = 1, size_t recmax = 0) {
  ExchangeConfig cfg;
  cfg.maxl = maxl;
  cfg.refmax = refmax;
  cfg.recmax = recmax;
  return cfg;
}

IndexEntry Entry(PeerId holder, ItemId item, const char* key) {
  IndexEntry e;
  e.holder = holder;
  e.item_id = item;
  e.key = Key(key);
  e.version = 1;
  return e;
}

TEST(ExchangeTest, CaseOneSplitsIdenticalEmptyPaths) {
  Grid grid(2);
  Rng rng(1);
  ExchangeEngine engine(&grid, Config(4), &rng);
  engine.Exchange(0, 1);
  EXPECT_EQ(grid.peer(0).path().ToString(), "0");
  EXPECT_EQ(grid.peer(1).path().ToString(), "1");
  ASSERT_EQ(grid.peer(0).RefsAt(1).size(), 1u);
  EXPECT_EQ(grid.peer(0).RefsAt(1)[0], 1u);
  ASSERT_EQ(grid.peer(1).RefsAt(1).size(), 1u);
  EXPECT_EQ(grid.peer(1).RefsAt(1)[0], 0u);
  EXPECT_EQ(engine.num_exchanges(), 1u);
  EXPECT_DOUBLE_EQ(grid.AveragePathLength(), 1.0);
}

TEST(ExchangeTest, CaseOneSplitsIdenticalDeepPaths) {
  Grid grid(2);
  Rng rng(2);
  ExchangeEngine engine(&grid, Config(4), &rng);
  engine.Exchange(0, 1);  // -> "0" / "1"
  // Force both to the same deeper path by manual surgery is not possible through the
  // public API; instead meet peers repeatedly: 0 and 1 diverge at level 1, so use a
  // third peer. Simpler: verify via repeated meetings in a 2-peer grid that paths
  // never share a level-1 bit again (they reference each other and diverge).
  engine.Exchange(0, 1);
  EXPECT_EQ(grid.peer(0).path().length(), 1u);
  EXPECT_EQ(grid.peer(1).path().length(), 1u);
}

TEST(ExchangeTest, CaseTwoShorterPeerSpecializesOpposite) {
  Grid grid(3);
  Rng rng(3);
  ExchangeEngine engine(&grid, Config(4), &rng);
  engine.Exchange(0, 1);  // 0 -> "0", 1 -> "1"
  // Peer 2 still has the empty path; meeting peer 0 ("0") puts them in case 2 with
  // lc = 0: peer 2 must take the complement "1".
  engine.Exchange(2, 0);
  EXPECT_EQ(grid.peer(2).path().ToString(), "1");
  ASSERT_EQ(grid.peer(2).RefsAt(1).size(), 1u);
  EXPECT_EQ(grid.peer(2).RefsAt(1)[0], 0u);
  // Peer 0 keeps refmax = 1 references at level 1 (either peer 1 or peer 2).
  ASSERT_EQ(grid.peer(0).RefsAt(1).size(), 1u);
  PeerId ref = grid.peer(0).RefsAt(1)[0];
  EXPECT_TRUE(ref == 1u || ref == 2u);
}

TEST(ExchangeTest, CaseThreeIsSymmetricToCaseTwo) {
  Grid grid(3);
  Rng rng(4);
  ExchangeEngine engine(&grid, Config(4), &rng);
  engine.Exchange(0, 1);   // 0 -> "0", 1 -> "1"
  engine.Exchange(0, 2);   // now a1 is the longer one: case 3, peer 2 -> "1"
  EXPECT_EQ(grid.peer(2).path().ToString(), "1");
  ASSERT_EQ(grid.peer(2).RefsAt(1).size(), 1u);
  EXPECT_EQ(grid.peer(2).RefsAt(1)[0], 0u);
}

TEST(ExchangeTest, MaxlBoundsPathLength) {
  Grid grid(2);
  Rng rng(5);
  ExchangeEngine engine(&grid, Config(/*maxl=*/1), &rng);
  for (int i = 0; i < 10; ++i) engine.Exchange(0, 1);
  EXPECT_EQ(grid.peer(0).path().length(), 1u);
  EXPECT_EQ(grid.peer(1).path().length(), 1u);
}

TEST(ExchangeTest, ReplicasAtMaxlBecomeBuddiesAndMergeIndexes) {
  Grid grid(4);
  Rng rng(6);
  ExchangeConfig cfg = Config(/*maxl=*/1);
  cfg.manage_data = true;
  ExchangeEngine engine(&grid, cfg, &rng);
  engine.Exchange(0, 1);  // 0 -> "0", 1 -> "1"
  engine.Exchange(2, 3);  // 2 -> "0", 3 -> "1"
  grid.peer(0).index().InsertOrRefresh(Entry(0, 1, "00"));
  grid.peer(2).index().InsertOrRefresh(Entry(2, 2, "01"));
  engine.Exchange(0, 2);  // same path "0" at maxl: buddy merge
  EXPECT_EQ(grid.peer(0).buddies(), std::vector<PeerId>{2});
  EXPECT_EQ(grid.peer(2).buddies(), std::vector<PeerId>{0});
  EXPECT_NE(grid.peer(0).index().Find(2, 2), nullptr);
  EXPECT_NE(grid.peer(2).index().Find(0, 1), nullptr);
}

TEST(ExchangeTest, BuddyListsPropagateTransitively) {
  Grid grid(6);
  Rng rng(7);
  ExchangeConfig cfg = Config(/*maxl=*/1);
  ExchangeEngine engine(&grid, cfg, &rng);
  engine.Exchange(0, 1);
  engine.Exchange(2, 3);
  engine.Exchange(4, 5);  // 0, 2, 4 -> "0"
  engine.Exchange(0, 2);
  engine.Exchange(2, 4);
  // 2 knows both 0 and 4; 4 learned 0 transitively from 2.
  auto b4 = grid.peer(4).buddies();
  EXPECT_NE(std::find(b4.begin(), b4.end(), 0u), b4.end());
}

TEST(ExchangeTest, DataReconciliationFollowsTheSplit) {
  Grid grid(2);
  Rng rng(8);
  ExchangeConfig cfg = Config(4);
  cfg.manage_data = true;
  ExchangeEngine engine(&grid, cfg, &rng);
  grid.peer(0).index().InsertOrRefresh(Entry(0, 1, "0000"));
  grid.peer(0).index().InsertOrRefresh(Entry(0, 2, "1111"));
  grid.peer(1).index().InsertOrRefresh(Entry(1, 3, "0101"));
  engine.Exchange(0, 1);  // 0 -> "0", 1 -> "1"
  // Peer 0 keeps keys under "0", peer 1 keys under "1".
  EXPECT_NE(grid.peer(0).index().Find(0, 1), nullptr);
  EXPECT_EQ(grid.peer(0).index().Find(0, 2), nullptr);
  EXPECT_NE(grid.peer(1).index().Find(0, 2), nullptr);
  EXPECT_NE(grid.peer(0).index().Find(1, 3), nullptr);
  EXPECT_EQ(grid.peer(1).index().Find(1, 3), nullptr);
  EXPECT_GT(grid.stats().count(MessageType::kDataTransfer), 0u);
}

TEST(ExchangeTest, UnplaceableEntriesParkInForeignBufferNotDropped) {
  Grid grid(4);
  Rng rng(9);
  ExchangeConfig cfg = Config(4);
  ExchangeEngine engine(&grid, cfg, &rng);
  // Build paths: 0 -> "00", 1 -> "01" via two meetings; peer 1 then receives an
  // entry under "1...", which matches neither side of a (0,1) meeting.
  engine.Exchange(0, 1);  // "0"/"1"
  engine.Exchange(2, 3);  // "0"/"1"
  engine.Exchange(0, 2);  // both "0" -> "00"/"01"
  grid.peer(0).index().InsertOrRefresh(Entry(0, 9, "1111"));
  size_t before = grid.peer(0).index().size() + grid.peer(0).foreign_entries().size();
  engine.Exchange(0, 2);  // "00" vs "01": reconciliation runs, "1111" fits neither
  size_t after = grid.peer(0).index().size() + grid.peer(0).foreign_entries().size() +
                 grid.peer(2).index().Matching(Key("1111")).size();
  EXPECT_GE(after, before);
  // The entry must exist somewhere: foreign buffer of 0, or migrated onward.
  bool in_foreign = false;
  for (const auto& e : grid.peer(0).foreign_entries()) {
    if (e.item_id == 9) in_foreign = true;
  }
  EXPECT_TRUE(in_foreign || grid.peer(0).index().Find(0, 9) != nullptr ||
              grid.peer(2).index().Find(0, 9) != nullptr);
}

TEST(ExchangeTest, RecursiveExchangeAcceleratesConstruction) {
  // Same seed and community size; recmax = 2 must need far fewer exchanges than
  // recmax = 0 (paper Sec. 5.1, ~3x at N = 500, maxl = 6).
  auto no_rec = testing_util::Build(200, 5, 1, 0, 42);
  auto with_rec = testing_util::Build(200, 5, 1, 2, 42);
  ASSERT_TRUE(no_rec.report.converged);
  ASSERT_TRUE(with_rec.report.converged);
  EXPECT_LT(with_rec.report.exchanges, no_rec.report.exchanges);
}

TEST(ExchangeTest, RefmaxIsNeverExceededDuringConstruction) {
  for (size_t refmax : {1u, 2u, 4u}) {
    auto built = testing_util::Build(128, 4, refmax, 2, 1000 + refmax);
    Status s = GridStats::CheckInvariants(*built.grid, built.config);
    EXPECT_TRUE(s.ok()) << s;
  }
}

TEST(ExchangeTest, SelfExchangeIsANoop) {
  Grid grid(2);
  Rng rng(10);
  ExchangeEngine engine(&grid, Config(4), &rng);
  engine.Exchange(0, 0);
  EXPECT_EQ(engine.num_exchanges(), 0u);
  EXPECT_EQ(grid.peer(0).depth(), 0u);
}

TEST(ExchangeTest, ExchangeCountsIncludeRecursiveCalls) {
  // With recursion enabled, some meetings trigger more than one exchange execution.
  auto built = testing_util::Build(200, 5, 2, 2, 77);
  EXPECT_GT(built.report.exchanges, built.report.meetings);
}

TEST(ExchangeTest, DeterministicForFixedSeed) {
  auto a = testing_util::Build(100, 4, 2, 2, 123);
  auto b = testing_util::Build(100, 4, 2, 2, 123);
  EXPECT_EQ(a.report.exchanges, b.report.exchanges);
  EXPECT_EQ(a.report.meetings, b.report.meetings);
  for (size_t i = 0; i < a.grid->size(); ++i) {
    EXPECT_EQ(a.grid->peer(i).path(), b.grid->peer(i).path());
  }
}

TEST(ExchangeTest, OfflinePeersAreSkippedInRecursion) {
  // With everyone offline, recursion (case 4) cannot contact referenced peers; the
  // construction still makes progress through direct meetings only.
  Grid grid(8);
  Rng rng(11);
  OnlineModel offline(OnlineMode::kSnapshot, 8, 0.0, &rng);
  ExchangeConfig cfg = Config(3, 2, 2);
  ExchangeEngine engine(&grid, cfg, &rng, &offline);
  MeetingScheduler sched(8);
  for (int i = 0; i < 2000; ++i) {
    Meeting m = sched.Next(&rng);
    engine.Exchange(m.a, m.b);
  }
  // Direct meetings always execute exactly one exchange: e == meetings.
  EXPECT_EQ(engine.num_exchanges(), 2000u);
  Status s = GridStats::CheckInvariants(grid, cfg);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(ExchangeTest, DataIsConservedThroughoutConstruction) {
  // Property: index entries are redistributed during construction but never lost --
  // every (holder, item) pair present initially is present somewhere afterwards
  // (in some index or foreign buffer).
  for (uint64_t seed : {1u, 2u, 3u}) {
    const size_t num_peers = 128;
    Grid grid(num_peers);
    Rng rng(seed);
    ExchangeConfig cfg = Config(5, 3, 2);
    cfg.recursion_fanout = 2;
    ExchangeEngine engine(&grid, cfg, &rng);
    // Seed entries at random peers before any structure exists.
    const size_t num_items = 200;
    for (ItemId item = 1; item <= num_items; ++item) {
      grid.peer(static_cast<PeerId>(rng.UniformIndex(num_peers)))
          .index()
          .InsertOrRefresh(Entry(static_cast<PeerId>(item % num_peers), item,
                                 KeyPath::Random(&rng, 10).ToString().c_str()));
    }
    MeetingScheduler sched(num_peers);
    for (int m = 0; m < 20000; ++m) {
      Meeting meeting = sched.Next(&rng);
      engine.Exchange(meeting.a, meeting.b);
    }
    std::set<ItemId> alive;
    for (const PeerState& p : grid) {
      for (const IndexEntry& e : p.index().All()) alive.insert(e.item_id);
      for (const IndexEntry& e : p.foreign_entries()) alive.insert(e.item_id);
    }
    EXPECT_EQ(alive.size(), num_items) << "seed " << seed;
    // And placement invariant: indexed entries overlap their peer's path.
    for (const PeerState& p : grid) {
      for (const IndexEntry& e : p.index().All()) {
        EXPECT_TRUE(PathsOverlap(p.path(), e.key))
            << "peer " << p.id() << " wrongly indexes " << e.key;
      }
    }
  }
}

// Construction across a parameter sweep keeps all structural invariants.
class ExchangeInvariantTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t, size_t>> {};

TEST_P(ExchangeInvariantTest, InvariantsHoldAfterConvergence) {
  auto [n, maxl, refmax, recmax] = GetParam();
  auto built = testing_util::Build(n, maxl, refmax, recmax,
                                   /*seed=*/n * 31 + maxl * 7 + refmax + recmax);
  EXPECT_TRUE(built.report.converged)
      << "n=" << n << " maxl=" << maxl << " refmax=" << refmax;
  Status s = GridStats::CheckInvariants(*built.grid, built.config);
  EXPECT_TRUE(s.ok()) << s;
  // Every peer reached a nonzero depth and none exceeded maxl.
  for (const PeerState& p : *built.grid) {
    EXPECT_GE(p.depth(), 1u);
    EXPECT_LE(p.depth(), maxl);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExchangeInvariantTest,
    ::testing::Values(std::make_tuple(64, 3, 1, 0), std::make_tuple(64, 3, 1, 2),
                      std::make_tuple(128, 4, 1, 2), std::make_tuple(128, 4, 2, 2),
                      std::make_tuple(128, 4, 4, 2), std::make_tuple(256, 5, 2, 1),
                      std::make_tuple(256, 5, 2, 3), std::make_tuple(200, 6, 1, 2),
                      std::make_tuple(300, 5, 3, 2)));

}  // namespace
}  // namespace pgrid
