// Protocol-equivalence check: the networked node and the simulator implement the
// same algorithms, so communities of equal size and parameters must develop
// statistically similar structures (depth, balance) and equivalent search
// behaviour. This guards against the two code paths drifting apart.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "core/exchange.h"
#include "core/grid_builder.h"
#include "core/search.h"
#include "core/stats.h"
#include "net/inproc_transport.h"
#include "net/node.h"

namespace pgrid {
namespace {

struct StructureSummary {
  double avg_depth = 0;
  double depth_stddev = 0;
  double avg_refs_per_level = 0;
  size_t min_depth = 0;
  size_t max_depth = 0;
};

StructureSummary Summarize(const std::vector<size_t>& depths,
                           const std::vector<size_t>& total_refs) {
  StructureSummary s;
  double sum = 0, sq = 0;
  s.min_depth = depths[0];
  s.max_depth = depths[0];
  for (size_t d : depths) {
    sum += static_cast<double>(d);
    sq += static_cast<double>(d) * static_cast<double>(d);
    s.min_depth = std::min(s.min_depth, d);
    s.max_depth = std::max(s.max_depth, d);
  }
  const double n = static_cast<double>(depths.size());
  s.avg_depth = sum / n;
  s.depth_stddev = std::sqrt(std::max(0.0, sq / n - s.avg_depth * s.avg_depth));
  double refs = 0, levels = 0;
  for (size_t i = 0; i < depths.size(); ++i) {
    refs += static_cast<double>(total_refs[i]);
    levels += static_cast<double>(depths[i]);
  }
  s.avg_refs_per_level = levels > 0 ? refs / levels : 0;
  return s;
}

TEST(NetSimAgreementTest, StructuresDevelopTheSameShape) {
  const size_t n = 48;
  const size_t maxl = 4, refmax = 3, meetings = 6000;

  // --- simulator community ---
  StructureSummary sim;
  {
    Grid grid(n);
    Rng rng(7);
    ExchangeConfig config;
    config.maxl = maxl;
    config.refmax = refmax;
    config.recmax = 2;
    config.recursion_fanout = 2;
    ExchangeEngine exchange(&grid, config, &rng);
    MeetingScheduler scheduler(n);
    for (size_t m = 0; m < meetings; ++m) {
      Meeting meeting = scheduler.Next(&rng);
      exchange.Exchange(meeting.a, meeting.b);
    }
    std::vector<size_t> depths, refs;
    for (const PeerState& p : grid) {
      depths.push_back(p.depth());
      refs.push_back(p.TotalRefs());
    }
    sim = Summarize(depths, refs);
  }

  // --- networked community over the in-process transport ---
  StructureSummary netted;
  {
    net::InProcTransport transport;
    net::NodeConfig config;
    config.maxl = maxl;
    config.refmax = refmax;
    config.recmax = 2;
    config.recursion_fanout = 2;
    std::vector<std::unique_ptr<net::PGridNode>> nodes;
    for (size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<net::PGridNode>(
          "node:" + std::to_string(i), &transport, config, 5000 + i));
      ASSERT_TRUE(nodes.back()->Start().ok());
    }
    Rng rng(7);
    for (size_t m = 0; m < meetings; ++m) {
      size_t a = rng.UniformIndex(n);
      size_t b = rng.UniformIndex(n);
      if (a == b) continue;
      (void)nodes[a]->MeetWith(nodes[b]->address());
    }
    std::vector<size_t> depths, refs;
    for (const auto& node : nodes) {
      KeyPath path = node->path();
      depths.push_back(path.length());
      size_t r = 0;
      for (size_t level = 1; level <= path.length(); ++level) {
        r += node->RefsAt(level).size();
      }
      refs.push_back(r);
    }
    netted = Summarize(depths, refs);
  }

  // Shapes must agree within loose statistical bands (different RNG streams).
  EXPECT_NEAR(netted.avg_depth, sim.avg_depth, 0.5)
      << "sim " << sim.avg_depth << " vs net " << netted.avg_depth;
  EXPECT_NEAR(netted.depth_stddev, sim.depth_stddev, 0.5);
  EXPECT_NEAR(netted.avg_refs_per_level, sim.avg_refs_per_level, 1.0);
  EXPECT_GE(netted.avg_depth, 0.9 * static_cast<double>(maxl));
  EXPECT_GE(sim.avg_depth, 0.9 * static_cast<double>(maxl));
}

}  // namespace
}  // namespace pgrid
