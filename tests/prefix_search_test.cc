#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/search.h"
#include "core/stats.h"
#include "key/text_key.h"
#include "tests/test_util.h"

namespace pgrid {
namespace {

using testing_util::Key;

/// Installs an entry at every co-responsible peer (perfectly consistent seeding).
void InstallEverywhere(Grid* grid, const IndexEntry& entry) {
  for (PeerState& p : *grid) {
    if (PathsOverlap(p.path(), entry.key)) p.index().InsertOrRefresh(entry);
  }
}

IndexEntry Entry(ItemId id, const KeyPath& key) {
  IndexEntry e;
  e.holder = 1;
  e.item_id = id;
  e.key = key;
  e.version = 1;
  return e;
}

TEST(PrefixSearchTest, FindsAllItemsUnderPrefixFullyOnline) {
  auto built = testing_util::Build(256, 5, 3, 2, 1);
  Rng rng(2);
  // Items on both sides of the prefix boundary.
  std::set<ItemId> under_prefix;
  for (ItemId id = 1; id <= 40; ++id) {
    KeyPath key = KeyPath::Random(&rng, 10);
    InstallEverywhere(built.grid.get(), Entry(id, key));
    if (Key("01").IsPrefixOf(key)) under_prefix.insert(id);
  }
  SearchEngine search(built.grid.get(), nullptr, &rng);
  PrefixSearchResult r =
      search.PrefixSearch(/*start=*/0, Key("01"), /*fanout=*/8);
  std::set<ItemId> found;
  for (const IndexEntry& e : r.entries) {
    EXPECT_TRUE(Key("01").IsPrefixOf(e.key)) << "non-matching entry " << e.key;
    found.insert(e.item_id);
  }
  EXPECT_EQ(found, under_prefix);
  EXPECT_GT(r.messages, 0u);
}

TEST(PrefixSearchTest, RespondersAllOverlapPrefix) {
  auto built = testing_util::Build(256, 5, 3, 2, 3);
  Rng rng(4);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  for (const char* prefix : {"0", "10", "110", "0101"}) {
    PrefixSearchResult r = search.PrefixSearch(0, Key(prefix), 8);
    EXPECT_FALSE(r.responders.empty()) << prefix;
    std::set<PeerId> distinct(r.responders.begin(), r.responders.end());
    EXPECT_EQ(distinct.size(), r.responders.size()) << "duplicate responders";
    for (PeerId p : r.responders) {
      EXPECT_TRUE(PathsOverlap(built.grid->peer(p).path(), Key(prefix)));
    }
  }
}

TEST(PrefixSearchTest, EmptyPrefixReachesWholeGridRegion) {
  auto built = testing_util::Build(128, 4, 3, 2, 5);
  Rng rng(6);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  PrefixSearchResult r = search.PrefixSearch(0, KeyPath(), /*fanout=*/16);
  // The empty prefix covers everything; with full fan-out the walk should touch a
  // large portion of the key space (bounded by visited-set pruning).
  std::set<std::string> paths;
  for (PeerId p : r.responders) {
    paths.insert(built.grid->peer(p).path().ToString());
  }
  EXPECT_GT(paths.size(), 8u);
}

TEST(PrefixSearchTest, EntriesAreDeduplicatedAcrossReplicas) {
  auto built = testing_util::Build(256, 4, 4, 2, 7);
  Rng rng(8);
  IndexEntry e = Entry(99, Key("01011010"));
  InstallEverywhere(built.grid.get(), e);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  PrefixSearchResult r = search.PrefixSearch(3, Key("0101"), 8);
  size_t copies = 0;
  for (const IndexEntry& entry : r.entries) {
    if (entry.item_id == 99) ++copies;
  }
  EXPECT_EQ(copies, 1u);
}

TEST(PrefixSearchTest, LowFanoutCostsFewerMessages) {
  auto built = testing_util::Build(256, 5, 4, 2, 9);
  Rng rng(10);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  uint64_t low = 0, high = 0;
  for (int t = 0; t < 10; ++t) {
    low += search.PrefixSearch(0, Key("01"), 1).messages;
    high += search.PrefixSearch(0, Key("01"), 8).messages;
  }
  EXPECT_LT(low, high);
}

TEST(PrefixSearchTest, TextPrefixScenario) {
  // End-to-end trie use (Sec. 6): publish filenames as text keys, search "beat".
  auto built = testing_util::Build(512, 6, 4, 2, 11);
  Rng rng(12);
  const char* files[] = {"beatles-help",     "beatles-let_it_be", "beach-boys",
                         "beastie_boys",     "bob-dylan",         "beat-it",
                         "zappa",            "beatles-abbey_road"};
  ItemId id = 1;
  for (const char* name : files) {
    InstallEverywhere(built.grid.get(), Entry(id++, EncodeText(name).value()));
  }
  SearchEngine search(built.grid.get(), nullptr, &rng);
  PrefixSearchResult r =
      search.PrefixSearch(0, EncodeText("beat").value(), /*fanout=*/8);
  std::set<std::string> names;
  for (const IndexEntry& e : r.entries) {
    names.insert(DecodeText(e.key).value());
  }
  EXPECT_EQ(names, (std::set<std::string>{"beatles-help", "beatles-let_it_be",
                                          "beat-it", "beatles-abbey_road"}));
}

TEST(PrefixSearchTest, OfflinePeersReduceCoverageGracefully) {
  auto built = testing_util::Build(256, 5, 3, 2, 13);
  Rng rng(14);
  for (ItemId id = 1; id <= 30; ++id) {
    InstallEverywhere(built.grid.get(), Entry(id, KeyPath::Random(&rng, 10)));
  }
  OnlineModel online(OnlineMode::kSnapshot, 256, 0.3, &rng);
  SearchEngine search(built.grid.get(), &online, &rng);
  auto start = search.RandomOnlinePeer();
  ASSERT_TRUE(start.has_value());
  PrefixSearchResult r = search.PrefixSearch(*start, Key("0"), 4);
  // No crash, responders are a subset of the co-responsible peers.
  for (PeerId p : r.responders) {
    EXPECT_TRUE(PathsOverlap(built.grid->peer(p).path(), Key("0")));
  }
}

}  // namespace
}  // namespace pgrid
