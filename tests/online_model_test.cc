#include "sim/online_model.h"

#include <gtest/gtest.h>

namespace pgrid {
namespace {

TEST(OnlineModelTest, AlwaysOnIsAlwaysOnline) {
  OnlineModel model = OnlineModel::AlwaysOn(10);
  Rng rng(1);
  for (PeerId p = 0; p < 10; ++p) EXPECT_TRUE(model.IsOnline(p, &rng));
  EXPECT_EQ(model.CountOnlineInSnapshot(), 10u);
}

TEST(OnlineModelTest, SnapshotIsStableBetweenResamples) {
  Rng rng(2);
  OnlineModel model(OnlineMode::kSnapshot, 100, 0.5, &rng);
  std::vector<bool> first;
  for (PeerId p = 0; p < 100; ++p) first.push_back(model.IsOnline(p, &rng));
  for (int round = 0; round < 5; ++round) {
    for (PeerId p = 0; p < 100; ++p) EXPECT_EQ(model.IsOnline(p, &rng), first[p]);
  }
}

TEST(OnlineModelTest, ResampleChangesSnapshot) {
  Rng rng(3);
  OnlineModel model(OnlineMode::kSnapshot, 200, 0.5, &rng);
  std::vector<bool> first;
  for (PeerId p = 0; p < 200; ++p) first.push_back(model.IsOnline(p, &rng));
  model.Resample(&rng);
  int differing = 0;
  for (PeerId p = 0; p < 200; ++p) {
    if (model.IsOnline(p, &rng) != first[p]) ++differing;
  }
  EXPECT_GT(differing, 50);  // ~100 expected
}

TEST(OnlineModelTest, SnapshotFractionApproximatesProbability) {
  Rng rng(4);
  OnlineModel model(OnlineMode::kSnapshot, 10000, 0.3, &rng);
  double fraction = static_cast<double>(model.CountOnlineInSnapshot()) / 10000.0;
  EXPECT_NEAR(fraction, 0.3, 0.03);
}

TEST(OnlineModelTest, PerContactVaries) {
  Rng rng(5);
  OnlineModel model(OnlineMode::kPerContact, 1, 0.5, &rng);
  int online = 0;
  for (int i = 0; i < 1000; ++i) online += model.IsOnline(0, &rng) ? 1 : 0;
  EXPECT_GT(online, 400);
  EXPECT_LT(online, 600);
}

TEST(OnlineModelTest, PartialResampleZeroIsNoop) {
  Rng rng(20);
  OnlineModel model(OnlineMode::kSnapshot, 300, 0.5, &rng);
  std::vector<bool> before;
  for (PeerId p = 0; p < 300; ++p) before.push_back(model.IsOnline(p, &rng));
  model.PartialResample(&rng, 0.0);
  for (PeerId p = 0; p < 300; ++p) EXPECT_EQ(model.IsOnline(p, &rng), before[p]);
}

TEST(OnlineModelTest, PartialResampleChangesAboutFractionTimesFlipRate) {
  Rng rng(21);
  OnlineModel model(OnlineMode::kSnapshot, 10000, 0.5, &rng);
  std::vector<bool> before;
  for (PeerId p = 0; p < 10000; ++p) before.push_back(model.IsOnline(p, &rng));
  model.PartialResample(&rng, 0.3);
  int changed = 0;
  for (PeerId p = 0; p < 10000; ++p) {
    if (model.IsOnline(p, &rng) != before[p]) ++changed;
  }
  // 30% of peers redraw; half of redraws flip at p = 0.5 -> ~15% change.
  EXPECT_NEAR(static_cast<double>(changed) / 10000.0, 0.15, 0.03);
}

TEST(OnlineModelTest, PartialResamplePreservesOnlineFraction) {
  Rng rng(22);
  OnlineModel model(OnlineMode::kSnapshot, 10000, 0.3, &rng);
  for (int round = 0; round < 5; ++round) {
    model.PartialResample(&rng, 0.5);
    EXPECT_NEAR(static_cast<double>(model.CountOnlineInSnapshot()) / 10000.0, 0.3,
                0.03);
  }
}

TEST(OnlineModelTest, PinOverridesSnapshot) {
  Rng rng(6);
  OnlineModel model(OnlineMode::kSnapshot, 10, 0.0, &rng);
  EXPECT_FALSE(model.IsOnline(3, &rng));
  model.Pin(3, true);
  EXPECT_TRUE(model.IsOnline(3, &rng));
  model.Pin(3, std::nullopt);
  EXPECT_FALSE(model.IsOnline(3, &rng));
}

TEST(OnlineModelTest, PinOverridesAlwaysOn) {
  OnlineModel model = OnlineModel::AlwaysOn(4);
  Rng rng(7);
  model.Pin(2, false);
  EXPECT_FALSE(model.IsOnline(2, &rng));
  EXPECT_TRUE(model.IsOnline(1, &rng));
  EXPECT_EQ(model.CountOnlineInSnapshot(), 3u);
}

TEST(OnlineModelTest, PerPeerProbability) {
  Rng rng(8);
  OnlineModel model(OnlineMode::kPerContact, 2, 1.0, &rng);
  model.SetProbability(0, 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(model.IsOnline(0, &rng));
    EXPECT_TRUE(model.IsOnline(1, &rng));
  }
}

TEST(OnlineModelTest, AddPeerExtendsModel) {
  Rng rng(30);
  OnlineModel model(OnlineMode::kSnapshot, 3, 1.0, &rng);
  model.AddPeer(0.0, &rng);
  EXPECT_EQ(model.num_peers(), 4u);
  EXPECT_FALSE(model.IsOnline(3, &rng));
  model.AddPeer(1.0, &rng);
  EXPECT_TRUE(model.IsOnline(4, &rng));
  // Existing peers are untouched.
  for (PeerId p = 0; p < 3; ++p) EXPECT_TRUE(model.IsOnline(p, &rng));
}

TEST(OnlineModelTest, ZeroProbabilitySnapshotAllOffline) {
  Rng rng(9);
  OnlineModel model(OnlineMode::kSnapshot, 50, 0.0, &rng);
  EXPECT_EQ(model.CountOnlineInSnapshot(), 0u);
}

}  // namespace
}  // namespace pgrid
