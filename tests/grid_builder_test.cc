#include "core/grid_builder.h"

#include <gtest/gtest.h>

#include "core/stats.h"
#include "tests/test_util.h"

namespace pgrid {
namespace {

TEST(GridBuilderTest, ConvergesOnSmallCommunity) {
  auto built = testing_util::Build(100, 4, 1, 2, 1);
  EXPECT_TRUE(built.report.converged);
  EXPECT_GE(built.report.avg_path_length, 0.99 * 4);
  EXPECT_GT(built.report.meetings, 0u);
  EXPECT_GE(built.report.exchanges, built.report.meetings);
}

TEST(GridBuilderTest, RespectsMeetingBudget) {
  Grid grid(100);
  Rng rng(2);
  ExchangeConfig cfg;
  cfg.maxl = 6;
  ExchangeEngine exchange(&grid, cfg, &rng);
  MeetingScheduler scheduler(100);
  GridBuilder builder(&grid, &exchange, &scheduler, &rng);
  BuildReport report = builder.BuildToAverageDepth(6.0, /*max_meetings=*/10);
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.meetings, 10u);
}

TEST(GridBuilderTest, AveragePathLengthCounterMatchesDirectScan) {
  auto built = testing_util::Build(150, 4, 2, 2, 3);
  double direct = 0;
  for (const PeerState& p : *built.grid) direct += static_cast<double>(p.depth());
  direct /= static_cast<double>(built.grid->size());
  EXPECT_DOUBLE_EQ(built.grid->AveragePathLength(), direct);
  EXPECT_DOUBLE_EQ(built.report.avg_path_length, direct);
}

TEST(GridBuilderTest, ZeroThresholdConvergesImmediately) {
  Grid grid(10);
  Rng rng(4);
  ExchangeConfig cfg;
  ExchangeEngine exchange(&grid, cfg, &rng);
  MeetingScheduler scheduler(10);
  GridBuilder builder(&grid, &exchange, &scheduler, &rng);
  BuildReport report = builder.BuildToAverageDepth(0.0, 100);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.meetings, 0u);
}

TEST(GridBuilderTest, ExchangesPerPeerRoughlyConstantAcrossScale) {
  // The paper's T1 claim: e/N is flat in N. Allow a generous band; the point is the
  // absence of superlinear growth.
  double ratio_small, ratio_large;
  {
    auto built = testing_util::Build(100, 4, 1, 2, 5);
    ratio_small = static_cast<double>(built.report.exchanges) / 100.0;
  }
  {
    auto built = testing_util::Build(400, 4, 1, 2, 5);
    ratio_large = static_cast<double>(built.report.exchanges) / 400.0;
  }
  EXPECT_LT(ratio_large, ratio_small * 2.0);
  EXPECT_GT(ratio_large, ratio_small / 2.0);
}

TEST(GridBuilderTest, PathLengthDistributionIsTight) {
  // maxl bounds specialization; after convergence to 99% of maxl the distribution
  // must concentrate on {maxl-1, maxl}.
  auto built = testing_util::Build(300, 5, 1, 2, 6);
  ASSERT_TRUE(built.report.converged);
  auto hist = GridStats::PathLengthHistogram(*built.grid);
  size_t at_top = 0;
  for (const auto& [len, count] : hist) {
    if (len >= 4) at_top += count;
  }
  EXPECT_GT(static_cast<double>(at_top) / 300.0, 0.9);
}

// Convergence + invariants across seeds (randomized property check).
class GridBuilderSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridBuilderSeedTest, ConvergesAndKeepsInvariants) {
  auto built = testing_util::Build(150, 4, 2, 2, GetParam());
  EXPECT_TRUE(built.report.converged);
  Status s = GridStats::CheckInvariants(*built.grid, built.config);
  EXPECT_TRUE(s.ok()) << "seed " << GetParam() << ": " << s;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridBuilderSeedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace pgrid
