#include "core/insert.h"

#include <gtest/gtest.h>

#include "core/search.h"
#include "core/stats.h"
#include "tests/test_util.h"

namespace pgrid {
namespace {

DataItem Item(ItemId id, const KeyPath& key) {
  DataItem item;
  item.id = id;
  item.key = key;
  item.payload = "p" + std::to_string(id);
  item.version = 1;
  return item;
}

UpdateConfig Propagation(size_t recbreadth, size_t repetition) {
  UpdateConfig cfg;
  cfg.recbreadth = recbreadth;
  cfg.repetition = repetition;
  return cfg;
}

TEST(InsertTest, InsertedItemsAreSearchableFullyOnline) {
  auto built = testing_util::Build(256, 4, 3, 2, 1);
  Rng rng(2);
  InsertEngine insert(built.grid.get(), nullptr, &rng);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  size_t found = 0;
  const size_t items = 100;
  for (ItemId id = 1; id <= items; ++id) {
    DataItem item = Item(id, KeyPath::Random(&rng, 10));
    PeerId holder = static_cast<PeerId>(rng.UniformIndex(256));
    auto outcome = insert.Insert(item, holder, Propagation(4, 2));
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_GT(outcome->replicas_reached, 0u);
    // The holder physically stores the item.
    EXPECT_NE(built.grid->peer(holder).store().Get(id), nullptr);

    QueryResult q = search.Query(static_cast<PeerId>(rng.UniformIndex(256)),
                                 item.key);
    ASSERT_TRUE(q.found);
    if (built.grid->peer(q.responder).index().Find(holder, id) != nullptr) ++found;
  }
  // Fully online with fan-out 4 x 2 restarts, nearly every lookup should hit an
  // informed replica on the first try.
  EXPECT_GT(found, items * 8 / 10);
}

TEST(InsertTest, EntriesOnlyLandOnCoResponsiblePeers) {
  auto built = testing_util::Build(128, 4, 3, 2, 3);
  Rng rng(4);
  InsertEngine insert(built.grid.get(), nullptr, &rng);
  DataItem item = Item(7, KeyPath::Random(&rng, 8));
  ASSERT_TRUE(insert.Insert(item, 5, Propagation(8, 3)).ok());
  for (const PeerState& p : *built.grid) {
    if (p.index().Find(5, 7) != nullptr) {
      EXPECT_TRUE(PathsOverlap(p.path(), item.key))
          << "peer " << p.id() << " (path " << p.path() << ") wrongly indexes";
    }
  }
}

TEST(InsertTest, CoverageGrowsWithPropagationEffort) {
  auto built = testing_util::Build(512, 5, 4, 2, 5);
  double weak_total = 0, strong_total = 0;
  for (int t = 0; t < 20; ++t) {
    Rng rng(100 + t);
    InsertEngine insert(built.grid.get(), nullptr, &rng);
    KeyPath key = KeyPath::Random(&rng, 10);
    auto weak = insert.Insert(Item(1000 + t, key), 0, Propagation(1, 1));
    auto strong = insert.Insert(Item(2000 + t, key), 0, Propagation(4, 3));
    if (weak.ok()) weak_total += static_cast<double>(weak->replicas_reached);
    if (strong.ok()) strong_total += static_cast<double>(strong->replicas_reached);
  }
  EXPECT_GT(strong_total, weak_total);
}

TEST(InsertTest, FailsGracefullyWhenNetworkDown) {
  auto built = testing_util::Build(64, 3, 2, 2, 6);
  Rng rng(7);
  OnlineModel offline(OnlineMode::kSnapshot, 64, 0.0, &rng);
  InsertEngine insert(built.grid.get(), &offline, &rng);
  DataItem item = Item(9, KeyPath::Random(&rng, 8));
  // Pick a holder that is NOT co-responsible so local indexing can't save it.
  PeerId holder = 0;
  for (PeerId p = 0; p < 64; ++p) {
    if (!PathsOverlap(built.grid->peer(p).path(), item.key)) {
      holder = p;
      break;
    }
  }
  auto outcome = insert.Insert(item, holder, Propagation(2, 2));
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);
  // The item is still stored locally for a later retry.
  EXPECT_NE(built.grid->peer(holder).store().Get(9), nullptr);
}

TEST(InsertTest, HolderIndexesLocallyWhenCoResponsible) {
  auto built = testing_util::Build(64, 3, 2, 2, 8);
  Rng rng(9);
  InsertEngine insert(built.grid.get(), nullptr, &rng);
  // Choose a key under the holder's own path.
  PeerId holder = 3;
  KeyPath key = built.grid->peer(holder).path().Concat(KeyPath::Random(&rng, 5));
  ASSERT_TRUE(insert.Insert(Item(11, key), holder, Propagation(2, 1)).ok());
  EXPECT_NE(built.grid->peer(holder).index().Find(holder, 11), nullptr);
}

TEST(SearchRangeTest, RangeSearchFindsItemsInRange) {
  auto built = testing_util::Build(256, 4, 3, 2, 10);
  Rng rng(11);
  // Install items at all replicas for determinism.
  const size_t keylen = 8;
  std::set<ItemId> in_range;
  const KeyPath lo = KeyPath::FromUint64(40, keylen);
  const KeyPath hi = KeyPath::FromUint64(170, keylen);
  for (ItemId id = 1; id <= 60; ++id) {
    KeyPath key = KeyPath::Random(&rng, keylen);
    uint64_t v = 0;
    for (size_t i = 0; i < keylen; ++i) v = (v << 1) | static_cast<uint64_t>(key.bit(i));
    if (v >= 40 && v <= 170) in_range.insert(id);
    IndexEntry e;
    e.holder = 1;
    e.item_id = id;
    e.key = key;
    e.version = 1;
    for (PeerState& p : *built.grid) {
      if (PathsOverlap(p.path(), key)) p.index().InsertOrRefresh(e);
    }
  }
  SearchEngine search(built.grid.get(), nullptr, &rng);
  auto result = search.RangeSearch(0, lo, hi, /*fanout=*/8);
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<ItemId> found;
  for (const IndexEntry& e : result->entries) found.insert(e.item_id);
  EXPECT_EQ(found, in_range);
}

TEST(SearchRangeTest, RangeSearchRejectsBadBounds) {
  auto built = testing_util::Build(64, 3, 2, 2, 12);
  Rng rng(13);
  SearchEngine search(built.grid.get(), nullptr, &rng);
  auto bad = search.RangeSearch(0, KeyPath::FromUint64(5, 4),
                                KeyPath::FromUint64(2, 4));
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace pgrid
