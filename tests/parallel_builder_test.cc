// Determinism and ledger-exactness of the multi-threaded grid builder.
//
// The load-bearing guarantee (core/parallel_builder.h) is that the built grid is a
// pure function of (seed, batch_size) -- independent of the thread count. These
// tests verify it at full strength: grids built at 1, 2, and 8 threads are
// snapshotted (src/snapshot) and the snapshot files compared byte for byte, and
// every merged ledger quantity (MessageStats by type, the mirrored metrics
// counters, path-length accounting) must agree exactly.

#include "core/parallel_builder.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "core/exchange.h"
#include "core/grid.h"
#include "gtest/gtest.h"
#include "snapshot/snapshot.h"
#include "sim/digest.h"
#include "sim/meeting_scheduler.h"
#include "util/rng.h"

namespace pgrid {
namespace {

struct ParallelBuilt {
  ExchangeConfig config;
  std::unique_ptr<Grid> grid;
  BuildReport report;
};

ParallelBuilt BuildParallel(size_t num_peers, size_t threads, uint64_t seed,
                            size_t maxl = 5, size_t recmax = 2,
                            bool manage_data = true, size_t batch_size = 128,
                            bool profile = false, std::string* structure = nullptr,
                            double* serial_fraction = nullptr) {
  ParallelBuilt out;
  out.config.maxl = maxl;
  out.config.refmax = 4;
  out.config.recmax = recmax;
  out.config.recursion_fanout = 2;
  out.config.manage_data = manage_data;
  out.grid = std::make_unique<Grid>(num_peers);
  Rng master(seed);
  ExchangeEngine exchange(out.grid.get(), out.config, &master);
  MeetingScheduler scheduler(num_peers);
  ParallelBuildOptions options;
  options.threads = threads;
  options.batch_size = batch_size;
  options.profile = profile;
  ParallelGridBuilder builder(out.grid.get(), &exchange, &scheduler, &master,
                              options);
  out.report = builder.BuildToFractionOfMaxDepth(0.99, 5'000'000);
  if (profile) {
    EXPECT_NE(builder.profile(), nullptr);
    if (structure != nullptr) *structure = builder.profile()->StructureJson();
    if (serial_fraction != nullptr) {
      *serial_fraction = builder.profile()->SerialFraction();
    }
  } else {
    EXPECT_EQ(builder.profile(), nullptr);
  }
  return out;
}

std::string SnapshotBytes(const ParallelBuilt& built, const char* name) {
  const std::string path = std::string(::testing::TempDir()) + "/" + name;
  EXPECT_TRUE(SaveGrid(*built.grid, built.config, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());
  return buf.str();
}

TEST(ParallelBuilderTest, ConvergesAndReportsSanely) {
  ParallelBuilt built = BuildParallel(400, /*threads=*/2, /*seed=*/7);
  EXPECT_TRUE(built.report.converged);
  EXPECT_GT(built.report.meetings, 0u);
  EXPECT_GE(built.report.exchanges, built.report.meetings);
  EXPECT_GE(built.report.avg_path_length, 0.99 * 5.0);
  EXPECT_DOUBLE_EQ(built.report.avg_path_length,
                   built.grid->AveragePathLength());
}

TEST(ParallelBuilderTest, ThreadCountDoesNotChangeTheGrid) {
  ParallelBuilt t1 = BuildParallel(400, /*threads=*/1, /*seed=*/42);
  ParallelBuilt t2 = BuildParallel(400, /*threads=*/2, /*seed=*/42);
  ParallelBuilt t8 = BuildParallel(400, /*threads=*/8, /*seed=*/42);

  // The whole structure -- paths, reference tables, buddies, leaf indexes --
  // serialized and compared byte for byte.
  const std::string s1 = SnapshotBytes(t1, "par_t1.pgrid");
  const std::string s2 = SnapshotBytes(t2, "par_t2.pgrid");
  const std::string s8 = SnapshotBytes(t8, "par_t8.pgrid");
  ASSERT_FALSE(s1.empty());
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s8);

  // Merged ledgers agree exactly, for every message type.
  for (int t = 0; t < kNumMessageTypes; ++t) {
    const MessageType type = static_cast<MessageType>(t);
    EXPECT_EQ(t1.grid->stats().count(type), t2.grid->stats().count(type))
        << MessageTypeName(type);
    EXPECT_EQ(t1.grid->stats().count(type), t8.grid->stats().count(type))
        << MessageTypeName(type);
  }
  EXPECT_EQ(t1.report.meetings, t2.report.meetings);
  EXPECT_EQ(t1.report.meetings, t8.report.meetings);
  EXPECT_EQ(t1.report.exchanges, t8.report.exchanges);
  EXPECT_DOUBLE_EQ(t1.report.avg_path_length, t8.report.avg_path_length);
}

TEST(ParallelBuilderTest, ThreadCountInvariantWithoutRecursion) {
  // recmax = 0: no deferred work at all; the wave machinery alone must already be
  // deterministic.
  ParallelBuilt t1 =
      BuildParallel(300, 1, /*seed=*/9, /*maxl=*/4, /*recmax=*/0);
  ParallelBuilt t8 =
      BuildParallel(300, 8, /*seed=*/9, /*maxl=*/4, /*recmax=*/0);
  EXPECT_EQ(SnapshotBytes(t1, "norec_t1.pgrid"),
            SnapshotBytes(t8, "norec_t8.pgrid"));
  EXPECT_EQ(t1.grid->stats().count(MessageType::kExchange),
            t8.grid->stats().count(MessageType::kExchange));
}

TEST(ParallelBuilderTest, ThreadCountInvariantWithoutDataManagement) {
  // The pure-construction-cost configuration (T1-T5 experiments).
  ParallelBuilt t1 = BuildParallel(300, 1, /*seed=*/5, /*maxl=*/4, /*recmax=*/2,
                                   /*manage_data=*/false);
  ParallelBuilt t8 = BuildParallel(300, 8, /*seed=*/5, /*maxl=*/4, /*recmax=*/2,
                                   /*manage_data=*/false);
  EXPECT_EQ(SnapshotBytes(t1, "nodata_t1.pgrid"),
            SnapshotBytes(t8, "nodata_t8.pgrid"));
  EXPECT_EQ(t1.grid->stats().count(MessageType::kDataTransfer), 0u);
  EXPECT_EQ(t8.grid->stats().count(MessageType::kDataTransfer), 0u);
}

TEST(ParallelBuilderTest, BatchSizeIsPartOfTheSchedule) {
  // Documented contract: the result is f(seed, batch_size). Different batch sizes
  // may legitimately produce different grids; same batch size must not.
  ParallelBuilt a = BuildParallel(300, 2, /*seed=*/3, 5, 2, true,
                                  /*batch_size=*/64);
  ParallelBuilt b = BuildParallel(300, 4, /*seed=*/3, 5, 2, true,
                                  /*batch_size=*/64);
  EXPECT_EQ(SnapshotBytes(a, "batch_a.pgrid"), SnapshotBytes(b, "batch_b.pgrid"));
}

TEST(ParallelBuilderTest, LedgerStaysExactUnderSharding) {
  // PR 1's ledger invariant: the metrics counter "exchange.count" mirrors the
  // MessageStats exchange count exactly. Sharded merges must preserve it.
  ParallelBuilt built = BuildParallel(400, /*threads=*/4, /*seed=*/21);
  obs::MetricsRegistry& m = built.grid->metrics();
  EXPECT_EQ(m.GetCounter("exchange.count")->value(),
            built.grid->stats().count(MessageType::kExchange));
  EXPECT_EQ(m.GetCounter("exchange.entries_moved")->value(),
            built.grid->stats().count(MessageType::kDataTransfer));
}

TEST(ParallelBuilderTest, BuiltGridSatisfiesAllInvariantsAtEveryThreadCount) {
  // Byte-identical snapshots (above) prove 2- and 8-thread grids equal the
  // 1-thread one; this checks the shared structure is actually *correct* --
  // references, coverage, placement, replicas, and the metrics ledger -- via
  // the full checker, independently at each thread count.
  for (size_t threads : {1u, 2u, 8u}) {
    ParallelBuilt built = BuildParallel(400, threads, /*seed=*/42);
    check::InvariantReport report =
        check::GridInvariants::Check(*built.grid, built.config);
    EXPECT_TRUE(report.ok()) << "threads=" << threads << "\n"
                             << report.ToString();
    EXPECT_EQ(report.peers_checked, built.grid->size());
  }
}

TEST(ParallelBuilderTest, ProfilingDoesNotChangeTheGrid) {
  // The profiler only observes; turning it on must not perturb the schedule,
  // the exchanges, or the resulting structure in any way.
  ParallelBuilt plain = BuildParallel(300, /*threads=*/4, /*seed=*/13);
  ParallelBuilt profiled = BuildParallel(300, 4, 13, 5, 2, true, 128,
                                         /*profile=*/true);
  EXPECT_EQ(SnapshotBytes(plain, "prof_off.pgrid"),
            SnapshotBytes(profiled, "prof_on.pgrid"));
  EXPECT_EQ(plain.report.meetings, profiled.report.meetings);
  EXPECT_EQ(plain.report.exchanges, profiled.report.exchanges);
}

TEST(ParallelBuilderTest, ProfileWaveStructureIsThreadCountInvariant) {
  // The per-wave structure report (batch/wave/scheduled/width/conflicts --
  // everything except timings) is schedule-determined, so it must be byte
  // identical at every thread count. This is what lets profiles from different
  // thread counts be compared wave by wave (bench_parallel_profile).
  std::string s1, s4;
  double f1 = 0, f4 = 0;
  BuildParallel(300, /*threads=*/1, /*seed=*/42, 5, 2, true, 128, true, &s1, &f1);
  BuildParallel(300, /*threads=*/4, /*seed=*/42, 5, 2, true, 128, true, &s4, &f4);
  ASSERT_FALSE(s1.empty());
  EXPECT_EQ(s1, s4);
  // The timing side is populated and sane: a serial fraction in (0, 1].
  EXPECT_GT(f1, 0.0);
  EXPECT_LE(f1, 1.0);
  EXPECT_GT(f4, 0.0);
  EXPECT_LE(f4, 1.0);
}

TEST(ParallelBuilderTest, DeterminismMatrixAcrossThreadsAndBatchSizes) {
  // The full contract in one sweep: for each batch size, every thread count in
  // {1, 2, 4, 8} must reproduce the t=1 build bit for bit -- byte-identical
  // snapshot, identical FNV structure digest (sim/digest.h) -- and the result
  // must actually be a well-formed grid per the full invariant checker. Batch
  // size, on the other hand, is *part* of the schedule: different batch sizes
  // legitimately produce different grids, which the digests confirm.
  const uint64_t seed = 1234;
  std::vector<uint64_t> digest_per_batch;
  for (const size_t batch_size : {64u, 128u, 256u}) {
    std::string baseline_snapshot;
    uint64_t baseline_digest = 0;
    for (const size_t threads : {1u, 2u, 4u, 8u}) {
      ParallelBuilt built = BuildParallel(300, threads, seed, /*maxl=*/5,
                                          /*recmax=*/2, /*manage_data=*/true,
                                          batch_size);
      const std::string snapshot = SnapshotBytes(built, "matrix.pgrid");
      const uint64_t digest = sim::GridStateDigest(*built.grid);
      ASSERT_FALSE(snapshot.empty());
      if (threads == 1) {
        baseline_snapshot = snapshot;
        baseline_digest = digest;
        digest_per_batch.push_back(digest);
      } else {
        EXPECT_EQ(snapshot, baseline_snapshot)
            << "batch=" << batch_size << " threads=" << threads;
        EXPECT_EQ(digest, baseline_digest)
            << "batch=" << batch_size << " threads=" << threads;
      }
      check::InvariantReport report =
          check::GridInvariants::Check(*built.grid, built.config);
      EXPECT_TRUE(report.ok()) << "batch=" << batch_size
                               << " threads=" << threads << "\n"
                               << report.ToString();
      EXPECT_EQ(report.peers_checked, built.grid->size());
    }
  }
  // Three batch sizes, three schedules, three distinct grids.
  ASSERT_EQ(digest_per_batch.size(), 3u);
  EXPECT_NE(digest_per_batch[0], digest_per_batch[1]);
  EXPECT_NE(digest_per_batch[1], digest_per_batch[2]);
}

TEST(ParallelBuilderTest, RunMeetingsIsThreadCountInvariant) {
  // The external-batch entry point (used by the scenario runner) goes through
  // the same wave machinery, so the same determinism contract applies.
  auto run = [](size_t threads) {
    ParallelBuilt out;
    out.config.maxl = 4;
    out.config.refmax = 4;
    out.config.recmax = 2;
    out.config.recursion_fanout = 2;
    out.config.manage_data = true;
    out.grid = std::make_unique<Grid>(200);
    Rng master(11);
    ExchangeEngine exchange(out.grid.get(), out.config, &master);
    MeetingScheduler scheduler(200);
    ParallelBuildOptions options;
    options.threads = threads;
    ParallelGridBuilder builder(out.grid.get(), &exchange, &scheduler, &master,
                                options);
    Rng pairs(77);
    for (int step = 0; step < 20; ++step) {
      std::vector<Meeting> meetings;
      for (int i = 0; i < 100; ++i) {
        const PeerId a = static_cast<PeerId>(pairs.UniformIndex(200));
        const PeerId b = static_cast<PeerId>(pairs.UniformIndex(200));
        if (a != b) meetings.push_back({a, b});
      }
      builder.RunMeetings(meetings);
    }
    return out;
  };
  ParallelBuilt t1 = run(1);
  ParallelBuilt t4 = run(4);
  EXPECT_GT(t1.grid->AveragePathLength(), 0.0);
  EXPECT_EQ(sim::GridStateDigest(*t1.grid), sim::GridStateDigest(*t4.grid));
  EXPECT_EQ(SnapshotBytes(t1, "rm_t1.pgrid"), SnapshotBytes(t4, "rm_t4.pgrid"));
  EXPECT_EQ(t1.grid->stats().count(MessageType::kExchange),
            t4.grid->stats().count(MessageType::kExchange));
}

TEST(ParallelBuilderTest, MatchesABarrierFreeShardedReplay) {
  // Independent cross-check without snapshots: two runs that share (seed,
  // batch_size) but differ in everything thread-related (1 vs 3) must agree on
  // the per-peer path depths.
  ParallelBuilt a = BuildParallel(256, 1, /*seed=*/77, /*maxl=*/4);
  ParallelBuilt b = BuildParallel(256, 3, /*seed=*/77, /*maxl=*/4);
  for (size_t i = 0; i < a.grid->size(); ++i) {
    ASSERT_EQ(a.grid->peer(i).path(), b.grid->peer(i).path()) << "peer " << i;
  }
}

}  // namespace
}  // namespace pgrid
