#include "key/key_path.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <unordered_set>

#include "util/rng.h"

namespace pgrid {
namespace {

KeyPath P(const std::string& bits) {
  auto r = KeyPath::FromString(bits);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.value();
}

TEST(KeyPathTest, EmptyPath) {
  KeyPath k;
  EXPECT_TRUE(k.empty());
  EXPECT_EQ(k.length(), 0u);
  EXPECT_EQ(k.ToString(), "");
  EXPECT_EQ(k.Value(), 0.0);
  EXPECT_EQ(k.ToInterval(), (Interval{0.0, 1.0}));
}

TEST(KeyPathTest, FromStringRoundTrip) {
  for (const char* s : {"", "0", "1", "01", "10", "0110", "111000111000",
                        "010101010101010101010101010101"}) {
    EXPECT_EQ(P(s).ToString(), s);
  }
}

TEST(KeyPathTest, FromStringRejectsBadCharacters) {
  EXPECT_FALSE(KeyPath::FromString("01x0").ok());
  EXPECT_FALSE(KeyPath::FromString("2").ok());
  EXPECT_FALSE(KeyPath::FromString(" 01").ok());
  EXPECT_EQ(KeyPath::FromString("01a").status().code(), StatusCode::kInvalidArgument);
}

TEST(KeyPathTest, BitAccess) {
  KeyPath k = P("0110");
  EXPECT_EQ(k.bit(0), 0);
  EXPECT_EQ(k.bit(1), 1);
  EXPECT_EQ(k.bit(2), 1);
  EXPECT_EQ(k.bit(3), 0);
}

TEST(KeyPathTest, PushPopBack) {
  KeyPath k;
  k.PushBack(1);
  k.PushBack(0);
  k.PushBack(1);
  EXPECT_EQ(k.ToString(), "101");
  k.PopBack();
  EXPECT_EQ(k.ToString(), "10");
  k.PopBack();
  k.PopBack();
  EXPECT_TRUE(k.empty());
}

TEST(KeyPathTest, PopBackClearsBitForCanonicalEquality) {
  KeyPath a = P("11");
  a.PopBack();
  a.PushBack(0);
  EXPECT_EQ(a, P("10"));
  EXPECT_EQ(a.Hash(), P("10").Hash());
}

TEST(KeyPathTest, AppendAndConcat) {
  KeyPath k = P("01");
  EXPECT_EQ(k.Append(1).ToString(), "011");
  EXPECT_EQ(k.ToString(), "01");  // Append does not mutate
  EXPECT_EQ(k.Concat(P("110")).ToString(), "01110");
  EXPECT_EQ(KeyPath().Concat(P("1")).ToString(), "1");
}

TEST(KeyPathTest, PrefixAndSub) {
  KeyPath k = P("110010");
  EXPECT_EQ(k.Prefix(0).ToString(), "");
  EXPECT_EQ(k.Prefix(3).ToString(), "110");
  EXPECT_EQ(k.Prefix(6).ToString(), "110010");
  EXPECT_EQ(k.Sub(2, 3).ToString(), "001");
  EXPECT_EQ(k.Sub(0, 0).ToString(), "");
  EXPECT_EQ(k.SuffixFrom(4).ToString(), "10");
  EXPECT_EQ(k.SuffixFrom(6).ToString(), "");
  EXPECT_EQ(k.SuffixFrom(99).ToString(), "");
}

TEST(KeyPathTest, CommonPrefixLength) {
  EXPECT_EQ(P("0101").CommonPrefixLength(P("0100")), 3u);
  EXPECT_EQ(P("0101").CommonPrefixLength(P("0101")), 4u);
  EXPECT_EQ(P("0101").CommonPrefixLength(P("01")), 2u);
  EXPECT_EQ(P("1").CommonPrefixLength(P("0")), 0u);
  EXPECT_EQ(KeyPath().CommonPrefixLength(P("0101")), 0u);
}

TEST(KeyPathTest, CommonPrefixLengthAcrossWordBoundary) {
  // 70-bit paths differing only at bit 68 exercise the multi-word fast path.
  std::string a(70, '0'), b(70, '0');
  b[68] = '1';
  EXPECT_EQ(P(a).CommonPrefixLength(P(b)), 68u);
  EXPECT_EQ(P(a).CommonPrefixLength(P(a)), 70u);
}

TEST(KeyPathTest, IsPrefixOf) {
  EXPECT_TRUE(KeyPath().IsPrefixOf(P("01")));
  EXPECT_TRUE(P("01").IsPrefixOf(P("01")));
  EXPECT_TRUE(P("01").IsPrefixOf(P("0110")));
  EXPECT_FALSE(P("011").IsPrefixOf(P("01")));
  EXPECT_FALSE(P("10").IsPrefixOf(P("0110")));
}

TEST(KeyPathTest, PathsOverlap) {
  EXPECT_TRUE(PathsOverlap(P("01"), P("0110")));
  EXPECT_TRUE(PathsOverlap(P("0110"), P("01")));
  EXPECT_TRUE(PathsOverlap(KeyPath(), P("1")));
  EXPECT_FALSE(PathsOverlap(P("00"), P("01")));
  EXPECT_FALSE(PathsOverlap(P("0110"), P("0111")));
}

TEST(KeyPathTest, ValueMatchesPaperFormula) {
  // val(k) = sum 2^-i p_i
  EXPECT_DOUBLE_EQ(P("1").Value(), 0.5);
  EXPECT_DOUBLE_EQ(P("01").Value(), 0.25);
  EXPECT_DOUBLE_EQ(P("11").Value(), 0.75);
  EXPECT_DOUBLE_EQ(P("101").Value(), 0.625);
  EXPECT_DOUBLE_EQ(P("000").Value(), 0.0);
}

TEST(KeyPathTest, IntervalWidthIsTwoToMinusN) {
  EXPECT_EQ(P("0").ToInterval(), (Interval{0.0, 0.5}));
  EXPECT_EQ(P("10").ToInterval(), (Interval{0.5, 0.75}));
  EXPECT_DOUBLE_EQ(P("1010").ToInterval().Width(), 1.0 / 16.0);
}

TEST(KeyPathTest, IntervalContainment) {
  Interval i = P("01").ToInterval();
  EXPECT_TRUE(i.Contains(0.25));
  EXPECT_TRUE(i.Contains(0.4999));
  EXPECT_FALSE(i.Contains(0.5));
  EXPECT_FALSE(i.Contains(0.2));
  EXPECT_TRUE(P("01").CoversValue(P("0110").Value()));
  EXPECT_FALSE(P("01").CoversValue(P("10").Value()));
}

TEST(KeyPathTest, SiblingIntervalsPartitionParent) {
  // I(k0) and I(k1) tile I(k) exactly.
  KeyPath k = P("011");
  Interval parent = k.ToInterval();
  Interval left = k.Append(0).ToInterval();
  Interval right = k.Append(1).ToInterval();
  EXPECT_DOUBLE_EQ(left.lo, parent.lo);
  EXPECT_DOUBLE_EQ(left.hi, right.lo);
  EXPECT_DOUBLE_EQ(right.hi, parent.hi);
}

TEST(KeyPathTest, FromUint64MostSignificantFirst) {
  EXPECT_EQ(KeyPath::FromUint64(0b101, 3).ToString(), "101");
  EXPECT_EQ(KeyPath::FromUint64(1, 4).ToString(), "0001");
  EXPECT_EQ(KeyPath::FromUint64(0, 2).ToString(), "00");
  EXPECT_EQ(KeyPath::FromUint64(0xFFFFFFFFFFFFFFFFull, 64).ToString(),
            std::string(64, '1'));
}

TEST(KeyPathTest, FromUint64EnumeratesDistinctKeys) {
  std::set<std::string> seen;
  for (uint64_t i = 0; i < 16; ++i) seen.insert(KeyPath::FromUint64(i, 4).ToString());
  EXPECT_EQ(seen.size(), 16u);
}

TEST(KeyPathTest, OrderingIsLexicographic) {
  EXPECT_LT(P("0"), P("1"));
  EXPECT_LT(P("0"), P("01"));   // prefix orders before extension
  EXPECT_LT(P("00"), P("01"));
  EXPECT_LT(P("011"), P("1"));
  EXPECT_EQ(P("01") <=> P("01"), std::strong_ordering::equal);
}

TEST(KeyPathTest, HashDistinguishesLengthsOfSameValue) {
  // "0" and "00" have the same packed words but different lengths.
  EXPECT_NE(P("0"), P("00"));
  std::unordered_set<KeyPath, KeyPathHash> set;
  set.insert(P("0"));
  set.insert(P("00"));
  set.insert(P("000"));
  EXPECT_EQ(set.size(), 3u);
}

TEST(KeyPathTest, RandomHasRequestedLength) {
  Rng rng(99);
  for (size_t len : {0u, 1u, 7u, 64u, 65u, 200u}) {
    EXPECT_EQ(KeyPath::Random(&rng, len).length(), len);
  }
}

TEST(KeyPathTest, RandomBitsAreBalanced) {
  Rng rng(7);
  size_t ones = 0;
  const size_t trials = 500, len = 32;
  for (size_t t = 0; t < trials; ++t) {
    KeyPath k = KeyPath::Random(&rng, len);
    for (size_t i = 0; i < len; ++i) ones += static_cast<size_t>(k.bit(i));
  }
  double rate = static_cast<double>(ones) / (trials * len);
  EXPECT_NEAR(rate, 0.5, 0.02);
}

TEST(KeyPathTest, ComplementBit) {
  EXPECT_EQ(ComplementBit(0), 1);
  EXPECT_EQ(ComplementBit(1), 0);
}

// Property sweep: prefix/sub/value identities on random paths of many lengths.
class KeyPathPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KeyPathPropertyTest, PrefixOfSelfIdentities) {
  Rng rng(GetParam() * 7919 + 1);
  KeyPath k = KeyPath::Random(&rng, GetParam());
  EXPECT_TRUE(k.Prefix(0).empty());
  EXPECT_EQ(k.Prefix(k.length()), k);
  for (size_t l = 0; l <= k.length(); l += std::max<size_t>(1, k.length() / 7)) {
    KeyPath p = k.Prefix(l);
    EXPECT_TRUE(p.IsPrefixOf(k));
    EXPECT_EQ(p.CommonPrefixLength(k), l);
    EXPECT_EQ(p.Concat(k.SuffixFrom(l)), k);
  }
}

TEST_P(KeyPathPropertyTest, ValueLiesInOwnInterval) {
  Rng rng(GetParam() * 104729 + 3);
  KeyPath k = KeyPath::Random(&rng, GetParam());
  // Interval arithmetic is only meaningful while 2^-n is representable relative to
  // the interval's position (see ToInterval() docs); beyond ~52 bits it collapses.
  if (k.length() == 0 || k.length() > 50) return;
  Interval i = k.ToInterval();
  EXPECT_TRUE(i.Contains(k.Value()));
  // Any extension's value stays inside the interval.
  EXPECT_TRUE(i.Contains(k.Append(1).Value()));
  EXPECT_TRUE(i.Contains(k.Append(0).Value()));
}

TEST_P(KeyPathPropertyTest, RoundTripThroughString) {
  Rng rng(GetParam() * 31 + 17);
  KeyPath k = KeyPath::Random(&rng, GetParam());
  auto parsed = KeyPath::FromString(k.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), k);
  EXPECT_EQ(parsed.value().Hash(), k.Hash());
}

TEST_P(KeyPathPropertyTest, CommonPrefixIsSymmetricAndBounded) {
  Rng rng(GetParam() * 13 + 5);
  KeyPath a = KeyPath::Random(&rng, GetParam());
  KeyPath b = KeyPath::Random(&rng, GetParam());
  size_t ab = a.CommonPrefixLength(b);
  EXPECT_EQ(ab, b.CommonPrefixLength(a));
  EXPECT_LE(ab, std::min(a.length(), b.length()));
  EXPECT_EQ(a.Prefix(ab), b.Prefix(ab));
  if (ab < a.length() && ab < b.length()) {
    EXPECT_NE(a.bit(ab), b.bit(ab));
  }
}

TEST_P(KeyPathPropertyTest, SubMatchesPerBitExtraction) {
  // Guards the word-packed Sub/SuffixFrom fast path against a bit-by-bit
  // reference, across word-boundary lengths and unaligned cut points.
  Rng rng(GetParam() * 7 + 3);
  KeyPath k = KeyPath::Random(&rng, GetParam());
  for (size_t pos = 0; pos <= k.length(); pos += (pos < 70 ? 1 : 13)) {
    const size_t max_len = k.length() - pos;
    for (size_t len : {size_t{0}, size_t{1}, max_len / 2, max_len}) {
      if (len > max_len) continue;
      KeyPath sub = k.Sub(pos, len);
      ASSERT_EQ(sub.length(), len);
      for (size_t i = 0; i < len; ++i) {
        ASSERT_EQ(sub.bit(i), k.bit(pos + i)) << "pos=" << pos << " i=" << i;
      }
    }
    KeyPath suffix = k.SuffixFrom(pos);
    ASSERT_EQ(suffix.length(), k.length() - pos);
    for (size_t i = 0; i < suffix.length(); ++i) {
      ASSERT_EQ(suffix.bit(i), k.bit(pos + i));
    }
  }
}

TEST_P(KeyPathPropertyTest, ConcatMatchesPerBitAppend) {
  Rng rng(GetParam() * 11 + 1);
  KeyPath a = KeyPath::Random(&rng, GetParam());
  for (size_t suffix_len : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                            size_t{65}, size_t{130}}) {
    KeyPath b = KeyPath::Random(&rng, suffix_len);
    KeyPath cat = a.Concat(b);
    ASSERT_EQ(cat.length(), a.length() + b.length());
    for (size_t i = 0; i < a.length(); ++i) ASSERT_EQ(cat.bit(i), a.bit(i));
    for (size_t i = 0; i < b.length(); ++i) {
      ASSERT_EQ(cat.bit(a.length() + i), b.bit(i)) << "a=" << a.length()
                                                   << " i=" << i;
    }
    // Canonical form survives the word-packed splice: equal value, equal hash.
    EXPECT_EQ(cat.Prefix(a.length()), a);
    EXPECT_EQ(cat.SuffixFrom(a.length()), b);
  }
}

TEST(KeyPathTest, SubRecanonicalizesTailWord) {
  // A sub-path whose tail word has garbage above `length` would break ==/Hash;
  // extract an unaligned slice and compare against a freshly built equal value.
  Rng rng(1234);
  KeyPath k = KeyPath::Random(&rng, 200);
  KeyPath slice = k.Sub(3, 130);
  auto rebuilt = KeyPath::FromString(slice.ToString());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(slice, rebuilt.value());
  EXPECT_EQ(slice.Hash(), rebuilt.value().Hash());
}

TEST(KeyPathTest, InlineRepresentationUsesNoHeap) {
  // Lengths up to 64 pack into the in-object word: no heap footprint at all.
  Rng rng(42);
  for (size_t len : {size_t{0}, size_t{1}, size_t{63}, size_t{64}}) {
    EXPECT_EQ(KeyPath::Random(&rng, len).ApproxMemoryBytes(), 0u) << len;
  }
  EXPECT_GT(KeyPath::Random(&rng, 65).ApproxMemoryBytes(), 0u);
}

TEST(KeyPathTest, PushBackAcrossSpillBoundary) {
  // Grow bit-by-bit through the 64-bit inline capacity; every prefix must stay
  // readable and the 65th bit must move the path onto the heap intact.
  Rng rng(4242);
  KeyPath ref = KeyPath::Random(&rng, 130);
  KeyPath k;
  for (size_t i = 0; i < ref.length(); ++i) {
    const bool was_inline = k.ApproxMemoryBytes() == 0;
    EXPECT_EQ(was_inline, i <= 64) << i;
    k.PushBack(ref.bit(i));
    ASSERT_EQ(k.length(), i + 1);
    for (size_t j = 0; j <= i; ++j) ASSERT_EQ(k.bit(j), ref.bit(j)) << i << " " << j;
  }
  EXPECT_EQ(k, ref);
  EXPECT_EQ(k.Hash(), ref.Hash());
}

TEST(KeyPathTest, PopBackUnspillsToInline) {
  // Shrinking back to <= 64 bits releases the heap block and returns to the
  // inline word; the value and hash stay canonical through the transition.
  Rng rng(777);
  KeyPath k = KeyPath::Random(&rng, 70);
  KeyPath ref = k;
  EXPECT_GT(k.ApproxMemoryBytes(), 0u);
  while (k.length() > 64) k.PopBack();
  EXPECT_EQ(k.ApproxMemoryBytes(), 0u);
  EXPECT_EQ(k, ref.Prefix(64));
  EXPECT_EQ(k.Hash(), ref.Prefix(64).Hash());
  while (k.length() > 0) k.PopBack();
  EXPECT_EQ(k, KeyPath());
}

TEST(KeyPathTest, InlineAndHeapRepresentationsAgree) {
  // The same 64-bit value reached inline (FromUint64) and via heap history
  // (a longer path popped back down) must compare, hash, and order identically.
  Rng rng(99);
  KeyPath inline_k = KeyPath::Random(&rng, 64);
  KeyPath heap_k = inline_k.Concat(KeyPath::Random(&rng, 30));
  while (heap_k.length() > 64) heap_k.PopBack();
  EXPECT_EQ(inline_k, heap_k);
  EXPECT_EQ(inline_k.Hash(), heap_k.Hash());
  EXPECT_EQ(inline_k <=> heap_k, std::strong_ordering::equal);
  EXPECT_FALSE(inline_k < heap_k);
  EXPECT_FALSE(heap_k < inline_k);
  // Ordering across the representations is still lexicographic.
  KeyPath longer = inline_k.Append(1);
  EXPECT_LT(inline_k, longer);
  EXPECT_GT(longer, heap_k);
}

TEST(KeyPathTest, CopyAndMoveAcrossRepresentations) {
  Rng rng(31337);
  for (size_t len : {size_t{8}, size_t{64}, size_t{65}, size_t{200}}) {
    KeyPath src = KeyPath::Random(&rng, len);
    KeyPath copy = src;
    EXPECT_EQ(copy, src);
    EXPECT_EQ(copy.Hash(), src.Hash());
    KeyPath moved = std::move(copy);
    EXPECT_EQ(moved, src);
    // A moved-from path is empty and safely reusable.
    EXPECT_TRUE(copy.empty());  // NOLINT(bugprone-use-after-move)
    copy.PushBack(1);
    EXPECT_EQ(copy.ToString(), "1");
    KeyPath assigned;
    assigned = src;
    EXPECT_EQ(assigned, src);
    assigned = KeyPath::Random(&rng, 3);  // overwrite heap with inline
    EXPECT_EQ(assigned.length(), 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, KeyPathPropertyTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 31, 32, 33, 63, 64,
                                           65, 100, 127, 128, 129, 250));

}  // namespace
}  // namespace pgrid
