#include "sim/meeting_scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace pgrid {
namespace {

TEST(MeetingSchedulerTest, PairsAreDistinctAndInRange) {
  Rng rng(1);
  MeetingScheduler sched(10);
  for (int i = 0; i < 1000; ++i) {
    Meeting m = sched.Next(&rng);
    EXPECT_NE(m.a, m.b);
    EXPECT_LT(m.a, 10u);
    EXPECT_LT(m.b, 10u);
  }
}

TEST(MeetingSchedulerTest, TwoPeersAlwaysMeetEachOther) {
  Rng rng(2);
  MeetingScheduler sched(2);
  for (int i = 0; i < 50; ++i) {
    Meeting m = sched.Next(&rng);
    EXPECT_EQ(m.a + m.b, 1u);
  }
}

TEST(MeetingSchedulerTest, UniformCoverageOverPeers) {
  Rng rng(3);
  const size_t n = 20;
  MeetingScheduler sched(n);
  std::vector<size_t> counts(n, 0);
  const int meetings = 20000;
  for (int i = 0; i < meetings; ++i) {
    Meeting m = sched.Next(&rng);
    ++counts[m.a];
    ++counts[m.b];
  }
  const double expected = 2.0 * meetings / n;
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.15);
  }
}

TEST(MeetingSchedulerTest, RecencyBiasedRevisitsRecentPeers) {
  Rng uniform_rng(4), biased_rng(4);
  const size_t n = 1000;
  MeetingScheduler uniform(n, MeetingScheduler::Pattern::kUniform);
  MeetingScheduler biased(n, MeetingScheduler::Pattern::kRecencyBiased,
                          /*bias=*/0.9, /*recency_window=*/16);
  auto distinct_after = [](MeetingScheduler& s, Rng* rng) {
    std::vector<uint8_t> seen(n, 0);
    for (int i = 0; i < 500; ++i) {
      Meeting m = s.Next(rng);
      seen[m.a] = 1;
      seen[m.b] = 1;
    }
    size_t distinct = 0;
    for (uint8_t v : seen) distinct += v;
    return distinct;
  };
  // Heavy recency bias touches far fewer distinct peers.
  EXPECT_LT(distinct_after(biased, &biased_rng),
            distinct_after(uniform, &uniform_rng) / 2);
}

TEST(MeetingSchedulerTest, SetNumPeersExtendsRange) {
  Rng rng(5);
  MeetingScheduler sched(4);
  sched.SetNumPeers(100);
  bool saw_new_peer = false;
  for (int i = 0; i < 500; ++i) {
    Meeting m = sched.Next(&rng);
    EXPECT_LT(m.a, 100u);
    EXPECT_LT(m.b, 100u);
    if (m.a >= 4 || m.b >= 4) saw_new_peer = true;
  }
  EXPECT_TRUE(saw_new_peer);
}

TEST(MeetingSchedulerDeathTest, SetNumPeersBelowTwoAborts) {
  MeetingScheduler sched(4);
  EXPECT_DEATH({ sched.SetNumPeers(1); }, "PGRID_CHECK failed");
}

TEST(MeetingSchedulerTest, NextBatchEqualsRepeatedNext) {
  // The parallel builder's contract: consuming the meeting stream through
  // NextBatch must advance state and RNG exactly as repeated Next() calls do,
  // for both meeting patterns.
  for (auto pattern : {MeetingScheduler::Pattern::kUniform,
                       MeetingScheduler::Pattern::kRecencyBiased}) {
    MeetingScheduler serial(80, pattern);
    MeetingScheduler batched(80, pattern);
    Rng r1(11), r2(11);
    std::vector<Meeting> expected;
    for (int i = 0; i < 500; ++i) expected.push_back(serial.Next(&r1));
    std::vector<Meeting> got;
    for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}, size_t{428}}) {
      batched.NextBatch(&r2, chunk, &got);
    }
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].a, expected[i].a) << "i=" << i;
      EXPECT_EQ(got[i].b, expected[i].b) << "i=" << i;
    }
  }
}

TEST(MeetingSchedulerTest, NextBatchAppendsToExistingOutput) {
  MeetingScheduler sched(10);
  Rng rng(3);
  std::vector<Meeting> out;
  sched.NextBatch(&rng, 4, &out);
  sched.NextBatch(&rng, 3, &out);
  EXPECT_EQ(out.size(), 7u);
}

TEST(MeetingSchedulerTest, DeterministicGivenSeed) {
  MeetingScheduler s1(50), s2(50);
  Rng r1(7), r2(7);
  for (int i = 0; i < 100; ++i) {
    Meeting a = s1.Next(&r1);
    Meeting b = s2.Next(&r2);
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
  }
}

}  // namespace
}  // namespace pgrid
