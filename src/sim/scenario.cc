#include "sim/scenario.h"

#include <stdlib.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "core/churn.h"
#include "core/exchange.h"
#include "core/grid.h"
#include "core/insert.h"
#include "core/parallel_builder.h"
#include "core/search.h"
#include "core/update.h"
#include "net/fault_transport.h"
#include "net/inproc_transport.h"
#include "repair/repair.h"
#include "sim/digest.h"
#include "sim/meeting_scheduler.h"
#include "sim/online_model.h"
#include "storage/data_item.h"
#include "storage/persist.h"
#include "util/rng.h"

namespace pgrid {
namespace sim {

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string_view StepKindName(StepKind k) {
  switch (k) {
    case StepKind::kExchange:
      return "exchange";
    case StepKind::kInsert:
      return "insert";
    case StepKind::kUpdate:
      return "update";
    case StepKind::kChurn:
      return "churn";
    case StepKind::kFault:
      return "fault";
    case StepKind::kBarrier:
      return "barrier";
    case StepKind::kCorrupt:
      return "corrupt";
    case StepKind::kRepair:
      return "repair";
    case StepKind::kKill:
      return "kill";
    case StepKind::kRestart:
      return "restart";
    case StepKind::kPartition:
      return "partition";
    case StepKind::kCrashWave:
      return "crashwave";
    case StepKind::kFlashCrowd:
      return "flashcrowd";
    case StepKind::kSlowNode:
      return "slownode";
    case StepKind::kMassJoin:
      return "massjoin";
  }
  return "unknown";
}

namespace {

bool StepKindFromName(std::string_view name, StepKind* out) {
  for (int i = 0; i < kNumStepKinds; ++i) {
    const StepKind k = static_cast<StepKind>(i);
    if (StepKindName(k) == name) {
      *out = k;
      return true;
    }
  }
  return false;
}

constexpr char kHeader[] = "pgrid-scenario v1";

}  // namespace

std::string SerializeScenario(const Scenario& scenario) {
  const ScenarioConfig& c = scenario.config;
  std::ostringstream out;
  out << kHeader << "\n";
  out << "seed " << c.seed << "\n";
  out << "num_peers " << c.num_peers << "\n";
  out << "maxl " << c.maxl << "\n";
  out << "refmax " << c.refmax << "\n";
  out << "recmax " << c.recmax << "\n";
  out << "recursion_fanout " << c.recursion_fanout << "\n";
  out << "manage_data " << (c.manage_data ? 1 : 0) << "\n";
  out << "prune_unreachable_refs " << (c.prune_unreachable_refs ? 1 : 0) << "\n";
  out << "recbreadth " << c.recbreadth << "\n";
  out << "repetition " << c.repetition << "\n";
  {
    // %.17g round-trips every double exactly.
    char buf[64];
    snprintf(buf, sizeof(buf), "%.17g", c.online_prob);
    out << "online_prob " << buf << "\n";
  }
  out << "fault_seed " << c.fault_seed << "\n";
  // Emitted only when set: pre-existing repro files neither carry nor expect
  // the key, and this keeps their serialization byte-identical.
  if (c.builder_threads != 0) {
    out << "builder_threads " << c.builder_threads << "\n";
  }
  for (const ScenarioStep& s : scenario.steps) {
    out << "step " << StepKindName(s.kind) << " " << s.a << " " << s.b << " "
        << s.c << " " << s.d << "\n";
  }
  out << "end\n";
  return out.str();
}

Result<Scenario> ParseScenario(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  auto fail = [&lineno](const std::string& what) {
    return Status::InvalidArgument("scenario line " + std::to_string(lineno) +
                                   ": " + what);
  };

  if (!std::getline(in, line)) return Status::InvalidArgument("empty scenario");
  ++lineno;
  if (line != kHeader) return fail("expected header '" + std::string(kHeader) + "'");

  Scenario scenario;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    ScenarioConfig& c = scenario.config;
    if (key == "step") {
      std::string name;
      ScenarioStep step;
      fields >> name >> step.a >> step.b >> step.c >> step.d;
      if (fields.fail()) return fail("malformed step");
      if (!StepKindFromName(name, &step.kind)) {
        return fail("unknown step kind '" + name + "'");
      }
      scenario.steps.push_back(step);
      continue;
    }
    uint64_t u = 0;
    double d = 0.0;
    if (key == "online_prob") {
      fields >> d;
    } else {
      fields >> u;
    }
    if (fields.fail()) return fail("malformed value for '" + key + "'");
    if (key == "seed") {
      c.seed = u;
    } else if (key == "num_peers") {
      c.num_peers = u;
    } else if (key == "maxl") {
      c.maxl = u;
    } else if (key == "refmax") {
      c.refmax = u;
    } else if (key == "recmax") {
      c.recmax = u;
    } else if (key == "recursion_fanout") {
      c.recursion_fanout = u;
    } else if (key == "manage_data") {
      c.manage_data = u != 0;
    } else if (key == "prune_unreachable_refs") {
      c.prune_unreachable_refs = u != 0;
    } else if (key == "recbreadth") {
      c.recbreadth = u;
    } else if (key == "repetition") {
      c.repetition = u;
    } else if (key == "online_prob") {
      c.online_prob = d;
    } else if (key == "fault_seed") {
      c.fault_seed = u;
    } else if (key == "builder_threads") {
      c.builder_threads = u;
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (!saw_end) return Status::InvalidArgument("scenario missing 'end' line");
  if (scenario.config.num_peers < 2) {
    return Status::InvalidArgument("scenario needs num_peers >= 2");
  }
  if (scenario.config.maxl == 0 || scenario.config.refmax == 0 ||
      scenario.config.recbreadth == 0 || scenario.config.repetition == 0) {
    return Status::InvalidArgument("scenario has zero-valued algorithm parameter");
  }
  if (scenario.config.builder_threads > 64) {
    // The digest is invariant in the value anyway; a huge count only asks the
    // pool to spawn that many OS threads on replay.
    return Status::InvalidArgument("scenario builder_threads > 64");
  }
  return scenario;
}

Status SaveScenario(const Scenario& scenario, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  out << SerializeScenario(scenario);
  out.close();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<Scenario> LoadScenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseScenario(buf.str());
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

namespace {

std::string PeerAddress(PeerId p) { return "peer:" + std::to_string(p); }

}  // namespace

struct ScenarioRunner::Impl {
  explicit Impl(const Scenario& s)
      : scenario(s),
        grid(s.config.num_peers),
        engine_rng(s.config.seed),
        model_rng(DeriveStreamSeed(s.config.seed, 0x0e11)),
        online(OnlineMode::kSnapshot, s.config.num_peers, s.config.online_prob,
               &model_rng),
        scheduler(s.config.num_peers),
        inner_transport(),
        transport(&inner_transport, s.config.fault_seed),
        exchange_config{.maxl = s.config.maxl,
                        .recmax = s.config.recmax,
                        .refmax = s.config.refmax,
                        .recursion_fanout = s.config.recursion_fanout,
                        .manage_data = s.config.manage_data,
                        .prune_unreachable_refs = s.config.prune_unreachable_refs},
        update_config{.recbreadth = s.config.recbreadth,
                      .repetition = s.config.repetition},
        exchange(&grid, exchange_config, &engine_rng, &online),
        churn(&grid, &exchange, &scheduler, &online, &engine_rng),
        inserter(&grid, &online, &engine_rng),
        updater(&grid, &online, &engine_rng),
        searcher(&grid, &online, &engine_rng),
        repair(&grid, exchange_config, repair::RepairConfig{}, &searcher,
               &online, &engine_rng) {
    for (PeerId p = 0; p < grid.size(); ++p) ServePeer(p);
    outaged.assign(grid.size(), 0);
    repair.set_liveness([this](PeerId p) { return !churn.IsDead(p); });
    // A probe is delivered iff the target is alive, currently online, and the
    // fault layer lets the packet through -- so partitions and outages look
    // exactly like crashes to the failure detector.
    repair.set_probe_fn([this](PeerId from, PeerId to) {
      return !churn.IsDead(to) && online.IsOnline(to, &engine_rng) &&
             Reachable(from, to);
    });
    // The macro-fault hooks below are inert until a macro step arms them
    // (empty slow map, no demotions, shedding off, no partition), so every
    // pre-existing scenario replays to its historical digest.
    // Gray peers answer probes slowly; the detector demotes instead of
    // evicting them (repair/repair.h latency-aware suspicion).
    repair.set_latency_fn([this](PeerId, PeerId to) {
      auto it = slow_latency.find(to);
      return it == slow_latency.end() ? uint64_t{0} : it->second;
    });
    // Routing preference: references an observer has demoted as slow are tried
    // only after its fast ones.
    searcher.set_slow_fn([this](PeerId from, PeerId to) {
      return repair.IsDemoted(from, to);
    });
    // Per-peer overload shedding, armed only inside flash-crowd ticks: hops
    // beyond a server's per-tick serve budget are rejected (degraded), not
    // failed.
    searcher.set_shed_fn([this](PeerId server) {
      if (!shed_active) return false;
      return ++served_in_tick[server] > shed_budget;
    });
    // A graceful leaver cannot hand its entries to a peer it cannot reach.
    churn.set_heir_filter([this](PeerId leaver, PeerId heir) {
      return !partition_active || GroupOf(leaver) == GroupOf(heir);
    });
  }

  ~Impl() {
    persist.reset();  // release WAL handles before removing the directory
    if (!storage_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(storage_dir, ec);
    }
  }

  /// Registers a trivial responder so the fault transport can gate calls to the
  /// peer. The payload is irrelevant: only delivery vs failure matters.
  void ServePeer(PeerId p) {
    inner_transport.Serve(PeerAddress(p),
                          [](const std::string&, const std::string&) {
                            return std::string("ok");
                          });
  }

  /// A meeting (or operation entry) happens only if the initiator can reach the
  /// target through the fault layer: outages, partitions, and drop rules all
  /// suppress it. This is how transport faults shape the interleaving.
  bool Reachable(PeerId from, PeerId to) {
    return transport.Call(PeerAddress(to), PeerAddress(from), "meet").ok();
  }

  // ---- macro-fault machinery (docs/robustness.md) ----

  /// Partition group of a peer; -1 = ungrouped (no partition ever started, or
  /// the peer joined after the last one healed).
  int GroupOf(PeerId p) const {
    return p < pgroup.size() ? pgroup[p] : -1;
  }

  /// Runs `fn` with every live, non-outaged peer outside group `g` pinned
  /// offline. The sim engines (insert/update/search, exchange recursion) are
  /// online-gated rather than transport-gated, so this is what confines a data
  /// operation to the initiating side of an active partition. Pin() consumes
  /// no randomness and snapshot-mode IsOnline() draws none either, so when no
  /// partition is active this is a plain call to `fn`.
  template <typename Fn>
  void WithGroupIsolation(int g, Fn&& fn) {
    if (!partition_active) {
      fn();
      return;
    }
    std::vector<PeerId> repinned;
    for (PeerId p = 0; p < grid.size(); ++p) {
      if (GroupOf(p) == g) continue;
      // Dead and outaged peers are already pinned false by their owners; they
      // must stay that way after the restore below.
      if (churn.IsDead(p) || (p < outaged.size() && outaged[p] != 0)) continue;
      online.Pin(p, false);
      repinned.push_back(p);
    }
    fn();
    for (PeerId p : repinned) online.Pin(p, std::nullopt);
  }

  /// Installs the transport drop rules for the current pgroup assignment and
  /// returns the partition id (net/fault_transport.h PartitionGroups).
  uint64_t InstallPartitionRules() {
    std::vector<std::vector<std::string>> groups(
        static_cast<size_t>(partition_groups));
    for (PeerId p = 0; p < grid.size(); ++p) {
      const int g = GroupOf(p);
      if (g >= 0) groups[static_cast<size_t>(g)].push_back(PeerAddress(p));
    }
    return transport.PartitionGroups(groups, transport.virtual_now());
  }

  /// A kFault clear-rules (a % 7 == 3 or 6) wipes the partition's drop rules
  /// with everything else: deactivate the macro partition state to match. The
  /// abrupt heal skips reconciliation -- convergence is then the business of
  /// whatever repair steps and heal-tail barriers follow. pgroup and the
  /// quarantine records survive so post-heal checks still know the history.
  void EndPartitionAbruptly() {
    partition_active = false;
    partition_id = 0;
  }

  /// Membership grew by `grid.size() - before` peers: serve them on the
  /// transport, extend the outage mirror, and -- mid-partition -- assign the
  /// joiners groups and reinstall the rules so they cannot bridge the split.
  void OnJoin(size_t before) {
    for (PeerId p = before; p < grid.size(); ++p) ServePeer(p);
    outaged.resize(grid.size(), 0);
    if (pgroup.empty()) return;
    for (PeerId p = static_cast<PeerId>(pgroup.size()); p < grid.size(); ++p) {
      pgroup.push_back(partition_active
                           ? static_cast<int>((p + partition_rot) %
                                              static_cast<uint64_t>(partition_groups))
                           : -1);
    }
    if (partition_active) {
      transport.HealPartition(partition_id);
      partition_id = InstallPartitionRules();
    }
  }

  /// One availability tick: `probes * multiplier` client queries measuring
  /// what the grid serves right now -- success rate, a p99 hop-count proxy,
  /// and the shed rate. The queries are part of the step's deterministic
  /// execution (they draw from the engine stream and cost ledger messages);
  /// only the AddPoint calls depend on the timeline, so digests stay
  /// timeline-independent. `hot_prefix` aims every query at a random
  /// extension of one key region (the flash-crowd shape); null queries the
  /// inserted corpus.
  void AvailabilityTick(uint64_t probes, const KeyPath* hot_prefix,
                        uint64_t multiplier) {
    served_in_tick.clear();
    const uint64_t count = probes * (multiplier == 0 ? 1 : multiplier);
    uint64_t issued = 0, found = 0, sheds = 0, messages = 0;
    std::vector<uint64_t> hops;
    for (uint64_t i = 0; i < count; ++i) {
      std::vector<PeerId> live = churn.LivePeers();
      if (live.empty()) break;
      const PeerId start = live[engine_rng.UniformIndex(live.size())];
      KeyPath key;
      if (hot_prefix != nullptr) {
        key = *hot_prefix;
        while (key.length() < scenario.config.maxl) key.PushBack(engine_rng.Bit());
      } else if (!inserted.empty()) {
        key = inserted[engine_rng.UniformIndex(inserted.size())].key;
      } else {
        key = KeyPath::FromUint64(engine_rng.UniformIndex(1ull << scenario.config.maxl),
                                  scenario.config.maxl);
      }
      QueryResult q;
      WithGroupIsolation(GroupOf(start), [&] { q = searcher.Query(start, key); });
      ++issued;
      if (q.found) {
        ++found;
        hops.push_back(q.hops);
      }
      sheds += q.sheds;
      messages += q.messages;
    }
    if (timeline != nullptr && issued > 0) {
      std::sort(hops.begin(), hops.end());
      double p99 = 0.0;
      if (!hops.empty()) {
        size_t idx = (hops.size() * 99) / 100;
        if (idx >= hops.size()) idx = hops.size() - 1;
        p99 = static_cast<double>(hops[idx]);
      }
      const double t = static_cast<double>(macro_tick);
      timeline->AddPoint("avail.success_rate", t,
                         static_cast<double>(found) / static_cast<double>(issued));
      timeline->AddPoint("avail.p99_hops", t, p99);
      timeline->AddPoint("avail.shed_rate", t,
                         messages > 0 ? static_cast<double>(sheds) /
                                            static_cast<double>(messages)
                                      : 0.0);
      timeline->AddPoint("avail.live_peers", t,
                         static_cast<double>(churn.live_count()));
    }
    ++macro_tick;
  }

  /// Meetings with per-meeting group isolation (identical to the serial
  /// exchange path; used by macro steps that interleave meetings with ticks).
  void RunGatedMeetings(uint64_t meetings) {
    for (uint64_t m = 0; m < meetings; ++m) {
      Meeting meeting = scheduler.Next(&engine_rng);
      if (churn.IsDead(meeting.a) || churn.IsDead(meeting.b)) continue;
      if (!Reachable(meeting.a, meeting.b)) continue;
      WithGroupIsolation(GroupOf(meeting.a),
                         [&] { exchange.Exchange(meeting.a, meeting.b); });
    }
  }

  void RunExchanges(uint64_t meetings) {
    if (scenario.config.builder_threads == 0 || partition_active) {
      // Legacy serial path: every per-meeting draw on the engine stream, which
      // is what all pre-existing scenario digests were recorded against. An
      // active macro partition also forces this path (for any thread count
      // alike, so thread-sweep digest invariance holds): each meeting runs
      // under group isolation, which pins per meeting and cannot be done from
      // the parallel wave machinery.
      for (uint64_t m = 0; m < meetings; ++m) {
        Meeting meeting = scheduler.Next(&engine_rng);
        if (churn.IsDead(meeting.a) || churn.IsDead(meeting.b)) continue;
        if (!Reachable(meeting.a, meeting.b)) continue;
        WithGroupIsolation(GroupOf(meeting.a),
                           [&] { exchange.Exchange(meeting.a, meeting.b); });
      }
      return;
    }
    // Parallel path: gate meetings serially in the exact legacy draw order
    // (scheduler, liveness, fault transport -- all on the engine stream), then
    // hand the survivors to the wave machinery. The builder draws its slot
    // stream base from the engine stream at construction, after all gating
    // draws, so the batch and its seeds are pure functions of the step -- and
    // the wave result is thread-count invariant, so any builder_threads >= 1
    // yields the same digest.
    std::vector<Meeting> batch;
    batch.reserve(meetings);
    for (uint64_t m = 0; m < meetings; ++m) {
      Meeting meeting = scheduler.Next(&engine_rng);
      if (churn.IsDead(meeting.a) || churn.IsDead(meeting.b)) continue;
      if (!Reachable(meeting.a, meeting.b)) continue;
      batch.push_back(meeting);
    }
    ParallelBuildOptions options;
    options.threads = scenario.config.builder_threads;
    ParallelGridBuilder builder(&grid, &exchange, &scheduler, &engine_rng,
                                options);
    builder.RunMeetings(batch);
  }

  void RunInsert(const ScenarioStep& step) {
    std::vector<PeerId> live = churn.LivePeers();
    if (live.empty()) return;
    const PeerId holder = live[step.a % live.size()];
    DataItem item;
    item.id = next_item_id++;
    const size_t key_len = 1 + step.c % scenario.config.maxl;
    item.key = KeyPath::FromUint64(step.b, key_len);
    item.payload = std::string(step.d % 16, 'x');
    item.version = 1;
    if (!Reachable(holder, holder)) return;  // holder itself under outage
    WithGroupIsolation(GroupOf(holder), [&] {
      Result<InsertOutcome> r = inserter.Insert(item, holder, update_config);
      (void)r;  // FailedPrecondition (no replica reached) is a legal outcome
    });
    inserted.push_back(item);
    if (partition_active) {
      // A write during the split must stay on the writer's side until the
      // heal: quarantine it for the partition-consistency invariants.
      quarantined.push_back({item.id, holder, GroupOf(holder)});
    }
  }

  void RunUpdate(const ScenarioStep& step) {
    if (inserted.empty()) return;
    DataItem& item = inserted[step.a % inserted.size()];
    ++item.version;
    const UpdateStrategy strategy = static_cast<UpdateStrategy>(step.b % 3);
    int g = -1;
    if (partition_active) {
      // The updating client sits on one side of the split; its propagation
      // must not cross it. (The extra draw happens only mid-partition, so
      // partition-free scenarios keep their historical draw sequence.)
      std::vector<PeerId> live = churn.LivePeers();
      if (live.empty()) return;
      g = GroupOf(live[engine_rng.UniformIndex(live.size())]);
    }
    WithGroupIsolation(g, [&] {
      updater.Propagate(item.key, item.id, item.version, strategy, update_config);
    });
  }

  void RunChurn(const ScenarioStep& step) {
    // ChurnConfig speaks fractions of the live population; recover the exact
    // requested counts (the +0.5 defeats floor() landing one short under FP).
    const double live = static_cast<double>(churn.live_count());
    ChurnConfig config;
    config.crash_fraction =
        std::min(1.0, (static_cast<double>(step.a) + 0.5) / live);
    config.leave_fraction =
        std::min(1.0, (static_cast<double>(step.b) + 0.5) / live);
    config.join_fraction =
        std::min(1.0, (static_cast<double>(step.c) + 0.5) / live);
    config.meetings_per_round = step.d;
    config.join_online_prob = scenario.config.online_prob;
    if (partition_active) {
      // ChurnDriver's own meeting loop is partition-blind: run the membership
      // events through it but take the meetings back, gated per-group, so a
      // churn round cannot bridge the split.
      config.meetings_per_round = 0;
    }
    const size_t before = grid.size();
    churn.Round(config);
    OnJoin(before);
    if (partition_active) RunGatedMeetings(step.d);
  }

  void RunFault(const ScenarioStep& step) {
    const size_t n = grid.size();
    switch (step.a % 7) {
      case 0: {  // outage: unreachable at the transport AND offline to engines
        const PeerId p = static_cast<PeerId>(step.b % n);
        transport.InjectOutage(PeerAddress(p));
        if (p < outaged.size()) outaged[p] = 1;
        if (!churn.IsDead(p)) online.Pin(p, false);
        break;
      }
      case 1: {  // restore (dead peers stay pinned offline by the churn driver)
        const PeerId p = static_cast<PeerId>(step.b % n);
        transport.ClearOutage(PeerAddress(p));
        if (p < outaged.size()) outaged[p] = 0;
        if (!churn.IsDead(p)) online.Pin(p, std::nullopt);
        break;
      }
      case 2:  // drop a fraction of all meetings; b parts per 1024
        transport.DropWithProbability(
            "peer:*", static_cast<double>(step.b % 1024) / 1024.0);
        break;
      case 3:  // heal: remove all probabilistic rules and partitions
        transport.ClearRules();  // wipes macro partition rules too
        EndPartitionAbruptly();
        break;
      case 4: {  // partition peers below/above a pivot for c virtual-time units
        const PeerId pivot =
            static_cast<PeerId>(1 + step.b % (n > 1 ? n - 1 : 1));
        std::vector<std::string> lo, hi;
        for (PeerId p = 0; p < n; ++p) {
          (p < pivot ? lo : hi).push_back(PeerAddress(p));
        }
        const uint64_t now = transport.virtual_now();
        transport.Partition(lo, hi, now, now + 1 + step.c % 4096);
        break;
      }
      case 5:  // let a partition window elapse
        transport.AdvanceTime(1 + step.b % 4096);
        break;
      case 6:  // full heal: every transport fault lifted, live peers unpinned
        transport.ClearRules();
        EndPartitionAbruptly();
        for (PeerId p = 0; p < n; ++p) {
          transport.ClearOutage(PeerAddress(p));
          if (p < outaged.size()) outaged[p] = 0;
          if (!churn.IsDead(p)) online.Pin(p, std::nullopt);
        }
        break;
    }
  }

  void RunRepair(const ScenarioStep& step) {
    // Cap the tick count: each tick probes every reference of every live peer,
    // so an adversarially huge `a` would stall the fuzzer, not find more bugs.
    const uint64_t ticks = std::min<uint64_t>(step.a, 64);
    // Reads first, ticks second: ReadRepair patches only the responders it
    // reached (and with overlapping keys those may span several leaves), so
    // the maintenance rounds afterwards are what carry the patched version to
    // the rest of each replica group.
    ReliableReadConfig read_config;
    read_config.quorum = 2;
    read_config.max_attempts = 8;
    for (uint64_t i = 0; i < step.b && !inserted.empty(); ++i) {
      const DataItem& item = inserted[engine_rng.UniformIndex(inserted.size())];
      if (partition_active) {
        // The reading client sits on one side; its quorum must not span the
        // split (the extra draw happens only mid-partition).
        std::vector<PeerId> live = churn.LivePeers();
        if (live.empty()) break;
        const int g = GroupOf(live[engine_rng.UniformIndex(live.size())]);
        WithGroupIsolation(g,
                           [&] { repair.ReadRepair(item.key, item.id, read_config); });
      } else {
        repair.ReadRepair(item.key, item.id, read_config);
      }
    }
    for (uint64_t t = 0; t < ticks; ++t) repair.Tick();
  }

  /// Lazily creates the durable-storage backend under a fresh temp directory.
  /// Scenarios without kill steps never touch the filesystem; the directory is
  /// removed in the destructor. SyncMode::kNone: a simulated crash wipes the
  /// in-memory PeerState, not the host, so durability against host crashes is
  /// not what the steps exercise (tests/wal_test.cc covers torn tails).
  void EnsureStorage() {
    if (persist != nullptr) return;
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "pgrid-scenario-XXXXXX")
            .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    PGRID_CHECK(mkdtemp(buf.data()) != nullptr);
    storage_dir.assign(buf.data());
    storage::StorageConfig config;
    config.dir = storage_dir;
    config.sync_mode = storage::SyncMode::kNone;
    persist = std::make_unique<storage::PersistenceManager>(
        config, scenario.config.maxl);
  }

  void RunKill(const ScenarioStep& step) {
    // Mirror the churn driver's floor: a grid below 3 live peers has no
    // meaningful repair story left to exercise.
    if (churn.live_count() <= 2) return;
    std::vector<PeerId> live = churn.LivePeers();
    const PeerId victim = live[step.a % live.size()];
    KillPeer(victim, /*wal_flavor=*/step.c % 2 == 1);
  }

  /// Durable crash of one live peer (the body of kKill, shared with the
  /// crash-wave step): persist, wipe the in-memory state, retire as a crash,
  /// remember the victim for kRestart.
  void KillPeer(PeerId victim, bool wal_flavor) {
    EnsureStorage();
    PeerState& peer = grid.peer(victim);
    if (wal_flavor) {
      // WAL-delta flavor: baseline an empty peer, then push the entire live
      // state through the log as delta records. Recovery replays every record
      // over the empty snapshot -- the deep exercise of the record codec.
      PGRID_CHECK(persist->Attach(PeerState(victim)).ok());
      PGRID_CHECK(persist->Commit(peer).ok());
    } else {
      // Snapshot flavor: the full state lands in the snapshot file, WAL empty.
      PGRID_CHECK(persist->Attach(peer).ok());
    }
    // Wipe the in-memory state -- this is a crash, not a graceful leave. The
    // path bits leave the grid's running sum and return at restart.
    grid.NotePathLoss(peer.depth());
    peer = PeerState(victim);
    churn.Depart(victim, /*graceful=*/false);
    killed.push_back(victim);
  }

  void RunRestart(const ScenarioStep& step) {
    if (killed.empty() || persist == nullptr) return;
    std::vector<PeerId> victims;
    if (step.b != 0) {
      victims = killed;  // restart-all: the crash-sweep heal tail uses this
      killed.clear();
    } else {
      const size_t idx = step.a % killed.size();
      victims.push_back(killed[idx]);
      killed.erase(killed.begin() + static_cast<ptrdiff_t>(idx));
    }
    // Optionally let virtual time elapse between crash and recovery so
    // partition windows interact with the downtime.
    if (step.d % 64 != 0) transport.AdvanceTime(step.d % 64);
    for (PeerId v : victims) {
      Result<PeerState> recovered = persist->Recover(v);
      PGRID_CHECK(recovered.ok());
      grid.peer(v) = std::move(*recovered);
      grid.NotePathGrowth(grid.peer(v).depth());
      persist->Detach(v);
      churn.Revive(v);
      // Delta anti-entropy instead of recruitment: the recovered index pulls
      // only what it missed while down (repair/repair.h RejoinSync).
      repair.RejoinSync(v);
    }
  }

  /// kPartition: start or heal the named multi-group split, then run
  /// availability ticks. Returns a non-ok report iff the post-heal
  /// reconciliation failed to converge within its round budget.
  check::InvariantReport RunPartition(const ScenarioStep& step) {
    check::InvariantReport report;
    const uint64_t ticks = step.b % 16;
    if (step.a == 0) {
      if (partition_active) {
        // Heal: lift the drop rules, then drive anti-entropy until the
        // replicas that diverged across the split agree again. Failing to
        // converge within the budget fails the scenario like a barrier would.
        transport.HealPartition(partition_id);
        EndPartitionAbruptly();
        const auto rec = repair.ReconcileUntilConverged(/*max_rounds=*/32);
        if (!rec.converged) {
          report.violations.push_back(check::Violation{
              check::Category::kHealDivergence, kInvalidPeer, 0,
              "partition heal: anti-entropy still diverged after 32 rounds"});
        }
      }
      for (uint64_t t = 0; t < ticks; ++t) AvailabilityTick(8, nullptr, 1);
      return report;
    }
    if (partition_active) {
      // Only one named partition at a time: a new split supersedes the old
      // one (abruptly -- reconciliation is the heal form's business).
      transport.HealPartition(partition_id);
    }
    partition_groups = static_cast<int>(2 + step.a % 3);
    partition_rot = step.c;
    partition_active = true;
    quarantined.clear();
    pgroup.assign(grid.size(), 0);
    for (PeerId p = 0; p < grid.size(); ++p) {
      pgroup[p] = static_cast<int>((p + partition_rot) %
                                   static_cast<uint64_t>(partition_groups));
    }
    partition_id = InstallPartitionRules();
    for (uint64_t t = 0; t < ticks; ++t) {
      RunGatedMeetings(grid.size());
      AvailabilityTick(8, nullptr, 1);
    }
    return report;
  }

  void RunCrashWave(const ScenarioStep& step) {
    const uint64_t frac = step.a % 256;
    const size_t plen = step.c % (scenario.config.maxl + 1);
    const KeyPath prefix = KeyPath::FromUint64(step.b, plen);
    // The correlated failure domain ("one rack"): live peers whose path starts
    // with the prefix. Peers too shallow to have the full prefix are outside.
    std::vector<PeerId> victims;
    for (PeerId p : churn.LivePeers()) {
      if (grid.peer(p).path().CommonPrefixLength(prefix) == plen) {
        victims.push_back(p);
      }
    }
    const size_t count = (victims.size() * frac + 255) / 256;  // ceil
    for (size_t i = 0; i < count && i < victims.size(); ++i) {
      if (churn.live_count() <= 2) break;  // same floor as kKill
      KillPeer(victims[i], /*wal_flavor=*/i % 2 == 1);
    }
    AvailabilityTick(8, nullptr, 1);
  }

  void RunFlashCrowd(const ScenarioStep& step) {
    const size_t plen = 1 + step.b % scenario.config.maxl;
    const KeyPath prefix = KeyPath::FromUint64(step.a, plen);
    const uint64_t multiplier = 2 + step.c % 7;
    const uint64_t ticks = 1 + step.d % 8;
    shed_active = true;
    for (uint64_t t = 0; t < ticks; ++t) {
      AvailabilityTick(8, &prefix, multiplier);
    }
    shed_active = false;
    served_in_tick.clear();
    // The "after" sample: crowd gone, budget lifted -- the recovery point the
    // graceful-degradation benches assert on.
    AvailabilityTick(8, nullptr, 1);
  }

  void RunSlowNode(const ScenarioStep& step) {
    const uint64_t frac = step.a % 256;
    if (frac == 0) {
      slow_latency.clear();
      return;
    }
    // 5 + b % 60 keeps every mark above the default probe_timeout of 4.
    const uint64_t latency = 5 + step.b % 60;
    std::vector<PeerId> live = churn.LivePeers();
    const size_t count = (live.size() * frac + 255) / 256;  // ceil
    for (size_t i = 0; i < count && !live.empty(); ++i) {
      slow_latency[engine_rng.TakeRandom(&live)] = latency;
    }
  }

  void RunMassJoin(const ScenarioStep& step) {
    const size_t joiners = 1 + step.a % 32;
    const size_t before = grid.size();
    churn.Join(joiners, scenario.config.online_prob);
    OnJoin(before);
    RunGatedMeetings(step.b % 256);
    AvailabilityTick(8, nullptr, 1);
  }

  void RunProbes(uint64_t count, ScenarioResult* result) {
    for (uint64_t i = 0; i < count; ++i) {
      if (inserted.empty()) return;
      const DataItem& item =
          inserted[engine_rng.UniformIndex(inserted.size())];
      std::vector<PeerId> live = churn.LivePeers();
      if (live.empty()) return;
      const PeerId start = live[engine_rng.UniformIndex(live.size())];
      QueryResult q;
      WithGroupIsolation(GroupOf(start),
                         [&] { q = searcher.Query(start, item.key); });
      ++result->probes;
      if (q.found) ++result->probes_found;
    }
  }

  void RunCorrupt(const ScenarioStep& step) {
    const size_t n = grid.size();
    switch (step.a % 3) {
      case 0: {  // reference corruption: point a ref back at the peer itself
        for (size_t off = 0; off < n; ++off) {
          PeerState& p = grid.peer(static_cast<PeerId>((step.b + off) % n));
          if (p.depth() == 0) continue;
          const size_t level = 1 + step.c % p.depth();
          p.SetRefsAt(level, {p.id()});
          return;
        }
        break;
      }
      case 1: {  // placement corruption: entry outside the peer's interval
        for (size_t off = 0; off < n; ++off) {
          PeerState& p = grid.peer(static_cast<PeerId>((step.b + off) % n));
          if (p.depth() == 0) continue;
          IndexEntry e;
          e.holder = p.id();
          e.item_id = 0xC0FFEE + step.c;
          e.key = KeyPath::FromUint64(p.PathBit(1) == 0 ? 1 : 0, 1);
          e.version = 1;
          p.index().InsertOrRefresh(e);
          return;
        }
        break;
      }
      case 2: {  // replica desync: same (holder, item), different keys
        PeerState& first = grid.peer(static_cast<PeerId>(step.b % n));
        PeerState& second = grid.peer(static_cast<PeerId>((step.b + 1) % n));
        IndexEntry e;
        e.holder = first.id();
        e.item_id = 0xDE57 + step.c;
        e.key = first.path().length() > 0 ? first.path()
                                          : KeyPath::FromUint64(0, 1);
        e.version = 1;
        first.index().InsertOrRefresh(e);
        e.key = e.key.length() < scenario.config.maxl
                    ? e.key.Append(0)
                    : KeyPath::FromUint64(~step.c, e.key.length());
        second.index().InsertOrRefresh(e);
        break;
      }
    }
  }

  check::InvariantReport CheckInvariants(bool strict) {
    check::InvariantOptions options;
    // Without data management, path splits legitimately strand entries outside
    // the new interval; only managed grids promise placement.
    options.check_placement = scenario.config.manage_data;
    // Every barrier gets the dead mask: kill steps wipe dead peers' in-memory
    // state, and the structure check must not judge references against it.
    options.dead = &churn.dead_mask();
    if (strict) {
      // The repair-convergence target: among survivors, no dead references,
      // every level still routable, live buddies in agreement.
      options.check_repair_convergence = true;
      options.dead = &churn.dead_mask();
      options.repair_min_live_refs = 1;
    }
    // Partition consistency: while split, quarantined entries must not leak
    // across groups; once healed, strict barriers demand buddy agreement on
    // exactly the partition-era items.
    check::PartitionView pv;
    if (!pgroup.empty()) {
      pv.group = pgroup;
      pv.active = partition_active;
      pv.items = quarantined;
      options.partition = &pv;
    }
    return check::GridInvariants::Check(grid, exchange_config, options);
  }

  std::string ComputeDigest() {
    Digest d;
    d.U64(GridStateDigest(grid));
    for (int t = 0; t < kNumMessageTypes; ++t) {
      d.U64(grid.stats().count(static_cast<MessageType>(t)));
    }
    d.U64(transport.virtual_now());
    d.U64(churn.live_count());
    return d.Hex();
  }

  ScenarioResult Run() {
    ScenarioResult result;
    const std::vector<ScenarioStep>& steps = scenario.steps;
    for (size_t i = 0; i <= steps.size(); ++i) {
      const bool final_barrier = i == steps.size();
      // Each step draws from its own counter-derived stream: execution of step i
      // is independent of how many draws earlier steps consumed, which is what
      // lets the shrinker delete steps without perturbing the survivors.
      engine_rng.Reseed(DeriveStreamSeed(scenario.config.seed, i + 1));
      const ScenarioStep step =
          final_barrier ? ScenarioStep{StepKind::kBarrier, 4, 0, 0, 0} : steps[i];
      switch (step.kind) {
        case StepKind::kExchange:
          RunExchanges(step.a);
          break;
        case StepKind::kInsert:
          RunInsert(step);
          break;
        case StepKind::kUpdate:
          RunUpdate(step);
          break;
        case StepKind::kChurn:
          RunChurn(step);
          break;
        case StepKind::kFault:
          RunFault(step);
          break;
        case StepKind::kCorrupt:
          RunCorrupt(step);
          break;
        case StepKind::kRepair:
          RunRepair(step);
          break;
        case StepKind::kKill:
          RunKill(step);
          break;
        case StepKind::kRestart:
          RunRestart(step);
          break;
        case StepKind::kPartition: {
          check::InvariantReport report = RunPartition(step);
          if (!report.ok()) {
            // A heal that cannot reconcile is a failure of the self-healing
            // protocol: report it like a failing barrier, pinned to this step.
            result.failed = true;
            result.failed_step = i;
            result.report = std::move(report);
            result.steps_executed = i;
            result.digest = ComputeDigest();
            return result;
          }
          break;
        }
        case StepKind::kCrashWave:
          RunCrashWave(step);
          break;
        case StepKind::kFlashCrowd:
          RunFlashCrowd(step);
          break;
        case StepKind::kSlowNode:
          RunSlowNode(step);
          break;
        case StepKind::kMassJoin:
          RunMassJoin(step);
          break;
        case StepKind::kBarrier: {
          check::InvariantReport report = CheckInvariants(step.b != 0);
          if (!report.ok()) {
            result.failed = true;
            result.failed_step = i;
            result.report = std::move(report);
            result.steps_executed = final_barrier ? steps.size() : i;
            result.digest = ComputeDigest();
            return result;
          }
          RunProbes(step.a, &result);
          break;
        }
      }
      if (!final_barrier) ++result.steps_executed;
      if (timeline != nullptr) {
        // Read-only sampling: the engines never see the recorder, so the
        // execution (and digest) cannot depend on whether a timeline is on.
        timeline->AddPoint("sim.virtual_now", i,
                           static_cast<double>(transport.virtual_now()));
        timeline->AddPoint("sim.live_peers", i,
                           static_cast<double>(churn.live_count()));
        timeline->SampleRegistry(i, grid.metrics());
      }
    }
    result.digest = ComputeDigest();
    return result;
  }

  Scenario scenario;
  Grid grid;
  Rng engine_rng;
  Rng model_rng;
  OnlineModel online;
  MeetingScheduler scheduler;
  net::InProcTransport inner_transport;
  net::FaultInjectingTransport transport;
  ExchangeConfig exchange_config;
  UpdateConfig update_config;
  ExchangeEngine exchange;
  ChurnDriver churn;
  InsertEngine inserter;
  UpdateEngine updater;
  SearchEngine searcher;
  repair::RepairEngine repair;
  std::vector<DataItem> inserted;
  ItemId next_item_id = 1;
  obs::TimelineRecorder* timeline = nullptr;
  // Durable-storage backend for kill/restart steps; created on first kill.
  std::unique_ptr<storage::PersistenceManager> persist;
  std::string storage_dir;
  std::vector<PeerId> killed;  // crash order; restart selectors index into this

  // ---- macro-fault state (see the helpers above) ----
  std::vector<int> pgroup;      // partition group per peer; kept after the heal
  bool partition_active = false;
  int partition_groups = 0;
  uint64_t partition_rot = 0;   // group assignment offset (step.c)
  uint64_t partition_id = 0;    // transport registration (PartitionGroups)
  std::vector<check::PartitionView::Quarantined> quarantined;
  std::vector<uint8_t> outaged;  // kFault outage pins, mirrored for isolation
  std::unordered_map<PeerId, uint64_t> slow_latency;  // gray peers (kSlowNode)
  bool shed_active = false;      // flash-crowd serve budgets armed
  uint64_t shed_budget = 16;     // served hops per peer per availability tick
  std::unordered_map<PeerId, uint64_t> served_in_tick;
  uint64_t macro_tick = 0;       // x-axis of the avail.* timeline series
};

ScenarioRunner::ScenarioRunner(const Scenario& scenario)
    : impl_(std::make_unique<Impl>(scenario)) {}

ScenarioRunner::~ScenarioRunner() = default;

void ScenarioRunner::SetTimeline(obs::TimelineRecorder* timeline) {
  impl_->timeline = timeline;
}

ScenarioResult ScenarioRunner::Run() { return impl_->Run(); }

Grid& ScenarioRunner::grid() { return impl_->grid; }

const ExchangeConfig& ScenarioRunner::exchange_config() const {
  return impl_->exchange_config;
}

}  // namespace sim
}  // namespace pgrid
