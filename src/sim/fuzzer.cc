#include "sim/fuzzer.h"

#include <utility>

#include "util/rng.h"

namespace pgrid {
namespace sim {
namespace {

/// Stream index separating the generator's draws from the runner's per-step
/// streams (which use indices 1 .. steps+1 of the scenario seed).
constexpr uint64_t kGeneratorStream = 0xF0220000ull;

/// Crash-sweep variant of the weight table: same step shapes, but ~12% of the
/// mass moves to kKill / kRestart so most seeds crash and recover several
/// peers. Kept separate from RandomStep so plain-mode seeds keep their exact
/// historical draw sequence (and hence their corpus of known-clean scenarios).
ScenarioStep RandomCrashStep(Rng* rng, const ScenarioConfig& config) {
  ScenarioStep step;
  const uint64_t roll = rng->UniformInt(0, 99);
  if (roll < 30) {
    step.kind = StepKind::kExchange;
    step.a = rng->UniformInt(1, 4 * config.num_peers);
  } else if (roll < 50) {
    step.kind = StepKind::kInsert;
    step.a = rng->UniformInt(0, config.num_peers - 1);
    step.b = rng->UniformInt(0, (1ull << config.maxl) - 1);
    step.c = rng->UniformInt(0, config.maxl - 1);
    step.d = rng->UniformInt(0, 15);
  } else if (roll < 58) {
    step.kind = StepKind::kUpdate;
    step.a = rng->UniformInt(0, 1ull << 32);
    step.b = rng->UniformInt(0, 2);
  } else if (roll < 66) {
    step.kind = StepKind::kChurn;
    step.a = rng->UniformInt(0, 2);
    step.b = rng->UniformInt(0, 1);
    step.c = rng->UniformInt(0, 2);
    step.d = rng->UniformInt(0, 2 * config.num_peers);
  } else if (roll < 76) {
    step.kind = StepKind::kFault;
    step.a = rng->UniformInt(0, 6);
    step.b = rng->UniformInt(0, 1ull << 32);
    step.c = rng->UniformInt(0, 4095);
  } else if (roll < 82) {
    step.kind = StepKind::kRepair;
    step.a = rng->UniformInt(1, 3);
    step.b = rng->UniformInt(0, 2);
  } else if (roll < 88) {
    step.kind = StepKind::kKill;
    step.a = rng->UniformInt(0, 1ull << 32);  // victim selector
    step.c = rng->UniformInt(0, 1);           // snapshot vs WAL-delta flavor
  } else if (roll < 94) {
    step.kind = StepKind::kRestart;
    step.a = rng->UniformInt(0, 1ull << 32);  // killed-list selector
    step.b = rng->Bernoulli(0.25) ? 1 : 0;    // occasionally restart all
    step.d = rng->UniformInt(0, 63);          // virtual-clock advance
  } else {
    step.kind = StepKind::kBarrier;
    step.a = rng->UniformInt(0, 8);
  }
  return step;
}

/// Macro-sweep variant of the weight table: the classic step shapes keep a
/// slim majority of the mass, and the rest goes to the grid-scale events of
/// docs/robustness.md (partitions, crash waves, flash crowds, gray failures,
/// mass joins). Kept separate from RandomStep / RandomCrashStep so each
/// sweep's seed corpus stays stable.
ScenarioStep RandomMacroStep(Rng* rng, const ScenarioConfig& config) {
  ScenarioStep step;
  const uint64_t roll = rng->UniformInt(0, 99);
  if (roll < 22) {
    step.kind = StepKind::kExchange;
    step.a = rng->UniformInt(1, 4 * config.num_peers);
  } else if (roll < 38) {
    step.kind = StepKind::kInsert;
    step.a = rng->UniformInt(0, config.num_peers - 1);
    step.b = rng->UniformInt(0, (1ull << config.maxl) - 1);
    step.c = rng->UniformInt(0, config.maxl - 1);
    step.d = rng->UniformInt(0, 15);
  } else if (roll < 46) {
    step.kind = StepKind::kUpdate;
    step.a = rng->UniformInt(0, 1ull << 32);
    step.b = rng->UniformInt(0, 2);
  } else if (roll < 52) {
    step.kind = StepKind::kChurn;
    step.a = rng->UniformInt(0, 2);
    step.b = rng->UniformInt(0, 1);
    step.c = rng->UniformInt(0, 2);
    step.d = rng->UniformInt(0, 2 * config.num_peers);
  } else if (roll < 58) {
    step.kind = StepKind::kFault;
    step.a = rng->UniformInt(0, 6);
    step.b = rng->UniformInt(0, 1ull << 32);
    step.c = rng->UniformInt(0, 4095);
  } else if (roll < 64) {
    step.kind = StepKind::kRepair;
    step.a = rng->UniformInt(1, 3);
    step.b = rng->UniformInt(0, 2);
  } else if (roll < 72) {
    step.kind = StepKind::kPartition;
    step.a = rng->Bernoulli(0.35) ? 0 : rng->UniformInt(1, 6);  // heal vs split
    step.b = rng->UniformInt(0, 4);                             // avail ticks
    step.c = rng->UniformInt(0, 7);                             // group rotation
  } else if (roll < 78) {
    step.kind = StepKind::kCrashWave;
    step.a = rng->UniformInt(32, 128);        // wave fraction (of 256)
    step.b = rng->UniformInt(0, 1ull << 32);  // prefix bits
    step.c = rng->UniformInt(0, config.maxl); // prefix length
  } else if (roll < 84) {
    step.kind = StepKind::kFlashCrowd;
    step.a = rng->UniformInt(0, 1ull << 32);      // hot-prefix bits
    step.b = rng->UniformInt(0, config.maxl - 1); // prefix length selector
    step.c = rng->UniformInt(0, 6);               // load multiplier selector
    step.d = rng->UniformInt(0, 3);               // crowd duration selector
  } else if (roll < 89) {
    step.kind = StepKind::kSlowNode;
    step.a = rng->Bernoulli(0.25) ? 0 : rng->UniformInt(24, 96);  // clear vs mark
    step.b = rng->UniformInt(0, 59);                              // extra latency
  } else if (roll < 94) {
    step.kind = StepKind::kMassJoin;
    step.a = rng->UniformInt(0, 15);   // joiner count selector
    step.b = rng->UniformInt(0, 128);  // integration meetings
  } else {
    step.kind = StepKind::kBarrier;
    step.a = rng->UniformInt(0, 8);
  }
  return step;
}

ScenarioStep RandomStep(Rng* rng, const ScenarioConfig& config) {
  ScenarioStep step;
  // Weighted kinds: exchanges dominate (they are the protocol's engine), data
  // and fault steps stress the invariants, barriers pin failures to a step.
  const uint64_t roll = rng->UniformInt(0, 99);
  if (roll < 35) {
    step.kind = StepKind::kExchange;
    step.a = rng->UniformInt(1, 4 * config.num_peers);
  } else if (roll < 55) {
    step.kind = StepKind::kInsert;
    step.a = rng->UniformInt(0, config.num_peers - 1);
    step.b = rng->UniformInt(0, (1ull << config.maxl) - 1);
    step.c = rng->UniformInt(0, config.maxl - 1);
    step.d = rng->UniformInt(0, 15);
  } else if (roll < 65) {
    step.kind = StepKind::kUpdate;
    step.a = rng->UniformInt(0, 1ull << 32);
    step.b = rng->UniformInt(0, 2);
  } else if (roll < 75) {
    step.kind = StepKind::kChurn;
    step.a = rng->UniformInt(0, 2);  // crashes
    step.b = rng->UniformInt(0, 1);  // graceful leaves
    step.c = rng->UniformInt(0, 2);  // joins
    step.d = rng->UniformInt(0, 2 * config.num_peers);  // repair meetings
  } else if (roll < 87) {
    step.kind = StepKind::kFault;
    step.a = rng->UniformInt(0, 6);
    step.b = rng->UniformInt(0, 1ull << 32);
    step.c = rng->UniformInt(0, 4095);
  } else if (roll < 93) {
    step.kind = StepKind::kRepair;
    step.a = rng->UniformInt(1, 3);  // maintenance rounds
    step.b = rng->UniformInt(0, 2);  // majority-read repairs
  } else {
    step.kind = StepKind::kBarrier;
    step.a = rng->UniformInt(0, 8);  // probe queries
  }
  return step;
}

}  // namespace

Scenario ScenarioFuzzer::Generate(uint64_t seed, const FuzzOptions& options) {
  Rng rng(DeriveStreamSeed(seed, kGeneratorStream));
  Scenario scenario;
  ScenarioConfig& c = scenario.config;
  c.seed = seed;
  c.fault_seed = DeriveStreamSeed(seed, kGeneratorStream + 1);
  c.num_peers = options.min_peers +
                rng.UniformIndex(options.max_peers - options.min_peers + 1);
  c.maxl = rng.UniformInt(2, 5);
  c.refmax = rng.UniformInt(1, 3);
  c.recmax = rng.UniformInt(0, 2);
  c.recursion_fanout = rng.Bernoulli(0.7) ? 2 : 0;
  c.manage_data = true;  // data invariants need managed leaf indexes
  c.prune_unreachable_refs = rng.Bernoulli(0.5);
  c.recbreadth = rng.UniformInt(1, 3);
  c.repetition = rng.UniformInt(1, 3);
  c.online_prob = rng.Bernoulli(0.5) ? 1.0 : 0.6 + 0.4 * rng.UniformDouble();

  // Warm-up: enough meetings that most scenarios exercise a partly built grid
  // rather than a flat one.
  scenario.steps.push_back(
      ScenarioStep{StepKind::kExchange,
                   rng.UniformInt(2 * c.num_peers, 8 * c.num_peers), 0, 0, 0});
  const size_t steps =
      options.min_steps + rng.UniformIndex(options.max_steps - options.min_steps + 1);
  for (size_t i = 0; i < steps; ++i) {
    scenario.steps.push_back(options.crash_sweep  ? RandomCrashStep(&rng, c)
                             : options.macro_sweep ? RandomMacroStep(&rng, c)
                                                   : RandomStep(&rng, c));
  }
  if (options.vary_builder_threads) {
    // Drawn last so turning the sweep on perturbs no earlier draw: the same
    // seed yields the same community and step list with the sweep on or off,
    // only the execution engine differs.
    c.builder_threads = 1ull << rng.UniformInt(0, 3);  // 1, 2, 4, or 8
  }
  if (options.heal_tail || options.crash_sweep || options.macro_sweep) {
    // Whatever the random steps did, self-healing must converge: lift every
    // transport fault, let exchanges re-mix the survivors, run repair rounds,
    // then demand repair convergence at a strict barrier (kBarrier b != 0).
    // The crash sweep additionally restarts every still-killed peer first, so
    // the strict barrier covers recovered peers too: their recovered
    // references must be live and their recovered indexes buddy-consistent.
    // The macro sweep first heals any live partition (kPartition a = 0 runs
    // anti-entropy to convergence and fails the seed if replica agreement
    // cannot be restored) and clears every gray-failure mark so the strict
    // barrier judges a fully reconnected, full-speed grid.
    c.online_prob = 1.0;
    if (options.macro_sweep) {
      scenario.steps.push_back(ScenarioStep{StepKind::kPartition, 0, 0, 0, 0});
      scenario.steps.push_back(ScenarioStep{StepKind::kSlowNode, 0, 0, 0, 0});
    }
    scenario.steps.push_back(ScenarioStep{StepKind::kFault, 6, 0, 0, 0});
    if (options.crash_sweep || options.macro_sweep) {
      scenario.steps.push_back(ScenarioStep{StepKind::kRestart, 0, 1, 0, 0});
    }
    scenario.steps.push_back(
        ScenarioStep{StepKind::kExchange, 4 * c.num_peers, 0, 0, 0});
    scenario.steps.push_back(ScenarioStep{StepKind::kRepair, 4, 2, 0, 0});
    scenario.steps.push_back(ScenarioStep{StepKind::kBarrier, 4, 1, 0, 0});
  }
  return scenario;
}

ScenarioResult RunScenario(const Scenario& scenario) {
  ScenarioRunner runner(scenario);
  return runner.Run();
}

namespace {

Scenario WithSteps(const Scenario& base, std::vector<ScenarioStep> steps) {
  Scenario out;
  out.config = base.config;
  out.steps = std::move(steps);
  return out;
}

bool Fails(const Scenario& s) { return RunScenario(s).failed; }

}  // namespace

Scenario ScenarioFuzzer::Shrink(const Scenario& failing) {
  if (!Fails(failing)) return failing;

  // Phase 1: binary-search the shortest failing prefix. The runner's implicit
  // final barrier makes every prefix a complete scenario, so a prefix fails iff
  // the violation was already present after its last step.
  std::vector<ScenarioStep> steps = failing.steps;
  {
    size_t lo = 0, hi = steps.size();  // invariant: prefix of length hi fails
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      std::vector<ScenarioStep> prefix(steps.begin(), steps.begin() + mid);
      if (Fails(WithSteps(failing, std::move(prefix)))) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    steps.resize(hi);
  }

  // Phase 2: ddmin-style deletion, halving the chunk size until single steps.
  // Note deleting a step shifts the per-step Rng streams of its successors, so
  // each candidate is re-run from scratch -- cheap at these scenario sizes.
  for (size_t chunk = steps.size() / 2; chunk >= 1; chunk /= 2) {
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      for (size_t start = 0; start + chunk <= steps.size();) {
        std::vector<ScenarioStep> candidate;
        candidate.reserve(steps.size() - chunk);
        candidate.insert(candidate.end(), steps.begin(), steps.begin() + start);
        candidate.insert(candidate.end(), steps.begin() + start + chunk,
                         steps.end());
        if (Fails(WithSteps(failing, candidate))) {
          steps = std::move(candidate);
          removed_any = true;
        } else {
          start += chunk;
        }
      }
    }
    if (chunk == 1) break;
  }
  return WithSteps(failing, std::move(steps));
}

FuzzOutcome ScenarioFuzzer::Fuzz(const FuzzOptions& options) {
  FuzzOutcome outcome;
  for (size_t i = 0; i < options.num_seeds; ++i) {
    const uint64_t seed = options.base_seed + i;
    Scenario scenario = Generate(seed, options);
    ScenarioResult result = RunScenario(scenario);
    ++outcome.seeds_run;
    bool failed = result.failed;
    if (failed) {
      ++outcome.failures;
      if (outcome.failures == 1) {
        outcome.failing_seed = seed;
        outcome.minimal = Shrink(scenario);
        outcome.failure = RunScenario(outcome.minimal);
      }
    } else if (options.vary_builder_threads &&
               scenario.config.builder_threads > 1) {
      // Thread-count invariance: re-execute the identical scenario with
      // builder_threads = 1. The wave machinery promises the digest is a pure
      // function of the scenario value, not of the thread count, so any
      // mismatch is a determinism bug -- counted as a failure. The scenario is
      // recorded unshrunk: Shrink()'s predicate is invariant failure, and a
      // digest mismatch typically vanishes under any step deletion anyway.
      Scenario serial = scenario;
      serial.config.builder_threads = 1;
      const ScenarioResult baseline = RunScenario(serial);
      if (baseline.digest != result.digest) {
        failed = true;
        ++outcome.failures;
        ++outcome.digest_mismatches;
        if (outcome.failures == 1) {
          outcome.failing_seed = seed;
          outcome.minimal = scenario;
          outcome.failure = result;
        }
      }
    }
    if (failed && options.stop_on_failure) break;
  }
  return outcome;
}

}  // namespace sim
}  // namespace pgrid
