#include "sim/message_stats.h"

namespace pgrid {

std::string_view MessageTypeName(MessageType t) {
  switch (t) {
    case MessageType::kExchange:
      return "exchange";
    case MessageType::kQuery:
      return "query";
    case MessageType::kUpdate:
      return "update";
    case MessageType::kDataTransfer:
      return "data_transfer";
    case MessageType::kControl:
      return "control";
  }
  return "unknown";
}

}  // namespace pgrid
