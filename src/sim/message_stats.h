// Message accounting for simulated protocol runs.
//
// All paper metrics are message counts: exchange invocations during construction,
// successful remote query calls during search, messages spent propagating updates.
// MessageStats is the single ledger those algorithms record into, so experiments can
// report exactly the quantities the paper reports.

#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace pgrid {

/// Categories of simulated messages.
enum class MessageType : int {
  kExchange = 0,      ///< one execution of the exchange algorithm between two peers
  kQuery = 1,         ///< one successful remote invocation of the query operation
  kUpdate = 2,        ///< one message propagating an update to a replica
  kDataTransfer = 3,  ///< leaf index entries handed over during construction
  kControl = 4,       ///< anything else (buddy notifications, probes)
};

inline constexpr int kNumMessageTypes = 5;

/// Returns a stable name for a message type.
std::string_view MessageTypeName(MessageType t);

/// Monotonic counters of simulated messages, by type.
class MessageStats {
 public:
  /// Adds `n` messages of type `t`.
  void Record(MessageType t, uint64_t n = 1) {
    counts_[static_cast<int>(t)] += n;
  }

  /// Count for one type.
  uint64_t count(MessageType t) const { return counts_[static_cast<int>(t)]; }

  /// Sum over all types.
  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t c : counts_) sum += c;
    return sum;
  }

  /// Adds another ledger's counts into this one. This is the merge step of sharded
  /// accounting: parallel drivers give every concurrent work item its own shard and
  /// fold the shards into the grid's ledger at batch barriers, in deterministic
  /// (work-item) order, so totals are identical to a serial run over the same items.
  void MergeFrom(const MessageStats& other) {
    for (int i = 0; i < kNumMessageTypes; ++i) counts_[i] += other.counts_[i];
  }

  /// Zeroes all counters.
  void Reset() { counts_.fill(0); }

 private:
  std::array<uint64_t, kNumMessageTypes> counts_{};
};

/// RAII helper that measures how many messages of one type an operation produced.
class MessageDelta {
 public:
  MessageDelta(const MessageStats& stats, MessageType type)
      : stats_(stats), type_(type), start_(stats.count(type)) {}

  /// Messages of the tracked type recorded since construction.
  uint64_t Count() const { return stats_.count(type_) - start_; }

 private:
  const MessageStats& stats_;
  MessageType type_;
  uint64_t start_;
};

}  // namespace pgrid
