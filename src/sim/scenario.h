// Scenarios: deterministic, replayable protocol interleavings.
//
// A Scenario is a *value* -- a configuration plus a flat list of steps
// (exchanges, inserts, updates, churn rounds, fault injections, invariant
// barriers). Every random decision is either materialized into the step's
// parameters at generation time or drawn from an Rng reseeded per step with
// DeriveStreamSeed(seed, step_index), so executing a scenario is a pure
// function of the value: same scenario in, same grid, same ledger, same
// digest out -- regardless of what ran before. That is what makes fuzzing
// findings reproducible (sim/fuzzer.h) and shrunk repros replayable
// (`pgrid replay <file>`).
//
// The text serialization is intentionally line-based and diff-friendly: a
// repro file checked into a bug report can be read, edited, and replayed by
// hand.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "check/invariants.h"
#include "obs/timeline.h"
#include "util/result.h"

namespace pgrid {

class Grid;
struct ExchangeConfig;

namespace sim {

/// One step of a scenario. The meaning of parameters a..d depends on the kind;
/// unused parameters must be zero (serialization round-trips them verbatim).
enum class StepKind : int {
  /// Run `a` pairwise meetings through the fault-gated transport.
  kExchange = 0,
  /// Insert item (id = runner-assigned counter) at holder selector `a`, with key
  /// bits `b` of length 1 + c % maxl, payload size d % 16.
  kInsert = 1,
  /// Re-propagate inserted item selector `a` with strategy `b` % 3, bumping its
  /// version by one.
  kUpdate = 2,
  /// Churn round: `a` crashes, `b` graceful leaves, `c` joins, then `d` meetings.
  kChurn = 3,
  /// Fault-injection control; `a` selects the operation (see scenario.cc):
  /// outage / restore / probabilistic drop / clear rules / partition / advance
  /// virtual clock.
  kFault = 4,
  /// Check all invariants now, and run `a` probe queries for inserted items.
  /// `b` != 0 additionally demands repair convergence: among live peers, no
  /// dead references, every level routable, live buddies in agreement.
  kBarrier = 5,
  /// Deliberately corrupt the grid (test-only; the generator never emits this):
  /// `a` % 3 picks self-reference / misplaced entry / replica key desync at peer
  /// selector `b`.
  kCorrupt = 6,
  /// Run `b` majority-read repairs of random inserted items, then `a`
  /// self-healing maintenance rounds (probe/evict + recruit + buddy
  /// anti-entropy, see repair/repair.h). Reads go first: a read repair is a
  /// point patch of the quorum it happened to reach, and the anti-entropy
  /// rounds that follow spread the patched version to the remaining replicas.
  kRepair = 7,
  /// Crash live peer selector `a` *with durable state*: its current state is
  /// persisted through the storage backend (storage/persist.h), then the
  /// in-memory PeerState is wiped and the peer retired as a crash. `c` % 2
  /// picks the persistence flavor: 0 = snapshot at attach (the recovered state
  /// comes from the snapshot file), 1 = attach empty + commit (the whole state
  /// travels through the WAL delta). Never kills below 3 live peers.
  kKill = 8,
  /// Restart a previously killed peer from its on-disk state: recover snapshot
  /// + WAL tail, reinstall the PeerState, revive it, and run one targeted
  /// buddy anti-entropy pass (RepairEngine::RejoinSync) so it pulls the delta
  /// it missed while down. `b` != 0 restarts *all* currently-killed peers (the
  /// heal-tail form); otherwise killed-list selector `a` picks one. `d` % 64
  /// advances the fault transport's virtual clock before the rejoin sync.
  kRestart = 9,

  // ---- macro faults (docs/robustness.md): correlated, grid-scale events. ----

  /// Start or heal a named multi-group partition. `a` == 0 heals the active
  /// partition (no-op when none is active): the transport rules are lifted and
  /// anti-entropy runs until replica agreement converges (bounded rounds;
  /// exhausting the budget fails the step like a barrier). `a` > 0 starts a
  /// split into 2 + a % 3 groups -- peer p joins group (p + c) % groups -- and
  /// while it is active, meetings, probes, and data operations stay inside
  /// their group and new inserts are quarantined for the partition-consistency
  /// invariants (check::PartitionView). Either form ends with `b` % 16
  /// availability ticks (sampled client queries feeding the avail.* series).
  kPartition = 10,
  /// Correlated crash wave *with durable state*: among live peers whose path
  /// starts with the c % (maxl+1)-bit prefix `b` (0 bits = everyone), crash
  /// ceil(count * (a % 256) / 256) peers the way kKill does -- state persisted,
  /// memory wiped, victim on the killed list so kRestart recovers it later.
  /// The persistence flavor alternates per victim. Ends with one availability
  /// tick measuring what the survivors still serve.
  kCrashWave = 11,
  /// Flash crowd on one key region: for 1 + d % 8 ticks, run an availability
  /// tick whose query load is multiplied by 2 + c % 7 and aimed at random
  /// extensions of the (1 + b % maxl)-bit prefix `a`, with per-peer overload
  /// shedding armed (a bounded per-tick serve budget; hops beyond it are shed
  /// -- degraded, not failed). One unshedded availability tick follows as the
  /// "after" sample.
  kFlashCrowd = 12,
  /// Gray failure: mark ceil(live * (a % 256) / 256) random live peers slow
  /// (their probes report latency 5 + b % 60, above the detector's timeout);
  /// `a` == 0 clears every slow mark instead. Latency-aware suspicion must
  /// demote slow peers from routing preference without evicting them as dead.
  kSlowNode = 13,
  /// Mass join: 1 + a % 32 fresh peers enter in one batch, then b % 256
  /// integration meetings run, then one availability tick.
  kMassJoin = 14,
};

inline constexpr int kNumStepKinds = 15;

/// Stable step name used in the text format ("exchange", "insert", ...).
std::string_view StepKindName(StepKind k);

struct ScenarioStep {
  StepKind kind = StepKind::kExchange;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;

  friend bool operator==(const ScenarioStep&, const ScenarioStep&) = default;
};

/// The community and algorithm parameters a scenario runs under.
struct ScenarioConfig {
  uint64_t seed = 1;          ///< master seed for all per-step streams
  size_t num_peers = 32;
  size_t maxl = 4;
  size_t refmax = 2;
  size_t recmax = 2;
  size_t recursion_fanout = 2;
  bool manage_data = true;
  bool prune_unreachable_refs = true;
  size_t recbreadth = 2;      ///< update propagation fan-out
  size_t repetition = 2;      ///< update propagation restarts
  double online_prob = 1.0;   ///< snapshot availability of the community
  uint64_t fault_seed = 0;    ///< seed of the fault transport's rule RNG

  /// Thread count for exchange steps. 0 (the default) is the legacy serial
  /// path: meetings run inline on the engine stream, preserving the digests of
  /// every pre-existing scenario and repro file. >= 1 routes each exchange
  /// step's surviving meetings through ParallelGridBuilder::RunMeetings; that
  /// switches the per-meeting randomness from the engine stream to the
  /// builder's slot streams (so 0 and 1 digest differently), but among values
  /// >= 1 the digest is invariant -- builder_threads 1, 2, and 8 are
  /// byte-identical, which the fuzzer's thread sweep asserts.
  size_t builder_threads = 0;

  friend bool operator==(const ScenarioConfig&, const ScenarioConfig&) = default;
};

struct Scenario {
  ScenarioConfig config;
  std::vector<ScenarioStep> steps;

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Renders the scenario in the line-based text format (ends with "end\n").
std::string SerializeScenario(const Scenario& scenario);

/// Parses the text format. InvalidArgument with a line-number message on any
/// malformed input; serialization and parsing round-trip exactly.
Result<Scenario> ParseScenario(const std::string& text);

/// File convenience wrappers around the text format.
Status SaveScenario(const Scenario& scenario, const std::string& path);
Result<Scenario> LoadScenario(const std::string& path);

/// Outcome of running one scenario to completion.
struct ScenarioResult {
  /// True iff some barrier (or the implicit final one) reported violations.
  bool failed = false;

  /// Step index whose barrier failed; steps.size() means the implicit final
  /// barrier. Valid iff failed.
  size_t failed_step = 0;

  /// The first failing invariant report (empty when !failed).
  check::InvariantReport report;

  /// Probe queries run at barriers and how many found a responsible peer.
  uint64_t probes = 0;
  uint64_t probes_found = 0;

  /// Steps actually executed (== steps.size() unless a barrier failed).
  size_t steps_executed = 0;

  /// FNV-1a digest of the final state (peer paths, refs, indexes, ledger,
  /// virtual clock). Two runs of the same scenario produce the same digest;
  /// this is the "byte-identical trace" the harness asserts on.
  std::string digest;
};

/// Executes scenarios. One runner executes one scenario; construct fresh per run.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(const Scenario& scenario);
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  /// Attaches a per-step metric timeline (null = off, the default). After every
  /// executed step the runner samples the grid's metrics registry at t = step
  /// index and records the virtual clock and live-peer count as their own
  /// series. Sampling only reads, so the result -- digest included -- is
  /// byte-identical with and without a timeline (tests/scenario_test.cc pins
  /// this). Call before Run(); the recorder must outlive the runner.
  void SetTimeline(obs::TimelineRecorder* timeline);

  /// Runs every step, checking invariants at each kBarrier and once more after
  /// the last step. Stops at the first failing barrier.
  ScenarioResult Run();

  /// The grid after Run() (snapshot round-trip tests persist it).
  Grid& grid();
  const ExchangeConfig& exchange_config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sim
}  // namespace pgrid
