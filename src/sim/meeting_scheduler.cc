#include "sim/meeting_scheduler.h"

#include "util/macros.h"

namespace pgrid {

MeetingScheduler::MeetingScheduler(size_t num_peers, Pattern pattern, double bias,
                                   size_t recency_window)
    : num_peers_(num_peers),
      pattern_(pattern),
      bias_(bias),
      recency_window_(recency_window) {
  PGRID_CHECK_GE(num_peers, 2u);
  PGRID_CHECK(bias >= 0.0 && bias <= 1.0);
}

void MeetingScheduler::SetNumPeers(size_t n) {
  PGRID_CHECK_GE(n, 2u);
  num_peers_ = n;
}

PeerId MeetingScheduler::DrawPeer(Rng* rng) {
  if (pattern_ == Pattern::kRecencyBiased && !recent_.empty() && rng->Bernoulli(bias_)) {
    return recent_[rng->UniformIndex(recent_.size())];
  }
  return static_cast<PeerId>(rng->UniformIndex(num_peers_));
}

Meeting MeetingScheduler::Next(Rng* rng) {
  PGRID_CHECK(rng != nullptr);
  PeerId a = DrawPeer(rng);
  PeerId b = DrawPeer(rng);
  while (b == a) b = static_cast<PeerId>(rng->UniformIndex(num_peers_));
  if (pattern_ == Pattern::kRecencyBiased) {
    recent_.push_back(a);
    recent_.push_back(b);
    while (recent_.size() > recency_window_) recent_.pop_front();
  }
  return Meeting{a, b};
}

void MeetingScheduler::NextBatch(Rng* rng, size_t count, std::vector<Meeting>* out) {
  PGRID_CHECK(out != nullptr);
  out->reserve(out->size() + count);
  for (size_t i = 0; i < count; ++i) out->push_back(Next(rng));
}

}  // namespace pgrid
