// Basic identifier types shared by the simulation and the P-Grid core.

#pragma once

#include <cstdint>
#include <limits>

namespace pgrid {

/// Address of a peer. In the simulator this is a dense index into the community; in
/// the net layer it maps to a transport endpoint. The paper's ADDR set.
using PeerId = uint32_t;

/// Sentinel for "no peer".
inline constexpr PeerId kInvalidPeer = std::numeric_limits<PeerId>::max();

/// Identifier of a stored data item.
using ItemId = uint64_t;

}  // namespace pgrid
