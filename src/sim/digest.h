// FNV-1a digest machinery shared by the deterministic-simulation harness.
//
// The scenario runner (sim/scenario.h) fingerprints final grid states to assert
// byte-identical replay, and the repair subsystem (repair/repair.h) compares
// per-leaf index summaries during buddy anti-entropy. Both fold state through
// the same primitives so "two replicas agree" and "two runs agree" mean the
// same thing: equal FNV-1a digests over a canonical byte stream.

#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

#include "core/grid.h"
#include "storage/leaf_index.h"
#include "util/rng.h"

namespace pgrid {
namespace sim {

/// FNV-1a over the byte stream fed to it.
class Digest {
 public:
  void Bytes(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  uint64_t value() const { return hash_; }
  std::string Hex() const {
    char buf[20];
    snprintf(buf, sizeof(buf), "%016" PRIx64, hash_);
    return std::string(buf);
  }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// Order-independent digest of one entry set: the sum of per-entry digests
/// (LeafIndex iteration order is unspecified, so the fold must commute). Two
/// replicas hold the same entries at the same versions iff their digests match;
/// this is the summary buddy anti-entropy exchanges before deciding whether a
/// reconciliation pass is needed.
///
/// Each per-entry FNV value is passed through Mix64 before summing. Raw FNV is
/// too linear for a commutative fold: the trailing version field enters as
/// (h ^ version) * p^8, so bumping the versions of two entries shifts their
/// digests by +/-delta amounts that cancel across the sum with probability
/// ~1/8 -- two visibly diverged replicas then compare "equal" and anti-entropy
/// never reconciles them. The finalizer makes such cancellation 2^-64.
inline uint64_t IndexDigest(const LeafIndex& index) {
  uint64_t sum = index.size() * 0x9e3779b97f4a7c15ull;
  index.ForEach([&sum](const IndexEntry& e) {
    Digest d;
    d.U64(e.holder);
    d.U64(e.item_id);
    d.Str(e.key.ToString());
    d.U64(e.version);
    sum += Mix64(d.value());
  });
  return sum;
}

/// Digest of the full structural state of a grid: paths, per-level references,
/// buddies, leaf indexes, parked foreign entries. Deterministic runs produce
/// equal grids iff they produce equal digests (modulo hash collisions).
inline uint64_t GridStateDigest(const Grid& grid) {
  Digest d;
  d.U64(grid.size());
  for (const PeerState& p : grid) {
    d.Str(p.path().ToString());
    for (size_t level = 1; level <= p.depth(); ++level) {
      const auto refs = p.RefsAt(level);
      d.U64(refs.size());
      for (PeerId r : refs) d.U64(r);
    }
    d.U64(p.buddies().size());
    for (PeerId b : p.buddies()) d.U64(b);
    d.U64(p.index().size());
    d.U64(IndexDigest(p.index()));
    d.U64(p.foreign_entries().size());
  }
  return d.value();
}

}  // namespace sim
}  // namespace pgrid
