// Peer availability models (the paper's online : P -> [0,1]).
//
// The paper assumes each peer is online with probability p (0.3 in the experiments).
// Two interpretations are supported:
//  - kSnapshot:   availability is sampled once per trial ("30% of the peers are
//                 online"); Resample() starts a new trial.
//  - kPerContact: every contact attempt flips an independent coin, modelling rapid
//                 churn relative to an operation.
// kAlwaysOn disables failures (used when building grids and in correctness tests).
// Individual peers can be pinned online/offline for failure-injection tests.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.h"
#include "util/rng.h"

namespace pgrid {

enum class OnlineMode {
  kAlwaysOn,
  kSnapshot,
  kPerContact,
};

/// Decides whether a peer can be reached at a given moment.
class OnlineModel {
 public:
  /// Creates a model over `num_peers` peers with uniform online probability `p`.
  /// For kSnapshot, an initial snapshot is drawn immediately from `rng`.
  OnlineModel(OnlineMode mode, size_t num_peers, double p, Rng* rng);

  /// Creates an always-on model (probability 1).
  static OnlineModel AlwaysOn(size_t num_peers);

  OnlineMode mode() const { return mode_; }
  size_t num_peers() const { return probability_.size(); }

  /// True iff `peer` is reachable for this contact attempt. For kPerContact the
  /// outcome is freshly randomized per call using `rng`.
  bool IsOnline(PeerId peer, Rng* rng) const;

  /// Draws a new availability snapshot (kSnapshot mode only; no-op otherwise).
  void Resample(Rng* rng);

  /// Gradual churn: each peer independently re-draws its availability with
  /// probability `fraction` (kSnapshot mode only). fraction = 1 is a full Resample;
  /// 0 is a no-op. Models the passage of a time interval during which only part of
  /// the population cycles on/off.
  void PartialResample(Rng* rng, double fraction);

  /// Overrides one peer's state regardless of mode (failure injection). Pass
  /// std::nullopt to remove the override.
  void Pin(PeerId peer, std::optional<bool> online);

  /// Sets one peer's online probability (heterogeneous communities).
  void SetProbability(PeerId peer, double p);

  /// Extends the model with one new peer of probability `p` (dynamic membership).
  /// In kSnapshot mode its initial availability is drawn from `rng`.
  void AddPeer(double p, Rng* rng);

  /// Number of peers online in the current snapshot (kSnapshot/kAlwaysOn modes).
  size_t CountOnlineInSnapshot() const;

 private:
  OnlineMode mode_;
  std::vector<double> probability_;
  std::vector<uint8_t> snapshot_;         // valid in kSnapshot mode
  std::vector<int8_t> pinned_;            // -1 = no override, 0 = offline, 1 = online
};

}  // namespace pgrid
