// Seeded scenario fuzzing with automatic shrinking.
//
// The fuzzer turns a 64-bit seed into a random but fully determined Scenario
// (sim/scenario.h): community parameters plus an interleaving of exchanges,
// inserts, updates, churn rounds, and transport faults, punctuated by invariant
// barriers. Running many seeds is the deterministic-simulation-testing loop: any
// seed that produces an invariant violation is reproducible forever, and the
// shrinker reduces its scenario to a minimal failing step list (first a binary
// search for the shortest failing prefix, then greedy segment deletion down to
// single steps) that SaveScenario writes as a replayable repro file for
// `pgrid replay`.

#pragma once

#include <cstdint>
#include <string>

#include "sim/scenario.h"

namespace pgrid {
namespace sim {

/// Bounds on generated scenarios, and how many seeds one Fuzz() call sweeps.
struct FuzzOptions {
  uint64_t base_seed = 1;   ///< seeds base_seed .. base_seed + num_seeds - 1
  size_t num_seeds = 50;
  size_t min_steps = 10;    ///< generated steps after the warm-up exchange
  size_t max_steps = 40;
  size_t min_peers = 8;
  size_t max_peers = 48;
  /// Append a deterministic heal-and-converge tail to every generated scenario:
  /// a full transport heal, a mixing-exchange window, repair ticks, and a
  /// *strict* barrier demanding repair convergence among the survivors. This is
  /// the self-healing sweep (tools/check_repair.sh): whatever mess the random
  /// steps made, the repair protocol must restore a routable, replica-agreeing
  /// grid. Forces online_prob = 1 so "converged" is not masked by sampling.
  bool heal_tail = false;
  /// Draw a builder thread count (1, 2, 4, or 8) per scenario and route its
  /// exchange steps through ParallelGridBuilder::RunMeetings (see
  /// ScenarioConfig::builder_threads). Every clean multi-threaded run is then
  /// re-executed at builder_threads = 1 and the two digests must match --
  /// a mismatch counts as a failure (FuzzOutcome::digest_mismatches). The
  /// thread count is drawn after every other generator draw, so turning the
  /// sweep on does not perturb the step list of any seed.
  bool vary_builder_threads = false;
  /// Crash-restart sweep: the generator's weight table gains kKill / kRestart
  /// steps (peers crash with durable state and later recover from snapshot +
  /// WAL, see StepKind::kKill), and the heal tail restarts every still-killed
  /// peer before its strict barrier -- so each seed asserts that a grid churned
  /// through durable crashes converges back to a routable, replica-agreeing
  /// state. Implies heal_tail semantics for the tail (forces online_prob = 1).
  /// Changes the generator's draw sequence, so crash-sweep seeds are a
  /// different corpus from plain seeds.
  bool crash_sweep = false;
  /// Macro-fault sweep: the generator's weight table gains the grid-scale
  /// events of docs/robustness.md -- kPartition / kCrashWave / kFlashCrowd /
  /// kSlowNode / kMassJoin -- and the heal tail first heals any live partition
  /// (running anti-entropy to convergence, which fails the seed if replica
  /// agreement cannot be restored) and clears every gray-failure mark before
  /// the restart-all / mixing / repair / strict-barrier sequence. Each seed
  /// then asserts that a grid dragged through partitions, correlated crash
  /// waves, flash crowds, and slow nodes degrades gracefully and converges
  /// back. Implies heal_tail semantics (forces online_prob = 1). Changes the
  /// generator's draw sequence, so macro-sweep seeds are their own corpus.
  /// Mutually exclusive with crash_sweep (crash_sweep wins if both are set).
  bool macro_sweep = false;
  /// Stop sweeping at the first failing seed (the shrunk repro is in the
  /// outcome either way).
  bool stop_on_failure = true;
};

/// Result of one Fuzz() sweep.
struct FuzzOutcome {
  size_t seeds_run = 0;
  size_t failures = 0;

  /// Of `failures`, how many were thread-sweep digest mismatches (a
  /// multi-threaded run disagreeing with its builder_threads = 1 re-execution)
  /// rather than invariant violations. Only nonzero with
  /// FuzzOptions::vary_builder_threads.
  size_t digest_mismatches = 0;

  /// Set iff failures > 0: the first failing seed, its shrunk scenario, and the
  /// failure that scenario still reproduces. Digest mismatches are recorded
  /// unshrunk (the shrinker's predicate is invariant failure).
  uint64_t failing_seed = 0;
  Scenario minimal;
  ScenarioResult failure;
};

class ScenarioFuzzer {
 public:
  /// Deterministically derives a scenario from `seed` within `options`' bounds.
  /// The same (seed, bounds) always yields the same scenario, byte for byte.
  static Scenario Generate(uint64_t seed, const FuzzOptions& options = {});

  /// Shrinks a failing scenario to a minimal step list that still fails.
  /// Requires Run(failing).failed; returns `failing` unchanged otherwise.
  static Scenario Shrink(const Scenario& failing);

  /// Sweeps seeds: generate, run, and on failure shrink. Pure function of
  /// `options`.
  static FuzzOutcome Fuzz(const FuzzOptions& options);
};

/// Runs `scenario` and returns its result (convenience wrapper constructing a
/// fresh ScenarioRunner).
ScenarioResult RunScenario(const Scenario& scenario);

}  // namespace sim
}  // namespace pgrid
