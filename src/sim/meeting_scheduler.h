// Random pairwise meeting generation (Sec. 3: "whenever peers meet ...").
//
// The construction algorithm is driven by peers meeting randomly. The scheduler
// abstracts *how* they meet so experiments can swap patterns: uniform random pairs
// (the paper's model) or locality-biased pairs (an extension where peers preferentially
// re-meet recent contacts, approximating meetings that arise from other operations).

#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/types.h"
#include "util/rng.h"

namespace pgrid {

/// A pair of distinct peers chosen to run the exchange algorithm.
struct Meeting {
  PeerId a;
  PeerId b;
};

/// Generates the sequence of pairwise meetings that drives grid construction.
class MeetingScheduler {
 public:
  enum class Pattern {
    kUniform,        ///< both peers uniform over the community (paper model)
    kRecencyBiased,  ///< with probability `bias`, one side is drawn from recent peers
  };

  /// Creates a scheduler over a community of `num_peers` (>= 2).
  explicit MeetingScheduler(size_t num_peers, Pattern pattern = Pattern::kUniform,
                            double bias = 0.5, size_t recency_window = 64);

  /// Draws the next meeting.
  Meeting Next(Rng* rng);

  /// Draws `count` meetings exactly as `count` repeated Next() calls would,
  /// appending them to `out`. Parallel drivers consume the meeting stream in
  /// deterministic order through this batch API before fanning execution out, so
  /// the schedule is a function of the seed alone, never of the thread count.
  void NextBatch(Rng* rng, size_t count, std::vector<Meeting>* out);

  size_t num_peers() const { return num_peers_; }

  /// Grows (or shrinks) the peer id range meetings are drawn from (dynamic
  /// membership). Requires n >= 2.
  void SetNumPeers(size_t n);

 private:
  PeerId DrawPeer(Rng* rng);

  size_t num_peers_;
  Pattern pattern_;
  double bias_;
  size_t recency_window_;
  std::deque<PeerId> recent_;
};

}  // namespace pgrid
