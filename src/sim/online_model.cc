#include "sim/online_model.h"

#include "util/macros.h"

namespace pgrid {

OnlineModel::OnlineModel(OnlineMode mode, size_t num_peers, double p, Rng* rng)
    : mode_(mode),
      probability_(num_peers, p),
      snapshot_(num_peers, 1),
      pinned_(num_peers, -1) {
  PGRID_CHECK(p >= 0.0 && p <= 1.0);
  if (mode_ == OnlineMode::kSnapshot) {
    PGRID_CHECK(rng != nullptr);
    Resample(rng);
  }
}

OnlineModel OnlineModel::AlwaysOn(size_t num_peers) {
  return OnlineModel(OnlineMode::kAlwaysOn, num_peers, 1.0, nullptr);
}

bool OnlineModel::IsOnline(PeerId peer, Rng* rng) const {
  PGRID_CHECK_LT(peer, probability_.size());
  if (pinned_[peer] >= 0) return pinned_[peer] != 0;
  switch (mode_) {
    case OnlineMode::kAlwaysOn:
      return true;
    case OnlineMode::kSnapshot:
      return snapshot_[peer] != 0;
    case OnlineMode::kPerContact:
      PGRID_CHECK(rng != nullptr);
      return rng->Bernoulli(probability_[peer]);
  }
  return true;
}

void OnlineModel::Resample(Rng* rng) {
  if (mode_ != OnlineMode::kSnapshot) return;
  PGRID_CHECK(rng != nullptr);
  for (size_t i = 0; i < snapshot_.size(); ++i) {
    snapshot_[i] = rng->Bernoulli(probability_[i]) ? 1 : 0;
  }
}

void OnlineModel::PartialResample(Rng* rng, double fraction) {
  if (mode_ != OnlineMode::kSnapshot) return;
  PGRID_CHECK(rng != nullptr);
  PGRID_CHECK(fraction >= 0.0 && fraction <= 1.0);
  for (size_t i = 0; i < snapshot_.size(); ++i) {
    if (rng->Bernoulli(fraction)) {
      snapshot_[i] = rng->Bernoulli(probability_[i]) ? 1 : 0;
    }
  }
}

void OnlineModel::Pin(PeerId peer, std::optional<bool> online) {
  PGRID_CHECK_LT(peer, pinned_.size());
  pinned_[peer] = online.has_value() ? (*online ? 1 : 0) : -1;
}

void OnlineModel::SetProbability(PeerId peer, double p) {
  PGRID_CHECK_LT(peer, probability_.size());
  PGRID_CHECK(p >= 0.0 && p <= 1.0);
  probability_[peer] = p;
}

void OnlineModel::AddPeer(double p, Rng* rng) {
  PGRID_CHECK(p >= 0.0 && p <= 1.0);
  probability_.push_back(p);
  pinned_.push_back(-1);
  if (mode_ == OnlineMode::kSnapshot) {
    PGRID_CHECK(rng != nullptr);
    snapshot_.push_back(rng->Bernoulli(p) ? 1 : 0);
  } else {
    snapshot_.push_back(1);
  }
}

size_t OnlineModel::CountOnlineInSnapshot() const {
  size_t n = 0;
  for (size_t i = 0; i < snapshot_.size(); ++i) {
    if (pinned_[i] >= 0) {
      n += pinned_[i] != 0;
    } else if (mode_ == OnlineMode::kAlwaysOn) {
      ++n;
    } else {
      n += snapshot_[i] != 0;
    }
  }
  return n;
}

}  // namespace pgrid
