#include "snapshot/snapshot.h"

#include <algorithm>
#include <fstream>
#include <tuple>

#include "net/wire.h"

namespace pgrid {

namespace {

constexpr char kMagic[4] = {'P', 'G', 'R', 'D'};
constexpr uint32_t kFormatVersion = 1;

uint64_t Fnv1a(std::string_view data) {
  uint64_t h = 1469598103934665603ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void WriteEntry(net::ByteWriter* w, const IndexEntry& e) {
  w->WriteU32(e.holder);
  w->WriteU64(e.item_id);
  w->WriteKeyPath(e.key);
  w->WriteU64(e.version);
}

Result<IndexEntry> ReadEntry(net::ByteReader* r) {
  IndexEntry e;
  PGRID_ASSIGN_OR_RETURN(uint32_t holder, r->ReadU32());
  e.holder = holder;
  PGRID_ASSIGN_OR_RETURN(e.item_id, r->ReadU64());
  PGRID_ASSIGN_OR_RETURN(e.key, r->ReadKeyPath());
  PGRID_ASSIGN_OR_RETURN(e.version, r->ReadU64());
  return e;
}

}  // namespace

Status SaveGrid(const Grid& grid, const ExchangeConfig& config,
                const std::string& path) {
  net::ByteWriter w;
  w.WriteU32(kFormatVersion);
  w.WriteU32(static_cast<uint32_t>(config.maxl));
  w.WriteU32(static_cast<uint32_t>(config.refmax));
  w.WriteU32(static_cast<uint32_t>(config.recmax));
  w.WriteU32(static_cast<uint32_t>(config.recursion_fanout));
  w.WriteU8(config.manage_data ? 1 : 0);
  w.WriteU8(config.prune_unreachable_refs ? 1 : 0);
  w.WriteU64(grid.size());
  for (const PeerState& p : grid) {
    w.WriteKeyPath(p.path());
    for (size_t level = 1; level <= p.depth(); ++level) {
      const auto& refs = p.RefsAt(level);
      w.WriteU32(static_cast<uint32_t>(refs.size()));
      for (PeerId r : refs) w.WriteU32(r);
    }
    w.WriteU32(static_cast<uint32_t>(p.buddies().size()));
    for (PeerId b : p.buddies()) w.WriteU32(b);
    // All() iterates the index's hash map, whose order depends on insertion
    // history; sorting makes the snapshot canonical, so save -> load -> save
    // round-trips byte-identically.
    auto entries = p.index().All();
    std::sort(entries.begin(), entries.end(),
              [](const IndexEntry& a, const IndexEntry& b) {
                return std::tie(a.holder, a.item_id) <
                       std::tie(b.holder, b.item_id);
              });
    w.WriteU32(static_cast<uint32_t>(entries.size()));
    for (const IndexEntry& e : entries) WriteEntry(&w, e);
    w.WriteU32(static_cast<uint32_t>(p.foreign_entries().size()));
    for (const IndexEntry& e : p.foreign_entries()) WriteEntry(&w, e);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  const std::string& body = w.data();
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  const uint64_t checksum = Fnv1a(body);
  net::ByteWriter tail;
  tail.WriteU64(checksum);
  out.write(tail.data().data(), static_cast<std::streamsize>(tail.data().size()));
  out.close();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<LoadedGrid> LoadGrid(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (data.size() < sizeof(kMagic) + 8 ||
      std::string_view(data.data(), 4) != std::string_view(kMagic, 4)) {
    return Status::InvalidArgument(path + " is not a P-Grid snapshot");
  }
  const std::string_view body(data.data() + 4, data.size() - 4 - 8);
  {
    net::ByteReader tail(std::string_view(data.data() + data.size() - 8, 8));
    PGRID_ASSIGN_OR_RETURN(uint64_t checksum, tail.ReadU64());
    if (checksum != Fnv1a(body)) {
      return Status::InvalidArgument(path + " failed checksum validation");
    }
  }

  net::ByteReader r(body);
  PGRID_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  LoadedGrid out;
  PGRID_ASSIGN_OR_RETURN(uint32_t maxl, r.ReadU32());
  PGRID_ASSIGN_OR_RETURN(uint32_t refmax, r.ReadU32());
  PGRID_ASSIGN_OR_RETURN(uint32_t recmax, r.ReadU32());
  PGRID_ASSIGN_OR_RETURN(uint32_t fanout, r.ReadU32());
  PGRID_ASSIGN_OR_RETURN(uint8_t manage_data, r.ReadU8());
  PGRID_ASSIGN_OR_RETURN(uint8_t prune, r.ReadU8());
  out.config.maxl = maxl;
  out.config.refmax = refmax;
  out.config.recmax = recmax;
  out.config.recursion_fanout = fanout;
  out.config.manage_data = manage_data != 0;
  out.config.prune_unreachable_refs = prune != 0;
  PGRID_RETURN_IF_ERROR(out.config.Validate());

  PGRID_ASSIGN_OR_RETURN(uint64_t num_peers, r.ReadU64());
  if (num_peers > (uint64_t{1} << 32)) {
    return Status::InvalidArgument("implausible peer count");
  }
  out.grid = std::make_unique<Grid>(static_cast<size_t>(num_peers));
  for (uint64_t id = 0; id < num_peers; ++id) {
    PeerState& peer = out.grid->peer(static_cast<PeerId>(id));
    PGRID_ASSIGN_OR_RETURN(KeyPath peer_path, r.ReadKeyPath());
    if (peer_path.length() > out.config.maxl) {
      return Status::InvalidArgument("peer path exceeds maxl in snapshot");
    }
    for (size_t i = 0; i < peer_path.length(); ++i) {
      peer.AppendPathBit(peer_path.bit(i));
    }
    out.grid->NotePathGrowth(peer_path.length());
    for (size_t level = 1; level <= peer_path.length(); ++level) {
      PGRID_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
      if (count > num_peers) return Status::InvalidArgument("ref count too large");
      std::vector<PeerId> refs;
      refs.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        PGRID_ASSIGN_OR_RETURN(uint32_t ref, r.ReadU32());
        if (ref >= num_peers) return Status::InvalidArgument("ref id out of range");
        refs.push_back(ref);
      }
      peer.SetRefsAt(level, std::move(refs));
    }
    PGRID_ASSIGN_OR_RETURN(uint32_t num_buddies, r.ReadU32());
    if (num_buddies > num_peers) {
      return Status::InvalidArgument("buddy count too large");
    }
    for (uint32_t i = 0; i < num_buddies; ++i) {
      PGRID_ASSIGN_OR_RETURN(uint32_t buddy, r.ReadU32());
      if (buddy >= num_peers) return Status::InvalidArgument("buddy out of range");
      peer.AddBuddy(buddy);
    }
    PGRID_ASSIGN_OR_RETURN(uint32_t num_entries, r.ReadU32());
    if (num_entries > net::kMaxWireCollection) {
      return Status::InvalidArgument("entry count too large");
    }
    for (uint32_t i = 0; i < num_entries; ++i) {
      PGRID_ASSIGN_OR_RETURN(IndexEntry e, ReadEntry(&r));
      peer.index().InsertOrRefresh(e);
    }
    PGRID_ASSIGN_OR_RETURN(uint32_t num_foreign, r.ReadU32());
    if (num_foreign > net::kMaxWireCollection) {
      return Status::InvalidArgument("foreign count too large");
    }
    for (uint32_t i = 0; i < num_foreign; ++i) {
      PGRID_ASSIGN_OR_RETURN(IndexEntry e, ReadEntry(&r));
      peer.foreign_entries().push_back(std::move(e));
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot payload");
  }
  return out;
}

}  // namespace pgrid
