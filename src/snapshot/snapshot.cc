#include "snapshot/snapshot.h"

#include <fstream>

#include "net/wire.h"
#include "storage/peer_codec.h"

namespace pgrid {

namespace {

constexpr char kMagic[4] = {'P', 'G', 'R', 'D'};
constexpr uint32_t kFormatVersion = 1;

uint64_t Fnv1a(std::string_view data) {
  uint64_t h = 1469598103934665603ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Status SaveGrid(const Grid& grid, const ExchangeConfig& config,
                const std::string& path) {
  net::ByteWriter w;
  w.WriteU32(kFormatVersion);
  w.WriteU32(static_cast<uint32_t>(config.maxl));
  w.WriteU32(static_cast<uint32_t>(config.refmax));
  w.WriteU32(static_cast<uint32_t>(config.recmax));
  w.WriteU32(static_cast<uint32_t>(config.recursion_fanout));
  w.WriteU8(config.manage_data ? 1 : 0);
  w.WriteU8(config.prune_unreachable_refs ? 1 : 0);
  w.WriteU64(grid.size());
  // Per-peer blocks share the canonical codec with the durable per-peer
  // snapshots (storage/peer_codec.h): sorted index entries, so save -> load ->
  // save round-trips byte-identically.
  for (const PeerState& p : grid) storage::WritePeerCore(&w, p);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic));
  const std::string& body = w.data();
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  const uint64_t checksum = Fnv1a(body);
  net::ByteWriter tail;
  tail.WriteU64(checksum);
  out.write(tail.data().data(), static_cast<std::streamsize>(tail.data().size()));
  out.close();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<LoadedGrid> LoadGrid(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (data.size() < sizeof(kMagic) + 8 ||
      std::string_view(data.data(), 4) != std::string_view(kMagic, 4)) {
    return Status::InvalidArgument(path + " is not a P-Grid snapshot");
  }
  const std::string_view body(data.data() + 4, data.size() - 4 - 8);
  {
    net::ByteReader tail(std::string_view(data.data() + data.size() - 8, 8));
    PGRID_ASSIGN_OR_RETURN(uint64_t checksum, tail.ReadU64());
    if (checksum != Fnv1a(body)) {
      return Status::InvalidArgument(path + " failed checksum validation");
    }
  }

  net::ByteReader r(body);
  PGRID_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  LoadedGrid out;
  PGRID_ASSIGN_OR_RETURN(uint32_t maxl, r.ReadU32());
  PGRID_ASSIGN_OR_RETURN(uint32_t refmax, r.ReadU32());
  PGRID_ASSIGN_OR_RETURN(uint32_t recmax, r.ReadU32());
  PGRID_ASSIGN_OR_RETURN(uint32_t fanout, r.ReadU32());
  PGRID_ASSIGN_OR_RETURN(uint8_t manage_data, r.ReadU8());
  PGRID_ASSIGN_OR_RETURN(uint8_t prune, r.ReadU8());
  out.config.maxl = maxl;
  out.config.refmax = refmax;
  out.config.recmax = recmax;
  out.config.recursion_fanout = fanout;
  out.config.manage_data = manage_data != 0;
  out.config.prune_unreachable_refs = prune != 0;
  PGRID_RETURN_IF_ERROR(out.config.Validate());

  PGRID_ASSIGN_OR_RETURN(uint64_t num_peers, r.ReadU64());
  if (num_peers > (uint64_t{1} << 32)) {
    return Status::InvalidArgument("implausible peer count");
  }
  out.grid = std::make_unique<Grid>(static_cast<size_t>(num_peers));
  storage::PeerCoreBounds bounds;
  bounds.maxl = out.config.maxl;
  bounds.peer_id_bound = num_peers;
  for (uint64_t id = 0; id < num_peers; ++id) {
    PeerState& peer = out.grid->peer(static_cast<PeerId>(id));
    size_t path_bits = 0;
    PGRID_RETURN_IF_ERROR(storage::ReadPeerCore(&r, bounds, &peer, &path_bits));
    out.grid->NotePathGrowth(path_bits);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot payload");
  }
  return out;
}

}  // namespace pgrid
