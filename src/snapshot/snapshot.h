// Grid persistence: save a constructed P-Grid to disk and load it back.
//
// Building the 20,000-peer evaluation grid takes ~1.5 s; real deployments and long
// experiment campaigns want to construct once and reuse. The snapshot captures the
// complete access structure (paths, reference tables, buddies) and the data plane
// (leaf indexes, foreign buffers) in a versioned, checksummed binary format built on
// the same primitives as the network wire format.
//
// Format: "PGRD" magic, u32 format version, ExchangeConfig summary, peer count,
// per-peer state, and a trailing FNV-1a checksum of everything before it. Loading
// validates magic, version, checksum, and structural bounds before constructing the
// Grid.

#pragma once

#include <memory>
#include <string>

#include "core/config.h"
#include "core/grid.h"
#include "util/result.h"

namespace pgrid {

/// Serializes `grid` (and the construction parameters that shaped it) to `path`.
/// Overwrites any existing file.
Status SaveGrid(const Grid& grid, const ExchangeConfig& config,
                const std::string& path);

/// A loaded grid together with the configuration it was built with.
struct LoadedGrid {
  std::unique_ptr<Grid> grid;
  ExchangeConfig config;
};

/// Loads a snapshot written by SaveGrid. InvalidArgument on malformed or corrupted
/// files; NotFound if the file cannot be opened.
Result<LoadedGrid> LoadGrid(const std::string& path);

}  // namespace pgrid
