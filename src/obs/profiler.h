// Low-overhead per-thread phase profiler for the fork/join engines.
//
// The parallel builder and query driver split work into waves/chunks executed
// on a fixed set of lanes (ThreadPool lanes: caller + workers). Each lane owns
// a private event buffer; Record() is a bounds check plus a push_back with no
// synchronization, so profiling the exchange hot loop costs nanoseconds per
// item. Buffers are epoch-scoped: the owner drains them at a barrier (where the
// pool's join gives the happens-before edge) and aggregates into whatever
// report it is building -- per-wave busy/wait accounting, collapsed stacks, a
// serial-fraction summary.
//
// Contract: Record(lane, ...) has exactly one writer per lane at a time, and
// DrainLane/dropped are only called while no lane is recording (i.e. between
// ParallelFor calls). That is the natural structure of fork/join phases and is
// what keeps the hot path free of atomics; the profiler does not try to detect
// violations.
//
// A null profiler pointer means "profiling off" at every call site, mirroring
// how TraceRecorder is threaded through the engines.

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pgrid {
namespace obs {

class PhaseProfiler {
 public:
  /// One recorded phase execution on one lane. `tag` is caller-defined context
  /// (the builder stores the wave ordinal, the query driver the chunk index).
  struct Event {
    int phase = 0;
    uint64_t start_ns = 0;
    uint64_t dur_ns = 0;
    uint64_t tag = 0;
  };

  /// `lanes` execution lanes (ThreadPool::threads()), each with room for
  /// `capacity_per_lane` events per epoch; overflow is counted, not stored.
  explicit PhaseProfiler(size_t lanes, size_t capacity_per_lane = 1 << 14);

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  size_t lanes() const { return lanes_.size(); }

  /// Nanoseconds since profiler construction (steady clock).
  uint64_t NowNs() const;

  /// Interns a phase name and returns its id. Call during setup, not while
  /// lanes are recording.
  int RegisterPhase(std::string name);

  const std::vector<std::string>& phase_names() const { return phase_names_; }

  /// Appends an event to `lane`'s buffer. Single writer per lane; no locking.
  void Record(size_t lane, int phase, uint64_t start_ns, uint64_t dur_ns,
              uint64_t tag = 0) {
    Lane& l = *lanes_[lane];
    if (l.buf.size() >= capacity_) {
      ++l.dropped;
      return;
    }
    l.buf.push_back(Event{phase, start_ns, dur_ns, tag});
  }

  /// Removes and returns `lane`'s buffered events (ends the lane's epoch).
  /// Only call between fork/join phases.
  std::vector<Event> DrainLane(size_t lane);

  /// Drains every lane; result is indexed by lane.
  std::vector<std::vector<Event>> DrainAll();

  /// Events discarded across all lanes since construction. Call at barriers.
  uint64_t dropped() const;

 private:
  struct Lane {
    std::vector<Event> buf;
    uint64_t dropped = 0;
  };

  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::string> phase_names_;
};

/// Collapsed-stack accumulator ("a;b;c 123" lines, the input format of every
/// flamegraph renderer). Values accumulate per stack; output is sorted by stack
/// so reports are deterministic given deterministic inputs.
class CollapsedStacks {
 public:
  void Add(const std::string& stack, uint64_t value) { stacks_[stack] += value; }

  std::string ToString() const;

 private:
  std::map<std::string, uint64_t> stacks_;
};

}  // namespace obs
}  // namespace pgrid
