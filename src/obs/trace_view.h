// Offline span-tree reconstruction: turn a flat TraceEvent buffer back into the
// per-trace tree the spans describe, render it for humans, and extract the
// critical path of one trace.
//
// Works on events from a single recorder or on merged buffers from several
// salted recorders, as long as all spans of one trace share a clock epoch
// (in-process clusters share one recorder, so this holds there by construction).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace pgrid {
namespace obs {

/// One node of a reconstructed span tree.
struct SpanNode {
  TraceEvent span;                    ///< the begin/end record of this span
  std::vector<TraceEvent> events;     ///< point events attached to this span
  std::vector<SpanNode> children;     ///< child spans ordered by start time
};

/// Trace ids present in `events`, in first-seen order.
std::vector<uint64_t> TraceIds(const std::vector<TraceEvent>& events);

/// Rebuilds the span tree of `trace_id`. Spans whose parent was dropped (or
/// recorded elsewhere) are attached at the root level, so partial traces still
/// render. Returns a forest: normally one root, more if the root was dropped.
std::vector<SpanNode> BuildSpanTree(const std::vector<TraceEvent>& events,
                                    uint64_t trace_id);

/// Human-readable tree: one line per span with duration and detail, point
/// events indented underneath.
std::string RenderSpanTree(const std::vector<SpanNode>& roots);

/// Spans on the critical path of the forest: from the latest-finishing root,
/// repeatedly descend into the child that finishes last. This is the chain of
/// spans that bounded the operation's wall time.
std::vector<TraceEvent> CriticalPath(const std::vector<SpanNode>& roots);

/// One line per critical-path hop: name, duration, self time (duration minus
/// the part covered by the next hop).
std::string RenderCriticalPath(const std::vector<TraceEvent>& path);

}  // namespace obs
}  // namespace pgrid
