// Exporters: turn registry snapshots and trace buffers into the two formats every
// external system speaks -- the Prometheus text exposition format and JSON.
//
// Metric names inside the registry are dotted ("search.messages"); the Prometheus
// exporter maps them to the conventional form with a `pgrid_` prefix and
// underscores ("pgrid_search_messages"). The JSON exporter keeps the dotted names
// verbatim. Both outputs are deterministic (instruments sorted by name) so golden
// tests can compare whole documents.

#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pgrid {
namespace obs {

/// Prometheus text exposition format (one # TYPE line per instrument; histograms
/// expand to cumulative _bucket{le=...} series plus _sum and _count).
std::string ToPrometheusText(const RegistrySnapshot& snapshot);

/// Pretty-printed JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, min, max, p50, p95, p99, bounds, buckets}}}.
std::string ToJson(const RegistrySnapshot& snapshot);

/// JSON array of trace event objects, in recording order.
std::string TraceToJson(const std::vector<TraceEvent>& events);

/// chrome://tracing / Perfetto JSON ({"traceEvents": [...]}): spans as complete
/// "X" events (ts/dur in microseconds), point events as instants. Load the file
/// via chrome://tracing or ui.perfetto.dev.
std::string TraceToChromeJson(const std::vector<TraceEvent>& events);

/// Maps a dotted registry name to its Prometheus name: "search.messages" ->
/// "pgrid_search_messages" (any character outside [a-zA-Z0-9_] becomes '_').
std::string PrometheusName(const std::string& name);

/// Escapes a string for embedding in a JSON document (adds no quotes).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace pgrid
