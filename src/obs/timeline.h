// Metric timelines: periodic snapshots of a MetricsRegistry (or hand-fed
// series) keyed by a caller-supplied clock, so benches and the scenario runner
// can show *when* queries started failing or references got repaired instead of
// only end-of-run totals.
//
// The time axis is whatever the caller passes: the scenario runner samples on
// its virtual clock (deterministic, replayable), benches sample on round or
// wall-clock tick numbers. Sampling only reads -- attaching a timeline to a
// deterministic run cannot change its digest.
//
// The recorder is bounded like TraceRecorder: past `max_points` further points
// are counted in dropped() instead of growing memory.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace pgrid {
namespace obs {

class TimelineRecorder {
 public:
  struct Point {
    uint64_t t = 0;
    double value = 0;
  };

  explicit TimelineRecorder(size_t max_points = 1 << 20);

  TimelineRecorder(const TimelineRecorder&) = delete;
  TimelineRecorder& operator=(const TimelineRecorder&) = delete;

  /// Appends (t, value) to `series`, creating it on first use.
  void AddPoint(std::string_view series, uint64_t t, double value);

  /// Samples every instrument of `registry` at time `t`: one point per counter
  /// and gauge, plus <name>.count / .p50 / .p95 / .p99 per histogram.
  void SampleRegistry(uint64_t t, const MetricsRegistry& registry);

  /// {"series": {name: [[t, value], ...], ...}}, series sorted by name. Values
  /// that are whole numbers print as integers, so counter series are
  /// byte-deterministic given deterministic inputs.
  std::string ToJson() const;

  /// Copy of all series, sorted by name.
  std::map<std::string, std::vector<Point>> series() const;

  size_t num_points() const;

  /// Points discarded because the recorder was full.
  uint64_t dropped() const;

  void Clear();

 private:
  const size_t max_points_;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<Point>> series_;
  size_t num_points_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace obs
}  // namespace pgrid
