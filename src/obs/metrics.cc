#include "obs/metrics.h"

#include <algorithm>

#include "util/macros.h"

namespace pgrid {
namespace obs {

namespace {

/// Atomic min/max update via CAS (fetch_min/fetch_max arrive only in C++26).
void AtomicMin(std::atomic<uint64_t>* a, uint64_t v) {
  uint64_t cur = a->load(std::memory_order_relaxed);
  while (v < cur && !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* a, uint64_t v) {
  uint64_t cur = a->load(std::memory_order_relaxed);
  while (v > cur && !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  PGRID_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) PGRID_CHECK_LT(bounds_[i - 1], bounds_[i]);
}

void Histogram::Record(uint64_t sample) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());  // == size: overflow
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  AtomicMin(&min_, sample);
  AtomicMax(&max_, sample);
}

uint64_t Histogram::min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

uint64_t Histogram::Quantile(double q) const {
  const std::vector<uint64_t> counts = bucket_counts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; q=0 maps to the first sample.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      const uint64_t bound = i < bounds_.size() ? bounds_[i] : max();
      return std::clamp(bound, min(), max());
    }
  }
  return max();
}

void Histogram::MergeFrom(const Histogram& other) {
  PGRID_CHECK(bounds_ == other.bounds_);
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  const uint64_t n = other.count_.load(std::memory_order_relaxed);
  if (n == 0) return;
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  AtomicMin(&min_, other.min_.load(std::memory_order_relaxed));
  AtomicMax(&max_, other.max_.load(std::memory_order_relaxed));
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<uint64_t> LatencyBoundsUs() {
  return {1,    2,    5,     10,    20,    50,     100,    200,    500,
          1000, 2000, 5000,  10000, 20000, 50000,  100000, 200000, 500000,
          1000000, 2000000, 5000000, 10000000};
}

std::vector<uint64_t> CountBounds() {
  return {0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256, 512, 1024};
}

std::vector<uint64_t> SizeBoundsBytes() {
  std::vector<uint64_t> out;
  for (uint64_t b = 64; b <= (64u << 20); b *= 4) out.push_back(b);
  return out;
}

std::vector<uint64_t> BackoffBoundsMs() {
  return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000, 60000};
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.contains(name) || histograms_.contains(name)) return nullptr;
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.contains(name) || histograms_.contains(name)) return nullptr;
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.contains(name) || gauges_.contains(name)) return nullptr;
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  PGRID_CHECK(this != &other);
  std::lock_guard<std::mutex> other_lock(other.mu_);
  for (const auto& [name, c] : other.counters_) {
    Counter* mine = GetCounter(name);
    PGRID_CHECK(mine != nullptr);
    if (c->value() != 0) mine->Increment(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    Gauge* mine = GetGauge(name);
    PGRID_CHECK(mine != nullptr);
    if (g->value() != 0) mine->Add(g->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    Histogram* mine = GetHistogram(name, h->bounds());
    PGRID_CHECK(mine != nullptr);
    mine->MergeFrom(*h);
  }
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.buckets = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    hs.p50 = h->Quantile(0.50);
    hs.p95 = h->Quantile(0.95);
    hs.p99 = h->Quantile(0.99);
    out.histograms.push_back(std::move(hs));
  }
  return out;
}

}  // namespace obs
}  // namespace pgrid
