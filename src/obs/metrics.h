// Thread-safe metrics registry: the single measurement substrate of the system.
//
// Every quantity the paper reports (exchange counts, search messages, update
// fan-out) and every operational signal of a deployment (RPC latency, bytes on the
// wire, error counts) is recorded here. Three instrument kinds:
//
//   Counter    monotonic uint64, lock-free increments.
//   Gauge      signed point-in-time value (queue depths, entry counts).
//   Histogram  fixed upper-bound buckets over uint64 samples with an overflow
//              bucket, plus exact count/sum/min/max and quantile accessors.
//
// Instruments are created on first use (GetCounter et al.) and live as long as the
// registry; returned pointers are stable, so hot paths cache them once and then
// record without any lookup or lock. Snapshot() captures a consistent-enough view
// for the exporters (obs/export.h); per-instrument reads are individually atomic.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pgrid {
namespace obs {

/// Monotonic counter. All operations are lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative samples (latencies in microseconds,
/// sizes in bytes, hop counts, ...). A sample lands in the first bucket whose
/// upper bound is >= the sample; larger samples land in the overflow bucket.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<uint64_t> bounds);

  void Record(uint64_t sample);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded sample; 0 when empty.
  uint64_t min() const;
  uint64_t max() const;

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding the
  /// q-th sample, clamped to the observed [min, max] so single samples and
  /// overflow-only histograms report exact extremes. 0 when empty.
  uint64_t Quantile(double q) const;

  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// Per-bucket counts; the last element is the overflow bucket.
  std::vector<uint64_t> bucket_counts() const;

  /// Adds every sample of `other` into this histogram (bucket-wise, plus
  /// count/sum/min/max). Requires identical bounds. Sharded-accounting merge
  /// hook; intended to run at a barrier, not concurrently with Record on `other`.
  void MergeFrom(const Histogram& other);

 private:
  const std::vector<uint64_t> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1 (overflow last)
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Default bucket bounds for latency-like samples in microseconds (1us .. 10s).
std::vector<uint64_t> LatencyBoundsUs();

/// Default bucket bounds for small cardinalities (hops, fan-outs, depths).
std::vector<uint64_t> CountBounds();

/// Default bucket bounds for payload sizes in bytes (64 B .. 64 MiB).
std::vector<uint64_t> SizeBoundsBytes();

/// Default bucket bounds for retry backoff delays in milliseconds (1 ms .. 60 s).
std::vector<uint64_t> BackoffBoundsMs();

/// Point-in-time copy of one histogram, with quantiles precomputed.
struct HistogramSnapshot {
  std::string name;
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> buckets;  // bounds.size() + 1, overflow last
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

/// Point-in-time copy of a whole registry (input of the exporters).
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;  // sorted by name
  std::vector<std::pair<std::string, int64_t>> gauges;     // sorted by name
  std::vector<HistogramSnapshot> histograms;               // sorted by name
};

/// Named instruments, created on first use. Thread-safe; returned pointers stay
/// valid for the registry's lifetime. A name denotes exactly one instrument kind:
/// requesting an existing name as a different kind returns nullptr (callers treat
/// that as a programming error; see PGRID_CHECK at the call sites).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies on first creation only; later calls return the existing
  /// histogram regardless of the bounds passed.
  Histogram* GetHistogram(const std::string& name, std::vector<uint64_t> bounds);

  RegistrySnapshot Snapshot() const;

  /// Sharded-accounting merge hook: folds every instrument of `other` into this
  /// registry, creating missing instruments as needed. Counters and gauges add;
  /// histograms merge bucket-wise (their bounds must agree). Instruments are
  /// visited in name order, so merging the same shards always produces the same
  /// registry. A name that exists here as a different instrument kind is a
  /// programming error (PGRID_CHECK). Intended for per-thread shard registries
  /// folded at batch barriers; do not merge a registry into itself.
  void MergeFrom(const MetricsRegistry& other);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace pgrid
