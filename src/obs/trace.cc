#include "obs/trace.h"

#include <algorithm>

#include "obs/export.h"

namespace pgrid {
namespace obs {

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {}

uint64_t TraceRecorder::NowNs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

uint64_t TraceRecorder::BeginTrace(std::string_view name) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return id;  // id is still valid for Event/EndTrace; they will drop too
  }
  TraceEvent e;
  e.trace_id = id;
  e.name = std::string(name);
  e.ts_ns = now;
  open_.emplace_back(id, events_.size());
  events_.push_back(std::move(e));
  return id;
}

void TraceRecorder::EndTrace(uint64_t trace_id) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(open_.begin(), open_.end(),
                         [trace_id](const auto& p) { return p.first == trace_id; });
  if (it == open_.end()) return;
  TraceEvent& begin = events_[it->second];
  begin.dur_ns = now > begin.ts_ns ? now - begin.ts_ns : 0;
  open_.erase(it);
}

void TraceRecorder::Event(uint64_t trace_id, std::string_view name,
                          std::string_view detail, uint32_t depth) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  TraceEvent e;
  e.trace_id = trace_id;
  e.name = std::string(name);
  e.detail = std::string(detail);
  e.ts_ns = now;
  e.depth = depth;
  events_.push_back(std::move(e));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  open_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::ToJson() const { return TraceToJson(events()); }

}  // namespace obs
}  // namespace pgrid
