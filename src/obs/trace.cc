#include "obs/trace.h"

#include "obs/export.h"
#include "util/rng.h"

namespace pgrid {
namespace obs {

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {}

uint64_t TraceRecorder::NowNs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

void TraceRecorder::set_id_salt(uint64_t salt) {
  std::lock_guard<std::mutex> lock(mu_);
  id_salt_ = salt;
}

uint64_t TraceRecorder::NextId() {
  const uint64_t seq = next_id_++;
  if (id_salt_ == 0) return seq;
  const uint64_t id = Mix64(id_salt_ + seq);
  return id == 0 ? 1 : id;
}

uint64_t TraceRecorder::OpenSpan(uint64_t trace_id, uint64_t parent_span,
                                 uint32_t depth, std::string_view name,
                                 std::string_view detail, uint64_t now) {
  const uint64_t id = NextId();
  if (events_.size() >= capacity_) {
    ++dropped_;
    return id;  // id is still valid for Event/EndSpan; they will drop too
  }
  TraceEvent e;
  e.trace_id = trace_id == 0 ? id : trace_id;
  e.span_id = id;
  e.parent_span = parent_span;
  e.name = std::string(name);
  e.detail = std::string(detail);
  e.ts_ns = now;
  e.depth = depth;
  e.is_span = true;
  open_.emplace(id, events_.size());
  events_.push_back(std::move(e));
  return id;
}

uint64_t TraceRecorder::BeginTrace(std::string_view name, std::string_view detail) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  return OpenSpan(/*trace_id=*/0, /*parent_span=*/0, /*depth=*/0, name, detail, now);
}

uint64_t TraceRecorder::BeginSpan(const TraceContext& parent, std::string_view name,
                                  std::string_view detail) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  return OpenSpan(parent.trace_id, parent.parent_span, parent.depth + 1, name,
                  detail, now);
}

void TraceRecorder::EndSpan(uint64_t span_id) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(span_id);
  if (it == open_.end()) return;
  TraceEvent& begin = events_[it->second];
  begin.dur_ns = now > begin.ts_ns ? now - begin.ts_ns : 0;
  open_.erase(it);
}

void TraceRecorder::Event(uint64_t span_id, std::string_view name,
                          std::string_view detail, uint32_t depth) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  TraceEvent e;
  auto it = open_.find(span_id);
  if (it != open_.end()) {
    const TraceEvent& span = events_[it->second];
    e.trace_id = span.trace_id;
    e.parent_span = span_id;
    if (depth == 0) depth = span.depth;
  } else {
    e.trace_id = span_id;  // loose event; pre-span-tree behaviour
  }
  e.span_id = 0;
  e.name = std::string(name);
  e.detail = std::string(detail);
  e.ts_ns = now;
  e.depth = depth;
  events_.push_back(std::move(e));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  open_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::ToJson() const { return TraceToJson(events()); }

}  // namespace obs
}  // namespace pgrid
