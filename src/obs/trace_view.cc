#include "obs/trace_view.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace pgrid {
namespace obs {

std::vector<uint64_t> TraceIds(const std::vector<TraceEvent>& events) {
  std::vector<uint64_t> ids;
  std::unordered_set<uint64_t> seen;
  for (const TraceEvent& e : events) {
    if (e.trace_id != 0 && seen.insert(e.trace_id).second) ids.push_back(e.trace_id);
  }
  return ids;
}

std::vector<SpanNode> BuildSpanTree(const std::vector<TraceEvent>& events,
                                    uint64_t trace_id) {
  // Collect this trace's spans and index them by span id.
  std::vector<SpanNode> nodes;
  std::unordered_map<uint64_t, size_t> by_id;
  for (const TraceEvent& e : events) {
    if (e.trace_id != trace_id || !e.is_span) continue;
    by_id.emplace(e.span_id, nodes.size());
    nodes.push_back(SpanNode{e, {}, {}});
  }
  // Attach point events to their span (loose ones to the root span if present).
  for (const TraceEvent& e : events) {
    if (e.trace_id != trace_id || e.is_span) continue;
    auto it = by_id.find(e.parent_span);
    if (it == by_id.end()) it = by_id.find(trace_id);
    if (it != by_id.end()) nodes[it->second].events.push_back(e);
  }
  // Link children bottom-up. Children are moved into their parents in reverse
  // recording order so a parent is only moved after all its children are in
  // place (spans are recorded parent-first).
  std::vector<size_t> roots;
  for (size_t i = nodes.size(); i-- > 0;) {
    const uint64_t parent = nodes[i].span.parent_span;
    auto it = by_id.find(parent);
    // `it->second >= i` can only happen on merged buffers where a child was
    // recorded before its parent; treat it as a root rather than losing it.
    if (parent == 0 || it == by_id.end() || it->second >= i) {
      roots.push_back(i);
      continue;
    }
    nodes[it->second].children.push_back(std::move(nodes[i]));
  }
  std::vector<SpanNode> out;
  // roots was filled in reverse; restore recording order.
  for (size_t i = roots.size(); i-- > 0;) out.push_back(std::move(nodes[roots[i]]));
  // Children were appended in reverse recording order at every level; restore
  // start-time order throughout.
  struct {
    void operator()(SpanNode& n) {
      std::sort(n.children.begin(), n.children.end(),
                [](const SpanNode& a, const SpanNode& b) {
                  return a.span.ts_ns < b.span.ts_ns;
                });
      std::sort(n.events.begin(), n.events.end(),
                [](const TraceEvent& a, const TraceEvent& b) {
                  return a.ts_ns < b.ts_ns;
                });
      for (SpanNode& c : n.children) (*this)(c);
    }
  } sort_rec;
  for (SpanNode& n : out) sort_rec(n);
  return out;
}

namespace {

void RenderNode(const SpanNode& n, const std::string& indent, std::ostringstream& out) {
  out << indent << n.span.name << "  [" << n.span.dur_ns / 1000 << "us]";
  if (!n.span.detail.empty()) out << "  " << n.span.detail;
  out << "\n";
  for (const TraceEvent& e : n.events) {
    out << indent << "  . " << e.name;
    if (!e.detail.empty()) out << "  " << e.detail;
    out << "\n";
  }
  for (const SpanNode& c : n.children) RenderNode(c, indent + "  ", out);
}

uint64_t EndNs(const SpanNode& n) { return n.span.ts_ns + n.span.dur_ns; }

}  // namespace

std::string RenderSpanTree(const std::vector<SpanNode>& roots) {
  std::ostringstream out;
  for (const SpanNode& r : roots) RenderNode(r, "", out);
  return out.str();
}

std::vector<TraceEvent> CriticalPath(const std::vector<SpanNode>& roots) {
  std::vector<TraceEvent> path;
  if (roots.empty()) return path;
  const SpanNode* cur = &roots[0];
  for (const SpanNode& r : roots) {
    if (EndNs(r) > EndNs(*cur)) cur = &r;
  }
  for (;;) {
    path.push_back(cur->span);
    if (cur->children.empty()) break;
    const SpanNode* next = &cur->children[0];
    for (const SpanNode& c : cur->children) {
      if (EndNs(c) > EndNs(*next)) next = &c;
    }
    cur = next;
  }
  return path;
}

std::string RenderCriticalPath(const std::vector<TraceEvent>& path) {
  std::ostringstream out;
  for (size_t i = 0; i < path.size(); ++i) {
    const uint64_t child_dur = i + 1 < path.size() ? path[i + 1].dur_ns : 0;
    const uint64_t self = path[i].dur_ns > child_dur ? path[i].dur_ns - child_dur : 0;
    out << (i == 0 ? "" : " -> ") << path[i].name << " (" << path[i].dur_ns / 1000
        << "us, self " << self / 1000 << "us)";
  }
  if (!path.empty()) out << "\n";
  return out.str();
}

}  // namespace obs
}  // namespace pgrid
