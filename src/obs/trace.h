// Structured per-operation traces: what happened inside one query, exchange, or
// update, with nanosecond timing from a steady clock.
//
// The model is a span tree. A *trace* is identified by a trace id; every span
// inside it has its own span id plus the span id of its parent, so an offline
// reader (or the chrome://tracing exporter) can reconstruct the full tree even
// when spans were recorded on different nodes. A root span (BeginTrace, or the
// RAII TraceSpan without a parent) has span_id == trace_id and parent_span == 0;
// child spans (BeginSpan, or TraceSpan with a TraceContext) hang off any span,
// including one that lives on another node: the TraceContext carries (trace id,
// parent span id, depth) over the wire, and the receiving node stitches its
// server-side spans under the caller's span. Point events attach to a span and
// have dur_ns == 0.
//
// The recorder is bounded: once `capacity` events are buffered, further events
// are counted in dropped() instead of growing memory -- tracing a heavy run
// degrades gracefully instead of taking the process down.
//
// Engines take the recorder as an optional pointer (nullptr = tracing off) and
// every recording call tolerates null, so instrumented hot paths cost one branch
// when tracing is disabled.
//
// Span ids are unique per recorder (a monotone counter). When traces from
// several recorders are merged into one tree -- one recorder per process --
// each recorder must be salted (set_id_salt) so their id spaces do not collide;
// in-process multi-node tests simply share one recorder.

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pgrid {
namespace obs {

/// Wire-propagatable causal context: which trace an RPC belongs to, which span
/// sent it, and how deep in the tree the sender sits. A default-constructed
/// context is invalid (= "no tracing"); trace_id is never 0 for a live trace.
struct TraceContext {
  uint64_t trace_id = 0;     ///< id of the root trace this work belongs to
  uint64_t parent_span = 0;  ///< span id of the sending / enclosing span
  uint32_t depth = 0;        ///< tree depth of the parent span (root = 0)

  bool valid() const { return trace_id != 0; }
};

/// One trace record. Spans have dur_ns > 0 once ended; point events have 0.
struct TraceEvent {
  uint64_t trace_id = 0;     ///< groups all events of one operation
  uint64_t span_id = 0;      ///< unique id of this span (== trace_id for roots)
  uint64_t parent_span = 0;  ///< enclosing span id; 0 for roots / loose events
  std::string name;          ///< e.g. "search.query", "search.hop"
  std::string detail;        ///< free-form context ("peer=17 level=3")
  uint64_t ts_ns = 0;        ///< steady-clock ns since recorder construction
  uint64_t dur_ns = 0;       ///< span duration; 0 for point events / open spans
  uint32_t depth = 0;        ///< hop / recursion depth within the operation

  /// True for span records (begin/end pairs); false for point events.
  bool is_span = false;
};

/// Thread-safe bounded event recorder.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 1 << 16);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Salts span-id generation so ids from this recorder cannot collide with ids
  /// from another recorder participating in the same distributed trace. 0 (the
  /// default) keeps small sequential ids, which golden tests rely on.
  void set_id_salt(uint64_t salt);

  /// Opens a root span and returns its id (never 0). The returned id doubles as
  /// the trace id of the new trace.
  uint64_t BeginTrace(std::string_view name, std::string_view detail = {});

  /// Opens a child span underneath `parent` (possibly recorded on another node).
  /// Returns the new span id; its depth is parent.depth + 1.
  uint64_t BeginSpan(const TraceContext& parent, std::string_view name,
                     std::string_view detail = {});

  /// Closes an open span: fills dur_ns on its begin event. Unknown ids are
  /// ignored (the begin event may have been dropped at capacity).
  void EndSpan(uint64_t span_id);

  /// Alias of EndSpan kept for root-span call sites.
  void EndTrace(uint64_t trace_id) { EndSpan(trace_id); }

  /// Appends a point event. `span_id` may be a root or child span id; if that
  /// span is still open the event inherits its trace id, otherwise the event is
  /// recorded loose with trace_id == span_id (pre-span-tree behaviour).
  void Event(uint64_t span_id, std::string_view name, std::string_view detail = {},
             uint32_t depth = 0);

  /// Copy of all buffered events, in recording order.
  std::vector<TraceEvent> events() const;

  /// Events discarded because the buffer was full.
  uint64_t dropped() const;

  /// Number of buffered events.
  size_t size() const;

  void Clear();

  /// JSON array of event objects (schema documented in docs/observability.md).
  std::string ToJson() const;

  /// Nanoseconds since recorder construction (steady clock).
  uint64_t NowNs() const;

 private:
  /// Allocates the next span id (lock held). Never returns 0.
  uint64_t NextId();

  /// Records the begin event for a span and registers it in the open index
  /// (lock held). Returns the new span id.
  uint64_t OpenSpan(uint64_t trace_id, uint64_t parent_span, uint32_t depth,
                    std::string_view name, std::string_view detail, uint64_t now);

  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  // Open-span index: span id -> index of its begin event in events_. A hash map
  // keeps EndSpan O(1) under load (a linear scan here turned every span close
  // into O(open spans)).
  std::unordered_map<uint64_t, size_t> open_;
  uint64_t next_id_ = 1;
  uint64_t id_salt_ = 0;
  uint64_t dropped_ = 0;
};

/// RAII span: begins on construction, ends on destruction. A null recorder makes
/// every operation a no-op, so call sites need no branching of their own. The
/// three-argument form opens a child span under `parent` (typically a
/// TraceContext that arrived over the wire).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::string_view name)
      : recorder_(recorder),
        id_(recorder == nullptr ? 0 : recorder->BeginTrace(name)) {
    trace_id_ = id_;
  }

  TraceSpan(TraceRecorder* recorder, std::string_view name,
            const TraceContext& parent, std::string_view detail = {})
      : recorder_(recorder) {
    if (recorder_ == nullptr) {
      id_ = 0;
    } else if (!parent.valid()) {
      id_ = recorder_->BeginTrace(name, detail);
      trace_id_ = id_;
    } else {
      id_ = recorder_->BeginSpan(parent, name, detail);
      trace_id_ = parent.trace_id;
      depth_ = parent.depth + 1;
    }
  }

  ~TraceSpan() {
    if (recorder_ != nullptr) recorder_->EndSpan(id_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a point event to this span (no-op without a recorder).
  void Event(std::string_view name, std::string_view detail = {},
             uint32_t depth = 0) {
    if (recorder_ != nullptr) recorder_->Event(id_, name, detail, depth);
  }

  uint64_t id() const { return id_; }

  /// Context for work causally downstream of this span: child spans opened from
  /// it (locally or on the far side of an RPC) become its children.
  TraceContext context() const { return TraceContext{trace_id_, id_, depth_}; }

 private:
  TraceRecorder* recorder_;
  uint64_t id_ = 0;
  uint64_t trace_id_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace obs
}  // namespace pgrid
