// Structured per-operation traces: what happened inside one query, exchange, or
// update, with nanosecond timing from a steady clock.
//
// A trace is a span (BeginTrace/EndTrace, or the RAII TraceSpan) plus any number
// of point events attached to its id: search hops including backtracks and
// offline skips, exchange recursion steps, update fan-out. Events carry the
// nesting depth so a hop tree can be reconstructed offline. The recorder is
// bounded: once `capacity` events are buffered, further events are counted in
// dropped() instead of growing memory -- tracing a heavy run degrades gracefully
// instead of taking the process down.
//
// Engines take the recorder as an optional pointer (nullptr = tracing off) and
// every recording call tolerates null, so instrumented hot paths cost one branch
// when tracing is disabled.

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pgrid {
namespace obs {

/// One trace record. Spans have dur_ns > 0 once ended; point events have 0.
struct TraceEvent {
  uint64_t trace_id = 0;   ///< groups all events of one operation
  std::string name;        ///< e.g. "search.query", "search.hop"
  std::string detail;      ///< free-form context ("peer=17 level=3")
  uint64_t ts_ns = 0;      ///< steady-clock ns since recorder construction
  uint64_t dur_ns = 0;     ///< span duration; 0 for point events / open spans
  uint32_t depth = 0;      ///< hop / recursion depth within the operation
};

/// Thread-safe bounded event recorder.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 1 << 16);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens a span and returns its trace id (never 0).
  uint64_t BeginTrace(std::string_view name);

  /// Closes the span: fills dur_ns on its begin event. Unknown ids are ignored
  /// (the begin event may have been dropped at capacity).
  void EndTrace(uint64_t trace_id);

  /// Appends a point event to an open or closed trace.
  void Event(uint64_t trace_id, std::string_view name, std::string_view detail = {},
             uint32_t depth = 0);

  /// Copy of all buffered events, in recording order.
  std::vector<TraceEvent> events() const;

  /// Events discarded because the buffer was full.
  uint64_t dropped() const;

  /// Number of buffered events.
  size_t size() const;

  void Clear();

  /// JSON array of event objects (schema documented in docs/observability.md).
  std::string ToJson() const;

  /// Nanoseconds since recorder construction (steady clock).
  uint64_t NowNs() const;

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  // Open spans: (trace_id, index into events_); small and short-lived.
  std::vector<std::pair<uint64_t, size_t>> open_;
  uint64_t next_id_ = 1;
  uint64_t dropped_ = 0;
};

/// RAII span: begins on construction, ends on destruction. A null recorder makes
/// every operation a no-op, so call sites need no branching of their own.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::string_view name)
      : recorder_(recorder),
        id_(recorder == nullptr ? 0 : recorder->BeginTrace(name)) {}

  ~TraceSpan() {
    if (recorder_ != nullptr) recorder_->EndTrace(id_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a point event to this span (no-op without a recorder).
  void Event(std::string_view name, std::string_view detail = {},
             uint32_t depth = 0) {
    if (recorder_ != nullptr) recorder_->Event(id_, name, detail, depth);
  }

  uint64_t id() const { return id_; }

 private:
  TraceRecorder* recorder_;
  uint64_t id_;
};

}  // namespace obs
}  // namespace pgrid
