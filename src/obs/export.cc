#include "obs/export.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace pgrid {
namespace obs {

std::string PrometheusName(const std::string& name) {
  std::string out = "pgrid_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string ToPrometheusText(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string pname = PrometheusName(name);
    out << "# TYPE " << pname << " counter\n";
    out << pname << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string pname = PrometheusName(name);
    out << "# TYPE " << pname << " gauge\n";
    out << pname << " " << value << "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string pname = PrometheusName(h.name);
    out << "# TYPE " << pname << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      out << pname << "_bucket{le=\"" << h.bounds[i] << "\"} " << cumulative << "\n";
    }
    out << pname << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << pname << "_sum " << h.sum << "\n";
    out << pname << "_count " << h.count << "\n";
  }
  return out.str();
}

namespace {

void AppendHistogramJson(std::ostringstream& out, const HistogramSnapshot& h,
                         const char* indent) {
  out << "{\n";
  out << indent << "  \"count\": " << h.count << ",\n";
  out << indent << "  \"sum\": " << h.sum << ",\n";
  out << indent << "  \"min\": " << h.min << ",\n";
  out << indent << "  \"max\": " << h.max << ",\n";
  out << indent << "  \"p50\": " << h.p50 << ",\n";
  out << indent << "  \"p95\": " << h.p95 << ",\n";
  out << indent << "  \"p99\": " << h.p99 << ",\n";
  out << indent << "  \"bounds\": [";
  for (size_t i = 0; i < h.bounds.size(); ++i) {
    if (i > 0) out << ", ";
    out << h.bounds[i];
  }
  out << "],\n";
  out << indent << "  \"buckets\": [";
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    if (i > 0) out << ", ";
    out << h.buckets[i];
  }
  out << "]\n";
  out << indent << "}";
}

}  // namespace

std::string ToJson(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    \"" << JsonEscape(snapshot.counters[i].first)
        << "\": " << snapshot.counters[i].second;
  }
  out << (snapshot.counters.empty() ? "" : "\n  ") << "},\n";
  out << "  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    \"" << JsonEscape(snapshot.gauges[i].first)
        << "\": " << snapshot.gauges[i].second;
  }
  out << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n";
  out << "  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    \"" << JsonEscape(snapshot.histograms[i].name) << "\": ";
    AppendHistogramJson(out, snapshot.histograms[i], "    ");
  }
  out << (snapshot.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string TraceToJson(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "  {\"trace_id\": " << e.trace_id << ", \"span_id\": " << e.span_id
        << ", \"parent_span\": " << e.parent_span << ", \"name\": \""
        << JsonEscape(e.name) << "\", \"detail\": \"" << JsonEscape(e.detail)
        << "\", \"ts_ns\": " << e.ts_ns << ", \"dur_ns\": " << e.dur_ns
        << ", \"depth\": " << e.depth << "}";
  }
  out << (events.empty() ? "" : "\n") << "]\n";
  return out.str();
}

std::string TraceToChromeJson(const std::vector<TraceEvent>& events) {
  // chrome://tracing / Perfetto "trace event format": spans become complete
  // ("X") events with microsecond ts/dur, point events become instants ("i").
  // Each trace gets its own tid row so concurrent queries do not interleave.
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "  {\"name\": \"" << JsonEscape(e.name) << "\", \"cat\": \"pgrid\", ";
    if (e.is_span) {
      out << "\"ph\": \"X\", \"ts\": " << e.ts_ns / 1000 << ", \"dur\": "
          << (e.dur_ns + 999) / 1000 << ", ";
    } else {
      out << "\"ph\": \"i\", \"s\": \"t\", \"ts\": " << e.ts_ns / 1000 << ", ";
    }
    out << "\"pid\": 1, \"tid\": " << e.trace_id << ", \"args\": {\"trace_id\": "
        << e.trace_id << ", \"span_id\": " << e.span_id << ", \"parent_span\": "
        << e.parent_span << ", \"depth\": " << e.depth << ", \"detail\": \""
        << JsonEscape(e.detail) << "\"}}";
  }
  out << (events.empty() ? "" : "\n") << "]}\n";
  return out.str();
}

}  // namespace obs
}  // namespace pgrid
