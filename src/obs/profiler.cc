#include "obs/profiler.h"

#include <sstream>

namespace pgrid {
namespace obs {

PhaseProfiler::PhaseProfiler(size_t lanes, size_t capacity_per_lane)
    : capacity_(capacity_per_lane), epoch_(std::chrono::steady_clock::now()) {
  lanes_.reserve(lanes == 0 ? 1 : lanes);
  for (size_t i = 0; i < (lanes == 0 ? 1 : lanes); ++i) {
    lanes_.push_back(std::make_unique<Lane>());
    lanes_.back()->buf.reserve(capacity_per_lane < 1024 ? capacity_per_lane : 1024);
  }
}

uint64_t PhaseProfiler::NowNs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

int PhaseProfiler::RegisterPhase(std::string name) {
  phase_names_.push_back(std::move(name));
  return static_cast<int>(phase_names_.size()) - 1;
}

std::vector<PhaseProfiler::Event> PhaseProfiler::DrainLane(size_t lane) {
  std::vector<Event> out;
  out.swap(lanes_[lane]->buf);
  return out;
}

std::vector<std::vector<PhaseProfiler::Event>> PhaseProfiler::DrainAll() {
  std::vector<std::vector<Event>> out;
  out.reserve(lanes_.size());
  for (size_t i = 0; i < lanes_.size(); ++i) out.push_back(DrainLane(i));
  return out;
}

uint64_t PhaseProfiler::dropped() const {
  uint64_t total = 0;
  for (const auto& l : lanes_) total += l->dropped;
  return total;
}

std::string CollapsedStacks::ToString() const {
  std::ostringstream out;
  for (const auto& [stack, value] : stacks_) {
    out << stack << " " << value << "\n";
  }
  return out.str();
}

}  // namespace obs
}  // namespace pgrid
