#include "obs/timeline.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/export.h"

namespace pgrid {
namespace obs {

TimelineRecorder::TimelineRecorder(size_t max_points) : max_points_(max_points) {}

void TimelineRecorder::AddPoint(std::string_view series, uint64_t t, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (num_points_ >= max_points_) {
    ++dropped_;
    return;
  }
  series_[std::string(series)].push_back(Point{t, value});
  ++num_points_;
}

void TimelineRecorder::SampleRegistry(uint64_t t, const MetricsRegistry& registry) {
  const RegistrySnapshot snap = registry.Snapshot();
  for (const auto& [name, value] : snap.counters) {
    AddPoint(name, t, static_cast<double>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    AddPoint(name, t, value);
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    AddPoint(h.name + ".count", t, static_cast<double>(h.count));
    AddPoint(h.name + ".p50", t, h.p50);
    AddPoint(h.name + ".p95", t, h.p95);
    AddPoint(h.name + ".p99", t, h.p99);
  }
}

namespace {

void AppendValue(std::ostringstream& out, double v) {
  if (std::isfinite(v) && v == static_cast<double>(static_cast<int64_t>(v))) {
    out << static_cast<int64_t>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out << buf;
}

}  // namespace

std::string TimelineRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"series\": {";
  bool first_series = true;
  for (const auto& [name, points] : series_) {
    out << (first_series ? "\n" : ",\n");
    first_series = false;
    out << "    \"" << JsonEscape(name) << "\": [";
    for (size_t i = 0; i < points.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "[" << points[i].t << ", ";
      AppendValue(out, points[i].value);
      out << "]";
    }
    out << "]";
  }
  out << (series_.empty() ? "" : "\n  ") << "},\n";
  out << "  \"points\": " << num_points_ << ",\n";
  out << "  \"dropped\": " << dropped_ << "\n}\n";
  return out.str();
}

std::map<std::string, std::vector<TimelineRecorder::Point>> TimelineRecorder::series()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

size_t TimelineRecorder::num_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_points_;
}

uint64_t TimelineRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TimelineRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  num_points_ = 0;
  dropped_ = 0;
}

}  // namespace obs
}  // namespace pgrid
