#include "cli/cli.h"

#include <fstream>
#include <iomanip>

#include "check/invariants.h"
#include "core/exchange.h"
#include "core/grid_builder.h"
#include "core/parallel_builder.h"
#include "core/search.h"
#include "core/stats.h"
#include "key/text_key.h"
#include "net/inproc_transport.h"
#include "net/node.h"
#include "obs/export.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "obs/trace_view.h"
#include "sim/fuzzer.h"
#include "sim/meeting_scheduler.h"
#include "sim/scenario.h"
#include "snapshot/snapshot.h"
#include "storage/data_item.h"
#include "util/flags.h"

namespace pgrid {
namespace cli {

namespace {

std::string UsageFor(const std::string& command) {
  if (command == "build") {
    return "pgrid build --peers=N --out=FILE [--maxl=8] [--refmax=4] [--recmax=2]"
           " [--fanout=2] [--threshold=0.99] [--seed=42] [--threads=1]"
           " [--metrics-json=FILE]";
  }
  if (command == "info") return "pgrid info --in=FILE";
  if (command == "verify") return "pgrid verify --in=FILE";
  if (command == "search") {
    return "pgrid search --in=FILE --key=BITS [--start=ID] [--online=P] [--seed=1]"
           " [--metrics-json=FILE]";
  }
  if (command == "prefix") {
    return "pgrid prefix --in=FILE (--key=BITS | --text=STR) [--fanout=8] [--seed=1]"
           " [--metrics-json=FILE]";
  }
  if (command == "range") {
    return "pgrid range --in=FILE --lo=BITS --hi=BITS [--fanout=8] [--seed=1]"
           " [--metrics-json=FILE]";
  }
  if (command == "bench-search") {
    return "pgrid bench-search --in=FILE [--queries=1000] [--online=0.3]"
           " [--keylen=maxl] [--seed=1] [--metrics-json=FILE]";
  }
  if (command == "fuzz") {
    return "pgrid fuzz [--seeds=50] [--base-seed=1] [--min-steps=10]"
           " [--max-steps=40] [--max-peers=48] [--heal-tail] [--crash-sweep]"
           " [--macro-sweep] [--thread-sweep]"
           " [--out=REPRO.pgs]"
           " [--keep-going] [--timeline-json=FILE]";
  }
  if (command == "replay") {
    return "pgrid replay FILE  (or --in=FILE) [--timeline-json=FILE]"
           " [--metrics-json=FILE]";
  }
  if (command == "trace") {
    return "pgrid trace [--peers=8] [--meetings=N] [--maxl=4] [--seed=7]"
           " [--key=BITS] [--trace-json=FILE]";
  }
  return UsageText();
}

Status RequireFlag(const FlagSet& flags, const std::string& name) {
  if (!flags.Has(name)) {
    return Status::InvalidArgument("missing required flag --" + name);
  }
  return Status::OK();
}

/// Honors --metrics-json=FILE: dumps the grid's metrics registry as JSON after
/// the command ran. Every command that exercises the engines supports it.
/// Honors --<flag>-json=FILE: writes `content` to FILE. Shared by the metrics,
/// trace, and timeline dump flags so every binary spells them the same way.
Status MaybeDumpJson(const FlagSet& flags, const std::string& flag,
                     const std::string& what, const std::string& content,
                     std::ostream& out) {
  if (!flags.Has(flag)) return Status::OK();
  const std::string file = flags.GetString(flag, "");
  if (file.empty()) {
    return Status::InvalidArgument("--" + flag + " needs a file path");
  }
  std::ofstream f(file, std::ios::trunc);
  if (!f) return Status::Internal("cannot open " + file + " for writing");
  f << content;
  if (!f.good()) return Status::Internal("write to " + file + " failed");
  out << what << " written to " << file << "\n";
  return Status::OK();
}

Status MaybeDumpMetrics(const FlagSet& flags, const Grid& grid, std::ostream& out) {
  if (!flags.Has("metrics-json")) return Status::OK();
  return MaybeDumpJson(flags, "metrics-json", "metrics",
                       obs::ToJson(grid.metrics().Snapshot()), out);
}

Status CmdBuild(const FlagSet& flags, std::ostream& out) {
  PGRID_RETURN_IF_ERROR(RequireFlag(flags, "peers"));
  PGRID_RETURN_IF_ERROR(RequireFlag(flags, "out"));
  PGRID_ASSIGN_OR_RETURN(int64_t peers, flags.GetInt("peers", 0));
  if (peers < 2) return Status::InvalidArgument("--peers must be >= 2");
  ExchangeConfig config;
  PGRID_ASSIGN_OR_RETURN(int64_t maxl, flags.GetInt("maxl", 8));
  PGRID_ASSIGN_OR_RETURN(int64_t refmax, flags.GetInt("refmax", 4));
  PGRID_ASSIGN_OR_RETURN(int64_t recmax, flags.GetInt("recmax", 2));
  PGRID_ASSIGN_OR_RETURN(int64_t fanout, flags.GetInt("fanout", 2));
  PGRID_ASSIGN_OR_RETURN(double threshold, flags.GetDouble("threshold", 0.99));
  PGRID_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 42));
  PGRID_ASSIGN_OR_RETURN(int64_t threads, flags.GetInt("threads", 1));
  config.maxl = static_cast<size_t>(maxl);
  config.refmax = static_cast<size_t>(refmax);
  config.recmax = static_cast<size_t>(recmax);
  config.recursion_fanout = static_cast<size_t>(fanout);
  PGRID_RETURN_IF_ERROR(config.Validate());
  if (threshold <= 0 || threshold > 1) {
    return Status::InvalidArgument("--threshold must be in (0, 1]");
  }
  if (threads < 1) return Status::InvalidArgument("--threads must be >= 1");

  Grid grid(static_cast<size_t>(peers));
  Rng rng(static_cast<uint64_t>(seed));
  ExchangeEngine exchange(&grid, config, &rng);
  MeetingScheduler scheduler(grid.size());
  BuildReport report;
  if (threads <= 1) {
    // Sequential legacy path: bit-identical to every previous release.
    GridBuilder builder(&grid, &exchange, &scheduler, &rng);
    report = builder.BuildToFractionOfMaxDepth(threshold, 500'000'000);
  } else {
    // Deterministic parallel path: the same (seed, threads>=2) always yields the
    // same snapshot, regardless of the actual thread count.
    ParallelBuildOptions opts;
    opts.threads = static_cast<size_t>(threads);
    ParallelGridBuilder builder(&grid, &exchange, &scheduler, &rng, opts);
    report = builder.BuildToFractionOfMaxDepth(threshold, 500'000'000);
  }
  out << "built " << peers << " peers to avg depth " << std::fixed
      << std::setprecision(2) << report.avg_path_length << " ("
      << report.exchanges << " exchanges, " << std::setprecision(0)
      << report.seconds * 1e3 << " ms)\n";
  if (!report.converged) {
    return Status::DeadlineExceeded("construction did not reach the threshold");
  }
  const std::string file = flags.GetString("out", "");
  PGRID_RETURN_IF_ERROR(SaveGrid(grid, config, file));
  out << "snapshot written to " << file << "\n";
  return MaybeDumpMetrics(flags, grid, out);
}

Status CmdInfo(const FlagSet& flags, std::ostream& out) {
  PGRID_RETURN_IF_ERROR(RequireFlag(flags, "in"));
  PGRID_ASSIGN_OR_RETURN(LoadedGrid loaded, LoadGrid(flags.GetString("in", "")));
  const Grid& grid = *loaded.grid;
  out << "peers: " << grid.size() << "\n";
  out << "config: maxl=" << loaded.config.maxl << " refmax=" << loaded.config.refmax
      << " recmax=" << loaded.config.recmax
      << " fanout=" << loaded.config.recursion_fanout << "\n";
  out << "avg path length: " << std::fixed << std::setprecision(3)
      << grid.AveragePathLength() << "\n";
  out << "avg refs/peer: " << std::setprecision(1)
      << GridStats::AverageTotalRefs(grid)
      << "  (max " << GridStats::MaxTotalRefs(grid) << ")\n";
  out << "avg replication factor: " << std::setprecision(2)
      << GridStats::AverageReplicationFactor(grid) << "\n";
  out << "path length histogram:\n";
  for (const auto& [len, count] : GridStats::PathLengthHistogram(grid)) {
    out << "  depth " << std::setw(2) << len << ": " << count << "\n";
  }
  size_t entries = 0, foreign = 0, buddies = 0;
  for (const PeerState& p : grid) {
    entries += p.index().size();
    foreign += p.foreign_entries().size();
    buddies += p.buddies().size();
  }
  out << "index entries: " << entries << " (+" << foreign
      << " parked), buddy links: " << buddies << "\n";
  return Status::OK();
}

Status CmdVerify(const FlagSet& flags, std::ostream& out) {
  PGRID_RETURN_IF_ERROR(RequireFlag(flags, "in"));
  PGRID_ASSIGN_OR_RETURN(LoadedGrid loaded, LoadGrid(flags.GetString("in", "")));
  const check::InvariantReport report =
      check::GridInvariants::Check(*loaded.grid, loaded.config);
  if (!report.ok()) {
    out << report.ToString();
    return Status::FailedPrecondition(
        std::to_string(report.violations.size()) +
        std::string(report.truncated ? "+" : "") + " invariant violation(s)");
  }
  out << "OK: all invariants hold (" << report.peers_checked << " peers)\n";
  return Status::OK();
}

Result<KeyPath> KeyFromFlags(const FlagSet& flags) {
  if (flags.Has("text")) return EncodeText(flags.GetString("text", ""));
  if (flags.Has("key")) return KeyPath::FromString(flags.GetString("key", ""));
  return Status::InvalidArgument("pass --key=BITS or --text=STR");
}

Status CmdSearch(const FlagSet& flags, std::ostream& out) {
  PGRID_RETURN_IF_ERROR(RequireFlag(flags, "in"));
  PGRID_ASSIGN_OR_RETURN(LoadedGrid loaded, LoadGrid(flags.GetString("in", "")));
  PGRID_ASSIGN_OR_RETURN(KeyPath key, KeyFromFlags(flags));
  PGRID_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 1));
  PGRID_ASSIGN_OR_RETURN(double online_prob, flags.GetDouble("online", 1.0));
  Rng rng(static_cast<uint64_t>(seed));
  OnlineModel online(online_prob < 1.0 ? OnlineMode::kSnapshot
                                       : OnlineMode::kAlwaysOn,
                     loaded.grid->size(), online_prob, &rng);
  SearchEngine search(loaded.grid.get(), &online, &rng);
  PGRID_ASSIGN_OR_RETURN(int64_t start_flag, flags.GetInt("start", -1));
  PeerId start;
  if (start_flag >= 0) {
    if (static_cast<uint64_t>(start_flag) >= loaded.grid->size()) {
      return Status::InvalidArgument("--start out of range");
    }
    start = static_cast<PeerId>(start_flag);
  } else {
    auto s = search.RandomOnlinePeer();
    if (!s.has_value()) return Status::Unavailable("no online peer to start from");
    start = *s;
  }
  QueryResult r = search.Query(start, key);
  if (!r.found) {
    out << "NOT FOUND (from peer " << start << ", " << r.messages << " messages)\n";
    PGRID_RETURN_IF_ERROR(MaybeDumpMetrics(flags, *loaded.grid, out));
    return Status::NotFound("no responsible peer reachable");
  }
  const PeerState& responder = loaded.grid->peer(r.responder);
  out << "found: peer " << r.responder << " (path " << responder.path()
      << ") after " << r.messages << " messages, " << r.hops << " hops\n";
  auto matches = responder.index().Matching(key);
  out << matches.size() << " matching index entries\n";
  for (const IndexEntry& e : matches) {
    out << "  item " << e.item_id << " v" << e.version << " key " << e.key
        << " held by peer " << e.holder << "\n";
  }
  return MaybeDumpMetrics(flags, *loaded.grid, out);
}

Status CmdPrefix(const FlagSet& flags, std::ostream& out) {
  PGRID_RETURN_IF_ERROR(RequireFlag(flags, "in"));
  PGRID_ASSIGN_OR_RETURN(LoadedGrid loaded, LoadGrid(flags.GetString("in", "")));
  PGRID_ASSIGN_OR_RETURN(KeyPath prefix, KeyFromFlags(flags));
  PGRID_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 1));
  PGRID_ASSIGN_OR_RETURN(int64_t fanout, flags.GetInt("fanout", 8));
  if (fanout < 1) return Status::InvalidArgument("--fanout must be >= 1");
  Rng rng(static_cast<uint64_t>(seed));
  SearchEngine search(loaded.grid.get(), nullptr, &rng);
  PrefixSearchResult r = search.PrefixSearch(
      static_cast<PeerId>(rng.UniformIndex(loaded.grid->size())), prefix,
      static_cast<size_t>(fanout));
  out << r.entries.size() << " entries from " << r.responders.size()
      << " responders in " << r.messages << " messages\n";
  for (const IndexEntry& e : r.entries) {
    out << "  item " << e.item_id << " key " << e.key;
    auto text = DecodeText(e.key);
    if (text.ok()) out << " (\"" << *text << "\")";
    out << " held by peer " << e.holder << "\n";
  }
  return MaybeDumpMetrics(flags, *loaded.grid, out);
}

Status CmdRange(const FlagSet& flags, std::ostream& out) {
  PGRID_RETURN_IF_ERROR(RequireFlag(flags, "in"));
  PGRID_RETURN_IF_ERROR(RequireFlag(flags, "lo"));
  PGRID_RETURN_IF_ERROR(RequireFlag(flags, "hi"));
  PGRID_ASSIGN_OR_RETURN(LoadedGrid loaded, LoadGrid(flags.GetString("in", "")));
  PGRID_ASSIGN_OR_RETURN(KeyPath lo, KeyPath::FromString(flags.GetString("lo", "")));
  PGRID_ASSIGN_OR_RETURN(KeyPath hi, KeyPath::FromString(flags.GetString("hi", "")));
  PGRID_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 1));
  PGRID_ASSIGN_OR_RETURN(int64_t fanout, flags.GetInt("fanout", 8));
  if (fanout < 1) return Status::InvalidArgument("--fanout must be >= 1");
  Rng rng(static_cast<uint64_t>(seed));
  SearchEngine search(loaded.grid.get(), nullptr, &rng);
  PGRID_ASSIGN_OR_RETURN(
      PrefixSearchResult r,
      search.RangeSearch(static_cast<PeerId>(rng.UniformIndex(loaded.grid->size())),
                         lo, hi, static_cast<size_t>(fanout)));
  out << r.entries.size() << " entries from " << r.responders.size()
      << " responders in " << r.messages << " messages\n";
  for (const IndexEntry& e : r.entries) {
    out << "  item " << e.item_id << " key " << e.key << " held by peer "
        << e.holder << "\n";
  }
  return MaybeDumpMetrics(flags, *loaded.grid, out);
}

Status CmdBenchSearch(const FlagSet& flags, std::ostream& out) {
  PGRID_RETURN_IF_ERROR(RequireFlag(flags, "in"));
  PGRID_ASSIGN_OR_RETURN(LoadedGrid loaded, LoadGrid(flags.GetString("in", "")));
  PGRID_ASSIGN_OR_RETURN(int64_t queries, flags.GetInt("queries", 1000));
  PGRID_ASSIGN_OR_RETURN(double online_prob, flags.GetDouble("online", 0.3));
  PGRID_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 1));
  PGRID_ASSIGN_OR_RETURN(
      int64_t keylen, flags.GetInt("keylen", static_cast<int64_t>(loaded.config.maxl)));
  if (queries < 1 || keylen < 1) {
    return Status::InvalidArgument("--queries and --keylen must be >= 1");
  }
  Rng rng(static_cast<uint64_t>(seed));
  OnlineModel online(OnlineMode::kSnapshot, loaded.grid->size(), online_prob, &rng);
  SearchEngine search(loaded.grid.get(), &online, &rng);
  size_t ok = 0;
  uint64_t messages = 0;
  for (int64_t q = 0; q < queries; ++q) {
    if (q % 100 == 0) online.Resample(&rng);
    auto start = search.RandomOnlinePeer();
    if (!start.has_value()) continue;
    QueryResult r =
        search.Query(*start, KeyPath::Random(&rng, static_cast<size_t>(keylen)));
    messages += r.messages;
    if (r.found) ++ok;
  }
  out << std::fixed << std::setprecision(2) << "success rate: "
      << 100.0 * static_cast<double>(ok) / static_cast<double>(queries)
      << "%  avg messages: " << std::setprecision(3)
      << static_cast<double>(messages) / static_cast<double>(queries)
      << "  (online " << online_prob << ", " << queries << " queries)\n";
  return MaybeDumpMetrics(flags, *loaded.grid, out);
}

Status CmdFuzz(const FlagSet& flags, std::ostream& out) {
  sim::FuzzOptions options;
  PGRID_ASSIGN_OR_RETURN(int64_t seeds,
                         flags.GetInt("seeds", static_cast<int64_t>(options.num_seeds)));
  PGRID_ASSIGN_OR_RETURN(int64_t base_seed,
                         flags.GetInt("base-seed", static_cast<int64_t>(options.base_seed)));
  PGRID_ASSIGN_OR_RETURN(int64_t min_steps,
                         flags.GetInt("min-steps", static_cast<int64_t>(options.min_steps)));
  PGRID_ASSIGN_OR_RETURN(int64_t max_steps,
                         flags.GetInt("max-steps", static_cast<int64_t>(options.max_steps)));
  PGRID_ASSIGN_OR_RETURN(int64_t max_peers,
                         flags.GetInt("max-peers", static_cast<int64_t>(options.max_peers)));
  if (seeds < 1) return Status::InvalidArgument("--seeds must be >= 1");
  if (min_steps < 1 || max_steps < min_steps) {
    return Status::InvalidArgument("need 1 <= --min-steps <= --max-steps");
  }
  if (static_cast<size_t>(max_peers) < options.min_peers) {
    return Status::InvalidArgument("--max-peers must be >= " +
                                   std::to_string(options.min_peers));
  }
  options.num_seeds = static_cast<size_t>(seeds);
  options.base_seed = static_cast<uint64_t>(base_seed);
  options.min_steps = static_cast<size_t>(min_steps);
  options.max_steps = static_cast<size_t>(max_steps);
  options.max_peers = static_cast<size_t>(max_peers);
  options.heal_tail = flags.Has("heal-tail");
  options.crash_sweep = flags.Has("crash-sweep");
  options.macro_sweep = flags.Has("macro-sweep");
  options.vary_builder_threads = flags.Has("thread-sweep");
  options.stop_on_failure = !flags.Has("keep-going");

  const sim::FuzzOutcome outcome = sim::ScenarioFuzzer::Fuzz(options);
  out << outcome.seeds_run << " seed(s) run, " << outcome.failures
      << " failure(s)";
  if (options.vary_builder_threads) {
    out << " (" << outcome.digest_mismatches << " thread-sweep digest"
        << " mismatch(es))";
  }
  out << "\n";
  if (outcome.failures == 0) return Status::OK();

  out << "first failing seed: " << outcome.failing_seed << "\n"
      << outcome.failure.report.ToString();
  if (flags.Has("out")) {
    const std::string file = flags.GetString("out", "");
    if (file.empty()) return Status::InvalidArgument("--out needs a file path");
    PGRID_RETURN_IF_ERROR(sim::SaveScenario(outcome.minimal, file));
    out << "minimal repro (" << outcome.minimal.steps.size()
        << " step(s)) written to " << file << " -- replay with `pgrid replay "
        << file << "`\n";
  } else {
    out << "minimal repro (" << outcome.minimal.steps.size()
        << " step(s)), pass --out=FILE to save it:\n"
        << sim::SerializeScenario(outcome.minimal);
  }
  if (flags.Has("timeline-json")) {
    // Replay the minimal repro with a per-step metric timeline attached: the
    // series show how the counters evolved on the way into the violation.
    sim::ScenarioRunner runner(outcome.minimal);
    obs::TimelineRecorder timeline;
    runner.SetTimeline(&timeline);
    (void)runner.Run();
    PGRID_RETURN_IF_ERROR(MaybeDumpJson(flags, "timeline-json", "repro timeline",
                                        timeline.ToJson(), out));
  }
  return Status::FailedPrecondition("fuzzing found invariant violations");
}

Status CmdReplay(const FlagSet& flags, std::ostream& out) {
  std::string file = flags.GetString("in", "");
  if (file.empty() && !flags.positional().empty()) file = flags.positional()[0];
  if (file.empty()) {
    return Status::InvalidArgument("pass a scenario file (positional or --in=FILE)");
  }
  PGRID_ASSIGN_OR_RETURN(sim::Scenario scenario, sim::LoadScenario(file));
  sim::ScenarioRunner runner(scenario);
  obs::TimelineRecorder timeline;
  if (flags.Has("timeline-json")) runner.SetTimeline(&timeline);
  const sim::ScenarioResult result = runner.Run();
  out << "replayed " << result.steps_executed << "/" << scenario.steps.size()
      << " step(s), seed " << scenario.config.seed << ", digest "
      << result.digest << "\n";
  if (result.probes > 0) {
    out << "probes: " << result.probes_found << "/" << result.probes
        << " found\n";
  }
  if (result.failed) {
    out << "FAILED at step " << result.failed_step << ":\n"
        << result.report.ToString();
    return Status::FailedPrecondition("invariant violations during replay");
  }
  out << "OK: all barriers passed\n";
  PGRID_RETURN_IF_ERROR(MaybeDumpJson(flags, "timeline-json", "timeline",
                                      timeline.ToJson(), out));
  return MaybeDumpMetrics(flags, runner.grid(), out);
}

Status CmdTrace(const FlagSet& flags, std::ostream& out) {
  PGRID_ASSIGN_OR_RETURN(int64_t peers, flags.GetInt("peers", 8));
  PGRID_ASSIGN_OR_RETURN(int64_t maxl, flags.GetInt("maxl", 4));
  PGRID_ASSIGN_OR_RETURN(int64_t seed, flags.GetInt("seed", 7));
  PGRID_ASSIGN_OR_RETURN(int64_t meetings, flags.GetInt("meetings", peers * 120));
  if (peers < 2) return Status::InvalidArgument("--peers must be >= 2");
  if (maxl < 1) return Status::InvalidArgument("--maxl must be >= 1");

  // An in-process cluster of networked nodes sharing one trace recorder (one
  // process = one clock epoch = directly mergeable span ids).
  net::NodeConfig config;
  config.maxl = static_cast<size_t>(maxl);
  net::InProcTransport transport;
  std::vector<std::unique_ptr<net::PGridNode>> nodes;
  for (int64_t i = 0; i < peers; ++i) {
    nodes.push_back(std::make_unique<net::PGridNode>(
        "node:" + std::to_string(i), &transport, config,
        static_cast<uint64_t>(seed) * 1000 + static_cast<uint64_t>(i)));
    PGRID_RETURN_IF_ERROR(nodes.back()->Start());
  }
  // Bootstrap untraced so the trace holds only the operations under study.
  Rng rng(static_cast<uint64_t>(seed));
  for (int64_t m = 0; m < meetings; ++m) {
    const size_t a = rng.UniformIndex(nodes.size());
    const size_t b = rng.UniformIndex(nodes.size());
    if (a == b) continue;
    (void)nodes[a]->MeetWith(nodes[b]->address());
  }
  double avg_depth = 0.0;
  for (const auto& n : nodes) {
    avg_depth += static_cast<double>(n->path().length());
  }
  avg_depth /= static_cast<double>(nodes.size());
  out << "cluster: " << peers << " peers, avg depth " << std::fixed
      << std::setprecision(2) << avg_depth << " after " << meetings
      << " bootstrap meetings\n";

  obs::TraceRecorder recorder;
  for (auto& n : nodes) n->SetTraceRecorder(&recorder);

  KeyPath key = [&]() -> KeyPath {
    if (flags.Has("key")) {
      auto k = KeyPath::FromString(flags.GetString("key", ""));
      if (k.ok()) return *k;
    }
    return KeyPath::Random(&rng, 2 * static_cast<size_t>(maxl));
  }();
  DataItem item;
  item.id = 1;
  item.key = key;
  item.payload = "traced-item";
  item.version = 1;
  const Status publish = nodes.front()->Publish(item);
  if (!publish.ok()) out << "publish: " << publish.ToString() << "\n";
  const Result<std::vector<net::WireEntry>> search = nodes.back()->Search(key);
  if (!search.ok()) {
    out << "search: " << search.status().ToString() << "\n";
  } else {
    out << "search for " << key << " from " << nodes.back()->address()
        << ": " << search->size() << " matching entr"
        << (search->size() == 1 ? "y" : "ies") << "\n";
  }

  const std::vector<obs::TraceEvent> events = recorder.events();
  const std::vector<uint64_t> ids = obs::TraceIds(events);
  for (uint64_t id : ids) {
    const std::vector<obs::SpanNode> roots = obs::BuildSpanTree(events, id);
    out << "\ntrace " << id << ":\n" << obs::RenderSpanTree(roots);
  }
  if (!ids.empty()) {
    // The last trace is the search: its longest hop chain is the query's
    // critical path across the cluster.
    const std::vector<obs::SpanNode> roots = obs::BuildSpanTree(events, ids.back());
    out << "\ncritical path:\n"
        << obs::RenderCriticalPath(obs::CriticalPath(roots));
  }
  if (recorder.dropped() > 0) {
    out << "(" << recorder.dropped() << " events dropped at capacity)\n";
  }
  return MaybeDumpJson(flags, "trace-json", "trace",
                       obs::TraceToChromeJson(events), out);
}

}  // namespace

std::string UsageText() {
  return "pgrid -- P-Grid command line tool\n"
         "\n"
         "commands:\n"
         "  build         construct a grid and save a snapshot\n"
         "  info          print structure statistics of a snapshot\n"
         "  verify        check all structural invariants of a snapshot\n"
         "  search        route one query through a snapshot\n"
         "  prefix        interval/prefix search (supports --text via text keys)\n"
         "  range         range search between two equal-length keys\n"
         "  bench-search  measure search reliability under churn\n"
         "  fuzz          run the seeded scenario fuzzer; shrink any failure\n"
         "  replay        re-execute a saved scenario file and check invariants\n"
         "  trace         run a traced publish+search on an in-process cluster\n"
         "                and print the distributed span tree + critical path\n"
         "\n"
         "every command that exercises the engines accepts --metrics-json=FILE to\n"
         "dump the run's metrics registry as JSON; `trace` accepts\n"
         "--trace-json=FILE (chrome://tracing format) and `replay`\n"
         "--timeline-json=FILE (per-step metric series, docs/observability.md).\n"
         "\n"
         "run `pgrid <command>` with no flags to see its usage.\n";
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << UsageText();
    return args.empty() ? 1 : 0;
  }
  const std::string command = args[0];
  FlagSet flags(std::vector<std::string>(args.begin() + 1, args.end()));
  Status status;
  if (command == "build") {
    status = CmdBuild(flags, out);
  } else if (command == "info") {
    status = CmdInfo(flags, out);
  } else if (command == "verify") {
    status = CmdVerify(flags, out);
  } else if (command == "search") {
    status = CmdSearch(flags, out);
  } else if (command == "prefix") {
    status = CmdPrefix(flags, out);
  } else if (command == "range") {
    status = CmdRange(flags, out);
  } else if (command == "bench-search") {
    status = CmdBenchSearch(flags, out);
  } else if (command == "fuzz") {
    status = CmdFuzz(flags, out);
  } else if (command == "replay") {
    status = CmdReplay(flags, out);
  } else if (command == "trace") {
    status = CmdTrace(flags, out);
  } else {
    err << "unknown command '" << command << "'\n\n" << UsageText();
    return 1;
  }
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    if (status.IsInvalidArgument()) err << "usage: " << UsageFor(command) << "\n";
    return 1;
  }
  return 0;
}

}  // namespace cli
}  // namespace pgrid
