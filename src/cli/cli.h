// Command layer of the `pgrid` CLI tool.
//
// Commands operate on grid snapshots (see snapshot/snapshot.h), so a grid is built
// once and then inspected, queried, and measured across invocations:
//
//   pgrid build  --peers=1000 --maxl=8 --refmax=4 --out=grid.pgrid [--seed=42]
//   pgrid info   --in=grid.pgrid
//   pgrid verify --in=grid.pgrid
//   pgrid search --in=grid.pgrid --key=0110 [--start=0] [--online=0.3] [--seed=1]
//   pgrid prefix --in=grid.pgrid (--key=01 | --text=beat) [--fanout=8]
//   pgrid range  --in=grid.pgrid --lo=0010 --hi=0110 [--fanout=8]
//   pgrid bench-search --in=grid.pgrid --queries=1000 [--online=0.3] [--keylen=8]
//
// The dispatch function is separated from main() so the whole surface is unit
// testable: RunCli writes human output to `out`, errors to `err`, and returns a
// process exit code.

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pgrid {
namespace cli {

/// Executes one CLI invocation. `args` excludes the program name (argv[1..]).
/// Returns 0 on success, 1 on usage errors or command failure.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

/// Multi-line usage text.
std::string UsageText();

}  // namespace cli
}  // namespace pgrid
