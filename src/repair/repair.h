// Active self-healing: failure detection, reference repair, replica anti-entropy.
//
// The construction algorithm leaves the grid fault-*tolerant* -- refmax-fold
// references and replicated leaves survive offline peers -- but under churn that
// redundancy only decays: crashed peers linger in reference sets, under-full
// levels wait for chance meetings to refill, and a replica that missed an update
// stays diverged forever. RepairEngine turns tolerance into recovery with three
// cooperating mechanisms, all deterministic under the simulation's seeded RNG
// streams so ScenarioRunner/ScenarioFuzzer can drive and shrink repair schedules:
//
//   1. Failure detection. Each Tick() probes every referenced peer once per
//      observer. Failed probes feed a per-observer SuspicionTable
//      (repair/health.h); crossing the threshold evicts the target from all of
//      the observer's reference levels. Hysteresis means one dropped packet
//      under FaultInjectingTransport never evicts a good reference.
//
//   2. Active reference repair. A level whose reference set sits below refmax
//      is refilled immediately: targeted lookups into the complementary subtree
//      (the level's prefix with the level bit flipped, padded with random bits)
//      recruit responsible peers -- and their live buddies -- as replacements,
//      instead of waiting for random exchanges to stumble on one.
//
//   3. Replica anti-entropy. Buddies compare order-independent FNV digests of
//      their leaf indexes (sim/digest.h); on divergence they merge entry sets
//      with max-version-wins semantics and pull each other's live references.
//      ReadRepair() additionally turns the paper's repeated-query majority read
//      into a convergence mechanism: replicas observed returning a minority
//      version are patched to the majority one on the spot.
//
// Ledger discipline (docs/observability.md): every delivered probe, sync
// session, and read-repair patch records one kControl message; reconciled
// entries record kDataTransfer. Failed probes cost nothing on the simulated
// wire and are tracked only by the repair.probe_failures counter.

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/grid.h"
#include "core/search.h"
#include "repair/health.h"
#include "sim/online_model.h"
#include "util/rng.h"
#include "util/status.h"

namespace pgrid {
namespace repair {

/// Tuning knobs for one RepairEngine.
struct RepairConfig {
  /// Consecutive probe failures before a reference is evicted; 0 disables
  /// failure detection (probes still run, nothing is ever evicted).
  uint32_t suspicion_threshold = 2;

  /// Consecutive slow-but-delivered probes before a target is demoted from
  /// routing preference (gray-failure detection); 0 disables demotion. A
  /// demoted peer is never evicted for slowness -- it still holds valid data.
  uint32_t slow_threshold = 2;

  /// Latency bound for a delivered probe, in the units of the latency callback
  /// (set_latency_fn). A delivered probe whose reported latency exceeds this
  /// counts as slow. Ignored while no latency callback is installed.
  uint64_t probe_timeout = 4;

  /// After an eviction, the next `eviction_cooldown` suspicion-threshold
  /// crossings by the same observer reset the counter instead of evicting, so
  /// slow-network scenarios cannot mass-evict a healthy reference set. 0
  /// disables the cooldown (the historical behaviour).
  uint32_t eviction_cooldown = 0;

  /// Targeted lookups attempted per under-full level per Tick.
  size_t recruit_attempts = 4;

  /// Master switches for the repair mechanisms (benches compare arms).
  bool recruit = true;
  bool anti_entropy = true;

  Status Validate() const {
    if (recruit_attempts == 0)
      return Status::InvalidArgument("recruit_attempts must be >= 1");
    return Status::OK();
  }
};

/// What one maintenance round did (sums over all live peers).
struct RepairTick {
  uint64_t probes = 0;              ///< delivered probes (one kControl each)
  uint64_t probe_failures = 0;      ///< probes that did not reach their target
  uint64_t slow_probes = 0;         ///< delivered probes over the probe timeout
  uint64_t demotions = 0;           ///< targets newly demoted for slowness
  uint64_t evictions = 0;           ///< reference slots cleared by detection
  uint64_t recruited = 0;           ///< references adopted into under-full levels
  uint64_t sync_sessions = 0;       ///< buddy digest comparisons (one kControl each)
  uint64_t syncs_diverged = 0;      ///< sessions whose digests disagreed
  uint64_t entries_reconciled = 0;  ///< index entries merged during reconciliation
};

/// Outcome of one majority-read with repair.
struct ReadRepairOutcome {
  bool decided = false;          ///< a majority version emerged
  uint64_t version = 0;          ///< the majority version (valid iff decided)
  uint64_t repaired_entries = 0; ///< stale entries patched to the majority version
  size_t stale_replicas = 0;     ///< responders that had returned a minority version
};

/// Drives the self-healing protocol over a simulated Grid.
///
/// Determinism: Tick() walks peers in id order, probes reference targets in
/// first-seen order, and draws recruitment keys from the caller-owned Rng, so a
/// repair schedule is a pure function of (grid state, rng state, callbacks).
class RepairEngine {
 public:
  /// `online` may be null (everyone online). `search` issues the recruitment and
  /// read-repair queries so their kQuery accounting flows through the normal
  /// search ledger. All pointers must outlive the engine.
  RepairEngine(Grid* grid, const ExchangeConfig& exchange_config,
               const RepairConfig& config, SearchEngine* search,
               const OnlineModel* online, Rng* rng);

  /// Overrides which peers count as alive (default: everyone). Scenario and
  /// churn drivers pass their dead masks so crashed peers neither run
  /// maintenance nor get recruited.
  void set_liveness(std::function<bool(PeerId)> fn) { liveness_ = std::move(fn); }

  /// Overrides probe delivery (default: target is live and online). The
  /// scenario runner routes this through its fault-injecting transport so
  /// partitions and outages look exactly like crashes to the detector.
  void set_probe_fn(std::function<bool(PeerId from, PeerId to)> fn) {
    probe_fn_ = std::move(fn);
  }

  /// Overrides the latency a delivered probe observed (default: none -- all
  /// probes count as fast). The scenario runner reports inflated latencies for
  /// gray peers (the `slownode` step); a delivered probe whose latency exceeds
  /// RepairConfig::probe_timeout feeds the observer's consecutive-slow counter.
  void set_latency_fn(std::function<uint64_t(PeerId from, PeerId to)> fn) {
    latency_fn_ = std::move(fn);
  }

  /// True iff `observer` currently considers `target` gray (demoted from
  /// routing preference, see SearchEngine::set_slow_fn). Never true for
  /// observers that have not run a maintenance round yet.
  bool IsDemoted(PeerId observer, PeerId target) const {
    return observer < suspicion_.size() && suspicion_[observer].IsDemoted(target);
  }

  /// Runs one maintenance round: probe + evict, recruit, buddy anti-entropy.
  RepairTick Tick();

  /// Welcome-back path for a peer restarted from durable storage
  /// (storage/persist.h): instead of recruiting a blank replacement, run one
  /// targeted buddy anti-entropy pass for just this peer. Its recovered index
  /// pulls only the delta it missed while down (digest compare + max-version
  /// merge), and its recovered references are pooled with the buddies' -- the
  /// cheap alternative to fresh recruitment that bench_recovery quantifies.
  /// Reuses the Tick() sync machinery, so the ledger discipline (one kControl
  /// per session, kDataTransfer per reconciled entry) is unchanged.
  RepairTick RejoinSync(PeerId peer);

  /// Partition-heal reconciliation: runs maintenance rounds until one round
  /// observes no diverged buddy pair, or `max_rounds` is exhausted. After a
  /// partition heals, the replicas that diverged across the split disagree on
  /// exactly the entries written during the divergence; anti-entropy pulls
  /// them back together, and a clean round is the convergence signal the
  /// post-heal invariants (check::Category::kHealDivergence) key off.
  struct ReconcileOutcome {
    bool converged = false;          ///< a round saw zero diverged pairs
    size_t rounds = 0;               ///< maintenance rounds actually run
    uint64_t sync_sessions = 0;      ///< buddy sessions over all rounds
    uint64_t entries_reconciled = 0; ///< entries merged over all rounds
  };
  ReconcileOutcome ReconcileUntilConverged(size_t max_rounds);

  /// Repeated-query majority read of `item` under `key` that also repairs the
  /// minority: responders observed returning a stale version are patched to the
  /// majority version (one kControl message per patched replica).
  ReadRepairOutcome ReadRepair(const KeyPath& key, ItemId item,
                               const ReliableReadConfig& read_config);

  /// Maintenance rounds executed so far (the anti-entropy divergence-age clock).
  uint64_t rounds() const { return rounds_; }

 private:
  bool IsLive(PeerId p) const { return !liveness_ || liveness_(p); }
  bool Probe(PeerId from, PeerId to);
  /// True iff `target` may serve as a level-`level` reference of `a`.
  bool SatisfiesRefProperty(const PeerState& a, size_t level, PeerId target) const;
  void ProbeAndEvict(PeerState& peer, RepairTick* tick);
  void RecruitReferences(PeerState& peer, RepairTick* tick);
  void SyncBuddies(PeerState& peer, std::unordered_set<uint64_t>* synced,
                   RepairTick* tick);

  Grid* grid_;
  ExchangeConfig exchange_config_;
  RepairConfig config_;
  SearchEngine* search_;
  const OnlineModel* online_;
  Rng* rng_;
  std::function<bool(PeerId)> liveness_;
  std::function<bool(PeerId, PeerId)> probe_fn_;
  std::function<uint64_t(PeerId, PeerId)> latency_fn_;
  std::vector<SuspicionTable> suspicion_;  // indexed by observer PeerId
  // last_in_sync_[key(a,b)] = rounds() when the pair's digests last matched;
  // feeds the repair.divergence_age histogram.
  std::unordered_map<uint64_t, uint64_t> last_in_sync_;
  uint64_t rounds_ = 0;
};

}  // namespace repair
}  // namespace pgrid
