// Per-reference failure detection with hysteresis.
//
// The fault layer (net/fault_transport.h) makes single-contact evidence
// worthless: a dropped packet looks exactly like a crashed peer. SuspicionTable
// therefore accumulates *consecutive* failures per target and only reports a
// target as evictable once the count crosses a threshold; any successful
// contact fully rehabilitates it. One table per observing peer keeps the
// evidence local, as it would be in a deployment -- peers never share suspicion,
// only the eviction decisions that follow from it.

#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/types.h"

namespace pgrid {
namespace repair {

/// Consecutive-failure counters over contact targets.
class SuspicionTable {
 public:
  /// `threshold` consecutive failures mark a target evictable; 0 disables
  /// detection entirely (NoteFailure never returns true).
  explicit SuspicionTable(uint32_t threshold) : threshold_(threshold) {}

  /// Records a successful contact: the target is fully rehabilitated.
  void NoteSuccess(PeerId target) { counts_.erase(target); }

  /// Records a failed contact. Returns true iff this failure pushed the target
  /// over the threshold -- the caller should evict it. The counter resets on
  /// that edge, so a later re-recruitment starts with a clean slate.
  bool NoteFailure(PeerId target) {
    if (threshold_ == 0) return false;
    if (++counts_[target] < threshold_) return false;
    counts_.erase(target);
    return true;
  }

  /// Current consecutive-failure count for `target` (0 if unsuspected).
  uint32_t suspicion(PeerId target) const {
    auto it = counts_.find(target);
    return it == counts_.end() ? 0 : it->second;
  }

 private:
  uint32_t threshold_;
  std::unordered_map<PeerId, uint32_t> counts_;
};

}  // namespace repair
}  // namespace pgrid
