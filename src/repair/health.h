// Per-reference failure detection with hysteresis.
//
// The fault layer (net/fault_transport.h) makes single-contact evidence
// worthless: a dropped packet looks exactly like a crashed peer. SuspicionTable
// therefore accumulates *consecutive* failures per target and only reports a
// target as evictable once the count crosses a threshold; any successful
// contact fully rehabilitates it. One table per observing peer keeps the
// evidence local, as it would be in a deployment -- peers never share suspicion,
// only the eviction decisions that follow from it.
//
// Two further hysteresis dimensions cover macro faults (docs/robustness.md):
//
//  - Gray failures. A peer that answers, but slowly, is tracked on a separate
//    consecutive-slow counter. Crossing `slow_threshold` *demotes* the target
//    (deprioritized in routing, see SearchEngine::set_slow_fn) without ever
//    evicting it -- a slow replica still holds valid data. One fast contact
//    lifts the demotion.
//  - Eviction cooldown. After an eviction, the next `eviction_cooldown`
//    threshold crossings reset the suspect's counter instead of evicting, so a
//    transport-wide event (slow network, partition) cannot mass-evict an
//    observer's whole reference set in one sweep.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "sim/types.h"

namespace pgrid {
namespace repair {

/// Consecutive-failure (and consecutive-slow) counters over contact targets.
class SuspicionTable {
 public:
  /// `threshold` consecutive failures mark a target evictable; 0 disables
  /// detection entirely (NoteFailure never returns true). `slow_threshold`
  /// consecutive slow contacts mark a target demoted; 0 disables gray-failure
  /// tracking. After an eviction the next `eviction_cooldown` threshold
  /// crossings are suppressed.
  explicit SuspicionTable(uint32_t threshold, uint32_t slow_threshold = 0,
                          uint32_t eviction_cooldown = 0)
      : threshold_(threshold),
        slow_threshold_(slow_threshold),
        eviction_cooldown_(eviction_cooldown) {}

  /// Records a successful contact: the target is fully rehabilitated on the
  /// failure axis. Slowness is tracked separately (NoteSlow / NoteFast) --
  /// a slow success is still a success.
  void NoteSuccess(PeerId target) { counts_.erase(target); }

  /// Records a failed contact. Returns true iff this failure pushed the target
  /// over the threshold *and* no eviction cooldown is pending -- the caller
  /// should evict it. The counter resets on every crossing (evicting or
  /// suppressed), so a later re-recruitment starts with a clean slate.
  bool NoteFailure(PeerId target) {
    if (threshold_ == 0) return false;
    if (++counts_[target] < threshold_) return false;
    counts_.erase(target);
    if (cooldown_left_ > 0) {
      --cooldown_left_;
      return false;
    }
    cooldown_left_ = eviction_cooldown_;
    return true;
  }

  /// Records a delivered-but-slow contact. Returns true iff this crossed the
  /// slow threshold -- the demotion edge; the target stays demoted until a
  /// fast contact (NoteFast) rehabilitates it.
  bool NoteSlow(PeerId target) {
    if (slow_threshold_ == 0 || demoted_.contains(target)) return false;
    if (++slow_counts_[target] < slow_threshold_) return false;
    slow_counts_.erase(target);
    demoted_.insert(target);
    return true;
  }

  /// Records a delivered fast contact: clears slow evidence and any demotion.
  void NoteFast(PeerId target) {
    slow_counts_.erase(target);
    demoted_.erase(target);
  }

  /// True iff the target crossed the slow threshold and has not been fast since.
  bool IsDemoted(PeerId target) const { return demoted_.contains(target); }

  /// Current consecutive-failure count for `target` (0 if unsuspected).
  uint32_t suspicion(PeerId target) const {
    auto it = counts_.find(target);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Current consecutive-slow count for `target` (0 once demoted or fast).
  uint32_t slowness(PeerId target) const {
    auto it = slow_counts_.find(target);
    return it == slow_counts_.end() ? 0 : it->second;
  }

 private:
  uint32_t threshold_;
  uint32_t slow_threshold_;
  uint32_t eviction_cooldown_;
  uint32_t cooldown_left_ = 0;
  std::unordered_map<PeerId, uint32_t> counts_;
  std::unordered_map<PeerId, uint32_t> slow_counts_;
  std::unordered_set<PeerId> demoted_;
};

}  // namespace repair
}  // namespace pgrid
