#include "repair/repair.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/digest.h"
#include "util/macros.h"

namespace pgrid {
namespace repair {

namespace {

uint64_t PairKey(PeerId a, PeerId b) {
  const PeerId lo = std::min(a, b);
  const PeerId hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

}  // namespace

RepairEngine::RepairEngine(Grid* grid, const ExchangeConfig& exchange_config,
                           const RepairConfig& config, SearchEngine* search,
                           const OnlineModel* online, Rng* rng)
    : grid_(grid),
      exchange_config_(exchange_config),
      config_(config),
      search_(search),
      online_(online),
      rng_(rng) {
  PGRID_CHECK(config.Validate().ok());
}

bool RepairEngine::Probe(PeerId from, PeerId to) {
  if (probe_fn_) return probe_fn_(from, to);
  return IsLive(to) && (online_ == nullptr || online_->IsOnline(to, rng_));
}

bool RepairEngine::SatisfiesRefProperty(const PeerState& a, size_t level,
                                        PeerId target) const {
  if (target == a.id() || target >= grid_->size()) return false;
  const PeerState& t = grid_->peer(target);
  return t.depth() >= level &&
         a.path().CommonPrefixLength(t.path()) >= level - 1 &&
         t.PathBit(level) == ComplementBit(a.PathBit(level));
}

void RepairEngine::ProbeAndEvict(PeerState& peer, RepairTick* tick) {
  // Each referenced peer is probed once per observer per round, in first-seen
  // order, no matter how many levels list it.
  std::vector<PeerId> targets;
  for (size_t level = 1; level <= peer.depth(); ++level) {
    for (PeerId r : peer.RefsAt(level)) {
      if (std::find(targets.begin(), targets.end(), r) == targets.end()) {
        targets.push_back(r);
      }
    }
  }
  SuspicionTable& suspicion = suspicion_[peer.id()];
  obs::MetricsRegistry& m = grid_->metrics();
  for (PeerId t : targets) {
    if (Probe(peer.id(), t)) {
      grid_->stats().Record(MessageType::kControl);
      m.GetCounter("repair.probes")->Increment();
      ++tick->probes;
      suspicion.NoteSuccess(t);
      if (latency_fn_) {
        // Gray-failure detection: the probe arrived, but slowly. Slow evidence
        // only ever demotes (routing deprioritization) -- a slow replica still
        // holds valid data, so it must not be evicted as dead.
        if (latency_fn_(peer.id(), t) > config_.probe_timeout) {
          m.GetCounter("repair.slow_probes")->Increment();
          ++tick->slow_probes;
          if (suspicion.NoteSlow(t)) {
            m.GetCounter("repair.slow_demotions")->Increment();
            ++tick->demotions;
          }
        } else {
          suspicion.NoteFast(t);
        }
      }
      // A delivered probe also announces the prober: the target may adopt it
      // into an under-full level (the reference property is symmetric between
      // complementary subtrees). This is how a live peer that lost all of its
      // inbound references re-enters the routing fabric.
      PeerState& target = grid_->peer(t);
      for (size_t level = 1; level <= target.depth(); ++level) {
        if (target.RefsAt(level).size() < exchange_config_.refmax &&
            SatisfiesRefProperty(target, level, peer.id()) &&
            target.AddRefAt(level, peer.id())) {
          m.GetCounter("repair.recruitments")->Increment();
          ++tick->recruited;
        }
      }
      continue;
    }
    // An undelivered probe costs nothing on the simulated wire.
    m.GetCounter("repair.probe_failures")->Increment();
    ++tick->probe_failures;
    if (!suspicion.NoteFailure(t)) continue;
    uint64_t removed = 0;
    for (size_t level = 1; level <= peer.depth(); ++level) {
      removed += peer.RemoveRefAt(level, t);
    }
    m.GetCounter("repair.evictions")->Increment(removed);
    tick->evictions += removed;
  }
}

void RepairEngine::RecruitReferences(PeerState& peer, RepairTick* tick) {
  bool any_underfull = false;
  for (size_t level = 1; level <= peer.depth(); ++level) {
    if (peer.RefsAt(level).size() < exchange_config_.refmax) {
      any_underfull = true;
      break;
    }
  }
  if (!any_underfull) return;

  obs::MetricsRegistry& m = grid_->metrics();
  // Vantage points for the recruitment lookups: the peer itself, then its live
  // buddies and live references. Cycling over several start peers keeps one
  // unlucky local routing table from starving the whole repair.
  std::vector<PeerId> vantages = {peer.id()};
  auto add_vantage = [&](PeerId v) {
    if (IsLive(v) &&
        std::find(vantages.begin(), vantages.end(), v) == vantages.end()) {
      vantages.push_back(v);
    }
  };
  for (PeerId b : peer.buddies()) add_vantage(b);
  for (size_t level = 1; level <= peer.depth(); ++level) {
    for (PeerId r : peer.RefsAt(level)) add_vantage(r);
  }
  // Bootstrap entry points: a peer whose reference levels were hollowed out by
  // eviction cannot route its own lookups any more. Like any search client it
  // may enter the grid through an arbitrary online peer, so a few random live
  // vantages break the can't-route-because-empty deadlock.
  for (size_t i = 0; i < config_.recruit_attempts; ++i) {
    const std::optional<PeerId> v = search_->RandomOnlinePeer();
    if (v.has_value() && IsLive(*v)) add_vantage(*v);
  }

  for (size_t level = 1; level <= peer.depth(); ++level) {
    auto adopt = [&](PeerId candidate) {
      if (peer.RefsAt(level).size() >= exchange_config_.refmax) return false;
      if (!IsLive(candidate) || !SatisfiesRefProperty(peer, level, candidate) ||
          !peer.AddRefAt(level, candidate)) {
        return false;
      }
      m.GetCounter("repair.recruitments")->Increment();
      ++tick->recruited;
      return true;
    };
    for (size_t attempt = 0; attempt < config_.recruit_attempts; ++attempt) {
      if (peer.RefsAt(level).size() >= exchange_config_.refmax) break;
      // Aim into the complementary subtree of this level: the shared prefix,
      // the flipped level bit, then random padding to a full-depth key.
      KeyPath key =
          peer.path().Prefix(level - 1).Append(ComplementBit(peer.PathBit(level)));
      while (key.length() < exchange_config_.maxl) key.PushBack(rng_->Bit());
      // Try the vantages in order until one can route the lookup: local ones
      // first, the random bootstrap entries when local routing is hollowed out.
      QueryResult r;
      for (size_t v = 0; v < vantages.size() && !r.found; ++v) {
        r = search_->Query(vantages[v], key);
      }
      if (!r.found) continue;
      // The responder's buddies cover the same subtree: try them whether or
      // not the responder itself was new. At the deepest level the lookup key
      // is fully determined (no random padding), so every attempt routes to
      // the same few replicas; an already-referenced responder is then the
      // only doorway to the rest of its group.
      adopt(r.responder);
      for (PeerId b : grid_->peer(r.responder).buddies()) adopt(b);
      // Registration is symmetric: the recruiting peer sits in the responder's
      // complementary subtree at this level, so it offers itself back. This is
      // how a peer that nobody references re-enters the routing fabric.
      PeerState& resp = grid_->peer(r.responder);
      if (resp.depth() >= level &&
          resp.RefsAt(level).size() < exchange_config_.refmax &&
          SatisfiesRefProperty(resp, level, peer.id()) &&
          resp.AddRefAt(level, peer.id())) {
        m.GetCounter("repair.recruitments")->Increment();
        ++tick->recruited;
      }
    }
  }
}

void RepairEngine::SyncBuddies(PeerState& peer,
                               std::unordered_set<uint64_t>* synced,
                               RepairTick* tick) {
  obs::MetricsRegistry& m = grid_->metrics();
  const std::vector<PeerId> buddies = peer.buddies();
  for (PeerId b_id : buddies) {
    if (b_id >= grid_->size() || !IsLive(b_id)) continue;
    // Buddy lists may be asymmetric, so dedupe by unordered pair: each pair
    // reconciles at most once per round regardless of which side lists whom.
    if (!synced->insert(PairKey(peer.id(), b_id)).second) continue;
    if (!Probe(peer.id(), b_id)) continue;
    PeerState& buddy = grid_->peer(b_id);

    // One digest exchange per session: 2 x (8-byte digest) on the wire.
    grid_->stats().Record(MessageType::kControl);
    m.GetCounter("repair.sync_sessions")->Increment();
    m.GetCounter("repair.sync_bytes")->Increment(16);
    ++tick->sync_sessions;

    const uint64_t key = PairKey(peer.id(), b_id);
    if (sim::IndexDigest(peer.index()) != sim::IndexDigest(buddy.index())) {
      ++tick->syncs_diverged;
      m.GetHistogram("repair.divergence_age", obs::CountBounds())
          ->Record(rounds_ - last_in_sync_[key]);
      // Max-version merge in both directions leaves both replicas holding the
      // union of their entry sets at the newest version of each.
      const uint64_t moved = peer.index().MergeFrom(buddy.index()) +
                             buddy.index().MergeFrom(peer.index());
      grid_->stats().Record(MessageType::kDataTransfer, moved);
      m.GetCounter("repair.entries_reconciled")->Increment(moved);
      m.GetCounter("repair.sync_bytes")->Increment(32 * moved);
      tick->entries_reconciled += moved;
    }
    last_in_sync_[key] = rounds_;

    // Replicas also pool routing knowledge: each side offers its live valid
    // references to the other, which refills under-full levels without a lookup.
    PeerState* pair[2] = {&peer, &buddy};
    for (int dir = 0; dir < 2; ++dir) {
      const PeerState& src = *pair[dir];
      PeerState& dst = *pair[1 - dir];
      const size_t levels = std::min(src.depth(), dst.depth());
      for (size_t level = 1; level <= levels; ++level) {
        for (PeerId r : src.RefsAt(level)) {
          if (dst.RefsAt(level).size() >= exchange_config_.refmax) break;
          if (IsLive(r) && SatisfiesRefProperty(dst, level, r) &&
              dst.AddRefAt(level, r)) {
            m.GetCounter("repair.recruitments")->Increment();
            ++tick->recruited;
          }
        }
      }
      // Replica membership gossip: buddy lists converge toward the full
      // replica group of the leaf, so recruitment's "responder plus buddies"
      // fan-out eventually sees every live replica.
      for (PeerId nb : src.buddies()) {
        if (nb != dst.id() && nb < grid_->size() && IsLive(nb) &&
            grid_->peer(nb).path() == dst.path()) {
          dst.AddBuddy(nb, exchange_config_.buddymax);
        }
      }
    }
  }
}

RepairTick RepairEngine::RejoinSync(PeerId peer) {
  while (suspicion_.size() < grid_->size()) {
    suspicion_.emplace_back(config_.suspicion_threshold, config_.slow_threshold,
                            config_.eviction_cooldown);
  }
  RepairTick tick;
  if (!IsLive(peer)) return tick;
  grid_->metrics().GetCounter("repair.rejoin_syncs")->Increment();
  std::unordered_set<uint64_t> synced;
  SyncBuddies(grid_->peer(peer), &synced, &tick);
  return tick;
}

RepairTick RepairEngine::Tick() {
  ++rounds_;
  while (suspicion_.size() < grid_->size()) {
    suspicion_.emplace_back(config_.suspicion_threshold, config_.slow_threshold,
                            config_.eviction_cooldown);
  }
  RepairTick tick;
  std::unordered_set<uint64_t> synced;
  for (PeerId id = 0; id < grid_->size(); ++id) {
    if (!IsLive(id)) continue;
    PeerState& peer = grid_->peer(id);
    ProbeAndEvict(peer, &tick);
    if (config_.recruit) RecruitReferences(peer, &tick);
    if (config_.anti_entropy) SyncBuddies(peer, &synced, &tick);
  }
  return tick;
}

RepairEngine::ReconcileOutcome RepairEngine::ReconcileUntilConverged(
    size_t max_rounds) {
  ReconcileOutcome out;
  obs::MetricsRegistry& m = grid_->metrics();
  for (size_t round = 0; round < max_rounds; ++round) {
    const RepairTick tick = Tick();
    m.GetCounter("repair.reconcile_rounds")->Increment();
    ++out.rounds;
    out.sync_sessions += tick.sync_sessions;
    out.entries_reconciled += tick.entries_reconciled;
    if (tick.syncs_diverged == 0) {
      out.converged = true;
      break;
    }
  }
  return out;
}

ReadRepairOutcome RepairEngine::ReadRepair(const KeyPath& key, ItemId item,
                                           const ReliableReadConfig& read_config) {
  ReadRepairOutcome out;
  obs::MetricsRegistry& m = grid_->metrics();
  std::vector<std::pair<PeerId, uint64_t>> answers;  // distinct responders
  for (size_t attempt = 0;
       attempt < read_config.max_attempts && answers.size() < read_config.quorum;
       ++attempt) {
    const std::optional<PeerId> start = search_->RandomOnlinePeer();
    if (!start.has_value()) break;
    const QueryResult r = search_->Query(*start, key);
    if (!r.found || !IsLive(r.responder)) continue;
    const auto seen = [&](const std::pair<PeerId, uint64_t>& a) {
      return a.first == r.responder;
    };
    if (std::find_if(answers.begin(), answers.end(), seen) != answers.end()) {
      continue;
    }
    answers.push_back(
        {r.responder, grid_->peer(r.responder).index().LatestVersionOf(item)});
  }
  if (answers.empty()) return out;

  // Majority decision; ties break toward the higher (newer) version.
  uint64_t best = 0;
  size_t best_votes = 0;
  for (const auto& [responder, version] : answers) {
    size_t votes = 0;
    for (const auto& other : answers) votes += other.second == version;
    if (votes > best_votes || (votes == best_votes && version > best)) {
      best = version;
      best_votes = votes;
    }
  }
  out.decided = answers.size() >= read_config.quorum;
  out.version = best;

  // The read doubles as repair: every responder that answered with a minority
  // version is patched to the majority one.
  for (const auto& [responder, version] : answers) {
    if (version == best) continue;
    ++out.stale_replicas;
    const uint64_t patched =
        grid_->peer(responder).index().ApplyVersion(item, best);
    if (patched == 0) continue;
    grid_->stats().Record(MessageType::kControl);
    m.GetCounter("repair.read_repairs")->Increment();
    out.repaired_entries += patched;
  }
  return out;
}

}  // namespace repair
}  // namespace pgrid
