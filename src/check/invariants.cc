#include "check/invariants.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "key/key_path.h"
#include "sim/message_stats.h"

namespace pgrid {
namespace check {
namespace {

/// Collects violations up to the configured cap.
class Collector {
 public:
  explicit Collector(const InvariantOptions& options, InvariantReport* report)
      : options_(options), report_(report) {}

  bool full() const { return report_->truncated; }

  void Add(Category category, PeerId peer, size_t level, std::string detail) {
    if (report_->violations.size() >= options_.max_violations) {
      report_->truncated = true;
      return;
    }
    report_->violations.push_back(
        Violation{category, peer, level, std::move(detail)});
  }

 private:
  const InvariantOptions& options_;
  InvariantReport* report_;
};

std::string Fmt(const char* format, ...) {
  va_list args;
  va_start(args, format);
  char buf[256];
  vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return std::string(buf);
}

std::string PathStr(const KeyPath& path) {
  std::string s = path.ToString();
  return s.empty() ? "<root>" : s;
}

// --- Per-peer access structure (paper Sec. 2: the (p_i, R_i) sequence). ---

bool LiveAt(const std::vector<uint8_t>* dead, PeerId p) {
  // Peers beyond the mask joined after it was captured, hence are live.
  return dead == nullptr || p >= dead->size() || (*dead)[p] == 0;
}

void CheckStructure(const Grid& grid, const ExchangeConfig& config,
                    const InvariantOptions& options, Collector* out) {
  for (const PeerState& a : grid) {
    if (out->full()) return;
    if (a.depth() > config.maxl) {
      out->Add(Category::kMaxl, a.id(), 0,
               Fmt("path %s has %zu bits, maxl is %zu", PathStr(a.path()).c_str(),
                   a.depth(), config.maxl));
    }
    for (size_t level = 1; level <= a.depth(); ++level) {
      const auto refs = a.RefsAt(level);
      if (refs.size() > config.refmax) {
        out->Add(Category::kRefmax, a.id(), level,
                 Fmt("%zu references at level %zu, refmax is %zu", refs.size(),
                     level, config.refmax));
      }
      const int want = ComplementBit(a.PathBit(level));
      for (PeerId t : refs) {
        if (t == a.id()) {
          out->Add(Category::kSelfReference, a.id(), level,
                   Fmt("level-%zu reference points at the peer itself", level));
          continue;
        }
        if (t >= grid.size()) {
          out->Add(Category::kReference, a.id(), level,
                   Fmt("level-%zu reference targets unknown peer %u", level, t));
          continue;
        }
        // A dead peer's reference property cannot be judged from its in-memory
        // state: a sim kill step wipes it (the durable copy lives on disk, see
        // StepKind::kKill). Dangling references to dead peers are the *strict*
        // convergence check's business (kDeadReference), not a structure error.
        if (!LiveAt(options.dead, t)) continue;
        const PeerState& target = grid.peer(t);
        // Reference property: agree on the first level-1 bits, complement at
        // position `level`. A target too shallow to even have that bit cannot
        // satisfy it either.
        if (target.depth() < level ||
            a.path().CommonPrefixLength(target.path()) < level - 1 ||
            target.PathBit(level) != want) {
          out->Add(
              Category::kReference, a.id(), level,
              Fmt("level-%zu ref to peer %u: path %s does not complement %s",
                  level, t, PathStr(target.path()).c_str(),
                  PathStr(a.path()).c_str()));
        }
      }
    }
    for (PeerId b : a.buddies()) {
      if (b == a.id()) {
        out->Add(Category::kBuddy, a.id(), 0, "peer lists itself as a buddy");
        continue;
      }
      if (b < grid.size() && !LiveAt(options.dead, b)) continue;  // see above
      if (b >= grid.size() || grid.peer(b).path() != a.path()) {
        out->Add(Category::kBuddy, a.id(), 0,
                 Fmt("buddy %u does not share path %s", b,
                     PathStr(a.path()).c_str()));
      }
    }
  }
}

// --- Key-space coverage (the union of I(p.path) over all peers is [0,1)). ---

struct TrieNode {
  bool terminal = false;  // some peer's path ends exactly here
  std::unique_ptr<TrieNode> child[2];
};

bool Covered(const TrieNode& node) {
  if (node.terminal) return true;
  return node.child[0] && node.child[1] && Covered(*node.child[0]) &&
         Covered(*node.child[1]);
}

/// Reports the *maximal* uncovered prefixes under `node` (an uncovered subtree is
/// one hole, not one hole per leaf).
void ReportHoles(const TrieNode& node, const std::string& prefix,
                 Collector* out) {
  if (out->full() || Covered(node)) return;
  for (int bit = 0; bit < 2; ++bit) {
    const std::string sub = prefix + static_cast<char>('0' + bit);
    if (!node.child[bit]) {
      out->Add(Category::kCoverage, kInvalidPeer, 0,
               Fmt("no peer path covers prefix %s", sub.c_str()));
    } else {
      ReportHoles(*node.child[bit], sub, out);
    }
  }
}

void CheckCoverage(const Grid& grid, Collector* out) {
  if (grid.size() == 0) return;
  TrieNode root;
  for (const PeerState& p : grid) {
    TrieNode* node = &root;
    const KeyPath& path = p.path();
    for (size_t i = 0; i < path.length(); ++i) {
      const int bit = path.bit(i);
      if (!node->child[bit]) node->child[bit] = std::make_unique<TrieNode>();
      node = node->child[bit].get();
    }
    node->terminal = true;
  }
  ReportHoles(root, "", out);
}

// --- Data placement and replica agreement (Sec. 2: D restricted to I(path)). ---

void CheckPlacement(const Grid& grid, Collector* out) {
  for (const PeerState& p : grid) {
    if (out->full()) return;
    p.index().ForEach([&p, out](const IndexEntry& e) {
      if (!PathCoversKey(p.path(), e.key)) {
        out->Add(Category::kPlacement, p.id(), 0,
                 Fmt("entry (holder=%u item=%llu key=%s) outside path %s", e.holder,
                     static_cast<unsigned long long>(e.item_id),
                     PathStr(e.key).c_str(), PathStr(p.path()).c_str()));
      }
    });
  }
}

void CheckReplicaAgreement(const Grid& grid, Collector* out) {
  // First-seen key per (holder, item): every replica's entry must agree on the
  // key. Versions legitimately lag (updates propagate asynchronously); keys never
  // change after insertion.
  std::map<std::pair<PeerId, ItemId>, std::pair<KeyPath, PeerId>> first;
  for (const PeerState& p : grid) {
    if (out->full()) return;
    p.index().ForEach([&first, &p, out](const IndexEntry& e) {
      auto [it, inserted] = first.try_emplace(std::make_pair(e.holder, e.item_id),
                                              e.key, p.id());
      if (!inserted && it->second.first != e.key) {
        out->Add(Category::kReplicaDesync, p.id(), 0,
                 Fmt("entry (holder=%u item=%llu) has key %s here but %s at peer "
                     "%u",
                     e.holder, static_cast<unsigned long long>(e.item_id),
                     PathStr(e.key).c_str(),
                     PathStr(it->second.first).c_str(), it->second.second));
      }
    });
  }
}

// --- Repair convergence (the self-healing target, docs/robustness.md). ---

void CheckRepairConvergence(const Grid& grid, const ExchangeConfig& config,
                            const InvariantOptions& options, Collector* out) {
  const std::vector<uint8_t>* dead = options.dead;
  std::set<std::pair<PeerId, PeerId>> buddy_pairs;
  for (const PeerState& a : grid) {
    if (out->full()) return;
    if (!LiveAt(dead, a.id())) continue;

    for (size_t level = 1; level <= a.depth(); ++level) {
      size_t live_refs = 0;
      for (PeerId t : a.RefsAt(level)) {
        if (!LiveAt(dead, t)) {
          out->Add(Category::kDeadReference, a.id(), level,
                   Fmt("level-%zu reference still points at dead peer %u", level,
                       t));
        } else {
          ++live_refs;
        }
      }
      // The demand is capped by supply: a level can only be as full as the
      // number of live peers that satisfy its reference property at all.
      const int want = ComplementBit(a.PathBit(level));
      size_t candidates = 0;
      for (const PeerState& t : grid) {
        if (t.id() == a.id() || !LiveAt(dead, t.id())) continue;
        if (t.depth() >= level &&
            a.path().CommonPrefixLength(t.path()) >= level - 1 &&
            t.PathBit(level) == want) {
          ++candidates;
        }
      }
      const size_t required = std::min(
          {config.refmax, options.repair_min_live_refs, candidates});
      if (live_refs < required) {
        out->Add(Category::kRefUnderfull, a.id(), level,
                 Fmt("%zu live references at level %zu, %zu required "
                     "(%zu live candidates exist)",
                     live_refs, level, required, candidates));
      }
    }

    // Live buddy pairs must hold identical entry sets at identical versions.
    // Buddy lists may be asymmetric, so each unordered pair is compared once.
    for (PeerId b : a.buddies()) {
      if (b >= grid.size() || !LiveAt(dead, b) ||
          !buddy_pairs
               .insert({std::min(a.id(), b), std::max(a.id(), b)})
               .second) {
        continue;
      }
      const PeerState& buddy = grid.peer(b);
      const PeerState* sides[2] = {&a, &buddy};
      for (int dir = 0; dir < 2 && !out->full(); ++dir) {
        sides[dir]->index().ForEach([&](const IndexEntry& e) {
          const IndexEntry* other =
              sides[1 - dir]->index().Find(e.holder, e.item_id);
          if (other == nullptr) {
            out->Add(Category::kReplicaStale, sides[1 - dir]->id(), 0,
                     Fmt("buddy of peer %u misses entry (holder=%u item=%llu)",
                         sides[dir]->id(), e.holder,
                         static_cast<unsigned long long>(e.item_id)));
          } else if (other->version < e.version) {
            out->Add(Category::kReplicaStale, sides[1 - dir]->id(), 0,
                     Fmt("entry (holder=%u item=%llu) at version %llu, buddy %u "
                         "has %llu",
                         e.holder, static_cast<unsigned long long>(e.item_id),
                         static_cast<unsigned long long>(other->version),
                         sides[dir]->id(),
                         static_cast<unsigned long long>(e.version)));
          }
        });
      }
    }
  }
}

// --- Partition consistency (docs/robustness.md macro faults). ---

void CheckPartitionLeak(const Grid& grid, const InvariantOptions& options,
                        Collector* out) {
  const PartitionView& pv = *options.partition;
  if (pv.items.empty()) return;
  std::map<ItemId, int> origin;
  for (const PartitionView::Quarantined& q : pv.items) {
    origin[q.item] = q.origin_group;
  }
  auto group_of = [&pv](PeerId p) {
    return p < pv.group.size() ? pv.group[p] : -1;
  };
  for (const PeerState& p : grid) {
    if (out->full()) return;
    if (!LiveAt(options.dead, p.id())) continue;
    const int g = group_of(p.id());
    if (g < 0) continue;  // joined after the view was taken
    auto leak = [&](const IndexEntry& e) {
      auto it = origin.find(e.item_id);
      if (it != origin.end() && it->second != g) {
        out->Add(Category::kPartitionLeak, p.id(), 0,
                 Fmt("entry (holder=%u item=%llu) quarantined in group %d "
                     "present at group-%d peer",
                     e.holder, static_cast<unsigned long long>(e.item_id),
                     it->second, g));
      }
    };
    p.index().ForEach(leak);
    for (const IndexEntry& e : p.foreign_entries()) leak(e);
  }
}

void CheckHealConvergence(const Grid& grid, const InvariantOptions& options,
                          Collector* out) {
  // After the heal, anti-entropy must have restored agreement on exactly the
  // items written during the divergence. The general buddy-agreement check
  // (kReplicaStale) covers all entries; this one re-classifies disagreement on
  // quarantined items as kHealDivergence so a macro scenario can assert on the
  // partition-heal path specifically.
  const PartitionView& pv = *options.partition;
  if (pv.items.empty()) return;
  const std::vector<uint8_t>* dead = options.dead;
  std::set<std::pair<PeerId, PeerId>> buddy_pairs;
  for (const PeerState& a : grid) {
    if (out->full()) return;
    if (!LiveAt(dead, a.id())) continue;
    for (PeerId b : a.buddies()) {
      if (b >= grid.size() || !LiveAt(dead, b) ||
          !buddy_pairs.insert({std::min(a.id(), b), std::max(a.id(), b)})
               .second) {
        continue;
      }
      const PeerState& buddy = grid.peer(b);
      for (const PartitionView::Quarantined& q : pv.items) {
        const IndexEntry* mine = a.index().Find(q.holder, q.item);
        const IndexEntry* theirs = buddy.index().Find(q.holder, q.item);
        if (mine == nullptr && theirs == nullptr) continue;  // neither replica
        if (mine == nullptr || theirs == nullptr) {
          out->Add(Category::kHealDivergence,
                   mine == nullptr ? a.id() : buddy.id(), 0,
                   Fmt("post-heal: buddies %u/%u disagree on presence of "
                       "partition-era entry (holder=%u item=%llu)",
                       a.id(), b, q.holder,
                       static_cast<unsigned long long>(q.item)));
        } else if (mine->version != theirs->version) {
          out->Add(Category::kHealDivergence, a.id(), 0,
                   Fmt("post-heal: partition-era entry (holder=%u item=%llu) "
                       "at version %llu here, %llu at buddy %u",
                       q.holder, static_cast<unsigned long long>(q.item),
                       static_cast<unsigned long long>(mine->version),
                       static_cast<unsigned long long>(theirs->version), b));
        }
      }
    }
  }
}

// --- Ledger agreement (docs/observability.md metric-name mapping). ---

uint64_t CounterOr0(const obs::RegistrySnapshot& snap, std::string_view name) {
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

void CheckLedger(const Grid& grid, Collector* out) {
  const obs::RegistrySnapshot snap = grid.metrics().Snapshot();
  const MessageStats& stats = grid.stats();
  struct Row {
    MessageType type;
    uint64_t metric_sum;
    const char* expression;
  };
  const Row rows[] = {
      {MessageType::kExchange, CounterOr0(snap, "exchange.count"),
       "exchange.count"},
      {MessageType::kQuery, CounterOr0(snap, "search.messages"),
       "search.messages"},
      {MessageType::kUpdate, CounterOr0(snap, "update.messages"),
       "update.messages"},
      {MessageType::kDataTransfer,
       CounterOr0(snap, "exchange.entries_moved") +
           CounterOr0(snap, "insert.entries_installed") +
           CounterOr0(snap, "churn.entries_handed_over") +
           CounterOr0(snap, "repair.entries_reconciled"),
       "exchange.entries_moved + insert.entries_installed + "
       "churn.entries_handed_over + repair.entries_reconciled"},
      {MessageType::kControl,
       CounterOr0(snap, "churn.handovers") + CounterOr0(snap, "repair.probes") +
           CounterOr0(snap, "repair.sync_sessions") +
           CounterOr0(snap, "repair.read_repairs"),
       "churn.handovers + repair.probes + repair.sync_sessions + "
       "repair.read_repairs"},
  };
  for (const Row& row : rows) {
    const uint64_t ledger = stats.count(row.type);
    if (ledger != row.metric_sum) {
      out->Add(Category::kLedger, kInvalidPeer, 0,
               Fmt("ledger %s=%llu but metrics %s=%llu",
                   std::string(MessageTypeName(row.type)).c_str(),
                   static_cast<unsigned long long>(ledger), row.expression,
                   static_cast<unsigned long long>(row.metric_sum)));
    }
  }
}

}  // namespace

std::string_view CategoryName(Category c) {
  switch (c) {
    case Category::kReference:
      return "reference";
    case Category::kRefmax:
      return "refmax";
    case Category::kSelfReference:
      return "self-reference";
    case Category::kMaxl:
      return "maxl";
    case Category::kBuddy:
      return "buddy";
    case Category::kCoverage:
      return "coverage";
    case Category::kPlacement:
      return "placement";
    case Category::kReplicaDesync:
      return "replica-desync";
    case Category::kLedger:
      return "ledger";
    case Category::kDeadReference:
      return "dead-reference";
    case Category::kRefUnderfull:
      return "ref-underfull";
    case Category::kReplicaStale:
      return "replica-stale";
    case Category::kPartitionLeak:
      return "partition-leak";
    case Category::kHealDivergence:
      return "heal-divergence";
  }
  return "unknown";
}

size_t InvariantReport::CountOf(Category c) const {
  size_t n = 0;
  for (const Violation& v : violations) {
    if (v.category == c) ++n;
  }
  return n;
}

std::string InvariantReport::ToString() const {
  if (ok()) return "ok\n";
  std::string out;
  for (const Violation& v : violations) {
    out += CategoryName(v.category);
    if (v.peer != kInvalidPeer) out += Fmt(" peer=%u", v.peer);
    if (v.level != 0) out += Fmt(" level=%zu", v.level);
    out += ": ";
    out += v.detail;
    out += '\n';
  }
  if (truncated) out += "... (truncated)\n";
  return out;
}

InvariantReport GridInvariants::Check(const Grid& grid,
                                      const ExchangeConfig& config,
                                      const InvariantOptions& options) {
  InvariantReport report;
  report.peers_checked = grid.size();
  Collector out(options, &report);
  if (options.check_structure) CheckStructure(grid, config, options, &out);
  if (options.check_coverage) CheckCoverage(grid, &out);
  if (options.check_placement) CheckPlacement(grid, &out);
  if (options.check_replica_agreement) CheckReplicaAgreement(grid, &out);
  if (options.check_repair_convergence) {
    CheckRepairConvergence(grid, config, options, &out);
  }
  if (options.partition != nullptr) {
    if (options.partition->active) {
      CheckPartitionLeak(grid, options, &out);
    } else if (options.check_repair_convergence) {
      CheckHealConvergence(grid, options, &out);
    }
  }
  if (options.check_ledger) CheckLedger(grid, &out);
  return report;
}

}  // namespace check
}  // namespace pgrid
