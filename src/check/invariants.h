// Structural invariant checker with machine-readable violation reports.
//
// The paper's correctness argument rests on structural properties the algorithms
// maintain, not on point behaviors: references complement the right bit (Fig. 1),
// the peer paths cover the whole key space via I(k), leaf-index entries live only
// at co-responsible peers, and the simulation ledger agrees with the metrics
// registry. GridStats::CheckInvariants (core/stats.h) reports only the first
// violation as an opaque Status; this subsystem walks the whole grid, classifies
// every violation into a category a test can assert on, and is the check the
// deterministic simulation harness (sim/fuzzer.h) runs at epoch barriers.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "core/grid.h"
#include "sim/types.h"

namespace pgrid {
namespace check {

/// What kind of structural property a violation breaks. Stable identifiers:
/// tests assert on categories, and the fuzzer's repro files name them.
enum class Category : int {
  kReference = 0,     ///< level-l ref does not agree on l-1 bits + complement bit l
  kRefmax = 1,        ///< more than refmax references at one level
  kSelfReference = 2, ///< a peer references itself
  kMaxl = 3,          ///< a path longer than maxl
  kBuddy = 4,         ///< buddy whose path differs (or self-buddy)
  kCoverage = 5,      ///< a subtree of [0,1) no peer path covers
  kPlacement = 6,     ///< leaf-index entry whose key does not overlap the path
  kReplicaDesync = 7, ///< two peers disagree on an entry's key for (holder, item)
  kLedger = 8,        ///< MessageStats ledger disagrees with the metrics registry
  kDeadReference = 9, ///< a live peer still references a dead one
  kRefUnderfull = 10, ///< a live peer's level has fewer live refs than required
  kReplicaStale = 11, ///< live buddies disagree on entry sets or versions
  kPartitionLeak = 12,   ///< partition-era entry present outside its origin group
  kHealDivergence = 13,  ///< post-heal: buddies still disagree on a partition-era item
};

inline constexpr int kNumCategories = 14;

/// Stable display name ("reference", "refmax", ...).
std::string_view CategoryName(Category c);

/// One invariant violation, pinned to the state that breaks it.
struct Violation {
  Category category;
  /// Offending peer, or kInvalidPeer for grid-scope categories (coverage, ledger).
  PeerId peer = kInvalidPeer;
  /// 1-indexed reference level when applicable (reference/refmax), else 0.
  size_t level = 0;
  /// Human-readable explanation with the concrete paths / counts involved.
  std::string detail;
};

/// What the checker needs to know about a network partition (possibly already
/// healed): which group each peer sits in and which items were inserted while
/// the split was active. Those items are *quarantined* -- their entries must not
/// appear outside the origin group while the partition holds
/// (Category::kPartitionLeak), and after the heal every live buddy pair must
/// agree on them (Category::kHealDivergence). The scenario runner builds this
/// view from its `partition` step state.
struct PartitionView {
  /// Group id per PeerId; peers beyond the vector's size are ungrouped (joined
  /// after the view was taken) and exempt from the partition checks.
  std::vector<int> group;

  /// True while the split is in force: run the leak check. False once healed:
  /// run the convergence check instead (under check_repair_convergence).
  bool active = false;

  /// One item inserted during the partition.
  struct Quarantined {
    ItemId item = 0;
    PeerId holder = kInvalidPeer;  ///< the entry holder recorded at insert time
    int origin_group = 0;          ///< group of the inserting client
  };
  std::vector<Quarantined> items;
};

/// Which checks to run and how many violations to collect.
struct InvariantOptions {
  /// Per-peer access structure: reference property, refmax, maxl, buddies.
  bool check_structure = true;

  /// The peer paths cover [0,1): every point of the key space has a responsible
  /// peer. Sound for grids whose membership only grew through exchanges; a
  /// community that lost whole replica groups (crashes) can legitimately fail it,
  /// which is precisely what a churn scenario wants to detect.
  bool check_coverage = true;

  /// Leaf-index entries overlap their holder peer's path (the paper's D ⊆ ADDR x K
  /// restricted to the peer's interval). Parked foreign entries are exempt by
  /// design: they are the explicit not-yet-routable buffer.
  bool check_placement = true;

  /// Any two index entries for the same (holder, item) agree on the key, across
  /// all peers. Versions may differ (pending updates propagate asynchronously);
  /// keys never legitimately do.
  bool check_replica_agreement = true;

  /// The MessageStats ledger and the obs metrics counters agree exactly (the
  /// mapping of docs/observability.md).
  bool check_ledger = true;

  /// Repair convergence (the self-healing target state, docs/robustness.md):
  /// among *live* peers -- liveness given by `dead` -- no reference points at a
  /// dead peer, every reference level holds at least min(refmax,
  /// repair_min_live_refs, live candidate count) live references, and live
  /// buddies hold identical entry sets at identical versions. Off by default:
  /// these are goals of the repair protocol, not invariants of construction.
  bool check_repair_convergence = false;

  /// Liveness mask indexed by PeerId (non-zero = dead), e.g.
  /// ChurnDriver::dead_mask(). Null means everyone is live. Peers beyond the
  /// mask's size are live (joiners appended after the snapshot was taken).
  /// Besides scoping the repair-convergence checks, the mask exempts dead
  /// peers' wiped in-memory state from the structure check: a sim kill step
  /// (StepKind::kKill) persists the victim's state to disk and clears the
  /// PeerState, so a reference or buddy edge pointing at it cannot be judged
  /// against what remains in memory.
  const std::vector<uint8_t>* dead = nullptr;

  /// Minimum live references demanded per level by kRefUnderfull (capped by
  /// refmax and by how many live satisfying peers exist at all). 1 = "the level
  /// still routes"; refmax = "fully healed".
  size_t repair_min_live_refs = 1;

  /// Partition consistency (docs/robustness.md): while `partition->active`,
  /// no quarantined entry may sit at a live peer of a different group
  /// (kPartitionLeak); after the heal -- and only when
  /// check_repair_convergence also holds, i.e. at strict barriers -- every
  /// live buddy pair must agree on the quarantined items (kHealDivergence).
  /// Null skips both checks. The view must outlive the Check call.
  const PartitionView* partition = nullptr;

  /// Stop collecting after this many violations (the report notes truncation).
  size_t max_violations = 64;
};

/// Result of one invariant sweep.
struct InvariantReport {
  std::vector<Violation> violations;
  bool truncated = false;     ///< true iff max_violations was hit
  size_t peers_checked = 0;

  bool ok() const { return violations.empty(); }

  /// Number of collected violations in one category.
  size_t CountOf(Category c) const;

  /// One line per violation: "category peer=3 level=2: <detail>".
  std::string ToString() const;
};

/// Walks a Grid and verifies the structural invariants selected in `options`.
class GridInvariants {
 public:
  static InvariantReport Check(const Grid& grid, const ExchangeConfig& config,
                               const InvariantOptions& options = {});
};

}  // namespace check
}  // namespace pgrid
