#include "storage/leaf_index.h"

namespace pgrid {

bool LeafIndex::InsertOrRefresh(const IndexEntry& entry) {
  auto key = std::make_pair(entry.holder, entry.item_id);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    entries_.emplace(key, entry);
    return true;
  }
  if (entry.version > it->second.version) {
    it->second.version = entry.version;
    it->second.key = entry.key;
    return true;
  }
  return false;
}

const IndexEntry* LeafIndex::Find(PeerId holder, ItemId item_id) const {
  auto it = entries_.find(std::make_pair(holder, item_id));
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<IndexEntry> LeafIndex::Matching(const KeyPath& prefix) const {
  std::vector<IndexEntry> out;
  for (const auto& [k, e] : entries_) {
    if (prefix.IsPrefixOf(e.key)) out.push_back(e);
  }
  return out;
}

uint64_t LeafIndex::LatestVersionOf(ItemId item_id) const {
  uint64_t latest = 0;
  for (const auto& [k, e] : entries_) {
    if (e.item_id == item_id && e.version > latest) latest = e.version;
  }
  return latest;
}

size_t LeafIndex::ApplyVersion(ItemId item_id, uint64_t version) {
  size_t bumped = 0;
  for (auto& [k, e] : entries_) {
    if (e.item_id == item_id && e.version < version) {
      e.version = version;
      ++bumped;
    }
  }
  return bumped;
}

std::vector<IndexEntry> LeafIndex::ExtractNotMatching(const KeyPath& path) {
  std::vector<IndexEntry> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (!PathsOverlap(path, it->second.key)) {
      out.push_back(it->second);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

size_t LeafIndex::MergeFrom(const LeafIndex& other) {
  size_t changed = 0;
  for (const auto& [k, e] : other.entries_) {
    if (InsertOrRefresh(e)) ++changed;
  }
  return changed;
}

std::vector<IndexEntry> LeafIndex::All() const {
  std::vector<IndexEntry> out;
  out.reserve(entries_.size());
  for (const auto& [k, e] : entries_) out.push_back(e);
  return out;
}

size_t LeafIndex::ApproxMemoryBytes() const {
  // Node-based hash table: one pointer per bucket, and per entry a heap node
  // holding the value plus the chain pointer and cached hash the libstdc++
  // node layout carries.
  using Node = std::pair<const std::pair<PeerId, ItemId>, IndexEntry>;
  size_t bytes = entries_.bucket_count() * sizeof(void*) +
                 entries_.size() * (sizeof(Node) + 2 * sizeof(void*));
  for (const auto& [k, e] : entries_) bytes += e.key.ApproxMemoryBytes();
  return bytes;
}

}  // namespace pgrid
