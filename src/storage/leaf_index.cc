#include "storage/leaf_index.h"

#include <utility>

#include "util/macros.h"

namespace pgrid {

namespace {

/// Final avalanche of MurmurHash3; spreads the packed key across all bits so
/// the power-of-two mask below sees a well-mixed value.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

constexpr size_t kMinSlots = 8;

}  // namespace

size_t LeafIndex::HashKey(PeerId holder, ItemId item_id) {
  return static_cast<size_t>(Mix64((static_cast<uint64_t>(holder) << 32) ^
                                   (item_id * 0x9e3779b97f4a7c15ull)));
}

IndexEntry* LeafIndex::FindSlot(PeerId holder, ItemId item_id) {
  if (slots_.empty()) return nullptr;
  const size_t mask = slots_.size() - 1;
  size_t i = HashKey(holder, item_id) & mask;
  while (true) {
    IndexEntry& slot = slots_[i];
    if (slot.holder == kEmptySlot) return nullptr;
    if (slot.holder == holder && slot.item_id == item_id) return &slot;
    i = (i + 1) & mask;
  }
}

void LeafIndex::Rehash(size_t min_slots) {
  size_t cap = kMinSlots;
  while (cap < min_slots) cap <<= 1;
  std::vector<IndexEntry> old = std::move(slots_);
  slots_.clear();
  slots_.resize(cap);  // default IndexEntry has holder == kEmptySlot
  tombstones_ = 0;
  const size_t mask = cap - 1;
  for (IndexEntry& e : old) {
    if (!IsLive(e)) continue;
    size_t i = HashKey(e.holder, e.item_id) & mask;
    while (slots_[i].holder != kEmptySlot) i = (i + 1) & mask;
    slots_[i] = std::move(e);
  }
}

void LeafIndex::ReserveForInsert() {
  if (slots_.empty()) {
    Rehash(kMinSlots);
    return;
  }
  // Keep occupancy (live + tombstones) at or below 7/8 so probe chains stay
  // short. Growing rehashes by live count, which also sweeps tombstones; a
  // table dominated by tombstones rehashes at the same capacity.
  if ((size_ + tombstones_ + 1) * 8 > slots_.size() * 7) {
    Rehash(size_ * 2 >= kMinSlots ? size_ * 2 : kMinSlots);
  }
}

bool LeafIndex::InsertOrRefresh(const IndexEntry& entry) {
  PGRID_CHECK_LT(entry.holder, kTombstoneSlot);
  if (IndexEntry* slot = FindSlot(entry.holder, entry.item_id)) {
    if (entry.version > slot->version) {
      slot->version = entry.version;
      slot->key = entry.key;
      return true;
    }
    return false;
  }
  ReserveForInsert();
  const size_t mask = slots_.size() - 1;
  size_t i = HashKey(entry.holder, entry.item_id) & mask;
  while (IsLive(slots_[i])) i = (i + 1) & mask;
  if (slots_[i].holder == kTombstoneSlot) --tombstones_;
  slots_[i] = entry;
  ++size_;
  return true;
}

const IndexEntry* LeafIndex::Find(PeerId holder, ItemId item_id) const {
  return FindSlot(holder, item_id);
}

bool LeafIndex::Erase(PeerId holder, ItemId item_id) {
  IndexEntry* slot = FindSlot(holder, item_id);
  if (slot == nullptr) return false;
  *slot = IndexEntry{};
  slot->holder = kTombstoneSlot;
  --size_;
  ++tombstones_;
  return true;
}

std::vector<IndexEntry> LeafIndex::Matching(const KeyPath& prefix) const {
  std::vector<IndexEntry> out;
  ForEachMatching(prefix, [&out](const IndexEntry& e) { out.push_back(e); });
  return out;
}

uint64_t LeafIndex::LatestVersionOf(ItemId item_id) const {
  uint64_t latest = 0;
  for (const IndexEntry& e : slots_) {
    if (IsLive(e) && e.item_id == item_id && e.version > latest) latest = e.version;
  }
  return latest;
}

size_t LeafIndex::ApplyVersion(ItemId item_id, uint64_t version) {
  size_t bumped = 0;
  for (IndexEntry& e : slots_) {
    if (IsLive(e) && e.item_id == item_id && e.version < version) {
      e.version = version;
      ++bumped;
    }
  }
  return bumped;
}

std::vector<IndexEntry> LeafIndex::ExtractNotMatching(const KeyPath& path) {
  std::vector<IndexEntry> out;
  for (IndexEntry& e : slots_) {
    if (!IsLive(e) || PathsOverlap(path, e.key)) continue;
    out.push_back(std::move(e));
    e = IndexEntry{};
    e.holder = kTombstoneSlot;
    --size_;
    ++tombstones_;
  }
  return out;
}

size_t LeafIndex::MergeFrom(const LeafIndex& other) {
  if (&other == this) return 0;
  size_t changed = 0;
  for (const IndexEntry& e : other.slots_) {
    if (IsLive(e) && InsertOrRefresh(e)) ++changed;
  }
  return changed;
}

std::vector<IndexEntry> LeafIndex::All() const {
  std::vector<IndexEntry> out;
  out.reserve(size_);
  ForEach([&out](const IndexEntry& e) { out.push_back(e); });
  return out;
}

size_t LeafIndex::ApproxMemoryBytes() const {
  size_t bytes = slots_.capacity() * sizeof(IndexEntry);
  for (const IndexEntry& e : slots_) {
    if (IsLive(e)) bytes += e.key.ApproxMemoryBytes();
  }
  return bytes;
}

}  // namespace pgrid
