#include "storage/peer_codec.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace pgrid {
namespace storage {

void WriteIndexEntry(net::ByteWriter* w, const IndexEntry& e) {
  w->WriteU32(e.holder);
  w->WriteU64(e.item_id);
  w->WriteKeyPath(e.key);
  w->WriteU64(e.version);
}

Result<IndexEntry> ReadIndexEntry(net::ByteReader* r) {
  IndexEntry e;
  PGRID_ASSIGN_OR_RETURN(uint32_t holder, r->ReadU32());
  e.holder = holder;
  PGRID_ASSIGN_OR_RETURN(e.item_id, r->ReadU64());
  PGRID_ASSIGN_OR_RETURN(e.key, r->ReadKeyPath());
  PGRID_ASSIGN_OR_RETURN(e.version, r->ReadU64());
  return e;
}

std::vector<IndexEntry> CanonicalEntries(const LeafIndex& index) {
  // All() iterates the index's hash table, whose order depends on insertion
  // history; sorting makes the encoding canonical, so save -> load -> save
  // round-trips byte-identically.
  std::vector<IndexEntry> entries = index.All();
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              return std::tie(a.holder, a.item_id) <
                     std::tie(b.holder, b.item_id);
            });
  return entries;
}

void WritePeerCore(net::ByteWriter* w, const PeerState& peer) {
  w->WriteKeyPath(peer.path());
  for (size_t level = 1; level <= peer.depth(); ++level) {
    const auto refs = peer.RefsAt(level);
    w->WriteU32(static_cast<uint32_t>(refs.size()));
    for (PeerId r : refs) w->WriteU32(r);
  }
  w->WriteU32(static_cast<uint32_t>(peer.buddies().size()));
  for (PeerId b : peer.buddies()) w->WriteU32(b);
  const std::vector<IndexEntry> entries = CanonicalEntries(peer.index());
  w->WriteU32(static_cast<uint32_t>(entries.size()));
  for (const IndexEntry& e : entries) WriteIndexEntry(w, e);
  w->WriteU32(static_cast<uint32_t>(peer.foreign_entries().size()));
  for (const IndexEntry& e : peer.foreign_entries()) WriteIndexEntry(w, e);
}

Status ReadPeerCore(net::ByteReader* r, const PeerCoreBounds& bounds,
                    PeerState* peer, size_t* path_bits) {
  PGRID_ASSIGN_OR_RETURN(KeyPath peer_path, r->ReadKeyPath());
  if (peer_path.length() > bounds.maxl) {
    return Status::InvalidArgument("peer path exceeds maxl in snapshot");
  }
  for (size_t i = 0; i < peer_path.length(); ++i) {
    peer->AppendPathBit(peer_path.bit(i));
  }
  if (path_bits != nullptr) *path_bits = peer_path.length();
  for (size_t level = 1; level <= peer_path.length(); ++level) {
    PGRID_ASSIGN_OR_RETURN(uint32_t count, r->ReadU32());
    if (count > bounds.peer_id_bound) {
      return Status::InvalidArgument("ref count too large");
    }
    std::vector<PeerId> refs;
    refs.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      PGRID_ASSIGN_OR_RETURN(uint32_t ref, r->ReadU32());
      if (ref >= bounds.peer_id_bound) {
        return Status::InvalidArgument("ref id out of range");
      }
      refs.push_back(ref);
    }
    peer->SetRefsAt(level, std::move(refs));
  }
  PGRID_ASSIGN_OR_RETURN(uint32_t num_buddies, r->ReadU32());
  if (num_buddies > bounds.peer_id_bound) {
    return Status::InvalidArgument("buddy count too large");
  }
  for (uint32_t i = 0; i < num_buddies; ++i) {
    PGRID_ASSIGN_OR_RETURN(uint32_t buddy, r->ReadU32());
    if (buddy >= bounds.peer_id_bound) {
      return Status::InvalidArgument("buddy out of range");
    }
    peer->AddBuddy(buddy);
  }
  PGRID_ASSIGN_OR_RETURN(uint32_t num_entries, r->ReadU32());
  if (num_entries > net::kMaxWireCollection) {
    return Status::InvalidArgument("entry count too large");
  }
  for (uint32_t i = 0; i < num_entries; ++i) {
    PGRID_ASSIGN_OR_RETURN(IndexEntry e, ReadIndexEntry(r));
    peer->index().InsertOrRefresh(e);
  }
  PGRID_ASSIGN_OR_RETURN(uint32_t num_foreign, r->ReadU32());
  if (num_foreign > net::kMaxWireCollection) {
    return Status::InvalidArgument("foreign count too large");
  }
  for (uint32_t i = 0; i < num_foreign; ++i) {
    PGRID_ASSIGN_OR_RETURN(IndexEntry e, ReadIndexEntry(r));
    peer->foreign_entries().push_back(std::move(e));
  }
  return Status::OK();
}

void WritePeerStore(net::ByteWriter* w, const DataStore& store) {
  std::vector<const DataItem*> items;
  items.reserve(store.size());
  for (const auto& [id, item] : store) items.push_back(&item);
  std::sort(items.begin(), items.end(),
            [](const DataItem* a, const DataItem* b) { return a->id < b->id; });
  w->WriteU32(static_cast<uint32_t>(items.size()));
  for (const DataItem* item : items) {
    w->WriteU64(item->id);
    w->WriteKeyPath(item->key);
    w->WriteString(item->payload);
    w->WriteU64(item->version);
  }
}

Status ReadPeerStore(net::ByteReader* r, DataStore* store) {
  PGRID_ASSIGN_OR_RETURN(uint32_t count, r->ReadU32());
  if (count > net::kMaxWireCollection) {
    return Status::InvalidArgument("store item count too large");
  }
  for (uint32_t i = 0; i < count; ++i) {
    DataItem item;
    PGRID_ASSIGN_OR_RETURN(item.id, r->ReadU64());
    PGRID_ASSIGN_OR_RETURN(item.key, r->ReadKeyPath());
    PGRID_ASSIGN_OR_RETURN(item.payload, r->ReadString());
    PGRID_ASSIGN_OR_RETURN(item.version, r->ReadU64());
    store->Upsert(std::move(item));
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace pgrid
