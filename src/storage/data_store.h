// Per-peer local storage of data items.
//
// The items themselves always stay with their original holder; the P-Grid indexes
// *references* to them (see leaf_index.h). DataStore is the holder-side container.

#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "storage/data_item.h"
#include "util/result.h"

namespace pgrid {

/// Container for the data items one peer physically stores, keyed by item id.
class DataStore {
 public:
  /// Inserts a new item. AlreadyExists if an item with the same id is present.
  Status Put(DataItem item);

  /// Inserts or replaces an item with the same id.
  void Upsert(DataItem item);

  /// Looks up an item by id; nullptr if absent.
  const DataItem* Get(ItemId id) const;

  /// Bumps the stored version of item `id` to `version` if it is newer.
  /// NotFound if the item is absent.
  Status ApplyVersion(ItemId id, uint64_t version);

  /// Removes an item; returns true if it was present.
  bool Remove(ItemId id);

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Approximate heap bytes owned: the hash table's bucket array, one node per
  /// item, and each item's own heap (key words, large payloads). Excludes
  /// sizeof(*this).
  size_t ApproxMemoryBytes() const;

  /// All items whose key has `prefix` as a prefix.
  std::vector<const DataItem*> FindByKeyPrefix(const KeyPath& prefix) const;

  /// Iteration support.
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  std::unordered_map<ItemId, DataItem> items_;
};

}  // namespace pgrid
