// Durable per-peer storage: compacted snapshot + WAL tail (docs/storage.md).
//
// PersistenceManager gives each attached peer two files under StorageConfig::dir:
//
//   peer-<id>.snap   canonical full-state snapshot ("PGPS" | u32 version |
//                    core block | store block | u32 crc32(body)), written
//                    atomically (tmp file + rename)
//   peer-<id>.wal    CRC-framed delta records since that snapshot (storage/wal.h)
//
// The commit protocol is shadow-diff: the manager keeps a copy of each peer's
// last persisted state; Commit(peer) diffs the live peer against it and appends
// one typed record per logical change (path growth, reference-level or buddy
// replacement, index put/delete, foreign-buffer replacement, store put/delete).
// This keeps the engines persistence-oblivious -- no mutation hooks thread
// through the protocol code -- at the cost of one retained state copy per
// attached peer.
//
// Every record is *idempotent* and carries absolute state (a kSetPath record
// holds the full path, not the appended bit; a kSetRefs record the full level),
// so replaying a WAL whose prefix was already folded into a snapshot -- the
// window a crash between snapshot rename and WAL truncation leaves behind --
// converges to the same state.
//
// Recovery sequence (Recover):
//   1. read + checksum the snapshot (a corrupt snapshot is a hard error: the
//      atomic rename means it was either fully written or never replaced);
//   2. replay the WAL's longest valid prefix in append order;
//   3. truncate the WAL's torn tail, if any, so future appends extend a clean
//      prefix.
//
// The idiom follows logos-core's consensus/persistence layering: one manager
// per state family over a shared store directory.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/peer_state.h"
#include "storage/storage_config.h"
#include "storage/wal.h"
#include "util/result.h"

namespace pgrid {
namespace storage {

/// Counters one Commit() reports (for benches and tests; not a ledger).
struct CommitInfo {
  uint64_t records = 0;    ///< WAL records appended by this commit
  bool compacted = false;  ///< this commit triggered an automatic compaction
};

/// Persists and recovers PeerState (see file comment for the protocol).
class PersistenceManager {
 public:
  /// `maxl` bounds recovered path lengths (snapshot validation).
  PersistenceManager(StorageConfig config, size_t maxl);
  ~PersistenceManager();

  PersistenceManager(const PersistenceManager&) = delete;
  PersistenceManager& operator=(const PersistenceManager&) = delete;

  /// Starts tracking `peer`: writes a full snapshot of its current state and
  /// resets its WAL. Re-attaching an already-attached peer re-baselines it.
  Status Attach(const PeerState& peer);

  /// Appends delta records for every difference between `peer` and its last
  /// persisted state. Triggers a compaction after StorageConfig::compact_every
  /// commits (0 = never). The peer must be attached.
  Result<CommitInfo> Commit(const PeerState& peer);

  /// Rewrites the snapshot from the shadow state and truncates the WAL.
  Status Compact(PeerId id);

  /// Rebuilds the peer's state from disk: snapshot, then WAL tail, then tail
  /// truncation. Works without a prior Attach in this process (restart path).
  Result<PeerState> Recover(PeerId id);

  /// Stops tracking `id` in memory (shadow copy and WAL handle released). The
  /// on-disk files stay; a later Attach re-baselines them.
  void Detach(PeerId id);

  /// True iff a snapshot file for `id` exists on disk.
  bool HasState(PeerId id) const;

  bool IsAttached(PeerId id) const { return tracked_.count(id) != 0; }

  const StorageConfig& config() const { return config_; }

  std::string SnapshotPath(PeerId id) const;
  std::string WalPath(PeerId id) const;

 private:
  struct Tracked {
    PeerState shadow;
    WalWriter wal;
    uint64_t commits_since_compact = 0;
    explicit Tracked(PeerId id) : shadow(id) {}
  };

  Status WriteSnapshot(const PeerState& peer);
  Result<PeerState> ReadSnapshot(PeerId id) const;

  /// Appends one record per difference between `from` (persisted) and `to`
  /// (live) to `wal`.
  Status AppendDelta(const PeerState& from, const PeerState& to, WalWriter* wal,
                     uint64_t* records);

  StorageConfig config_;
  size_t maxl_;
  std::unordered_map<PeerId, std::unique_ptr<Tracked>> tracked_;
};

}  // namespace storage
}  // namespace pgrid
