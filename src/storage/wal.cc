#include "storage/wal.h"

#include <cerrno>
#include <cstring>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

#include "storage/crc32.h"

namespace pgrid {
namespace storage {

namespace {

constexpr char kWalMagic[4] = {'P', 'G', 'W', 'L'};
constexpr uint32_t kWalVersion = 1;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

Status FsyncFile(std::FILE* f) {
#ifdef _WIN32
  (void)f;
  return Status::OK();
#else
  if (fsync(fileno(f)) != 0) {
    return Status::Internal(std::string("fsync failed: ") + std::strerror(errno));
  }
  return Status::OK();
#endif
}

}  // namespace

Status WalWriter::Open(const std::string& path, SyncMode mode, bool truncate) {
  Close();
  mode_ = mode;
  appended_ = 0;
  if (!truncate) {
    // Append mode: validate an existing header so we never extend a file that
    // is not a WAL (appends after a bogus header would be unrecoverable).
    if (std::FILE* existing = std::fopen(path.c_str(), "rb")) {
      char header[kWalHeaderBytes];
      const size_t got = std::fread(header, 1, sizeof(header), existing);
      std::fclose(existing);
      if (got < sizeof(header) ||
          std::memcmp(header, kWalMagic, sizeof(kWalMagic)) != 0 ||
          GetU32(header + 4) != kWalVersion) {
        return Status::InvalidArgument(path + " is not a P-Grid WAL");
      }
      file_ = std::fopen(path.c_str(), "ab");
      if (file_ == nullptr) {
        return Status::Internal("cannot open " + path + " for appending");
      }
      return Status::OK();
    }
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  std::string header;
  header.append(kWalMagic, sizeof(kWalMagic));
  PutU32(&header, kWalVersion);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    Close();
    return Status::Internal("write of WAL header to " + path + " failed");
  }
  return Sync();
}

Status WalWriter::Append(std::string_view body) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL is not open");
  if (body.size() > kMaxWalRecordBytes) {
    return Status::InvalidArgument("WAL record exceeds the size cap");
  }
  std::string frame;
  frame.reserve(8 + body.size());
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  PutU32(&frame, Crc32(body));
  frame.append(body);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::Internal("WAL append failed");
  }
  ++appended_;
  if (mode_ != SyncMode::kNone) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL is not open");
  if (std::fflush(file_) != 0) return Status::Internal("WAL flush failed");
  if (mode_ == SyncMode::kFsync) return FsyncFile(file_);
  return Status::OK();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<WalContents> ReadWal(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, got);
  std::fclose(f);

  if (data.size() < kWalHeaderBytes ||
      std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0 ||
      GetU32(data.data() + 4) != kWalVersion) {
    return Status::InvalidArgument(path + " is not a P-Grid WAL");
  }

  WalContents out;
  size_t pos = kWalHeaderBytes;
  // Scan record frames until the first one that does not validate; that byte
  // offset is the recovery point.
  while (pos < data.size()) {
    if (data.size() - pos < 8) break;  // short header: torn mid-frame write
    const uint32_t len = GetU32(data.data() + pos);
    const uint32_t crc = GetU32(data.data() + pos + 4);
    if (len > kMaxWalRecordBytes) break;          // implausible length
    if (data.size() - pos - 8 < len) break;        // short body
    const std::string_view body(data.data() + pos + 8, len);
    if (Crc32(body) != crc) break;                 // bit rot / torn body
    out.records.emplace_back(body);
    pos += 8 + len;
  }
  out.valid_bytes = pos;
  out.torn_tail = pos < data.size();
  return out;
}

Status TruncateWal(const std::string& path, uint64_t valid_bytes) {
#ifdef _WIN32
  return Status::Internal("WAL truncation is not supported on this platform");
#else
  if (truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Status::Internal("truncate of " + path +
                            " failed: " + std::strerror(errno));
  }
  return Status::OK();
#endif
}

}  // namespace storage
}  // namespace pgrid
