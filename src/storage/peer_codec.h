// Canonical binary encoding of one peer's protocol state.
//
// Two writers share this codec: the whole-grid snapshot (snapshot/snapshot.h,
// PR 4) and the durable per-peer snapshot (storage/persist.h). Sharing it is
// what makes the durable snapshot *canonical* -- index entries are written
// sorted by (holder, item_id) and store items sorted by id, so
// save -> recover -> save round-trips byte-identically even though LeafIndex
// and DataStore iteration orders depend on mutation history
// (tests/recovery_test.cc pins this).
//
// Layout of the core block (exactly the per-peer block of the "PGRD" grid
// snapshot, byte for byte):
//
//   keypath path
//   per level 1..depth: u32 count, u32 ref ids
//   u32 buddy count, u32 buddy ids
//   u32 entry count, entries sorted by (holder, item_id)
//   u32 foreign count, foreign entries in buffer order
//
// The store block (durable snapshots only; the grid snapshot does not persist
// payloads):
//
//   u32 item count, items sorted by id: u64 id, keypath key, string payload,
//   u64 version

#pragma once

#include <cstdint>
#include <vector>

#include "core/peer_state.h"
#include "net/wire.h"
#include "storage/data_item.h"
#include "storage/data_store.h"
#include "storage/leaf_index.h"
#include "util/result.h"

namespace pgrid {
namespace storage {

/// One index entry: u32 holder, u64 item, keypath key, u64 version.
void WriteIndexEntry(net::ByteWriter* w, const IndexEntry& e);
Result<IndexEntry> ReadIndexEntry(net::ByteReader* r);

/// The index's entries in canonical order: sorted by (holder, item_id).
std::vector<IndexEntry> CanonicalEntries(const LeafIndex& index);

/// Writes the core block for `peer`.
void WritePeerCore(net::ByteWriter* w, const PeerState& peer);

/// Validation bounds for ReadPeerCore. Reference and buddy ids must be below
/// `peer_id_bound`; the path must not exceed `maxl` bits.
struct PeerCoreBounds {
  size_t maxl = 0;
  uint64_t peer_id_bound = 0;
};

/// Reads one core block into `peer`, which must be freshly constructed (empty
/// path, no refs/buddies/entries). Returns the number of path bits installed
/// via `*path_bits` so the caller can keep Grid::AveragePathLength exact.
Status ReadPeerCore(net::ByteReader* r, const PeerCoreBounds& bounds,
                    PeerState* peer, size_t* path_bits);

/// Writes the store block (items sorted by id).
void WritePeerStore(net::ByteWriter* w, const DataStore& store);

/// Reads one store block into `store` (must be empty).
Status ReadPeerStore(net::ByteReader* r, DataStore* store);

}  // namespace storage
}  // namespace pgrid
