#include "storage/persist.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "storage/crc32.h"
#include "storage/peer_codec.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace pgrid {
namespace storage {

namespace {

constexpr char kSnapMagic[4] = {'P', 'G', 'P', 'S'};
constexpr uint32_t kSnapVersion = 1;

/// WAL record types. Every record carries absolute state for its slice (full
/// path, full reference level, full buddy list, one whole entry/item), which is
/// what makes replay idempotent -- see the file comment in persist.h.
enum RecordType : uint8_t {
  kSetPath = 1,
  kSetRefs = 2,
  kSetBuddies = 3,
  kIndexPut = 4,
  kIndexDelete = 5,
  kSetForeign = 6,
  kStorePut = 7,
  kStoreDelete = 8,
};

bool SpanEquals(Span<PeerId> a, Span<PeerId> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

Status ApplyRecord(std::string_view body, PeerState* peer) {
  net::ByteReader r(body);
  PGRID_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
  switch (type) {
    case kSetPath: {
      PGRID_ASSIGN_OR_RETURN(KeyPath path, r.ReadKeyPath());
      // Paths only ever grow (core/peer_state.h); the record's path must
      // extend the state replayed so far. Anything else is corruption that
      // slipped past the CRC, which we refuse to apply.
      if (peer->path().length() > path.length() ||
          !peer->path().IsPrefixOf(path)) {
        return Status::InvalidArgument("kSetPath record does not extend path");
      }
      for (size_t i = peer->depth(); i < path.length(); ++i) {
        peer->AppendPathBit(path.bit(i));
      }
      break;
    }
    case kSetRefs: {
      PGRID_ASSIGN_OR_RETURN(uint32_t level, r.ReadU32());
      PGRID_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
      if (level == 0 || level > peer->depth()) {
        return Status::InvalidArgument("kSetRefs level out of range");
      }
      if (count > net::kMaxWireCollection) {
        return Status::InvalidArgument("kSetRefs count too large");
      }
      std::vector<PeerId> refs;
      refs.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        PGRID_ASSIGN_OR_RETURN(uint32_t ref, r.ReadU32());
        refs.push_back(ref);
      }
      peer->SetRefsAt(level, std::move(refs));
      break;
    }
    case kSetBuddies: {
      PGRID_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
      if (count > net::kMaxWireCollection) {
        return Status::InvalidArgument("kSetBuddies count too large");
      }
      peer->ClearBuddies();
      for (uint32_t i = 0; i < count; ++i) {
        PGRID_ASSIGN_OR_RETURN(uint32_t buddy, r.ReadU32());
        peer->AddBuddy(buddy);
      }
      break;
    }
    case kIndexPut: {
      PGRID_ASSIGN_OR_RETURN(IndexEntry e, ReadIndexEntry(&r));
      // Exact put, not max-version refresh: the diff layer emits a record
      // whenever key OR version changed, including legal same-version key
      // rewrites, so replay must overwrite unconditionally.
      peer->index().Erase(e.holder, e.item_id);
      peer->index().InsertOrRefresh(e);
      break;
    }
    case kIndexDelete: {
      PGRID_ASSIGN_OR_RETURN(uint32_t holder, r.ReadU32());
      PGRID_ASSIGN_OR_RETURN(ItemId item, r.ReadU64());
      peer->index().Erase(holder, item);
      break;
    }
    case kSetForeign: {
      PGRID_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
      if (count > net::kMaxWireCollection) {
        return Status::InvalidArgument("kSetForeign count too large");
      }
      peer->foreign_entries().clear();
      for (uint32_t i = 0; i < count; ++i) {
        PGRID_ASSIGN_OR_RETURN(IndexEntry e, ReadIndexEntry(&r));
        peer->foreign_entries().push_back(std::move(e));
      }
      break;
    }
    case kStorePut: {
      DataItem item;
      PGRID_ASSIGN_OR_RETURN(item.id, r.ReadU64());
      PGRID_ASSIGN_OR_RETURN(item.key, r.ReadKeyPath());
      PGRID_ASSIGN_OR_RETURN(item.payload, r.ReadString());
      PGRID_ASSIGN_OR_RETURN(item.version, r.ReadU64());
      peer->store().Upsert(std::move(item));
      break;
    }
    case kStoreDelete: {
      PGRID_ASSIGN_OR_RETURN(ItemId id, r.ReadU64());
      peer->store().Remove(id);
      break;
    }
    default:
      return Status::InvalidArgument("unknown WAL record type " +
                                     std::to_string(type));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in WAL record");
  }
  return Status::OK();
}

}  // namespace

PersistenceManager::PersistenceManager(StorageConfig config, size_t maxl)
    : config_(std::move(config)), maxl_(maxl) {
  if (config_.enabled()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.dir, ec);
  }
}

PersistenceManager::~PersistenceManager() = default;

std::string PersistenceManager::SnapshotPath(PeerId id) const {
  return config_.dir + "/peer-" + std::to_string(id) + ".snap";
}

std::string PersistenceManager::WalPath(PeerId id) const {
  return config_.dir + "/peer-" + std::to_string(id) + ".wal";
}

bool PersistenceManager::HasState(PeerId id) const {
  std::error_code ec;
  return std::filesystem::exists(SnapshotPath(id), ec);
}

Status PersistenceManager::WriteSnapshot(const PeerState& peer) {
  net::ByteWriter w;
  w.WriteU32(kSnapVersion);
  WritePeerCore(&w, peer);
  WritePeerStore(&w, peer.store());
  const std::string& body = w.data();

  // Atomic replace: write a tmp file, push it to stable storage if the sync
  // mode demands it, then rename over the old snapshot. A crash anywhere
  // leaves either the old snapshot or the new one, never a torn file.
  const std::string path = SnapshotPath(peer.id());
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + tmp + " for writing");
  bool ok = std::fwrite(kSnapMagic, 1, sizeof(kSnapMagic), f) == sizeof(kSnapMagic);
  ok = ok && std::fwrite(body.data(), 1, body.size(), f) == body.size();
  char crc[4];
  const uint32_t checksum = Crc32(body);
  for (int i = 0; i < 4; ++i) crc[i] = static_cast<char>((checksum >> (8 * i)) & 0xff);
  ok = ok && std::fwrite(crc, 1, sizeof(crc), f) == sizeof(crc);
  ok = ok && std::fflush(f) == 0;
#ifndef _WIN32
  if (ok && config_.sync_mode == SyncMode::kFsync) ok = fsync(fileno(f)) == 0;
#endif
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("write of snapshot " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename of " + tmp + " failed");
  }
  return Status::OK();
}

Result<PeerState> PersistenceManager::ReadSnapshot(PeerId id) const {
  const std::string path = SnapshotPath(id);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, got);
  std::fclose(f);

  if (data.size() < sizeof(kSnapMagic) + 4 ||
      std::string_view(data.data(), 4) != std::string_view(kSnapMagic, 4)) {
    return Status::InvalidArgument(path + " is not a peer snapshot");
  }
  const std::string_view body(data.data() + 4, data.size() - 4 - 4);
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(
                  static_cast<unsigned char>(data[data.size() - 4 + i]))
              << (8 * i);
  }
  // Unlike the WAL (whose torn tail is expected and truncated), a snapshot is
  // written atomically: a checksum mismatch means real corruption, and
  // guessing at a prefix would silently resurrect stale state.
  if (stored != Crc32(body)) {
    return Status::Internal(path + " failed checksum validation");
  }

  net::ByteReader r(body);
  PGRID_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kSnapVersion) {
    return Status::InvalidArgument("unsupported peer snapshot version " +
                                   std::to_string(version));
  }
  PeerState peer(id);
  PeerCoreBounds bounds;
  bounds.maxl = maxl_;
  bounds.peer_id_bound = static_cast<uint64_t>(kInvalidPeer);
  PGRID_RETURN_IF_ERROR(ReadPeerCore(&r, bounds, &peer, nullptr));
  PGRID_RETURN_IF_ERROR(ReadPeerStore(&r, &peer.store()));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after peer snapshot payload");
  }
  return peer;
}

Status PersistenceManager::Attach(const PeerState& peer) {
  if (!config_.enabled()) {
    return Status::FailedPrecondition("storage is not configured (empty dir)");
  }
  auto tracked = std::make_unique<Tracked>(peer.id());
  tracked->shadow = peer;
  PGRID_RETURN_IF_ERROR(WriteSnapshot(peer));
  PGRID_RETURN_IF_ERROR(
      tracked->wal.Open(WalPath(peer.id()), config_.sync_mode, /*truncate=*/true));
  tracked_[peer.id()] = std::move(tracked);
  return Status::OK();
}

Status PersistenceManager::AppendDelta(const PeerState& from, const PeerState& to,
                                       WalWriter* wal, uint64_t* records) {
  auto emit = [wal, records](const net::ByteWriter& w) -> Status {
    PGRID_RETURN_IF_ERROR(wal->Append(w.data()));
    ++*records;
    return Status::OK();
  };

  if (to.path() != from.path()) {
    net::ByteWriter w;
    w.WriteU8(kSetPath);
    w.WriteKeyPath(to.path());
    PGRID_RETURN_IF_ERROR(emit(w));
  }
  for (size_t level = 1; level <= to.depth(); ++level) {
    if (level <= from.depth() && SpanEquals(to.RefsAt(level), from.RefsAt(level))) {
      continue;
    }
    const auto refs = to.RefsAt(level);
    // A level the shadow did not have yet only needs a record if non-empty
    // (kSetPath replay already creates it empty).
    if (level > from.depth() && refs.empty()) continue;
    net::ByteWriter w;
    w.WriteU8(kSetRefs);
    w.WriteU32(static_cast<uint32_t>(level));
    w.WriteU32(static_cast<uint32_t>(refs.size()));
    for (PeerId r : refs) w.WriteU32(r);
    PGRID_RETURN_IF_ERROR(emit(w));
  }
  if (!SpanEquals(to.buddies(), from.buddies())) {
    net::ByteWriter w;
    w.WriteU8(kSetBuddies);
    w.WriteU32(static_cast<uint32_t>(to.buddies().size()));
    for (PeerId b : to.buddies()) w.WriteU32(b);
    PGRID_RETURN_IF_ERROR(emit(w));
  }

  Status index_status = Status::OK();
  to.index().ForEach([&](const IndexEntry& e) {
    if (!index_status.ok()) return;
    const IndexEntry* old = from.index().Find(e.holder, e.item_id);
    if (old != nullptr && old->version == e.version && old->key == e.key) return;
    net::ByteWriter w;
    w.WriteU8(kIndexPut);
    WriteIndexEntry(&w, e);
    index_status = emit(w);
  });
  PGRID_RETURN_IF_ERROR(index_status);
  from.index().ForEach([&](const IndexEntry& e) {
    if (!index_status.ok()) return;
    if (to.index().Find(e.holder, e.item_id) != nullptr) return;
    net::ByteWriter w;
    w.WriteU8(kIndexDelete);
    w.WriteU32(e.holder);
    w.WriteU64(e.item_id);
    index_status = emit(w);
  });
  PGRID_RETURN_IF_ERROR(index_status);

  const auto& new_foreign = to.foreign_entries();
  const auto& old_foreign = from.foreign_entries();
  bool foreign_changed = new_foreign.size() != old_foreign.size();
  for (size_t i = 0; !foreign_changed && i < new_foreign.size(); ++i) {
    foreign_changed = !(new_foreign[i] == old_foreign[i]);
  }
  if (foreign_changed) {
    // The foreign buffer is a small parked list with arbitrary reorderings
    // (drains compact it), so it is rewritten whole rather than diffed.
    net::ByteWriter w;
    w.WriteU8(kSetForeign);
    w.WriteU32(static_cast<uint32_t>(new_foreign.size()));
    for (const IndexEntry& e : new_foreign) WriteIndexEntry(&w, e);
    PGRID_RETURN_IF_ERROR(emit(w));
  }

  for (const auto& [id, item] : to.store()) {
    const DataItem* old = from.store().Get(id);
    if (old != nullptr && *old == item) continue;
    net::ByteWriter w;
    w.WriteU8(kStorePut);
    w.WriteU64(item.id);
    w.WriteKeyPath(item.key);
    w.WriteString(item.payload);
    w.WriteU64(item.version);
    PGRID_RETURN_IF_ERROR(emit(w));
  }
  for (const auto& [id, item] : from.store()) {
    if (to.store().Get(id) != nullptr) continue;
    net::ByteWriter w;
    w.WriteU8(kStoreDelete);
    w.WriteU64(id);
    PGRID_RETURN_IF_ERROR(emit(w));
  }
  return Status::OK();
}

Result<CommitInfo> PersistenceManager::Commit(const PeerState& peer) {
  auto it = tracked_.find(peer.id());
  if (it == tracked_.end()) {
    return Status::FailedPrecondition("peer " + std::to_string(peer.id()) +
                                      " is not attached");
  }
  Tracked& t = *it->second;
  CommitInfo info;
  PGRID_RETURN_IF_ERROR(AppendDelta(t.shadow, peer, &t.wal, &info.records));
  if (info.records == 0) return info;
  t.shadow = peer;
  if (config_.compact_every != 0 &&
      ++t.commits_since_compact >= config_.compact_every) {
    PGRID_RETURN_IF_ERROR(Compact(peer.id()));
    info.compacted = true;
  }
  return info;
}

Status PersistenceManager::Compact(PeerId id) {
  auto it = tracked_.find(id);
  if (it == tracked_.end()) {
    return Status::FailedPrecondition("peer " + std::to_string(id) +
                                      " is not attached");
  }
  Tracked& t = *it->second;
  // Snapshot first, truncate second: a crash between the two leaves a snapshot
  // plus a WAL whose records are already folded in -- harmless, because every
  // record is idempotent against the state it produced.
  PGRID_RETURN_IF_ERROR(WriteSnapshot(t.shadow));
  PGRID_RETURN_IF_ERROR(t.wal.Open(WalPath(id), config_.sync_mode, /*truncate=*/true));
  t.commits_since_compact = 0;
  return Status::OK();
}

Result<PeerState> PersistenceManager::Recover(PeerId id) {
  // If we are still tracking this peer, its WalWriter may hold appended
  // records in the stdio buffer (SyncMode::kNone never flushes); push them to
  // the file so the read below sees everything committed so far.
  auto it = tracked_.find(id);
  if (it != tracked_.end() && it->second->wal.is_open()) {
    PGRID_RETURN_IF_ERROR(it->second->wal.Sync());
  }
  PGRID_ASSIGN_OR_RETURN(PeerState peer, ReadSnapshot(id));
  Result<WalContents> wal = ReadWal(WalPath(id));
  if (!wal.ok()) {
    if (wal.status().code() == StatusCode::kNotFound) return peer;
    return wal.status();
  }
  for (const std::string& record : wal->records) {
    PGRID_RETURN_IF_ERROR(ApplyRecord(record, &peer));
  }
  if (wal->torn_tail) {
    PGRID_RETURN_IF_ERROR(TruncateWal(WalPath(id), wal->valid_bytes));
  }
  return peer;
}

void PersistenceManager::Detach(PeerId id) { tracked_.erase(id); }

}  // namespace storage
}  // namespace pgrid
