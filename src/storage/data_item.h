// Data items stored by peers (Sec. 2: "Every peer stores information items from a set
// DI that are characterized by an index term from a set K").

#pragma once

#include <cstdint>
#include <string>

#include "key/key_path.h"
#include "sim/types.h"

namespace pgrid {

/// One information item: an opaque payload indexed by a binary key. `version`
/// supports the update experiments of Sec. 5.2 (an update bumps the version; a query
/// answer is "fresh" iff it reports the latest version).
struct DataItem {
  ItemId id = 0;
  KeyPath key;
  std::string payload;
  uint64_t version = 0;

  /// Approximate heap bytes owned (key words plus the payload buffer when it
  /// outgrew the small-string optimization). Excludes sizeof(*this).
  size_t ApproxMemoryBytes() const {
    return key.ApproxMemoryBytes() +
           (payload.capacity() >= sizeof(std::string) ? payload.capacity() : 0);
  }

  friend bool operator==(const DataItem&, const DataItem&) = default;
};

}  // namespace pgrid
