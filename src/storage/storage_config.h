// Configuration of the durable per-peer storage backend (docs/storage.md).
//
// Deliberately dependency-free: the net layer embeds a StorageConfig in its
// NodeConfig and the durable layer (storage/persist.h) consumes it, without
// either pulling in the other.

#pragma once

#include <cstdint>
#include <string>

namespace pgrid {
namespace storage {

/// How eagerly appended WAL records reach the disk.
enum class SyncMode : int {
  /// Leave records in the stdio buffer; the OS sees them at flush/close. A
  /// process crash can lose buffered records (the torn tail is still detected
  /// and truncated on replay). The fastest mode; default for simulations.
  kNone = 0,
  /// fflush() after every append: the kernel has the record, a process crash
  /// loses nothing, an OS crash may.
  kFlush = 1,
  /// fflush() + fsync() after every append: the record is on stable storage
  /// before Append returns. Slowest, survives OS crashes.
  kFsync = 2,
};

/// Opt-in durable storage. An empty `dir` disables persistence entirely.
struct StorageConfig {
  /// Directory holding the per-peer snapshot and WAL files. Created on demand.
  std::string dir;

  SyncMode sync_mode = SyncMode::kFlush;

  /// Commits between automatic compactions (snapshot rewrite + WAL truncate).
  /// 0 disables automatic compaction; the WAL then grows until an explicit
  /// Compact().
  uint64_t compact_every = 64;

  bool enabled() const { return !dir.empty(); }

  friend bool operator==(const StorageConfig&, const StorageConfig&) = default;
};

}  // namespace storage
}  // namespace pgrid
