// Append-only write-ahead log with per-record CRC framing (docs/storage.md).
//
// File layout:
//
//   "PGWL" | u32 format version | record*
//   record = u32 body length | u32 crc32(body) | body bytes
//
// All integers little-endian. The body is opaque to this layer; the durable
// layer above (storage/persist.h) encodes typed state-delta records into it.
//
// Recovery contract: ReadWal() parses the longest valid prefix and reports how
// far it got. A record whose header is short, whose length is implausible, or
// whose CRC does not match the body marks the first invalid byte; everything
// before it is returned, everything from it on is a torn tail to be truncated
// (TruncateWal). This is the standard "crash anywhere, recover the last
// consistent prefix" WAL discipline; tests/wal_test.cc drives a crash-point
// battery over every boundary.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "storage/storage_config.h"
#include "util/result.h"

namespace pgrid {
namespace storage {

/// Bytes of WAL file header: magic + format version.
inline constexpr size_t kWalHeaderBytes = 8;

/// Upper bound on one record body; larger length prefixes are treated as
/// corruption (a garbage length must not trigger a giant allocation).
inline constexpr uint32_t kMaxWalRecordBytes = 1u << 28;

/// Appends CRC-framed records to one WAL file.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { Close(); }

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending. With `truncate` the file is recreated with a
  /// fresh header; otherwise an existing file is validated (magic + version)
  /// and appended to, and a missing file is created.
  Status Open(const std::string& path, SyncMode mode, bool truncate);

  /// Appends one record and applies the sync mode. The writer must be open.
  Status Append(std::string_view body);

  /// Forces buffered records to the OS (and the disk under kFsync).
  Status Sync();

  void Close();

  bool is_open() const { return file_ != nullptr; }

  /// Records appended through this writer since Open.
  uint64_t appended() const { return appended_; }

 private:
  std::FILE* file_ = nullptr;
  SyncMode mode_ = SyncMode::kNone;
  uint64_t appended_ = 0;
};

/// Result of scanning a WAL file.
struct WalContents {
  /// Record bodies of the longest valid prefix, in append order.
  std::vector<std::string> records;

  /// File offset one past the last valid record (>= kWalHeaderBytes). Bytes at
  /// and beyond this offset failed validation.
  uint64_t valid_bytes = 0;

  /// True iff bytes past `valid_bytes` existed (a torn or corrupt tail).
  bool torn_tail = false;
};

/// Parses the longest valid prefix of the WAL at `path`. NotFound if the file
/// does not exist; InvalidArgument if even the 8-byte header is bad (a WAL
/// whose header is gone is indistinguishable from a foreign file, so it is an
/// error rather than an empty log).
Result<WalContents> ReadWal(const std::string& path);

/// Truncates the file to `valid_bytes` (as reported by ReadWal), dropping the
/// torn tail so subsequent appends extend a clean prefix.
Status TruncateWal(const std::string& path, uint64_t valid_bytes);

}  // namespace storage
}  // namespace pgrid
