// Leaf-level index entries (the paper's D ⊆ ADDR × K).
//
// At the leaf level a peer knows, for every key it is responsible for, which peers
// hold matching data items. LeafIndex manages that set: deduplicated insertion,
// version tracking for the update experiments, and the split/merge operations the
// construction algorithm performs when peers specialize or meet as replicas.

#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "key/key_path.h"
#include "sim/types.h"

namespace pgrid {

/// One index entry: "peer `holder` stores item `item_id` with key `key`".
/// `version` is the entry's view of the item version; stale entries are the root
/// cause of the consistency problem studied in Sec. 5.2.
struct IndexEntry {
  PeerId holder = kInvalidPeer;
  ItemId item_id = 0;
  KeyPath key;
  uint64_t version = 0;

  friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

/// Set of index entries held by one peer, keyed by (holder, item_id).
class LeafIndex {
 public:
  /// Inserts the entry, or refreshes key/version if (holder, item_id) is present
  /// with an older version. Returns true if anything changed.
  bool InsertOrRefresh(const IndexEntry& entry);

  /// Returns the entry for (holder, item_id), or nullptr.
  const IndexEntry* Find(PeerId holder, ItemId item_id) const;

  /// All entries whose key has `prefix` as a prefix.
  std::vector<IndexEntry> Matching(const KeyPath& prefix) const;

  /// Highest version among entries for item `item_id` (0 if none). Used by queries to
  /// answer "what is the current version of this item".
  uint64_t LatestVersionOf(ItemId item_id) const;

  /// Applies `version` to every entry for item `item_id` that is older. Returns the
  /// number of entries bumped.
  size_t ApplyVersion(ItemId item_id, uint64_t version);

  /// Removes and returns every entry whose key does not overlap `path` (neither is a
  /// prefix of the other). Used when a peer specializes its path and hands
  /// mismatching entries to the exchange partner.
  std::vector<IndexEntry> ExtractNotMatching(const KeyPath& path);

  /// Merges all of `other`'s entries into this index (used when replicas meet).
  /// Returns the number of entries inserted or refreshed.
  size_t MergeFrom(const LeafIndex& other);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Approximate heap bytes owned: the hash table's bucket array, one node per
  /// entry, and each entry key's own heap. Excludes sizeof(*this).
  size_t ApproxMemoryBytes() const;

  /// Snapshot of all entries (unordered).
  std::vector<IndexEntry> All() const;

 private:
  struct PairHash {
    size_t operator()(const std::pair<PeerId, ItemId>& p) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(p.first) << 32) ^
                                   (p.second * 0x9e3779b97f4a7c15ull));
    }
  };
  std::unordered_map<std::pair<PeerId, ItemId>, IndexEntry, PairHash> entries_;
};

}  // namespace pgrid
