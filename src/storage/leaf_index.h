// Leaf-level index entries (the paper's D ⊆ ADDR × K).
//
// At the leaf level a peer knows, for every key it is responsible for, which peers
// hold matching data items. LeafIndex manages that set: deduplicated insertion,
// version tracking for the update experiments, and the split/merge operations the
// construction algorithm performs when peers specialize or meet as replicas.

#pragma once

#include <cstddef>
#include <vector>

#include "key/key_path.h"
#include "sim/types.h"

namespace pgrid {

/// One index entry: "peer `holder` stores item `item_id` with key `key`".
/// `version` is the entry's view of the item version; stale entries are the root
/// cause of the consistency problem studied in Sec. 5.2.
struct IndexEntry {
  PeerId holder = kInvalidPeer;
  ItemId item_id = 0;
  KeyPath key;
  uint64_t version = 0;

  friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

/// Set of index entries held by one peer, keyed by (holder, item_id).
///
/// Stored as an open-addressed linear-probe table of IndexEntry slots (no
/// per-entry node allocations, no separate bucket array): the holder field
/// doubles as the empty/tombstone sentinel, so an empty index owns no heap at
/// all and a populated one is a single flat array. Iteration order is a
/// deterministic function of the insertion/erasure history; everything that
/// must be canonical (snapshots, digests) sorts or folds commutatively.
class LeafIndex {
 public:
  /// Inserts the entry, or refreshes key/version if (holder, item_id) is present
  /// with an older version. Returns true if anything changed. The holder must be
  /// a real peer id (the two topmost ids are reserved as slot sentinels).
  bool InsertOrRefresh(const IndexEntry& entry);

  /// Returns the entry for (holder, item_id), or nullptr.
  const IndexEntry* Find(PeerId holder, ItemId item_id) const;

  /// Removes the entry for (holder, item_id). Returns true if it was present.
  /// The durable layer replays index-delete WAL records through this.
  bool Erase(PeerId holder, ItemId item_id);

  /// All entries whose key has `prefix` as a prefix.
  std::vector<IndexEntry> Matching(const KeyPath& prefix) const;

  /// Visits every entry whose key has `prefix` as a prefix, without copying.
  /// `fn` receives a const IndexEntry&. The index must not be mutated during
  /// the visit.
  template <typename Fn>
  void ForEachMatching(const KeyPath& prefix, Fn&& fn) const {
    for (const IndexEntry& e : slots_) {
      if (IsLive(e) && prefix.IsPrefixOf(e.key)) fn(e);
    }
  }

  /// Visits every entry, without copying. `fn` receives a const IndexEntry&.
  /// The index must not be mutated during the visit.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const IndexEntry& e : slots_) {
      if (IsLive(e)) fn(e);
    }
  }

  /// Highest version among entries for item `item_id` (0 if none). Used by queries to
  /// answer "what is the current version of this item".
  uint64_t LatestVersionOf(ItemId item_id) const;

  /// Applies `version` to every entry for item `item_id` that is older. Returns the
  /// number of entries bumped.
  size_t ApplyVersion(ItemId item_id, uint64_t version);

  /// Removes and returns every entry whose key does not overlap `path` (neither is a
  /// prefix of the other). Used when a peer specializes its path and hands
  /// mismatching entries to the exchange partner.
  std::vector<IndexEntry> ExtractNotMatching(const KeyPath& path);

  /// Merges all of `other`'s entries into this index (used when replicas meet).
  /// Returns the number of entries inserted or refreshed.
  size_t MergeFrom(const LeafIndex& other);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Approximate heap bytes owned: the flat slot array at capacity, plus each
  /// entry key's own heap (zero for inline keys). Excludes sizeof(*this).
  size_t ApproxMemoryBytes() const;

  /// Snapshot of all entries (unordered).
  std::vector<IndexEntry> All() const;

 private:
  // The holder field of a slot distinguishes live entries from the two
  // sentinel states; real peer ids can never collide with either (a grid of
  // 2^32 - 2 peers is far beyond the 32-bit id space in practice).
  static constexpr PeerId kEmptySlot = kInvalidPeer;
  static constexpr PeerId kTombstoneSlot = kInvalidPeer - 1;

  static bool IsLive(const IndexEntry& e) {
    return e.holder != kEmptySlot && e.holder != kTombstoneSlot;
  }

  static size_t HashKey(PeerId holder, ItemId item_id);

  /// Returns the live slot holding (holder, item_id), or nullptr.
  IndexEntry* FindSlot(PeerId holder, ItemId item_id);
  const IndexEntry* FindSlot(PeerId holder, ItemId item_id) const {
    return const_cast<LeafIndex*>(this)->FindSlot(holder, item_id);
  }

  /// Re-buckets every live entry into a fresh table of at least `min_slots`
  /// slots (rounded up to a power of two), dropping tombstones.
  void Rehash(size_t min_slots);

  /// Grows/cleans the table if inserting one more entry would push the
  /// occupied fraction (live + tombstones) above 7/8.
  void ReserveForInsert();

  std::vector<IndexEntry> slots_;  // size is a power of two (or zero when empty)
  size_t size_ = 0;                // live entries
  size_t tombstones_ = 0;          // erased slots awaiting the next rehash
};

}  // namespace pgrid
