// CRC-32 (IEEE 802.3 polynomial, reflected) for WAL record and snapshot
// integrity checks. Table-driven, one byte per step; the table is computed at
// compile time so the header stays self-contained.
//
// CRC is used here instead of the FNV-1a the digests use because record
// validation must catch *bursty* corruption (torn writes, zeroed sectors):
// CRC-32 detects all burst errors up to 32 bits and all 1-3 bit errors, which
// FNV does not guarantee.

#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string_view>

namespace pgrid {
namespace storage {

namespace internal {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

/// CRC-32 of `data` (init and final XOR 0xFFFFFFFF, as in zlib's crc32()).
inline uint32_t Crc32(std::string_view data) {
  uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = internal::kCrc32Table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
        (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace storage
}  // namespace pgrid
