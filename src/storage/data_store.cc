#include "storage/data_store.h"

namespace pgrid {

Status DataStore::Put(DataItem item) {
  ItemId id = item.id;
  auto [it, inserted] = items_.try_emplace(id, std::move(item));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("data item " + std::to_string(id) + " already stored");
  }
  return Status::OK();
}

void DataStore::Upsert(DataItem item) {
  items_[item.id] = std::move(item);
}

const DataItem* DataStore::Get(ItemId id) const {
  auto it = items_.find(id);
  return it == items_.end() ? nullptr : &it->second;
}

Status DataStore::ApplyVersion(ItemId id, uint64_t version) {
  auto it = items_.find(id);
  if (it == items_.end()) {
    return Status::NotFound("data item " + std::to_string(id) + " not stored here");
  }
  if (version > it->second.version) it->second.version = version;
  return Status::OK();
}

bool DataStore::Remove(ItemId id) { return items_.erase(id) > 0; }

std::vector<const DataItem*> DataStore::FindByKeyPrefix(const KeyPath& prefix) const {
  std::vector<const DataItem*> out;
  for (const auto& [id, item] : items_) {
    if (prefix.IsPrefixOf(item.key)) out.push_back(&item);
  }
  return out;
}

size_t DataStore::ApproxMemoryBytes() const {
  using Node = std::pair<const ItemId, DataItem>;
  size_t bytes = items_.bucket_count() * sizeof(void*) +
                 items_.size() * (sizeof(Node) + 2 * sizeof(void*));
  for (const auto& [id, item] : items_) bytes += item.ApproxMemoryBytes();
  return bytes;
}

}  // namespace pgrid
