// Lightweight Status type for recoverable errors, in the style of absl::Status.
//
// The pgrid library does not throw exceptions across public API boundaries. Functions
// that can fail for data-dependent reasons (parsing, configuration validation, I/O in
// the net layer) return Status or Result<T> (see result.h). Programming errors are
// handled with PGRID_CHECK instead.

#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace pgrid {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnavailable = 6,     ///< peer offline / transport failure; retryable
  kDeadlineExceeded = 7,
  kResourceExhausted = 8,
  kInternal = 9,
  kUnimplemented = 10,
};

/// Returns a stable human-readable name for a status code ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Value type carrying success or an (code, message) error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code yields OK and
  /// drops the message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Evaluates an expression returning Status and returns it from the enclosing
/// function if it is not OK.
#define PGRID_RETURN_IF_ERROR(expr)           \
  do {                                        \
    ::pgrid::Status _pgrid_st = (expr);       \
    if (!_pgrid_st.ok()) return _pgrid_st;    \
  } while (0)

}  // namespace pgrid
