// Minimal command-line flag parsing for the CLI tool.
//
// Syntax: --name=value or bare --name (boolean). Anything else is positional.
// Typed getters fall back to defaults when the flag is absent and report
// InvalidArgument for unparsable values.

#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/result.h"

namespace pgrid {

/// Parsed command line: flags plus positional arguments, in order.
class FlagSet {
 public:
  explicit FlagSet(const std::vector<std::string>& args) {
    for (const std::string& a : args) {
      if (a.rfind("--", 0) == 0) {
        const size_t eq = a.find('=');
        if (eq == std::string::npos) {
          flags_.emplace_back(a.substr(2), "");
        } else {
          flags_.emplace_back(a.substr(2, eq - 2), a.substr(eq + 1));
        }
      } else {
        positional_.push_back(a);
      }
    }
  }

  bool Has(const std::string& name) const {
    for (const auto& [k, v] : flags_) {
      if (k == name) return true;
    }
    return false;
  }

  /// Raw value of --name (empty string for bare flags), or `fallback`.
  std::string GetString(const std::string& name, const std::string& fallback) const {
    for (const auto& [k, v] : flags_) {
      if (k == name) return v;
    }
    return fallback;
  }

  /// Integer flag. InvalidArgument if present but not a number.
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const {
    for (const auto& [k, v] : flags_) {
      if (k != name) continue;
      char* end = nullptr;
      const int64_t value = std::strtoll(v.c_str(), &end, 10);
      if (v.empty() || end == nullptr || *end != '\0') {
        return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                       v + "'");
      }
      return value;
    }
    return fallback;
  }

  /// Floating-point flag. InvalidArgument if present but not a number.
  Result<double> GetDouble(const std::string& name, double fallback) const {
    for (const auto& [k, v] : flags_) {
      if (k != name) continue;
      char* end = nullptr;
      const double value = std::strtod(v.c_str(), &end);
      if (v.empty() || end == nullptr || *end != '\0') {
        return Status::InvalidArgument("--" + name + " expects a number, got '" + v +
                                       "'");
      }
      return value;
    }
    return fallback;
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all flags present (for unknown-flag diagnostics).
  std::vector<std::string> FlagNames() const {
    std::vector<std::string> out;
    for (const auto& [k, v] : flags_) out.push_back(k);
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pgrid
