// Common assertion and annotation macros for the pgrid codebase.
//
// PGRID_CHECK(cond)  -- always-on invariant check; aborts with a message on failure.
// PGRID_DCHECK(cond) -- debug-only variant, compiled out in NDEBUG builds.
//
// These are intentionally minimal: the library is exception-free across module
// boundaries and uses Status/Result for recoverable errors; CHECK failures indicate
// programming errors (violated preconditions), not runtime conditions.

#pragma once

#include <cstdio>
#include <cstdlib>

#define PGRID_CHECK(cond)                                                          \
  do {                                                                             \
    if (!(cond)) {                                                                 \
      std::fprintf(stderr, "PGRID_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                                         \
      std::abort();                                                                \
    }                                                                              \
  } while (0)

#ifdef NDEBUG
#define PGRID_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define PGRID_DCHECK(cond) PGRID_CHECK(cond)
#endif

#define PGRID_CHECK_LE(a, b) PGRID_CHECK((a) <= (b))
#define PGRID_CHECK_LT(a, b) PGRID_CHECK((a) < (b))
#define PGRID_CHECK_GE(a, b) PGRID_CHECK((a) >= (b))
#define PGRID_CHECK_GT(a, b) PGRID_CHECK((a) > (b))
#define PGRID_CHECK_EQ(a, b) PGRID_CHECK((a) == (b))
#define PGRID_CHECK_NE(a, b) PGRID_CHECK((a) != (b))
