// Wall-clock stopwatch for reporting experiment durations.

#pragma once

#include <chrono>

namespace pgrid {

/// Measures elapsed wall-clock time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pgrid
