// Result<T>: value-or-Status, in the style of absl::StatusOr<T>.

#pragma once

#include <optional>
#include <utility>

#include "util/macros.h"
#include "util/status.h"

namespace pgrid {

/// Holds either a value of type T or a non-OK Status describing why no value is
/// available. Accessing the value of an errored Result is a checked programming error.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, so `return Status::...;` works).
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    PGRID_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; requires ok().
  const T& value() const& {
    PGRID_CHECK(ok());
    return *value_;
  }
  T& value() & {
    PGRID_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    PGRID_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define PGRID_INTERNAL_CONCAT_(a, b) a##b
#define PGRID_INTERNAL_CONCAT(a, b) PGRID_INTERNAL_CONCAT_(a, b)

#define PGRID_INTERNAL_ASSIGN_OR_RETURN(var, lhs, expr) \
  auto var = (expr);                                    \
  if (!var.ok()) return var.status();                   \
  lhs = std::move(var).value()

/// Assigns the value of a Result expression to `lhs`, or returns its error Status
/// from the enclosing function.
#define PGRID_ASSIGN_OR_RETURN(lhs, expr)                                       \
  PGRID_INTERNAL_ASSIGN_OR_RETURN(PGRID_INTERNAL_CONCAT(_pgrid_res_, __LINE__), \
                                  lhs, expr)

}  // namespace pgrid
