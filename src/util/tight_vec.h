// A capacity-frugal dynamic array for per-peer protocol lists.
//
// std::vector's doubling growth leaves up to 2x slack on lists that are
// appended one element at a time and then kept around forever -- exactly the
// shape of buddy lists and parked foreign entries, which at 100k+ peers
// dominate the per-peer footprint. TightVec grows by ~1.25x (amortized linear
// appends, bounded slack), keeps its bookkeeping in 32-bit fields, and frees
// its storage on clear(). Iteration order is append order, which the digests
// and snapshots rely on.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pgrid {

template <typename T>
class TightVec {
 public:
  TightVec() = default;
  TightVec(const TightVec& other) { Assign(other); }
  TightVec& operator=(const TightVec& other) {
    if (this != &other) {
      Destroy();
      Assign(other);
    }
    return *this;
  }
  TightVec(TightVec&& other) noexcept
      : data_(other.data_), size_(other.size_), cap_(other.cap_) {
    other.data_ = nullptr;
    other.size_ = other.cap_ = 0;
  }
  TightVec& operator=(TightVec&& other) noexcept {
    if (this != &other) {
      Destroy();
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.data_ = nullptr;
      other.size_ = other.cap_ = 0;
    }
    return *this;
  }
  ~TightVec() { Destroy(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return cap_; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void push_back(T value) {
    if (size_ == cap_) Grow();
    data_[size_++] = std::move(value);
  }

  /// Destroys all elements and releases the storage (tight by construction:
  /// a cleared list costs nothing until it is appended to again).
  void clear() { Destroy(); }

  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }
  operator std::vector<T>() const { return ToVector(); }

  /// Heap bytes owned by the backing array itself; element-owned heap (if any)
  /// is the caller's to count.
  size_t ApproxMemoryBytes() const { return size_t{cap_} * sizeof(T); }

 private:
  void Grow() {
    const uint32_t grown = cap_ + cap_ / 4 + 1;
    T* data = new T[grown];
    for (uint32_t i = 0; i < size_; ++i) data[i] = std::move(data_[i]);
    delete[] data_;
    data_ = data;
    cap_ = grown;
  }

  void Assign(const TightVec& other) {
    size_ = cap_ = other.size_;
    if (size_ != 0) {
      data_ = new T[size_];
      for (uint32_t i = 0; i < size_; ++i) data_[i] = other.data_[i];
    } else {
      data_ = nullptr;
    }
  }

  void Destroy() {
    delete[] data_;
    data_ = nullptr;
    size_ = cap_ = 0;
  }

  T* data_ = nullptr;
  uint32_t size_ = 0;
  uint32_t cap_ = 0;
};

}  // namespace pgrid
