// Minimal leveled logging to stderr.
//
// Usage: PGRID_LOG(Info) << "built grid with " << n << " peers";
// Every line carries a wall-clock timestamp, the level tag, the thread id, and
// the source location:
//   [2026-08-05T12:34:56.789 INFO 7f3a1c source.cc:42] built grid with 64 peers
// The global level defaults to Warning so library code is silent in tests and
// benchmarks unless explicitly enabled (SetLogLevel or PGRID_LOG_LEVEL env var).
//
// Debug statements on hot paths use PGRID_DLOG: the whole streaming expression
// sits behind the level check, so operands are not even evaluated (zero
// formatting cost) unless the debug level is enabled.
//   PGRID_DLOG << "exchange " << a << "<->" << b << " depth " << depth;

#pragma once

#include <sstream>
#include <string>

namespace pgrid {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);

/// Returns the global minimum level (initialized from the PGRID_LOG_LEVEL environment
/// variable: "debug", "info", "warning", "error", "off").
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a LogMessage in the dead branch of PGRID_DLOG. `&` binds looser
/// than `<<`, so the whole streamed chain is its single (unevaluated) operand.
struct Voidify {
  void operator&(const LogMessage&) {}
};

}  // namespace internal
}  // namespace pgrid

#define PGRID_LOG(severity)                                                      \
  ::pgrid::internal::LogMessage(::pgrid::LogLevel::k##severity, __FILE__, __LINE__)

/// Debug logging whose operands cost nothing when the debug level is disabled:
/// the ternary short-circuits before the LogMessage (and every streamed operand)
/// is constructed.
#define PGRID_DLOG                                                               \
  (::pgrid::GetLogLevel() > ::pgrid::LogLevel::kDebug)                           \
      ? (void)0                                                                  \
      : ::pgrid::internal::Voidify() & PGRID_LOG(Debug)
