// Minimal leveled logging to stderr.
//
// Usage: PGRID_LOG(Info) << "built grid with " << n << " peers";
// The global level defaults to Warning so library code is silent in tests and
// benchmarks unless explicitly enabled (SetLogLevel or PGRID_LOG_LEVEL env var).

#pragma once

#include <sstream>
#include <string>

namespace pgrid {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum level that is emitted.
void SetLogLevel(LogLevel level);

/// Returns the global minimum level (initialized from the PGRID_LOG_LEVEL environment
/// variable: "debug", "info", "warning", "error", "off").
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pgrid

#define PGRID_LOG(severity)                                                      \
  ::pgrid::internal::LogMessage(::pgrid::LogLevel::k##severity, __FILE__, __LINE__)
