// A minimal read-only view over a contiguous element range.
//
// PeerState exposes its pooled reference levels and buddy list as Span<PeerId>
// so callers iterate the flat storage in place instead of forcing a per-level
// std::vector. The implicit vector conversion keeps call sites that genuinely
// need an owned copy (random draws, set algebra) working unchanged.

#pragma once

#include <cstddef>
#include <vector>

namespace pgrid {

template <typename T>
class Span {
 public:
  Span() = default;
  Span(const T* data, size_t size) : data_(data), size_(size) {}
  Span(const std::vector<T>& v) : data_(v.data()), size_(v.size()) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }
  operator std::vector<T>() const { return ToVector(); }

  friend bool operator==(Span a, Span b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }
  friend bool operator==(Span a, const std::vector<T>& b) { return a == Span(b); }
  friend bool operator==(const std::vector<T>& a, Span b) { return Span(a) == b; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace pgrid
