#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <functional>
#include <iomanip>
#include <mutex>
#include <thread>

namespace pgrid {
namespace {

LogLevel ParseLevelFromEnv() {
  const char* env = std::getenv("PGRID_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarning;
}

std::atomic<int> g_level{static_cast<int>(ParseLevelFromEnv())};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    // Wall-clock timestamp with millisecond precision.
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now.time_since_epoch())
                        .count() %
                    1000;
    std::tm tm{};
    localtime_r(&secs, &tm);
    char ts[32];
    std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%S", &tm);
    // A short stable per-thread tag (the full std::thread::id is unwieldy).
    const auto tid =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffff;
    const char* base = std::strrchr(file, '/');
    stream_ << "[" << ts << "." << std::setw(3) << std::setfill('0') << ms
            << std::setfill(' ') << " " << LevelName(level_) << " " << std::hex
            << std::setw(6) << std::setfill('0') << tid << std::setfill(' ')
            << std::dec << " " << (base ? base + 1 : file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace pgrid
