// Fixed-size worker pool for deterministic fork/join parallelism.
//
// The parallel simulation drivers (core/parallel_builder.h, core/parallel_workload.h)
// split work into independent items whose results land in per-item slots, so the
// *outcome* never depends on which thread ran which item -- only the wall-clock time
// does. ParallelFor is the single primitive: run fn(0) .. fn(n-1), possibly
// concurrently, and return when all of them finished. The calling thread always
// participates, so a pool constructed with `threads == 1` owns no worker threads at
// all and executes everything inline (zero synchronization on the 1-thread path).
//
// Memory ordering: every item claimed and completed is bracketed by the pool mutex,
// so writes a worker makes while running fn(i) happen-before the caller's reads
// after ParallelFor returns.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace pgrid {

/// Fork/join pool over `threads` execution lanes (caller + threads-1 workers).
class ThreadPool {
 public:
  /// Creates a pool that runs ParallelFor on `threads` lanes. `threads == 0` is
  /// treated as 1. The caller participates, so only threads-1 OS threads are spawned.
  explicit ThreadPool(size_t threads) : threads_(threads == 0 ? 1 : threads) {
    workers_.reserve(threads_ - 1);
    for (size_t i = 0; i + 1 < threads_; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Number of execution lanes (including the caller).
  size_t threads() const { return threads_; }

  /// Runs fn(0) .. fn(n-1) and returns once all calls completed. Items may run on
  /// any lane in any order; fn must therefore only touch state disjoint from other
  /// items' (or internally synchronized). Not reentrant: fn must not call
  /// ParallelFor on the same pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    ParallelFor(n, [&fn](size_t i, size_t /*lane*/) { fn(i); });
  }

  /// Lane-aware variant: fn(item, lane) where `lane` identifies the executing
  /// lane (0 = the calling thread, 1..threads()-1 = workers). Lanes are stable
  /// within one ParallelFor, so per-lane accumulators (profiler ring buffers,
  /// sharded stats) need no synchronization; the join gives the caller a
  /// happens-before edge on everything the lanes wrote.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (size_t i = 0; i < n; ++i) fn(i, 0);
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    PGRID_CHECK(job_fn_ == nullptr);  // reentrant / concurrent use
    job_fn_ = &fn;
    job_n_ = n;
    job_next_ = 0;
    job_active_ = 0;
    lock.unlock();
    wake_cv_.notify_all();
    lock.lock();
    DrainJob(&lock, /*lane=*/0);
    done_cv_.wait(lock, [this] { return job_next_ >= job_n_ && job_active_ == 0; });
    job_fn_ = nullptr;
  }

 private:
  /// Claims and runs items of the current job until none are left. `lock` must be
  /// held on entry and is held again on return.
  void DrainJob(std::unique_lock<std::mutex>* lock, size_t lane) {
    while (job_fn_ != nullptr && job_next_ < job_n_) {
      const size_t i = job_next_++;
      const std::function<void(size_t, size_t)>* fn = job_fn_;
      ++job_active_;
      lock->unlock();
      (*fn)(i, lane);
      lock->lock();
      --job_active_;
    }
  }

  void WorkerLoop(size_t lane) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      wake_cv_.wait(lock, [this] {
        return stop_ || (job_fn_ != nullptr && job_next_ < job_n_);
      });
      if (stop_) return;
      DrainJob(&lock, lane);
      if (job_fn_ != nullptr && job_next_ >= job_n_ && job_active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }

  const size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  const std::function<void(size_t, size_t)>* job_fn_ = nullptr;  // null = no job
  size_t job_n_ = 0;
  size_t job_next_ = 0;    // next unclaimed item
  size_t job_active_ = 0;  // items currently executing
};

}  // namespace pgrid
