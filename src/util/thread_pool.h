// Fixed-size worker pool for deterministic fork/join parallelism.
//
// The parallel simulation drivers (core/parallel_builder.h, core/parallel_workload.h)
// split work into independent items whose results land in per-item slots, so the
// *outcome* never depends on which thread ran which item -- only the wall-clock time
// does. ParallelFor is the single primitive: run fn(0) .. fn(n-1), possibly
// concurrently, and return when all of them finished. The calling thread always
// participates, so a pool constructed with `threads == 1` owns no worker threads at
// all and executes everything inline (zero synchronization on the 1-thread path).
//
// Item hand-off is lock-free: lanes claim items with one relaxed fetch_add on a
// shared cursor and never touch the pool mutex between items. The mutex exists
// only at the job boundaries -- publishing a job to sleeping workers and parking
// lanes afterwards -- which is what lets wave widths in the hundreds run with a
// per-item cost of one uncontended atomic increment instead of a mutex
// acquire/release pair (the old design serialized every claim on the pool lock,
// which at small item costs put the lock on the critical path of every lane).
//
// Memory ordering: a worker only reads the job descriptor after observing the
// new job epoch under the mutex, and the caller only returns after every worker
// has parked again under the same mutex, so writes made while running fn(i)
// happen-before the caller's reads after ParallelFor returns.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace pgrid {

/// Fork/join pool over `threads` execution lanes (caller + threads-1 workers).
class ThreadPool {
 public:
  /// Creates a pool that runs ParallelFor on `threads` lanes. `threads == 0` is
  /// treated as 1. The caller participates, so only threads-1 OS threads are spawned.
  explicit ThreadPool(size_t threads) : threads_(threads == 0 ? 1 : threads) {
    workers_.reserve(threads_ - 1);
    for (size_t i = 0; i + 1 < threads_; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Number of execution lanes (including the caller).
  size_t threads() const { return threads_; }

  /// Runs fn(0) .. fn(n-1) and returns once all calls completed. Items may run on
  /// any lane in any order; fn must therefore only touch state disjoint from other
  /// items' (or internally synchronized). Not reentrant: fn must not call
  /// ParallelFor on the same pool.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    ParallelFor(n, [&fn](size_t i, size_t /*lane*/) { fn(i); });
  }

  /// Lane-aware variant: fn(item, lane) where `lane` identifies the executing
  /// lane (0 = the calling thread, 1..threads()-1 = workers). Lanes are stable
  /// within one ParallelFor, so per-lane accumulators (profiler ring buffers,
  /// sharded stats) need no synchronization; the join gives the caller a
  /// happens-before edge on everything the lanes wrote.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (size_t i = 0; i < n; ++i) fn(i, 0);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      PGRID_CHECK(!job_open_);  // reentrant / concurrent use
      job_fn_ = &fn;
      job_n_ = n;
      job_next_.store(0, std::memory_order_relaxed);
      job_done_.store(0, std::memory_order_relaxed);
      job_open_ = true;
      ++job_epoch_;
    }
    wake_cv_.notify_all();
    Drain(/*lane=*/0);
    std::unique_lock<std::mutex> lock(mu_);
    // Wait until every item ran *and* every woken worker parked again: a worker
    // still inside Drain may yet read the job descriptor, so the descriptor is
    // only retired once the last of them re-acquired the mutex (which is also
    // the happens-before edge covering everything the lanes wrote).
    done_cv_.wait(lock, [this] {
      return active_workers_ == 0 &&
             job_done_.load(std::memory_order_relaxed) == job_n_;
    });
    job_open_ = false;
    job_fn_ = nullptr;
  }

 private:
  /// Claims and runs items of the current job until the cursor passes n. Called
  /// with no lock held; reads of job_fn_/job_n_ are ordered by the mutex (the
  /// caller wrote them before publishing the epoch, and retires them only after
  /// this lane parked again).
  void Drain(size_t lane) {
    const std::function<void(size_t, size_t)>* fn = job_fn_;
    const size_t n = job_n_;
    for (;;) {
      const size_t i = job_next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      (*fn)(i, lane);
      job_done_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void WorkerLoop(size_t lane) {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t seen_epoch = 0;
    for (;;) {
      wake_cv_.wait(lock, [this, seen_epoch] {
        return stop_ || (job_open_ && job_epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = job_epoch_;
      ++active_workers_;
      lock.unlock();
      Drain(lane);
      lock.lock();
      if (--active_workers_ == 0 &&
          job_done_.load(std::memory_order_relaxed) == job_n_) {
        done_cv_.notify_all();
      }
    }
  }

  const size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;

  // Job descriptor. Written by the caller under mu_ before the epoch bump and
  // retired under mu_ after all lanes parked; lanes read it locklessly in
  // between (ordered by those two mutex sections).
  bool job_open_ = false;
  uint64_t job_epoch_ = 0;  // guards against re-running a drained job
  const std::function<void(size_t, size_t)>* job_fn_ = nullptr;
  size_t job_n_ = 0;
  size_t active_workers_ = 0;  // workers currently between wake and park

  // Lock-free item hand-off.
  std::atomic<size_t> job_next_{0};  // next unclaimed item
  std::atomic<size_t> job_done_{0};  // items fully executed
};

}  // namespace pgrid
