// Deterministic random number generation for simulations.
//
// All randomized algorithms in the library draw from an explicitly passed Rng so that
// every experiment is reproducible from a single seed. The generator is a thin wrapper
// around std::mt19937_64 with the sampling helpers the P-Grid algorithms need
// (uniform ints, Bernoulli trials, random bits, subset sampling without replacement).

#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/macros.h"

namespace pgrid {

/// Seedable pseudo-random generator used by all randomized algorithms.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Returns a uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t UniformInt(uint64_t lo, uint64_t hi) {
    PGRID_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<uint64_t>(lo, hi)(engine_);
  }

  /// Returns a uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    PGRID_CHECK_GT(n, 0u);
    return static_cast<size_t>(UniformInt(0, n - 1));
  }

  /// Returns a uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Returns a uniform random bit (0 or 1).
  int Bit() { return static_cast<int>(UniformInt(0, 1)); }

  /// Removes and returns one uniformly chosen element of `v`.
  /// This matches the paper's random_select(refs): "returns a random element from refs
  /// and removes it from refs". Requires v non-empty.
  template <typename T>
  T TakeRandom(std::vector<T>* v) {
    PGRID_CHECK(v != nullptr && !v->empty());
    size_t i = UniformIndex(v->size());
    T out = std::move((*v)[i]);
    (*v)[i] = std::move(v->back());
    v->pop_back();
    return out;
  }

  /// Returns one uniformly chosen element of `v` (without removal). Requires non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    PGRID_CHECK(!v.empty());
    return v[UniformIndex(v.size())];
  }

  /// Returns min(k, v.size()) distinct elements sampled uniformly without replacement.
  /// This matches the paper's random_select(k, refs) set sampler.
  template <typename T>
  std::vector<T> SampleWithoutReplacement(std::vector<T> v, size_t k) {
    if (v.size() <= k) return v;
    // Partial Fisher-Yates: the first k slots become the sample.
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + UniformIndex(v.size() - i);
      std::swap(v[i], v[j]);
    }
    v.resize(k);
    return v;
  }

  /// Shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    PGRID_CHECK(v != nullptr);
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Splits off an independent child generator (for parallel or per-peer streams).
  Rng Fork() { return Rng(engine_()); }

  /// Reseeds this generator in place, as if freshly constructed with `seed`.
  /// Lets a long-lived consumer (e.g. a SearchEngine bound to one Rng) switch to a
  /// counter-derived stream per work item without being re-created.
  void Reseed(uint64_t seed) { engine_.seed(seed); }

  /// Access to the underlying engine for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 finalizer: a full-avalanche 64-bit mix. Used for seed-stream
/// splitting below and by the order-independent set digests (sim/digest.h,
/// net/node.cc): those sum per-element hashes, and summing raw FNV-1a values is
/// unsafe -- FNV folds a trailing u64 field as (h ^ v) * p^8, linear enough
/// that version deltas on two elements cancel across the sum with probability
/// ~1/8. Finalizing each element hash first destroys that linearity.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Derives the seed of sub-stream `index` of a master seed (SplitMix64 finalizer,
/// the standard counter-based stream-splitting mix). Stream i can be derived
/// without drawing streams 0..i-1 first, which is what makes parallel workloads
/// deterministic regardless of execution order: work item i always runs on
/// Rng(DeriveStreamSeed(seed, i)) no matter which thread picks it up.
inline uint64_t DeriveStreamSeed(uint64_t master_seed, uint64_t index) {
  return Mix64(master_seed + 0x9e3779b97f4a7c15ull * (index + 1));
}

}  // namespace pgrid
