// Random overlay graph used by the Gnutella-style flooding baseline.
//
// Gnutella peers connect to a handful of neighbours, forming an unstructured
// overlay; searches are broadcast over it. RandomGraph builds a connected random
// graph with a target mean degree.

#pragma once

#include <cstddef>
#include <vector>

#include "sim/types.h"
#include "util/rng.h"

namespace pgrid {

/// An undirected random graph over a fixed set of peers.
class RandomGraph {
 public:
  /// Builds a graph over `num_peers` nodes (>= 2) with approximately `mean_degree`
  /// edges per node. A Hamiltonian backbone (random ring) guarantees connectivity;
  /// remaining edges are sampled uniformly.
  RandomGraph(size_t num_peers, size_t mean_degree, Rng* rng);

  size_t num_peers() const { return adjacency_.size(); }

  /// Neighbours of `peer`.
  const std::vector<PeerId>& Neighbors(PeerId peer) const;

  /// Total number of undirected edges.
  size_t EdgeCount() const { return edge_count_; }

  double MeanDegree() const {
    return adjacency_.empty()
               ? 0.0
               : 2.0 * static_cast<double>(edge_count_) /
                     static_cast<double>(adjacency_.size());
  }

 private:
  bool AddEdge(PeerId a, PeerId b);

  std::vector<std::vector<PeerId>> adjacency_;
  size_t edge_count_ = 0;
};

}  // namespace pgrid
