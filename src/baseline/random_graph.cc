#include "baseline/random_graph.h"

#include <algorithm>
#include <numeric>

#include "util/macros.h"

namespace pgrid {

RandomGraph::RandomGraph(size_t num_peers, size_t mean_degree, Rng* rng)
    : adjacency_(num_peers) {
  PGRID_CHECK_GE(num_peers, 2u);
  PGRID_CHECK(rng != nullptr);
  // Random ring backbone for connectivity.
  std::vector<PeerId> order(num_peers);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  for (size_t i = 0; i < num_peers; ++i) {
    AddEdge(order[i], order[(i + 1) % num_peers]);
  }
  // Top up with uniform random edges until the target mean degree is reached.
  const size_t target_edges = num_peers * mean_degree / 2;
  size_t attempts = 0;
  const size_t max_attempts = 20 * target_edges + 100;
  while (edge_count_ < target_edges && attempts < max_attempts) {
    ++attempts;
    PeerId a = static_cast<PeerId>(rng->UniformIndex(num_peers));
    PeerId b = static_cast<PeerId>(rng->UniformIndex(num_peers));
    if (a != b) AddEdge(a, b);
  }
}

bool RandomGraph::AddEdge(PeerId a, PeerId b) {
  auto& na = adjacency_[a];
  if (std::find(na.begin(), na.end(), b) != na.end()) return false;
  na.push_back(b);
  adjacency_[b].push_back(a);
  ++edge_count_;
  return true;
}

const std::vector<PeerId>& RandomGraph::Neighbors(PeerId peer) const {
  PGRID_CHECK_LT(peer, adjacency_.size());
  return adjacency_[peer];
}

}  // namespace pgrid
