// Centralized (optionally replicated) index-server baseline (Sec. 6 comparison).
//
// A central server stores an index entry for every data item: O(D) storage at the
// server, constant storage at clients. Every lookup costs the client one message and
// the server one unit of load, so aggregate server load grows O(N) in the number of
// clients -- the bottleneck P-Grid avoids.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "key/key_path.h"
#include "storage/leaf_index.h"
#include "util/rng.h"

namespace pgrid {

/// Result of one central lookup.
struct CentralLookupResult {
  bool found = false;
  std::vector<IndexEntry> entries;
};

/// A replicated central index service.
class CentralServer {
 public:
  /// Creates `num_replicas` fully replicated index servers (>= 1).
  explicit CentralServer(size_t num_replicas = 1);

  /// Publishes an index entry; it is replicated to every server.
  void Publish(const IndexEntry& entry);

  /// Looks up all entries whose key overlaps `key` at a random replica.
  CentralLookupResult Lookup(const KeyPath& key, Rng* rng);

  size_t num_replicas() const { return num_replicas_; }

  /// Entries stored per replica: the O(D) server storage cost.
  size_t StoragePerReplica() const { return entries_.size(); }

  /// Total entries across all replicas.
  size_t TotalStorage() const { return entries_.size() * num_replicas_; }

  /// Lookups served per replica so far (index by replica id).
  const std::vector<uint64_t>& LoadPerReplica() const { return load_; }

  /// Total lookups served: the O(N)-growing aggregate server load.
  uint64_t TotalLoad() const;

 private:
  size_t num_replicas_;
  // One logical copy of the index; replication is modeled by the storage accounting
  // and by distributing lookup load across replicas.
  std::vector<IndexEntry> entries_;
  std::unordered_map<KeyPath, std::vector<size_t>, KeyPathHash> by_key_;
  std::vector<uint64_t> load_;
};

}  // namespace pgrid
