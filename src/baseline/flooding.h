// Gnutella-style flooding search baseline (Sec. 1: "search requests are broadcasted
// over the network and each node receiving a search request scans its local
// database").
//
// No index exists: a query is flooded hop-by-hop with a TTL; every reached peer scans
// its local items for keys matching the query. The message cost is the number of
// forwarded copies -- the quantity P-Grid's O(log N) routing is compared against.

#pragma once

#include <cstdint>
#include <vector>

#include "baseline/random_graph.h"
#include "key/key_path.h"
#include "sim/online_model.h"
#include "storage/data_item.h"
#include "util/rng.h"

namespace pgrid {

/// Configuration of the flooding overlay.
struct FloodingConfig {
  size_t mean_degree = 4;  ///< overlay connectivity
  size_t ttl = 7;          ///< Gnutella's classic time-to-live
};

/// Result of one flooded search.
struct FloodResult {
  bool found = false;        ///< some peer held a matching item
  uint64_t messages = 0;     ///< forwarded query copies
  size_t peers_reached = 0;  ///< distinct peers that processed the query
  size_t holders_found = 0;  ///< distinct peers holding matches
};

/// An unstructured P2P network searched by flooding.
class FloodingNetwork {
 public:
  FloodingNetwork(size_t num_peers, const FloodingConfig& config, Rng* rng);

  /// Stores an item at a peer (its local database).
  void PlaceItem(PeerId holder, DataItem item);

  /// Floods a query for `key` from `start`. A peer matches if it stores an item
  /// whose key overlaps `key`. Offline peers (per `online`, may be null) neither
  /// process nor forward.
  FloodResult Search(PeerId start, const KeyPath& key, const OnlineModel* online,
                     Rng* rng) const;

  const RandomGraph& graph() const { return graph_; }
  size_t num_peers() const { return graph_.num_peers(); }

 private:
  bool HasMatch(PeerId peer, const KeyPath& key) const;

  RandomGraph graph_;
  FloodingConfig config_;
  std::vector<std::vector<DataItem>> local_items_;
};

}  // namespace pgrid
