#include "baseline/central_server.h"

#include "util/macros.h"

namespace pgrid {

CentralServer::CentralServer(size_t num_replicas)
    : num_replicas_(num_replicas), load_(num_replicas, 0) {
  PGRID_CHECK_GE(num_replicas, 1u);
}

void CentralServer::Publish(const IndexEntry& entry) {
  by_key_[entry.key].push_back(entries_.size());
  entries_.push_back(entry);
}

CentralLookupResult CentralServer::Lookup(const KeyPath& key, Rng* rng) {
  PGRID_CHECK(rng != nullptr);
  ++load_[rng->UniformIndex(num_replicas_)];
  CentralLookupResult out;
  // Exact-key bucket first (the common case), then the prefix-overlap scan for
  // queries shorter/longer than stored keys.
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    for (size_t idx : it->second) out.entries.push_back(entries_[idx]);
  } else {
    for (const IndexEntry& e : entries_) {
      if (PathsOverlap(e.key, key)) out.entries.push_back(e);
    }
  }
  out.found = !out.entries.empty();
  return out;
}

uint64_t CentralServer::TotalLoad() const {
  uint64_t total = 0;
  for (uint64_t l : load_) total += l;
  return total;
}

}  // namespace pgrid
