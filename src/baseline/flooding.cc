#include "baseline/flooding.h"

#include <deque>

#include "util/macros.h"

namespace pgrid {

FloodingNetwork::FloodingNetwork(size_t num_peers, const FloodingConfig& config,
                                 Rng* rng)
    : graph_(num_peers, config.mean_degree, rng),
      config_(config),
      local_items_(num_peers) {}

void FloodingNetwork::PlaceItem(PeerId holder, DataItem item) {
  PGRID_CHECK_LT(holder, local_items_.size());
  local_items_[holder].push_back(std::move(item));
}

bool FloodingNetwork::HasMatch(PeerId peer, const KeyPath& key) const {
  for (const DataItem& item : local_items_[peer]) {
    if (PathsOverlap(item.key, key)) return true;
  }
  return false;
}

FloodResult FloodingNetwork::Search(PeerId start, const KeyPath& key,
                                    const OnlineModel* online, Rng* rng) const {
  FloodResult out;
  std::vector<uint8_t> visited(num_peers(), 0);
  // Breadth-first flood with hop budget config_.ttl.
  std::deque<std::pair<PeerId, size_t>> frontier;  // (peer, remaining ttl)
  if (online != nullptr && !online->IsOnline(start, rng)) return out;
  visited[start] = 1;
  frontier.emplace_back(start, config_.ttl);
  while (!frontier.empty()) {
    auto [peer, ttl] = frontier.front();
    frontier.pop_front();
    ++out.peers_reached;
    if (HasMatch(peer, key)) {
      out.found = true;
      ++out.holders_found;
    }
    if (ttl == 0) continue;
    for (PeerId next : graph_.Neighbors(peer)) {
      if (visited[next]) continue;
      visited[next] = 1;
      // Forwarding costs a message whether or not the target turns out to be
      // reachable; an offline target simply drops it.
      ++out.messages;
      if (online != nullptr && !online->IsOnline(next, rng)) continue;
      frontier.emplace_back(next, ttl - 1);
    }
  }
  return out;
}

}  // namespace pgrid
