// Binary key paths (Sec. 2 of the paper).
//
// Index terms are binary strings p1...pn over {0,1}. A key k corresponds to the value
// val(k) = sum_i 2^-i * p_i and the interval I(k) = [val(k), val(k) + 2^-n) in [0,1].
// Each peer is responsible for one path; search keys are paths too. This class stores
// paths as packed bits and provides the prefix algebra used by the P-Grid algorithms:
// common prefixes, sub-paths, appends, complements, and interval arithmetic.

#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace pgrid {

class Rng;

/// A half-open subinterval [lo, hi) of the unit interval [0, 1].
struct Interval {
  double lo = 0.0;
  double hi = 1.0;

  /// True iff `x` lies inside [lo, hi).
  bool Contains(double x) const { return x >= lo && x < hi; }
  double Width() const { return hi - lo; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// An immutable-by-convention binary string of 0/1 bits with prefix algebra.
///
/// Bits are indexed from 0 (the paper indexes from 1; all conversions are documented
/// at call sites). The empty path represents responsibility for the whole key space.
class KeyPath {
 public:
  /// Constructs the empty path (length 0, interval [0,1)).
  KeyPath() = default;
  KeyPath(const KeyPath& other);
  KeyPath& operator=(const KeyPath& other);
  KeyPath(KeyPath&& other) noexcept;
  KeyPath& operator=(KeyPath&& other) noexcept;
  ~KeyPath();

  /// Parses a path from a string of '0'/'1' characters. Empty string is the empty
  /// path. Any other character is an InvalidArgument error.
  static Result<KeyPath> FromString(std::string_view bits);

  /// Builds a fixed-width path from the low `length` bits of `value`, most significant
  /// of those bits first. Requires length <= 64. Useful for enumerating all keys of a
  /// given length: FromUint64(i, L) for i in [0, 2^L).
  static KeyPath FromUint64(uint64_t value, size_t length);

  /// Builds a uniformly random path of the given length.
  static KeyPath Random(Rng* rng, size_t length);

  size_t length() const { return length_; }
  bool empty() const { return length_ == 0; }

  /// Returns bit i (0 or 1), 0-indexed. Requires i < length().
  int bit(size_t i) const;

  /// Appends one bit in place. `b` must be 0 or 1.
  void PushBack(int b);

  /// Removes the last bit. Requires non-empty.
  void PopBack();

  /// Returns a copy with one bit appended.
  KeyPath Append(int b) const;

  /// Returns a copy with another path's bits appended.
  KeyPath Concat(const KeyPath& suffix) const;

  /// Returns the prefix of the given length. Requires len <= length().
  KeyPath Prefix(size_t len) const;

  /// Returns the sub-path of `len` bits starting at 0-indexed position `pos`.
  /// Requires pos + len <= length(). (The paper's sub_path(p, l, k) with 1-indexed
  /// inclusive bounds is Sub(l - 1, k - l + 1).)
  KeyPath Sub(size_t pos, size_t len) const;

  /// Returns the suffix starting at 0-indexed position `pos` (empty if pos >= length).
  KeyPath SuffixFrom(size_t pos) const;

  /// Length of the longest common prefix with `other`.
  size_t CommonPrefixLength(const KeyPath& other) const;

  /// True iff this path is a (not necessarily proper) prefix of `other`.
  bool IsPrefixOf(const KeyPath& other) const;

  /// val(k) = sum_{i=1..n} 2^-i p_i, mapping the path to [0, 1).
  double Value() const;

  /// I(k) = [val(k), val(k) + 2^-n). The empty path maps to [0, 1).
  /// Double precision limits this to paths of at most ~52 bits; for longer paths the
  /// interval degenerates (width underflows). The prefix algebra (IsPrefixOf,
  /// PathsOverlap) is exact at any length and is what the algorithms use; intervals
  /// exist for explainability and the paper's val()/I() notation.
  Interval ToInterval() const;

  /// True iff a point key with value `v` falls in this path's interval.
  bool CoversValue(double v) const { return ToInterval().Contains(v); }

  /// Renders the path as a string of '0'/'1' ("<empty>" is rendered as "").
  std::string ToString() const;

  /// Lexicographic comparison; a proper prefix orders before its extensions.
  std::strong_ordering operator<=>(const KeyPath& other) const;
  bool operator==(const KeyPath& other) const;

  /// Hash suitable for unordered containers (see KeyPathHash).
  size_t Hash() const;

  /// Approximate heap bytes owned by this path (the spilled packed-bit words,
  /// counted at capacity; 0 for the inline representation, i.e. any path of at
  /// most 64 bits). Excludes sizeof(*this), so a containing object can report
  /// its own footprint without double counting. Feeds the storage-cost numbers
  /// of the scaling benches.
  size_t ApproxMemoryBytes() const { return size_t{heap_words_} * sizeof(uint64_t); }

 private:
  static constexpr size_t kBitsPerWord = 64;

  /// Pointer to the packed-bit words of the active representation.
  const uint64_t* words() const { return heap_words_ != 0 ? heap_ : &inline_word_; }
  uint64_t* words() { return heap_words_ != 0 ? heap_ : &inline_word_; }

  /// Number of words carrying canonical bits: ceil(length / 64).
  size_t word_count() const {
    return (size_t{length_} + kBitsPerWord - 1) / kBitsPerWord;
  }

  /// Builds an all-zero path of the given length in the right representation.
  static KeyPath MakeZeroed(size_t length);

  void Swap(KeyPath& other) noexcept;

  // Small-buffer representation: bit i lives at word i / 64, bit position i % 64,
  // LSB-first. Paths of at most 64 bits (every grid path in practice) store their
  // single word inline with no heap allocation; longer paths own a heap array of
  // heap_words_ words (the capacity; words past word_count() are kept zero).
  // heap_words_ == 0 selects the inline representation. All bits at positions
  // >= length_ are kept zero (canonical form) in either representation, so
  // equality and hashing operate on whole words without masking.
  union {
    uint64_t inline_word_ = 0;
    uint64_t* heap_;
  };
  uint32_t heap_words_ = 0;
  uint32_t length_ = 0;
};

static_assert(sizeof(KeyPath) == 16, "KeyPath must stay two machine words");

/// Complement of a single bit: 0 <-> 1 (the paper's p^- = (p + 1) mod 2).
inline int ComplementBit(int b) { return 1 - b; }

/// True iff the intervals of two paths overlap, i.e. one is a prefix of the other.
/// A peer with path `a` is (co-)responsible for a key `b` iff PathsOverlap(a, b).
inline bool PathsOverlap(const KeyPath& a, const KeyPath& b) {
  return a.IsPrefixOf(b) || b.IsPrefixOf(a);
}

/// Hash functor for unordered containers keyed by KeyPath.
struct KeyPathHash {
  size_t operator()(const KeyPath& k) const { return k.Hash(); }
};

std::ostream& operator<<(std::ostream& os, const KeyPath& k);

}  // namespace pgrid
