// Canonical range decomposition over the binary trie.
//
// A range [lo, hi] of equal-length keys decomposes into O(2 * length) aligned
// prefixes (the classic segment decomposition): each prefix covers a maximal
// aligned block inside the range. Range queries then reduce to a handful of prefix
// searches (see SearchEngine::RangeSearch) -- the natural extension of P-Grid's
// order-preserving key space to range predicates.

#pragma once

#include <vector>

#include "key/key_path.h"
#include "util/result.h"

namespace pgrid {

/// Decomposes the inclusive range [lo, hi] into a minimal set of disjoint prefixes
/// whose leaves tile it exactly. Requires lo.length() == hi.length(), lengths in
/// [1, 63], and lo <= hi (lexicographically). Results are ordered low to high.
Result<std::vector<KeyPath>> DecomposeRange(const KeyPath& lo, const KeyPath& hi);

}  // namespace pgrid
