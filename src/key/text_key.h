// Order-preserving text-to-key encoding (Sec. 6 extension: "For prefix search on
// text the algorithm can be adapted ... This would allow to directly support trie
// search structures").
//
// Each character of a restricted, ordered alphabet is mapped to a fixed-width
// 6-bit code. Fixed width gives the two properties prefix search needs:
//   1. order preservation:  s < t  (lexicographically)  <=>  val(enc(s)) < val(enc(t)),
//   2. prefix preservation: s is a prefix of t  <=>  enc(s) is a path-prefix of enc(t).
// A text prefix query therefore becomes an interval query over the binary trie,
// answered by visiting all peers whose paths overlap the encoded prefix (see
// SearchEngine::PrefixSearch).

#pragma once

#include <string>
#include <string_view>

#include "key/key_path.h"
#include "util/result.h"

namespace pgrid {

/// Number of bits per encoded character.
inline constexpr size_t kTextKeyBitsPerChar = 6;

/// The supported alphabet in code order. Sorting by code equals sorting by this
/// sequence: ' ' < '-' < '.' < '0'..'9' < '_' < 'a'..'z'.
std::string_view TextKeyAlphabet();

/// Encodes `text` into a binary key path (6 bits per character, order and prefix
/// preserving). InvalidArgument if any character is outside the alphabet.
/// Uppercase input is folded to lowercase first.
Result<KeyPath> EncodeText(std::string_view text);

/// Decodes a path produced by EncodeText. InvalidArgument if the length is not a
/// multiple of 6 bits or a code has no character.
Result<std::string> DecodeText(const KeyPath& key);

}  // namespace pgrid
